// Consolidation: several database VMs on one dependable hypervisor — the
// deployment the paper's approach naturally scales to. Each guest gets its
// own spindle with its own log, dump zone and data partitions, and its own
// RapiLog instance; on a power cut every instance's emergency dump races
// the same hold-up window in parallel on its own disk, so each sizing rule
// stays valid.
//
// This example wires the stack by hand from the library's components
// (machine, hypervisor, loggers, engines) rather than using the one-guest
// Deployment helper — a demonstration of the public API's composability.
//
//	go run ./examples/multiguest
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/hv"
	"repro/internal/power"
	"repro/internal/sim"
)

const guests = 3

func main() {
	s := sim.New(5)
	machine := power.NewMachine(s, "consolidator", 8, rapilog.PSUMeasured)
	hyper := hv.New(machine, hv.Config{})

	type tenant struct {
		name    string
		hdd     *disk.HDD
		logP    *disk.Partition
		dumpP   *disk.Partition
		dataP   *disk.Partition
		logger  *core.Logger
		guest   *hv.Guest
		journal *rapilog.Journal
	}
	tenants := make([]*tenant, guests)
	for i := range tenants {
		name := fmt.Sprintf("tenant%d", i)
		hdd := disk.NewHDD(s, machine.HardwareDomain(), disk.HDDConfig{Name: name + "-disk"})
		machine.AttachDevice(hdd)
		logP, _ := disk.NewPartition(hdd, name+"-log", 0, 262144)
		dumpP, _ := disk.NewPartition(hdd, name+"-dump", 262144, 131072)
		dataP, _ := disk.NewPartition(hdd, name+"-data", 393216, hdd.Sectors()-393216)
		logger, err := core.NewLogger(machine, hyper.Domain(), logP, dumpP, core.Config{Name: name + "-rapilog"})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		tenants[i] = &tenant{
			name: name, hdd: hdd, logP: logP, dumpP: dumpP, dataP: dataP,
			logger:  logger,
			guest:   hyper.NewGuest(name, logger, dataP),
			journal: rapilog.NewJournal(),
		}
	}
	fmt.Printf("%d guests on one hypervisor, one RapiLog instance each (buffer bound %d KiB)\n\n",
		guests, tenants[0].logger.MaxBuffer()/1024)

	// Each tenant runs its own workload until the shared machine loses
	// power.
	for _, tn := range tenants {
		tn := tn
		s.Spawn(tn.guest.Domain(), tn.name, func(p *sim.Proc) {
			e, err := engine.Open(p, tn.guest, engine.Config{})
			if err != nil {
				log.Fatalf("%s boot: %v", tn.name, err)
			}
			w := &rapilog.Stress{ValueSize: 512}
			for {
				if err := w.Do(p, e, tn.journal); err != nil {
					p.Sleep(time.Millisecond)
				}
			}
		})
	}

	// The plug is pulled on everyone at once.
	s.After(500*time.Millisecond, func() { machine.CutPower() })

	s.Spawn(nil, "operator", func(p *sim.Proc) {
		p.Sleep(3 * time.Second)
		acked := make([]int, guests)
		for i, tn := range tenants {
			acked[i] = tn.journal.Len()
		}
		machine.RestorePower()
		hyper.Reboot()
		for i, tn := range tenants {
			tn := tn
			i := i
			boot := s.NewDomain(tn.name + "-boot")
			s.Spawn(boot, tn.name+"-fw", func(p *sim.Proc) {
				rep, err := core.Recover(p, tn.logP, tn.dumpP)
				if err != nil {
					log.Fatalf("%s dump recovery: %v", tn.name, err)
				}
				logger, err := core.NewLogger(machine, hyper.Domain(), tn.logP, tn.dumpP, core.Config{Name: tn.name + "-rapilog"})
				if err != nil {
					log.Fatalf("%s new logger: %v", tn.name, err)
				}
				tn.guest.Reboot()
				tn.guest.SetLogBacking(logger)
				s.Spawn(tn.guest.Domain(), tn.name+"-recovery", func(p *sim.Proc) {
					e, err := engine.Open(p, tn.guest, engine.Config{})
					if err != nil {
						log.Fatalf("%s recovery boot: %v", tn.name, err)
					}
					res, err := tn.journal.VerifyFirst(p, e, acked[i])
					if err != nil {
						log.Fatalf("%s audit: %v", tn.name, err)
					}
					fmt.Printf("%s: dump replayed %3d entries; %s\n", tn.name, rep.Entries, res)
				})
			})
		}
	})

	if err := s.RunFor(time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall tenants recovered independently: one verified buffer layer, many databases.")
}
