// Guest-crash demonstration: the verification argument in action. The
// guest OS (and the database with it) dies mid-load while log data is
// still buffered in the hypervisor. Because the hypervisor is dependable —
// the property formal verification buys — it keeps draining, and the
// rebooted database finds every acknowledged commit. The same scenario is
// then repeated on the unsafe native-async baseline, which loses data.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	fmt.Println("scenario 1: RapiLog — guest OS crashes with data buffered in the hypervisor")
	lost := scenario(rapilog.ModeRapiLog)
	fmt.Printf("  => %d acknowledged commits lost\n\n", lost)

	fmt.Println("scenario 2: native-async — the same crash with commits buffered in the OS")
	lost = scenario(rapilog.ModeNativeAsync)
	fmt.Printf("  => %d acknowledged commits lost\n\n", lost)

	fmt.Println("the difference IS the paper: buffered log data survives a software crash")
	fmt.Println("only when it lives in a layer that provably does not crash with it.")
}

func scenario(mode rapilog.Mode) int {
	dep, err := rapilog.New(rapilog.Config{Seed: 11, Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	journal := rapilog.NewJournal()
	w := &rapilog.Stress{}
	crashed := dep.S.NewEvent("crashed")

	dep.S.Spawn(dep.Plat.Domain(), "db", func(p *rapilog.Proc) {
		e, err := dep.Boot(p)
		if err != nil {
			log.Fatalf("boot: %v", err)
		}
		for i := 0; i < 500; i++ {
			if err := w.Do(p, e, journal); err != nil {
				log.Fatalf("txn: %v", err)
			}
		}
		fmt.Printf("  %d commits acknowledged; crashing the OS now\n", journal.Len())
		crashed.Fire()
		dep.CrashOS()
	})

	var missing int
	dep.S.Spawn(nil, "operator", func(p *rapilog.Proc) {
		crashed.Wait(p)
		p.Sleep(time.Second) // the hypervisor (if any) drains meanwhile
		dep.RebootAfterCrash()
		dep.S.Spawn(dep.Plat.Domain(), "db-reborn", func(p *rapilog.Proc) {
			e, err := dep.Boot(p)
			if err != nil {
				log.Fatalf("recovery boot: %v", err)
			}
			res, err := journal.Verify(p, e)
			if err != nil {
				log.Fatalf("audit: %v", err)
			}
			fmt.Printf("  audit after reboot: %s\n", res)
			missing = res.Missing
		})
	})

	if err := dep.S.RunFor(time.Minute); err != nil {
		log.Fatal(err)
	}
	return missing
}
