// Quickstart: the smallest complete RapiLog program.
//
// Build a simulated machine with the RapiLog configuration, commit a few
// transactions (each durable the instant Commit returns), pull the plug,
// recover, and verify that nothing acknowledged was lost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	dep, err := rapilog.New(rapilog.Config{Seed: 1, Mode: rapilog.ModeRapiLog})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %s mode, safe buffer bound %d KiB\n",
		dep.Cfg.Mode, dep.Logger.MaxBuffer()/1024)

	journal := rapilog.NewJournal()

	// Life 1: the database serves commits until the power dies.
	dep.S.Spawn(dep.Plat.Domain(), "db", func(p *rapilog.Proc) {
		e, err := dep.Boot(p)
		if err != nil {
			log.Fatalf("boot: %v", err)
		}
		for i := 0; i < 100; i++ {
			tx := e.Begin(p)
			key := fmt.Sprintf("order-%03d", i)
			if err := tx.Put(key, []byte("paid")); err != nil {
				log.Fatalf("put: %v", err)
			}
			if err := tx.Commit(); err != nil {
				log.Fatalf("commit: %v", err)
			}
			// Commit returned: the update is durable by contract. Record
			// the obligation in the (crash-proof, client-side) journal.
			journal.Add(key, []byte("paid"))
		}
		fmt.Printf("committed %d transactions in %v of virtual time — now pulling the plug\n",
			journal.Len(), p.Now())
		dep.CutPower()
		p.Sleep(time.Hour) // dies with the machine
	})

	// Operator: restore power, let the hypervisor replay its dump zone,
	// boot the database (WAL recovery), and audit every acknowledged
	// commit.
	dep.S.Spawn(nil, "operator", func(p *rapilog.Proc) {
		p.Sleep(5 * time.Second)
		rep, err := dep.RecoverAfterPower(p)
		if err != nil {
			log.Fatalf("power recovery: %v", err)
		}
		fmt.Printf("power restored; dump zone replayed %d entries (%d bytes)\n", rep.Entries, rep.Bytes)
		dep.S.Spawn(dep.Plat.Domain(), "db-reborn", func(p *rapilog.Proc) {
			e, err := dep.Boot(p)
			if err != nil {
				log.Fatalf("recovery boot: %v", err)
			}
			res, err := journal.Verify(p, e)
			if err != nil {
				log.Fatalf("audit: %v", err)
			}
			fmt.Println(res)
		})
	})

	if err := dep.S.RunFor(time.Minute); err != nil {
		log.Fatal(err)
	}
}
