// Power-failure walk-through: a narrated plug-pull. Shows the whole
// emergency sequence on the kernel trace: AC loss, the power-fail
// interrupt, the hypervisor's sequential dump racing the PSU hold-up
// window, DC death, and the boot-time dump replay.
//
//	go run ./examples/powerfail
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/sim"
)

func main() {
	dep, err := rapilog.New(rapilog.Config{
		Seed: 3,
		Mode: rapilog.ModeRapiLog,
		PSU:  rapilog.PSUTypical, // 40–70 ms hold-up: a tight but safe race
	})
	if err != nil {
		log.Fatal(err)
	}
	dep.S.SetTrace(func(at sim.Time, format string, args ...any) {
		fmt.Printf("  [%12v] %s\n", at, fmt.Sprintf(format, args...))
	})
	fmt.Printf("PSU %q guarantees %v of ride-through; the safe buffer bound is %d KiB\n\n",
		dep.Cfg.PSU.Name, dep.Cfg.PSU.HoldupMin, dep.Logger.MaxBuffer()/1024)

	journal := rapilog.NewJournal()
	w := &rapilog.Stress{ValueSize: 1024}

	dep.S.Spawn(dep.Plat.Domain(), "db", func(p *rapilog.Proc) {
		e, err := dep.Boot(p)
		if err != nil {
			log.Fatalf("boot: %v", err)
		}
		fmt.Println("database up; committing under load...")
		for i := 0; i < 400; i++ {
			if err := w.Do(p, e, journal); err != nil {
				log.Fatalf("txn: %v", err)
			}
		}
		fmt.Printf("\n%d commits acknowledged, %d KiB still buffered in the hypervisor\n",
			journal.Len(), dep.Logger.BufferedBytes()/1024)
		fmt.Println("pulling the plug NOW:")
		dep.CutPower()
		p.Sleep(time.Hour)
	})

	dep.S.Spawn(nil, "operator", func(p *rapilog.Proc) {
		p.Sleep(3 * time.Second)
		fmt.Println("\nmains back; machine boots:")
		rep, err := dep.RecoverAfterPower(p)
		if err != nil {
			log.Fatalf("recovery: %v", err)
		}
		fmt.Printf("  hypervisor firmware replayed the dump zone: %d entries, %d bytes, torn=%v\n",
			rep.Entries, rep.Bytes, rep.Torn)
		dep.S.Spawn(dep.Plat.Domain(), "db-reborn", func(p *rapilog.Proc) {
			e, err := dep.Boot(p)
			if err != nil {
				log.Fatalf("recovery boot: %v", err)
			}
			fmt.Println("  database WAL recovery complete")
			res, err := journal.Verify(p, e)
			if err != nil {
				log.Fatalf("audit: %v", err)
			}
			fmt.Printf("\nverdict: %s\n", res)
		})
	})

	if err := dep.S.RunFor(time.Minute); err != nil {
		log.Fatal(err)
	}
}
