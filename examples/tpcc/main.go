// TPC-C comparison: the paper's headline experiment in miniature. Runs the
// TPC-C-derived workload against all four configurations on the same
// simulated hardware and prints the throughput and latency comparison.
//
//	go run ./examples/tpcc
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const clients = 8
	fmt.Printf("TPC-C, %d clients, PG-like engine, 7200 RPM disk, 5s measured\n\n", clients)
	fmt.Printf("%-14s %10s %12s %12s   %s\n", "configuration", "tps", "p50", "p99", "durability")

	for _, mode := range rapilog.Modes {
		tps, p50, p99 := run(mode, clients)
		durability := "safe"
		if mode == rapilog.ModeNativeAsync {
			durability = "UNSAFE (loses recent commits on any crash)"
		}
		fmt.Printf("%-14s %10.0f %12v %12v   %s\n", mode, tps,
			p50.Round(time.Microsecond), p99.Round(time.Microsecond), durability)
	}
	fmt.Println("\nshape to observe: rapilog ≈ native-async throughput with native-sync safety,")
	fmt.Println("and virt-sync shows the virtualisation cost rapilog more than buys back.")
}

func run(mode rapilog.Mode, clients int) (tps float64, p50, p99 time.Duration) {
	dep, err := rapilog.New(rapilog.Config{Seed: 7, Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	w := &rapilog.TPCC{Warehouses: 4, Districts: 10, Customers: 30, Items: 300}
	var res rapilog.RunResult
	done := dep.S.NewEvent("done")
	dep.S.Spawn(dep.Plat.Domain(), "bench", func(p *rapilog.Proc) {
		defer done.Fire()
		e, err := dep.Boot(p)
		if err != nil {
			log.Fatalf("boot: %v", err)
		}
		if err := w.Load(p, e); err != nil {
			log.Fatalf("load: %v", err)
		}
		res = rapilog.RunClients(p, dep.Plat.Domain(), e, w, rapilog.RunnerConfig{
			Clients: clients, Duration: 5 * time.Second, Warmup: time.Second,
		})
	})
	if err := dep.S.RunUntilEvent(done); err != nil {
		log.Fatal(err)
	}
	return res.TPS(), res.TxnLatency.Quantile(0.50), res.TxnLatency.Quantile(0.99)
}
