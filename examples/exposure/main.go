// Durability-exposure audit: the quantitative half of RapiLog's safety
// argument, measured rather than asserted. A traced rapilog deployment runs
// a commit-heavy workload; the commit-lifecycle trace is then replayed into
// the time-series of acknowledged-but-undrained bytes, and the peak is
// checked against the provable bound (SafeBufferSize capped by the
// configured buffer). The same trace yields each write's ack→durable
// latency — the exposure window the hold-up budget must cover.
//
//	go run ./examples/exposure
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	dep, err := rapilog.New(rapilog.Config{
		Seed:          7,
		Mode:          rapilog.ModeRapiLog,
		Trace:         true,
		TraceCapacity: 1 << 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	done := dep.S.NewEvent("done")
	dep.S.Spawn(dep.Plat.Domain(), "db", func(p *rapilog.Proc) {
		defer done.Fire()
		e, err := dep.Boot(p)
		if err != nil {
			log.Fatal(err)
		}
		w := &rapilog.Stress{}
		if err := w.Load(p, e); err != nil {
			log.Fatal(err)
		}
		rapilog.RunClients(p, dep.Plat.Domain(), e, w, rapilog.RunnerConfig{
			Clients: 8, Duration: 2 * time.Second, Warmup: 200 * time.Millisecond,
		})
	})
	if err := dep.S.RunUntilEvent(done); err != nil {
		log.Fatal(err)
	}

	// Dump the raw trace for offline inspection.
	f, err := os.Create("exposure-trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := dep.Obs.Tracer().WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("trace: %d events -> exposure-trace.json\n\n", dep.Obs.Tracer().Emitted())

	// Replay the trace into the exposure audit.
	rep, err := dep.AuditExposure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buffer bound:  %d KiB (lesser of configured MaxBuffer and SafeBufferSize)\n", rep.Bound/1024)
	fmt.Printf("peak exposure: %d KiB at t=%v\n", rep.PeakBytes/1024, rep.PeakAt)
	fmt.Printf("acked %d KiB, drained %d KiB, dumped %d KiB, in flight %d KiB\n",
		rep.AckedBytes/1024, rep.DurableBytes/1024, rep.DumpedBytes/1024, rep.OutstandingBytes/1024)
	if rep.AckToDurable.Count() > 0 {
		fmt.Printf("ack→durable:   p50=%v p99=%v max=%v\n",
			rep.AckToDurable.Quantile(0.50).Round(time.Millisecond),
			rep.AckToDurable.Quantile(0.99).Round(time.Millisecond),
			rep.AckToDurable.Max().Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println(rep.Verdict())
	if rep.Violated() {
		fmt.Println("=> exposure exceeded the provable bound: this configuration could lose data")
		os.Exit(1)
	}
	fmt.Println("=> every acknowledged byte stayed within what the hold-up window can dump")
}
