// Replicated durability demonstration: standbys as the alternative
// durability domain. A quorum-ack deployment commits under load, a network
// partition stalls (rather than endangers) its acknowledgements, the heal
// catches the standbys back up — and then the worst case: the plug is
// pulled while the emergency-dump zone is broken, so the machine's entire
// local durability domain is gone. Recovery replays the log from the
// surviving standby and the audit finds every acknowledged commit.
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	cfg := rapilog.Config{
		Seed:      7,
		Mode:      rapilog.ModeRapiLogReplica,
		Replicas:  2,
		AckPolicy: rapilog.AckQuorum(1),
	}
	cfg.DumpFault.Enabled = true // we will break the dump zone below
	dep, err := rapilog.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The local durability domain's last resort — the emergency dump zone —
	// fails every write from the start. Only the standbys can save us.
	dep.FaultyDump.AddBadRange(0, dep.DumpPart.Sectors(), false)

	journal := rapilog.NewJournal()
	w := &rapilog.Stress{}
	reg := dep.Obs.Registry()
	done := dep.S.NewEvent("done")

	dep.S.Spawn(dep.Plat.Domain(), "db", func(p *rapilog.Proc) {
		e, err := dep.Boot(p)
		if err != nil {
			log.Fatalf("boot: %v", err)
		}

		fmt.Println("phase 1: commit under quorum acks (every ack = a standby holds it)")
		for i := 0; i < 300; i++ {
			if err := w.Do(p, e, journal); err != nil {
				log.Fatalf("txn: %v", err)
			}
		}
		fmt.Printf("  %d commits acknowledged, replication lag %d records\n\n",
			journal.Len(), reg.Gauge("repl.lag").Value())

		fmt.Println("phase 2: partition the primary — quorum commits stall, they do not lie")
		before := reg.Snapshot()
		dep.Fabric.Isolate(rapilog.PrimaryEndpoint)
		start := p.Now()
		commitDone := dep.S.NewEvent("commit.done")
		dep.S.Spawn(dep.Plat.Domain(), "stalled-commit", func(cp *rapilog.Proc) {
			defer commitDone.Fire()
			if err := w.Do(cp, e, journal); err != nil {
				log.Fatalf("txn: %v", err)
			}
		})
		p.Sleep(100 * time.Millisecond)
		fmt.Printf("  100ms into the partition: commit still waiting (fired=%v)\n", commitDone.Fired())
		dep.Fabric.Heal()
		commitDone.Wait(p)
		fmt.Printf("  healed: the stalled commit acked after %v (a local ack takes ~µs)\n",
			p.Now().Sub(start).Round(time.Millisecond))

		p.Sleep(50 * time.Millisecond) // let the catch-up finish
		diff := reg.Snapshot().Diff(before)
		fmt.Println("  what the partition cost (snapshot diff across the window):")
		fmt.Printf("    records shipped +%d, resends +%d, partition drops +%d\n",
			diff.Counters["repl.shipped"], diff.Counters["repl.resends"],
			diff.Counters["net.partition_drops"])
		for _, s := range dep.Standbys {
			fmt.Printf("    %s applied +%d records\n", s.Name(),
				diff.Counters["repl."+s.Name()+".applied"])
		}
		fmt.Println()

		fmt.Println("phase 3: burst of commits, then the plug — with the dump zone broken")
		for i := 0; i < 200; i++ {
			if err := w.Do(p, e, journal); err != nil {
				log.Fatalf("txn: %v", err)
			}
		}
		fmt.Printf("  %d total acknowledged; cutting power NOW (emergency dump will fail)\n", journal.Len())
		done.Fire()
		dep.CutPower()
	})

	acked := 0
	dep.S.Spawn(nil, "operator", func(p *rapilog.Proc) {
		done.Wait(p)
		acked = journal.Len()
		p.Sleep(2 * time.Second) // hold-up window expires, machine is dark
		rep, err := dep.RecoverAfterPower(p)
		if err != nil {
			log.Fatalf("recovery: %v", err)
		}
		fmt.Printf("  dump replay:    %d bytes (the zone was broken: %d dump failures)\n",
			rep.Bytes, rep.DumpFailures)
		fmt.Printf("  %s\n", dep.LastReplicaReplay)
		dep.S.Spawn(dep.Plat.Domain(), "db2", func(p *rapilog.Proc) {
			e, err := dep.Boot(p)
			if err != nil {
				log.Fatalf("recovery boot: %v", err)
			}
			vr, err := journal.VerifyFirst(p, e, acked)
			if err != nil {
				log.Fatalf("audit: %v", err)
			}
			fmt.Printf("\naudit: %d acknowledged commits, %d missing, %d mismatched\n",
				acked, vr.Missing, vr.Mismatched)
			fmt.Println("the machine and its dump zone died together; the standbys were the")
			fmt.Println("durability domain — that is what a quorum ack buys.")
		})
	})

	if err := dep.S.RunFor(10 * time.Minute); err != nil {
		log.Fatal(err)
	}
}
