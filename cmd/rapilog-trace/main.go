// Command rapilog-trace is the forensic analyzer for RapiLog trace dumps
// and flight records (the JSON written by rapilog-sim/-fault/-bench's
// -trace-out and -flight-out flags). It reconstructs each commit's causal
// chain — tx_begin → covering WAL force → (ship → apply → ack)×k →
// quorum_met — and reports per-stage latency percentiles, the commit
// critical path with local-force time separated from the replication
// quorum barrier, and a drop/resend/repair timeline.
//
// Usage:
//
//	rapilog-trace trace.json
//	rapilog-trace flight.json                 # auto-detected by shape
//	rapilog-trace -perfetto ui.json trace.json
//	rapilog-trace -check trace.json           # re-verify invariants; exit 1
//	rapilog-trace -buckets 40 trace.json flight.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro"
)

func main() {
	var (
		perfetto = flag.String("perfetto", "", "write the first input as Chrome trace-event JSON (Perfetto / chrome://tracing)")
		check    = flag.Bool("check", false, "re-verify the safety invariants offline and reject malformed traces; exit 1 on findings")
		buckets  = flag.Int("buckets", 0, "timeline resolution in slices (default 24)")
		policy   = flag.String("check-policy", "", "override the -check ack policy: local | quorum | remote-only (default: inferred from the trace)")
		quorumK  = flag.Int("check-quorum", 0, "override the -check quorum size (default: inferred)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "rapilog-trace: no input files (pass trace/flight JSON paths)")
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	for i, path := range flag.Args() {
		if i > 0 {
			fmt.Println()
		}
		if !analyzeFile(path, *perfetto, *check, *buckets, *policy, *quorumK, i == 0) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// analyzeFile loads one trace dump or flight record, prints its report, and
// returns false when -check found violations or the file is malformed.
func analyzeFile(path, perfetto string, check bool, buckets int, policy string, quorumK int, first bool) bool {
	dump, flight, err := loadInput(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapilog-trace: %s: %v\n", path, err)
		return false
	}

	fmt.Printf("== %s ==\n", path)
	if flight != nil {
		fmt.Printf("flight record:  frozen %q at %v (%d events retained, %d truncated, %d snapshots)\n",
			flight.Reason, time.Duration(flight.AtNs).Round(time.Microsecond),
			len(flight.Events), flight.TruncatedEvents, len(flight.Snapshots))
		if mr := flight.Monitor; mr != nil {
			fmt.Printf("monitor:        %d events checked, %d acked txs, %d violations\n",
				mr.EventsSeen, mr.TxAcked, mr.Total)
			printViolations(mr)
		}
	}

	a, err := rapilog.AnalyzeTrace(dump, buckets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapilog-trace: %s: malformed trace: %v\n", path, err)
		return false
	}
	fmt.Printf("trace:          %d events emitted, %d dropped by the ring\n", a.Events, a.Dropped)
	if len(a.Labels) > 0 {
		names := make([]string, 0, len(a.Labels))
		for n := range a.Labels {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("endpoints:      %v\n", names)
	}
	fmt.Printf("causal chains:  %d/%d acked commits complete (%.1f%%)",
		a.Chains.Complete, a.Chains.Commits, 100*a.Chains.Ratio())
	if a.QuorumK > 0 {
		fmt.Printf(", quorum k=%d", a.QuorumK)
	}
	fmt.Println()
	if len(a.Chains.Incomplete) > 0 {
		reasons := make([]string, 0, len(a.Chains.Incomplete))
		for r := range a.Chains.Incomplete {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Printf("                incomplete: %s ×%d\n", r, a.Chains.Incomplete[r])
		}
	}

	fmt.Printf("\nstage latencies:\n%s\n", a.StageTable())
	if a.Critical.Commits > 0 {
		fmt.Printf("commit critical path (%d commits):\n%s\n", a.Critical.Commits, a.CriticalTable())
	}
	if tl := a.TimelineTable(); tl.Rows() > 0 {
		fmt.Printf("replication / fault timeline:\n%s\n", tl)
	}

	ok := true
	if check {
		ok = runCheck(dump, a, policy, quorumK)
	}
	if perfetto != "" && first {
		f, err := os.Create(perfetto)
		if err == nil {
			err = a.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapilog-trace: writing %s: %v\n", perfetto, err)
			return false
		}
		fmt.Printf("wrote Perfetto trace to %s (open in ui.perfetto.dev)\n", perfetto)
	}
	return ok
}

// loadInput parses path as either a trace dump or a flight record,
// distinguished by shape: a flight record carries "reason"/"final", a trace
// dump carries "emitted". Flight records are reshaped into a TraceDump so
// one analyzer serves both.
func loadInput(path string) (rapilog.TraceDump, *rapilog.FlightRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return rapilog.TraceDump{}, nil, err
	}
	defer f.Close()
	var probe struct {
		Reason  *string `json:"reason"`
		Emitted *int    `json:"emitted"`
	}
	dec := json.NewDecoder(f)
	if err := dec.Decode(&probe); err != nil {
		return rapilog.TraceDump{}, nil, fmt.Errorf("not valid JSON: %w", err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return rapilog.TraceDump{}, nil, err
	}
	switch {
	case probe.Reason != nil:
		rec, err := rapilog.ReadFlightRecord(f)
		if err != nil {
			return rapilog.TraceDump{}, nil, err
		}
		d := rapilog.TraceDump{
			Emitted: len(rec.Events) + rec.TruncatedEvents,
			Dropped: rec.TruncatedEvents,
			Labels:  rec.Labels,
			Events:  rec.Events,
		}
		return d, rec, nil
	case probe.Emitted != nil:
		d, err := rapilog.ReadTraceDump(f)
		return d, nil, err
	default:
		return rapilog.TraceDump{}, nil, fmt.Errorf("neither a trace dump (no \"emitted\") nor a flight record (no \"reason\")")
	}
}

// runCheck re-verifies the trace offline: events must decode, time must not
// run backwards, and the invariant monitor must find nothing.
func runCheck(dump rapilog.TraceDump, a *rapilog.TraceAnalysis, policy string, quorumK int) bool {
	events, err := dump.DecodedEvents()
	if err != nil {
		fmt.Printf("check:          FAIL — malformed trace: %v\n", err)
		return false
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			fmt.Printf("check:          FAIL — malformed trace: event %d at %v precedes event %d at %v\n",
				i, events[i].At, i-1, events[i-1].At)
			return false
		}
	}
	cfg := rapilog.MonitorConfig{}
	switch policy {
	case "":
		if a.QuorumK > 0 {
			cfg.Policy, cfg.QuorumK = rapilog.PolicyQuorum, a.QuorumK
		}
	case "local":
		cfg.Policy = rapilog.PolicyLocal
	case "quorum":
		cfg.Policy = rapilog.PolicyQuorum
	case "remote-only", "remote":
		cfg.Policy = rapilog.PolicyRemoteOnly
	default:
		fmt.Fprintf(os.Stderr, "rapilog-trace: unknown -check-policy %q\n", policy)
		return false
	}
	if quorumK > 0 {
		cfg.QuorumK = quorumK
	}
	if cfg.Policy != rapilog.PolicyLocal && cfg.QuorumK == 0 {
		cfg.QuorumK = 1
	}
	rep := rapilog.RunMonitor(events, cfg)
	if rep.Total == 0 {
		fmt.Printf("check:          ok — %d events, %d acked txs, 0 violations\n",
			rep.EventsSeen, rep.TxAcked)
		return true
	}
	fmt.Printf("check:          FAIL — %d invariant violations\n", rep.Total)
	printViolations(&rep)
	return false
}

func printViolations(rep *rapilog.MonitorReport) {
	kinds := make([]string, 0, len(rep.ByKind))
	for k := range rep.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("                %s ×%d\n", k, rep.ByKind[k])
	}
	for _, v := range rep.Samples {
		fmt.Printf("                at %v: [%s] %s\n",
			time.Duration(v.AtNs).Round(time.Microsecond), v.Invariant, v.Detail)
	}
}
