// Command rapilog-bench regenerates the paper's evaluation: every table
// and figure (experiments e1–e10) plus this reproduction's ablations
// (a1–a3). Each experiment prints an aligned table and notes describing
// the expected shape.
//
// Usage:
//
//	rapilog-bench                 # run everything, full size
//	rapilog-bench -exp e1,e6      # selected experiments
//	rapilog-bench -quick          # small sweeps (seconds, not minutes)
//	rapilog-bench -list           # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		expList = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick   = flag.Bool("quick", false, "shrink sweeps and durations")
		seed    = flag.Int64("seed", 1, "base deterministic seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		verbose = flag.Bool("v", true, "print per-data-point progress")
	)
	flag.Parse()

	if *list {
		for _, exp := range rapilog.Experiments {
			fmt.Printf("%-4s %s\n", exp.ID, exp.Title)
		}
		return
	}

	var ids []string
	if *expList == "all" {
		for _, exp := range rapilog.Experiments {
			ids = append(ids, exp.ID)
		}
	} else {
		ids = strings.Split(*expList, ",")
	}

	opts := rapilog.ExperimentOptions{Quick: *quick, Seed: *seed}
	if *verbose {
		opts.Progress = os.Stderr
	}

	start := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp := rapilog.ExperimentByID(id)
		if exp == nil {
			fmt.Fprintf(os.Stderr, "rapilog-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		expStart := time.Now()
		rep, err := exp.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapilog-bench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		rep.Render(os.Stdout)
		fmt.Fprintf(os.Stderr, "[%s took %v]\n", id, time.Since(expStart).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "[total %v]\n", time.Since(start).Round(time.Millisecond))
}
