// Command rapilog-bench regenerates the paper's evaluation: every table
// and figure (experiments e1–e10) plus this reproduction's ablations
// (a1–a3). Each experiment prints an aligned table and notes describing
// the expected shape.
//
// Usage:
//
//	rapilog-bench                 # run everything, full size
//	rapilog-bench -exp e1,e6      # selected experiments
//	rapilog-bench -quick          # small sweeps (seconds, not minutes)
//	rapilog-bench -list           # list experiment ids and titles
//	rapilog-bench -metrics-out values.json -trace-out trace.json
//	rapilog-bench -bench-json auto            # run the hot-path perf suite,
//	                                          # write BENCH_<date>.json
//	rapilog-bench -bench-json out.json -bench-label after
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		expList = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick   = flag.Bool("quick", false, "shrink sweeps and durations")
		seed    = flag.Int64("seed", 1, "base deterministic seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		verbose = flag.Bool("v", true, "print per-data-point progress")

		metricsOut = flag.String("metrics-out", "", "write every experiment's named values as JSON to this file")
		traceOut   = flag.String("trace-out", "", "write a commit-lifecycle trace of a representative rapilog run as JSON to this file")
		flightOut  = flag.String("flight-out", "", "write a representative run's flight record (frozen at run end) as JSON to this file")

		benchJSON  = flag.String("bench-json", "", "run the hot-path perf suite and write its JSON here ('auto' → BENCH_<date>.json); skips the experiments")
		benchLabel = flag.String("bench-label", "", "label recorded in the perf-suite JSON (e.g. 'baseline')")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchLabel, *quick, *seed); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *list {
		for _, exp := range rapilog.Experiments {
			fmt.Printf("%-4s %s\n", exp.ID, exp.Title)
		}
		return
	}

	var ids []string
	if *expList == "all" {
		for _, exp := range rapilog.Experiments {
			ids = append(ids, exp.ID)
		}
	} else {
		ids = strings.Split(*expList, ",")
	}

	opts := rapilog.ExperimentOptions{Quick: *quick, Seed: *seed}
	if *verbose {
		opts.Progress = os.Stderr
	}

	start := time.Now()
	values := make(map[string]map[string]float64)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp := rapilog.ExperimentByID(id)
		if exp == nil {
			fmt.Fprintf(os.Stderr, "rapilog-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		expStart := time.Now()
		rep, err := exp.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapilog-bench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		rep.Render(os.Stdout)
		values[rep.ID] = rep.Values
		fmt.Fprintf(os.Stderr, "[%s took %v]\n", id, time.Since(expStart).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "[total %v]\n", time.Since(start).Round(time.Millisecond))

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatalf("%v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(values); err != nil {
			fatalf("writing %s: %v", *metricsOut, err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
	}
	if *traceOut != "" || *flightOut != "" {
		if err := dumpRepresentativeTrace(*traceOut, *flightOut, *seed); err != nil {
			fatalf("%v", err)
		}
	}
}

// runBenchJSON executes the fixed hot-path perf suite and serialises the
// result — the benchmark trajectory perf PRs commit before/after pairs of.
func runBenchJSON(path, label string, quick bool, seed int64) error {
	suite, err := rapilog.RunPerfSuite(label, quick, seed, os.Stderr)
	if err != nil {
		return err
	}
	if path == "auto" {
		path = "BENCH_" + suite.Date + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := suite.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[perf suite written to %s]\n", path)
	return nil
}

// dumpRepresentativeTrace runs a short traced rapilog deployment under the
// stress workload and writes its commit-lifecycle trace — the sample later
// perf work diffs stage latencies against — and, when flightPath is set,
// the run's flight record.
func dumpRepresentativeTrace(path, flightPath string, seed int64) error {
	dep, err := rapilog.New(rapilog.Config{Seed: seed, Mode: rapilog.ModeRapiLog, Trace: true,
		TraceCapacity: 1 << 20, Flight: flightPath != ""})
	if err != nil {
		return err
	}
	done := dep.S.NewEvent("done")
	var runErr error
	dep.S.Spawn(dep.Plat.Domain(), "bench", func(p *rapilog.Proc) {
		defer done.Fire()
		e, err := dep.Boot(p)
		if err != nil {
			runErr = err
			return
		}
		wl := &rapilog.Stress{}
		if runErr = wl.Load(p, e); runErr != nil {
			return
		}
		rapilog.RunClients(p, dep.Plat.Domain(), e, wl, rapilog.RunnerConfig{
			Clients: 8, Duration: 2 * time.Second, Warmup: 200 * time.Millisecond,
		})
	})
	if err := dep.S.RunUntilEvent(done); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := dep.Obs.Tracer().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if flightPath != "" {
		dep.Flight.Freeze(dep.S.Now().Duration(), "run-end")
		f, err := os.Create(flightPath)
		if err != nil {
			return err
		}
		if err := dep.Flight.Record().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rapilog-bench: "+format+"\n", args...)
	os.Exit(1)
}
