// Command rapilog-fault runs destructive durability campaigns: repeated
// guest crashes, plug-pulls, or media-fault windows under load, each
// followed by recovery and a client-side durability audit. This is the tool
// behind the paper's "pull the plug N times, lose nothing" claim.
//
// Usage:
//
//	rapilog-fault -mode rapilog -fault power-cut -trials 50
//	rapilog-fault -mode native-async -fault guest-crash -trials 20 -per-trial
//	rapilog-fault -mode rapilog -fault disk-error -trials 50 -err-prob 0.9
//	rapilog-fault -mode rapilog -fault disk-error -permanent -trials 5
//	rapilog-fault -mode rapilog -fault latency-storm -fault-window 500ms
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		mode      = flag.String("mode", "rapilog", "native-sync | native-async | virt-sync | rapilog")
		engine    = flag.String("engine", "pg", "engine personality: pg | my | cx")
		fault     = flag.String("fault", "power-cut", "power-cut | guest-crash | disk-error | latency-storm")
		trials    = flag.Int("trials", 20, "independent trials")
		clients   = flag.Int("clients", 4, "clients under load during injection")
		seed      = flag.Int64("seed", 42, "base deterministic seed")
		perTrial  = flag.Bool("per-trial", false, "print one line per trial")
		wl        = flag.String("workload", "tpcc", "tpcc | stress")
		window    = flag.Duration("fault-window", 0, "how long a media fault lasts (disk-error, latency-storm; default 300ms)")
		errProb   = flag.Float64("err-prob", 0, "per-request write-error probability inside a disk-error window (default 0.7)")
		permanent = flag.Bool("permanent", false, "disk-error grows a permanent bad-sector range instead (forces degraded pass-through)")
	)
	flag.Parse()

	pers, ok := rapilog.Personalities[*engine]
	if !ok {
		fmt.Fprintf(os.Stderr, "rapilog-fault: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	cfg := rapilog.CampaignConfig{
		Rig:            rapilog.Config{Seed: *seed, Mode: rapilog.Mode(*mode), Personality: pers},
		Fault:          rapilog.Fault(*fault),
		Trials:         *trials,
		Clients:        *clients,
		FaultWindow:    *window,
		MediaErrProb:   *errProb,
		PermanentFault: *permanent,
	}
	if *wl == "stress" {
		cfg.NewWorkload = func() rapilog.Workload { return &rapilog.Stress{} }
	}

	sum := rapilog.RunCampaign(cfg)
	if *perTrial {
		fmt.Printf("%-6s %-12s %-8s %-8s %-6s %-9s %-10s %-8s\n",
			"trial", "seed", "acked", "lost", "torn", "degraded", "stranded", "err")
		for i, tr := range sum.Trials {
			errStr := "-"
			if tr.Err != nil {
				errStr = tr.Err.Error()
			}
			fmt.Printf("%-6d %-12d %-8d %-8d %-6v %-9v %-10d %-8s\n",
				i, tr.Seed, tr.Acked, tr.Missing, tr.Torn, tr.Degraded, tr.BufferedAfter, errStr)
		}
	}
	fmt.Println(sum)
	if sum.Violations > 0 || sum.Errors > 0 {
		os.Exit(1)
	}
}
