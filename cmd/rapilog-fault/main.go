// Command rapilog-fault runs destructive durability campaigns: repeated
// guest crashes, plug-pulls, media-fault windows, or replication-fabric
// outages under load, each followed by recovery and a client-side
// durability audit. This is the tool behind the paper's "pull the plug N
// times, lose nothing" claim — and this reproduction's replicated
// extension of it.
//
// Usage:
//
//	rapilog-fault -mode rapilog -fault power-cut -trials 50
//	rapilog-fault -mode native-async -fault guest-crash -trials 20 -per-trial
//	rapilog-fault -mode rapilog -fault disk-error -trials 50 -err-prob 0.9
//	rapilog-fault -mode rapilog -fault disk-error -permanent -trials 5
//	rapilog-fault -mode rapilog -fault latency-storm -fault-window 500ms
//	rapilog-fault -mode rapilog-replica -fault partition -then power-cut \
//	    -break-dump -ack-policy quorum -quorum 1 -replicas 2 -trials 10
//	rapilog-fault -shards 4 -fault power-cut -trials 50
//	rapilog-fault -exp a11 -trials 5 -parallel 3 -trace-out trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	var (
		mode      = flag.String("mode", "rapilog", "native-sync | native-async | virt-sync | rapilog | rapilog-replica | rapilog-sharded")
		shards    = flag.Int("shards", 0, "independent log-domain shards on one machine (power-cut only; 0/1 = unsharded)")
		engine    = flag.String("engine", "pg", "engine personality: pg | my | cx")
		fault     = flag.String("fault", "power-cut", "power-cut | guest-crash | disk-error | latency-storm | partition | replica-crash")
		trials    = flag.Int("trials", 20, "independent trials")
		clients   = flag.Int("clients", 4, "clients under load during injection")
		seed      = flag.Int64("seed", 42, "base deterministic seed")
		perTrial  = flag.Bool("per-trial", false, "print one line per trial")
		parallel  = flag.Int("parallel", 0, "trials run concurrently (0 = GOMAXPROCS; results identical to -parallel 1)")
		wl        = flag.String("workload", "tpcc", "tpcc | stress")
		window    = flag.Duration("fault-window", 0, "how long a media fault lasts (disk-error, latency-storm; default 300ms)")
		errProb   = flag.Float64("err-prob", 0, "per-request write-error probability inside a disk-error window (default 0.7)")
		permanent = flag.Bool("permanent", false, "disk-error grows a permanent bad-sector range instead (forces degraded pass-through)")
		// Replication (rapilog-replica mode).
		replicas  = flag.Int("replicas", 0, "standby replicas in rapilog-replica mode (default 2)")
		ackPolicy = flag.String("ack-policy", "local", "commit ack policy: local | quorum | remote-only")
		quorum    = flag.Int("quorum", 0, "replicas that must hold a commit before it acks (quorum/remote-only; default 1)")
		netLat    = flag.Duration("net-latency", 0, "fabric link latency (default 200µs)")
		partWin   = flag.Duration("partition-window", 0, "how long a partition or replica-crash outage lasts (default fault-window)")
		then      = flag.String("then", "", "second fault at the outage midpoint: power-cut | guest-crash (partition, replica-crash)")
		crashReps = flag.Int("crash-replicas", 0, "standbys a replica-crash takes down (default 1)")
		breakDump = flag.Bool("break-dump", false, "grow a bad-sector range over the whole dump zone: emergency dumps fail")
		// Forensic artifacts (the retained trial: first violating, else last).
		traceOut   = flag.String("trace-out", "", "write the retained trial's causal trace dump (JSON) to this file")
		metricsOut = flag.String("metrics-out", "", "write the retained trial's metrics snapshot (JSON) to this file")
		flightOut  = flag.String("flight-out", "", "arm the flight recorder and write the retained trial's frozen record (JSON) to this file")
		// High-availability campaigns (3-node epoch-fenced cluster).
		exp = flag.String("exp", "", "run a canned HA experiment instead of a single-rig campaign: a11 (leader-loss failover; honours -trials, -clients, -parallel, -seed, -quorum and the artifact flags)")
	)
	flag.Parse()

	pers, ok := rapilog.Personalities[*engine]
	if !ok {
		fmt.Fprintf(os.Stderr, "rapilog-fault: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	if err := rapilog.ValidateQuorumFlags(*quorum, *replicas); err != nil {
		fmt.Fprintf(os.Stderr, "rapilog-fault: %v\n", err)
		os.Exit(2)
	}
	if *exp != "" {
		if *exp != "a11" {
			fmt.Fprintf(os.Stderr, "rapilog-fault: unknown experiment %q for -exp (supported: a11)\n", *exp)
			os.Exit(2)
		}
		runFailoverExp(*trials, *clients, *parallel, *seed, *quorum, *perTrial,
			*traceOut, *metricsOut, *flightOut)
		return
	}
	policy, err := rapilog.ParseAckPolicy(*ackPolicy, *quorum)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapilog-fault: %v\n", err)
		os.Exit(2)
	}
	if rapilog.Mode(*mode) == rapilog.ModeRapiLogSharded && *shards < 2 {
		*shards = 2
	}
	if *shards > 1 && *mode == "rapilog" {
		*mode = string(rapilog.ModeRapiLogSharded)
	}
	rigCfg := rapilog.Config{Seed: *seed, Mode: rapilog.Mode(*mode), Personality: pers,
		Replicas: *replicas, AckPolicy: policy}
	rigCfg.Net.Latency = *netLat
	rigCfg.Trace = *traceOut != "" || *metricsOut != ""
	rigCfg.Flight = *flightOut != ""
	cfg := rapilog.CampaignConfig{
		Rig:             rigCfg,
		Fault:           rapilog.Fault(*fault),
		Compose:         rapilog.Fault(*then),
		Trials:          *trials,
		Clients:         *clients,
		Parallel:        *parallel,
		FaultWindow:     *window,
		MediaErrProb:    *errProb,
		PermanentFault:  *permanent,
		PartitionWindow: *partWin,
		CrashReplicas:   *crashReps,
		BreakDump:       *breakDump,
		Shards:          *shards,
	}
	if *wl == "stress" {
		cfg.NewWorkload = func() rapilog.Workload { return &rapilog.Stress{} }
	}

	if rapilog.Mode(*mode) == rapilog.ModeRapiLogReplica {
		n := *replicas
		if n == 0 {
			n = 2
		}
		fmt.Printf("replication: %d standbys, ack policy %s\n", n, policy)
	}
	if *shards > 1 {
		fmt.Printf("sharding: %d independent log domains, machine-wide plug-pull\n", *shards)
	}
	sum := rapilog.RunCampaign(cfg)
	if *perTrial {
		fmt.Printf("%-6s %-12s %-8s %-8s %-6s %-9s %-10s %-9s %-8s\n",
			"trial", "seed", "acked", "lost", "torn", "degraded", "stranded", "repl_lag", "err")
		for i, tr := range sum.Trials {
			errStr := "-"
			if tr.Err != nil {
				errStr = tr.Err.Error()
			}
			fmt.Printf("%-6d %-12d %-8d %-8d %-6v %-9v %-10d %-9d %-8s\n",
				i, tr.Seed, tr.Acked, tr.Missing, tr.Torn, tr.Degraded, tr.BufferedAfter, tr.ReplLagMax, errStr)
		}
	}
	fmt.Println(sum)
	if art := sum.Artifacts; art != nil {
		fmt.Printf("artifacts: trial %d (seed %d)\n", art.Trial, art.Seed)
		writeArtifact(*traceOut, "trace", func(f *os.File) error { return art.Trace.WriteJSON(f) })
		if art.Metrics != nil {
			writeArtifact(*metricsOut, "metrics", func(f *os.File) error { return art.Metrics.WriteJSON(f) })
		}
		if art.Flight != nil {
			writeArtifact(*flightOut, "flight record", func(f *os.File) error { return art.Flight.WriteJSON(f) })
		}
	}
	if sum.Violations > 0 || sum.Errors > 0 {
		os.Exit(1)
	}
}

// runFailoverExp drives the A11 leader-loss campaigns: plug-pull, isolation
// and a composed coordinator-crash+plug-pull against a fresh 3-node
// epoch-fenced cluster per trial, auditing zero acked-quorum loss and zero
// split-brain. Forensic artifacts retain the first bad trial across all
// three campaigns (else the last clean one).
func runFailoverExp(trials, clients, parallel int, seed int64, quorum int, perTrial bool,
	traceOut, metricsOut, flightOut string) {
	k := quorum
	if k == 0 {
		k = 1
	}
	campaigns := []struct {
		label string
		fault rapilog.FailoverFault
	}{
		{"power-cut", rapilog.FaultLeaderPowerCut},
		{"isolation", rapilog.FaultLeaderIsolation},
		{"coordinator+power-cut", rapilog.FaultCoordAndLeader},
	}
	fmt.Printf("ha: 3-node cluster, ack policy quorum(%d), %d trials per campaign\n", k, trials)

	exit := 0
	var retained *rapilog.CampaignArtifacts
	retainedBad := false
	for _, c := range campaigns {
		sum := rapilog.RunFailoverCampaign(rapilog.FailoverConfig{
			Cluster: rapilog.ClusterConfig{
				Nodes: 3,
				Rig:   rapilog.Config{Seed: seed, AckPolicy: rapilog.AckQuorum(k)},
			},
			Fault:      c.fault,
			Trials:     trials,
			Clients:    clients,
			Parallel:   parallel,
			SessionFor: 20 * time.Second,
		})
		if perTrial {
			fmt.Printf("%-6s %-12s %-8s %-6s %-10s %-12s %-12s %-8s\n",
				"trial", "seed", "acked", "lost", "failovers", "split-brain", "unavail", "err")
			for i, tr := range sum.Trials {
				errStr := "-"
				if tr.Err != nil {
					errStr = tr.Err.Error()
				}
				fmt.Printf("%-6d %-12d %-8d %-6d %-10d %-12d %-12v %-8s\n",
					i, tr.Seed, tr.Acked, tr.Missing, tr.Failovers, tr.SplitBrain,
					tr.Unavailable.Round(time.Millisecond), errStr)
			}
		}
		fmt.Println(sum)
		bad := sum.Violations > 0 || sum.SplitBrains > 0 || sum.Incomplete > 0 || sum.Errors > 0
		if bad {
			exit = 1
		}
		if sum.Artifacts != nil && !retainedBad {
			retained = sum.Artifacts
			retainedBad = bad
		}
	}
	if retained != nil {
		fmt.Printf("artifacts: trial %d (seed %d)\n", retained.Trial, retained.Seed)
		writeArtifact(traceOut, "trace", func(f *os.File) error { return retained.Trace.WriteJSON(f) })
		if retained.Metrics != nil {
			writeArtifact(metricsOut, "metrics", func(f *os.File) error { return retained.Metrics.WriteJSON(f) })
		}
		if retained.Flight != nil {
			writeArtifact(flightOut, "flight record", func(f *os.File) error { return retained.Flight.WriteJSON(f) })
		}
	}
	os.Exit(exit)
}

// writeArtifact writes one JSON artifact to path (no-op when path is empty).
func writeArtifact(path, what string, write func(*os.File) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapilog-fault: writing %s: %v\n", what, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s to %s\n", what, path)
}
