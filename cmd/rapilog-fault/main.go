// Command rapilog-fault runs destructive durability campaigns: repeated
// guest crashes or plug-pulls under load, each followed by recovery and a
// client-side durability audit. This is the tool behind the paper's
// "pull the plug N times, lose nothing" claim.
//
// Usage:
//
//	rapilog-fault -mode rapilog -fault power-cut -trials 50
//	rapilog-fault -mode native-async -fault guest-crash -trials 20 -per-trial
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		mode     = flag.String("mode", "rapilog", "native-sync | native-async | virt-sync | rapilog")
		engine   = flag.String("engine", "pg", "engine personality: pg | my | cx")
		fault    = flag.String("fault", "power-cut", "power-cut | guest-crash")
		trials   = flag.Int("trials", 20, "independent trials")
		clients  = flag.Int("clients", 4, "clients under load during injection")
		seed     = flag.Int64("seed", 42, "base deterministic seed")
		perTrial = flag.Bool("per-trial", false, "print one line per trial")
		wl       = flag.String("workload", "tpcc", "tpcc | stress")
	)
	flag.Parse()

	pers, ok := rapilog.Personalities[*engine]
	if !ok {
		fmt.Fprintf(os.Stderr, "rapilog-fault: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	cfg := rapilog.CampaignConfig{
		Rig:     rapilog.Config{Seed: *seed, Mode: rapilog.Mode(*mode), Personality: pers},
		Fault:   rapilog.Fault(*fault),
		Trials:  *trials,
		Clients: *clients,
	}
	if *wl == "stress" {
		cfg.NewWorkload = func() rapilog.Workload { return &rapilog.Stress{} }
	}

	sum := rapilog.RunCampaign(cfg)
	if *perTrial {
		fmt.Printf("%-6s %-12s %-8s %-8s %-6s %-8s\n", "trial", "seed", "acked", "lost", "torn", "err")
		for i, tr := range sum.Trials {
			errStr := "-"
			if tr.Err != nil {
				errStr = tr.Err.Error()
			}
			fmt.Printf("%-6d %-12d %-8d %-8d %-6v %-8s\n", i, tr.Seed, tr.Acked, tr.Missing, tr.Torn, errStr)
		}
	}
	fmt.Println(sum)
	if sum.Violations > 0 || sum.Errors > 0 {
		os.Exit(1)
	}
}
