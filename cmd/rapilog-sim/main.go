// Command rapilog-sim runs one deployment scenario and prints a full run
// report: throughput, latency percentiles, engine counters, RapiLog buffer
// statistics, and device activity. It is the tool for exploring a single
// configuration in detail.
//
// Usage:
//
//	rapilog-sim -mode rapilog -engine pg -disk hdd -clients 8 -duration 10s
//	rapilog-sim -mode native-sync -workload tpcb -trace
//	rapilog-sim -commit-trace -trace-out trace.json -metrics-out metrics.json
//	rapilog-sim -mode rapilog-replica -ack-policy quorum -quorum 1 -replicas 2
//	rapilog-sim -shards 4 -workload tpcb -clients 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro"
	"repro/internal/sim"
)

func main() {
	var (
		mode     = flag.String("mode", "rapilog", "native-sync | native-async | virt-sync | rapilog | rapilog-replica | rapilog-sharded")
		shards   = flag.Int("shards", 0, "independent log-domain shards on one machine (0/1 = unsharded; -clients is per shard)")
		engine   = flag.String("engine", "pg", "engine personality: pg | my | cx")
		diskKind = flag.String("disk", "hdd", "hdd | ssd | mem")
		psu      = flag.String("psu", "measured", "atx-spec | typical | measured")
		wl       = flag.String("workload", "tpcc", "tpcc | tpcb | stress")
		clients  = flag.Int("clients", 8, "closed-loop client count")
		duration = flag.Duration("duration", 10*time.Second, "measured virtual time")
		warmup   = flag.Duration("warmup", time.Second, "virtual warmup excluded from stats")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		trace    = flag.Bool("trace", false, "print kernel trace events")

		replicas  = flag.Int("replicas", 0, "standby replicas in rapilog-replica mode (default 2)")
		ackPolicy = flag.String("ack-policy", "local", "commit ack policy: local | quorum | remote-only")
		quorum    = flag.Int("quorum", 0, "replicas that must hold a commit before it acks (quorum/remote-only; default 1)")
		netLat    = flag.Duration("net-latency", 0, "fabric link latency (default 200µs)")

		commitTrace = flag.Bool("commit-trace", false, "record commit-lifecycle trace events")
		traceCap    = flag.Int("trace-cap", 0, "trace ring capacity (default 65536)")
		traceOut    = flag.String("trace-out", "", "write the commit-lifecycle trace as JSON to this file (implies -commit-trace)")
		metricsOut  = flag.String("metrics-out", "", "write a metrics-registry snapshot as JSON to this file")
		flightOut   = flag.String("flight-out", "", "arm the flight recorder and write its record as JSON to this file (frozen at run end if nothing froze it first)")
	)
	flag.Parse()
	if *traceOut != "" {
		*commitTrace = true
	}

	pers, ok := rapilog.Personalities[*engine]
	if !ok {
		fatalf("unknown engine %q", *engine)
	}
	var psuCfg rapilog.PSUConfig
	switch *psu {
	case "atx-spec":
		psuCfg = rapilog.PSUATXSpec
	case "typical":
		psuCfg = rapilog.PSUTypical
	case "measured":
		psuCfg = rapilog.PSUMeasured
	default:
		fatalf("unknown psu %q", *psu)
	}

	if err := rapilog.ValidateQuorumFlags(*quorum, *replicas); err != nil {
		fatalf("%v", err)
	}
	policy, err := rapilog.ParseAckPolicy(*ackPolicy, *quorum)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := rapilog.Config{
		Seed:          *seed,
		Mode:          rapilog.Mode(*mode),
		Personality:   pers,
		Disk:          rapilog.DiskKind(*diskKind),
		PSU:           psuCfg,
		Replicas:      *replicas,
		AckPolicy:     policy,
		Trace:         *commitTrace,
		TraceCapacity: *traceCap,
		Flight:        *flightOut != "",
	}
	cfg.Net.Latency = *netLat
	if rapilog.Mode(*mode) == rapilog.ModeRapiLogSharded && *shards < 2 {
		*shards = 2
	}
	if *shards > 1 {
		if *commitTrace || *traceOut != "" || *flightOut != "" {
			fatalf("tracing and the flight recorder are per log domain; not supported with -shards")
		}
		runSharded(cfg, *shards, *wl, *clients, *duration, *warmup, *metricsOut)
		return
	}
	dep, err := rapilog.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if *trace {
		dep.S.SetTrace(func(at sim.Time, format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%12v] %s\n", at, fmt.Sprintf(format, args...))
		})
	}

	var workload rapilog.Workload
	switch *wl {
	case "tpcc":
		workload = &rapilog.TPCC{Warehouses: 4, Districts: 10, Customers: 30, Items: 400}
	case "tpcb":
		workload = &rapilog.TPCB{Branches: 2, Tellers: 10, Accounts: 1000}
	case "stress":
		workload = &rapilog.Stress{}
	default:
		fatalf("unknown workload %q", *wl)
	}

	var res rapilog.RunResult
	var eng *rapilog.Engine
	done := dep.S.NewEvent("done")
	dep.S.Spawn(dep.Plat.Domain(), "bench", func(p *rapilog.Proc) {
		defer done.Fire()
		e, err := dep.Boot(p)
		if err != nil {
			fatalf("boot: %v", err)
		}
		eng = e
		if err := workload.Load(p, e); err != nil {
			fatalf("load: %v", err)
		}
		res = rapilog.RunClients(p, dep.Plat.Domain(), e, workload, rapilog.RunnerConfig{
			Clients: *clients, Duration: *duration, Warmup: *warmup,
		})
	})
	if err := dep.S.RunUntilEvent(done); err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("configuration:  mode=%s engine=%s disk=%s psu=%s clients=%d\n",
		*mode, *engine, *diskKind, *psu, *clients)
	fmt.Printf("measured:       %v (after %v warmup)\n", res.Duration, *warmup)
	fmt.Printf("throughput:     %.0f tps (%d committed, %d aborted)\n", res.TPS(), res.Committed, res.Aborted)
	fmt.Printf("txn latency:    p50=%v p95=%v p99=%v max=%v\n",
		res.TxnLatency.Quantile(0.50).Round(time.Microsecond),
		res.TxnLatency.Quantile(0.95).Round(time.Microsecond),
		res.TxnLatency.Quantile(0.99).Round(time.Microsecond),
		res.TxnLatency.Max().Round(time.Microsecond))
	st := eng.Stats()
	fmt.Printf("commit latency: p50=%v p99=%v\n",
		st.CommitLatency.Quantile(0.50).Round(time.Microsecond),
		st.CommitLatency.Quantile(0.99).Round(time.Microsecond))
	fmt.Printf("engine:         %d commits, %d aborts, %d checkpoints\n",
		st.Commits.Value(), st.Aborts.Value(), st.Checkpoints.Value())
	ws := eng.Log().Stats()
	fmt.Printf("wal:            %d appends, %d physical forces, %d piggybacked, %d blocks written\n",
		ws.Appends.Value(), ws.Forces.Value(), ws.ForceWaits.Value(), ws.BlocksWritten.Value())
	if dep.Logger != nil {
		rs := dep.Logger.RapiStats()
		fmt.Printf("rapilog:        %d writes (%d absorbed), %d no-op barriers, %d throttled,\n",
			rs.Writes.Value(), rs.Absorbed.Value(), rs.Flushes.Value(), rs.Throttled.Value())
		fmt.Printf("                buffer bound %d KiB, peak occupancy %d KiB, ack p99 %v\n",
			dep.Logger.MaxBuffer()/1024, rs.Occupancy.Peak()/1024,
			rs.AckLatency.Quantile(0.99).Round(time.Microsecond))
	}
	ds := dep.Disk.Stats()
	fmt.Printf("disk:           %d reads, %d writes, %d flushes, write p99 %v\n",
		ds.Reads.Value(), ds.Writes.Value(), ds.Flushes.Value(),
		ds.WriteLatency.Quantile(0.99).Round(time.Microsecond))
	if dep.Shipper != nil {
		reg := dep.Obs.Registry()
		fmt.Printf("replication:    policy=%s, %d standbys, %d records shipped (%d KiB), %d resends, lag peak %d\n",
			policy, len(dep.Standbys), reg.Counter("repl.shipped").Value(),
			reg.Counter("repl.shipped_bytes").Value()/1024,
			reg.Counter("repl.resends").Value(), reg.Gauge("repl.lag").Peak())
		for _, pr := range dep.Shipper.Progress() {
			lat := reg.Histogram("repl." + pr.Name + ".ack_latency")
			fmt.Printf("                %s: acked %d/%d, ack latency p50=%v p99=%v\n",
				pr.Name, pr.Acked, dep.Shipper.LastSeq(),
				lat.Quantile(0.50).Round(time.Microsecond),
				lat.Quantile(0.99).Round(time.Microsecond))
		}
	}

	if *commitTrace {
		tr := dep.Obs.Tracer()
		fmt.Printf("\ncommit trace:   %d events (%d dropped by the ring)\n", tr.Emitted(), tr.Dropped())
		fmt.Printf("\nstage latencies:\n%s\n", dep.Obs.Registry().Snapshot().LatencyTable())
		if dep.Logger != nil {
			rep, err := dep.AuditExposure()
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("durability:     %s\n", rep.Verdict())
			if rep.AckToDurable.Count() > 0 {
				fmt.Printf("ack→durable:    p50=%v p99=%v max=%v\n",
					rep.AckToDurable.Quantile(0.50).Round(time.Microsecond),
					rep.AckToDurable.Quantile(0.99).Round(time.Microsecond),
					rep.AckToDurable.Max().Round(time.Microsecond))
			}
		}
	}
	if dep.Monitor != nil {
		rep := dep.Monitor.Report()
		fmt.Printf("monitor:        %d events checked, %d acked txs, %d violations\n",
			rep.EventsSeen, rep.TxAcked, rep.Total)
		for _, v := range rep.Samples {
			fmt.Printf("                %s at %v: %s\n", v.Invariant, v.At(), v.Detail)
		}
	}
	if *traceOut != "" {
		writeFileJSON(*traceOut, dep.Obs.Tracer().WriteJSON)
	}
	if *metricsOut != "" {
		snap := dep.Obs.Registry().Snapshot()
		writeFileJSON(*metricsOut, snap.WriteJSON)
	}
	if *flightOut != "" {
		dep.Flight.Freeze(dep.S.Now().Duration(), "run-end")
		writeFileJSON(*flightOut, dep.Flight.Record().WriteJSON)
	}
}

// runSharded drives an n-shard fleet: one client pool per shard over a
// partitioned workload, then a fleet report with per-shard throughput and
// rolled-up RapiLog counters.
func runSharded(cfg rapilog.Config, n int, wl string, clients int, duration, warmup time.Duration, metricsOut string) {
	sh, err := rapilog.NewSharded(cfg, n)
	if err != nil {
		fatalf("%v", err)
	}

	// Weak scaling: per-shard workload provisioning is constant, so the
	// fleet's data set grows with the shard count.
	ws := make([]rapilog.Workload, n)
	switch wl {
	case "tpcc":
		parts, err := rapilog.PartitionTPCC(rapilog.TPCC{Warehouses: 4 * n, Districts: 10, Customers: 30, Items: 400}, sh.Router)
		if err != nil {
			fatalf("%v", err)
		}
		for i, p := range parts {
			ws[i] = p
		}
	case "tpcb":
		parts, err := rapilog.PartitionTPCB(rapilog.TPCB{Branches: 2 * n, Tellers: 10, Accounts: 1000}, sh.Router)
		if err != nil {
			fatalf("%v", err)
		}
		for i, p := range parts {
			ws[i] = p
		}
	case "stress":
		for i := range ws {
			ws[i] = &rapilog.Stress{}
		}
	default:
		fatalf("unknown workload %q", wl)
	}

	var res rapilog.ShardedResult
	done := sh.S.NewEvent("done")
	sh.S.Spawn(nil, "bench", func(p *rapilog.Proc) {
		defer done.Fire()
		engines, err := sh.BootAll(p)
		if err != nil {
			fatalf("boot: %v", err)
		}
		doms := make([]*rapilog.Domain, n)
		for i, r := range sh.Shards {
			doms[i] = r.Plat.Domain()
			if err := ws[i].Load(p, engines[i]); err != nil {
				fatalf("shard %d load: %v", i, err)
			}
		}
		res, err = rapilog.RunShardedClients(p, doms, engines, ws, nil, rapilog.RunnerConfig{
			Clients: clients, Duration: duration, Warmup: warmup,
		})
		if err != nil {
			fatalf("%v", err)
		}
	})
	if err := sh.S.RunUntilEvent(done); err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("configuration:  mode=%s shards=%d clients=%d/shard workload=%s\n",
		rapilog.ModeRapiLogSharded, n, clients, wl)
	fmt.Printf("measured:       %v (after %v warmup)\n", res.Total.Duration, warmup)
	fmt.Printf("fleet:          %.0f tps (%d committed, %d aborted)\n",
		res.Total.TPS(), res.Total.Committed, res.Total.Aborted)
	fmt.Printf("txn latency:    p50=%v p95=%v p99=%v\n",
		res.Total.TxnLatency.Quantile(0.50).Round(time.Microsecond),
		res.Total.TxnLatency.Quantile(0.95).Round(time.Microsecond),
		res.Total.TxnLatency.Quantile(0.99).Round(time.Microsecond))
	for i, r := range res.Shards {
		fmt.Printf("shard %-2d        %.0f tps (%d committed), buffer bound %d KiB\n",
			i, r.TPS(), r.Committed, sh.Shards[i].Logger.MaxBuffer()/1024)
	}
	reg := sh.Obs.Registry()
	ack := rapilog.RollupHistogram(reg, n, "engine.commit.ack_latency")
	fmt.Printf("rollup:         %d commits, %d rapilog writes, commit ack p50=%v p99=%v\n",
		rapilog.RollupCounter(reg, n, "engine.commits"),
		rapilog.RollupCounter(reg, n, "rapilog.writes"),
		ack.Quantile(0.50).Round(time.Microsecond),
		ack.Quantile(0.99).Round(time.Microsecond))

	if metricsOut != "" {
		snap := reg.Snapshot()
		writeFileJSON(metricsOut, snap.WriteJSON)
	}
}

// writeFileJSON streams one JSON document into path via write.
func writeFileJSON(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rapilog-sim: "+format+"\n", args...)
	os.Exit(1)
}
