package rapilog

// One testing.B benchmark per reproduced table/figure (E1–E10, A1–A7).
// Each iteration executes the experiment in quick mode and reports its
// headline values as custom metrics, so `go test -bench=.` regenerates a
// compact version of the whole evaluation. Run the full-size sweeps with
// cmd/rapilog-bench.

import (
	"fmt"
	"testing"
	"time"
)

func runExperimentBench(b *testing.B, id string, metric func(rep *ExperimentReport) map[string]float64) {
	b.Helper()
	exp := ExperimentByID(id)
	if exp == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(ExperimentOptions{Quick: true, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && metric != nil {
			for name, v := range metric(rep) {
				b.ReportMetric(v, name)
			}
		}
	}
}

func tpsMetrics(keys ...string) func(rep *ExperimentReport) map[string]float64 {
	return func(rep *ExperimentReport) map[string]float64 {
		out := make(map[string]float64, len(keys))
		for _, k := range keys {
			out[k+"_tps"] = rep.Values[k]
		}
		return out
	}
}

// BenchmarkE1 regenerates the PG-like TPC-C throughput-vs-clients figure.
func BenchmarkE1ThroughputPG(b *testing.B) {
	runExperimentBench(b, "e1", tpsMetrics("rapilog/c=8", "native-sync/c=8"))
}

// BenchmarkE2 regenerates the MY-like engine figure.
func BenchmarkE2ThroughputMY(b *testing.B) {
	runExperimentBench(b, "e2", tpsMetrics("rapilog/c=8", "native-sync/c=8"))
}

// BenchmarkE3 regenerates the CX-like (commercial) engine figure.
func BenchmarkE3ThroughputCX(b *testing.B) {
	runExperimentBench(b, "e3", tpsMetrics("rapilog/c=8", "native-sync/c=8"))
}

// BenchmarkE4 regenerates the virtualisation-overhead table.
func BenchmarkE4VirtOverhead(b *testing.B) {
	runExperimentBench(b, "e4", func(rep *ExperimentReport) map[string]float64 {
		return map[string]float64{"overhead_%": rep.Values["overhead_pct"]}
	})
}

// BenchmarkE5 regenerates the PSU hold-up / flush-budget table.
func BenchmarkE5PSUHoldup(b *testing.B) {
	runExperimentBench(b, "e5", func(rep *ExperimentReport) map[string]float64 {
		return map[string]float64{"safe_MiB_measured_hdd": rep.Values["measured/hdd/safe_bytes"] / (1 << 20)}
	})
}

// BenchmarkE6 regenerates the plug-pull trial table.
func BenchmarkE6PowerFailTrials(b *testing.B) {
	runExperimentBench(b, "e6", func(rep *ExperimentReport) map[string]float64 {
		return map[string]float64{
			"lost": rep.Values["rapilog/pg/lost"] + rep.Values["rapilog/my/lost"] + rep.Values["rapilog/cx/lost"],
		}
	})
}

// BenchmarkE7 regenerates the commit-latency distribution.
func BenchmarkE7CommitLatency(b *testing.B) {
	runExperimentBench(b, "e7", func(rep *ExperimentReport) map[string]float64 {
		return map[string]float64{
			"sync_p50_us":    rep.Values["native-sync/p50_us"],
			"rapilog_p50_us": rep.Values["rapilog/p50_us"],
		}
	})
}

// BenchmarkE8 regenerates the buffer-bound sweep.
func BenchmarkE8BufferSweep(b *testing.B) {
	runExperimentBench(b, "e8", nil)
}

// BenchmarkE9 regenerates the guest-crash trial table.
func BenchmarkE9GuestCrashTrials(b *testing.B) {
	runExperimentBench(b, "e9", func(rep *ExperimentReport) map[string]float64 {
		return map[string]float64{
			"rapilog_lost": rep.Values["rapilog/lost"],
			"async_lost":   rep.Values["native-async/lost"],
		}
	})
}

// BenchmarkE10 regenerates the raw-device microbenchmark.
func BenchmarkE10RawDevice(b *testing.B) {
	runExperimentBench(b, "e10", func(rep *ExperimentReport) map[string]float64 {
		return map[string]float64{"hdd_rand_sync_iops": rep.Values["hdd/rand-sync-4k/iops"]}
	})
}

// BenchmarkA1 regenerates the group-commit ablation.
func BenchmarkA1GroupCommit(b *testing.B) {
	runExperimentBench(b, "a1", tpsMetrics("rapilog/c=16", "native-sync+delay/c=16"))
}

// BenchmarkA2 regenerates the SSD-substrate ablation.
func BenchmarkA2SSD(b *testing.B) {
	runExperimentBench(b, "a2", tpsMetrics("rapilog/c=8"))
}

// BenchmarkA3 regenerates the sizing-rule-violation ablation.
func BenchmarkA3UnsafeSizing(b *testing.B) {
	runExperimentBench(b, "a3", func(rep *ExperimentReport) map[string]float64 {
		return map[string]float64{
			"safe_lost":   rep.Values["safe-bound/lost"],
			"unsafe_lost": rep.Values["8MiB-unsafe/lost"] + rep.Values["32MiB-unsafe/lost"],
		}
	})
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks: raw cost of the hot paths (real time, not
// virtual): kernel event dispatch, a buffered log write, a sync commit.
// ---------------------------------------------------------------------------

// BenchmarkLoggerAck measures the simulation cost of one RapiLog buffered
// write (the fast path every commit takes).
func BenchmarkLoggerAck(b *testing.B) {
	dep, err := New(Config{Seed: 1, Mode: ModeRapiLog, NoDaemons: true})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	blocks := dep.Logger.Sectors()/8 - 1 // stay inside the log partition at any b.N
	n := 0
	dep.S.Spawn(dep.Plat.Domain(), "w", func(p *Proc) {
		for ; n < b.N; n++ {
			if err := dep.Logger.Write(p, int64(n)%blocks*8, data, false); err != nil {
				b.Errorf("write: %v", err)
				return
			}
		}
	})
	b.ResetTimer()
	if err := dep.S.RunFor(24 * time.Hour); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("completed %d/%d", n, b.N)
	}
}

// BenchmarkCommitRapiLog measures a full engine commit through the RapiLog
// path (WAL append + no-op force + apply).
func BenchmarkCommitRapiLog(b *testing.B) {
	benchmarkCommit(b, ModeRapiLog)
}

// BenchmarkCommitNativeSync measures a full engine commit with a real
// synchronous force to the HDD — the baseline RapiLog removes.
func BenchmarkCommitNativeSync(b *testing.B) {
	benchmarkCommit(b, ModeNativeSync)
}

func benchmarkCommit(b *testing.B, mode Mode) {
	dep, err := New(Config{Seed: 1, Mode: mode, NoDaemons: true})
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	dep.S.Spawn(dep.Plat.Domain(), "db", func(p *Proc) {
		e, err := dep.Boot(p)
		if err != nil {
			b.Errorf("boot: %v", err)
			return
		}
		for ; n < b.N; n++ {
			tx := e.Begin(p)
			if err := tx.Put(fmt.Sprintf("k%d", n), []byte("v")); err != nil {
				b.Errorf("put: %v", err)
				return
			}
			if err := tx.Commit(); err != nil {
				b.Errorf("commit: %v", err)
				return
			}
		}
	})
	b.ResetTimer()
	if err := dep.S.RunFor(1000 * time.Hour); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("completed %d/%d", n, b.N)
	}
}

// BenchmarkA5 regenerates the TPC-B sweep.
func BenchmarkA5TPCB(b *testing.B) {
	runExperimentBench(b, "a5", tpsMetrics("rapilog/c=16", "native-sync/c=16"))
}

// BenchmarkA6 regenerates the hardware-alternatives comparison.
func BenchmarkA6HardwareAlternatives(b *testing.B) {
	runExperimentBench(b, "a6", tpsMetrics("rapilog", "native-sync+nvram"))
}

// BenchmarkA7 regenerates the recovery-time table.
func BenchmarkA7RecoveryCost(b *testing.B) {
	runExperimentBench(b, "a7", func(rep *ExperimentReport) map[string]float64 {
		return map[string]float64{"redo_never_ms": rep.Values["never/redo_ms"]}
	})
}
