package rapilog

import (
	"fmt"
	"testing"
	"time"
)

// TestQuickstart is the package documentation example, end to end: build a
// RapiLog deployment, commit, pull the plug, recover, verify.
func TestQuickstart(t *testing.T) {
	dep, err := New(Config{Seed: 1, Mode: ModeRapiLog})
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal()
	dep.S.Spawn(dep.Plat.Domain(), "db", func(p *Proc) {
		e, err := dep.Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		for i := 0; i < 10; i++ {
			tx := e.Begin(p)
			k := fmt.Sprintf("key-%d", i)
			if err := tx.Put(k, []byte("value")); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
			j.Add(k, []byte("value"))
		}
		dep.CutPower()
		p.Sleep(time.Hour)
	})
	var verified bool
	dep.S.Spawn(nil, "operator", func(p *Proc) {
		p.Sleep(5 * time.Second)
		if _, err := dep.RecoverAfterPower(p); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		dep.S.Spawn(dep.Plat.Domain(), "db2", func(p *Proc) {
			e, err := dep.Boot(p)
			if err != nil {
				t.Errorf("reboot: %v", err)
				return
			}
			res, err := j.Verify(p, e)
			if err != nil || !res.Ok() {
				t.Errorf("durability audit: %v %v", res, err)
				return
			}
			verified = true
		})
	})
	if err := dep.S.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !verified {
		t.Fatal("audit did not run")
	}
}

func TestFacadeSurface(t *testing.T) {
	if len(Modes) != 4 || len(Experiments) != 20 {
		t.Fatalf("facade lists: %d modes, %d experiments", len(Modes), len(Experiments))
	}
	for _, m := range Modes {
		if m == ModeRapiLogReplica {
			t.Fatal("the replicated extension must not join the paper's four-mode sweep")
		}
	}
	if ExperimentByID("e1") == nil || ExperimentByID("nope") != nil {
		t.Fatal("ExperimentByID broken")
	}
	if PGLike.Name != "pg" || len(Personalities) != 3 {
		t.Fatal("personalities broken")
	}
	if PSUMeasured.HoldupMin <= PSUTypical.HoldupMin {
		t.Fatal("PSU profiles out of order")
	}
}

func TestFacadeCampaign(t *testing.T) {
	sum := RunCampaign(CampaignConfig{
		Rig:    Config{Seed: 9, Mode: ModeRapiLog},
		Fault:  FaultPowerCut,
		Trials: 1,
	})
	if sum.Errors > 0 || sum.TotalLost > 0 {
		t.Fatalf("facade campaign: %s", sum)
	}
}

func TestSafeBufferSizeExposed(t *testing.T) {
	dep, err := New(Config{Seed: 2, Mode: ModeRapiLog})
	if err != nil {
		t.Fatal(err)
	}
	if got := SafeBufferSize(dep.Machine, dep.DumpPart); got != dep.Logger.MaxBuffer() {
		t.Fatalf("SafeBufferSize %d != logger bound %d", got, dep.Logger.MaxBuffer())
	}
}
