package replica

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestShipperStopReleasesDaemonsAndBuffers: the demotion path reuses a live
// domain for consecutive shippers, so Stop must kill the ack/probe/flush
// daemons (not the domain) and return every buffer reference the shipper
// holds. Two sequential shippers in one domain must leave no orphans.
func TestShipperStopReleasesDaemonsAndBuffers(t *testing.T) {
	s := sim.New(31)
	fab := netsim.New(s, netsim.Config{Seed: 32})
	cfg := Config{}
	st := NewStandby(s, fab, "standby0", cfg)
	dom := s.NewDomain("hv")

	sh1 := NewShipper(s, fab, dom, 1, []string{"standby0"}, cfg)
	if got := dom.Procs(); got != 3 {
		t.Fatalf("shipper spawned %d procs in its domain, want 3", got)
	}
	s.Spawn(nil, "writer1", func(p *sim.Proc) {
		// Ship with the standby isolated so records stay retained (and one
		// stays pending un-flushed: Stop must release both queues).
		fab.Isolate("standby0")
		for i := 0; i < 8; i++ {
			sh1.Ship(int64(i*8), payload(i, 512))
		}
		sh1.Stop()
	})
	if err := s.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := dom.Procs(); got != 0 {
		t.Fatalf("%d orphaned daemons after Stop", got)
	}
	if dom.Dead() {
		t.Fatal("Stop killed the whole domain")
	}
	if got := sh1.retainedB.Value(); got != 0 {
		t.Fatalf("%d bytes still retained after Stop", got)
	}
	if !sh1.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}

	// A second shipper in the SAME domain must work end to end.
	fab.Restore("standby0")
	sh2 := NewShipper(s, fab, dom, 2, []string{"standby0"}, cfg)
	if got := dom.Procs(); got != 3 {
		t.Fatalf("second shipper spawned %d procs, want 3", got)
	}
	s.Spawn(nil, "writer2", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			sh2.Ship(int64(i*8), payload(i, 512))
		}
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, st, 2, 10)
	sh2.Stop()
	if err := s.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := dom.Procs(); got != 0 {
		t.Fatalf("%d orphaned daemons after second Stop", got)
	}
	sh2.Stop() // idempotent
}

// TestEpochRolloverReplayOrder is the rollover property: a standby holding
// prefixes from epochs e and e+1 with overlapping lbas must replay them in
// epoch order at recovery — for every lba, the image ends up with the data
// from the HIGHEST epoch that wrote it, across random write patterns.
func TestEpochRolloverReplayOrder(t *testing.T) {
	for _, seed := range []int64{41, 43, 47, 53} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := sim.New(seed)
			fab := netsim.New(s, netsim.Config{Seed: seed + 1})
			cfg := Config{}
			st := NewStandby(s, fab, "standby0", cfg)
			mem := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 1 << 20})

			// winner[lba] = epoch that wrote it last (higher epoch wins).
			winner := make(map[int64]int)
			mark := func(e int, lba int64) []byte {
				b := make([]byte, 512)
				for i := range b {
					b[i] = byte(e*31 + int(lba))
				}
				return b
			}
			done := s.NewEvent("done")
			s.Spawn(nil, "driver", func(p *sim.Proc) {
				defer done.Fire()
				for e := 1; e <= 2; e++ {
					sh := NewShipper(s, fab, nil, e, []string{"standby0"}, cfg)
					n := 10 + rng.Intn(20)
					for i := 0; i < n; i++ {
						lba := int64(rng.Intn(16))
						sh.Ship(lba, mark(e, lba))
						winner[lba] = e
						p.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					}
					p.Sleep(10 * time.Millisecond) // settle before rollover
					sh.Stop()
				}
				rep, err := Recover(p, []*Standby{st}, mem)
				if err != nil {
					t.Errorf("recover: %v", err)
					return
				}
				if rep.Epochs != 2 {
					t.Errorf("recovered %d epochs, want 2", rep.Epochs)
				}
				for lba, e := range winner {
					got, err := mem.Read(p, lba, 1)
					if err != nil {
						t.Errorf("read lba %d: %v", lba, err)
						continue
					}
					if !bytes.Equal(got, mark(e, lba)) {
						t.Errorf("lba %d: epoch %d's write did not win the replay", lba, e)
					}
				}
			})
			if err := s.RunUntilEvent(done); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStaleEpochAckAfterRollover: an epoch-1 ack that arrives after the
// cluster has rolled to epoch 2 must not count toward the new shipper's
// quorum, and must be counted as a fencing rejection.
func TestStaleEpochAckAfterRollover(t *testing.T) {
	s := sim.New(61)
	fab := netsim.New(s, netsim.Config{Seed: 62})
	cfg := Config{}
	cfg.applyDefaults()
	NewStandby(s, fab, "standby0", cfg)
	sh := NewShipper(s, fab, nil, 2, []string{"standby0"}, cfg)
	rejBefore := sh.fenceRej.Value()
	s.Spawn(nil, "forger", func(p *sim.Proc) {
		fab.Send("standby0", cfg.PrimaryName, ackBytes, ackMsg{Epoch: 1, Seq: 7, Seen: 7, From: "standby0"})
	})
	if err := s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sh.QuorumSeq(1); got != 0 {
		t.Fatalf("stale-epoch ack advanced quorum to %d", got)
	}
	if got := sh.fenceRej.Value(); got != rejBefore+1 {
		t.Fatalf("fence rejections %d, want %d", got, rejBefore+1)
	}
}

// TestFenceRejectsStaleStream: once a standby is fenced at epoch 2, frames
// from the deposed epoch-1 shipper must be rejected — not applied, not
// acked — while the epoch-2 stream flows normally.
func TestFenceRejectsStaleStream(t *testing.T) {
	s := sim.New(71)
	fab := netsim.New(s, netsim.Config{Seed: 72})
	cfg := Config{}
	cfg.applyDefaults()
	st := NewStandby(s, fab, "standby0", cfg)
	coordEp := fab.Endpoint("coord")
	sh1 := NewShipper(s, fab, nil, 1, []string{"standby0"}, cfg)

	done := s.NewEvent("done")
	s.Spawn(nil, "driver", func(p *sim.Proc) {
		defer done.Fire()
		sh1.Ship(0, payload(0, 512))
		p.Sleep(10 * time.Millisecond)
		if got := st.AppliedSeq(1); got != 1 {
			t.Errorf("pre-fence apply: %d", got)
		}
		// Fence at epoch 2; wait for the ack.
		coordEp.Send("standby0", fenceMsgBytes, FenceMsg{Epoch: 2, From: "coord"})
		m := coordEp.Recv(p)
		fa, ok := m.Payload.(FenceAck)
		if !ok || fa.Epoch != 2 {
			t.Errorf("fence ack = %#v", m.Payload)
		}
		if st.Fenced() != 2 {
			t.Errorf("standby fence = %d, want 2", st.Fenced())
		}
		// The deposed shipper keeps shipping: nothing may apply.
		rej := st.fenceRej.Value()
		sh1.Ship(8, payload(1, 512))
		p.Sleep(10 * time.Millisecond)
		if got := st.AppliedSeq(1); got != 1 {
			t.Errorf("fenced standby applied epoch-1 seq %d", got)
		}
		if st.fenceRej.Value() <= rej {
			t.Error("fenced record not counted as rejection")
		}
		sh1.Stop()
		// The promoted epoch-2 stream flows normally.
		sh2 := NewShipper(s, fab, nil, 2, []string{"standby0"}, cfg)
		sh2.Ship(16, payload(2, 512))
		p.Sleep(10 * time.Millisecond)
		if got := st.AppliedSeq(2); got != 1 {
			t.Errorf("fenced standby rejected the fenced epoch's own stream (applied %d)", got)
		}
	})
	if err := s.RunUntilEvent(done); err != nil {
		t.Fatal(err)
	}
}

// TestFenceDeposesShipper: a fence reaching the old primary's ack loop marks
// the shipper deposed — it fence-acks (so the coordinator's wait completes
// even with the primary alive) and later acks stop advancing quorum.
func TestFenceDeposesShipper(t *testing.T) {
	s := sim.New(81)
	fab := netsim.New(s, netsim.Config{Seed: 82})
	cfg := Config{}
	cfg.applyDefaults()
	NewStandby(s, fab, "standby0", cfg)
	sh := NewShipper(s, fab, nil, 1, []string{"standby0"}, cfg)
	coordEp := fab.Endpoint("coord")
	done := s.NewEvent("done")
	s.Spawn(nil, "driver", func(p *sim.Proc) {
		defer done.Fire()
		coordEp.Send(cfg.PrimaryName, fenceMsgBytes, FenceMsg{Epoch: 2, From: "coord"})
		m := coordEp.Recv(p)
		if fa, ok := m.Payload.(FenceAck); !ok || fa.Epoch != 2 {
			t.Errorf("fence ack = %#v", m.Payload)
		}
		if !sh.Fenced() {
			t.Error("shipper not marked fenced")
		}
		// Acks for the deposed epoch are dropped: quorum never advances.
		sh.Ship(0, payload(0, 512))
		p.Sleep(20 * time.Millisecond)
		if got := sh.QuorumSeq(1); got != 0 {
			t.Errorf("deposed shipper advanced quorum to %d", got)
		}
	})
	if err := s.RunUntilEvent(done); err != nil {
		t.Fatal(err)
	}
}

// TestStateQuery: a standby answers a StateReq with a copy of its per-epoch
// applied prefixes.
func TestStateQuery(t *testing.T) {
	s := sim.New(91)
	fab := netsim.New(s, netsim.Config{Seed: 92})
	cfg := Config{}
	cfg.applyDefaults()
	st := NewStandby(s, fab, "standby0", cfg)
	sh := NewShipper(s, fab, nil, 3, []string{"standby0"}, cfg)
	coordEp := fab.Endpoint("coord")
	done := s.NewEvent("done")
	s.Spawn(nil, "driver", func(p *sim.Proc) {
		defer done.Fire()
		for i := 0; i < 5; i++ {
			sh.Ship(int64(i*8), payload(i, 512))
		}
		p.Sleep(10 * time.Millisecond)
		coordEp.Send("standby0", fenceMsgBytes, StateReq{From: "coord"})
		m := coordEp.Recv(p)
		sr, ok := m.Payload.(StateResp)
		if !ok {
			t.Errorf("state resp = %#v", m.Payload)
			return
		}
		if sr.From != "standby0" || sr.Applied[3] != 5 {
			t.Errorf("state resp %+v, want applied[3]=5", sr)
		}
		// The response must not alias the live map.
		sr.Applied[3] = 999
		if st.AppliedSeq(3) != 5 {
			t.Error("StateResp aliases the standby's applied map")
		}
	})
	if err := s.RunUntilEvent(done); err != nil {
		t.Fatal(err)
	}
}
