// Package replica implements the replicated durability domain: log shipping
// from the RapiLog buffer to N standby replicas over the simulated network
// fabric, with a sequence-numbered stream protocol, cumulative acks, and
// per-replica catch-up after partitions heal.
//
// The protocol is deliberately minimal — the subsystem exists to extend the
// paper's safety argument, not to reinvent consensus:
//
//   - The Shipper assigns every shipped write a sequence number within the
//     current power epoch, coalesces records shipped in the same instant
//     into wire frames (one fabric send per frame per standby; one
//     cumulative ack back per frame), and sends each frame to every
//     standby. Records are
//     retained until every standby has cumulatively acknowledged them —
//     bounded by Config.RetainLimit: a standby whose acks stall while
//     retention exceeds the bound is evicted (lost for the epoch once the
//     stream is trimmed past it) and re-syncs when the next epoch restarts
//     the stream at seq 1.
//   - A Standby applies records strictly in sequence order (out-of-order
//     arrivals are buffered, duplicates re-acknowledged) and replies with a
//     cumulative ack: "I durably hold everything up to seq S". The ack also
//     carries the highest sequence the standby has seen, so the shipper can
//     tell a hole (retransmit now) from a tail still in flight.
//   - Lost records and lost acks are repaired by retransmission: a hole
//     reported by an ack is refilled immediately, and a probe resends the
//     oldest unacknowledged window whenever a replica has been silent for a
//     full retransmit interval — which is how a replica catches back up
//     after a partition heals or after it restarts.
//
// Epochs make power cycles safe: each Logger rebuild gets a fresh Shipper
// with the next epoch number, standbys track applied prefixes per epoch,
// and recovery replays epochs in order — so a record from a dead epoch can
// never overwrite a newer one.
//
// Standbys live in their own simulation-level crash domains, NOT in the
// machine's: they model separate machines in separate failure domains, and
// surviving the primary's power loss is their entire purpose.
package replica

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/disk"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Wire-size model: per-record framing (epoch, seq, lba, length, CRC), the
// per-frame header (epoch, record count, frame CRC), and the fixed size of
// a cumulative ack.
const (
	recordOverhead = 32
	frameOverhead  = 16
	ackBytes       = 24
)

// Config tunes the shipping protocol. The same Config parameterises the
// Shipper and every Standby so both sides agree on names.
type Config struct {
	// PrimaryName is the shipper's endpoint on the fabric; default "primary".
	PrimaryName string
	// RetransmitEvery is the silent-replica probe interval: a replica whose
	// acks have stalled for this long gets its oldest unacknowledged window
	// resent. Default 10ms.
	RetransmitEvery time.Duration
	// HoleResendMin rate-limits hole-triggered retransmissions per replica
	// (an ack reporting seen > acked means a gap lost on the wire). Default
	// 2ms — about two RTTs on the default link.
	HoleResendMin time.Duration
	// ResendWindow bounds records resent to one replica per repair round;
	// default 128.
	ResendWindow int
	// MaxFrameRecords caps how many pending records are coalesced into one
	// wire frame; default 64. A flush fires synchronously the moment the
	// cap is reached, so a single non-yielding producer still frames.
	MaxFrameRecords int
	// MaxFrameBytes caps a frame's payload bytes; default 256 KiB. A single
	// record larger than the cap still ships — alone in its own frame.
	MaxFrameBytes int
	// ApplyDelay is the standby-side cost of processing one record
	// (validate, append to its durable log); default 2µs.
	ApplyDelay time.Duration
	// SectorSize is the log device's sector granularity. Shipped records are
	// sector images — recovery folds them back onto sector boundaries — so
	// Ship panics on a payload that is not a whole number of sectors: that
	// is a protocol violation by the caller, not a runtime condition.
	// Default 512.
	SectorSize int
	// RetainLimit bounds the bytes of shipped-but-unacknowledged records the
	// shipper retains for retransmission. While every standby keeps acking,
	// retention trails the slowest cumulative ack and stays tiny; a standby
	// that stops acking (crash, long partition) would otherwise pin the
	// whole stream in memory at the write rate for the whole outage. When
	// retained bytes exceed RetainLimit and a standby's ack has not advanced
	// for DeadAfter, that standby is evicted: retention is trimmed past it,
	// and it is lost for the epoch — it re-syncs naturally at the next
	// epoch, when the stream restarts from seq 1. Default 64 MiB.
	RetainLimit int64
	// DeadAfter is the ack-stall threshold for eviction; it only applies
	// while retention exceeds RetainLimit. Default 500ms.
	DeadAfter time.Duration
	// Reg, when set, registers the subsystem's instruments centrally.
	Reg *obs.Registry
	// Trace, when set, records replication trace events (ship, replica
	// apply/ack, quorum, repair, evict, epoch) with causal parentage: a
	// shipped record's span rides the wire in Record.Span, so a standby's
	// apply links back to the primary-side ship that caused it.
	Trace *obs.Tracer
	// TraceQuorumK, when > 0, makes the shipper emit EvQuorumMet the
	// moment the k-th replica covers a sequence — the trace-visible form
	// of the ack policy's quorum barrier. Zero (no quorum tracing) for
	// local-ack deployments.
	TraceQuorumK int
}

func (c *Config) applyDefaults() {
	if c.PrimaryName == "" {
		c.PrimaryName = "primary"
	}
	if c.RetransmitEvery == 0 {
		c.RetransmitEvery = 10 * time.Millisecond
	}
	if c.HoleResendMin == 0 {
		c.HoleResendMin = 2 * time.Millisecond
	}
	if c.ResendWindow == 0 {
		c.ResendWindow = 128
	}
	if c.MaxFrameRecords == 0 {
		c.MaxFrameRecords = 64
	}
	if c.MaxFrameBytes == 0 {
		c.MaxFrameBytes = 256 << 10
	}
	if c.ApplyDelay == 0 {
		c.ApplyDelay = 2 * time.Microsecond
	}
	if c.SectorSize == 0 {
		c.SectorSize = 512
	}
	if c.RetainLimit == 0 {
		c.RetainLimit = 64 << 20
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 500 * time.Millisecond
	}
}

// Record is one shipped log write: a copy of the payload plus where it
// belongs on the log partition. Records double as the wire format. Span is
// the ship's trace context riding the wire (zero when tracing is off) —
// the analogue of a traceparent header — so standby-side events parent
// under the primary-side ship span.
type Record struct {
	Epoch int
	Seq   uint64
	Lba   int64
	Data  []byte
	Span  obs.SpanID

	// buf is the pooled backing array behind Data on the primary side. It
	// is nil for records built by tests, for standby-held copies, and in
	// recovery replay — the wire format and Recover are unaffected.
	buf *payloadBuf
}

// payloadBuf is a pooled, refcounted backing array for a shipped record's
// payload. The retained stream holds one reference; every frame carrying a
// copy of the record holds one more. The buffer returns to its size-class
// pool only when the last reference dies — which is what makes recycling
// safe under the fabric's delivery-by-reference contract: no frame still in
// flight can ever observe a recycled buffer.
type payloadBuf struct {
	data []byte
	refs int
}

// frame is one wire-level batch of records bound for a replica link: the
// shipper issues one Fabric send per frame instead of one per record, and a
// standby applies the whole frame in one pass and answers with one
// cumulative ack. Frames are pooled and refcounted (netsim.Refcounted): a
// fresh frame starts with one reference per replica it is broadcast to —
// the fabric releases dropped copies, receivers release on delivery — and
// returns to its shipper's pool when the last reference dies.
type frame struct {
	epoch int
	recs  []Record
	span  obs.SpanID
	refs  int
	sh    *Shipper
}

// Retain and Release implement netsim.Refcounted (the fabric retains
// duplicated deliveries and releases dropped ones).
func (f *frame) Retain() { f.refs++ }

func (f *frame) Release() {
	f.refs--
	if f.refs == 0 {
		f.sh.putFrame(f)
	}
}

// OwnershipSum implements netsim.Checksummer: an FNV-1a digest over the
// frame header and every record's identity and payload bytes, so the
// ownership check catches a pooled buffer recycled while the frame was
// still in flight.
func (f *frame) OwnershipSum() uint32 {
	h := uint32(2166136261)
	mix64 := func(v uint64) {
		for i := 0; i < 64; i += 8 {
			h = (h ^ uint32(v>>i&0xff)) * 16777619
		}
	}
	mix64(uint64(f.epoch))
	mix64(uint64(f.span))
	mix64(uint64(len(f.recs)))
	for i := range f.recs {
		r := &f.recs[i]
		mix64(r.Seq)
		mix64(uint64(r.Lba))
		for _, b := range r.Data {
			h = (h ^ uint32(b)) * 16777619
		}
	}
	return h
}

// ackMsg is a standby's cumulative acknowledgement for one epoch.
type ackMsg struct {
	Epoch int
	Seq   uint64 // everything ≤ Seq is durably applied
	Seen  uint64 // highest seq received (Seen > Seq ⇒ a hole the shipper should refill)
	From  string
}

// FenceMsg raises a recipient's fence to Epoch: from its arrival onward,
// records and acks carrying an epoch below the fence are rejected. The HA
// coordinator broadcasts it before promoting a standby, so a deposed
// primary's stream can never commit into a fenced cluster.
type FenceMsg struct {
	Epoch int
	From  string // endpoint to send the FenceAck back to
}

// FenceAck confirms a standby's fence is at least Epoch.
type FenceAck struct {
	Epoch int
	From  string
}

// StateReq asks a standby for its replication state (election evidence).
type StateReq struct {
	From string // endpoint to send the StateResp back to
}

// StateResp reports a standby's per-epoch contiguous applied prefixes and
// its current fence. Applied is a copy: the payload crosses the fabric by
// reference and must not alias the standby's live map.
type StateResp struct {
	From    string
	Applied map[int]uint64
	Fenced  int
}

// fenceMsgBytes is the wire size of fence/state-query control messages —
// small fixed-format datagrams like acks.
const fenceMsgBytes = ackBytes

// shipRec is a retained record plus its ship time (for ack latency).
type shipRec struct {
	rec Record
	at  sim.Time
}

// repState is the shipper's view of one replica.
type repState struct {
	name       string
	ack        uint64   // cumulative ack received
	lastHeard  sim.Time // last ack arrival (stalls during partitions)
	lastFill   sim.Time // last hole-triggered resend
	fillHi     uint64   // highest seq already resent to this replica
	progressAt sim.Time // last time ack advanced (repair go-back deadline)
	dead       bool     // ack stalled past DeadAfter under retention pressure
	lost       bool     // retention trimmed past its ack: unrecoverable this epoch
	labelID    int64    // interned trace label for this replica
	ackGauge   *metrics.Gauge
	ackLat     *metrics.Histogram // ship → covered-by-cumulative-ack, per record
}

// Shipper is the primary-side half: it runs in the hypervisor's crash
// domain (it must survive guest crashes, and keeps shipping through the
// PSU hold-up window), retains unacknowledged records, and repairs losses.
type Shipper struct {
	s     *sim.Sim
	cfg   Config
	epoch int
	ep    *netsim.Endpoint

	next     uint64 // seq the next Ship call gets; first record is seq 1
	base     uint64 // seq of retained[0]
	retained []shipRec
	reps     []*repState
	allLost  bool // every replica lost for the epoch: retention is pointless

	pending      []Record // shipped records awaiting the next frame flush
	pendingBytes int

	daemons []*sim.Proc // ack/probe/flush procs, retained so Stop can kill them
	stopped bool
	fenced  bool // a FenceMsg for a later epoch arrived: this shipper is deposed

	quorumSig *sim.Signal // broadcast whenever any replica's ack advances
	workSig   *sim.Signal // wakes the probe when records are outstanding
	flushSig  *sim.Signal // wakes the flusher on the 0→1 pending transition

	framePool []*frame
	bufPool   map[int][]*payloadBuf // size class (capacity) → free buffers

	tr       *obs.Tracer
	quorumHi uint64 // highest seq already traced as quorum-met

	lag       *metrics.Gauge // newest shipped seq − slowest replica ack, records
	retainedB *metrics.Gauge // bytes retained awaiting full acknowledgement
	shipped   *metrics.Counter
	shippedB  *metrics.Counter
	resends   *metrics.Counter
	evictions *metrics.Counter
	fenceRej  *metrics.Counter // stale-epoch acks/messages rejected
}

// NewShipper creates the primary side for one power epoch and starts its
// ack receiver and retransmit probe in dom (the hypervisor domain — both
// die with the machine, and a recovered machine builds a fresh Shipper
// under the next epoch).
func NewShipper(s *sim.Sim, fab *netsim.Fabric, dom *sim.Domain, epoch int, replicas []string, cfg Config) *Shipper {
	cfg.applyDefaults()
	reg := cfg.Reg
	sh := &Shipper{
		s:         s,
		cfg:       cfg,
		epoch:     epoch,
		ep:        fab.Endpoint(cfg.PrimaryName),
		next:      1,
		base:      1,
		quorumSig: s.NewSignal("repl.quorum"),
		workSig:   s.NewSignal("repl.work"),
		flushSig:  s.NewSignal("repl.flush"),
		bufPool:   make(map[int][]*payloadBuf),
		tr:        cfg.Trace,
		lag:       reg.Gauge("repl.lag"),
		retainedB: reg.Gauge("repl.retained_bytes"),
		shipped:   reg.Counter("repl.shipped"),
		shippedB:  reg.Counter("repl.shipped_bytes"),
		resends:   reg.Counter("repl.resends"),
		evictions: reg.Counter("repl.evictions"),
		fenceRej:  reg.Counter("ha.fence_rejections"),
	}
	for _, name := range replicas {
		sh.reps = append(sh.reps, &repState{
			name:     name,
			labelID:  cfg.Trace.Label(name),
			ackGauge: reg.Gauge("repl." + name + ".acked"),
			ackLat:   reg.Histogram("repl." + name + ".ack_latency"),
		})
	}
	sh.tr.Emit(s.Now().Duration(), obs.EvEpoch, 0, 0, int64(epoch), int64(len(replicas)))
	// A new epoch starts with nothing outstanding; the gauges are shared
	// across logger rebuilds and must restart from this shipper's reality
	// (peaks are preserved by the registry).
	sh.lag.Set(0)
	sh.retainedB.Set(0)
	sh.daemons = []*sim.Proc{
		s.Spawn(dom, fmt.Sprintf("repl.ack.e%d", epoch), sh.ackLoop),
		s.Spawn(dom, fmt.Sprintf("repl.probe.e%d", epoch), sh.probeLoop),
		s.Spawn(dom, fmt.Sprintf("repl.flush.e%d", epoch), sh.flushLoop),
	}
	return sh
}

// Stop shuts the shipper down in place: its ack/probe/flush daemons are
// killed (the domain stays live — this is a demotion, not a crash) and every
// payload-buffer reference the shipper itself holds, across the retained
// stream and the unflushed pending queue, is released back to the pools.
// Frames still in flight hold their own references and release themselves on
// delivery or drop, so Stop is safe while the fabric is busy. Stopping a
// shipper whose domain already died is a no-op kill (the daemons are gone)
// plus the same buffer release. Ship must not be called after Stop.
func (sh *Shipper) Stop() {
	if sh.stopped {
		return
	}
	sh.stopped = true
	for _, d := range sh.daemons {
		d.Kill()
	}
	for i := range sh.pending {
		sh.releasePBuf(sh.pending[i].buf)
		sh.pending[i] = Record{}
	}
	sh.pending = sh.pending[:0]
	sh.pendingBytes = 0
	freed := int64(0)
	for i := range sh.retained {
		freed += int64(len(sh.retained[i].rec.Data))
		sh.releasePBuf(sh.retained[i].rec.buf)
		sh.retained[i] = shipRec{}
	}
	sh.retained = sh.retained[:0]
	sh.base = sh.next
	sh.retainedB.Add(-freed)
	sh.lag.Set(0)
	sh.s.Tracef("repl: shipper epoch %d stopped (%d bytes released)", sh.epoch, freed)
}

// Stopped reports whether Stop has run.
func (sh *Shipper) Stopped() bool { return sh.stopped }

// Fenced reports whether a fence for a later epoch has reached this shipper:
// it has been deposed and its acks are being rejected cluster-wide.
func (sh *Shipper) Fenced() bool { return sh.fenced }

// getPBuf takes a payload buffer from the size-class pool (or grows one),
// already holding the retained stream's reference.
func (sh *Shipper) getPBuf(n int) *payloadBuf {
	c := 512
	for c < n {
		c <<= 1
	}
	if free := sh.bufPool[c]; len(free) > 0 {
		pb := free[len(free)-1]
		sh.bufPool[c] = free[:len(free)-1]
		pb.data = pb.data[:n]
		pb.refs = 1
		return pb
	}
	return &payloadBuf{data: make([]byte, n, c), refs: 1}
}

// releasePBuf drops one reference and pools the buffer when the last one
// dies. Nil-safe: records built outside Ship have no pooled buffer.
func (sh *Shipper) releasePBuf(pb *payloadBuf) {
	if pb == nil {
		return
	}
	if pb.refs--; pb.refs == 0 {
		c := cap(pb.data)
		sh.bufPool[c] = append(sh.bufPool[c], pb)
	}
}

func (sh *Shipper) getFrame() *frame {
	if n := len(sh.framePool); n > 0 {
		f := sh.framePool[n-1]
		sh.framePool = sh.framePool[:n-1]
		return f
	}
	return &frame{sh: sh}
}

// putFrame returns a dead frame to the pool, dropping the payload-buffer
// reference each of its records held. Entries are zeroed so a pooled frame
// does not pin payload arrays the truncated stream has let go of.
func (sh *Shipper) putFrame(f *frame) {
	for i := range f.recs {
		sh.releasePBuf(f.recs[i].buf)
		f.recs[i] = Record{}
	}
	f.recs = f.recs[:0]
	f.span = 0
	sh.framePool = append(sh.framePool, f)
}

// Epoch returns the shipper's power epoch.
func (sh *Shipper) Epoch() int { return sh.epoch }

// LastSeq returns the newest sequence number shipped this epoch.
func (sh *Shipper) LastSeq() uint64 { return sh.next - 1 }

// Lag returns the current replication lag in records: newest shipped seq
// minus the slowest replica's cumulative ack.
func (sh *Shipper) Lag() uint64 {
	minAck := sh.minAck()
	return sh.next - 1 - minAck
}

func (sh *Shipper) minAck() uint64 {
	m := sh.next - 1
	for _, r := range sh.reps {
		if r.ack < m {
			m = r.ack
		}
	}
	return m
}

// Ship copies data (callers reuse their buffers) into a retained,
// sequence-numbered record and queues it for the next frame flush. It never
// blocks — durability waiting is WaitQuorum's job — so it is safe on the
// Logger's hot path and inside degraded pass-through. Transmission is
// frame-batched: the record rides the next frame the flusher builds, at the
// same virtual timestamp as this call (signals do not advance time), so
// batching adds zero latency; a full batch flushes synchronously right
// here, so a producer that never yields still frames.
func (sh *Shipper) Ship(lba int64, data []byte) uint64 {
	if ss := sh.cfg.SectorSize; len(data) == 0 || len(data)%ss != 0 {
		panic(fmt.Sprintf("replica: Ship(lba %d) payload of %d bytes is not a whole number of %d-byte sectors", lba, len(data), ss))
	}
	pb := sh.getPBuf(len(data))
	copy(pb.data, data)
	seq := sh.next
	sh.next++
	// The caller (the Logger's ship hook) plants the buffer-entry span as
	// the implicit cause; the ship span bridges it to the wire.
	span := sh.tr.NewSpan()
	sh.tr.Emit(sh.s.Now().Duration(), obs.EvShip, span, sh.tr.TakeCause(), int64(seq), int64(len(data)))
	rec := Record{Epoch: sh.epoch, Seq: seq, Lba: lba, Data: pb.data, Span: span, buf: pb}
	sh.retained = append(sh.retained, shipRec{rec: rec, at: sh.s.Now()})
	sh.retainedB.Add(int64(len(data)))
	sh.shipped.Inc()
	sh.shippedB.Add(int64(len(data)))
	// The pending queue holds its own buffer reference: if an all-replicas-
	// dead eviction truncates the stream past a record that has not framed
	// yet, the retained reference dies but the buffer stays live until the
	// frame that finally carries it does.
	pb.refs++
	sh.pending = append(sh.pending, rec)
	sh.pendingBytes += len(data)
	if len(sh.pending) >= sh.cfg.MaxFrameRecords || sh.pendingBytes >= sh.cfg.MaxFrameBytes {
		sh.flushPending()
	} else if len(sh.pending) == 1 {
		sh.flushSig.Broadcast()
	}
	sh.updateLag()
	sh.workSig.Broadcast()
	// With every replica lost for the epoch, no retransmission can ever
	// target this record and the probe that would otherwise trim is parked
	// (anyBehind ignores lost replicas) — drop the retention immediately or
	// it grows with every Ship until the next epoch. The pending queue's
	// own buffer reference keeps the frame path safe (see above).
	if sh.allLost {
		sh.truncate()
	}
	return seq
}

// flushLoop is the frame flusher. It is woken by the first record of a
// batch and runs the moment the producer yields — at the SAME virtual
// timestamp as the Ship that woke it — so every record shipped in the
// current instant coalesces into one frame per link with no added latency.
func (sh *Shipper) flushLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		for len(sh.pending) == 0 {
			sh.flushSig.Wait(p)
		}
		sh.flushPending()
	}
}

// flushPending cuts the pending queue into frames bounded by
// MaxFrameRecords and MaxFrameBytes and broadcasts each. The cut>0 guard
// lets a single record larger than MaxFrameBytes ship alone rather than
// wedge the queue.
func (sh *Shipper) flushPending() {
	for len(sh.pending) > 0 {
		cut, bytes := 0, 0
		for cut < len(sh.pending) && cut < sh.cfg.MaxFrameRecords {
			if cut > 0 && bytes+len(sh.pending[cut].Data) > sh.cfg.MaxFrameBytes {
				break
			}
			bytes += len(sh.pending[cut].Data)
			cut++
		}
		sh.sendFrame(sh.pending[:cut], bytes)
		n := copy(sh.pending, sh.pending[cut:])
		for i := n; i < len(sh.pending); i++ {
			sh.pending[i] = Record{}
		}
		sh.pending = sh.pending[:n]
	}
	sh.pendingBytes = 0
}

// sendFrame broadcasts one pooled frame built from recs: one fabric send
// per replica per frame instead of one per record. The frame inherits the
// pending queue's payload-buffer references and starts with one frame
// reference per replica — a copy the fabric drops is released synchronously
// inside the send loop, so the frame must not be touched after it.
func (sh *Shipper) sendFrame(recs []Record, payloadBytes int) {
	f := sh.getFrame()
	f.epoch = sh.epoch
	f.recs = append(f.recs, recs...)
	f.span = sh.tr.NewSpan()
	wire := payloadBytes + len(recs)*recordOverhead + frameOverhead
	sh.tr.Emit(sh.s.Now().Duration(), obs.EvFrame, f.span, 0, int64(len(recs)), int64(wire))
	if len(sh.reps) == 0 {
		f.refs = 1
		f.Release()
		return
	}
	f.refs = len(sh.reps)
	for _, r := range sh.reps {
		sh.ep.SendCtx(r.name, wire, f, f.span)
	}
}

// QuorumSeq returns the highest sequence number held by at least k
// replicas (0 when k exceeds the replica count).
func (sh *Shipper) QuorumSeq(k int) uint64 {
	if k <= 0 {
		return sh.next - 1
	}
	if k > len(sh.reps) {
		return 0
	}
	acks := make([]uint64, len(sh.reps))
	for i, r := range sh.reps {
		acks[i] = r.ack
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] > acks[j] })
	return acks[k-1]
}

// WaitQuorum parks p until at least k replicas hold seq. This is the ack
// policy's blocking point: the caller is a guest writer, and a partition
// stalls it here — no ack is ever issued that the policy cannot honour. A
// quorum the replica set can never form (k > replica count) is a config
// bug, not a wait: panic rather than park the writer forever.
// core.NewLogger rejects such configs up front via ReplicaCount.
func (sh *Shipper) WaitQuorum(p *sim.Proc, seq uint64, k int) {
	if k > len(sh.reps) {
		panic(fmt.Sprintf("replica: WaitQuorum(k=%d) with %d replicas can never be satisfied", k, len(sh.reps)))
	}
	for sh.QuorumSeq(k) < seq {
		sh.quorumSig.Wait(p)
	}
}

// ReplicaCount returns the number of standby replicas this shipper feeds.
// core.NewLogger uses it to reject an ack policy whose quorum the replica
// set can never satisfy.
func (sh *Shipper) ReplicaCount() int { return len(sh.reps) }

// ReplicaProgress is one replica's view for reports.
type ReplicaProgress struct {
	Name  string
	Acked uint64
}

// Progress returns per-replica cumulative acks in replica order.
func (sh *Shipper) Progress() []ReplicaProgress {
	out := make([]ReplicaProgress, len(sh.reps))
	for i, r := range sh.reps {
		out[i] = ReplicaProgress{Name: r.name, Acked: r.ack}
	}
	return out
}

func (sh *Shipper) rep(name string) *repState {
	for _, r := range sh.reps {
		if r.name == name {
			return r
		}
	}
	return nil
}

func (sh *Shipper) updateLag() {
	sh.lag.Set(int64(sh.next - 1 - sh.minAck()))
}

// retainMin is the truncation frontier: the slowest cumulative ack among
// replicas still participating. Dead replicas are excluded — that is the
// whole point of eviction — so trimming can pass them. When every replica
// is dead there is no participant left to hold the frontier back, and
// next-1 would drop the entire retained stream — permanently: revival
// requires the stream to still reach a standby's first missing record, so
// a full trim turns a transient all-standbys-stalled episode into
// lost-for-epoch even for a standby that acks moments later. The frontier
// instead falls back to a grace floor that trims only what RetainLimit
// forces, keeping the newest retained suffix revivable.
func (sh *Shipper) retainMin() uint64 {
	m := sh.next - 1
	alive := false
	for _, r := range sh.reps {
		if r.dead {
			continue
		}
		alive = true
		if r.ack < m {
			m = r.ack
		}
	}
	if !alive && len(sh.reps) > 0 {
		if sh.allLost {
			return sh.next - 1 // no replica can ever be repaired this epoch
		}
		return sh.graceFloor()
	}
	return m
}

// graceRetainFactor scales RetainLimit into the hard retention cap that
// applies while every replica is dead. Below the cap the stream holds at
// the slowest replica's ack, so the probe can still repair any standby
// that comes back; above it memory wins, the oldest records go, and the
// replicas that needed them turn lost for the epoch.
const graceRetainFactor = 4

// graceFloor is the all-replicas-dead truncation frontier: the slowest
// replica's cumulative ack (trimming past any replica's ack makes it
// unrevivable), overridden by a byte floor once the retained suffix would
// exceed graceRetainFactor × RetainLimit.
func (sh *Shipper) graceFloor() uint64 {
	m := sh.next - 1
	for _, r := range sh.reps {
		if r.ack < m {
			m = r.ack
		}
	}
	hard := graceRetainFactor * sh.cfg.RetainLimit
	var kept int64
	byteFloor := sh.base - 1
	for i := len(sh.retained) - 1; i >= 0; i-- {
		kept += int64(len(sh.retained[i].rec.Data))
		if kept > hard {
			byteFloor = sh.base + uint64(i)
			break
		}
	}
	if byteFloor > m {
		return byteFloor
	}
	return m
}

// truncate drops retained records every participating replica has
// acknowledged. A replica the trim passed (its first missing record is
// gone) is marked lost for the epoch: no amount of retransmission can fill
// its gap now, so repair stops targeting it and it re-syncs at the next
// epoch's stream.
func (sh *Shipper) truncate() {
	minAck := sh.retainMin()
	if minAck < sh.base {
		return
	}
	n := int(minAck - sh.base + 1)
	if n > len(sh.retained) {
		n = len(sh.retained)
	}
	freed := int64(0)
	for i := range sh.retained[:n] {
		freed += int64(len(sh.retained[i].rec.Data))
		sh.releasePBuf(sh.retained[i].rec.buf)
	}
	// Shift in place: the old copy-on-trim reallocated the backing array on
	// every ack round, which the steady-state zero-alloc discipline forbids.
	m := copy(sh.retained, sh.retained[n:])
	for i := m; i < len(sh.retained); i++ {
		sh.retained[i] = shipRec{}
	}
	sh.retained = sh.retained[:m]
	sh.base += uint64(n)
	sh.retainedB.Add(-freed)
	all := len(sh.reps) > 0
	for _, r := range sh.reps {
		if !r.lost && r.ack+1 < sh.base {
			r.lost = true
			sh.s.Tracef("repl: %s lost for epoch %d (ack %d, stream trimmed to %d)", r.name, sh.epoch, r.ack, sh.base)
		}
		all = all && r.lost
	}
	// Lost is terminal within an epoch (a lost replica's gap starts below
	// base, and base never moves back), so all-lost latches until the next
	// epoch's shipper.
	sh.allLost = all
}

// reapStalled enforces RetainLimit: while retained bytes exceed the bound,
// any replica whose ack has not advanced for DeadAfter is marked dead and
// the stream is trimmed past it. Dead is reversible — a late ack revives
// the replica if the stream still reaches back to its first missing record
// (see ackLoop); otherwise the trim has made it lost for the epoch.
func (sh *Shipper) reapStalled(now sim.Time) {
	if sh.retainedB.Value() <= sh.cfg.RetainLimit {
		return
	}
	evicted := false
	allDead := len(sh.reps) > 0
	for _, r := range sh.reps {
		if r.dead || r.ack >= sh.next-1 {
			allDead = allDead && r.dead
			continue
		}
		if now.Sub(r.progressAt) >= sh.cfg.DeadAfter {
			r.dead = true
			evicted = true
			sh.evictions.Inc()
			sh.tr.Emit(now.Duration(), obs.EvEvict, 0, 0, r.labelID, sh.retainedB.Value())
			sh.s.Tracef("repl: evicting %s (ack %d stalled %v, %d bytes retained)",
				r.name, r.ack, now.Sub(r.progressAt), sh.retainedB.Value())
		} else {
			allDead = false
		}
	}
	// With every replica dead no ack round will trim again, so keep calling
	// truncate from here: the grace floor holds the stream at the slowest
	// ack while it fits the hard cap and slides once it does not, keeping
	// retention bounded while the primary keeps shipping.
	if evicted || allDead {
		sh.truncate()
	}
}

// ackLoop receives cumulative acks, advances per-replica state, observes
// ack latency for newly covered records, and refills reported holes.
func (sh *Shipper) ackLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		m := sh.ep.Recv(p)
		if fm, ok := m.Payload.(FenceMsg); ok {
			// The cluster has fenced a later epoch: this shipper is deposed.
			// Acknowledge (so the coordinator's fence wait can complete even
			// with the old primary alive) and stop counting acks toward
			// quorum — a deposed stream must never commit.
			if fm.Epoch > sh.epoch {
				sh.fenced = true
				sh.ep.Send(fm.From, fenceMsgBytes, FenceAck{Epoch: fm.Epoch, From: sh.cfg.PrimaryName})
			}
			continue
		}
		am, ok := m.Payload.(ackMsg)
		if !ok {
			continue
		}
		if am.Epoch != sh.epoch {
			sh.fenceRej.Inc()
			continue // stale epoch: a standby acking a dead shipper's stream
		}
		if sh.fenced {
			sh.fenceRej.Inc()
			continue // deposed: acks no longer advance quorum
		}
		r := sh.rep(am.From)
		if r == nil {
			continue
		}
		now := sh.s.Now()
		r.lastHeard = now
		if am.Seq > r.ack {
			for seq := r.ack + 1; seq <= am.Seq; seq++ {
				if seq >= sh.base && int(seq-sh.base) < len(sh.retained) {
					sr := sh.retained[int(seq-sh.base)]
					r.ackLat.Observe(now.Sub(sr.at))
					sh.tr.Emit(now.Duration(), obs.EvReplicaAck, 0, sr.rec.Span, int64(seq), r.labelID)
				}
			}
			r.ack = am.Seq
			r.progressAt = now
			r.ackGauge.Set(int64(am.Seq))
			// A late ack revives an evicted replica — but only if the
			// retained stream still reaches back to its first missing
			// record; past that, it stays lost until the next epoch.
			if r.ack+1 >= sh.base {
				r.dead, r.lost = false, false
			}
			sh.traceQuorum(now)
			sh.truncate()
			sh.updateLag()
			sh.quorumSig.Broadcast()
		}
		// The standby has received past a gap it cannot apply: refill the
		// window right away instead of waiting out the probe interval. A
		// lost replica's gap starts before the retained stream — there is
		// nothing to refill it with.
		if !r.lost && am.Seen > am.Seq && r.ack < sh.next-1 && now.Sub(r.lastFill) >= sh.cfg.HoleResendMin {
			r.lastFill = now
			sh.resendWindow(r)
		}
	}
}

// traceQuorum emits EvQuorumMet for every sequence that newly reached the
// configured quorum, parented under the record's ship span. It runs before
// truncate so the retained stream still holds the spans; a sequence whose
// record was already trimmed (dead-replica eviction) is traced with no
// parent rather than dropped.
func (sh *Shipper) traceQuorum(now sim.Time) {
	k := sh.cfg.TraceQuorumK
	if k <= 0 || !sh.tr.Enabled() {
		return
	}
	q := sh.QuorumSeq(k)
	for seq := sh.quorumHi + 1; seq <= q; seq++ {
		var parent obs.SpanID
		if seq >= sh.base && int(seq-sh.base) < len(sh.retained) {
			parent = sh.retained[int(seq-sh.base)].rec.Span
		}
		sh.tr.Emit(now.Duration(), obs.EvQuorumMet, 0, parent, int64(seq), int64(k))
	}
	if q > sh.quorumHi {
		sh.quorumHi = q
	}
}

// probeLoop resends the oldest unacknowledged window to any replica that
// has been silent for a full retransmit interval — the slow path that
// catches a replica back up after a partition heals or a restart, when no
// acks are flowing to trigger hole repair. It parks when nothing is
// outstanding, so an idle deployment schedules no timer churn.
func (sh *Shipper) probeLoop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		if !sh.anyBehind() {
			sh.workSig.Wait(p)
			continue
		}
		p.Sleep(sh.cfg.RetransmitEvery)
		now := sh.s.Now()
		sh.reapStalled(now)
		for _, r := range sh.reps {
			if r.lost || r.ack >= sh.next-1 {
				continue
			}
			if now.Sub(r.lastHeard) < sh.cfg.RetransmitEvery {
				continue // acks are flowing; hole repair owns the fast path
			}
			sh.resendWindow(r)
		}
	}
}

func (sh *Shipper) anyBehind() bool {
	for _, r := range sh.reps {
		if !r.lost && r.ack < sh.next-1 {
			return true
		}
	}
	return false
}

// resendWindow retransmits up to ResendWindow retained records towards one
// replica's first unacknowledged sequence. Repair is pipelined: while the
// replica's cumulative ack is advancing, each round extends past what was
// already resent instead of resending overlapping windows — overlapping
// windows saturate the link's bandwidth exactly when it is trying to catch
// up, and the resulting duplicate flood collapses the repair rate. Only
// when progress stalls for a full retransmit interval does the window go
// back to ack+1 (the earlier refill evidently died on the wire). The total
// repair pipeline is bounded so a slow replica cannot accumulate unbounded
// in-flight bytes.
func (sh *Shipper) resendWindow(r *repState) {
	now := sh.s.Now()
	lo := r.ack + 1
	if lo < sh.base {
		lo = sh.base
	}
	if r.fillHi >= lo && now.Sub(r.progressAt) < sh.cfg.RetransmitEvery {
		lo = r.fillHi + 1
	}
	hi := sh.next - 1
	if maxAhead := uint64(sh.cfg.ResendWindow) * 8; hi > r.ack+maxAhead {
		hi = r.ack + maxAhead
	}
	if span := uint64(sh.cfg.ResendWindow); hi >= lo && hi-lo+1 > span {
		hi = lo + span - 1
	}
	if hi < lo {
		return
	}
	// Repair is frame-granular too: retained records are rebatched into
	// frames of the same shape as fresh sends, unicast to the one replica
	// being repaired (refs = 1). Each record in a repair frame takes its own
	// payload-buffer reference, so a truncate racing the repair in virtual
	// time cannot recycle a buffer the frame still carries.
	sh.resends.Add(int64(hi - lo + 1))
	for seq := lo; seq <= hi; {
		f := sh.getFrame()
		f.epoch = sh.epoch
		bytes := 0
		for seq <= hi && len(f.recs) < sh.cfg.MaxFrameRecords {
			rec := sh.retained[int(seq-sh.base)].rec
			if len(f.recs) > 0 && bytes+len(rec.Data) > sh.cfg.MaxFrameBytes {
				break
			}
			if rec.buf != nil {
				rec.buf.refs++
			}
			f.recs = append(f.recs, rec)
			bytes += len(rec.Data)
			seq++
		}
		f.span = sh.tr.NewSpan()
		wire := bytes + len(f.recs)*recordOverhead + frameOverhead
		sh.tr.Emit(now.Duration(), obs.EvFrame, f.span, 0, int64(len(f.recs)), int64(wire))
		f.refs = 1
		sh.ep.SendCtx(r.name, wire, f, f.span)
	}
	sh.tr.Emit(now.Duration(), obs.EvRepair, 0, 0, r.labelID, int64(hi-lo+1))
	r.fillHi = hi
}

// Standby is one remote replica: a receiver in its own crash domain that
// applies the record stream in order and holds the applied log durably
// (its store survives its own crashes; only the receiver process dies).
type Standby struct {
	s    *sim.Sim
	fab  *netsim.Fabric
	name string
	cfg  Config
	dom  *sim.Domain
	ep   *netsim.Endpoint

	alive   bool
	fenced  int                       // lowest epoch still accepted; below it everything is rejected
	applied map[int]uint64            // per-epoch contiguous applied prefix
	seen    map[int]uint64            // per-epoch highest seq ever received
	ooo     map[int]map[uint64]Record // buffered out-of-order arrivals
	log     []Record                  // applied records, in apply order
	arena   []byte                    // append-only copy space for kept payloads

	appliedC *metrics.Counter
	dupC     *metrics.Counter
	oooC     *metrics.Counter
	fenceRej *metrics.Counter

	tr      *obs.Tracer
	labelID int64
}

// NewStandby creates a standby replica and starts its receiver. The domain
// is created directly on the simulation — deliberately outside the
// machine's crash domains, because the standby models a different machine.
func NewStandby(s *sim.Sim, fab *netsim.Fabric, name string, cfg Config) *Standby {
	cfg.applyDefaults()
	reg := cfg.Reg
	st := &Standby{
		s:        s,
		fab:      fab,
		name:     name,
		cfg:      cfg,
		dom:      s.NewDomain("replica." + name),
		ep:       fab.Endpoint(name),
		alive:    true,
		applied:  make(map[int]uint64),
		seen:     make(map[int]uint64),
		ooo:      make(map[int]map[uint64]Record),
		appliedC: reg.Counter("repl." + name + ".applied"),
		dupC:     reg.Counter("repl." + name + ".dups"),
		oooC:     reg.Counter("repl." + name + ".out_of_order"),
		fenceRej: reg.Counter("ha.fence_rejections"),
		tr:       cfg.Trace,
		labelID:  cfg.Trace.Label(name),
	}
	st.spawnReceiver()
	return st
}

// Name returns the standby's fabric endpoint name.
func (st *Standby) Name() string { return st.name }

// Alive reports whether the standby is up (its receiver running).
func (st *Standby) Alive() bool { return st.alive }

// AppliedSeq returns the contiguous applied prefix for an epoch.
func (st *Standby) AppliedSeq(epoch int) uint64 { return st.applied[epoch] }

// Records returns the standby's applied log (live; callers must not
// mutate). Records survive crashes — the store is durable, the process is
// not.
func (st *Standby) Records() []Record { return st.log }

// Epochs returns the epochs this standby holds records for, ascending.
func (st *Standby) Epochs() []int {
	out := make([]int, 0, len(st.applied))
	for e := range st.applied {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// Crash kills the standby: its receiver dies, its network port goes down
// (in-flight packets to it are lost), but its applied log — durable
// storage — survives for Restart and for recovery.
func (st *Standby) Crash() {
	if !st.alive {
		return
	}
	st.alive = false
	st.fab.Isolate(st.name)
	st.dom.Kill()
	st.s.Tracef("replica %s: crashed (%d records held)", st.name, len(st.log))
}

// Restart brings a crashed standby back: the NIC queue that died with the
// node is discarded, the port comes back up, and a fresh receiver resumes
// from the durable applied state. Catch-up is the shipper's retransmit
// protocol doing its job.
func (st *Standby) Restart() {
	if st.alive {
		return
	}
	st.alive = true
	for {
		m, ok := st.ep.TryRecv()
		if !ok {
			break
		}
		// The NIC queue dies with the node — but a discarded frame is still
		// a reference the shipper's pool is waiting on.
		if rc, ok := m.Payload.(netsim.Refcounted); ok {
			rc.Release()
		}
	}
	st.fab.Restore(st.name)
	st.dom.Revive()
	st.spawnReceiver()
	st.s.Tracef("replica %s: restarted at %v", st.name, st.s.Now())
}

func (st *Standby) spawnReceiver() {
	st.s.Spawn(st.dom, "replica."+st.name, func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			m := st.ep.Recv(p)
			var epochs []int
			ackTo := make(map[int]string)
			applied := 0
			st.handle(m, &epochs, ackTo, &applied)
			for {
				m2, ok := st.ep.TryRecv()
				if !ok {
					break
				}
				st.handle(m2, &epochs, ackTo, &applied)
			}
			if applied > 0 && st.cfg.ApplyDelay > 0 {
				p.Sleep(time.Duration(applied) * st.cfg.ApplyDelay)
			}
			// One cumulative ack per epoch touched in this batch, addressed
			// to whichever shipper carried that epoch's frames: a standby
			// outlives leaders, so the ack target is the stream's sender,
			// not a fixed endpoint.
			sort.Ints(epochs)
			for _, e := range epochs {
				to := ackTo[e]
				if to == "" {
					to = st.cfg.PrimaryName
				}
				st.ep.Send(to, ackBytes, ackMsg{
					Epoch: e, Seq: st.applied[e], Seen: st.maxSeen(e), From: st.name,
				})
			}
		}
	})
}

// handle dispatches one inbound message: a frame is applied record by
// record in one pass and then released back to its shipper's pool; a bare
// Record (older senders, tests) takes the same per-record path. Either way
// the batch accounting in the receiver yields ONE cumulative ack per epoch
// per wakeup — the ack-coalescing half of frame shipping.
func (st *Standby) handle(m netsim.Message, epochs *[]int, ackTo map[int]string, applied *int) {
	switch pl := m.Payload.(type) {
	case *frame:
		for i := range pl.recs {
			st.handleRec(pl.recs[i], m.From, epochs, ackTo, applied)
		}
		pl.Release()
	case Record:
		st.handleRec(pl, m.From, epochs, ackTo, applied)
	case FenceMsg:
		// Fencing is monotone: the fence only ever rises. The ack always
		// reports the current fence so a duplicate or stale fence still
		// completes the coordinator's wait.
		if pl.Epoch > st.fenced {
			st.fenced = pl.Epoch
			st.s.Tracef("replica %s: fenced at epoch %d", st.name, pl.Epoch)
		}
		st.ep.Send(pl.From, fenceMsgBytes, FenceAck{Epoch: st.fenced, From: st.name})
	case StateReq:
		st.ep.Send(pl.From, fenceMsgBytes, st.stateResp())
	}
}

// stateResp snapshots the standby's election evidence. The applied map is
// copied: the response crosses the fabric by reference.
func (st *Standby) stateResp() StateResp {
	ap := make(map[int]uint64, len(st.applied))
	for e, seq := range st.applied {
		ap[e] = seq
	}
	return StateResp{From: st.name, Applied: ap, Fenced: st.fenced}
}

// Fenced returns the standby's current fence epoch.
func (st *Standby) Fenced() int { return st.fenced }

// copyData copies a wire payload into the standby's append-only arena.
// Anything the standby keeps — applied log entries and the out-of-order
// stash alike — must be its own copy: the shipper's pooled buffers are
// recycled once every reference dies, while a duplicate frame may still
// deliver long after. Chunked growth amortises the copies to zero
// allocations per record at steady state.
func (st *Standby) copyData(d []byte) []byte {
	const chunk = 256 << 10
	if len(d) > cap(st.arena)-len(st.arena) {
		sz := chunk
		if len(d) > sz {
			sz = len(d)
		}
		st.arena = make([]byte, 0, sz)
	}
	n := len(st.arena)
	st.arena = append(st.arena, d...)
	return st.arena[n : n+len(d) : n+len(d)]
}

// handleRec processes one inbound record: apply in order, buffer ahead-of-
// order arrivals, re-acknowledge duplicates.
func (st *Standby) handleRec(rec Record, from string, epochs *[]int, ackTo map[int]string, applied *int) {
	e := rec.Epoch
	if e < st.fenced {
		// A deposed shipper's stream: reject without applying or acking, so
		// the stale epoch can never gather quorum evidence after promotion.
		st.fenceRej.Inc()
		return
	}
	touched := false
	for _, seen := range *epochs {
		if seen == e {
			touched = true
			break
		}
	}
	if !touched {
		*epochs = append(*epochs, e)
	}
	ackTo[e] = from
	if rec.Seq > st.seen[e] {
		st.seen[e] = rec.Seq
	}
	switch ap := st.applied[e]; {
	case rec.Seq <= ap:
		st.dupC.Inc() // duplicate or already-covered resend: just re-ack
	case rec.Seq == ap+1:
		rec.Data, rec.buf = st.copyData(rec.Data), nil
		st.apply(rec)
		*applied++
		for {
			nxt, ok := st.ooo[e][st.applied[e]+1]
			if !ok {
				break
			}
			delete(st.ooo[e], st.applied[e]+1)
			st.apply(nxt)
			*applied++
		}
	default:
		if st.ooo[e] == nil {
			st.ooo[e] = make(map[uint64]Record)
		}
		if _, dup := st.ooo[e][rec.Seq]; !dup {
			rec.Data, rec.buf = st.copyData(rec.Data), nil
			st.ooo[e][rec.Seq] = rec
			st.oooC.Inc()
		}
	}
}

func (st *Standby) apply(rec Record) {
	st.applied[rec.Epoch] = rec.Seq
	st.log = append(st.log, rec)
	st.appliedC.Inc()
	st.tr.Emit(st.s.Now().Duration(), obs.EvReplicaApply, 0, rec.Span, int64(rec.Seq), st.labelID)
}

// maxSeen returns the highest sequence this standby has received for an
// epoch — applied prefix or anything that ever arrived ahead of it. Tracked
// incrementally: the receiver acks often, and scanning the out-of-order
// stash per ack is quadratic in the backlog a partition leaves behind.
func (st *Standby) maxSeen(epoch int) uint64 {
	if m := st.seen[epoch]; m > st.applied[epoch] {
		return m
	}
	return st.applied[epoch]
}

// RecoverReport summarises a replica-side recovery replay.
type RecoverReport struct {
	Epochs  int   // epochs replayed
	Entries int   // records contributing to the image
	Bytes   int64 // record payload bytes
	Runs    int   // coalesced sequential writes issued
	From    []string
}

// Recover replays the replicated log into the log partition at boot: for
// every epoch any alive standby holds, the standby with the longest
// applied prefix contributes its records. Because each standby applies
// strictly in order, its log is a contiguous prefix of the stream — the
// longest prefix is a superset of every ack the dead primary ever issued
// against surviving replicas.
//
// Records are folded into a sector image in (epoch, seq) order — later
// writes win, exactly the order the drain would have used — and the image
// lands in coalesced sequential bursts rather than per-record seeks, like
// any sane restore path. Replaying more than was acknowledged is harmless:
// log-partition writes are idempotent sector rewrites, and the engine's
// own scan decides what the log tail means.
func Recover(p *sim.Proc, standbys []*Standby, logDev disk.Device) (RecoverReport, error) {
	var rep RecoverReport
	epochSet := make(map[int]bool)
	for _, st := range standbys {
		if !st.Alive() {
			continue
		}
		for _, e := range st.Epochs() {
			epochSet[e] = true
		}
	}
	epochs := make([]int, 0, len(epochSet))
	for e := range epochSet {
		epochs = append(epochs, e)
	}
	sort.Ints(epochs)
	rep.Epochs = len(epochs)

	ss := int64(logDev.SectorSize())
	img := make(map[int64][]byte) // sector → newest data for it
	for _, e := range epochs {
		var best *Standby
		for _, st := range standbys {
			if st.Alive() && (best == nil || st.AppliedSeq(e) > best.AppliedSeq(e)) {
				best = st
			}
		}
		rep.From = append(rep.From, fmt.Sprintf("%s:e%d≤%d", best.Name(), e, best.AppliedSeq(e)))
		for _, rec := range best.Records() {
			if rec.Epoch != e {
				continue
			}
			rep.Entries++
			rep.Bytes += int64(len(rec.Data))
			if int64(len(rec.Data))%ss != 0 {
				return rep, fmt.Errorf("replica recover: record e%d seq %d at lba %d: %d bytes is not a whole number of %d-byte sectors",
					e, rec.Seq, rec.Lba, len(rec.Data), ss)
			}
			nsec := int64(len(rec.Data)) / ss
			for i := int64(0); i < nsec; i++ {
				img[rec.Lba+i] = rec.Data[i*ss : (i+1)*ss]
			}
		}
	}
	if len(img) == 0 {
		return rep, nil
	}

	lbas := make([]int64, 0, len(img))
	for lba := range img {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	run := make([]byte, 0, 1<<20)
	start := lbas[0]
	flush := func() error {
		if len(run) == 0 {
			return nil
		}
		rep.Runs++
		err := logDev.Write(p, start, run, true)
		run = run[:0]
		return err
	}
	for i, lba := range lbas {
		if i > 0 && lba != lbas[i-1]+1 {
			if err := flush(); err != nil {
				return rep, fmt.Errorf("replica recover: %w", err)
			}
			start = lba
		}
		run = append(run, img[lba]...)
	}
	if err := flush(); err != nil {
		return rep, fmt.Errorf("replica recover: %w", err)
	}
	return rep, nil
}

func (r RecoverReport) String() string {
	return fmt.Sprintf("replica replay: %d entries (%d bytes) from %d epochs in %d writes %v",
		r.Entries, r.Bytes, r.Epochs, r.Runs, r.From)
}
