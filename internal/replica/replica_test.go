package replica

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// harness builds a sim + fabric + shipper + n standbys on a clean link.
type harness struct {
	s   *sim.Sim
	fab *netsim.Fabric
	sh  *Shipper
	sts []*Standby
}

func newHarness(t *testing.T, seed int64, n int, link netsim.LinkConfig, cfg Config) *harness {
	t.Helper()
	s := sim.New(seed)
	fab := netsim.New(s, netsim.Config{Seed: seed + 1, Link: link})
	var sts []*Standby
	var names []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("standby%d", i)
		sts = append(sts, NewStandby(s, fab, name, cfg))
		names = append(names, name)
	}
	sh := NewShipper(s, fab, nil, 1, names, cfg)
	return &harness{s: s, fab: fab, sh: sh, sts: sts}
}

func payload(i int, size int) []byte {
	b := make([]byte, size)
	for k := range b {
		b[k] = byte(i + k)
	}
	return b
}

// shipN ships n sector-sized records at distinct lbas from a spawned proc.
func (h *harness) shipN(n int, gap time.Duration) {
	h.s.Spawn(nil, "writer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			h.sh.Ship(int64(i*8), payload(i, 512))
			if gap > 0 {
				p.Sleep(gap)
			}
		}
	})
}

// checkPrefix asserts the standby applied exactly seqs 1..n of epoch e in
// order with intact payloads.
func checkPrefix(t *testing.T, st *Standby, epoch int, n int) {
	t.Helper()
	if got := st.AppliedSeq(epoch); got != uint64(n) {
		t.Fatalf("%s: applied %d, want %d", st.Name(), got, n)
	}
	i := 0
	for _, rec := range st.Records() {
		if rec.Epoch != epoch {
			continue
		}
		i++
		if rec.Seq != uint64(i) {
			t.Fatalf("%s: record %d has seq %d", st.Name(), i, rec.Seq)
		}
		if !bytes.Equal(rec.Data, payload(i-1, 512)) {
			t.Fatalf("%s: record %d payload corrupted", st.Name(), i)
		}
	}
	if i != n {
		t.Fatalf("%s: %d records for epoch %d, want %d", st.Name(), i, epoch, n)
	}
}

func TestShipApplyAckRoundTrip(t *testing.T) {
	h := newHarness(t, 1, 2, netsim.LinkConfig{}, Config{})
	h.shipN(50, 50*time.Microsecond)
	if err := h.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	for _, st := range h.sts {
		checkPrefix(t, st, 1, 50)
	}
	if h.sh.Lag() != 0 {
		t.Fatalf("lag %d after settle", h.sh.Lag())
	}
	if got := h.sh.QuorumSeq(2); got != 50 {
		t.Fatalf("QuorumSeq(2) = %d, want 50", got)
	}
	// All-acked records must have been truncated from the retained window.
	if len(h.sh.retained) != 0 {
		t.Fatalf("%d records still retained", len(h.sh.retained))
	}
}

// TestLossyLinkConverges: drops, duplicates and reordering on every link;
// the retransmit protocol must still deliver the exact contiguous stream.
func TestLossyLinkConverges(t *testing.T) {
	link := netsim.LinkConfig{DropProb: 0.3, DupProb: 0.15, ReorderProb: 0.25}
	h := newHarness(t, 3, 2, link, Config{})
	h.shipN(300, 20*time.Microsecond)
	if err := h.s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, st := range h.sts {
		checkPrefix(t, st, 1, 300)
	}
	if h.sh.resends.Value() == 0 {
		t.Fatal("a 30% lossy link converged without any retransmission")
	}
}

func TestWaitQuorum(t *testing.T) {
	h := newHarness(t, 5, 3, netsim.LinkConfig{}, Config{})
	var ackedAt, seq3At sim.Time
	h.s.Spawn(nil, "writer", func(p *sim.Proc) {
		var seq uint64
		for i := 0; i < 3; i++ {
			seq = h.sh.Ship(int64(i*8), payload(i, 512))
		}
		seq3At = p.Now()
		h.sh.WaitQuorum(p, seq, 2)
		ackedAt = p.Now()
	})
	if err := h.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if ackedAt == 0 {
		t.Fatal("WaitQuorum never returned")
	}
	// Quorum needs a full network round trip; it cannot be instant.
	if rtt := ackedAt.Sub(seq3At); rtt < 200*time.Microsecond {
		t.Fatalf("quorum reached in %v — faster than one propagation delay", rtt)
	}
	if got := h.sh.QuorumSeq(2); got != 3 {
		t.Fatalf("QuorumSeq(2) = %d", got)
	}
}

// TestPartitionHealCatchUp: a standby isolated mid-stream misses records;
// after the heal the probe must walk it back to the tip, and a quorum
// writer blocked by the partition must unblock.
func TestPartitionHealCatchUp(t *testing.T) {
	h := newHarness(t, 7, 2, netsim.LinkConfig{}, Config{})
	quorumDone := false
	h.s.Spawn(nil, "writer", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			h.sh.Ship(int64(i*8), payload(i, 512))
			p.Sleep(100 * time.Microsecond)
		}
		h.fab.Isolate("standby1")
		var seq uint64
		for i := 20; i < 60; i++ {
			seq = h.sh.Ship(int64(i*8), payload(i, 512))
			p.Sleep(100 * time.Microsecond)
		}
		// Quorum of 2 includes the isolated standby: this must stall until
		// the heal, then complete via retransmission.
		healAt := p.Now().Add(50 * time.Millisecond)
		h.s.At(healAt, func() { h.fab.Heal() })
		h.sh.WaitQuorum(p, seq, 2)
		if p.Now() < healAt {
			t.Error("quorum reached through an active partition")
		}
		quorumDone = true
	})
	if err := h.s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !quorumDone {
		t.Fatal("quorum writer never unblocked after heal")
	}
	for _, st := range h.sts {
		checkPrefix(t, st, 1, 60)
	}
}

// TestReplicaCrashRestartCatchUp: a crashed standby loses its receiver and
// NIC queue but keeps its applied log; on restart it rejoins and catches
// up from where it durably was.
func TestReplicaCrashRestartCatchUp(t *testing.T) {
	h := newHarness(t, 9, 2, netsim.LinkConfig{}, Config{})
	h.s.Spawn(nil, "writer", func(p *sim.Proc) {
		for i := 0; i < 15; i++ {
			h.sh.Ship(int64(i*8), payload(i, 512))
			p.Sleep(100 * time.Microsecond)
		}
		h.sts[0].Crash()
		if h.sts[0].Alive() {
			t.Error("crashed standby reports alive")
		}
		held := h.sts[0].AppliedSeq(1)
		for i := 15; i < 40; i++ {
			h.sh.Ship(int64(i*8), payload(i, 512))
			p.Sleep(100 * time.Microsecond)
		}
		if h.sts[0].AppliedSeq(1) != held {
			t.Error("crashed standby applied records")
		}
		h.sts[0].Restart()
	})
	if err := h.s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, st := range h.sts {
		checkPrefix(t, st, 1, 40)
	}
}

// TestEpochsAndRecover: two shipper epochs (a simulated power cycle), with
// the same lba rewritten across epochs; Recover must land the epoch-2
// version last, and replay everything in coalesced sequential runs.
func TestEpochsAndRecover(t *testing.T) {
	s := sim.New(11)
	fab := netsim.New(s, netsim.Config{Seed: 12})
	cfg := Config{}
	st0 := NewStandby(s, fab, "standby0", cfg)
	st1 := NewStandby(s, fab, "standby1", cfg)
	names := []string{"standby0", "standby1"}
	mem := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 1 << 20})

	recovered := s.NewEvent("recovered")
	var rep RecoverReport
	s.Spawn(nil, "driver", func(p *sim.Proc) {
		sh1 := NewShipper(s, fab, nil, 1, names, cfg)
		e1 := []byte("epoch-one-data-")
		sh1.Ship(0, payload(1, 512))
		sh1.Ship(8, append(append([]byte{}, e1...), payload(2, 512-len(e1))...))
		p.Sleep(10 * time.Millisecond)

		// Power cycle: a fresh shipper under epoch 2 rewrites lba 8.
		sh2 := NewShipper(s, fab, nil, 2, names, cfg)
		e2 := []byte("epoch-two-wins-")
		sh2.Ship(8, append(append([]byte{}, e2...), payload(3, 512-len(e2))...))
		sh2.Ship(16, payload(4, 512))
		p.Sleep(10 * time.Millisecond)

		// Crash one standby: recovery must come from the survivor.
		st0.Crash()
		var err error
		rep, err = Recover(p, []*Standby{st0, st1}, mem)
		if err != nil {
			t.Errorf("recover: %v", err)
		}
		recovered.Fire()
	})
	if err := s.RunUntilEvent(recovered); err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 2 || rep.Entries != 4 {
		t.Fatalf("report %+v: want 2 epochs, 4 entries", rep)
	}
	// lbas 0,8,16 are not contiguous: three runs? 0 and 8 are separated
	// (sector 0 vs sector 8) so each lba is its own run here.
	if rep.Runs != 3 {
		t.Fatalf("runs = %d, want 3 (lbas 0, 8, 16)", rep.Runs)
	}
	check := s.NewEvent("checked")
	s.Spawn(nil, "check", func(p *sim.Proc) {
		defer check.Fire()
		got, err := mem.Read(p, 8, 1)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.HasPrefix(got, []byte("epoch-two-wins-")) {
			t.Errorf("lba 8 holds %q — epoch 1 overwrote epoch 2", got[:16])
		}
	})
	if err := s.RunUntilEvent(check); err != nil {
		t.Fatal(err)
	}
	_ = st1
}

// TestRecoverCoalescesContiguousRuns: adjacent sectors must land in one
// streaming write, not per-record seeks.
func TestRecoverCoalescesContiguousRuns(t *testing.T) {
	h := newHarness(t, 13, 1, netsim.LinkConfig{}, Config{})
	mem := disk.NewMem(h.s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 1 << 20})
	done := h.s.NewEvent("done")
	h.s.Spawn(nil, "driver", func(p *sim.Proc) {
		defer done.Fire()
		for i := 0; i < 32; i++ {
			h.sh.Ship(int64(i), payload(i, 512)) // 32 contiguous sectors
		}
		p.Sleep(10 * time.Millisecond)
		rep, err := Recover(p, h.sts, mem)
		if err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		if rep.Runs != 1 {
			t.Errorf("runs = %d, want 1 coalesced write for contiguous sectors", rep.Runs)
		}
		if rep.Bytes != 32*512 {
			t.Errorf("bytes = %d", rep.Bytes)
		}
	})
	if err := h.s.RunUntilEvent(done); err != nil {
		t.Fatal(err)
	}
}

// TestShipperCopiesPayload: the caller may scribble on its buffer right
// after Ship returns (the Logger's pools do exactly that).
func TestShipperCopiesPayload(t *testing.T) {
	h := newHarness(t, 15, 1, netsim.LinkConfig{}, Config{})
	buf := payload(0, 512)
	h.s.Spawn(nil, "writer", func(p *sim.Proc) {
		h.sh.Ship(0, buf)
		for i := range buf {
			buf[i] = 0xFF // reuse the buffer immediately
		}
	})
	if err := h.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, h.sts[0], 1, 1)
}

// TestStaleEpochAcksIgnored: acks addressed to a dead epoch's stream must
// not advance the new shipper.
func TestStaleEpochAcksIgnored(t *testing.T) {
	s := sim.New(17)
	fab := netsim.New(s, netsim.Config{Seed: 18})
	cfg := Config{}
	cfg.applyDefaults()
	st := NewStandby(s, fab, "standby0", cfg)
	_ = st
	sh := NewShipper(s, fab, nil, 2, []string{"standby0"}, cfg)
	s.Spawn(nil, "forger", func(p *sim.Proc) {
		// A delayed ack from epoch 1 arrives at the epoch-2 shipper.
		fab.Send("standby0", cfg.PrimaryName, ackBytes, ackMsg{Epoch: 1, Seq: 99, Seen: 99, From: "standby0"})
	})
	if err := s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sh.QuorumSeq(1); got != 0 {
		t.Fatalf("stale-epoch ack advanced quorum to %d", got)
	}
}

// TestStalledReplicaEvictionBoundsRetention: a standby that stops acking
// (here: a partition that never heals in-epoch) must not pin the retained
// stream at the write rate forever. Once retention exceeds RetainLimit and
// the standby's ack has stalled past DeadAfter, it is evicted and the
// stream trims to the live standby's ack; the evicted standby is lost for
// the epoch and re-syncs when the next epoch restarts the stream.
func TestStalledReplicaEvictionBoundsRetention(t *testing.T) {
	cfg := Config{RetainLimit: 64 << 10, DeadAfter: 20 * time.Millisecond}
	h := newHarness(t, 21, 2, netsim.LinkConfig{}, cfg)
	h.s.Spawn(nil, "writer", func(p *sim.Proc) {
		h.fab.Isolate("standby1")
		for i := 0; i < 300; i++ { // 150 KB shipped, well past the 64 KB bound
			h.sh.Ship(int64(i*8), payload(i, 512))
			p.Sleep(100 * time.Microsecond)
		}
	})
	if err := h.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, h.sts[0], 1, 300)
	if got := h.sh.retainedB.Value(); got != 0 {
		t.Fatalf("retained %d bytes after the live standby acked everything — the stalled standby still pins the stream", got)
	}
	if h.sh.evictions.Value() == 0 {
		t.Fatal("stalled standby was never evicted")
	}
	r1 := h.sh.rep("standby1")
	if !r1.dead || !r1.lost {
		t.Fatalf("standby1 dead=%v lost=%v, want evicted and lost for the epoch", r1.dead, r1.lost)
	}
	// Healing mid-epoch cannot resurrect it: the records it needs are gone.
	// The probe must stop targeting it rather than resending a window it
	// can never apply.
	resends := h.sh.resends.Value()
	h.fab.Heal()
	if err := h.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := h.sts[1].AppliedSeq(1); got != 0 {
		t.Fatalf("lost standby applied %d epoch-1 records from a trimmed stream", got)
	}
	if got := h.sh.resends.Value(); got != resends {
		t.Fatalf("probe kept resending to a lost replica (%d new resends)", got-resends)
	}
	// The next epoch restarts the stream at seq 1; the lost standby rejoins
	// it cleanly. (In the rig the old shipper's daemons died with the
	// machine before the new epoch exists; here the epoch-1 loops are still
	// live on the shared endpoint, so assert via the applied prefix rather
	// than epoch-2 acks.)
	h.s.Spawn(nil, "writer2", func(p *sim.Proc) {
		sh2 := NewShipper(h.s, h.fab, nil, 2, []string{"standby0", "standby1"}, cfg)
		for i := 0; i < 5; i++ {
			sh2.Ship(int64(i*8), payload(i, 512))
		}
	})
	if err := h.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, h.sts[1], 2, 5)
}

// TestAllReplicasDeadStreamStaysRevivable: when retention pressure evicts
// every standby at once (a fleet-wide stall — one switch, one rack), the
// trim frontier used to fall back to next-1 and drop the entire retained
// stream, turning a transient outage into lost-for-epoch for every standby
// even though the probe explicitly supports reviving dead replicas. The
// fixed frontier holds at the slowest ack (within a hard cap), so healed
// standbys are repaired and revived by the normal probe machinery.
func TestAllReplicasDeadStreamStaysRevivable(t *testing.T) {
	cfg := Config{RetainLimit: 64 << 10, DeadAfter: 20 * time.Millisecond}
	h := newHarness(t, 22, 2, netsim.LinkConfig{}, cfg)
	h.s.Spawn(nil, "writer", func(p *sim.Proc) {
		for i := 0; i < 50; i++ { // a healthy, fully acked prefix
			h.sh.Ship(int64(i*8), payload(i, 512))
			p.Sleep(100 * time.Microsecond)
		}
		p.Sleep(20 * time.Millisecond) // acks settle; retained drains
		h.fab.Isolate("standby0", "standby1") // the whole fleet goes dark
		for i := 50; i < 350; i++ { // 150 KB unacked: well past RetainLimit
			h.sh.Ship(int64(i*8), payload(i, 512))
			p.Sleep(100 * time.Microsecond)
		}
	})
	if err := h.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if h.sh.evictions.Value() != 2 {
		t.Fatalf("evictions = %d, want the whole fleet evicted", h.sh.evictions.Value())
	}
	for _, name := range []string{"standby0", "standby1"} {
		r := h.sh.rep(name)
		if !r.dead {
			t.Fatalf("%s not dead after the fleet-wide stall", name)
		}
		if r.lost {
			t.Fatalf("%s lost for the epoch: the all-dead trim dropped records it still needs", name)
		}
	}
	if len(h.sh.retained) == 0 {
		t.Fatal("retained stream empty after all-dead eviction; revival is impossible")
	}
	if h.sh.base != 51 {
		t.Fatalf("stream base %d, want held at 51 (slowest ack + 1)", h.sh.base)
	}
	// The fleet comes back: the probe must repair both standbys from the
	// held stream and their late acks must revive them.
	h.fab.Heal()
	if err := h.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, st := range h.sts {
		checkPrefix(t, st, 1, 350)
	}
	for _, name := range []string{"standby0", "standby1"} {
		if r := h.sh.rep(name); r.dead || r.lost {
			t.Fatalf("%s dead=%v lost=%v after heal and full repair", name, r.dead, r.lost)
		}
	}
	if got := h.sh.retainedB.Value(); got != 0 {
		t.Fatalf("retained %d bytes after both standbys acked everything", got)
	}
}

// TestAllDeadRetentionHardCap: grace is not a blank cheque — with every
// standby dead and the primary still writing, the retained stream slides
// once it passes graceRetainFactor × RetainLimit, and replicas the slide
// passed become lost for the epoch. (Before the fix this scenario was
// unbounded the other way: after the all-dead wipe no ack round ever
// called truncate again, so retention regrew with every Ship.)
func TestAllDeadRetentionHardCap(t *testing.T) {
	cfg := Config{RetainLimit: 16 << 10, DeadAfter: 10 * time.Millisecond}
	h := newHarness(t, 23, 2, netsim.LinkConfig{}, cfg)
	hard := int64(graceRetainFactor) * cfg.RetainLimit
	var maxRetained int64
	h.s.Spawn(nil, "writer", func(p *sim.Proc) {
		h.fab.Isolate("standby0", "standby1")
		for i := 0; i < 400; i++ { // 200 KB: past the 64 KB hard cap
			h.sh.Ship(int64(i*8), payload(i, 512))
			if got := h.sh.retainedB.Value(); got > maxRetained {
				maxRetained = got
			}
			p.Sleep(100 * time.Microsecond)
		}
	})
	if err := h.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	// One probe interval of writes can land between trims, so the bound is
	// the hard cap plus that accumulation — far below the 200 KB shipped.
	if maxRetained > 2*hard {
		t.Fatalf("retention peaked at %d bytes with every replica dead, want ≤ ~%d (hard cap %d)",
			maxRetained, 2*hard, hard)
	}
	for _, name := range []string{"standby0", "standby1"} {
		if r := h.sh.rep(name); !r.lost {
			t.Fatalf("%s still marked revivable though the hard cap trimmed past its ack", name)
		}
	}
	// All-lost is terminal for the epoch: retention drains entirely rather
	// than holding records nobody can ever be sent.
	if got := h.sh.retainedB.Value(); got != 0 {
		t.Fatalf("retained %d bytes with every replica lost for the epoch", got)
	}
}

// TestShipRejectsUnalignedPayload: shipped records are sector images —
// recovery folds them onto sector boundaries — so a payload that is not a
// whole number of sectors is a caller bug Ship must refuse loudly.
func TestShipRejectsUnalignedPayload(t *testing.T) {
	h := newHarness(t, 23, 1, netsim.LinkConfig{}, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("Ship accepted a 700-byte payload on a 512-byte-sector stream")
		}
	}()
	h.sh.Ship(0, make([]byte, 700))
}

// TestWaitQuorumPanicsOnImpossibleQuorum: k beyond the replica count can
// never be satisfied; parking the writer forever would be a silent
// deadlock, so WaitQuorum panics instead.
func TestWaitQuorumPanicsOnImpossibleQuorum(t *testing.T) {
	h := newHarness(t, 25, 1, netsim.LinkConfig{}, Config{})
	done := h.s.NewEvent("panicked")
	h.s.Spawn(nil, "writer", func(p *sim.Proc) {
		defer done.Fire()
		defer func() {
			if recover() == nil {
				t.Error("WaitQuorum(k=2) with 1 replica parked instead of panicking")
			}
		}()
		seq := h.sh.Ship(0, payload(0, 512))
		h.sh.WaitQuorum(p, seq, 2)
	})
	if err := h.s.RunUntilEvent(done); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRejectsUnalignedRecord: defense in depth behind the Ship
// check — a record that is not a whole number of the log device's sectors
// must fail replay loudly, not silently drop its tail.
func TestRecoverRejectsUnalignedRecord(t *testing.T) {
	s := sim.New(27)
	fab := netsim.New(s, netsim.Config{Seed: 28})
	st := NewStandby(s, fab, "standby0", Config{})
	st.apply(Record{Epoch: 1, Seq: 1, Lba: 0, Data: make([]byte, 700)})
	mem := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 1 << 20})
	done := s.NewEvent("done")
	s.Spawn(nil, "driver", func(p *sim.Proc) {
		defer done.Fire()
		if _, err := Recover(p, []*Standby{st}, mem); err == nil {
			t.Error("Recover accepted a 700-byte record on a 512-byte-sector device")
		}
	})
	if err := s.RunUntilEvent(done); err != nil {
		t.Fatal(err)
	}
}
