package replica

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestLossyLinkConvergesWithOwnershipCheck re-runs the lossy-link
// convergence scenario with the fabric's ownership check enabled: every
// delivered frame is re-hashed against its send-time sum, so a pooled
// payload buffer recycled while a frame (fresh, repair, or duplicate) was
// still in flight panics the run instead of silently corrupting a standby.
// Passing proves the refcounting discipline — retained stream, pending
// queue, and per-frame references — keeps every buffer pinned for exactly
// as long as the wire can still observe it.
func TestLossyLinkConvergesWithOwnershipCheck(t *testing.T) {
	s := sim.New(3)
	link := netsim.LinkConfig{DropProb: 0.3, DupProb: 0.15, ReorderProb: 0.25}
	fab := netsim.New(s, netsim.Config{Seed: 4, Link: link, CheckOwnership: true})
	cfg := Config{}
	var sts []*Standby
	var names []string
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("standby%d", i)
		sts = append(sts, NewStandby(s, fab, name, cfg))
		names = append(names, name)
	}
	sh := NewShipper(s, fab, nil, 1, names, cfg)
	s.Spawn(nil, "writer", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			sh.Ship(int64(i*8), payload(i, 512))
			p.Sleep(20 * time.Microsecond)
		}
	})
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		checkPrefix(t, st, 1, 300)
	}
	if sh.resends.Value() == 0 {
		t.Fatal("a 30% lossy link converged without any retransmission")
	}
}
