//go:build !race

// Allocation-regression pin for the frame-batched ship/ack fast path.
// Exact malloc counts change under the race detector, so this only runs
// without -race.

package replica

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestShipSteadyStateAllocBound pins the steady-state shipping cycle: with
// payload buffers, frames, and the retained window all pooled, a full
// ship→frame→apply→ack→truncate round must amortise to well under one
// allocation per record. The residue is per-frame fabric scheduling and
// occasional slice growth, not per-record copies — which is the difference
// between this path and the one it replaced (a fresh payload copy per
// record per Ship, plus a retained-window reallocation per ack round).
func TestShipSteadyStateAllocBound(t *testing.T) {
	const batch = 64 // exactly MaxFrameRecords: each step is one frame per link
	h := newHarness(t, 11, 2, netsim.LinkConfig{}, Config{})
	kick := h.s.NewSignal("kick")
	data := make([]byte, 512)
	n := 0
	h.s.Spawn(nil, "w", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			kick.Wait(p)
			for i := 0; i < batch; i++ {
				h.sh.Ship(int64(n%1024)*8, data)
				n++
			}
		}
	})
	step := func() {
		kick.Broadcast()
		// Long enough for frame delivery, standby apply, the coalesced
		// acks, and truncation to retire the batch back into the pools.
		if err := h.s.RunFor(20 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ { // warm pools, inboxes, and slice capacities
		step()
	}
	if h.sh.Lag() != 0 || len(h.sh.retained) != 0 {
		t.Fatalf("pipeline not settling between steps: lag %d, %d retained", h.sh.Lag(), len(h.sh.retained))
	}
	start := n
	allocs := testing.AllocsPerRun(50, step)
	if n-start != 51*batch { // warmup call + 50 measured
		t.Fatalf("expected %d records during measurement, got %d", 51*batch, n-start)
	}
	perRec := allocs / batch
	if perRec > 0.5 {
		t.Fatalf("steady-state shipping allocates %.3f per record (%.1f per %d-record step), want <= 0.5",
			perRec, allocs, batch)
	}
}
