package hv

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

func TestVdiskDelegatesGeometryAndStats(t *testing.T) {
	_, m, logd, datad := rig(1)
	h := New(m, Config{})
	g := h.NewGuest("db", logd, datad)
	vd := g.LogDisk()
	if vd.SectorSize() != logd.SectorSize() || vd.Sectors() != logd.Sectors() {
		t.Fatal("geometry not delegated")
	}
	if vd.SeqWriteBandwidth() != logd.SeqWriteBandwidth() {
		t.Fatal("bandwidth not delegated")
	}
	if vd.WorstCaseAccess() != logd.WorstCaseAccess() {
		t.Fatal("access time not delegated")
	}
	if vd.Stats() != logd.Stats() {
		t.Fatal("stats not delegated")
	}
	if vd.Name() == logd.Name() {
		t.Fatal("vdisk name should mark virtualisation")
	}
}

func TestVdiskReadAndFlushPayExitCost(t *testing.T) {
	s, m, logd, datad := rig(1)
	h := New(m, Config{ExitCost: 200 * time.Microsecond})
	g := h.NewGuest("db", logd, datad)
	var readCost, flushCost time.Duration
	s.Spawn(g.Domain(), "io", func(p *sim.Proc) {
		_ = g.LogDisk().Write(p, 0, make([]byte, 512), true)
		start := p.Now()
		if _, err := g.LogDisk().Read(p, 0, 1); err != nil {
			t.Errorf("read: %v", err)
		}
		readCost = p.Now().Sub(start)
		start = p.Now()
		if err := g.LogDisk().Flush(p); err != nil {
			t.Errorf("flush: %v", err)
		}
		flushCost = p.Now().Sub(start)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if readCost < 200*time.Microsecond {
		t.Fatalf("read cost %v missing exit cost", readCost)
	}
	if flushCost < 200*time.Microsecond {
		t.Fatalf("flush cost %v missing exit cost", flushCost)
	}
}

func TestSetLogBackingSwapsDevice(t *testing.T) {
	s, m, logd, datad := rig(1)
	h := New(m, Config{})
	g := h.NewGuest("db", logd, datad)
	replacement := disk.NewMem(s, disk.MemConfig{Name: "log2", Persistent: true})
	g.SetLogBacking(replacement)
	var got []byte
	s.Spawn(g.Domain(), "io", func(p *sim.Proc) {
		if err := g.LogDisk().Write(p, 5, bytes.Repeat([]byte{7}, 512), true); err != nil {
			t.Errorf("write: %v", err)
		}
		got, _ = replacement.Read(p, 5, 1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{7}, 512)) {
		t.Fatal("write did not reach the replacement backing")
	}
}

func TestGuestAndNativeNames(t *testing.T) {
	_, m, logd, datad := rig(1)
	n := NewNative(m, logd, datad)
	if n.Name() != "native" {
		t.Fatalf("native name %q", n.Name())
	}
	h := New(m, Config{})
	g := h.NewGuest("db", logd, datad)
	if g.Name() != "guest:db" {
		t.Fatalf("guest name %q", g.Name())
	}
	if h.Machine() != m {
		t.Fatal("Machine accessor")
	}
}

func TestHypervisorRebootRevivesDomain(t *testing.T) {
	s, m, logd, datad := rig(1)
	h := New(m, Config{})
	_ = h.NewGuest("db", logd, datad)
	s.Spawn(nil, "op", func(p *sim.Proc) {
		m.CutPower()
		p.Sleep(time.Second)
		if !h.Domain().Dead() {
			t.Error("hypervisor domain alive after power loss")
		}
		m.RestorePower()
		h.Reboot()
		if h.Domain().Dead() {
			t.Error("hypervisor domain dead after reboot")
		}
	})
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestNativeCPUAccessor(t *testing.T) {
	_, m, logd, datad := rig(1)
	n := NewNative(m, logd, datad)
	if n.CPU() != m.CPU() {
		t.Fatal("native CPU pool is not the machine's")
	}
	if n.Sim() != m.Sim() {
		t.Fatal("native Sim accessor")
	}
}
