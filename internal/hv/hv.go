// Package hv models the virtualisation layer RapiLog is built on: a
// dependable (seL4-based, formally verified) hypervisor hosting a database
// guest VM.
//
// The paper's argument uses exactly one property of the verified hypervisor:
// it does not crash due to software faults, so memory it holds survives any
// guest crash. We encode that property structurally — the hypervisor's crash
// domain is killed only by power loss, never by software faults — rather
// than modelling seL4 internals. The cost side of virtualisation is modelled
// too: every virtual disk operation pays an exit cost, and guest CPU burns
// are inflated by a configurable overhead, which is what experiment E4
// measures.
//
// The Platform interface abstracts "where the database stack runs" so the
// same engine code drives all four evaluation configurations: native,
// native with unsafe commits, virtualised pass-through, and virtualised
// with the RapiLog log device.
package hv

import (
	"time"

	"repro/internal/disk"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
)

// Platform is the world as seen by a database stack: a crash domain to run
// in, a log and a data block device, CPU cores, and a CPU-time scaling that
// accounts for virtualisation overhead.
type Platform interface {
	// Name identifies the platform configuration in reports.
	Name() string
	// Sim returns the owning simulation.
	Sim() *sim.Sim
	// Domain is the crash domain database processes run in.
	Domain() *sim.Domain
	// LogDisk returns the device holding the write-ahead log.
	LogDisk() disk.Device
	// DataDisk returns the device holding table/heap pages.
	DataDisk() disk.Device
	// CPU returns the machine's core pool (re-fetch after reboot).
	CPU() *sim.Resource
	// CPUTime scales a nominal CPU burst by the platform's overhead.
	CPUTime(d time.Duration) time.Duration
	// Crash kills the platform's software stack (OS/DBMS), leaving the
	// machine powered. What survives depends on the configuration.
	Crash()
	// Reboot revives the crash domain so recovery code can run.
	Reboot()
}

// Native runs the database directly on the machine: no hypervisor, no exit
// costs, and nothing between the DBMS and the disks. A Crash models an OS
// panic; anything buffered in software is gone.
type Native struct {
	machine *power.Machine
	dom     *sim.Domain
	logDev  disk.Device
	dataDev disk.Device
}

// NewNative creates a native platform on machine with the given devices.
func NewNative(machine *power.Machine, logDev, dataDev disk.Device) *Native {
	return &Native{
		machine: machine,
		dom:     machine.NewDomain("native-os"),
		logDev:  logDev,
		dataDev: dataDev,
	}
}

// Name implements Platform.
func (n *Native) Name() string { return "native" }

// Sim implements Platform.
func (n *Native) Sim() *sim.Sim { return n.machine.Sim() }

// Domain implements Platform.
func (n *Native) Domain() *sim.Domain { return n.dom }

// LogDisk implements Platform.
func (n *Native) LogDisk() disk.Device { return n.logDev }

// DataDisk implements Platform.
func (n *Native) DataDisk() disk.Device { return n.dataDev }

// CPU implements Platform.
func (n *Native) CPU() *sim.Resource { return n.machine.CPU() }

// CPUTime implements Platform: no overhead.
func (n *Native) CPUTime(d time.Duration) time.Duration { return d }

// Crash implements Platform.
func (n *Native) Crash() { n.dom.Kill() }

// Reboot implements Platform.
func (n *Native) Reboot() { n.dom.Revive() }

// Config parameterises the hypervisor's cost model.
type Config struct {
	// ExitCost is charged on every virtual disk operation (the VM exit,
	// request translation, and re-entry). Default 15µs.
	ExitCost time.Duration
	// CPUOverhead inflates guest CPU bursts (shadow paging, interrupt
	// virtualisation). Default 0.05 (5%).
	CPUOverhead float64
	// Obs, when set, counts VM exits ("hv.exits") on every virtual disk
	// operation.
	Obs *obs.Obs
}

func (c *Config) applyDefaults() {
	if c.ExitCost == 0 {
		c.ExitCost = 15 * time.Microsecond
	}
	if c.CPUOverhead == 0 {
		c.CPUOverhead = 0.05
	}
}

// Hypervisor is the dependable layer: its domain dies only with machine
// power. Code that must survive guest crashes (the RapiLog drain) runs here.
type Hypervisor struct {
	machine *power.Machine
	cfg     Config
	dom     *sim.Domain
	exits   *metrics.Counter
}

// New creates a hypervisor on machine.
func New(machine *power.Machine, cfg Config) *Hypervisor {
	cfg.applyDefaults()
	return &Hypervisor{
		machine: machine,
		cfg:     cfg,
		dom:     machine.NewDomain("hypervisor"),
		exits:   cfg.Obs.Registry().Counter("hv.exits"),
	}
}

// Machine returns the underlying machine.
func (h *Hypervisor) Machine() *power.Machine { return h.machine }

// Domain returns the hypervisor's crash domain — the verified, crash-free
// zone. It is killed only by power loss.
func (h *Hypervisor) Domain() *sim.Domain { return h.dom }

// Config returns the cost model.
func (h *Hypervisor) Config() Config { return h.cfg }

// Reboot revives the hypervisor domain after a power cycle.
func (h *Hypervisor) Reboot() { h.dom.Revive() }

// Guest is a virtual machine hosted on the hypervisor. Its disks are
// virtual devices: every operation pays the exit cost before reaching
// whatever backs it (a raw partition pass-through, or the RapiLog device).
type Guest struct {
	hv      *Hypervisor
	name    string
	dom     *sim.Domain
	logDev  disk.Device
	dataDev disk.Device
}

// NewGuest creates a guest whose virtual log and data disks are backed by
// the given devices. Pass the raw log partition for a pass-through
// configuration, or a RapiLog device for the interposed one.
func (h *Hypervisor) NewGuest(name string, logBacking, dataBacking disk.Device) *Guest {
	return &Guest{
		hv:      h,
		name:    name,
		dom:     h.machine.NewDomain(name),
		logDev:  &vdisk{dev: logBacking, hv: h},
		dataDev: &vdisk{dev: dataBacking, hv: h},
	}
}

// Name implements Platform.
func (g *Guest) Name() string { return "guest:" + g.name }

// Sim implements Platform.
func (g *Guest) Sim() *sim.Sim { return g.hv.machine.Sim() }

// Domain implements Platform.
func (g *Guest) Domain() *sim.Domain { return g.dom }

// LogDisk implements Platform.
func (g *Guest) LogDisk() disk.Device { return g.logDev }

// DataDisk implements Platform.
func (g *Guest) DataDisk() disk.Device { return g.dataDev }

// CPU implements Platform.
func (g *Guest) CPU() *sim.Resource { return g.hv.machine.CPU() }

// CPUTime implements Platform: guest CPU pays the virtualisation overhead.
func (g *Guest) CPUTime(d time.Duration) time.Duration {
	return d + time.Duration(float64(d)*g.hv.cfg.CPUOverhead)
}

// Crash implements Platform: the guest OS/DBMS dies; the hypervisor — and
// anything it buffers — survives. This is the property verification buys.
func (g *Guest) Crash() { g.dom.Kill() }

// Reboot implements Platform.
func (g *Guest) Reboot() { g.dom.Revive() }

// SetLogBacking swaps the device behind the guest's virtual log disk. Used
// after a power cycle, when a fresh RapiLog instance replaces the one that
// died with the machine.
func (g *Guest) SetLogBacking(dev disk.Device) {
	g.logDev = &vdisk{dev: dev, hv: g.hv}
}

// vdisk wraps a backing device with the per-operation exit cost.
type vdisk struct {
	dev disk.Device
	hv  *Hypervisor
}

func (v *vdisk) Name() string                   { return v.dev.Name() + "(virt)" }
func (v *vdisk) SectorSize() int                { return v.dev.SectorSize() }
func (v *vdisk) Sectors() int64                 { return v.dev.Sectors() }
func (v *vdisk) SeqWriteBandwidth() float64     { return v.dev.SeqWriteBandwidth() }
func (v *vdisk) WorstCaseAccess() time.Duration { return v.dev.WorstCaseAccess() }
func (v *vdisk) Stats() *disk.Stats             { return v.dev.Stats() }

// exit charges one VM exit and counts it.
func (v *vdisk) exit(p *sim.Proc) {
	v.hv.exits.Inc()
	p.Sleep(v.hv.cfg.ExitCost)
}

func (v *vdisk) Read(p *sim.Proc, lba int64, nsec int) ([]byte, error) {
	v.exit(p)
	return v.dev.Read(p, lba, nsec)
}

func (v *vdisk) Write(p *sim.Proc, lba int64, data []byte, fua bool) error {
	v.exit(p)
	return v.dev.Write(p, lba, data, fua)
}

func (v *vdisk) Flush(p *sim.Proc) error {
	v.exit(p)
	return v.dev.Flush(p)
}
