package hv

import (
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/power"
	"repro/internal/sim"
)

func rig(seed int64) (*sim.Sim, *power.Machine, *disk.Mem, *disk.Mem) {
	s := sim.New(seed)
	m := power.NewMachine(s, "m0", 4, power.PSUTypical)
	logd := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true})
	datad := disk.NewMem(s, disk.MemConfig{Name: "data", Persistent: true})
	m.AttachDevice(logd)
	m.AttachDevice(datad)
	return s, m, logd, datad
}

func TestNativePlatformIdentityCosts(t *testing.T) {
	s, m, logd, datad := rig(1)
	n := NewNative(m, logd, datad)
	if n.CPUTime(time.Millisecond) != time.Millisecond {
		t.Fatal("native CPU time scaled")
	}
	if n.LogDisk() != disk.Device(logd) || n.DataDisk() != disk.Device(datad) {
		t.Fatal("native disks are not the raw devices")
	}
	var direct, viaPlatform sim.Time
	s.Spawn(nil, "a", func(p *sim.Proc) {
		start := p.Now()
		_ = logd.Write(p, 0, make([]byte, 512), true)
		direct = p.Now() - start
	})
	s.Spawn(nil, "b", func(p *sim.Proc) {
		start := p.Now()
		_ = n.LogDisk().Write(p, 1, make([]byte, 512), true)
		viaPlatform = p.Now() - start
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if direct != viaPlatform {
		t.Fatalf("native platform added I/O cost: %v vs %v", viaPlatform, direct)
	}
}

func TestGuestIOPaysExitCost(t *testing.T) {
	s, m, logd, datad := rig(1)
	h := New(m, Config{ExitCost: 100 * time.Microsecond})
	g := h.NewGuest("db", logd, datad)
	var raw, virt time.Duration
	s.Spawn(nil, "raw", func(p *sim.Proc) {
		start := p.Now()
		_ = logd.Write(p, 0, make([]byte, 512), true)
		raw = p.Now().Sub(start)
	})
	s.Spawn(g.Domain(), "virt", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // let raw finish first
		start := p.Now()
		_ = g.LogDisk().Write(p, 1, make([]byte, 512), true)
		virt = p.Now().Sub(start)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := virt - raw; got != 100*time.Microsecond {
		t.Fatalf("exit cost = %v, want 100µs", got)
	}
}

func TestGuestCPUOverhead(t *testing.T) {
	_, m, logd, datad := rig(1)
	h := New(m, Config{CPUOverhead: 0.10})
	g := h.NewGuest("db", logd, datad)
	if got := g.CPUTime(time.Millisecond); got != 1100*time.Microsecond {
		t.Fatalf("CPUTime = %v, want 1.1ms", got)
	}
}

func TestGuestCrashSparesHypervisor(t *testing.T) {
	s, m, logd, datad := rig(1)
	h := New(m, Config{})
	g := h.NewGuest("db", logd, datad)
	var hvAlive, guestAlive bool
	s.Spawn(h.Domain(), "hvproc", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		hvAlive = true
	})
	s.Spawn(g.Domain(), "guestproc", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		guestAlive = true
	})
	s.After(time.Millisecond, g.Crash)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !hvAlive {
		t.Fatal("hypervisor proc died on guest crash")
	}
	if guestAlive {
		t.Fatal("guest proc survived guest crash")
	}
}

func TestPowerLossKillsHypervisorToo(t *testing.T) {
	s, m, logd, datad := rig(1)
	h := New(m, Config{})
	g := h.NewGuest("db", logd, datad)
	var hvAlive bool
	s.Spawn(h.Domain(), "hvproc", func(p *sim.Proc) {
		p.Sleep(time.Second)
		hvAlive = true
	})
	s.Spawn(g.Domain(), "guestproc", func(p *sim.Proc) { p.Sleep(time.Second) })
	s.After(time.Millisecond, func() { m.CutPower() })
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if hvAlive {
		t.Fatal("hypervisor survived power loss (verification does not stop physics)")
	}
	if !h.Domain().Dead() || !g.Domain().Dead() {
		t.Fatal("domains not dead after power loss")
	}
}

func TestRebootRevivesDomains(t *testing.T) {
	s, m, logd, datad := rig(1)
	h := New(m, Config{})
	g := h.NewGuest("db", logd, datad)
	var recovered bool
	s.Spawn(nil, "ctl", func(p *sim.Proc) {
		m.CutPower()
		p.Sleep(time.Second)
		m.RestorePower()
		h.Reboot()
		g.Reboot()
		s.Spawn(g.Domain(), "recovery", func(p *sim.Proc) { recovered = true })
	})
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Fatal("recovery proc did not run after reboot")
	}
}

func TestVdiskPassthroughData(t *testing.T) {
	s, m, logd, datad := rig(1)
	h := New(m, Config{})
	g := h.NewGuest("db", logd, datad)
	var got []byte
	s.Spawn(g.Domain(), "io", func(p *sim.Proc) {
		payload := make([]byte, 1024)
		for i := range payload {
			payload[i] = byte(i)
		}
		if err := g.DataDisk().Write(p, 7, payload, false); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := g.DataDisk().Flush(p); err != nil {
			t.Errorf("flush: %v", err)
		}
		got, _ = g.DataDisk().Read(p, 7, 2)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1024 || got[1] != 1 || got[513] != 1 {
		t.Fatal("vdisk passthrough corrupted data")
	}
}

func TestConfigDefaults(t *testing.T) {
	_, m, _, _ := rig(1)
	h := New(m, Config{})
	if h.Config().ExitCost == 0 || h.Config().CPUOverhead == 0 {
		t.Fatal("defaults not applied")
	}
}
