package workload

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/sim"
)

// PartitionTPCC splits one TPC-C configuration into per-shard drivers:
// shard i's clone owns exactly the warehouses the router hashes to i, so
// Load populates disjoint row sets and Do never crosses a shard boundary.
// Hash ownership can leave a shard empty when warehouses are few, which
// would silently make that clone drive everything — so empty shards are
// topped up by moving a warehouse from the fullest shard (deterministic,
// still disjoint). Needs at least one warehouse per shard.
func PartitionTPCC(base TPCC, router *shard.Router) ([]*TPCC, error) {
	base.applyDefaults()
	owned, err := partitionIDs(base.Warehouses, router, kWarehouse)
	if err != nil {
		return nil, fmt.Errorf("tpcc: %w", err)
	}
	out := make([]*TPCC, router.Shards())
	for i := range out {
		c := base
		c.Owned = owned[i]
		out[i] = &c
	}
	return out, nil
}

// PartitionTPCB splits one TPC-B configuration into per-shard drivers the
// same way, partitioning by branch key.
func PartitionTPCB(base TPCB, router *shard.Router) ([]*TPCB, error) {
	base.applyDefaults()
	owned, err := partitionIDs(base.Branches, router, kBranch)
	if err != nil {
		return nil, fmt.Errorf("tpcb: %w", err)
	}
	out := make([]*TPCB, router.Shards())
	for i := range out {
		c := base
		c.Owned = owned[i]
		out[i] = &c
	}
	return out, nil
}

// partitionIDs assigns entity ids 1..n to shards by key hash, then
// rebalances so no shard is left empty.
func partitionIDs(n int, router *shard.Router, key func(int) string) ([][]int, error) {
	shards := router.Shards()
	if n < shards {
		return nil, fmt.Errorf("%d entities cannot cover %d shards", n, shards)
	}
	owned := make([][]int, shards)
	for id := 1; id <= n; id++ {
		i := router.ShardFor(key(id))
		owned[i] = append(owned[i], id)
	}
	for i := range owned {
		for len(owned[i]) == 0 {
			donor, most := -1, 1
			for j := range owned {
				if len(owned[j]) > most {
					donor, most = j, len(owned[j])
				}
			}
			// n >= shards guarantees a donor with at least two entities.
			last := len(owned[donor]) - 1
			owned[i] = append(owned[i], owned[donor][last])
			owned[donor] = owned[donor][:last]
		}
	}
	return owned, nil
}

// ShardedResult is the outcome of a sharded client-pool run: one RunResult
// per shard plus the fleet-wide merge.
type ShardedResult struct {
	Shards []RunResult
	Total  RunResult
}

// MergeRunResults folds per-shard results into a fleet view: throughput
// counts sum, the latency distributions merge exactly (shared bucket
// layout), and the duration is the longest shard's measurement interval —
// shards ran concurrently, so intervals overlap rather than add.
func MergeRunResults(rs []RunResult) RunResult {
	out := RunResult{TxnLatency: metrics.NewHistogram("sharded.txn")}
	for _, r := range rs {
		out.Committed += r.Committed
		out.Aborted += r.Aborted
		if r.Duration > out.Duration {
			out.Duration = r.Duration
		}
		out.TxnLatency.Merge(r.TxnLatency)
	}
	return out
}

// RunShardedClients drives each shard's workload against its engine with an
// independent closed-loop client pool, all shards in parallel, and blocks
// until every pool's measurement interval ends. cfg.Clients is the pool
// size per shard; cfg.Journal is ignored — pass journals (nil, or one per
// shard) instead, since acked obligations must be verified against the
// shard that acked them. doms holds each shard's platform domain: a shard's
// clients die with that shard's guest, exactly like the single-rig runner.
func RunShardedClients(p *sim.Proc, doms []*sim.Domain, engines []*engine.Engine, ws []Workload, journals []*Journal, cfg RunnerConfig) (ShardedResult, error) {
	n := len(engines)
	if len(ws) != n || len(doms) != n || (journals != nil && len(journals) != n) {
		return ShardedResult{}, fmt.Errorf("workload: sharded run over %d engines got %d workloads, %d domains, %d journals",
			n, len(ws), len(doms), len(journals))
	}
	cfg.applyDefaults()
	res := ShardedResult{Shards: make([]RunResult, n)}
	s := p.Sim()
	done := s.NewEvent("sharded.run.done")
	running := n
	for i := 0; i < n; i++ {
		i := i
		scfg := cfg
		scfg.Journal = nil
		if journals != nil {
			scfg.Journal = journals[i]
		}
		// The per-shard runner lives in the root domain so a guest crash
		// kills only that shard's clients; RunClients already tolerates a
		// dead client domain via its deadline.
		s.Spawn(nil, fmt.Sprintf("shard%d.runner", i), func(rp *sim.Proc) {
			res.Shards[i] = RunClients(rp, doms[i], engines[i], ws[i], scfg)
			running--
			if running == 0 {
				done.Fire()
			}
		})
	}
	if !done.Fired() {
		done.WaitTimeout(p, cfg.Warmup+cfg.Duration+2*time.Second)
	}
	res.Total = MergeRunResults(res.Shards)
	return res, nil
}
