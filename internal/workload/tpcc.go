package workload

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/sim"
)

// TPCC is a TPC-C-derived OLTP workload: the five standard transaction
// types in the standard mix over the warehouse/district/customer/stock
// schema, with NURand skew, scaled down so a simulated machine loads in
// seconds. It is "TPC-C-like" in exactly the sense the paper's benchmark
// was: same access pattern and commit rate characteristics, no pretence of
// an auditable tpmC number.
type TPCC struct {
	Warehouses int // default 2
	Districts  int // per warehouse; default 10
	Customers  int // per district; default 30
	Items      int // global; default 1000
	RowFiller  int // padding bytes per row to mimic real row widths; default 60
	// Owned, when set, restricts this instance to exactly these warehouse
	// ids: Load populates only them and Do only drives them. A sharded
	// deployment gives each shard a clone owning a disjoint subset (see
	// PartitionTPCC), so shards never touch each other's rows.
	Owned []int

	hist uint64 // history row id source (harness-side uniqueness)
}

// ownedWarehouses returns the warehouse ids this instance drives.
func (w *TPCC) ownedWarehouses() []int {
	if len(w.Owned) > 0 {
		return w.Owned
	}
	ids := make([]int, w.Warehouses)
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

func (w *TPCC) applyDefaults() {
	if w.Warehouses == 0 {
		w.Warehouses = 2
	}
	if w.Districts == 0 {
		w.Districts = 10
	}
	if w.Customers == 0 {
		w.Customers = 30
	}
	if w.Items == 0 {
		w.Items = 1000
	}
	if w.RowFiller == 0 {
		w.RowFiller = 60
	}
}

// Name implements Workload.
func (w *TPCC) Name() string { return "tpcc" }

func filler(n int) string { return strings.Repeat("x", n) }

// Key builders.
func kWarehouse(wid int) string              { return fmt.Sprintf("w:%d", wid) }
func kDistrict(wid, did int) string          { return fmt.Sprintf("d:%d:%d", wid, did) }
func kCustomer(wid, did, cid int) string     { return fmt.Sprintf("c:%d:%d:%d", wid, did, cid) }
func kItem(iid int) string                   { return fmt.Sprintf("i:%d", iid) }
func kStock(wid, iid int) string             { return fmt.Sprintf("s:%d:%d", wid, iid) }
func kOrder(wid, did, oid int) string        { return fmt.Sprintf("o:%d:%d:%d", wid, did, oid) }
func kOrderLine(wid, did, oid, l int) string { return fmt.Sprintf("ol:%d:%d:%d:%d", wid, did, oid, l) }
func kHistory(id uint64) string              { return fmt.Sprintf("h:%d", id) }

// district value: nextOID|nextDeliveryOID|ytd|filler
func encDistrict(nextOID, nextDeliv, ytd int, pad int) []byte {
	return []byte(fmt.Sprintf("%d|%d|%d|%s", nextOID, nextDeliv, ytd, filler(pad)))
}

func decDistrict(v []byte) (nextOID, nextDeliv, ytd int, err error) {
	_, err = fmt.Sscanf(string(v), "%d|%d|%d|", &nextOID, &nextDeliv, &ytd)
	return
}

// Load populates the schema. Run it once per database lifetime, before any
// clients start.
func (w *TPCC) Load(p *sim.Proc, e *engine.Engine) error {
	w.applyDefaults()
	put := func(tx *engine.Tx, k string, v []byte) error { return tx.Put(k, v) }

	// Items (read-mostly).
	tx := e.Begin(p)
	for i := 1; i <= w.Items; i++ {
		if err := put(tx, kItem(i), []byte(fmt.Sprintf("%d|item-%d|%s", 100+i%900, i, filler(w.RowFiller)))); err != nil {
			return err
		}
		if i%200 == 0 { // bound transaction size during load
			if err := tx.Commit(); err != nil {
				return err
			}
			tx = e.Begin(p)
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}

	for _, wid := range w.ownedWarehouses() {
		tx := e.Begin(p)
		if err := put(tx, kWarehouse(wid), []byte(fmt.Sprintf("0|%s", filler(w.RowFiller)))); err != nil {
			return err
		}
		for did := 1; did <= w.Districts; did++ {
			if err := put(tx, kDistrict(wid, did), encDistrict(1, 1, 0, w.RowFiller)); err != nil {
				return err
			}
			for cid := 1; cid <= w.Customers; cid++ {
				if err := put(tx, kCustomer(wid, did, cid), []byte(fmt.Sprintf("0|0|%s", filler(w.RowFiller)))); err != nil {
					return err
				}
			}
			if err := tx.Commit(); err != nil {
				return err
			}
			tx = e.Begin(p)
		}
		for i := 1; i <= w.Items; i++ {
			if err := put(tx, kStock(wid, i), []byte(fmt.Sprintf("%d|0|%s", 50+i%50, filler(w.RowFiller)))); err != nil {
				return err
			}
			if i%200 == 0 {
				if err := tx.Commit(); err != nil {
					return err
				}
				tx = e.Begin(p)
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// nuRand is TPC-C's non-uniform random: skews item and customer selection.
func nuRand(p *sim.Proc, a, x, y int) int {
	r := p.Sim().Rand()
	c := a / 2
	return (((r.Intn(a+1) | (x + r.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

// Do implements Workload: run one transaction of the standard mix.
// The returned journal obligations are recorded by the caller only if the
// commit succeeds.
func (w *TPCC) Do(p *sim.Proc, e *engine.Engine, j *Journal) error {
	w.applyDefaults()
	r := p.Sim().Rand()
	roll := r.Intn(100)
	switch {
	case roll < 45:
		return w.newOrder(p, e, j)
	case roll < 88:
		return w.payment(p, e, j)
	case roll < 92:
		return w.orderStatus(p, e)
	case roll < 96:
		return w.delivery(p, e, j)
	default:
		return w.stockLevel(p, e)
	}
}

func (w *TPCC) pick(p *sim.Proc) (wid, did int) {
	r := p.Sim().Rand()
	if len(w.Owned) > 0 {
		return w.Owned[r.Intn(len(w.Owned))], 1 + r.Intn(w.Districts)
	}
	return 1 + r.Intn(w.Warehouses), 1 + r.Intn(w.Districts)
}

func (w *TPCC) newOrder(p *sim.Proc, e *engine.Engine, j *Journal) error {
	r := p.Sim().Rand()
	wid, did := w.pick(p)
	cid := 1 + nuRand(p, 255, 0, w.Customers-1)
	nLines := 5 + r.Intn(11)

	tx := e.Begin(p)
	// District: allocate the order id.
	dv, ok, err := tx.Get(kDistrict(wid, did))
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = errors.New("tpcc: district missing")
		}
		return err
	}
	nextOID, nextDeliv, ytd, err := decDistrict(dv)
	if err != nil {
		tx.Abort()
		return err
	}
	oid := nextOID
	if err := tx.Put(kDistrict(wid, did), encDistrict(nextOID+1, nextDeliv, ytd, w.RowFiller)); err != nil {
		tx.Abort()
		return err
	}
	// Lines: read item, update stock, insert order line.
	total := 0
	for l := 1; l <= nLines; l++ {
		iid := 1 + nuRand(p, 8191, 0, w.Items-1)
		iv, ok, err := tx.Get(kItem(iid))
		if err != nil || !ok {
			tx.Abort()
			if err == nil {
				err = errors.New("tpcc: item missing")
			}
			return err
		}
		var price int
		_, _ = fmt.Sscanf(string(iv), "%d|", &price)
		qty := 1 + r.Intn(10)
		total += price * qty

		sk := kStock(wid, iid)
		sv, ok, err := tx.Get(sk)
		if err != nil || !ok {
			tx.Abort()
			if err == nil {
				err = errors.New("tpcc: stock missing")
			}
			return err
		}
		var sQty, sYtd int
		_, _ = fmt.Sscanf(string(sv), "%d|%d|", &sQty, &sYtd)
		sQty -= qty
		if sQty < 10 {
			sQty += 91
		}
		if err := tx.Put(sk, []byte(fmt.Sprintf("%d|%d|%s", sQty, sYtd+qty, filler(w.RowFiller)))); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Put(kOrderLine(wid, did, oid, l), []byte(fmt.Sprintf("%d|%d|%d|%s", iid, qty, price*qty, filler(w.RowFiller)))); err != nil {
			tx.Abort()
			return err
		}
	}
	orderVal := []byte(fmt.Sprintf("%d|%d|0|%d|%s", cid, nLines, total, filler(w.RowFiller)))
	if err := tx.Put(kOrder(wid, did, oid), orderVal); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if j != nil {
		// The order row is written only by this transaction until its
		// delivery; existence after recovery is the durability witness.
		j.Add(kOrder(wid, did, oid), nil)
	}
	return nil
}

func (w *TPCC) payment(p *sim.Proc, e *engine.Engine, j *Journal) error {
	r := p.Sim().Rand()
	wid, did := w.pick(p)
	cid := 1 + nuRand(p, 255, 0, w.Customers-1)
	amount := 1 + r.Intn(5000)

	tx := e.Begin(p)
	wv, ok, err := tx.Get(kWarehouse(wid))
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = errors.New("tpcc: warehouse missing")
		}
		return err
	}
	var wYtd int
	_, _ = fmt.Sscanf(string(wv), "%d|", &wYtd)
	if err := tx.Put(kWarehouse(wid), []byte(fmt.Sprintf("%d|%s", wYtd+amount, filler(w.RowFiller)))); err != nil {
		tx.Abort()
		return err
	}
	dv, ok, err := tx.Get(kDistrict(wid, did))
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = errors.New("tpcc: district missing")
		}
		return err
	}
	nextOID, nextDeliv, ytd, _ := decDistrict(dv)
	if err := tx.Put(kDistrict(wid, did), encDistrict(nextOID, nextDeliv, ytd+amount, w.RowFiller)); err != nil {
		tx.Abort()
		return err
	}
	cv, ok, err := tx.Get(kCustomer(wid, did, cid))
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = errors.New("tpcc: customer missing")
		}
		return err
	}
	var bal, pays int
	_, _ = fmt.Sscanf(string(cv), "%d|%d|", &bal, &pays)
	if err := tx.Put(kCustomer(wid, did, cid), []byte(fmt.Sprintf("%d|%d|%s", bal-amount, pays+1, filler(w.RowFiller)))); err != nil {
		tx.Abort()
		return err
	}
	w.hist++
	hk := kHistory(w.hist)
	hv := []byte(fmt.Sprintf("%d|%d|%d|%d|%s", wid, did, cid, amount, filler(w.RowFiller)))
	if err := tx.Put(hk, hv); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if j != nil {
		j.Add(hk, hv) // insert-only: exact contents must survive
	}
	return nil
}

func (w *TPCC) orderStatus(p *sim.Proc, e *engine.Engine) error {
	wid, did := w.pick(p)
	cid := 1 + nuRand(p, 255, 0, w.Customers-1)
	tx := e.Begin(p)
	if _, _, err := tx.Get(kCustomer(wid, did, cid)); err != nil {
		tx.Abort()
		return err
	}
	dv, ok, err := tx.Get(kDistrict(wid, did))
	if err != nil || !ok {
		tx.Abort()
		return err
	}
	nextOID, _, _, _ := decDistrict(dv)
	if nextOID > 1 {
		oid := nextOID - 1
		ov, ok, err := tx.Get(kOrder(wid, did, oid))
		if err != nil {
			tx.Abort()
			return err
		}
		if ok {
			var ocid, nLines int
			_, _ = fmt.Sscanf(string(ov), "%d|%d|", &ocid, &nLines)
			for l := 1; l <= nLines; l++ {
				if _, _, err := tx.Get(kOrderLine(wid, did, oid, l)); err != nil {
					tx.Abort()
					return err
				}
			}
		}
	}
	return tx.Commit()
}

func (w *TPCC) delivery(p *sim.Proc, e *engine.Engine, j *Journal) error {
	wid, did := w.pick(p)
	tx := e.Begin(p)
	dv, ok, err := tx.Get(kDistrict(wid, did))
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = errors.New("tpcc: district missing")
		}
		return err
	}
	nextOID, nextDeliv, ytd, _ := decDistrict(dv)
	if nextDeliv >= nextOID {
		return tx.Commit() // nothing to deliver
	}
	oid := nextDeliv
	ov, ok, err := tx.Get(kOrder(wid, did, oid))
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = fmt.Errorf("tpcc: undelivered order %d missing", oid)
		}
		return err
	}
	var cid, nLines, delivered, total int
	_, _ = fmt.Sscanf(string(ov), "%d|%d|%d|%d|", &cid, &nLines, &delivered, &total)
	newOrderVal := []byte(fmt.Sprintf("%d|%d|1|%d|%s", cid, nLines, total, filler(w.RowFiller)))
	if err := tx.Put(kOrder(wid, did, oid), newOrderVal); err != nil {
		tx.Abort()
		return err
	}
	cv, ok, err := tx.Get(kCustomer(wid, did, cid))
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = errors.New("tpcc: customer missing")
		}
		return err
	}
	var bal, pays int
	_, _ = fmt.Sscanf(string(cv), "%d|%d|", &bal, &pays)
	if err := tx.Put(kCustomer(wid, did, cid), []byte(fmt.Sprintf("%d|%d|%s", bal+total, pays, filler(w.RowFiller)))); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Put(kDistrict(wid, did), encDistrict(nextOID, nextDeliv+1, ytd, w.RowFiller)); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if j != nil {
		j.Add(kOrder(wid, did, oid), nil) // delivered order must persist
	}
	return nil
}

func (w *TPCC) stockLevel(p *sim.Proc, e *engine.Engine) error {
	r := p.Sim().Rand()
	wid, did := w.pick(p)
	tx := e.Begin(p)
	dv, ok, err := tx.Get(kDistrict(wid, did))
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = errors.New("tpcc: district missing")
		}
		return err
	}
	nextOID, _, _, _ := decDistrict(dv)
	// Inspect the stock touched by up to the last 5 orders.
	for oid := nextOID - 5; oid < nextOID; oid++ {
		if oid < 1 {
			continue
		}
		ov, ok, err := tx.Get(kOrder(wid, did, oid))
		if err != nil {
			tx.Abort()
			return err
		}
		if !ok {
			continue
		}
		var cid, nLines int
		_, _ = fmt.Sscanf(string(ov), "%d|%d|", &cid, &nLines)
		for l := 1; l <= nLines && l <= 5; l++ {
			lv, ok, err := tx.Get(kOrderLine(wid, did, oid, l))
			if err != nil {
				tx.Abort()
				return err
			}
			if !ok {
				continue
			}
			var iid int
			_, _ = fmt.Sscanf(string(lv), "%d|", &iid)
			if _, _, err := tx.Get(kStock(wid, iid)); err != nil {
				tx.Abort()
				return err
			}
		}
	}
	_ = r
	return tx.Commit()
}
