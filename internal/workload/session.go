package workload

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Directory is the client-side cluster map: which engine is the leader,
// in which domain, under which leadership generation. It is plain harness
// memory — the simulated DNS/config service clients consult between
// retries — updated by the cluster's promotion hook and read by every
// session. The per-generation first-success timestamps are the raw
// material of the unavailability-window measurement: the window a client
// actually saw runs from fault injection to the first commit the new
// generation served.
type Directory struct {
	gen     int
	name    string
	eng     *engine.Engine
	dom     *sim.Domain
	firstOK map[int]time.Duration
}

// LeaderInfo is one consistent read of the directory.
type LeaderInfo struct {
	Gen  int
	Name string
	Eng  *engine.Engine
	Dom  *sim.Domain
}

// NewDirectory creates an empty directory; Update installs the first
// leader.
func NewDirectory() *Directory {
	return &Directory{firstOK: make(map[int]time.Duration)}
}

// Update publishes a new leadership generation. Generations must rise.
func (d *Directory) Update(gen int, name string, e *engine.Engine, dom *sim.Domain) {
	if gen <= d.gen && d.gen != 0 {
		return
	}
	d.gen, d.name, d.eng, d.dom = gen, name, e, dom
}

// Leader returns the current leadership record.
func (d *Directory) Leader() LeaderInfo {
	return LeaderInfo{Gen: d.gen, Name: d.name, Eng: d.eng, Dom: d.dom}
}

// FirstSuccess returns when the first session commit of generation gen
// completed (virtual time), if any has.
func (d *Directory) FirstSuccess(gen int) (time.Duration, bool) {
	t, ok := d.firstOK[gen]
	return t, ok
}

func (d *Directory) noteSuccess(gen int, at time.Duration) {
	if _, ok := d.firstOK[gen]; !ok {
		d.firstOK[gen] = at
	}
}

// SessionConfig parameterises a failover-aware client pool.
type SessionConfig struct {
	Clients  int           // default 1
	Duration time.Duration // virtual time; default 10s
	Warmup   time.Duration // excluded from stats; default 0
	// OpTimeout bounds one attempt against the current leader before the
	// session abandons it and re-consults the directory; default 150ms.
	OpTimeout time.Duration
	// MaxAttempts bounds attempts (timeouts, redirects, retries) per
	// operation before it counts as aborted; default 60.
	MaxAttempts int
	// RetryBackoff is the pause between attempts while the cluster has no
	// reachable leader; default 20ms.
	RetryBackoff time.Duration
	// Journal, if non-nil, records acked obligations for the audit.
	Journal *Journal
	// Reg hosts the ha.redirects counter; Trace carries EvRedirect marks.
	Reg   *obs.Registry
	Trace *obs.Tracer
}

func (c *SessionConfig) applyDefaults() {
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 150 * time.Millisecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 60
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
}

// RunSessions drives w through a pool of redirect-aware sessions. Unlike
// RunClients, the clients live outside every crash domain: each operation
// is proxied to a worker process inside the current leader's guest
// domain, and a leader that dies mid-operation just costs the session a
// timeout, after which it re-reads the directory and retries — against
// the new leader once a promotion publishes one. An attempt that times
// out is killed before it can be observed to succeed, so an operation is
// journaled exactly when its client saw the ack.
func RunSessions(p *sim.Proc, dir *Directory, w Workload, cfg SessionConfig) RunResult {
	cfg.applyDefaults()
	s := p.Sim()
	res := RunResult{TxnLatency: metrics.NewHistogram(w.Name() + ".session.txn")}
	redirects := cfg.Reg.Counter("ha.redirects")
	measureStart := s.Now().Add(cfg.Warmup)
	deadline := measureStart.Add(cfg.Duration)
	done := s.NewEvent(w.Name() + ".sessions.done")
	running := cfg.Clients

	for c := 0; c < cfg.Clients; c++ {
		client := c
		sess := &session{dir: dir, w: w, cfg: cfg, client: client, redirects: redirects}
		s.Spawn(nil, fmt.Sprintf("session%d", client), func(cp *sim.Proc) {
			defer func() {
				running--
				if running == 0 {
					done.Fire()
				}
			}()
			for cp.Now() < deadline {
				start := cp.Now()
				err := sess.do(cp)
				measured := start >= measureStart
				if err != nil {
					if measured {
						res.Aborted++
					}
					continue
				}
				if measured {
					res.Committed++
					res.TxnLatency.Observe(cp.Now().Sub(start))
				}
			}
		})
	}
	done.WaitTimeout(p, cfg.Warmup+cfg.Duration+time.Minute)
	end := s.Now()
	if end > deadline {
		end = deadline
	}
	if end > measureStart {
		res.Duration = end.Sub(measureStart)
	}
	return res
}

// session is one client's failover-aware connection state.
type session struct {
	dir       *Directory
	w         Workload
	cfg       SessionConfig
	client    int
	redirects *metrics.Counter
	gen       int // last generation this session talked to
}

// do runs one operation to completion or MaxAttempts.
func (se *session) do(cp *sim.Proc) error {
	s := cp.Sim()
	var lastErr error
	for attempt := 0; attempt < se.cfg.MaxAttempts; attempt++ {
		ld := se.dir.Leader()
		if ld.Eng == nil || ld.Dom == nil || ld.Dom.Dead() {
			// No reachable leader: the unavailability window as a client
			// experiences it. Back off and re-consult the directory.
			lastErr = fmt.Errorf("session: no reachable leader (gen %d)", ld.Gen)
			cp.Sleep(se.cfg.RetryBackoff)
			continue
		}
		if ld.Gen != se.gen {
			if se.gen != 0 {
				se.redirects.Inc()
				tr := se.cfg.Trace
				tr.Emit(cp.Now().Duration(), obs.EvRedirect, 0, 0, tr.Label(ld.Name), int64(attempt))
			}
			se.gen = ld.Gen
		}

		// Proxy the op into the leader's guest domain: if the leader dies
		// mid-op the worker dies with it and the timeout fires; a timed-out
		// worker is killed so it cannot ack after the session gave up on it.
		opDone := s.NewEvent("session.op")
		var opErr error
		worker := s.Spawn(ld.Dom, fmt.Sprintf("session%d.op", se.client), func(wp *sim.Proc) {
			if st, ok := se.w.(*Stress); ok {
				opErr = st.DoAs(wp, ld.Eng, se.cfg.Journal, se.client)
			} else {
				opErr = se.w.Do(wp, ld.Eng, se.cfg.Journal)
			}
			opDone.Fire()
		})
		opDone.WaitTimeout(cp, se.cfg.OpTimeout)
		if !opDone.Fired() {
			worker.Kill()
			lastErr = fmt.Errorf("session: op timeout against %s (gen %d)", ld.Name, ld.Gen)
			cp.Sleep(se.cfg.RetryBackoff)
			continue
		}
		if opErr == nil {
			se.dir.noteSuccess(ld.Gen, cp.Now().Duration())
			return nil
		}
		lastErr = opErr
		if errors.Is(opErr, engine.ErrLockTimeout) || errors.Is(opErr, engine.ErrDeadlock) {
			// Contention, not failure: brief jittered backoff.
			cp.Sleep(time.Duration(100+s.Rand().Intn(900)) * time.Microsecond)
			continue
		}
		// Anything else — the engine died under us, I/O failed — is worth
		// a directory re-read after a backoff.
		cp.Sleep(se.cfg.RetryBackoff)
	}
	return lastErr
}
