package workload

import (
	"errors"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Workload is a benchmark driver: load the schema once, then run
// transactions one at a time per client.
type Workload interface {
	Name() string
	Load(p *sim.Proc, e *engine.Engine) error
	Do(p *sim.Proc, e *engine.Engine, j *Journal) error
}

// RunnerConfig parameterises a client pool run.
type RunnerConfig struct {
	Clients  int           // default 1
	Duration time.Duration // virtual time; default 10s
	Warmup   time.Duration // excluded from stats; default 0
	// Retries bounds lock-timeout retries per transaction; default 3.
	Retries int
	// Journal, if non-nil, records acked obligations for later
	// verification.
	Journal *Journal
}

func (c *RunnerConfig) applyDefaults() {
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
}

// RunResult summarises a client pool run.
type RunResult struct {
	Committed  int64
	Aborted    int64
	Duration   time.Duration
	TxnLatency *metrics.Histogram
}

// TPS returns committed transactions per second of measured time.
func (r RunResult) TPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Duration.Seconds()
}

// RunClients drives w against e with a closed-loop client pool (no think
// time — the paper's saturation-throughput methodology) in the given
// domain. It blocks the calling process until the measurement interval
// ends; client processes stop at the interval edge. If the domain dies
// (crash injection), clients die with it and the partial result stands.
func RunClients(p *sim.Proc, dom *sim.Domain, e *engine.Engine, w Workload, cfg RunnerConfig) RunResult {
	cfg.applyDefaults()
	s := p.Sim()
	res := RunResult{TxnLatency: metrics.NewHistogram(w.Name() + ".txn")}
	measureStart := s.Now().Add(cfg.Warmup)
	deadline := measureStart.Add(cfg.Duration)
	done := s.NewEvent(w.Name() + ".done")
	running := cfg.Clients

	for c := 0; c < cfg.Clients; c++ {
		client := c
		s.Spawn(dom, w.Name()+".client", func(cp *sim.Proc) {
			defer func() {
				running--
				if running == 0 {
					done.Fire()
				}
			}()
			for cp.Now() < deadline {
				start := cp.Now()
				err := doWithRetry(cp, e, w, cfg, client)
				measured := start >= measureStart
				if err != nil {
					if measured {
						res.Aborted++
					}
					continue
				}
				if measured {
					res.Committed++
					res.TxnLatency.Observe(cp.Now().Sub(start))
				}
			}
		})
	}
	// Wait for the clients, but never longer than the deadline plus slack:
	// if the domain was killed, the clients are gone and the event will
	// not fire.
	if !done.Fired() {
		done.WaitTimeout(p, cfg.Warmup+cfg.Duration+time.Second)
	}
	end := s.Now()
	if end > deadline {
		end = deadline
	}
	if end > measureStart {
		res.Duration = end.Sub(measureStart)
	}
	return res
}

func doWithRetry(cp *sim.Proc, e *engine.Engine, w Workload, cfg RunnerConfig, client int) error {
	var err error
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		if st, ok := w.(*Stress); ok {
			err = st.DoAs(cp, e, cfg.Journal, client)
		} else {
			err = w.Do(cp, e, cfg.Journal)
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, engine.ErrLockTimeout) && !errors.Is(err, engine.ErrDeadlock) {
			return err
		}
		// Deadlock victim: back off briefly and retry.
		cp.Sleep(time.Duration(100+cp.Sim().Rand().Intn(900)) * time.Microsecond)
	}
	return err
}
