package workload

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/sim"
)

// TPCB is the pgbench/TPC-B-style workload: each transaction updates one
// account, its teller and branch, and inserts a history row. It is the
// classic "every transaction commits a tiny update" pattern — maximally
// commit-latency-bound, which is where RapiLog shines brightest.
type TPCB struct {
	Branches  int // default 1
	Tellers   int // per branch; default 10
	Accounts  int // per branch; default 1000
	RowFiller int // default 60
	// Owned, when set, restricts this instance to exactly these branch ids
	// (see TPCC.Owned — the same sharded-deployment partitioning).
	Owned []int

	hist uint64
}

// ownedBranches returns the branch ids this instance drives.
func (w *TPCB) ownedBranches() []int {
	if len(w.Owned) > 0 {
		return w.Owned
	}
	ids := make([]int, w.Branches)
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

func (w *TPCB) applyDefaults() {
	if w.Branches == 0 {
		w.Branches = 1
	}
	if w.Tellers == 0 {
		w.Tellers = 10
	}
	if w.Accounts == 0 {
		w.Accounts = 1000
	}
	if w.RowFiller == 0 {
		w.RowFiller = 60
	}
}

// Name implements Workload.
func (w *TPCB) Name() string { return "tpcb" }

func kBranch(b int) string       { return fmt.Sprintf("b:%d", b) }
func kTeller(b, t int) string    { return fmt.Sprintf("t:%d:%d", b, t) }
func kAccount(b, a int) string   { return fmt.Sprintf("a:%d:%d", b, a) }
func kBHistory(id uint64) string { return fmt.Sprintf("bh:%d", id) }

// Load populates branches, tellers and accounts.
func (w *TPCB) Load(p *sim.Proc, e *engine.Engine) error {
	w.applyDefaults()
	for _, b := range w.ownedBranches() {
		tx := e.Begin(p)
		if err := tx.Put(kBranch(b), []byte(fmt.Sprintf("0|%s", filler(w.RowFiller)))); err != nil {
			return err
		}
		for t := 1; t <= w.Tellers; t++ {
			if err := tx.Put(kTeller(b, t), []byte(fmt.Sprintf("0|%s", filler(w.RowFiller)))); err != nil {
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		tx = e.Begin(p)
		for a := 1; a <= w.Accounts; a++ {
			if err := tx.Put(kAccount(b, a), []byte(fmt.Sprintf("0|%s", filler(w.RowFiller)))); err != nil {
				return err
			}
			if a%200 == 0 {
				if err := tx.Commit(); err != nil {
					return err
				}
				tx = e.Begin(p)
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// Do implements Workload: one account-update transaction.
func (w *TPCB) Do(p *sim.Proc, e *engine.Engine, j *Journal) error {
	w.applyDefaults()
	r := p.Sim().Rand()
	b := 1 + r.Intn(w.Branches)
	if len(w.Owned) > 0 {
		b = w.Owned[r.Intn(len(w.Owned))]
	}
	t := 1 + r.Intn(w.Tellers)
	a := 1 + r.Intn(w.Accounts)
	delta := r.Intn(2000) - 1000

	tx := e.Begin(p)
	bump := func(key string) error {
		v, ok, err := tx.Get(key)
		if err != nil {
			return err
		}
		if !ok {
			return errors.New("tpcb: row missing: " + key)
		}
		var bal int
		_, _ = fmt.Sscanf(string(v), "%d|", &bal)
		return tx.Put(key, []byte(fmt.Sprintf("%d|%s", bal+delta, filler(w.RowFiller))))
	}
	for _, key := range []string{kAccount(b, a), kTeller(b, t), kBranch(b)} {
		if err := bump(key); err != nil {
			tx.Abort()
			return err
		}
	}
	w.hist++
	hk := kBHistory(w.hist)
	hv := []byte(fmt.Sprintf("%d|%d|%d|%d|%s", b, t, a, delta, filler(w.RowFiller)))
	if err := tx.Put(hk, hv); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if j != nil {
		j.Add(hk, hv)
	}
	return nil
}

// Stress is the commit-latency microbenchmark: each transaction writes one
// fresh row and commits. It isolates the commit path completely — the
// workload behind the latency-distribution experiment (E7) and buffer
// sweep (E8).
type Stress struct {
	ValueSize int // default 120
	clientSeq map[int]uint64
}

// Name implements Workload.
func (w *Stress) Name() string { return "stress" }

// Load implements Workload (nothing to load).
func (w *Stress) Load(p *sim.Proc, e *engine.Engine) error { return nil }

// DoAs runs one insert-commit for a given client id (keys are
// client-partitioned so stress clients never conflict).
func (w *Stress) DoAs(p *sim.Proc, e *engine.Engine, j *Journal, client int) error {
	if w.ValueSize == 0 {
		w.ValueSize = 120
	}
	if w.clientSeq == nil {
		w.clientSeq = make(map[int]uint64)
	}
	w.clientSeq[client]++
	k := fmt.Sprintf("st:%d:%d", client, w.clientSeq[client])
	v := []byte(filler(w.ValueSize))
	tx := e.Begin(p)
	if err := tx.Put(k, v); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if j != nil {
		j.Add(k, v)
	}
	return nil
}

// Do implements Workload using client 0.
func (w *Stress) Do(p *sim.Proc, e *engine.Engine, j *Journal) error {
	return w.DoAs(p, e, j, 0)
}
