package workload

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/hv"
	"repro/internal/power"
	"repro/internal/sim"
)

func rig(seed int64) (*sim.Sim, *power.Machine, *hv.Native) {
	s := sim.New(seed)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	logd := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 1 << 18})
	datad := disk.NewMem(s, disk.MemConfig{Name: "data", Persistent: true, Capacity: 1 << 19})
	m.AttachDevice(logd)
	m.AttachDevice(datad)
	return s, m, hv.NewNative(m, logd, datad)
}

func TestTPCCLoadAndMix(t *testing.T) {
	s, _, plat := rig(1)
	w := &TPCC{Warehouses: 1, Districts: 2, Customers: 10, Items: 100}
	var committed int
	s.Spawn(plat.Domain(), "t", func(p *sim.Proc) {
		e, err := engine.Open(p, plat, engine.Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := w.Load(p, e); err != nil {
			t.Errorf("load: %v", err)
			return
		}
		j := NewJournal()
		for i := 0; i < 200; i++ {
			if err := w.Do(p, e, j); err != nil {
				t.Errorf("txn %d: %v", i, err)
				return
			}
			committed++
		}
		// Sanity: the mix should have produced new-order and payment
		// obligations.
		if j.Len() == 0 {
			t.Error("no journal obligations from 200 transactions")
		}
		res, err := j.Verify(p, e)
		if err != nil || !res.Ok() {
			t.Errorf("live verify failed: %v %v", res, err)
		}
	})
	if err := s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if committed != 200 {
		t.Fatalf("committed %d/200", committed)
	}
}

func TestTPCCOrderIDsAreDense(t *testing.T) {
	s, _, plat := rig(2)
	w := &TPCC{Warehouses: 1, Districts: 1, Customers: 10, Items: 50}
	s.Spawn(plat.Domain(), "t", func(p *sim.Proc) {
		e, err := engine.Open(p, plat, engine.Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := w.Load(p, e); err != nil {
			t.Errorf("load: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			if err := w.newOrder(p, e, nil); err != nil {
				t.Errorf("new order: %v", err)
				return
			}
		}
		tx := e.Begin(p)
		dv, ok, _ := tx.Get(kDistrict(1, 1))
		if !ok {
			t.Error("district missing")
			return
		}
		nextOID, _, _, _ := decDistrict(dv)
		if nextOID != 31 {
			t.Errorf("nextOID = %d, want 31", nextOID)
		}
		for oid := 1; oid <= 30; oid++ {
			if _, ok, _ := tx.Get(kOrder(1, 1, oid)); !ok {
				t.Errorf("order %d missing", oid)
			}
		}
		_ = tx.Commit()
	})
	if err := s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestTPCCDeliveryConsumesOrders(t *testing.T) {
	s, _, plat := rig(3)
	w := &TPCC{Warehouses: 1, Districts: 1, Customers: 10, Items: 50}
	s.Spawn(plat.Domain(), "t", func(p *sim.Proc) {
		e, err := engine.Open(p, plat, engine.Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		_ = w.Load(p, e)
		for i := 0; i < 5; i++ {
			if err := w.newOrder(p, e, nil); err != nil {
				t.Errorf("new order: %v", err)
			}
		}
		for i := 0; i < 3; i++ {
			if err := w.delivery(p, e, nil); err != nil {
				t.Errorf("delivery: %v", err)
			}
		}
		tx := e.Begin(p)
		dv, _, _ := tx.Get(kDistrict(1, 1))
		_, nextDeliv, _, _ := decDistrict(dv)
		if nextDeliv != 4 {
			t.Errorf("nextDeliv = %d, want 4", nextDeliv)
		}
		ov, ok, _ := tx.Get(kOrder(1, 1, 1))
		if !ok {
			t.Error("order 1 missing")
		} else {
			var cid, nl, delivered int
			_, _ = fmt.Sscanf(string(ov), "%d|%d|%d|", &cid, &nl, &delivered)
			if delivered != 1 {
				t.Error("order 1 not marked delivered")
			}
		}
		_ = tx.Commit()
	})
	if err := s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestTPCBBalancesConserved(t *testing.T) {
	s, _, plat := rig(4)
	w := &TPCB{Branches: 1, Tellers: 2, Accounts: 20}
	s.Spawn(plat.Domain(), "t", func(p *sim.Proc) {
		e, err := engine.Open(p, plat, engine.Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		_ = w.Load(p, e)
		for i := 0; i < 50; i++ {
			if err := w.Do(p, e, nil); err != nil {
				t.Errorf("txn: %v", err)
				return
			}
		}
		// Branch total must equal the sum of account deltas: both got the
		// same per-transaction delta.
		tx := e.Begin(p)
		var branchBal, accountSum int
		bv, _, _ := tx.Get(kBranch(1))
		_, _ = fmt.Sscanf(string(bv), "%d|", &branchBal)
		for a := 1; a <= w.Accounts; a++ {
			av, _, _ := tx.Get(kAccount(1, a))
			var bal int
			_, _ = fmt.Sscanf(string(av), "%d|", &bal)
			accountSum += bal
		}
		_ = tx.Commit()
		if branchBal != accountSum {
			t.Errorf("branch %d != account sum %d", branchBal, accountSum)
		}
	})
	if err := s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestRunClientsProducesThroughput(t *testing.T) {
	s, _, plat := rig(5)
	w := &Stress{}
	var res RunResult
	s.Spawn(nil, "harness", func(p *sim.Proc) {
		var e *engine.Engine
		boot := s.NewEvent("boot")
		s.Spawn(plat.Domain(), "db", func(dp *sim.Proc) {
			var err error
			e, err = engine.Open(dp, plat, engine.Config{NoDaemons: true})
			if err != nil {
				t.Errorf("open: %v", err)
			}
			boot.Fire()
		})
		boot.Wait(p)
		res = RunClients(p, plat.Domain(), e, w, RunnerConfig{Clients: 4, Duration: 2 * time.Second})
	})
	if err := s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if res.TPS() <= 0 {
		t.Fatalf("TPS = %v", res.TPS())
	}
	if res.TxnLatency.Count() != uint64(res.Committed) {
		t.Fatalf("latency samples %d != committed %d", res.TxnLatency.Count(), res.Committed)
	}
}

func TestRunClientsWarmupExcluded(t *testing.T) {
	s, _, plat := rig(6)
	w := &Stress{}
	var warm, cold RunResult
	s.Spawn(nil, "harness", func(p *sim.Proc) {
		boot := s.NewEvent("boot")
		var e *engine.Engine
		s.Spawn(plat.Domain(), "db", func(dp *sim.Proc) {
			var err error
			e, err = engine.Open(dp, plat, engine.Config{NoDaemons: true})
			if err != nil {
				t.Errorf("open: %v", err)
			}
			boot.Fire()
		})
		boot.Wait(p)
		cold = RunClients(p, plat.Domain(), e, w, RunnerConfig{Clients: 2, Duration: time.Second})
		warm = RunClients(p, plat.Domain(), e, w, RunnerConfig{Clients: 2, Duration: time.Second, Warmup: 500 * time.Millisecond})
	})
	if err := s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if warm.Duration != time.Second || cold.Duration != time.Second {
		t.Fatalf("durations: %v %v", warm.Duration, cold.Duration)
	}
	if warm.Committed == 0 {
		t.Fatal("no committed txns with warmup")
	}
}

func TestJournalVerifyDetectsLoss(t *testing.T) {
	s, _, plat := rig(7)
	s.Spawn(plat.Domain(), "t", func(p *sim.Proc) {
		e, err := engine.Open(p, plat, engine.Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		j := NewJournal()
		tx := e.Begin(p)
		_ = tx.Put("present", []byte("v"))
		_ = tx.Commit()
		j.Add("present", []byte("v"))
		j.Add("never-written", nil)         // fabricated: must show missing
		j.Add("present", []byte("other-v")) // fabricated: must show mismatch
		res, err := j.Verify(p, e)
		if err != nil {
			t.Errorf("verify: %v", err)
			return
		}
		if res.Missing != 1 || res.Mismatched != 1 || res.Checked != 3 {
			t.Errorf("verify result: %+v", res)
		}
		if res.Ok() {
			t.Error("Ok() true despite violations")
		}
	})
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadNames(t *testing.T) {
	if (&TPCC{}).Name() != "tpcc" || (&TPCB{}).Name() != "tpcb" || (&Stress{}).Name() != "stress" {
		t.Fatal("workload names wrong")
	}
}
