// Package workload provides the benchmark drivers used in the evaluation:
// a TPC-C-derived OLTP mix, a TPC-B/pgbench-style account-update workload,
// and a commit-stress microbenchmark, plus the client runner and the
// acked-commit journal the durability experiments check against.
//
// The journal is the heart of the fault-injection methodology: it lives in
// the harness (outside every simulated crash domain), so it plays the role
// of the paper's external client — whatever the database acknowledged
// before a crash must still be there afterwards.
package workload

import (
	"bytes"
	"fmt"

	"repro/internal/engine"
	"repro/internal/sim"
)

// JournalEntry is one durability obligation: key must exist after recovery,
// and, when Want is non-nil, hold exactly that value.
type JournalEntry struct {
	Key  string
	Want []byte // nil: existence is enough (multi-writer keys)
}

// Journal records the durable obligations of acknowledged transactions. It
// is plain harness memory: simulated crashes cannot touch it.
type Journal struct {
	entries []JournalEntry
}

// NewJournal creates an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Add records an obligation. Call it only after Commit returned nil.
func (j *Journal) Add(key string, want []byte) {
	j.entries = append(j.entries, JournalEntry{Key: key, Want: want})
}

// Len returns the number of obligations recorded.
func (j *Journal) Len() int { return len(j.entries) }

// VerifyResult summarises a post-recovery durability check.
type VerifyResult struct {
	Checked    int
	Missing    int // acked keys absent after recovery: durability violations
	Mismatched int // acked keys with wrong contents: corruption
	FirstBad   string
}

// Ok reports whether every obligation held.
func (r VerifyResult) Ok() bool { return r.Missing == 0 && r.Mismatched == 0 }

func (r VerifyResult) String() string {
	if r.Ok() {
		return fmt.Sprintf("journal verify: %d acked transactions, all durable", r.Checked)
	}
	return fmt.Sprintf("journal verify: %d checked, %d MISSING, %d MISMATCHED (first: %s)",
		r.Checked, r.Missing, r.Mismatched, r.FirstBad)
}

// Verify checks every journaled obligation against a freshly recovered
// engine.
func (j *Journal) Verify(p *sim.Proc, e *engine.Engine) (VerifyResult, error) {
	return j.VerifyFirst(p, e, len(j.entries))
}

// VerifyFirst checks only the first n obligations — those recorded before
// a known instant (e.g. fault injection). Acks that raced the fault are
// not obligations.
func (j *Journal) VerifyFirst(p *sim.Proc, e *engine.Engine, n int) (VerifyResult, error) {
	if n > len(j.entries) {
		n = len(j.entries)
	}
	var res VerifyResult
	tx := e.Begin(p)
	defer tx.Abort()
	for _, ent := range j.entries[:n] {
		res.Checked++
		v, ok, err := tx.Get(ent.Key)
		if err != nil {
			return res, fmt.Errorf("journal verify: reading %q: %v", ent.Key, err)
		}
		if !ok {
			res.Missing++
			if res.FirstBad == "" {
				res.FirstBad = "missing " + ent.Key
			}
			continue
		}
		if ent.Want != nil && !bytes.Equal(v, ent.Want) {
			res.Mismatched++
			if res.FirstBad == "" {
				res.FirstBad = "mismatch " + ent.Key
			}
		}
	}
	return res, nil
}

// EntryAt returns the i-th obligation (diagnostics).
func (j *Journal) EntryAt(i int) JournalEntry { return j.entries[i] }
