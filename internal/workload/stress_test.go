package workload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sim"
)

func TestStressUniqueKeysPerClient(t *testing.T) {
	s, _, plat := rig(10)
	w := &Stress{}
	s.Spawn(plat.Domain(), "t", func(p *sim.Proc) {
		e, err := engine.Open(p, plat, engine.Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := w.Load(p, e); err != nil {
			t.Errorf("load: %v", err)
		}
		j := NewJournal()
		// Default Do (client 0) plus explicit clients must not collide.
		for i := 0; i < 5; i++ {
			if err := w.Do(p, e, j); err != nil {
				t.Errorf("do: %v", err)
			}
			if err := w.DoAs(p, e, j, 1); err != nil {
				t.Errorf("doAs: %v", err)
			}
		}
		if j.Len() != 10 {
			t.Errorf("journal len %d", j.Len())
		}
		seen := map[string]bool{}
		for i := 0; i < j.Len(); i++ {
			k := j.EntryAt(i).Key
			if seen[k] {
				t.Errorf("duplicate stress key %s", k)
			}
			seen[k] = true
		}
		res, err := j.Verify(p, e)
		if err != nil || !res.Ok() {
			t.Errorf("verify: %v %v", res, err)
		}
	})
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyResultString(t *testing.T) {
	ok := VerifyResult{Checked: 5}
	if !strings.Contains(ok.String(), "all durable") {
		t.Fatalf("ok string: %q", ok.String())
	}
	bad := VerifyResult{Checked: 5, Missing: 2, FirstBad: "missing k"}
	if !strings.Contains(bad.String(), "MISSING") || !strings.Contains(bad.String(), "missing k") {
		t.Fatalf("bad string: %q", bad.String())
	}
}

func TestRunnerPropagatesFatalErrors(t *testing.T) {
	// A non-retryable error (value too large for any page) must surface as
	// an abort, not loop forever.
	s, _, plat := rig(11)
	var res RunResult
	s.Spawn(nil, "harness", func(p *sim.Proc) {
		boot := s.NewEvent("boot")
		var e *engine.Engine
		s.Spawn(plat.Domain(), "db", func(dp *sim.Proc) {
			var err error
			e, err = engine.Open(dp, plat, engine.Config{NoDaemons: true})
			if err != nil {
				t.Errorf("open: %v", err)
			}
			boot.Fire()
		})
		boot.Wait(p)
		w := &Stress{ValueSize: 1 << 20} // can never fit a page
		res = RunClients(p, plat.Domain(), e, w, RunnerConfig{Clients: 1, Duration: 50 * time.Millisecond})
	})
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.Committed != 0 {
		t.Fatalf("committed %d with impossible rows", res.Committed)
	}
	if res.Aborted == 0 {
		t.Fatal("fatal errors not counted as aborts")
	}
}

func TestTPSZeroDuration(t *testing.T) {
	if (RunResult{Committed: 10}).TPS() != 0 {
		t.Fatal("TPS with zero duration")
	}
}
