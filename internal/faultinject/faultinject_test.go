package faultinject

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/rig"
	"repro/internal/workload"
)

func powerATX() power.PSUConfig { return power.PSUATXSpec }

func quickCampaign(mode rig.Mode, fault Fault, trials int) CampaignConfig {
	return CampaignConfig{
		Rig:            rig.Config{Seed: 42, Mode: mode},
		Fault:          fault,
		Trials:         trials,
		Clients:        2,
		InjectAfterMin: 100 * time.Millisecond,
		InjectAfterMax: 600 * time.Millisecond,
		NewWorkload: func() workload.Workload {
			return &workload.TPCC{Warehouses: 1, Districts: 2, Customers: 10, Items: 100}
		},
	}
}

func TestRapiLogSurvivesGuestCrashes(t *testing.T) {
	sum := RunCampaign(quickCampaign(rig.RapiLog, GuestCrash, 3))
	if sum.Errors > 0 {
		t.Fatalf("campaign errors: %+v", sum.Trials)
	}
	if sum.TotalAcked == 0 {
		t.Fatal("no transactions acked before faults")
	}
	if sum.Violations != 0 || sum.TotalLost != 0 {
		t.Fatalf("RapiLog lost acked commits on guest crash: %s", sum)
	}
}

func TestRapiLogSurvivesPowerCuts(t *testing.T) {
	sum := RunCampaign(quickCampaign(rig.RapiLog, PowerCut, 3))
	if sum.Errors > 0 {
		t.Fatalf("campaign errors: %+v", sum.Trials)
	}
	if sum.TotalAcked == 0 {
		t.Fatal("no transactions acked before faults")
	}
	if sum.Violations != 0 {
		t.Fatalf("RapiLog lost acked commits on power cut: %s", sum)
	}
}

func TestShardedCampaignSurvivesPowerCuts(t *testing.T) {
	cfg := quickCampaign(rig.RapiLogSharded, PowerCut, 3)
	cfg.Shards = 2
	sum := RunCampaign(cfg)
	if sum.Errors > 0 {
		t.Fatalf("campaign errors: %+v", sum.Trials)
	}
	if sum.TotalAcked == 0 {
		t.Fatal("no transactions acked before faults")
	}
	if sum.Violations != 0 || sum.TotalLost != 0 {
		t.Fatalf("sharded RapiLog lost acked commits on power cut: %s", sum)
	}
}

func TestShardedCampaignRejectsNonPowerFaults(t *testing.T) {
	cfg := quickCampaign(rig.RapiLogSharded, GuestCrash, 1)
	cfg.Shards = 4
	if res := RunTrial(cfg, 1); res.Err == nil {
		t.Fatal("sharded guest-crash trial ran; want config error")
	}
	cfg.Fault = PowerCut
	cfg.Shards = -2
	if res := RunTrial(cfg, 1); res.Err == nil {
		t.Fatal("negative shard count accepted")
	}
}

func TestShardedTrialDeterminism(t *testing.T) {
	cfg := quickCampaign(rig.RapiLogSharded, PowerCut, 1)
	cfg.Shards = 2
	a := RunTrial(cfg, 99)
	b := RunTrial(cfg, 99)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("trial errors: %v / %v", a.Err, b.Err)
	}
	if a.Acked != b.Acked || a.Missing != b.Missing || a.HadDump != b.HadDump {
		t.Fatalf("sharded trials with one seed diverged: %+v vs %+v", a, b)
	}
}

func TestNativeSyncSurvivesPowerCuts(t *testing.T) {
	sum := RunCampaign(quickCampaign(rig.NativeSync, PowerCut, 2))
	if sum.Errors > 0 {
		t.Fatalf("campaign errors: %+v", sum.Trials)
	}
	if sum.Violations != 0 {
		t.Fatalf("native-sync lost acked commits: %s", sum)
	}
}

func TestNativeAsyncLosesCommitsOnCrash(t *testing.T) {
	cfg := quickCampaign(rig.NativeAsync, GuestCrash, 3)
	// Stress maximises the unsafe window: every txn is an immediate ack.
	cfg.NewWorkload = func() workload.Workload { return &workload.Stress{} }
	sum := RunCampaign(cfg)
	if sum.Errors > 0 {
		t.Fatalf("campaign errors: %+v", sum.Trials)
	}
	if sum.TotalLost == 0 {
		t.Fatalf("native-async lost nothing across %d crashes: %s", len(sum.Trials), sum)
	}
}

// slowDiskUnsafeCampaign builds the A3 regime: a slow drive whose drain
// loses the race against a commit-heavy workload, so the buffer genuinely
// fills to an unsafe bound before the plug is pulled.
func slowDiskUnsafeCampaign(trials int) CampaignConfig {
	cfg := quickCampaign(rig.RapiLog, PowerCut, trials)
	cfg.Rig.PSU = power.PSUMeasured
	cfg.Rig.HDD = disk.HDDConfig{RPM: 3600, SectorsPerTrack: 250}
	cfg.Rig.RapiLog = core.Config{MaxBuffer: 8 << 20, Unsafe: true}
	cfg.NewWorkload = func() workload.Workload { return &workload.Stress{ValueSize: 6000} }
	cfg.Clients = 16
	cfg.InjectAfterMin = 1500 * time.Millisecond
	cfg.InjectAfterMax = 2500 * time.Millisecond
	return cfg
}

func TestUnsafeOversizedBufferLosesData(t *testing.T) {
	// Ablation A3: break the sizing rule and the emergency dump either
	// tears mid-write or never lands — either way, acked commits die.
	sum := RunCampaign(slowDiskUnsafeCampaign(3))
	if sum.Errors > 0 {
		t.Fatalf("campaign errors: %+v", sum.Trials)
	}
	if sum.TotalLost == 0 {
		t.Fatalf("oversized unsafe buffer lost nothing: %s", sum)
	}
	torn := false
	for _, tr := range sum.Trials {
		if tr.Missing > 0 && tr.HadDump && !tr.Torn {
			t.Fatalf("trial %d lost commits despite a complete dump: %+v", tr.Seed, tr)
		}
		if tr.Torn {
			torn = true
		}
	}
	if !torn {
		t.Log("note: no torn dump observed (losses came from dumps that never landed)")
	}
}

func TestSafeBoundSurvivesSlowDisk(t *testing.T) {
	// Same hostile regime, but with the safe bound: the buffer throttles
	// at a dumpable size and nothing is lost.
	cfg := slowDiskUnsafeCampaign(2)
	cfg.Rig.RapiLog = core.Config{} // SafeBufferSize
	sum := RunCampaign(cfg)
	if sum.Errors > 0 {
		t.Fatalf("campaign errors: %+v", sum.Trials)
	}
	if sum.Violations != 0 {
		t.Fatalf("safe bound lost commits on the slow disk: %s", sum)
	}
}

func TestTrialDeterminism(t *testing.T) {
	cfg := quickCampaign(rig.RapiLog, PowerCut, 1)
	a := RunTrial(cfg, 123)
	b := RunTrial(cfg, 123)
	if a.Acked != b.Acked || a.Missing != b.Missing || a.Torn != b.Torn {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Err != nil {
		t.Fatalf("trial error: %v", a.Err)
	}
}

func TestSummaryString(t *testing.T) {
	sum := RunCampaign(quickCampaign(rig.RapiLog, GuestCrash, 1))
	if sum.String() == "" {
		t.Fatal("empty summary")
	}
}

// TestSummaryCountsLossIndependentlyOfError: a trial that both errors out
// and loses data must show up in Violations AND Errors — the old code hid
// the loss behind the error flag.
func TestSummaryCountsLossIndependentlyOfError(t *testing.T) {
	var sum Summary
	sum.add(TrialResult{Acked: 10, Missing: 3, Err: fmt.Errorf("audit: boom")})
	sum.add(TrialResult{Acked: 5, Mismatched: 1})
	sum.add(TrialResult{Acked: 7})
	if sum.Violations != 2 {
		t.Fatalf("violations = %d, want 2 (loss must count even when the trial errored)", sum.Violations)
	}
	if sum.Errors != 1 {
		t.Fatalf("errors = %d, want 1", sum.Errors)
	}
	if sum.TotalLost != 3 {
		t.Fatalf("total lost = %d, want 3", sum.TotalLost)
	}
}

// TestNegativeInjectSpanIsConfigError: InjectAfterMax < InjectAfterMin used
// to reach rand.Int63n with a negative argument and panic mid-campaign. It
// must now surface as a plain config error from both entry points.
func TestNegativeInjectSpanIsConfigError(t *testing.T) {
	cfg := quickCampaign(rig.RapiLog, PowerCut, 1)
	cfg.InjectAfterMin = 2 * time.Second
	cfg.InjectAfterMax = 500 * time.Millisecond
	res := RunTrial(cfg, 1)
	if res.Err == nil {
		t.Fatal("RunTrial accepted a negative inject span")
	}
	sum := RunCampaign(cfg)
	if sum.Errors != 1 || len(sum.Trials) != 1 || sum.Trials[0].Err == nil {
		t.Fatalf("RunCampaign on a negative span: %+v", sum)
	}
}

// TestNegativeWindowsAreConfigErrors: applyDefaults only replaces zero
// values, so an explicitly negative window used to sail through validation
// and silently collapse to a zero-length Sleep — a campaign that "passes"
// without its fault ever being active. Negative windows (and a negative
// InjectAfterMin) must surface as config errors.
func TestNegativeWindowsAreConfigErrors(t *testing.T) {
	neg := quickCampaign(rig.RapiLog, DiskError, 1)
	neg.FaultWindow = -300 * time.Millisecond
	if res := RunTrial(neg, 1); res.Err == nil {
		t.Fatal("RunTrial accepted a negative FaultWindow")
	}
	sum := RunCampaign(neg)
	if sum.Errors != 1 || len(sum.Trials) != 1 || sum.Trials[0].Err == nil {
		t.Fatalf("RunCampaign on a negative FaultWindow: %+v", sum)
	}

	part := quickCampaign(rig.RapiLogReplica, Partition, 1)
	part.PartitionWindow = -time.Second
	if res := RunTrial(part, 1); res.Err == nil {
		t.Fatal("RunTrial accepted a negative PartitionWindow")
	}

	early := quickCampaign(rig.RapiLog, PowerCut, 1)
	early.InjectAfterMin = -time.Second
	if res := RunTrial(early, 1); res.Err == nil {
		t.Fatal("RunTrial accepted a negative InjectAfterMin")
	}
}

// TestZeroLengthInjectWindowRuns: InjectAfterMin == InjectAfterMax is a
// legitimate pinned injection instant, and the span-zero path must skip
// the jitter draw rather than hand rand.Int63n a zero argument (which
// panics). A whole campaign at a pinned instant must complete cleanly.
func TestZeroLengthInjectWindowRuns(t *testing.T) {
	cfg := quickCampaign(rig.RapiLog, PowerCut, 2)
	cfg.InjectAfterMin = 400 * time.Millisecond
	cfg.InjectAfterMax = 400 * time.Millisecond
	sum := RunCampaign(cfg)
	if sum.Errors > 0 {
		t.Fatalf("zero-length inject window errored: %+v", sum.Trials)
	}
	if sum.TotalAcked == 0 {
		t.Fatal("no transactions acked before the pinned-instant fault")
	}
	if sum.Violations != 0 {
		t.Fatalf("violations at a pinned injection instant: %s", sum)
	}
}

// TestUnknownFaultIsConfigError guards the fault-kind whitelist.
func TestUnknownFaultIsConfigError(t *testing.T) {
	cfg := quickCampaign(rig.RapiLog, Fault("meteor-strike"), 1)
	if res := RunTrial(cfg, 1); res.Err == nil {
		t.Fatal("RunTrial accepted an unknown fault kind")
	}
}

// TestRapiLogSurvivesTransientDiskErrors: acked ⊆ durable holds across a
// window of transient log-media write errors, and the backlog fully drains
// once the window closes — no stranded bytes, no lingering degraded mode.
func TestRapiLogSurvivesTransientDiskErrors(t *testing.T) {
	sum := RunCampaign(quickCampaign(rig.RapiLog, DiskError, 3))
	if sum.Violations != 0 || sum.Errors != 0 {
		t.Fatalf("campaign: %v (first error: %v)", sum, firstTrialErr(sum))
	}
	if sum.TotalAcked == 0 {
		t.Fatal("no transactions acked; campaign proves nothing")
	}
	for _, res := range sum.Trials {
		if res.BufferedAfter != 0 {
			t.Fatalf("seed %d: %d bytes still stranded after the fault cleared", res.Seed, res.BufferedAfter)
		}
		if res.Degraded {
			t.Fatalf("seed %d: still degraded after a transient window", res.Seed)
		}
	}
}

// TestRapiLogDegradesOnPermanentFaultWithoutLoss: a grown bad-sector range
// over the whole log partition forces pass-through; every previously acked
// commit must still be recoverable (the stranded buffer survives the guest
// crash — the hypervisor's copy is what the audit reads back).
func TestRapiLogDegradesOnPermanentFaultWithoutLoss(t *testing.T) {
	cfg := quickCampaign(rig.RapiLog, DiskError, 1)
	cfg.PermanentFault = true
	sum := RunCampaign(cfg)
	if sum.Violations != 0 || sum.Errors != 0 {
		t.Fatalf("campaign: %v (first error: %v)", sum, firstTrialErr(sum))
	}
	if sum.DegradedTrials != 1 {
		t.Fatalf("degraded trials = %d, want 1 (permanent fault never degraded the logger?)", sum.DegradedTrials)
	}
}

// TestRapiLogSurvivesLatencyStorm: a storm delays everything but fails
// nothing; durability and drain-to-zero must hold exactly as in the calm.
func TestRapiLogSurvivesLatencyStorm(t *testing.T) {
	sum := RunCampaign(quickCampaign(rig.RapiLog, LatencyStorm, 2))
	if sum.Violations != 0 || sum.Errors != 0 {
		t.Fatalf("campaign: %v (first error: %v)", sum, firstTrialErr(sum))
	}
}

// TestMediaFaultTrialDeterminism: same seed, same outcome — the fault layer
// draws from its own seeded stream.
func TestMediaFaultTrialDeterminism(t *testing.T) {
	cfg := quickCampaign(rig.RapiLog, DiskError, 1)
	a := RunTrial(cfg, 99)
	b := RunTrial(cfg, 99)
	if a.Acked != b.Acked || a.Missing != b.Missing || a.Degraded != b.Degraded || a.BufferedAfter != b.BufferedAfter {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func firstTrialErr(sum Summary) error {
	for _, res := range sum.Trials {
		if res.Err != nil {
			return res.Err
		}
	}
	return nil
}
