package faultinject

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/rig"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FailoverFault is the kind of failure a failover trial injects into a
// running HA cluster.
type FailoverFault string

// Failover fault kinds.
const (
	// LeaderPowerCut pulls the leader machine's plug: heartbeat agent,
	// shipper and guest all die at once.
	LeaderPowerCut FailoverFault = "leader-power-cut"
	// LeaderIsolation partitions a healthy leader from the fabric: it keeps
	// running — and keeps trying to commit — but its acks and heartbeats go
	// nowhere. The classic split-brain setup.
	LeaderIsolation FailoverFault = "leader-isolation"
	// CoordAndLeader composes a coordinator crash with a leader power cut:
	// nobody is watching when the leader dies, and the takeover must happen
	// after the coordinator itself restarts.
	CoordAndLeader FailoverFault = "coordinator+leader"
)

// FailoverConfig parameterises a failover campaign: repeated leader-loss
// trials against a full HA cluster, each auditing zero acked-quorum loss
// and zero split-brain.
type FailoverConfig struct {
	// Cluster is the per-trial deployment template (the trial overrides the
	// seed). NewCluster forces a remote ack policy and tracing.
	Cluster rig.ClusterConfig
	Fault   FailoverFault
	Trials  int // default 20
	Clients int // default 4
	// ValueSize is the stress payload per op; default 1000. It scales the
	// promotion replay (and so the takeover's redo time).
	ValueSize int
	// InjectAfterMin/Max bound the virtual time between session start and
	// leader loss; sampled per trial. Defaults 500ms..1.5s.
	InjectAfterMin time.Duration
	InjectAfterMax time.Duration
	// SessionFor is how long the session pool runs; it must outlast the
	// takeover (which is dominated by WAL redo on the promoted node).
	// Default 60s.
	SessionFor time.Duration
	// CoordOutage is how long the coordinator stays down after the leader
	// dies in the composed fault; default 500ms.
	CoordOutage time.Duration
	// Parallel is how many trials run concurrently; same determinism
	// contract as CampaignConfig.Parallel.
	Parallel int
}

func (c *FailoverConfig) applyDefaults() {
	if c.Trials == 0 {
		c.Trials = 20
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1000
	}
	if c.InjectAfterMin == 0 {
		c.InjectAfterMin = 500 * time.Millisecond
	}
	if c.InjectAfterMax == 0 {
		c.InjectAfterMax = 1500 * time.Millisecond
	}
	if c.SessionFor == 0 {
		c.SessionFor = 60 * time.Second
	}
	if c.CoordOutage == 0 {
		c.CoordOutage = 500 * time.Millisecond
	}
}

func (c *FailoverConfig) validate() error {
	switch c.Fault {
	case LeaderPowerCut, LeaderIsolation, CoordAndLeader:
	default:
		return fmt.Errorf("faultinject: unknown failover fault %q", c.Fault)
	}
	if c.InjectAfterMin < 0 || c.InjectAfterMax < c.InjectAfterMin {
		return fmt.Errorf("faultinject: bad inject window [%v, %v]", c.InjectAfterMin, c.InjectAfterMax)
	}
	if c.SessionFor <= c.InjectAfterMax {
		return fmt.Errorf("faultinject: SessionFor %v inside the inject window", c.SessionFor)
	}
	return nil
}

// FailoverTrial is one leader-loss trial's outcome.
type FailoverTrial struct {
	Seed  int64
	Acked int // ops acked before injection
	// Missing/Mismatched audit every acked op — before or after the
	// takeover — against the final leader's engine.
	Missing    int
	Mismatched int
	// Failovers is how many takeovers the coordinator completed; exactly
	// one is clean.
	Failovers int
	// Unavailable is the client-visible outage: first committed op of
	// generation 2 minus the injection instant. Zero means no session ever
	// committed against the promoted leader.
	Unavailable time.Duration
	// SplitBrain counts single_writer_epoch monitor violations: >0 means
	// two shippers were acked inside one epoch.
	SplitBrain int
	// Redirects and FenceRejections are the trial's ha.* counter readings.
	Redirects         int64
	FenceRejections   int64
	ReplayBytes       int64
	ReplayEntries     int
	MonitorViolations int
	Artifacts         *Artifacts
	Err               error
}

// Ok reports whether the trial was a clean takeover: no loss, no
// corruption, no split-brain, exactly one failover, and the cluster came
// back for the clients.
func (t FailoverTrial) Ok() bool {
	return t.Err == nil && t.Missing == 0 && t.Mismatched == 0 &&
		t.SplitBrain == 0 && t.Failovers == 1 && t.Unavailable > 0
}

// FailoverSummary aggregates a failover campaign.
type FailoverSummary struct {
	Config      FailoverConfig
	Trials      []FailoverTrial
	TotalAcked  int
	TotalLost   int
	Violations  int // trials with loss or corruption
	SplitBrains int // trials where the single-writer invariant fired
	Incomplete  int // trials with != 1 failover or no post-takeover commit
	Errors      int
	// Artifacts pins the first bad trial's forensic capture (or the last
	// clean one's), like Summary.
	Artifacts    *Artifacts
	artifactsBad bool
}

func (s *FailoverSummary) add(res FailoverTrial) {
	if res.Artifacts != nil {
		if !s.artifactsBad {
			s.Artifacts = res.Artifacts
			if !res.Ok() {
				s.artifactsBad = true
			}
		}
		res.Artifacts = nil
	}
	s.Trials = append(s.Trials, res)
	s.TotalAcked += res.Acked
	s.TotalLost += res.Missing
	if res.Missing > 0 || res.Mismatched > 0 {
		s.Violations++
	}
	if res.SplitBrain > 0 {
		s.SplitBrains++
	}
	if res.Failovers != 1 || res.Unavailable == 0 {
		s.Incomplete++
	}
	if res.Err != nil {
		s.Errors++
	}
}

// UnavailPercentile returns the q-quantile (0..1) of the per-trial
// unavailability windows, over trials that completed a takeover.
func (s FailoverSummary) UnavailPercentile(q float64) time.Duration {
	var ds []time.Duration
	for _, t := range s.Trials {
		if t.Unavailable > 0 {
			ds = append(ds, t.Unavailable)
		}
	}
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(q * float64(len(ds)-1))
	return ds[idx]
}

func (s FailoverSummary) String() string {
	return fmt.Sprintf("failover/%s: %d trials, %d acked, %d lost, %d violating, %d split-brain, %d incomplete, %d errors, unavailability p50 %v p99 %v",
		s.Config.Fault, len(s.Trials), s.TotalAcked, s.TotalLost, s.Violations,
		s.SplitBrains, s.Incomplete, s.Errors,
		s.UnavailPercentile(0.50).Round(time.Millisecond),
		s.UnavailPercentile(0.99).Round(time.Millisecond))
}

// RunFailoverCampaign executes cfg.Trials independent failover trials with
// seeds base+i·7919, up to cfg.Parallel at a time; the same determinism
// contract as RunCampaign (each trial is one sealed simulation, results
// fold in seed order).
func RunFailoverCampaign(cfg FailoverConfig) FailoverSummary {
	cfg.applyDefaults()
	sum := FailoverSummary{Config: cfg}
	if err := cfg.validate(); err != nil {
		sum.Trials = append(sum.Trials, FailoverTrial{Err: err})
		sum.Errors = 1
		return sum
	}
	par := cfg.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > cfg.Trials {
		par = cfg.Trials
	}
	results := make([]FailoverTrial, cfg.Trials)
	if par <= 1 {
		for i := 0; i < cfg.Trials; i++ {
			results[i] = RunFailoverTrial(cfg, cfg.Cluster.Rig.Seed+int64(i)*7919)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = RunFailoverTrial(cfg, cfg.Cluster.Rig.Seed+int64(i)*7919)
				}
			}()
		}
		for i := 0; i < cfg.Trials; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i := range results {
		if results[i].Artifacts != nil {
			results[i].Artifacts.Trial = i
		}
		sum.add(results[i])
	}
	return sum
}

// RunFailoverTrial executes one load→leader-loss→takeover→audit cycle in a
// fresh simulation with the given seed.
func RunFailoverTrial(cfg FailoverConfig, seed int64) FailoverTrial {
	cfg.applyDefaults()
	res := FailoverTrial{Seed: seed}
	if err := cfg.validate(); err != nil {
		res.Err = err
		return res
	}

	ccfg := cfg.Cluster
	ccfg.Rig.Seed = seed
	c, err := rig.NewCluster(ccfg)
	if err != nil {
		res.Err = err
		return res
	}
	s := c.S
	dir := workload.NewDirectory()
	c.OnPromote = func(gen int, name string, e *engine.Engine, dom *sim.Domain) {
		dir.Update(gen, name, e, dom)
	}
	j := workload.NewJournal()
	w := &workload.Stress{ValueSize: cfg.ValueSize}
	exLeader := c.LeaderName()

	audited := s.NewEvent("failover.audited")
	var injectAt time.Duration

	// Life 1: boot the initial leader and publish it to the directory.
	s.Spawn(c.LeaderRig().Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := c.LeaderRig().Boot(p)
		if err != nil {
			res.Err = fmt.Errorf("boot: %w", err)
			return
		}
		dir.Update(1, c.LeaderName(), e, c.LeaderRig().Plat.Domain())
	})

	// Sessions: redirect-aware clients that ride through the takeover, then
	// the audit — every journaled ack (either generation) must be present
	// and correct on whoever leads at the end.
	s.Spawn(nil, "sessions", func(p *sim.Proc) {
		defer audited.Fire()
		workload.RunSessions(p, dir, w, workload.SessionConfig{
			Clients:  cfg.Clients,
			Duration: cfg.SessionFor,
			Journal:  j,
			Reg:      c.Obs.Registry(),
			Trace:    c.Obs.Tracer(),
		})
		ld := dir.Leader()
		if ld.Eng == nil || ld.Dom == nil || ld.Dom.Dead() {
			res.Err = fmt.Errorf("no live leader at audit time (gen %d)", ld.Gen)
			return
		}
		vdone := s.NewEvent("failover.verify")
		s.Spawn(ld.Dom, "audit", func(vp *sim.Proc) {
			defer vdone.Fire()
			vr, err := j.Verify(vp, ld.Eng)
			if err != nil {
				res.Err = fmt.Errorf("audit: %w", err)
				return
			}
			res.Missing = vr.Missing
			res.Mismatched = vr.Mismatched
		})
		vdone.Wait(p)
	})

	// Operator: inject at a sampled instant, wait for the takeover, rejoin
	// the deposed node.
	s.Spawn(nil, "operator", func(p *sim.Proc) {
		span := cfg.InjectAfterMax - cfg.InjectAfterMin
		delay := cfg.InjectAfterMin
		if span > 0 {
			delay += time.Duration(s.Rand().Int63n(int64(span)))
		}
		p.Sleep(delay)
		res.Acked = j.Len()
		injectAt = p.Now().Duration()
		switch cfg.Fault {
		case LeaderPowerCut:
			c.CutLeaderPower()
		case LeaderIsolation:
			c.IsolateLeader()
		case CoordAndLeader:
			// Nobody is watching when the plug is pulled: detection starts
			// only once the coordinator itself comes back.
			c.Coord.Crash()
			c.CutLeaderPower()
			p.Sleep(cfg.CoordOutage)
			c.Coord.Restart()
		}
		deadline := p.Now().Add(2 * time.Minute)
		for c.Coord.Failovers() == 0 && p.Now() < deadline {
			p.Sleep(20 * time.Millisecond)
		}
		if c.Coord.Failovers() == 0 {
			if err := c.Coord.LastErr(); err != nil {
				res.Err = fmt.Errorf("takeover never completed: %w", err)
			} else {
				res.Err = fmt.Errorf("takeover never completed")
			}
			return
		}
		if cfg.Fault == LeaderIsolation {
			// Heal only after the fence is up: the deposed shipper's
			// retransmits must land on fenced stores.
			p.Sleep(100 * time.Millisecond)
			c.HealNode(exLeader)
			// Let the deposed shipper retransmit its stale epoch into the
			// fenced cluster before demoting it — the rejected stream is the
			// split-brain near-miss the audit wants on record.
			p.Sleep(200 * time.Millisecond)
		}
		if err := c.RejoinAsStandby(p, exLeader); err != nil && res.Err == nil {
			res.Err = fmt.Errorf("rejoin: %w", err)
		}
	})

	runErr := s.RunFor(10 * time.Minute)

	res.Failovers = c.Coord.Failovers()
	if first, ok := dir.FirstSuccess(2); ok && first > injectAt {
		res.Unavailable = first - injectAt
		c.Obs.Registry().Histogram("ha.unavailability").Observe(res.Unavailable)
	}
	res.Redirects = c.Obs.Registry().Counter("ha.redirects").Value()
	res.FenceRejections = c.Obs.Registry().Counter("ha.fence_rejections").Value()
	res.ReplayBytes = c.LastReplay.Bytes
	res.ReplayEntries = c.LastReplay.Entries
	if c.Monitor != nil {
		res.MonitorViolations = c.Monitor.Total()
		res.SplitBrain = c.Monitor.Report().ByKind["single_writer_epoch"]
	}
	if c.Obs.Tracer().Enabled() {
		dump := c.Obs.Tracer().Dump()
		snap := c.Obs.Registry().Snapshot()
		res.Artifacts = &Artifacts{Seed: seed, Trace: &dump, Metrics: &snap}
		if c.Monitor != nil {
			mr := c.Monitor.Report()
			res.Artifacts.Monitor = &mr
		}
		if c.Flight != nil {
			c.Flight.Freeze(s.Now().Duration(), "trial-end")
			res.Artifacts.Flight = c.Flight.Record()
		}
	}
	if runErr != nil && res.Err == nil {
		res.Err = runErr
	}
	if !audited.Fired() && res.Err == nil {
		res.Err = fmt.Errorf("trial did not complete")
	}
	return res
}
