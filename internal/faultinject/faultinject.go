// Package faultinject runs the paper's destructive experiments: repeated
// guest crashes and plug-pulls under load, each followed by recovery and a
// durability audit against the client-side journal. One campaign = many
// independent trials, each in its own deterministic simulation.
package faultinject

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/rig"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fault is the kind of failure a trial injects.
type Fault string

// Fault kinds.
const (
	// GuestCrash kills the OS/DBMS stack (hypervisor survives in
	// virtualised modes).
	GuestCrash Fault = "guest-crash"
	// PowerCut pulls the plug: the PSU hold-up race decides what survives.
	PowerCut Fault = "power-cut"
)

// CampaignConfig parameterises a fault-injection campaign.
type CampaignConfig struct {
	Rig     rig.Config
	Fault   Fault
	Trials  int // default 20
	Clients int // default 4
	// InjectAfterMin/Max bound the virtual time between workload start and
	// fault injection; the exact instant is sampled per trial. Defaults
	// 200ms..2s.
	InjectAfterMin time.Duration
	InjectAfterMax time.Duration
	// Workload factory; default: a small TPC-C.
	NewWorkload func() workload.Workload
}

func (c *CampaignConfig) applyDefaults() {
	if c.Trials == 0 {
		c.Trials = 20
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.InjectAfterMin == 0 {
		c.InjectAfterMin = 200 * time.Millisecond
	}
	if c.InjectAfterMax == 0 {
		c.InjectAfterMax = 2 * time.Second
	}
	if c.NewWorkload == nil {
		c.NewWorkload = func() workload.Workload {
			return &workload.TPCC{Warehouses: 1, Districts: 4, Customers: 20, Items: 200}
		}
	}
}

// TrialResult is one trial's outcome.
type TrialResult struct {
	Seed       int64
	Acked      int // transactions acknowledged before the fault
	Missing    int // acked transactions absent after recovery
	Mismatched int
	Torn       bool // RapiLog dump ended mid-entry (unsafe sizing only)
	HadDump    bool // a valid dump header was found at recovery
	Err        error
}

// Ok reports whether the trial had zero durability violations.
func (t TrialResult) Ok() bool { return t.Err == nil && t.Missing == 0 && t.Mismatched == 0 }

// Summary aggregates a campaign.
type Summary struct {
	Config     CampaignConfig
	Trials     []TrialResult
	TotalAcked int
	TotalLost  int
	Violations int // trials with any loss or corruption
	Errors     int
}

func (s Summary) String() string {
	return fmt.Sprintf("%s/%s: %d trials, %d acked commits, %d lost, %d violating trials, %d errors",
		s.Config.Rig.Mode, s.Config.Fault, len(s.Trials), s.TotalAcked, s.TotalLost, s.Violations, s.Errors)
}

// RunCampaign executes cfg.Trials independent trials with seeds base+i.
func RunCampaign(cfg CampaignConfig) Summary {
	cfg.applyDefaults()
	sum := Summary{Config: cfg}
	for i := 0; i < cfg.Trials; i++ {
		res := RunTrial(cfg, cfg.Rig.Seed+int64(i)*7919)
		sum.Trials = append(sum.Trials, res)
		sum.TotalAcked += res.Acked
		sum.TotalLost += res.Missing
		if res.Err != nil {
			sum.Errors++
		} else if !res.Ok() {
			sum.Violations++
		}
	}
	return sum
}

// debugHook, when non-nil, runs inside the audit of a trial that lost
// data. Test-only.
var debugHook func(p *sim.Proc, r *rig.Rig, e *engine.Engine, j *workload.Journal, acked int, vr workload.VerifyResult)

// RunTrial executes one load→fault→recover→audit cycle in a fresh
// simulation with the given seed.
func RunTrial(cfg CampaignConfig, seed int64) TrialResult {
	cfg.applyDefaults()
	res := TrialResult{Seed: seed}

	rigCfg := cfg.Rig
	rigCfg.Seed = seed
	rigCfg.NoDaemons = false
	r, err := rig.New(rigCfg)
	if err != nil {
		res.Err = err
		return res
	}
	s := r.S
	j := workload.NewJournal()
	w := cfg.NewWorkload()

	loaded := s.NewEvent("loaded")
	injected := s.NewEvent("injected")
	audited := s.NewEvent("audited")

	// Life 1: boot, load, serve until the fault kills us.
	s.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := r.Boot(p)
		if err != nil {
			res.Err = fmt.Errorf("boot: %w", err)
			loaded.Fire()
			return
		}
		if err := w.Load(p, e); err != nil {
			res.Err = fmt.Errorf("load: %w", err)
			loaded.Fire()
			return
		}
		loaded.Fire()
		for c := 0; c < cfg.Clients; c++ {
			client := c
			s.Spawn(r.Plat.Domain(), fmt.Sprintf("client%d", client), func(cp *sim.Proc) {
				for {
					var err error
					if st, ok := w.(*workload.Stress); ok {
						err = st.DoAs(cp, e, j, client)
					} else {
						err = w.Do(cp, e, j)
					}
					if err != nil {
						cp.Sleep(time.Millisecond) // deadlock victim: retry
					}
				}
			})
		}
	})

	// Operator: inject the fault at a sampled moment after load completes.
	s.Spawn(nil, "operator", func(p *sim.Proc) {
		loaded.Wait(p)
		if res.Err != nil {
			audited.Fire()
			return
		}
		span := cfg.InjectAfterMax - cfg.InjectAfterMin
		delay := cfg.InjectAfterMin
		if span > 0 {
			delay += time.Duration(s.Rand().Int63n(int64(span)))
		}
		p.Sleep(delay)
		res.Acked = j.Len()
		switch cfg.Fault {
		case GuestCrash:
			r.CrashOS()
		case PowerCut:
			r.CutPower()
		default:
			res.Err = fmt.Errorf("unknown fault %q", cfg.Fault)
			audited.Fire()
			return
		}
		injected.Fire()

		// Let the dust settle (hold-up window, hypervisor drain), then
		// recover and audit.
		p.Sleep(3 * time.Second)
		if cfg.Fault == PowerCut {
			rep, err := r.RecoverAfterPower(p)
			if err != nil {
				res.Err = fmt.Errorf("power recovery: %w", err)
				audited.Fire()
				return
			}
			res.Torn = rep.Torn
			res.HadDump = rep.HadDump
		} else {
			r.RebootAfterCrash()
		}
		s.Spawn(r.Plat.Domain(), "db2", func(p *sim.Proc) {
			defer audited.Fire()
			e, err := r.Boot(p)
			if err != nil {
				res.Err = fmt.Errorf("recovery boot: %w", err)
				return
			}
			// Audit only what was acked before injection: acks raced with
			// the fault are not obligations.
			vr, err := j.VerifyFirst(p, e, res.Acked)
			if err != nil {
				res.Err = fmt.Errorf("audit: %w", err)
				return
			}
			res.Missing = vr.Missing
			res.Mismatched = vr.Mismatched
			if debugHook != nil && vr.Missing > 0 {
				debugHook(p, r, e, j, res.Acked, vr)
			}
		})
	})

	if err := s.RunFor(10 * time.Minute); err != nil {
		if res.Err == nil {
			res.Err = err
		}
		return res
	}
	if !audited.Fired() && res.Err == nil {
		res.Err = fmt.Errorf("trial did not complete")
	}
	return res
}
