// Package faultinject runs the paper's destructive experiments: repeated
// guest crashes and plug-pulls under load, each followed by recovery and a
// durability audit against the client-side journal. One campaign = many
// independent trials, each in its own deterministic simulation.
package faultinject

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rig"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fault is the kind of failure a trial injects.
type Fault string

// Fault kinds.
const (
	// GuestCrash kills the OS/DBMS stack (hypervisor survives in
	// virtualised modes).
	GuestCrash Fault = "guest-crash"
	// PowerCut pulls the plug: the PSU hold-up race decides what survives.
	PowerCut Fault = "power-cut"
	// DiskError opens a window of transient log-device write errors while
	// load continues (or, with PermanentFault, grows a bad-sector range
	// over the whole log partition), then crashes the guest and audits.
	DiskError Fault = "disk-error"
	// LatencyStorm stalls every log-device request for the fault window —
	// nothing fails, everything is late.
	LatencyStorm Fault = "latency-storm"
	// Partition isolates the primary from every standby for
	// PartitionWindow, then heals (rapilog-replica mode only). Composable
	// with PowerCut/GuestCrash via Compose.
	Partition Fault = "partition"
	// ReplicaCrash crashes CrashReplicas standbys for PartitionWindow,
	// then restarts them (rapilog-replica mode only). Composable like
	// Partition.
	ReplicaCrash Fault = "replica-crash"
)

// isMediaFault reports whether f injects through the disk.Faulty wrapper
// (and therefore leaves the machine itself running).
func (f Fault) isMediaFault() bool { return f == DiskError || f == LatencyStorm }

// isReplicaFault reports whether f injects into the replication fabric.
func (f Fault) isReplicaFault() bool { return f == Partition || f == ReplicaCrash }

// CampaignConfig parameterises a fault-injection campaign.
type CampaignConfig struct {
	Rig     rig.Config
	Fault   Fault
	Trials  int // default 20
	Clients int // default 4
	// InjectAfterMin/Max bound the virtual time between workload start and
	// fault injection; the exact instant is sampled per trial. Defaults
	// 200ms..2s.
	InjectAfterMin time.Duration
	InjectAfterMax time.Duration
	// FaultWindow is how long an injected media fault lasts (DiskError,
	// LatencyStorm); default 300ms.
	FaultWindow time.Duration
	// MediaErrProb is the per-request write-error probability inside a
	// DiskError window; default 0.7.
	MediaErrProb float64
	// PermanentFault turns DiskError into a grown bad-sector range over
	// the whole log partition: drain and WAL writes fail forever, forcing
	// a RapiLog logger into degraded pass-through.
	PermanentFault bool
	// Compose, for replica faults, fires a second fault (PowerCut or
	// GuestCrash) at the midpoint of the partition/outage window — the
	// double-fault scenario the ack policies differ on.
	Compose Fault
	// PartitionWindow is how long a Partition or ReplicaCrash outage
	// lasts; default FaultWindow.
	PartitionWindow time.Duration
	// CrashReplicas is how many standbys a ReplicaCrash takes down;
	// default 1.
	CrashReplicas int
	// Parallel is how many trials run concurrently. Each trial is an
	// independent deterministic simulation keyed only by its seed, so
	// concurrency cannot change any trial's schedule; results are folded in
	// seed order, making the Summary — aggregates, trial order, artifact
	// retention — identical to a sequential run. 0 means GOMAXPROCS; 1
	// forces sequential.
	Parallel int
	// BreakDump grows a bad-sector range over the entire dump zone before
	// the workload starts: emergency dumps fail, recovery finds nothing.
	// This is the "local durability domain is gone" half of the A9
	// double-fault; only a remote policy survives it with data buffered.
	BreakDump bool
	// Shards, when > 1, runs every trial against a sharded deployment
	// (rig.NewSharded): each shard gets its own workload copy, journal and
	// client pool, the fault hits the whole machine, and recovery runs
	// per-shard in parallel. PowerCut only — the plug-pull is the one fault
	// that is machine-wide by nature.
	Shards int
	// Workload factory; default: a small TPC-C.
	NewWorkload func() workload.Workload
}

func (c *CampaignConfig) applyDefaults() {
	if c.Trials == 0 {
		c.Trials = 20
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.InjectAfterMin == 0 {
		c.InjectAfterMin = 200 * time.Millisecond
	}
	if c.InjectAfterMax == 0 {
		c.InjectAfterMax = 2 * time.Second
	}
	if c.FaultWindow == 0 {
		c.FaultWindow = 300 * time.Millisecond
	}
	if c.MediaErrProb == 0 {
		c.MediaErrProb = 0.7
	}
	if c.PartitionWindow == 0 {
		c.PartitionWindow = c.FaultWindow
	}
	if c.CrashReplicas == 0 {
		c.CrashReplicas = 1
	}
	if c.NewWorkload == nil {
		c.NewWorkload = func() workload.Workload {
			return &workload.TPCC{Warehouses: 1, Districts: 4, Customers: 20, Items: 200}
		}
	}
}

// validate rejects configurations that could never run a sane trial.
func (c *CampaignConfig) validate() error {
	if c.InjectAfterMin < 0 {
		return fmt.Errorf("faultinject: negative InjectAfterMin %v", c.InjectAfterMin)
	}
	if c.InjectAfterMax < c.InjectAfterMin {
		return fmt.Errorf("faultinject: InjectAfterMax %v < InjectAfterMin %v",
			c.InjectAfterMax, c.InjectAfterMin)
	}
	// applyDefaults only replaces zero values, so an explicitly negative
	// window reaches here; downstream it would silently collapse to a
	// zero-length Sleep and a fault that "passes" without ever firing.
	if c.FaultWindow <= 0 {
		return fmt.Errorf("faultinject: FaultWindow %v is not a positive window", c.FaultWindow)
	}
	if c.PartitionWindow <= 0 {
		return fmt.Errorf("faultinject: PartitionWindow %v is not a positive window", c.PartitionWindow)
	}
	if c.MediaErrProb < 0 || c.MediaErrProb > 1 {
		return fmt.Errorf("faultinject: MediaErrProb %v outside [0, 1]", c.MediaErrProb)
	}
	switch c.Fault {
	case GuestCrash, PowerCut, DiskError, LatencyStorm:
	case Partition, ReplicaCrash:
		if !c.Rig.Mode.Replicated() {
			return fmt.Errorf("faultinject: fault %q needs mode %q", c.Fault, rig.RapiLogReplica)
		}
	default:
		return fmt.Errorf("faultinject: unknown fault %q", c.Fault)
	}
	switch c.Compose {
	case "":
	case PowerCut, GuestCrash:
		if !c.Fault.isReplicaFault() {
			return fmt.Errorf("faultinject: Compose only applies to replica faults, not %q", c.Fault)
		}
	default:
		return fmt.Errorf("faultinject: Compose must be %q or %q, got %q", PowerCut, GuestCrash, c.Compose)
	}
	if c.Shards < 0 {
		return fmt.Errorf("faultinject: negative shard count %d", c.Shards)
	}
	if c.Shards > 1 && c.Fault != PowerCut {
		return fmt.Errorf("faultinject: sharded campaigns support %q only, not %q", PowerCut, c.Fault)
	}
	if c.Rig.Mode == rig.RapiLogSharded && c.Shards < 2 {
		return fmt.Errorf("faultinject: mode %q needs Shards >= 2", rig.RapiLogSharded)
	}
	return nil
}

// TrialResult is one trial's outcome.
type TrialResult struct {
	Seed       int64
	Acked      int // transactions acknowledged before the fault
	Missing    int // acked transactions absent after recovery
	Mismatched int
	Torn       bool // RapiLog dump ended mid-entry (unsafe sizing only)
	HadDump    bool // a valid dump header was found at recovery
	// Media-fault trials (RapiLog mode).
	Degraded      bool  // the logger was in pass-through at audit time
	BufferedAfter int64 // bytes still stranded after the settle window
	// Power-cut trials: the dying epoch's dump-path counters.
	DumpRetries  int
	DumpFailures int
	// Replica-mode trials: the replication stream's peak unacked depth
	// (records shipped but not yet held by every standby).
	ReplLagMax int64
	// MonitorViolations is the online invariant monitor's verdict for the
	// trial (zero unless the rig ran with tracing enabled).
	MonitorViolations int
	// Artifacts holds the trial's forensic capture (trace dump, metrics
	// snapshot, flight record, monitor report) when the rig ran with tracing
	// enabled. Summary.add moves it into Summary.Artifacts and nils it here,
	// so a long campaign retains one capture, not one per trial.
	Artifacts *Artifacts
	Err       error
}

// Artifacts is one trial's forensic capture, written out by rapilog-fault's
// -trace-out / -metrics-out / -flight-out flags and consumed by
// rapilog-trace.
type Artifacts struct {
	Trial   int
	Seed    int64
	Trace   *obs.TraceDump
	Metrics *obs.Snapshot
	Flight  *obs.FlightRecord
	Monitor *obs.MonitorReport
}

// Ok reports whether the trial had zero durability violations.
func (t TrialResult) Ok() bool { return t.Err == nil && t.Missing == 0 && t.Mismatched == 0 }

// Summary aggregates a campaign.
type Summary struct {
	Config         CampaignConfig
	Trials         []TrialResult
	TotalAcked     int
	TotalLost      int
	Violations     int // trials with any loss or corruption
	Errors         int
	DegradedTrials int   // trials that ended with the logger in pass-through
	DumpFailures   int   // emergency dumps that never reached the zone
	MaxReplLag     int64 // worst per-trial replication lag peak
	// MonitorViolations totals the online monitor's findings across trials.
	MonitorViolations int
	// Artifacts is the campaign's retained forensic capture: the first
	// violating/erroring trial's, or — when every trial is clean — the last
	// trial's. One capture per campaign bounds memory.
	Artifacts    *Artifacts
	artifactsBad bool
}

// add folds one trial into the aggregate. Loss/corruption is counted
// independently of the error flag: a trial can both error out and lose
// data, and hiding the loss under the error would understate Violations.
func (s *Summary) add(res TrialResult) {
	if res.Artifacts != nil {
		if !s.artifactsBad {
			s.Artifacts = res.Artifacts
			if !res.Ok() || res.MonitorViolations > 0 {
				s.artifactsBad = true // pin the first bad trial's capture
			}
		}
		res.Artifacts = nil
	}
	s.MonitorViolations += res.MonitorViolations
	s.Trials = append(s.Trials, res)
	s.TotalAcked += res.Acked
	s.TotalLost += res.Missing
	if res.Missing > 0 || res.Mismatched > 0 {
		s.Violations++
	}
	if res.Err != nil {
		s.Errors++
	}
	if res.Degraded {
		s.DegradedTrials++
	}
	s.DumpFailures += res.DumpFailures
	if res.ReplLagMax > s.MaxReplLag {
		s.MaxReplLag = res.ReplLagMax
	}
}

func (s Summary) String() string {
	extra := ""
	if s.DegradedTrials > 0 {
		extra += fmt.Sprintf(", %d degraded", s.DegradedTrials)
	}
	if s.DumpFailures > 0 {
		extra += fmt.Sprintf(", %d dump failures", s.DumpFailures)
	}
	if s.MaxReplLag > 0 {
		extra += fmt.Sprintf(", repl lag max %d", s.MaxReplLag)
	}
	if s.MonitorViolations > 0 {
		extra += fmt.Sprintf(", %d monitor violations", s.MonitorViolations)
	}
	fault := string(s.Config.Fault)
	if s.Config.Compose != "" {
		fault += "+" + string(s.Config.Compose)
	}
	return fmt.Sprintf("%s/%s: %d trials, %d acked commits, %d lost, %d violating trials, %d errors%s",
		s.Config.Rig.Mode, fault, len(s.Trials), s.TotalAcked, s.TotalLost, s.Violations, s.Errors, extra)
}

// RunCampaign executes cfg.Trials independent trials with seeds base+i·7919,
// up to cfg.Parallel at a time. Every trial runs in its own simulation whose
// schedule depends only on its seed, so the worker pool changes wall-clock
// time and nothing else: results land in seed-indexed slots and are folded
// in order, and the Summary is identical to what a sequential run produces.
func RunCampaign(cfg CampaignConfig) Summary {
	cfg.applyDefaults()
	sum := Summary{Config: cfg}
	if err := cfg.validate(); err != nil {
		sum.Trials = append(sum.Trials, TrialResult{Err: err})
		sum.Errors = 1
		return sum
	}
	par := cfg.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > cfg.Trials {
		par = cfg.Trials
	}
	results := make([]TrialResult, cfg.Trials)
	if par <= 1 {
		for i := 0; i < cfg.Trials; i++ {
			results[i] = RunTrial(cfg, cfg.Rig.Seed+int64(i)*7919)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = RunTrial(cfg, cfg.Rig.Seed+int64(i)*7919)
				}
			}()
		}
		for i := 0; i < cfg.Trials; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i := range results {
		if results[i].Artifacts != nil {
			results[i].Artifacts.Trial = i
		}
		sum.add(results[i])
	}
	return sum
}

// debugHook, when non-nil, runs inside the audit of a trial that lost
// data. Test-only.
var debugHook func(p *sim.Proc, r *rig.Rig, e *engine.Engine, j *workload.Journal, acked int, vr workload.VerifyResult)

// RunTrial executes one load→fault→recover→audit cycle in a fresh
// simulation with the given seed.
func RunTrial(cfg CampaignConfig, seed int64) TrialResult {
	cfg.applyDefaults()
	res := TrialResult{Seed: seed}
	if err := cfg.validate(); err != nil {
		res.Err = err
		return res
	}
	if cfg.Shards > 1 {
		return runShardedTrial(cfg, seed)
	}

	rigCfg := cfg.Rig
	rigCfg.Seed = seed
	rigCfg.NoDaemons = false
	if cfg.Fault.isMediaFault() && !rigCfg.LogFault.Enabled {
		// The fault layer starts quiet; the operator opens the window.
		rigCfg.LogFault = disk.FaultConfig{Enabled: true, Seed: seed * 31}
	}
	if cfg.BreakDump && !rigCfg.DumpFault.Enabled {
		rigCfg.DumpFault = disk.FaultConfig{Enabled: true, Seed: seed*31 + 7}
	}
	r, err := rig.New(rigCfg)
	if err != nil {
		res.Err = err
		return res
	}
	if cfg.BreakDump {
		// Every dump-zone write fails permanently; reads still succeed
		// (returning whatever is there — zeros), so recovery sees "no dump"
		// rather than an I/O error, exactly like a zone that silently
		// rotted.
		r.FaultyDump.AddBadRange(0, r.DumpPart.Sectors(), false)
	}
	s := r.S
	j := workload.NewJournal()
	w := cfg.NewWorkload()

	loaded := s.NewEvent("loaded")
	audited := s.NewEvent("audited")

	// Life 1: boot, load, serve until the fault kills us.
	s.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := r.Boot(p)
		if err != nil {
			res.Err = fmt.Errorf("boot: %w", err)
			loaded.Fire()
			return
		}
		if err := w.Load(p, e); err != nil {
			res.Err = fmt.Errorf("load: %w", err)
			loaded.Fire()
			return
		}
		loaded.Fire()
		for c := 0; c < cfg.Clients; c++ {
			client := c
			s.Spawn(r.Plat.Domain(), fmt.Sprintf("client%d", client), func(cp *sim.Proc) {
				for {
					var err error
					if st, ok := w.(*workload.Stress); ok {
						err = st.DoAs(cp, e, j, client)
					} else {
						err = w.Do(cp, e, j)
					}
					if err != nil {
						cp.Sleep(time.Millisecond) // deadlock victim: retry
					}
				}
			})
		}
	})

	// Operator: inject the fault at a sampled moment after load completes.
	s.Spawn(nil, "operator", func(p *sim.Proc) {
		loaded.Wait(p)
		if res.Err != nil {
			audited.Fire()
			return
		}
		span := cfg.InjectAfterMax - cfg.InjectAfterMin
		delay := cfg.InjectAfterMin
		if span > 0 {
			delay += time.Duration(s.Rand().Int63n(int64(span)))
		}
		p.Sleep(delay)
		res.Acked = j.Len()
		powerCut := cfg.Fault == PowerCut
		guestDown := cfg.Fault == GuestCrash
		// composeMid fires the composed second fault at the midpoint of a
		// replica outage. The obligation set is re-sampled first: commits
		// acked during the outage are legitimate promises of whatever
		// policy is active (under AckLocal the partition doesn't slow acks
		// at all — which is exactly the exposure A9 demonstrates).
		composeMid := func() {
			res.Acked = j.Len()
			switch cfg.Compose {
			case PowerCut:
				r.CutPower()
				powerCut = true
			case GuestCrash:
				r.CrashOS()
				guestDown = true
			}
		}
		switch cfg.Fault {
		case GuestCrash:
			r.CrashOS()
		case PowerCut:
			r.CutPower()
		case DiskError:
			if cfg.PermanentFault {
				r.FaultyLog.AddBadRange(0, r.LogPart.Sectors(), false)
				p.Sleep(cfg.FaultWindow)
			} else {
				r.FaultyLog.SetErrorProbs(0, cfg.MediaErrProb)
				p.Sleep(cfg.FaultWindow)
				r.FaultyLog.SetErrorProbs(0, 0)
			}
		case LatencyStorm:
			r.FaultyLog.SetStorm(true)
			p.Sleep(cfg.FaultWindow)
			r.FaultyLog.SetStorm(false)
		case Partition:
			w := cfg.PartitionWindow
			r.Fabric.Isolate(rig.PrimaryEndpoint)
			p.Sleep(w / 2)
			composeMid()
			p.Sleep(w - w/2)
			r.Fabric.Heal()
		case ReplicaCrash:
			n := cfg.CrashReplicas
			if n > len(r.Standbys) {
				n = len(r.Standbys)
			}
			for _, st := range r.Standbys[:n] {
				st.Crash()
			}
			p.Sleep(cfg.PartitionWindow / 2)
			composeMid()
			p.Sleep(cfg.PartitionWindow - cfg.PartitionWindow/2)
			for _, st := range r.Standbys[:n] {
				st.Restart()
			}
		}

		// Let the dust settle (hold-up window, hypervisor drain, backlog
		// catch-up), then recover and audit.
		p.Sleep(3 * time.Second)
		if powerCut {
			rep, err := r.RecoverAfterPower(p)
			if err != nil {
				res.Err = fmt.Errorf("power recovery: %w", err)
				audited.Fire()
				return
			}
			res.Torn = rep.Torn
			res.HadDump = rep.HadDump
			res.DumpRetries = rep.DumpRetries
			res.DumpFailures = rep.DumpFailures
		} else {
			if cfg.Fault.isMediaFault() || (cfg.Fault.isReplicaFault() && !guestDown) {
				// The machine never died: every acknowledgement up to this
				// crash — including those made during the fault window — is
				// an obligation the audit must see honoured.
				res.Acked = j.Len()
				r.CrashOS()
				// The hypervisor outlives the guest; give its drainer (and,
				// when degraded, the probe cadence) time to land the backlog
				// before sampling what is still stranded. Only a fault that
				// never cleared leaves bytes behind here.
				p.Sleep(2 * time.Second)
				if r.Logger != nil {
					res.BufferedAfter = r.Logger.BufferedBytes()
					res.Degraded = r.Logger.IsDegraded()
				}
			}
			r.RebootAfterCrash()
		}
		s.Spawn(r.Plat.Domain(), "db2", func(p *sim.Proc) {
			defer audited.Fire()
			e, err := r.Boot(p)
			if err != nil {
				res.Err = fmt.Errorf("recovery boot: %w", err)
				return
			}
			// Audit only what was acked before injection: acks raced with
			// the fault are not obligations.
			vr, err := j.VerifyFirst(p, e, res.Acked)
			if err != nil {
				res.Err = fmt.Errorf("audit: %w", err)
				return
			}
			res.Missing = vr.Missing
			res.Mismatched = vr.Mismatched
			if debugHook != nil && vr.Missing > 0 {
				debugHook(p, r, e, j, res.Acked, vr)
			}
		})
	})

	runErr := s.RunFor(10 * time.Minute)
	if r.Fabric != nil {
		res.ReplLagMax = r.Obs.Registry().Gauge("repl.lag").Peak()
	}
	if r.Obs.Tracer().Enabled() {
		dump := r.Obs.Tracer().Dump()
		snap := r.Obs.Registry().Snapshot()
		res.Artifacts = &Artifacts{Seed: seed, Trace: &dump, Metrics: &snap}
		if r.Monitor != nil {
			res.MonitorViolations = r.Monitor.Total()
			mr := r.Monitor.Report()
			res.Artifacts.Monitor = &mr
		}
		if r.Flight != nil {
			// A trial that never hit a freeze trigger still yields a usable
			// black box: seal it at trial end.
			r.Flight.Freeze(s.Now().Duration(), "trial-end")
			res.Artifacts.Flight = r.Flight.Record()
		}
	}
	if runErr != nil {
		if res.Err == nil {
			res.Err = runErr
		}
		return res
	}
	if !audited.Fired() && res.Err == nil {
		res.Err = fmt.Errorf("trial did not complete")
	}
	return res
}
