package faultinject

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/power"
	"repro/internal/rig"
	"repro/internal/workload"
)

// doubleFaultCampaign is the A9 regime: slow spindle, measured PSU, a
// commit-heavy workload keeping the buffer near its bound — and then the
// double fault the local durability domain cannot absorb: a network
// partition that outlasts the hold-up window, a power cut at its midpoint,
// and a dump zone that fails every write. What survives is exactly what a
// standby already holds.
func doubleFaultCampaign(policy core.AckPolicy, trials int) CampaignConfig {
	return CampaignConfig{
		Rig: rig.Config{
			Seed:      42,
			Mode:      rig.RapiLogReplica,
			Replicas:  2,
			AckPolicy: policy,
			PSU:       power.PSUMeasured,
			HDD:       disk.HDDConfig{RPM: 3600, SectorsPerTrack: 250},
		},
		Fault:   Partition,
		Compose: PowerCut,
		// The power dies at the window midpoint; the remaining second of
		// partition comfortably outlasts PSUMeasured's 250–380ms hold-up,
		// so nothing buffered escapes over the network post-cut either.
		PartitionWindow: 2 * time.Second,
		BreakDump:       true,
		Trials:          trials,
		Clients:         16,
		InjectAfterMin:  1500 * time.Millisecond,
		InjectAfterMax:  2500 * time.Millisecond,
		NewWorkload:     func() workload.Workload { return &workload.Stress{ValueSize: 6000} },
	}
}

// TestQuorumSurvivesPartitionPlusPowerFail is the A9 invariant: with
// quorum acks, every acknowledged commit is already held by a standby, so
// the simultaneous loss of the machine AND its dump zone loses nothing.
func TestQuorumSurvivesPartitionPlusPowerFail(t *testing.T) {
	sum := RunCampaign(doubleFaultCampaign(core.AckQuorum(1), 3))
	if sum.Errors > 0 {
		t.Fatalf("campaign errors: %+v", sum.Trials)
	}
	if sum.TotalAcked == 0 {
		t.Fatal("no transactions acked before faults")
	}
	if sum.Violations != 0 || sum.TotalLost != 0 {
		t.Fatalf("quorum acks lost commits under partition+power-cut+broken-dump: %s", sum)
	}
	if sum.MaxReplLag == 0 {
		t.Fatal("replication lag never observed — was anything shipped?")
	}
}

// TestLocalAcksLoseUnderSameDoubleFault is the ablation: AckLocal keeps
// acknowledging at buffer speed through the partition, so commits pile up
// that neither the (unreachable) standbys nor the (broken) dump zone hold
// when the power dies. Asserted both ways, like A3.
func TestLocalAcksLoseUnderSameDoubleFault(t *testing.T) {
	sum := RunCampaign(doubleFaultCampaign(core.AckLocal(), 3))
	if sum.Errors > 0 {
		t.Fatalf("campaign errors: %+v", sum.Trials)
	}
	if sum.TotalLost == 0 {
		t.Fatalf("local acks lost nothing under partition+power-cut+broken-dump — the quorum test proves nothing: %s", sum)
	}
}

// TestQuorumSurvivesReplicaCrashPlusPowerFail: same double fault, but the
// outage is one crashed standby instead of a full partition. quorum(1) of
// 2 replicas means the survivor still holds every acked commit.
func TestQuorumSurvivesReplicaCrashPlusPowerFail(t *testing.T) {
	cfg := doubleFaultCampaign(core.AckQuorum(1), 2)
	cfg.Fault = ReplicaCrash
	cfg.CrashReplicas = 1
	sum := RunCampaign(cfg)
	if sum.Errors > 0 {
		t.Fatalf("campaign errors: %+v", sum.Trials)
	}
	if sum.TotalAcked == 0 {
		t.Fatal("no transactions acked before faults")
	}
	if sum.Violations != 0 {
		t.Fatalf("quorum acks lost commits when one standby crashed: %s", sum)
	}
}

// TestWorkingDumpSurvivesPartitionPlusPowerFail: partition + power cut with
// a HEALTHY dump zone. The local durability domain is complete — drained
// sectors on the log partition, buffered ones in the dump — so recovery must
// not let the lagging standbys (a full second behind, thanks to the
// partition) roll drained sectors back to pre-partition contents. Every
// policy, including plain AckLocal, must lose nothing here: this is the "no
// worse than unreplicated RapiLog" regression guard. The small value size
// packs several commits per WAL block, which is exactly the shape where an
// unconditional replica replay loses data: the WAL tail block straddling the
// partition start is rewritten (and drained) after the standbys last saw it,
// and a stale replica image of that block erases the acked commits sealed
// into it. Seed 808 demonstrably lost commits that way before recovery
// became policy-aware.
func TestWorkingDumpSurvivesPartitionPlusPowerFail(t *testing.T) {
	for _, pol := range []core.AckPolicy{core.AckLocal(), core.AckQuorum(1)} {
		cfg := doubleFaultCampaign(pol, 3)
		cfg.BreakDump = false
		cfg.Rig.Seed = 808
		cfg.NewWorkload = func() workload.Workload { return &workload.Stress{ValueSize: 400} }
		sum := RunCampaign(cfg)
		if sum.Errors > 0 {
			t.Fatalf("%v: campaign errors: %+v", pol, sum.Trials)
		}
		if sum.TotalAcked == 0 {
			t.Fatalf("%v: no transactions acked before faults", pol)
		}
		if sum.Violations != 0 || sum.TotalLost != 0 {
			t.Fatalf("%v: lost locally durable commits under partition+power-cut with a working dump: %s", pol, sum)
		}
	}
}

func TestReplicaFaultValidation(t *testing.T) {
	cfg := quickCampaign(rig.RapiLog, Partition, 1)
	if err := cfg.validate(); err == nil {
		t.Fatal("partition fault accepted outside rapilog-replica mode")
	}
	cfg = quickCampaign(rig.RapiLogReplica, PowerCut, 1)
	cfg.Compose = GuestCrash
	if err := cfg.validate(); err == nil {
		t.Fatal("Compose accepted on a non-replica fault")
	}
	cfg = quickCampaign(rig.RapiLogReplica, Partition, 1)
	cfg.Compose = DiskError
	if err := cfg.validate(); err == nil {
		t.Fatal("non-crash Compose accepted")
	}
}

// TestBarePartitionIsHarmless: a partition with no second fault must never
// cost a commit under any policy — the stream catches up after the heal.
func TestBarePartitionIsHarmless(t *testing.T) {
	for _, pol := range []core.AckPolicy{core.AckLocal(), core.AckQuorum(1)} {
		cfg := doubleFaultCampaign(pol, 2)
		cfg.Compose = ""
		cfg.BreakDump = false
		sum := RunCampaign(cfg)
		if sum.Errors > 0 {
			t.Fatalf("%v: campaign errors: %+v", pol, sum.Trials)
		}
		if sum.Violations != 0 {
			t.Fatalf("%v: bare partition lost commits: %s", pol, sum)
		}
		if sum.TotalAcked == 0 {
			t.Fatalf("%v: nothing acked", pol)
		}
	}
}

// TestDoubleFaultCapturesFrozenFlightRecord: the A9 break-dump campaign,
// run with the flight recorder armed, must retain a post-mortem frozen at
// DC loss — and the online monitor must certify the quorum policy clean
// even through the double fault.
func TestDoubleFaultCapturesFrozenFlightRecord(t *testing.T) {
	cfg := doubleFaultCampaign(core.AckQuorum(1), 2)
	cfg.Rig.Flight = true
	cfg.Rig.TraceCapacity = 1 << 18
	sum := RunCampaign(cfg)
	if sum.Errors > 0 || sum.Violations != 0 {
		t.Fatalf("campaign not clean: %s", sum)
	}
	if sum.MonitorViolations != 0 {
		t.Fatalf("monitor flagged %d violations on a clean quorum campaign: %+v",
			sum.MonitorViolations, sum.Artifacts.Monitor)
	}
	art := sum.Artifacts
	if art == nil || art.Trace == nil || art.Metrics == nil || art.Monitor == nil {
		t.Fatalf("campaign retained no artifacts: %+v", art)
	}
	if art.Flight == nil {
		t.Fatal("flight recorder armed but no record retained")
	}
	if art.Flight.Reason != "power-dc-loss" {
		t.Fatalf("flight froze for %q, want power-dc-loss (the composed cut)", art.Flight.Reason)
	}
	if len(art.Flight.Events) == 0 || art.Flight.Monitor == nil {
		t.Fatalf("frozen record incomplete: %d events, monitor %v",
			len(art.Flight.Events), art.Flight.Monitor)
	}
}
