package faultinject

import (
	"fmt"
	"time"

	"repro/internal/rig"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runShardedTrial is RunTrial's sharded power-cut path: N independent log
// domains on one machine, each with its own workload copy, journal and
// client pool. The plug is pulled on the whole machine — every shard's
// emergency dump races the same hold-up window — recovery runs per shard in
// parallel, and each shard's acked-before-injection prefix is audited
// against the engine that acked it.
func runShardedTrial(cfg CampaignConfig, seed int64) TrialResult {
	res := TrialResult{Seed: seed}
	rigCfg := cfg.Rig
	rigCfg.Seed = seed
	rigCfg.NoDaemons = false
	sh, err := rig.NewSharded(rigCfg, cfg.Shards)
	if err != nil {
		res.Err = err
		return res
	}
	s := sh.S
	n := cfg.Shards
	journals := make([]*workload.Journal, n)
	wls := make([]workload.Workload, n)
	for i := range journals {
		journals[i] = workload.NewJournal()
		wls[i] = cfg.NewWorkload()
	}
	loaded := s.NewEvent("loaded")
	audited := s.NewEvent("audited")

	// Life 1: boot every shard, load, serve until the plug is pulled.
	s.Spawn(nil, "boot", func(p *sim.Proc) {
		engines, err := sh.BootAll(p)
		if err != nil {
			res.Err = fmt.Errorf("boot: %w", err)
			loaded.Fire()
			return
		}
		for i, e := range engines {
			if err := wls[i].Load(p, e); err != nil {
				res.Err = fmt.Errorf("shard %d load: %w", i, err)
				loaded.Fire()
				return
			}
		}
		loaded.Fire()
		for i, e := range engines {
			i, e := i, e
			for c := 0; c < cfg.Clients; c++ {
				client := c
				// Clients live in their shard's guest domain and die with it.
				s.Spawn(sh.Shards[i].Plat.Domain(), fmt.Sprintf("shard%d.client%d", i, client), func(cp *sim.Proc) {
					for {
						var err error
						if st, ok := wls[i].(*workload.Stress); ok {
							err = st.DoAs(cp, e, journals[i], client)
						} else {
							err = wls[i].Do(cp, e, journals[i])
						}
						if err != nil {
							cp.Sleep(time.Millisecond) // deadlock victim: retry
						}
					}
				})
			}
		}
	})

	ackedPer := make([]int, n)
	s.Spawn(nil, "operator", func(p *sim.Proc) {
		loaded.Wait(p)
		if res.Err != nil {
			audited.Fire()
			return
		}
		span := cfg.InjectAfterMax - cfg.InjectAfterMin
		delay := cfg.InjectAfterMin
		if span > 0 {
			delay += time.Duration(s.Rand().Int63n(int64(span)))
		}
		p.Sleep(delay)
		// Obligations are per shard: a commit acked by shard i must be found
		// on shard i after recovery, not anywhere else.
		for i, j := range journals {
			ackedPer[i] = j.Len()
			res.Acked += ackedPer[i]
		}
		sh.CutPower()
		p.Sleep(3 * time.Second)
		rep, err := sh.RecoverAfterPower(p)
		if err != nil {
			res.Err = fmt.Errorf("sharded power recovery: %w", err)
			audited.Fire()
			return
		}
		res.Torn = rep.Torn()
		res.HadDump = rep.HadDump()
		res.DumpFailures = rep.DumpFailures()
		for _, sr := range rep.Shards {
			res.DumpRetries += sr.DumpRetries
		}
		s.Spawn(nil, "audit", func(p *sim.Proc) {
			defer audited.Fire()
			engines, err := sh.BootAll(p)
			if err != nil {
				res.Err = fmt.Errorf("recovery boot: %w", err)
				return
			}
			for i, e := range engines {
				vr, err := journals[i].VerifyFirst(p, e, ackedPer[i])
				if err != nil {
					res.Err = fmt.Errorf("shard %d audit: %w", i, err)
					return
				}
				res.Missing += vr.Missing
				res.Mismatched += vr.Mismatched
			}
		})
	})

	runErr := s.RunFor(10 * time.Minute)
	if runErr != nil {
		if res.Err == nil {
			res.Err = runErr
		}
		return res
	}
	if !audited.Fired() && res.Err == nil {
		res.Err = fmt.Errorf("trial did not complete")
	}
	return res
}
