package faultinject

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rig"
)

func TestFailoverConfigValidation(t *testing.T) {
	if sum := RunFailoverCampaign(FailoverConfig{Fault: "no-such-fault", Trials: 1}); sum.Errors != 1 {
		t.Fatalf("unknown fault accepted: %+v", sum)
	}
	bad := FailoverConfig{Fault: LeaderPowerCut, Trials: 1, SessionFor: time.Second, InjectAfterMax: 2 * time.Second}
	if sum := RunFailoverCampaign(bad); sum.Errors != 1 {
		t.Fatal("session window inside inject window accepted")
	}
}

func failoverBase(fault FailoverFault, trials int) FailoverConfig {
	return FailoverConfig{
		Cluster: rig.ClusterConfig{
			Nodes: 3,
			Rig:   rig.Config{Seed: 1234, AckPolicy: core.AckQuorum(1)},
		},
		Fault:      fault,
		Trials:     trials,
		Clients:    4,
		SessionFor: 45 * time.Second,
	}
}

// requireClean asserts a campaign's acceptance criteria: zero acked-quorum
// loss, zero split-brain, every trial a single complete takeover.
func requireClean(t *testing.T, sum FailoverSummary) {
	t.Helper()
	t.Log(sum.String())
	if sum.Errors > 0 {
		for _, tr := range sum.Trials {
			if tr.Err != nil {
				t.Fatalf("trial seed %d: %v", tr.Seed, tr.Err)
			}
		}
	}
	if sum.TotalAcked == 0 {
		t.Fatal("campaign acked nothing — proves nothing")
	}
	if sum.Violations != 0 || sum.TotalLost != 0 {
		t.Fatalf("acked-quorum loss: %s", sum)
	}
	if sum.SplitBrains != 0 {
		t.Fatalf("split-brain detected: %s", sum)
	}
	if sum.Incomplete != 0 {
		t.Fatalf("incomplete takeovers: %s", sum)
	}
	if sum.UnavailPercentile(0.5) == 0 {
		t.Fatal("no unavailability windows measured")
	}
}

func TestFailoverCampaignPowerCut(t *testing.T) {
	requireClean(t, RunFailoverCampaign(failoverBase(LeaderPowerCut, 2)))
}

func TestFailoverCampaignIsolation(t *testing.T) {
	requireClean(t, RunFailoverCampaign(failoverBase(LeaderIsolation, 2)))
}

func TestFailoverCampaignComposed(t *testing.T) {
	requireClean(t, RunFailoverCampaign(failoverBase(CoordAndLeader, 2)))
}

// TestFailoverTrialForensics checks that a traced trial captures the full
// artifact set and the ha.* counters move.
func TestFailoverTrialForensics(t *testing.T) {
	cfg := failoverBase(LeaderIsolation, 1)
	cfg.applyDefaults()
	res := RunFailoverTrial(cfg, 77)
	if !res.Ok() {
		t.Fatalf("trial not clean: %+v err=%v", res, res.Err)
	}
	if res.Artifacts == nil || res.Artifacts.Trace == nil || res.Artifacts.Metrics == nil ||
		res.Artifacts.Monitor == nil || res.Artifacts.Flight == nil {
		t.Fatalf("artifact capture incomplete: %+v", res.Artifacts)
	}
	if res.Redirects == 0 {
		t.Fatal("no session ever redirected to the promoted leader")
	}
	// An isolated-then-healed leader retransmits its deposed epoch into
	// fenced stores: those must surface as fencing rejections.
	if res.FenceRejections == 0 {
		t.Fatal("healed deposed leader produced no fencing rejections")
	}
	if res.ReplayBytes == 0 || res.ReplayEntries == 0 {
		t.Fatalf("promotion replayed nothing: %+v", res)
	}
}
