package faultinject

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rig"
	"repro/internal/workload"
)

// TestParallelCampaignDeterminism is the property the worker pool must
// preserve: a campaign is a pure function of its config and seeds, so
// running the trials 8-wide must produce a Summary — per-trial results,
// aggregates, and the retained forensic artifacts — identical to the
// sequential run. The campaign is a replicated power-cut with tracing on,
// so artifact retention (first-bad-else-last) is exercised too.
func TestParallelCampaignDeterminism(t *testing.T) {
	mk := func(par int) Summary {
		return RunCampaign(CampaignConfig{
			Rig: rig.Config{
				Seed:      99,
				Mode:      rig.RapiLogReplica,
				Replicas:  2,
				AckPolicy: core.AckQuorum(1),
				Trace:     true,
			},
			Fault:          PowerCut,
			Trials:         6,
			Clients:        4,
			Parallel:       par,
			InjectAfterMin: 200 * time.Millisecond,
			InjectAfterMax: 600 * time.Millisecond,
			NewWorkload:    func() workload.Workload { return &workload.Stress{ValueSize: 2000} },
		})
	}
	seq := mk(1)
	par := mk(8)

	// Config echoes what the caller passed, so Parallel (and the workload
	// closure) legitimately differ; everything downstream must not.
	if len(seq.Trials) != len(par.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(seq.Trials), len(par.Trials))
	}
	for i := range seq.Trials {
		if !reflect.DeepEqual(seq.Trials[i], par.Trials[i]) {
			t.Fatalf("trial %d differs:\nseq: %+v\npar: %+v", i, seq.Trials[i], par.Trials[i])
		}
	}
	if seq.TotalAcked != par.TotalAcked || seq.TotalLost != par.TotalLost ||
		seq.Violations != par.Violations || seq.Errors != par.Errors ||
		seq.DegradedTrials != par.DegradedTrials || seq.DumpFailures != par.DumpFailures ||
		seq.MaxReplLag != par.MaxReplLag || seq.MonitorViolations != par.MonitorViolations {
		t.Fatalf("aggregates differ:\nseq: %s\npar: %s", seq, par)
	}
	if seq.TotalAcked == 0 {
		t.Fatal("no transactions acked: property vacuous")
	}

	// Artifact retention must pin the same trial and serialise identically.
	sa, pa := seq.Artifacts, par.Artifacts
	if sa == nil || pa == nil {
		t.Fatalf("artifacts missing: seq=%v par=%v", sa != nil, pa != nil)
	}
	if sa.Trial != pa.Trial || sa.Seed != pa.Seed {
		t.Fatalf("retained artifact differs: seq trial %d seed %d, par trial %d seed %d",
			sa.Trial, sa.Seed, pa.Trial, pa.Seed)
	}
	var sj, pj bytes.Buffer
	if err := sa.Trace.WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := pa.Trace.WriteJSON(&pj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), pj.Bytes()) {
		t.Fatalf("retained trace dumps differ (%d vs %d bytes)", sj.Len(), pj.Len())
	}
	sj.Reset()
	pj.Reset()
	if err := sa.Metrics.WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := pa.Metrics.WriteJSON(&pj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), pj.Bytes()) {
		t.Fatalf("retained metrics snapshots differ (%d vs %d bytes)", sj.Len(), pj.Len())
	}
}
