package pagestore

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/power"
	"repro/internal/sim"
)

func memStore(t *testing.T, seed int64, cfg Config) (*sim.Sim, disk.Device, *Store) {
	t.Helper()
	s := sim.New(seed)
	dev := disk.NewMem(s, disk.MemConfig{Name: "data", Persistent: true, Capacity: 1 << 17})
	st, err := Open(s, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev, st
}

func TestFreshPagesReadZero(t *testing.T) {
	s, _, st := memStore(t, 1, Config{})
	s.Spawn(nil, "t", func(p *sim.Proc) {
		pg, err := st.Get(p, 0)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		for _, b := range pg.Data() {
			if b != 0 {
				t.Error("fresh page not zero")
				return
			}
		}
		if len(pg.Data()) != st.UsableSize() {
			t.Errorf("usable size %d", len(pg.Data()))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointPersistsDirtyPages(t *testing.T) {
	s, dev, st := memStore(t, 1, Config{})
	s.Spawn(nil, "t", func(p *sim.Proc) {
		for id := int64(0); id < 5; id++ {
			pg, _ := st.Get(p, id)
			copy(pg.Data(), bytes.Repeat([]byte{byte(id + 1)}, 64))
			pg.LSN = uint64(100 + id)
			st.MarkDirty(id)
		}
		if err := st.Checkpoint(p); err != nil {
			t.Errorf("checkpoint: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Cold restart: new store on the same device.
	s2 := sim.New(2)
	st2, err := Open(s2, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s2.Spawn(nil, "t", func(p *sim.Proc) {
		for id := int64(0); id < 5; id++ {
			pg, err := st2.Get(p, id)
			if err != nil {
				t.Errorf("get after restart: %v", err)
				return
			}
			if !bytes.Equal(pg.Data()[:64], bytes.Repeat([]byte{byte(id + 1)}, 64)) {
				t.Errorf("page %d content lost", id)
			}
			if pg.LSN != uint64(100+id) {
				t.Errorf("page %d LSN = %d", id, pg.LSN)
			}
		}
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if st.DirtyPages() != 0 {
		t.Fatal("dirty flags not cleared by checkpoint")
	}
}

func TestUncheckpointedChangesNotOnDisk(t *testing.T) {
	s, dev, st := memStore(t, 1, Config{})
	s.Spawn(nil, "t", func(p *sim.Proc) {
		pg, _ := st.Get(p, 0)
		pg.Data()[0] = 0xFF
		st.MarkDirty(0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s2 := sim.New(2)
	st2, _ := Open(s2, dev, Config{})
	s2.Spawn(nil, "t", func(p *sim.Proc) {
		pg, _ := st2.Get(p, 0)
		if pg.Data()[0] != 0 {
			t.Error("no-steal violated: unflushed change on disk")
		}
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyPagesNeverEvicted(t *testing.T) {
	s, _, st := memStore(t, 1, Config{PoolPages: 4})
	s.Spawn(nil, "t", func(p *sim.Proc) {
		// Dirty 4 pages, then touch many more: pool grows, dirty stay.
		for id := int64(0); id < 4; id++ {
			pg, _ := st.Get(p, id)
			pg.Data()[0] = byte(id + 1)
			st.MarkDirty(id)
		}
		for id := int64(10); id < 30; id++ {
			_, _ = st.Get(p, id)
		}
		for id := int64(0); id < 4; id++ {
			pg, _ := st.Get(p, id)
			if pg.Data()[0] != byte(id+1) {
				t.Errorf("dirty page %d lost its in-memory change", id)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Evictions.Value() == 0 {
		t.Fatal("no clean evictions despite tiny pool")
	}
}

func TestControlBlockRoundTrip(t *testing.T) {
	s, dev, st := memStore(t, 1, Config{})
	blob := []byte("checkpointLSN=12345;endLSN=99")
	s.Spawn(nil, "t", func(p *sim.Proc) {
		if got, _ := st.ReadControl(p); got != nil {
			t.Error("fresh device has a control block")
		}
		if err := st.WriteControl(p, blob); err != nil {
			t.Errorf("write control: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s2 := sim.New(2)
	st2, _ := Open(s2, dev, Config{})
	s2.Spawn(nil, "t", func(p *sim.Proc) {
		got, err := st2.ReadControl(p)
		if err != nil || !bytes.Equal(got, blob) {
			t.Errorf("control after restart: %q, %v", got, err)
		}
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestControlBlockTooLarge(t *testing.T) {
	s, _, st := memStore(t, 1, Config{})
	s.Spawn(nil, "t", func(p *sim.Proc) {
		if err := st.WriteControl(p, make([]byte, st.MaxControlLen()+1)); err == nil {
			t.Error("oversized control accepted")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleWriteProtectsTornCheckpoint(t *testing.T) {
	// Checkpoint to an HDD; cut power mid-in-place-write. The torn page
	// must be restored from the double-write area at boot.
	s := sim.New(3)
	m := power.NewMachine(s, "m0", 2, power.PSUConfig{
		Name: "instant", HoldupMin: time.Microsecond, HoldupMax: time.Microsecond,
		InterruptLatency: time.Microsecond,
	})
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{ChunkSectors: 1})
	m.AttachDevice(hdd)
	part, _ := disk.NewPartition(hdd, "data", 0, 1<<17)
	st, err := Open(s, part, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dom := m.NewDomain("db")
	content := bytes.Repeat([]byte{0xCD}, 128)
	s.Spawn(dom, "w", func(p *sim.Proc) {
		// Seed page 3 with old content, checkpoint fully.
		pg, _ := st.Get(p, 3)
		copy(pg.Data(), bytes.Repeat([]byte{0xAB}, 128))
		st.MarkDirty(3)
		if err := st.Checkpoint(p); err != nil {
			t.Errorf("checkpoint 1: %v", err)
		}
		// New content; power dies during the second checkpoint's in-place
		// phase (after the DW copy and summary are durable).
		pg, _ = st.Get(p, 3)
		copy(pg.Data(), content)
		st.MarkDirty(3)
		// The DW write is sequential near sector 8; the in-place write of
		// page 3 is further out. Cut power while in-place is underway.
		s.After(34*time.Millisecond, func() { m.CutPower() })
		_ = st.Checkpoint(p)
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	// Boot: restore double writes, then the page must be readable and
	// hold either old or new content in full — never a torn mix.
	m.RestorePower()
	boot := s.NewDomain("boot")
	var got []byte
	s.Spawn(boot, "recover", func(p *sim.Proc) {
		part2, _ := disk.NewPartition(hdd, "data2", 0, 1<<17)
		st2, err := Open(s, part2, Config{})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if _, err := st2.RecoverDoubleWrite(p); err != nil {
			t.Errorf("dw recover: %v", err)
			return
		}
		pg, err := st2.Get(p, 3)
		if err != nil {
			t.Errorf("page unreadable after DW recovery: %v", err)
			return
		}
		got = append([]byte(nil), pg.Data()[:128]...)
	})
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{0xAB}, 128)
	if !bytes.Equal(got, content) && !bytes.Equal(got, old) {
		t.Fatalf("page holds a torn mix after recovery: % x ...", got[:8])
	}
}

func TestRecoverDoubleWriteNoopWhenClean(t *testing.T) {
	s, _, st := memStore(t, 4, Config{})
	s.Spawn(nil, "t", func(p *sim.Proc) {
		n, err := st.RecoverDoubleWrite(p)
		if err != nil || n != 0 {
			t.Errorf("clean recover: n=%d err=%v", n, err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPageIDBounds(t *testing.T) {
	s, _, st := memStore(t, 5, Config{})
	s.Spawn(nil, "t", func(p *sim.Proc) {
		if _, err := st.Get(p, -1); !errors.Is(err, ErrNoSpace) {
			t.Errorf("negative id: %v", err)
		}
		if _, err := st.Get(p, st.NumPages()); !errors.Is(err, ErrNoSpace) {
			t.Errorf("beyond capacity: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsBadConfigs(t *testing.T) {
	s := sim.New(6)
	dev := disk.NewMem(s, disk.MemConfig{Capacity: 1 << 17})
	if _, err := Open(s, dev, Config{PageSize: 1000}); err == nil {
		t.Fatal("non-sector-multiple page size accepted")
	}
	if _, err := Open(s, dev, Config{DWSlots: 10000}); err == nil {
		t.Fatal("oversized DWSlots accepted")
	}
	tiny := disk.NewMem(s, disk.MemConfig{Capacity: 16})
	if _, err := Open(s, tiny, Config{}); err == nil {
		t.Fatal("too-small device accepted")
	}
}

// Property: after any sequence of page writes and checkpoints followed by a
// cold restart, every checkpointed page reads back exactly, and every page
// passes its checksum.
func TestCheckpointRestartRoundTripProperty(t *testing.T) {
	prop := func(seed int64, nPages uint8) bool {
		n := int64(nPages%20) + 1
		s, dev, st := memStore(t, seed, Config{})
		expect := make(map[int64]byte)
		s.Spawn(nil, "t", func(p *sim.Proc) {
			for round := 0; round < 3; round++ {
				for id := int64(0); id < n; id++ {
					if s.Rand().Intn(2) == 0 {
						pg, _ := st.Get(p, id)
						v := byte(s.Rand().Intn(255) + 1)
						pg.Data()[7] = v
						st.MarkDirty(id)
						expect[id] = v
					}
				}
				_ = st.Checkpoint(p)
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		ok := true
		s2 := sim.New(seed + 1)
		st2, _ := Open(s2, dev, Config{})
		s2.Spawn(nil, "t", func(p *sim.Proc) {
			for id, v := range expect {
				pg, err := st2.Get(p, id)
				if err != nil || pg.Data()[7] != v {
					ok = false
					return
				}
			}
		})
		if err := s2.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
