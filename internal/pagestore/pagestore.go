// Package pagestore manages the database's data partition: fixed-size
// pages cached in a buffer pool, checkpoint flushing made torn-write-safe
// by a double-write area (the InnoDB technique), and a small sector-atomic
// control block for the engine's recovery metadata.
//
// The pool is strictly no-steal: pages are written to disk only by
// Checkpoint, never evicted while dirty, so uncommitted in-memory state
// (which the engine keeps out of pages entirely — see internal/engine)
// never reaches the device and recovery needs no undo pass.
//
// Data partition layout, in sectors:
//
//	0                      control block (one sector, atomically written)
//	1                      double-write summary (valid flag, count, CRC)
//	8 .. 8+DW              double-write slots
//	8+DW ..                page frames
package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/disk"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Errors.
var (
	ErrBadPage    = errors.New("pagestore: page checksum mismatch")
	ErrBadControl = errors.New("pagestore: control block corrupt")
	ErrNoSpace    = errors.New("pagestore: page id beyond device capacity")
)

const (
	pageMagic   = 0x50474531 // "PGE1"
	pageHdrLen  = 24         // magic(4) id(8) lsn(8) crc(4)
	ctrlMagic   = 0x43545231 // "CTR1"
	dwMagic     = 0x44575231 // "DWR1"
	dwHdrSector = 1
	dwSlotBase  = 8
)

// Config parameterises a Store.
type Config struct {
	PageSize  int // default 8192; multiple of the sector size
	PoolPages int // soft cache bound; default 4096
	DWSlots   int // double-write slots per checkpoint batch; default 256
}

func (c *Config) applyDefaults() {
	if c.PageSize == 0 {
		c.PageSize = 8192
	}
	if c.PoolPages == 0 {
		c.PoolPages = 4096
	}
	if c.DWSlots == 0 {
		c.DWSlots = 256
	}
}

// Page is a cached page frame. The engine reads and mutates Data between
// simulation parks only: after any operation that may block (Get with a
// cache miss), re-fetch the page before touching it, and call MarkDirty in
// the same non-blocking section as the mutation.
type Page struct {
	ID    int64
	LSN   uint64 // engine-maintained recovery hint
	data  []byte
	dirty bool
	ver   uint64 // bumped by MarkDirty; guards checkpoint races
	tick  uint64 // LRU clock
}

// Data returns the page's usable byte area (PageSize − header).
func (pg *Page) Data() []byte { return pg.data }

// Stats counts store activity.
type Stats struct {
	Reads       *metrics.Counter // physical page reads
	Writes      *metrics.Counter // physical page writes (incl. double writes)
	Hits        *metrics.Counter
	Misses      *metrics.Counter
	Evictions   *metrics.Counter
	Checkpoints *metrics.Counter
	DWRestores  *metrics.Counter
}

func newStats() *Stats {
	return &Stats{
		Reads:       metrics.NewCounter("pages.reads"),
		Writes:      metrics.NewCounter("pages.writes"),
		Hits:        metrics.NewCounter("pages.hits"),
		Misses:      metrics.NewCounter("pages.misses"),
		Evictions:   metrics.NewCounter("pages.evictions"),
		Checkpoints: metrics.NewCounter("pages.checkpoints"),
		DWRestores:  metrics.NewCounter("pages.dw_restores"),
	}
}

// Store is the page manager for one data partition.
type Store struct {
	s        *sim.Sim
	dev      disk.Device
	cfg      Config
	pageSec  int
	pageBase int64 // first page-frame sector
	numPages int64
	pool     map[int64]*Page
	clock    uint64
	stats    *Stats
	// maxWritten is the highest page id ever written to the device (−1 if
	// none): pages above it are known fresh and are materialised as zero
	// pages without a device read, like a real engine extending its file.
	maxWritten int64
}

// Open creates a Store over dev. Existing page contents remain readable
// (pages are self-validating); a fresh device reads as zero pages.
func Open(s *sim.Sim, dev disk.Device, cfg Config) (*Store, error) {
	cfg.applyDefaults()
	if cfg.PageSize%dev.SectorSize() != 0 {
		return nil, fmt.Errorf("pagestore: page size %d not a multiple of sector size %d", cfg.PageSize, dev.SectorSize())
	}
	if maxSlots := ((dwSlotBase-dwHdrSector)*dev.SectorSize() - 12) / 8; cfg.DWSlots > maxSlots {
		return nil, fmt.Errorf("pagestore: DWSlots %d exceeds summary capacity %d", cfg.DWSlots, maxSlots)
	}
	pageSec := cfg.PageSize / dev.SectorSize()
	pageBase := int64(dwSlotBase + cfg.DWSlots*pageSec)
	numPages := (dev.Sectors() - pageBase) / int64(pageSec)
	if numPages <= 0 {
		return nil, fmt.Errorf("pagestore: device too small (%d sectors)", dev.Sectors())
	}
	return &Store{
		s:          s,
		dev:        dev,
		cfg:        cfg,
		pageSec:    pageSec,
		pageBase:   pageBase,
		numPages:   numPages,
		pool:       make(map[int64]*Page),
		stats:      newStats(),
		maxWritten: numPages - 1, // conservative: read everything
	}, nil
}

// SetWrittenThrough declares the exact page-write horizon: pages above id
// were never written to the device and will be materialised as zero pages
// without a read. Only recovery code that derives the horizon from durable
// metadata (the control block; a missing one proves no page was ever
// flushed) may call this — lowering it past a written page would resurrect
// stale zeros.
func (st *Store) SetWrittenThrough(id int64) {
	st.maxWritten = id
}

// Stats returns the store's counters.
func (st *Store) Stats() *Stats { return st.stats }

// NumPages returns the page capacity of the partition.
func (st *Store) NumPages() int64 { return st.numPages }

// PageSize returns the configured page size.
func (st *Store) PageSize() int { return st.cfg.PageSize }

// UsableSize returns the bytes available to the engine per page.
func (st *Store) UsableSize() int { return st.cfg.PageSize - pageHdrLen }

// DirtyPages returns the number of dirty pages in the pool.
func (st *Store) DirtyPages() int {
	n := 0
	for _, pg := range st.pool {
		if pg.dirty {
			n++
		}
	}
	return n
}

func (st *Store) pageLBA(id int64) int64 { return st.pageBase + id*int64(st.pageSec) }

// Get returns the page with the given id, reading it from the device on a
// pool miss (which may block p). The returned pointer is valid until the
// next potentially-blocking call; see Page.
func (st *Store) Get(p *sim.Proc, id int64) (*Page, error) {
	if id < 0 || id >= st.numPages {
		return nil, fmt.Errorf("%w: page %d of %d", ErrNoSpace, id, st.numPages)
	}
	st.clock++
	if pg, ok := st.pool[id]; ok {
		pg.tick = st.clock
		st.stats.Hits.Inc()
		return pg, nil
	}
	st.stats.Misses.Inc()
	if id > st.maxWritten {
		// Known-fresh page: no device read, and no park — insert directly.
		pg := &Page{ID: id, data: make([]byte, st.UsableSize()), tick: st.clock}
		st.maybeEvict()
		st.pool[id] = pg
		return pg, nil
	}
	raw, err := st.dev.Read(p, st.pageLBA(id), st.pageSec)
	if err != nil {
		return nil, err
	}
	st.stats.Reads.Inc()
	pg, err := st.decode(id, raw)
	if err != nil {
		return nil, err
	}
	// The read parked p; someone else may have loaded the page meanwhile.
	if existing, ok := st.pool[id]; ok {
		existing.tick = st.clock
		return existing, nil
	}
	st.maybeEvict()
	pg.tick = st.clock
	st.pool[id] = pg
	return pg, nil
}

// decode validates and unwraps a raw page image. All-zero images are fresh,
// never-written pages.
func (st *Store) decode(id int64, raw []byte) (*Page, error) {
	if binary.LittleEndian.Uint32(raw[0:4]) == 0 {
		allZero := true
		for _, b := range raw {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return &Page{ID: id, data: make([]byte, st.UsableSize())}, nil
		}
	}
	if binary.LittleEndian.Uint32(raw[0:4]) != pageMagic ||
		int64(binary.LittleEndian.Uint64(raw[4:12])) != id {
		return nil, fmt.Errorf("%w: page %d: bad header", ErrBadPage, id)
	}
	want := binary.LittleEndian.Uint32(raw[20:24])
	crc := crc32.NewIEEE()
	crc.Write(raw[:20])
	crc.Write(raw[pageHdrLen:])
	if crc.Sum32() != want {
		return nil, fmt.Errorf("%w: page %d", ErrBadPage, id)
	}
	return &Page{
		ID:   id,
		LSN:  binary.LittleEndian.Uint64(raw[12:20]),
		data: append([]byte(nil), raw[pageHdrLen:]...),
	}, nil
}

// encode wraps a page into its on-disk image.
func (st *Store) encode(pg *Page) []byte {
	raw := make([]byte, st.cfg.PageSize)
	binary.LittleEndian.PutUint32(raw[0:4], pageMagic)
	binary.LittleEndian.PutUint64(raw[4:12], uint64(pg.ID))
	binary.LittleEndian.PutUint64(raw[12:20], pg.LSN)
	copy(raw[pageHdrLen:], pg.data)
	crc := crc32.NewIEEE()
	crc.Write(raw[:20])
	crc.Write(raw[pageHdrLen:])
	binary.LittleEndian.PutUint32(raw[20:24], crc.Sum32())
	return raw
}

// maybeEvict drops the least-recently-used clean pages while the pool is
// over its soft bound. Dirty pages are never evicted (no-steal).
func (st *Store) maybeEvict() {
	for len(st.pool) >= st.cfg.PoolPages {
		var victim *Page
		for _, pg := range st.pool {
			if pg.dirty {
				continue
			}
			if victim == nil || pg.tick < victim.tick {
				victim = pg
			}
		}
		if victim == nil {
			return // everything dirty: the pool grows until a checkpoint
		}
		delete(st.pool, victim.ID)
		st.stats.Evictions.Inc()
	}
}

// MarkDirty flags a pooled page for the next checkpoint. Call it in the
// same non-blocking section as the mutation it covers.
func (st *Store) MarkDirty(id int64) {
	if pg, ok := st.pool[id]; ok {
		pg.dirty = true
		pg.ver++
	}
}

// Checkpoint writes every dirty page to the device, torn-write-safely:
// each batch goes to the double-write area first (sequential, FUA), the
// summary is marked valid, then the pages are written in place and the
// summary cleared. A power cut at any instant leaves either the old page,
// the new page, or a restorable double-write copy.
func (st *Store) Checkpoint(p *sim.Proc) error {
	var dirty []*Page
	for _, pg := range st.pool {
		if pg.dirty {
			dirty = append(dirty, pg)
		}
	}
	// Deterministic order (map iteration is not).
	for i := 1; i < len(dirty); i++ {
		for j := i; j > 0 && dirty[j].ID < dirty[j-1].ID; j-- {
			dirty[j], dirty[j-1] = dirty[j-1], dirty[j]
		}
	}
	// Snapshot each page's version: a page modified while its batch is in
	// flight stays dirty for the next checkpoint — clearing it would let
	// eviction resurrect the stale on-disk copy.
	vers := make([]uint64, len(dirty))
	for i, pg := range dirty {
		vers[i] = pg.ver
	}
	for start := 0; start < len(dirty); start += st.cfg.DWSlots {
		end := start + st.cfg.DWSlots
		if end > len(dirty) {
			end = len(dirty)
		}
		if err := st.checkpointBatch(p, dirty[start:end]); err != nil {
			return err
		}
		for i := start; i < end; i++ {
			if dirty[i].ver == vers[i] {
				dirty[i].dirty = false
			}
		}
	}
	st.stats.Checkpoints.Inc()
	return nil
}

func (st *Store) checkpointBatch(p *sim.Proc, batch []*Page) error {
	if len(batch) == 0 {
		return nil
	}
	// 1. Stream encoded images to the double-write slots.
	images := make([][]byte, len(batch))
	blob := make([]byte, 0, len(batch)*st.cfg.PageSize)
	for i, pg := range batch {
		images[i] = st.encode(pg)
		blob = append(blob, images[i]...)
	}
	if err := st.dev.Write(p, dwSlotBase, blob, true); err != nil {
		return err
	}
	st.stats.Writes.Add(int64(len(batch)))
	// 2. Publish the summary: from here on, a crash restores from the DW
	// copies. The summary may span several sectors; its validity comes
	// from the CRC, so a torn summary write is simply "never valid" and
	// the untouched in-place pages stand.
	need := 12 + len(batch)*8
	ss := st.dev.SectorSize()
	sum := make([]byte, (need+ss-1)/ss*ss)
	binary.LittleEndian.PutUint32(sum[0:4], dwMagic)
	binary.LittleEndian.PutUint32(sum[4:8], uint32(len(batch)))
	for i, pg := range batch {
		binary.LittleEndian.PutUint64(sum[8+i*8:], uint64(pg.ID))
	}
	binary.LittleEndian.PutUint32(sum[8+len(batch)*8:], crc32.ChecksumIEEE(sum[:8+len(batch)*8]))
	if err := st.dev.Write(p, dwHdrSector, sum, true); err != nil {
		return err
	}
	// 3. Write the pages in place.
	for i, pg := range batch {
		if err := st.dev.Write(p, st.pageLBA(pg.ID), images[i], true); err != nil {
			return err
		}
		st.stats.Writes.Inc()
		if pg.ID > st.maxWritten {
			st.maxWritten = pg.ID
		}
	}
	// 4. Retire the summary.
	return st.dev.Write(p, dwHdrSector, make([]byte, st.dev.SectorSize()), true)
}

// RecoverDoubleWrite runs at boot: if the double-write summary is valid, a
// crash interrupted step 3 of a checkpoint batch; restore every slot page
// in place. Returns the number of pages restored.
func (st *Store) RecoverDoubleWrite(p *sim.Proc) (int, error) {
	sum, err := st.dev.Read(p, dwHdrSector, dwSlotBase-dwHdrSector)
	if err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(sum[0:4]) != dwMagic {
		return 0, nil
	}
	count := int(binary.LittleEndian.Uint32(sum[4:8]))
	if count <= 0 || count > st.cfg.DWSlots || 8+count*8+4 > len(sum) {
		return 0, fmt.Errorf("%w: double-write summary count %d", ErrBadControl, count)
	}
	if crc32.ChecksumIEEE(sum[:8+count*8]) != binary.LittleEndian.Uint32(sum[8+count*8:]) {
		// The summary itself is torn: it never became valid, so the
		// in-place pages were never touched. Nothing to do.
		return 0, st.dev.Write(p, dwHdrSector, make([]byte, st.dev.SectorSize()), true)
	}
	restored := 0
	for i := 0; i < count; i++ {
		id := int64(binary.LittleEndian.Uint64(sum[8+i*8:]))
		img, err := st.dev.Read(p, dwSlotBase+int64(i*st.pageSec), st.pageSec)
		if err != nil {
			return restored, err
		}
		if _, err := st.decode(id, img); err != nil {
			return restored, fmt.Errorf("pagestore: double-write slot %d corrupt: %v", i, err)
		}
		if err := st.dev.Write(p, st.pageLBA(id), img, true); err != nil {
			return restored, err
		}
		if id > st.maxWritten {
			st.maxWritten = id
		}
		restored++
	}
	st.stats.DWRestores.Add(int64(restored))
	return restored, st.dev.Write(p, dwHdrSector, make([]byte, st.dev.SectorSize()), true)
}

// Control block: an engine-owned blob of at most SectorSize−12 bytes,
// written atomically (single sector).

// MaxControlLen returns the largest blob WriteControl accepts.
func (st *Store) MaxControlLen() int { return st.dev.SectorSize() - 12 }

// WriteControl atomically persists the engine's recovery metadata.
func (st *Store) WriteControl(p *sim.Proc, blob []byte) error {
	if len(blob) > st.MaxControlLen() {
		return fmt.Errorf("pagestore: control blob %d bytes exceeds %d", len(blob), st.MaxControlLen())
	}
	sec := make([]byte, st.dev.SectorSize())
	binary.LittleEndian.PutUint32(sec[0:4], ctrlMagic)
	binary.LittleEndian.PutUint32(sec[4:8], uint32(len(blob)))
	copy(sec[12:], blob)
	binary.LittleEndian.PutUint32(sec[8:12], crc32.ChecksumIEEE(sec[12:12+len(blob)]))
	return st.dev.Write(p, 0, sec, true)
}

// ReadControl returns the last-written control blob, or nil if none was
// ever written.
func (st *Store) ReadControl(p *sim.Proc) ([]byte, error) {
	sec, err := st.dev.Read(p, 0, 1)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(sec[0:4]) != ctrlMagic {
		return nil, nil
	}
	n := int(binary.LittleEndian.Uint32(sec[4:8]))
	if n > st.MaxControlLen() {
		return nil, fmt.Errorf("%w: length %d", ErrBadControl, n)
	}
	if crc32.ChecksumIEEE(sec[12:12+n]) != binary.LittleEndian.Uint32(sec[8:12]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrBadControl)
	}
	return append([]byte(nil), sec[12:12+n]...), nil
}

// DropCaches empties the buffer pool (for tests simulating a cold restart
// on the same Store object). Dirty pages are discarded — callers model a
// crash, where that is the point.
func (st *Store) DropCaches() {
	st.pool = make(map[int64]*Page)
}
