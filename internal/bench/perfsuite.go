// Perf suite: the fixed hot-path benchmark trajectory this repository
// holds itself accountable to. Unlike the experiments (which reproduce the
// paper's tables on virtual time), the perf suite measures the *simulator
// itself* — nanoseconds, allocations, and simulated events per wall-clock
// second on the commit path — and serialises the results as JSON so each
// perf-focused PR can commit a before/after BENCH_<date>.json pair.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/rig"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PerfCase is one measured hot-path microbenchmark or workload run.
type PerfCase struct {
	Name string `json:"name"`
	// Micro-benchmark figures (testing.Benchmark).
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
	// Simulator throughput: kernel events executed per wall-clock second
	// while this case ran.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Workload figures (virtual-time runs).
	VirtualTPS  float64 `json:"virtual_tps,omitempty"`
	Committed   int64   `json:"committed,omitempty"`
	AllocsPerTx float64 `json:"allocs_per_tx,omitempty"`
	// Replicated-path figures (commit_quorum1, ship_throughput).
	QuorumP50Ns      float64 `json:"quorum_p50_ns,omitempty"`       // quorum-wait barrier p50
	NetMsgsPerRecord float64 `json:"net_msgs_per_record,omitempty"` // fabric messages per shipped record
	// Sharded-scaling figures (shard_scaling_N): the shard count and the
	// fleet-wide commit-ack p50 (per-shard histograms merged).
	Shards      int     `json:"shards,omitempty"`
	CommitP50Ns float64 `json:"commit_p50_ns,omitempty"`
	// Failover figure (failover_takeover): the client-visible takeover
	// window in virtual time (leader loss → first commit on the promoted
	// leader).
	TakeoverNs float64 `json:"takeover_ns,omitempty"`
}

// PerfSuite is the serialised result of one suite run.
type PerfSuite struct {
	Date  string     `json:"date"`
	Label string     `json:"label,omitempty"`
	Go    string     `json:"go"`
	Quick bool       `json:"quick"`
	Seed  int64      `json:"seed"`
	Cases []PerfCase `json:"cases"`
}

// WriteJSON serialises the suite.
func (s *PerfSuite) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// RunPerfSuite executes the fixed suite. Quick shrinks the workload runs to
// smoke-test size (CI); the full suite takes tens of seconds.
func RunPerfSuite(label string, quick bool, seed int64, progress io.Writer) (*PerfSuite, error) {
	if seed == 0 {
		seed = 1
	}
	suite := &PerfSuite{
		Date:  time.Now().UTC().Format("2006-01-02"),
		Label: label,
		Go:    runtime.Version(),
		Quick: quick,
		Seed:  seed,
	}
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}

	type microCase struct {
		name string
		run  func() (PerfCase, error)
	}
	dur, warmup := 4*time.Second, 500*time.Millisecond
	if quick {
		dur, warmup = 500*time.Millisecond, 50*time.Millisecond
	}
	cases := []microCase{
		{"sim_sleep_wake", func() (PerfCase, error) { return perfSleepWake(seed) }},
		{"logger_write_4k", func() (PerfCase, error) { return perfLoggerWrite(seed, false) }},
		{"logger_write_absorb", func() (PerfCase, error) { return perfLoggerWrite(seed, true) }},
		{"commit_rapilog", func() (PerfCase, error) { return perfCommit(seed, rig.RapiLog) }},
		{"commit_native_sync", func() (PerfCase, error) { return perfCommit(seed, rig.NativeSync) }},
		{"commit_quorum1", func() (PerfCase, error) { return perfCommitQuorum(seed) }},
		{"ship_throughput", func() (PerfCase, error) { return perfShipThroughput(seed) }},
		{"tpcb_c8", func() (PerfCase, error) {
			return perfWorkload("tpcb_c8", &workload.TPCB{}, 8, dur, warmup, seed)
		}},
		{"tpcc_c8", func() (PerfCase, error) {
			return perfWorkload("tpcc_c8", &workload.TPCC{Warehouses: 1, Customers: 10, Items: 200}, 8, dur, warmup, seed)
		}},
	}
	cases = append(cases, microCase{"failover_takeover", func() (PerfCase, error) {
		return perfFailoverTakeover(seed, quick)
	}})
	// Weak-scaling sweep: per-shard provisioning is constant (4 cores, 4
	// clients, 4 branches per shard), so ideal scaling is tps ∝ shards with
	// a flat commit p50.
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		cases = append(cases, microCase{fmt.Sprintf("shard_scaling_%d", n), func() (PerfCase, error) {
			return perfShardScaling(n, 4, dur, warmup, seed)
		}})
	}
	for _, c := range cases {
		pc, err := c.run()
		if err != nil {
			return nil, fmt.Errorf("perf case %s: %w", c.name, err)
		}
		pc.Name = c.name
		suite.Cases = append(suite.Cases, pc)
		logf("[perf] %-20s %10.0f ns/op  %7.1f allocs/op  %12.0f events/s  %8.0f tps",
			pc.Name, pc.NsPerOp, pc.AllocsPerOp, pc.EventsPerSec, pc.VirtualTPS)
	}
	return suite, nil
}

// microResult converts a testing.BenchmarkResult plus the sim-event counts
// the closure captured into a PerfCase.
func microResult(res testing.BenchmarkResult, events uint64, wall time.Duration) PerfCase {
	pc := PerfCase{
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: float64(res.MemAllocs) / float64(res.N),
		BytesPerOp:  float64(res.MemBytes) / float64(res.N),
	}
	if pc.NsPerOp > 0 {
		pc.OpsPerSec = 1e9 / pc.NsPerOp
	}
	if wall > 0 {
		pc.EventsPerSec = float64(events) / wall.Seconds()
	}
	return pc
}

// perfSleepWake measures the kernel's cheapest blocking round trip: one
// timer schedule, one park, one wake.
func perfSleepWake(seed int64) (PerfCase, error) {
	var events uint64
	var wall time.Duration
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		s := sim.New(seed)
		n := 0
		s.Spawn(nil, "sleeper", func(p *sim.Proc) {
			for ; n < b.N; n++ {
				p.Sleep(time.Microsecond)
			}
		})
		d0 := s.Dispatched()
		start := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		if err := s.Run(); err != nil {
			runErr = err
			return
		}
		wall = time.Since(start)
		events = s.Dispatched() - d0
	})
	return microResult(res, events, wall), runErr
}

// perfLoggerWrite measures one RapiLog buffered write — the fast path every
// commit takes. With absorb set every write hits the same block, exercising
// the in-place absorption path; otherwise writes walk distinct blocks
// (fresh-entry path).
func perfLoggerWrite(seed int64, absorb bool) (PerfCase, error) {
	var events uint64
	var wall time.Duration
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		r, err := rig.New(rig.Config{Seed: seed, Mode: rig.RapiLog, NoDaemons: true})
		if err != nil {
			runErr = err
			return
		}
		data := make([]byte, 4096)
		blocks := r.Logger.Sectors()/8 - 1
		n := 0
		r.S.Spawn(r.Plat.Domain(), "w", func(p *sim.Proc) {
			for ; n < b.N; n++ {
				lba := int64(n) % blocks * 8
				if absorb {
					lba = 0
				}
				if err := r.Logger.Write(p, lba, data, false); err != nil {
					runErr = err
					return
				}
			}
		})
		d0 := r.S.Dispatched()
		start := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		if err := r.S.RunFor(1000 * time.Hour); err != nil {
			runErr = err
			return
		}
		wall = time.Since(start)
		events = r.S.Dispatched() - d0
		if n != b.N {
			runErr = fmt.Errorf("completed %d/%d writes", n, b.N)
		}
	})
	return microResult(res, events, wall), runErr
}

// perfCommit measures a full engine commit (WAL append + force + apply)
// through the given mode's log path.
func perfCommit(seed int64, mode rig.Mode) (PerfCase, error) {
	var events uint64
	var wall time.Duration
	var runErr error
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%04d", i)
	}
	res := testing.Benchmark(func(b *testing.B) {
		r, err := rig.New(rig.Config{Seed: seed, Mode: mode, NoDaemons: true})
		if err != nil {
			runErr = err
			return
		}
		n := 0
		r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
			e, err := r.Boot(p)
			if err != nil {
				runErr = err
				return
			}
			for ; n < b.N; n++ {
				tx := e.Begin(p)
				if err := tx.Put(keys[n%len(keys)], []byte("v")); err != nil {
					runErr = err
					return
				}
				if err := tx.Commit(); err != nil {
					runErr = err
					return
				}
			}
		})
		d0 := r.S.Dispatched()
		start := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		if err := r.S.RunFor(10000 * time.Hour); err != nil {
			runErr = err
			return
		}
		wall = time.Since(start)
		events = r.S.Dispatched() - d0
		if runErr == nil && n != b.N {
			runErr = fmt.Errorf("completed %d/%d commits", n, b.N)
		}
	})
	return microResult(res, events, wall), runErr
}

// perfCommitQuorum measures a full engine commit through the replicated
// rig with AckQuorum(1): WAL append + force into the RapiLog buffer, plus
// the quorum ack barrier (ship to 2 standbys, wait for the first cumulative
// ack). Alongside ns/op it reports the quorum-wait p50 and how many fabric
// messages (records + acks, both directions) each shipped record cost —
// the figure frame batching exists to shrink.
func perfCommitQuorum(seed int64) (PerfCase, error) {
	var events uint64
	var wall time.Duration
	var runErr error
	var quorumP50 time.Duration
	var netMsgs, shipped int64
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%04d", i)
	}
	res := testing.Benchmark(func(b *testing.B) {
		r, err := rig.New(rig.Config{Seed: seed, Mode: rig.RapiLogReplica, NoDaemons: true,
			AckPolicy: core.AckQuorum(1)})
		if err != nil {
			runErr = err
			return
		}
		n := 0
		r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
			e, err := r.Boot(p)
			if err != nil {
				runErr = err
				return
			}
			for ; n < b.N; n++ {
				tx := e.Begin(p)
				if err := tx.Put(keys[n%len(keys)], []byte("v")); err != nil {
					runErr = err
					return
				}
				if err := tx.Commit(); err != nil {
					runErr = err
					return
				}
			}
		})
		d0 := r.S.Dispatched()
		start := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		if err := r.S.RunFor(10000 * time.Hour); err != nil {
			runErr = err
			return
		}
		wall = time.Since(start)
		events = r.S.Dispatched() - d0
		if runErr == nil && n != b.N {
			runErr = fmt.Errorf("completed %d/%d commits", n, b.N)
		}
		reg := r.Obs.Registry()
		quorumP50 = reg.Histogram("rapilog.quorum_wait").Quantile(0.5)
		netMsgs = reg.Counter("net.sent").Value()
		shipped = reg.Counter("repl.shipped").Value()
	})
	pc := microResult(res, events, wall)
	pc.QuorumP50Ns = float64(quorumP50.Nanoseconds())
	if shipped > 0 {
		pc.NetMsgsPerRecord = float64(netMsgs) / float64(shipped)
	}
	return pc, runErr
}

// perfShipThroughput measures the raw shipping path with no engine in
// front: a sim + fabric + shipper + 2 standbys, streaming sector records
// with a WaitQuorum(1) backpressure point every 256 records so retention
// and acks cycle the way a real deployment's do. ns/op and allocs/op are
// per shipped record; net_msgs_per_record counts every fabric message the
// stream cost (records and acks) per record.
func perfShipThroughput(seed int64) (PerfCase, error) {
	var events uint64
	var wall time.Duration
	var runErr error
	var netMsgs int64
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i)
	}
	res := testing.Benchmark(func(b *testing.B) {
		s := sim.New(seed)
		reg := obs.NewRegistry()
		fab := netsim.New(s, netsim.Config{Seed: seed + 1, Reg: reg})
		cfg := replica.Config{Reg: reg}
		names := []string{"standby0", "standby1"}
		for _, name := range names {
			replica.NewStandby(s, fab, name, cfg)
		}
		sh := replica.NewShipper(s, fab, nil, 1, names, cfg)
		n := 0
		s.Spawn(nil, "shipper", func(p *sim.Proc) {
			for ; n < b.N; n++ {
				seq := sh.Ship(int64(n%4096)*8, data)
				if n%256 == 255 {
					sh.WaitQuorum(p, seq, 1)
				}
			}
			if last := sh.LastSeq(); last > 0 {
				sh.WaitQuorum(p, last, 1)
			}
		})
		d0 := s.Dispatched()
		start := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		if err := s.RunFor(10000 * time.Hour); err != nil {
			runErr = err
			return
		}
		wall = time.Since(start)
		events = s.Dispatched() - d0
		if runErr == nil && n != b.N {
			runErr = fmt.Errorf("shipped %d/%d records", n, b.N)
		}
		netMsgs = reg.Counter("net.sent").Value()
	})
	pc := microResult(res, events, wall)
	if res.N > 0 {
		pc.NetMsgsPerRecord = float64(netMsgs) / float64(res.N)
	}
	return pc, runErr
}

// perfShardScaling runs the weak-scaling point for one shard count: an
// n-shard deployment provisioned per shard (4 cores, clientsPerShard
// clients, 4 TPC-B branches each, its own spindle), driven by the
// hash-partitioned workload. Reports fleet virtual TPS and the merged
// commit-ack p50 — the pair the scaling claim is judged on.
func perfShardScaling(shards, clientsPerShard int, dur, warmup time.Duration, seed int64) (PerfCase, error) {
	// SSD shards: on the measured PSU the N-aware sizing rule rejects 8 HDD
	// dump zones (2·8·~16ms of positioning overruns the ~250ms hold-up
	// budget) — which is the rule doing its job, not a bench failure. SSDs
	// are both the realistic scale-out hardware and well inside the budget.
	sh, err := rig.NewSharded(rig.Config{Seed: seed, Cores: 4 * shards, Disk: rig.DiskSSD}, shards)
	if err != nil {
		return PerfCase{}, err
	}
	base := workload.TPCB{Branches: 4 * shards, Tellers: 4, Accounts: 200}
	parts, err := workload.PartitionTPCB(base, sh.Router)
	if err != nil {
		return PerfCase{}, err
	}
	var res workload.ShardedResult
	var runErr error
	var events uint64
	var wall time.Duration
	done := sh.S.NewEvent("shard_scaling.done")
	sh.S.Spawn(nil, "perf", func(p *sim.Proc) {
		defer done.Fire()
		engines, err := sh.BootAll(p)
		if err != nil {
			runErr = fmt.Errorf("boot: %w", err)
			return
		}
		doms := make([]*sim.Domain, shards)
		ws := make([]workload.Workload, shards)
		for i, e := range engines {
			if err := parts[i].Load(p, e); err != nil {
				runErr = fmt.Errorf("shard %d load: %w", i, err)
				return
			}
			doms[i] = sh.Shards[i].Plat.Domain()
			ws[i] = parts[i]
		}
		d0 := sh.S.Dispatched()
		start := time.Now()
		res, runErr = workload.RunShardedClients(p, doms, engines, ws, nil, workload.RunnerConfig{
			Clients: clientsPerShard, Duration: dur, Warmup: warmup,
		})
		wall = time.Since(start)
		events = sh.S.Dispatched() - d0
	})
	if err := sh.S.RunUntilEvent(done); err != nil {
		return PerfCase{}, err
	}
	if runErr != nil {
		return PerfCase{}, runErr
	}
	pc := PerfCase{
		Shards:     shards,
		VirtualTPS: res.Total.TPS(),
		Committed:  res.Total.Committed,
	}
	if wall > 0 {
		pc.EventsPerSec = float64(events) / wall.Seconds()
	}
	p50 := shard.RollupHistogram(sh.Obs.Registry(), shards, "engine.commit.ack_latency").Quantile(0.5)
	pc.CommitP50Ns = float64(p50.Nanoseconds())
	return pc, nil
}

// perfWorkload runs a closed-loop client pool for a fixed virtual duration
// on the RapiLog deployment and reports virtual TPS alongside how much of
// that virtual activity a wall-clock second executed.
func perfWorkload(name string, wl workload.Workload, clients int, dur, warmup time.Duration, seed int64) (PerfCase, error) {
	r, err := rig.New(rig.Config{Seed: seed, Mode: rig.RapiLog})
	if err != nil {
		return PerfCase{}, err
	}
	var res workload.RunResult
	var runErr error
	var events uint64
	var wall time.Duration
	var mallocs uint64
	done := r.S.NewEvent(name + ".done")
	r.S.Spawn(r.Plat.Domain(), "perf", func(p *sim.Proc) {
		defer done.Fire()
		e, err := r.Boot(p)
		if err != nil {
			runErr = fmt.Errorf("boot: %w", err)
			return
		}
		if err := wl.Load(p, e); err != nil {
			runErr = fmt.Errorf("load: %w", err)
			return
		}
		// Measure only the measurement interval: the loaders above allocate
		// heavily and would swamp the per-transaction figure.
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		d0 := r.S.Dispatched()
		start := time.Now()
		res = workload.RunClients(p, r.Plat.Domain(), e, wl, workload.RunnerConfig{
			Clients: clients, Duration: dur, Warmup: warmup,
		})
		wall = time.Since(start)
		events = r.S.Dispatched() - d0
		runtime.ReadMemStats(&ms1)
		mallocs = ms1.Mallocs - ms0.Mallocs
	})
	if err := r.S.RunUntilEvent(done); err != nil {
		return PerfCase{}, err
	}
	if runErr != nil {
		return PerfCase{}, runErr
	}
	pc := PerfCase{
		VirtualTPS: res.TPS(),
		Committed:  res.Committed,
	}
	if wall > 0 {
		pc.EventsPerSec = float64(events) / wall.Seconds()
	}
	if res.Committed > 0 {
		pc.AllocsPerTx = float64(mallocs) / float64(res.Committed)
	}
	return pc, nil
}

// perfFailoverTakeover measures the HA takeover path end to end: one
// 3-node cluster under session load, the leader's plug pulled, the
// coordinator fencing and promoting a standby. Reports the client-visible
// takeover window (virtual time) and the simulator's event throughput
// while running the full cluster — the cost of the HA machinery itself.
func perfFailoverTakeover(seed int64, quick bool) (PerfCase, error) {
	c, err := rig.NewCluster(rig.ClusterConfig{
		Nodes: 3,
		Rig:   rig.Config{Seed: seed, AckPolicy: core.AckQuorum(1)},
	})
	if err != nil {
		return PerfCase{}, err
	}
	s := c.S
	dir := workload.NewDirectory()
	c.OnPromote = func(gen int, name string, e *engine.Engine, dom *sim.Domain) {
		dir.Update(gen, name, e, dom)
	}
	w := &workload.Stress{ValueSize: 1000}
	var runErr error
	var cutAt time.Duration
	s.Spawn(c.LeaderRig().Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := c.LeaderRig().Boot(p)
		if err != nil {
			runErr = err
			return
		}
		dir.Update(1, c.LeaderName(), e, c.LeaderRig().Plat.Domain())
	})
	// Sessions run "forever"; the case ends at the first commit against the
	// promoted leader (the takeover window is the measurement, and it is
	// dominated by WAL redo on the promoted node, which scales with the
	// pre-cut load).
	s.Spawn(nil, "sessions", func(p *sim.Proc) {
		workload.RunSessions(p, dir, w, workload.SessionConfig{
			Clients: 4, Duration: 10 * time.Minute,
			Reg: c.Obs.Registry(), Trace: c.Obs.Tracer(),
		})
	})
	done := s.NewEvent("perf.failover.done")
	s.Spawn(nil, "operator", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		cutAt = p.Now().Duration()
		c.CutLeaderPower()
		deadline := p.Now().Add(3 * time.Minute)
		for p.Now() < deadline {
			if _, ok := dir.FirstSuccess(2); ok {
				break
			}
			p.Sleep(50 * time.Millisecond)
		}
		done.Fire()
	})

	d0 := s.Dispatched()
	start := time.Now()
	if err := s.RunUntilEvent(done); err != nil {
		return PerfCase{}, err
	}
	wall := time.Since(start)
	events := s.Dispatched() - d0
	if runErr != nil {
		return PerfCase{}, runErr
	}
	first, ok := dir.FirstSuccess(2)
	if !ok || first <= cutAt {
		return PerfCase{}, fmt.Errorf("failover_takeover: no commit on the promoted leader (failovers %d, err %v)",
			c.Coord.Failovers(), c.Coord.LastErr())
	}
	pc := PerfCase{TakeoverNs: float64((first - cutAt).Nanoseconds())}
	if wall > 0 {
		pc.EventsPerSec = float64(events) / wall.Seconds()
	}
	return pc, nil
}
