package bench

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/rig"
)

// runA4: dedicated vs shared log spindle. The classic deployment fix for
// sync-commit pain is a dedicated log disk (no arm contention with data
// traffic). This ablation shows (a) how much that buys the synchronous
// baseline, and (b) that RapiLog on one shared disk already beats the
// two-disk synchronous setup — hardware the verified buffer replaces.
func runA4(opts Options) (*Report, error) {
	opts.applyDefaults()
	clients := 8
	warmup, dur := 2*time.Second, 10*time.Second
	if opts.Quick {
		warmup, dur = 500*time.Millisecond, 2*time.Second
	}

	table := metrics.NewTable("configuration", "log disk", "tps")
	rep := newReport("a4", "ablation: dedicated log spindle vs RapiLog",
		"this reproduction's ablation of the hardware-replacement claim", table)

	type cse struct {
		mode      rig.Mode
		dedicated bool
	}
	for _, c := range []cse{
		{rig.NativeSync, false},
		{rig.NativeSync, true},
		{rig.RapiLog, false},
		{rig.RapiLog, true},
	} {
		// Commit-stress with aggressive checkpoints isolates exactly the
		// contention a dedicated log spindle removes: the disk arm torn
		// between synchronous log forces (or the RapiLog drain) and
		// checkpoint page writes.
		cfg := rig.Config{
			Seed:             opts.Seed,
			Mode:             c.mode,
			DedicatedLogDisk: c.dedicated,
			CheckpointEvery:  time.Second,
		}
		res, _, _, err := stressRun(cfg, clients, warmup, dur, 512)
		if err != nil {
			return nil, fmt.Errorf("a4 %s/dedicated=%v: %w", c.mode, c.dedicated, err)
		}
		diskLabel := "shared"
		if c.dedicated {
			diskLabel = "dedicated"
		}
		key := fmt.Sprintf("%s/%s", c.mode, diskLabel)
		table.AddRow(string(c.mode), diskLabel, fmt.Sprintf("%.0f", res.TPS()))
		rep.Values[key] = res.TPS()
		opts.progressf("a4: %-12s %-9s %8.0f tps", c.mode, diskLabel, res.TPS())
	}
	rep.Notes = append(rep.Notes,
		"expected shape: a dedicated spindle helps native-sync (less arm contention) but",
		"rapilog on a single shared disk still beats the two-disk synchronous deployment —",
		"the verified buffer substitutes for the extra hardware.")
	return rep, nil
}
