// Package bench implements the experiment harness: one runner per table
// and figure of the paper's evaluation (reconstructed — see DESIGN.md),
// plus this reproduction's own ablations. Each experiment builds fresh
// deterministic deployments, drives them on virtual time, and emits both a
// human-readable table and named scalar values that tests and
// EXPERIMENTS.md assertions consume.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/rig"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options tune an experiment run.
type Options struct {
	// Quick shrinks sweeps and durations for tests and testing.B.
	Quick bool
	// Seed is the base deterministic seed; default 1.
	Seed int64
	// Progress, if non-nil, receives one line per completed data point.
	Progress io.Writer
}

func (o *Options) applyDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o Options) progressf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// Report is an experiment's output.
type Report struct {
	ID     string
	Title  string
	Stands string // which paper table/figure this stands in for
	Table  *metrics.Table
	Notes  []string
	// Values holds named scalars ("rapilog/c=8" → TPS) for programmatic
	// shape checks.
	Values map[string]float64
}

func newReport(id, title, stands string, table *metrics.Table) *Report {
	return &Report{ID: id, Title: title, Stands: stands, Table: table, Values: make(map[string]float64)}
}

// Render writes the report in its human-readable form.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n", r.ID, r.Title)
	fmt.Fprintf(w, "   (stands in for: %s)\n\n", r.Stands)
	io.WriteString(w, r.Table.String())
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	io.WriteString(w, "\n")
}

// Experiment couples an id to its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(opts Options) (*Report, error)
}

// All lists the experiments in evaluation order.
var All = []Experiment{
	{"e1", "TPC-C throughput vs clients, PG-like engine, HDD", runE1},
	{"e2", "TPC-C throughput vs clients, MY-like engine, HDD", runE2},
	{"e3", "TPC-C throughput vs clients, CX-like engine, HDD", runE3},
	{"e4", "virtualisation overhead, CPU-bound TPC-C", runE4},
	{"e5", "PSU hold-up vs emergency-flush requirement", runE5},
	{"e6", "power-failure trials under load (plug pulls)", runE6},
	{"e7", "commit latency distribution", runE7},
	{"e8", "buffer bound sweep and throttling", runE8},
	{"e9", "guest-OS crash trials under load", runE9},
	{"e10", "raw device write microbenchmark", runE10},
	{"a1", "ablation: group commit (commit_delay) vs RapiLog", runA1},
	{"a2", "ablation: E1 on SSD substrate", runA2},
	{"a3", "ablation: violating the buffer sizing rule", runA3},
	{"a4", "ablation: dedicated log spindle vs RapiLog", runA4},
	{"a5", "TPC-B (pgbench) throughput vs clients", runA5},
	{"a6", "hardware alternatives: NVRAM log vs RapiLog", runA6},
	{"a7", "recovery time vs checkpoint age", runA7},
	{"a8", "media faults under load: retry, degrade, lose nothing", runA8},
	{"a9", "replicated durability: quorum acks under partition + power-fail", runA9},
	{"a11", "high availability: epoch-fenced standby promotion", runA11},
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

// IDs returns all experiment ids in order.
func IDs() []string {
	ids := make([]string, len(All))
	for i, e := range All {
		ids[i] = e.ID
	}
	return ids
}

// drive steps the simulation until ev fires, without running idle daemon
// ticks past the finish.
func drive(s *sim.Sim, ev *sim.Event) error { return s.RunUntilEvent(ev) }

// tpccResult is one measured throughput point.
type tpccResult struct {
	res workload.RunResult
	err error
}

// measureTPCC boots a deployment, loads TPC-C, and measures saturation
// throughput with the given client count.
func measureTPCC(cfg rig.Config, wl *workload.TPCC, clients int, warmup, dur time.Duration) (workload.RunResult, error) {
	r, err := rig.New(cfg)
	if err != nil {
		return workload.RunResult{}, err
	}
	var out tpccResult
	done := r.S.NewEvent("bench.done")
	r.S.Spawn(r.Plat.Domain(), "bench", func(p *sim.Proc) {
		defer done.Fire()
		e, err := r.Boot(p)
		if err != nil {
			out.err = fmt.Errorf("boot: %w", err)
			return
		}
		if err := wl.Load(p, e); err != nil {
			out.err = fmt.Errorf("load: %w", err)
			return
		}
		out.res = workload.RunClients(p, r.Plat.Domain(), e, wl, workload.RunnerConfig{
			Clients: clients, Duration: dur, Warmup: warmup,
		})
	})
	if err := drive(r.S, done); err != nil {
		return workload.RunResult{}, err
	}
	return out.res, out.err
}

// throughputSweep runs the E1/E2/E3/A2 shape: mode × client-count grid.
func throughputSweep(id, title, stands string, pers engine.Personality, diskKind rig.DiskKind, opts Options) (*Report, error) {
	opts.applyDefaults()
	// Enough warehouses that row contention (especially Payment's
	// warehouse-YTD update) does not mask the commit path under study.
	clientCounts := []int{1, 2, 4, 8, 16, 32, 64}
	warmup, dur := 2*time.Second, 10*time.Second
	wlScale := func() *workload.TPCC { return &workload.TPCC{Warehouses: 8, Districts: 10, Customers: 30, Items: 400} }
	if opts.Quick {
		clientCounts = []int{1, 8, 32}
		warmup, dur = 500*time.Millisecond, 2*time.Second
		wlScale = func() *workload.TPCC { return &workload.TPCC{Warehouses: 4, Districts: 4, Customers: 10, Items: 100} }
	}

	header := []string{"clients"}
	for _, m := range rig.Modes {
		header = append(header, string(m))
	}
	table := metrics.NewTable(header...)
	rep := newReport(id, title, stands, table)

	for _, c := range clientCounts {
		row := []string{fmt.Sprintf("%d", c)}
		for _, mode := range rig.Modes {
			cfg := rig.Config{
				Seed:            opts.Seed + int64(c)*101,
				Mode:            mode,
				Personality:     pers,
				Disk:            diskKind,
				CheckpointEvery: 20 * time.Second,
			}
			res, err := measureTPCC(cfg, wlScale(), c, warmup, dur)
			if err != nil {
				return nil, fmt.Errorf("%s %s c=%d: %w", id, mode, c, err)
			}
			row = append(row, fmt.Sprintf("%.0f", res.TPS()))
			rep.Values[fmt.Sprintf("%s/c=%d", mode, c)] = res.TPS()
			opts.progressf("%s: %-12s c=%-3d %8.0f tps", id, mode, c, res.TPS())
		}
		table.AddRow(row...)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: rapilog ≈ native-async ≫ native-sync at low client counts;",
		"group commit narrows the gap as clients grow; rapilog never below virt-sync.")
	return rep, nil
}

func runE1(opts Options) (*Report, error) {
	return throughputSweep("e1", "TPC-C throughput vs clients, PG-like engine, HDD",
		"per-engine throughput figure (PostgreSQL)", engine.PGLike, rig.DiskHDD, opts)
}

func runE2(opts Options) (*Report, error) {
	return throughputSweep("e2", "TPC-C throughput vs clients, MY-like engine, HDD",
		"per-engine throughput figure (MySQL/InnoDB)", engine.MYLike, rig.DiskHDD, opts)
}

func runE3(opts Options) (*Report, error) {
	return throughputSweep("e3", "TPC-C throughput vs clients, CX-like engine, HDD",
		"per-engine throughput figure (commercial engine)", engine.CXLike, rig.DiskHDD, opts)
}

func runA2(opts Options) (*Report, error) {
	return throughputSweep("a2", "TPC-C throughput vs clients, PG-like engine, SSD",
		"flash discussion (§ non-rotating media)", engine.PGLike, rig.DiskSSD, opts)
}

// sortedKeys returns map keys in stable order (for deterministic notes).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
