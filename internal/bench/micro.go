package bench

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/sim"
)

// runE10: the raw-device microbenchmark that motivates the paper. Small
// synchronous writes to a rotating disk cost a rotation; sequential
// streaming gets track bandwidth; a volatile write cache is fast but
// (as every other experiment here shows) unsafe.
func runE10(opts Options) (*Report, error) {
	opts.applyDefaults()
	ops := 400
	if opts.Quick {
		ops = 60
	}
	table := metrics.NewTable("device", "pattern", "mean latency", "IOPS", "MB/s")
	rep := newReport("e10", "raw device write microbenchmark",
		"motivation figure: why sync log writes are slow", table)

	type devCase struct {
		name string
		mk   func(s *sim.Sim, hw *sim.Domain) disk.Device
	}
	cases := []devCase{
		{"hdd", func(s *sim.Sim, hw *sim.Domain) disk.Device {
			return disk.NewHDD(s, hw, disk.HDDConfig{})
		}},
		{"hdd+cache", func(s *sim.Sim, hw *sim.Domain) disk.Device {
			return disk.NewHDD(s, hw, disk.HDDConfig{Name: "hddc", WriteCache: true})
		}},
		{"ssd", func(s *sim.Sim, hw *sim.Domain) disk.Device {
			return disk.NewSSD(s, hw, disk.SSDConfig{})
		}},
	}
	patterns := []string{"rand-sync-4k", "seq-sync-4k", "seq-stream-256k"}

	for _, dc := range cases {
		for _, pat := range patterns {
			mean, iops, mbs, err := microRun(opts.Seed, dc.mk, pat, ops)
			if err != nil {
				return nil, fmt.Errorf("e10 %s/%s: %w", dc.name, pat, err)
			}
			table.AddRow(dc.name, pat,
				fmt.Sprint(mean.Round(time.Microsecond)),
				fmt.Sprintf("%.0f", iops),
				fmt.Sprintf("%.1f", mbs))
			rep.Values[dc.name+"/"+pat+"/iops"] = iops
			rep.Values[dc.name+"/"+pat+"/mean_us"] = float64(mean.Microseconds())
			opts.progressf("e10: %-10s %-16s %8.0f IOPS", dc.name, pat, iops)
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: random sync 4k on HDD ≈ seek+half-rotation (≈100 IOPS);",
		"sequential streaming ≈ track bandwidth; the cache hides latency — volatilely.")
	return rep, nil
}

func microRun(seed int64, mk func(*sim.Sim, *sim.Domain) disk.Device, pattern string, ops int) (time.Duration, float64, float64, error) {
	s := sim.New(seed)
	m := power.NewMachine(s, "m", 2, power.PSUMeasured)
	dev := mk(s, m.HardwareDomain())
	m.AttachDevice(dev)

	var mean time.Duration
	var iops, mbs float64
	var runErr error
	done := s.NewEvent("done")
	s.Spawn(nil, "io", func(p *sim.Proc) {
		defer done.Fire()
		hist := metrics.NewHistogram("lat")
		var bytesWritten int64
		start := p.Now()
		switch pattern {
		case "rand-sync-4k":
			buf := make([]byte, 4096)
			for i := 0; i < ops; i++ {
				lba := int64(s.Rand().Int63n(dev.Sectors() - 8))
				t0 := p.Now()
				if err := dev.Write(p, lba, buf, false); err != nil {
					runErr = err
					return
				}
				if err := dev.Flush(p); err != nil {
					runErr = err
					return
				}
				hist.Observe(p.Now().Sub(t0))
				bytesWritten += int64(len(buf))
			}
		case "seq-sync-4k":
			buf := make([]byte, 4096)
			for i := 0; i < ops; i++ {
				t0 := p.Now()
				if err := dev.Write(p, int64(i*8), buf, false); err != nil {
					runErr = err
					return
				}
				if err := dev.Flush(p); err != nil {
					runErr = err
					return
				}
				hist.Observe(p.Now().Sub(t0))
				bytesWritten += int64(len(buf))
			}
		case "seq-stream-256k":
			buf := make([]byte, 256<<10)
			for i := 0; i < ops/8+1; i++ {
				t0 := p.Now()
				if err := dev.Write(p, int64(i)*int64(len(buf)/512), buf, false); err != nil {
					runErr = err
					return
				}
				hist.Observe(p.Now().Sub(t0))
				bytesWritten += int64(len(buf))
			}
			if err := dev.Flush(p); err != nil {
				runErr = err
				return
			}
		default:
			runErr = fmt.Errorf("unknown pattern %q", pattern)
			return
		}
		elapsed := p.Now().Sub(start)
		mean = hist.Mean()
		if elapsed > 0 {
			iops = float64(hist.Count()) / elapsed.Seconds()
			mbs = float64(bytesWritten) / elapsed.Seconds() / 1e6
		}
	})
	if err := drive(s, done); err != nil {
		return 0, 0, 0, err
	}
	return mean, iops, mbs, runErr
}
