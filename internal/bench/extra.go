package bench

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/rig"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runA5: the TPC-B/pgbench-style sweep. Every transaction is a tiny
// account update that commits immediately — the most commit-latency-bound
// OLTP shape there is, and therefore RapiLog's best case among realistic
// workloads.
func runA5(opts Options) (*Report, error) {
	opts.applyDefaults()
	clientCounts := []int{1, 4, 16, 64}
	warmup, dur := 2*time.Second, 10*time.Second
	mkWl := func() *workload.TPCB { return &workload.TPCB{Branches: 8, Tellers: 10, Accounts: 2000} }
	if opts.Quick {
		clientCounts = []int{1, 16}
		warmup, dur = 500*time.Millisecond, 2*time.Second
		mkWl = func() *workload.TPCB { return &workload.TPCB{Branches: 4, Tellers: 5, Accounts: 500} }
	}

	header := []string{"clients"}
	for _, m := range rig.Modes {
		header = append(header, string(m))
	}
	table := metrics.NewTable(header...)
	rep := newReport("a5", "TPC-B (pgbench) throughput vs clients, PG-like engine, HDD",
		"the pgbench-style companion workload", table)

	for _, c := range clientCounts {
		row := []string{fmt.Sprintf("%d", c)}
		for _, mode := range rig.Modes {
			cfg := rig.Config{
				Seed:            opts.Seed + int64(c)*211,
				Mode:            mode,
				CheckpointEvery: 20 * time.Second,
			}
			res, err := measureWorkload(cfg, mkWl(), c, warmup, dur)
			if err != nil {
				return nil, fmt.Errorf("a5 %s c=%d: %w", mode, c, err)
			}
			row = append(row, fmt.Sprintf("%.0f", res.TPS()))
			rep.Values[fmt.Sprintf("%s/c=%d", mode, c)] = res.TPS()
			opts.progressf("a5: %-12s c=%-3d %8.0f tps", mode, c, res.TPS())
		}
		table.AddRow(row...)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: same ordering as E1, with even larger rapilog/native-sync ratios —",
		"TPC-B transactions are pure commit path.")
	return rep, nil
}

// measureWorkload is measureTPCC generalised over the Workload interface.
func measureWorkload(cfg rig.Config, wl workload.Workload, clients int, warmup, dur time.Duration) (workload.RunResult, error) {
	r, err := rig.New(cfg)
	if err != nil {
		return workload.RunResult{}, err
	}
	var res workload.RunResult
	var benchErr error
	done := r.S.NewEvent("bench.done")
	r.S.Spawn(r.Plat.Domain(), "bench", func(p *sim.Proc) {
		defer done.Fire()
		e, err := r.Boot(p)
		if err != nil {
			benchErr = fmt.Errorf("boot: %w", err)
			return
		}
		if err := wl.Load(p, e); err != nil {
			benchErr = fmt.Errorf("load: %w", err)
			return
		}
		res = workload.RunClients(p, r.Plat.Domain(), e, wl, workload.RunnerConfig{
			Clients: clients, Duration: dur, Warmup: warmup,
		})
	})
	if err := drive(r.S, done); err != nil {
		return workload.RunResult{}, err
	}
	return res, benchErr
}

// runA6: the hardware alternatives RapiLog competes with. A battery-backed
// NVRAM log device makes synchronous commits fast without any hypervisor —
// at the price of the specialised hardware. RapiLog's pitch is matching
// that with a commodity disk plus a verified software layer.
func runA6(opts Options) (*Report, error) {
	opts.applyDefaults()
	clients := 8
	warmup, dur := 2*time.Second, 10*time.Second
	if opts.Quick {
		warmup, dur = 500*time.Millisecond, 2*time.Second
	}

	table := metrics.NewTable("configuration", "log device", "tps", "durable")
	rep := newReport("a6", "hardware alternatives: NVRAM log vs RapiLog",
		"the paper's positioning against specialised hardware", table)

	type cse struct {
		label   string
		mode    rig.Mode
		logKind rig.DiskKind
		device  string
		durable string
	}
	for _, c := range []cse{
		{"native-sync", rig.NativeSync, "", "hdd (shared)", "yes"},
		{"native-sync+nvram", rig.NativeSync, rig.DiskMem, "nvram", "yes (needs battery hw)"},
		{"native-sync+ssd-log", rig.NativeSync, rig.DiskSSD, "ssd", "yes (needs flash hw)"},
		{"rapilog", rig.RapiLog, "", "hdd (shared)", "yes (verified sw)"},
	} {
		cfg := rig.Config{
			Seed:            opts.Seed,
			Mode:            c.mode,
			LogDiskKind:     c.logKind,
			CheckpointEvery: 20 * time.Second,
		}
		res, _, _, err := stressRun(cfg, clients, warmup, dur, 512)
		if err != nil {
			return nil, fmt.Errorf("a6 %s: %w", c.label, err)
		}
		table.AddRow(c.label, c.device, fmt.Sprintf("%.0f", res.TPS()), c.durable)
		rep.Values[c.label] = res.TPS()
		opts.progressf("a6: %-20s %8.0f tps", c.label, res.TPS())
	}
	rep.Notes = append(rep.Notes,
		"measured shape: NVRAM makes sync commits fast; rapilog on a plain disk reaches the",
		"same performance class — here it beats NVRAM outright — with no specialised",
		"hardware, and beats a dedicated flash log too: verification as a substitute purchase.")
	return rep, nil
}

// runA7: recovery time vs checkpoint age. The cost RapiLog does NOT add:
// its dump replay is tiny next to the engine's own WAL redo, whose length
// the checkpoint interval governs.
func runA7(opts Options) (*Report, error) {
	opts.applyDefaults()
	loadFor := 8 * time.Second
	if opts.Quick {
		loadFor = 2 * time.Second
	}
	table := metrics.NewTable("checkpoint interval", "redone txns", "engine recovery", "dump replay")
	rep := newReport("a7", "recovery time vs checkpoint age",
		"recovery-cost discussion", table)

	for _, interval := range []time.Duration{time.Second, 5 * time.Second, time.Hour /* never */} {
		redone, redoTime, dumpTime, err := recoveryTimeTrial(opts.Seed, interval, loadFor)
		if err != nil {
			return nil, fmt.Errorf("a7 ckpt=%v: %w", interval, err)
		}
		label := interval.String()
		if interval == time.Hour {
			label = "never"
		}
		table.AddRow(label, fmt.Sprintf("%d", redone),
			fmt.Sprint(redoTime.Round(time.Millisecond)),
			fmt.Sprint(dumpTime.Round(time.Millisecond)))
		rep.Values[label+"/redone"] = float64(redone)
		rep.Values[label+"/redo_ms"] = float64(redoTime.Milliseconds())
		opts.progressf("a7: ckpt=%-8s redone=%-6d redo=%v", label, redone, redoTime.Round(time.Millisecond))
	}
	rep.Notes = append(rep.Notes,
		"measured shape: engine recovery (index rebuild + WAL redo, dominated by data-page",
		"reads) scales with database size and checkpoint age; the RapiLog dump replay is",
		"milliseconds regardless — buffering adds nothing material to recovery time.")
	return rep, nil
}

// recoveryTimeTrial loads a rapilog deployment, cuts power mid-run, and
// measures the virtual time spent in dump replay and in engine recovery.
func recoveryTimeTrial(seed int64, ckptEvery, loadFor time.Duration) (redone int64, redoTime, dumpTime time.Duration, err error) {
	// Data pages live on fast storage so checkpoints complete within their
	// interval (on the HDD a full checkpoint outlives a 1 s cadence and the
	// horizon never advances); the log and dump zone stay on the disk.
	r, rerr := rig.New(rig.Config{
		Seed: seed, Mode: rig.RapiLog,
		Disk: rig.DiskMem, LogDiskKind: rig.DiskHDD,
		CheckpointEvery: ckptEvery,
	})
	if rerr != nil {
		return 0, 0, 0, rerr
	}
	s := r.S
	w := &workload.Stress{ValueSize: 200}
	s.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
		e, berr := r.Boot(p)
		if berr != nil {
			err = berr
			return
		}
		for i := 0; i < 2; i++ {
			client := i
			s.Spawn(r.Plat.Domain(), "client", func(cp *sim.Proc) {
				for {
					if derr := w.DoAs(cp, e, nil, client); derr != nil {
						cp.Sleep(time.Millisecond)
					}
				}
			})
		}
	})
	s.After(loadFor, func() { r.CutPower() })

	done := s.NewEvent("a7.done")
	s.Spawn(nil, "op", func(p *sim.Proc) {
		p.Sleep(loadFor + 2*time.Second)
		t0 := p.Now()
		if _, rerr := r.RecoverAfterPower(p); rerr != nil {
			err = rerr
			done.Fire()
			return
		}
		t1 := p.Now()
		s.Spawn(r.Plat.Domain(), "db2", func(p *sim.Proc) {
			defer done.Fire()
			e, berr := r.Boot(p)
			if berr != nil {
				err = berr
				return
			}
			redoTime = p.Now().Sub(t1)
			redone = e.Stats().RedoneTxns.Value()
		})
		dumpTime = t1.Sub(t0)
	})
	if derr := drive(s, done); derr != nil {
		return 0, 0, 0, derr
	}
	return redone, redoTime, dumpTime, err
}
