package bench

import (
	"fmt"
	"io"
	"testing"
)

// These tests run every experiment in quick mode and assert the paper's
// qualitative results — the shapes EXPERIMENTS.md documents: who wins, by
// roughly what factor, and where the safety line is. Absolute numbers are
// simulator-scale and not asserted.

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	exp := ByID(id)
	if exp == nil {
		t.Fatalf("unknown experiment %q", id)
	}
	rep, err := exp.Run(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	rep.Render(io.Discard)
	return rep
}

func v(t *testing.T, rep *Report, key string) float64 {
	t.Helper()
	val, ok := rep.Values[key]
	if !ok {
		t.Fatalf("%s: missing value %q (have %v)", rep.ID, key, sortedKeys(rep.Values))
	}
	return val
}

// throughputShape asserts the E1/E2/E3/A2 ordering at every client count.
func throughputShape(t *testing.T, rep *Report, clients []int, lowClientFactor float64) {
	for _, c := range clients {
		sync := v(t, rep, fmt.Sprintf("native-sync/c=%d", c))
		async := v(t, rep, fmt.Sprintf("native-async/c=%d", c))
		virt := v(t, rep, fmt.Sprintf("virt-sync/c=%d", c))
		rapi := v(t, rep, fmt.Sprintf("rapilog/c=%d", c))

		// RapiLog is never degraded beyond the virtualisation overhead:
		// at minimum it matches the virtualised synchronous baseline.
		if rapi < 0.95*virt {
			t.Errorf("%s c=%d: rapilog %.0f below virt-sync %.0f", rep.ID, c, rapi, virt)
		}
		// RapiLog lands in async territory, not sync territory.
		if rapi < 0.25*async {
			t.Errorf("%s c=%d: rapilog %.0f far below native-async %.0f", rep.ID, c, rapi, async)
		}
		if rapi < sync {
			t.Errorf("%s c=%d: rapilog %.0f below native-sync %.0f", rep.ID, c, rapi, sync)
		}
	}
	// The headline: at one client (no group commit to hide behind), the
	// sync-commit penalty is huge and RapiLog removes it.
	c := clients[0]
	sync := v(t, rep, fmt.Sprintf("native-sync/c=%d", c))
	rapi := v(t, rep, fmt.Sprintf("rapilog/c=%d", c))
	if rapi < lowClientFactor*sync {
		t.Errorf("%s c=%d: rapilog %.0f not ≥ %.1f× native-sync %.0f", rep.ID, c, rapi, lowClientFactor, sync)
	}
}

func TestShapeE1(t *testing.T) {
	throughputShape(t, runExp(t, "e1"), []int{1, 8, 32}, 5)
}

func TestShapeE2(t *testing.T) {
	throughputShape(t, runExp(t, "e2"), []int{1, 8, 32}, 5)
}

func TestShapeE3(t *testing.T) {
	// The CPU-heavy engine commits less often per unit time, so the gain
	// factor is smaller — the paper's point that gains shrink as the
	// engine, not the log, becomes the bottleneck.
	throughputShape(t, runExp(t, "e3"), []int{1, 8, 32}, 3)
}

func TestShapeE4VirtOverheadModest(t *testing.T) {
	rep := runExp(t, "e4")
	ov := v(t, rep, "overhead_pct")
	if ov <= 0 || ov > 30 {
		t.Errorf("virtualisation overhead %.1f%%, want (0, 30]", ov)
	}
}

func TestShapeE5SizingRule(t *testing.T) {
	rep := runExp(t, "e5")
	// Safe bound monotone in hold-up for each device.
	for _, dev := range []string{"hdd", "ssd"} {
		spec := v(t, rep, "atx-spec/"+dev+"/safe_bytes")
		typ := v(t, rep, "typical/"+dev+"/safe_bytes")
		meas := v(t, rep, "measured/"+dev+"/safe_bytes")
		if !(spec <= typ && typ < meas) {
			t.Errorf("%s: safe bound not monotone in hold-up: %.0f, %.0f, %.0f", dev, spec, typ, meas)
		}
	}
	// The ATX spec minimum supports no buffer on a rotating disk: the
	// paper's argument for measuring real supplies.
	if v(t, rep, "atx-spec/hdd/safe_bytes") != 0 {
		t.Error("atx-spec HDD should have no safe buffer")
	}
	// Every live plug-pull with a safe bound kept all data.
	for key, val := range rep.Values {
		if len(key) > 8 && key[len(key)-8:] == "/live_ok" && val != 1 {
			t.Errorf("live dump check failed for %s", key)
		}
	}
}

func TestShapeE6ZeroLoss(t *testing.T) {
	rep := runExp(t, "e6")
	for _, eng := range []string{"pg", "my", "cx"} {
		if lost := v(t, rep, "rapilog/"+eng+"/lost"); lost != 0 {
			t.Errorf("engine %s lost %.0f acked commits across plug pulls", eng, lost)
		}
		if acked := v(t, rep, "rapilog/"+eng+"/acked"); acked == 0 {
			t.Errorf("engine %s acked nothing (experiment vacuous)", eng)
		}
	}
}

func TestShapeE7LatencyClasses(t *testing.T) {
	rep := runExp(t, "e7")
	syncP50 := v(t, rep, "native-sync/p50_us")
	rapiP50 := v(t, rep, "rapilog/p50_us")
	if syncP50 < 1000 {
		t.Errorf("native-sync commit p50 %.0fµs, want milliseconds (rotational)", syncP50)
	}
	if rapiP50 > 200 {
		t.Errorf("rapilog commit p50 %.0fµs, want tens of µs (memory copy)", rapiP50)
	}
	if syncP50/rapiP50 < 20 {
		t.Errorf("sync/rapilog p50 ratio %.1f, want ≫ 20", syncP50/rapiP50)
	}
}

func TestShapeE8BoundGovernsThrottling(t *testing.T) {
	rep := runExp(t, "e8")
	small := v(t, rep, "64 KiB/throttled")
	large := v(t, rep, "16.0 MiB/throttled")
	if small <= large {
		t.Errorf("throttling did not decrease with the bound: 64KiB=%.0f, 16MiB=%.0f", small, large)
	}
}

func TestShapeE9CrashAsymmetry(t *testing.T) {
	rep := runExp(t, "e9")
	if lost := v(t, rep, "rapilog/lost"); lost != 0 {
		t.Errorf("rapilog lost %.0f commits across guest crashes", lost)
	}
	if lost := v(t, rep, "native-async/lost"); lost == 0 {
		t.Error("native-async lost nothing: the unsafe baseline is not unsafe")
	}
}

func TestShapeE10DeviceClasses(t *testing.T) {
	rep := runExp(t, "e10")
	randIOPS := v(t, rep, "hdd/rand-sync-4k/iops")
	if randIOPS < 50 || randIOPS > 300 {
		t.Errorf("HDD random sync IOPS %.0f, want ~100 (seek + half rotation)", randIOPS)
	}
	if ssd := v(t, rep, "ssd/rand-sync-4k/iops"); ssd < 5*randIOPS {
		t.Errorf("SSD random IOPS %.0f not ≫ HDD %.0f", ssd, randIOPS)
	}
	hddRandMean := v(t, rep, "hdd/rand-sync-4k/mean_us")
	if hddRandMean < 2000 {
		t.Errorf("HDD random sync mean %.0fµs, want milliseconds", hddRandMean)
	}
}

func TestShapeA1ComplexityReduction(t *testing.T) {
	rep := runExp(t, "a1")
	for _, c := range []int{1, 16} {
		plain := v(t, rep, fmt.Sprintf("native-sync/c=%d", c))
		delay := v(t, rep, fmt.Sprintf("native-sync+delay/c=%d", c))
		rapi := v(t, rep, fmt.Sprintf("rapilog/c=%d", c))
		if rapi <= plain || rapi <= delay {
			t.Errorf("c=%d: rapilog %.0f not above sync %.0f and sync+delay %.0f", c, rapi, plain, delay)
		}
	}
	// commit_delay's one benefit: wider batches at high concurrency.
	if v(t, rep, "native-sync+delay/c=16") <= v(t, rep, "native-sync/c=16") {
		t.Error("commit_delay did not help at 16 clients")
	}
}

func TestShapeA2SSDGainsSurvive(t *testing.T) {
	rep := runExp(t, "a2")
	sync := v(t, rep, "native-sync/c=1")
	rapi := v(t, rep, "rapilog/c=1")
	if rapi < 1.5*sync {
		t.Errorf("SSD: rapilog %.0f not ≥ 1.5× native-sync %.0f (gain should shrink, not vanish)", rapi, sync)
	}
	if rapi < v(t, rep, "virt-sync/c=1") {
		t.Error("SSD: rapilog below virt-sync")
	}
}

func TestShapeA3SizingRuleMatters(t *testing.T) {
	rep := runExp(t, "a3")
	if lost := v(t, rep, "safe-bound/lost"); lost != 0 {
		t.Errorf("safe bound lost %.0f commits", lost)
	}
	unsafe := v(t, rep, "8MiB-unsafe/lost") + v(t, rep, "32MiB-unsafe/lost")
	if unsafe == 0 {
		t.Error("oversized buffers lost nothing: the sizing rule looks unnecessary (it is not)")
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(All) != 20 {
		t.Fatalf("experiment count %d", len(All))
	}
	seen := map[string]bool{}
	for _, exp := range All {
		if exp.ID == "" || exp.Title == "" || exp.Run == nil {
			t.Errorf("experiment %+v incomplete", exp.ID)
		}
		if seen[exp.ID] {
			t.Errorf("duplicate id %s", exp.ID)
		}
		seen[exp.ID] = true
		if ByID(exp.ID) == nil {
			t.Errorf("ByID(%s) = nil", exp.ID)
		}
	}
	if ByID("zz") != nil {
		t.Error("ByID(zz) found something")
	}
	if len(IDs()) != len(All) {
		t.Error("IDs() length mismatch")
	}
}

func TestShapeA4DedicatedSpindle(t *testing.T) {
	rep := runExp(t, "a4")
	syncShared := v(t, rep, "native-sync/shared")
	syncDedicated := v(t, rep, "native-sync/dedicated")
	rapiShared := v(t, rep, "rapilog/shared")
	if syncDedicated < syncShared {
		t.Errorf("dedicated log disk made native-sync slower: %.0f vs %.0f", syncDedicated, syncShared)
	}
	if rapiShared < 2*syncDedicated {
		t.Errorf("rapilog on one disk (%.0f) not ≥ 2× two-disk native-sync (%.0f)", rapiShared, syncDedicated)
	}
}

func TestShapeA5TPCB(t *testing.T) {
	rep := runExp(t, "a5")
	for _, c := range []int{1, 16} {
		sync := v(t, rep, fmt.Sprintf("native-sync/c=%d", c))
		rapi := v(t, rep, fmt.Sprintf("rapilog/c=%d", c))
		virt := v(t, rep, fmt.Sprintf("virt-sync/c=%d", c))
		if rapi < 10*sync {
			t.Errorf("c=%d: TPC-B rapilog %.0f not ≥ 10× native-sync %.0f (pure commit path)", c, rapi, sync)
		}
		if rapi < virt {
			t.Errorf("c=%d: rapilog below virt-sync", c)
		}
	}
}

func TestShapeA6HardwareAlternatives(t *testing.T) {
	rep := runExp(t, "a6")
	plain := v(t, rep, "native-sync")
	nvram := v(t, rep, "native-sync+nvram")
	ssdLog := v(t, rep, "native-sync+ssd-log")
	rapi := v(t, rep, "rapilog")
	if nvram < 10*plain {
		t.Errorf("NVRAM log %.0f not ≫ plain disk %.0f", nvram, plain)
	}
	if rapi < ssdLog {
		t.Errorf("rapilog %.0f below a dedicated flash log %.0f", rapi, ssdLog)
	}
	if rapi < nvram/2 {
		t.Errorf("rapilog %.0f not in NVRAM's class (%.0f)", rapi, nvram)
	}
}

func TestShapeA7RecoveryCost(t *testing.T) {
	rep := runExp(t, "a7")
	// Frequent checkpoints must shrink redo work (possibly to zero); never
	// checkpointing must leave the most.
	never := v(t, rep, "never/redone")
	if never <= 0 {
		t.Error("ckpt=never redid nothing (vacuous)")
	}
	if never < v(t, rep, "1s/redone") || never < v(t, rep, "5s/redone") {
		t.Errorf("checkpointing did not reduce redo work: never=%.0f 5s=%.0f 1s=%.0f",
			never, v(t, rep, "5s/redone"), v(t, rep, "1s/redone"))
	}
}

func TestShapeA8MediaFaults(t *testing.T) {
	rep := runExp(t, "a8")
	for _, label := range []string{"transient-errors", "latency-storm", "permanent-defect"} {
		if lost := v(t, rep, label+"/lost"); lost != 0 {
			t.Errorf("%s: %.0f acked commits lost", label, lost)
		}
		if viol := v(t, rep, label+"/violations"); viol != 0 {
			t.Errorf("%s: %.0f violating trials", label, viol)
		}
		if v(t, rep, label+"/acked") == 0 {
			t.Errorf("%s: no commits acked, campaign proves nothing", label)
		}
	}
	// Faults that clear must leave no backlog and no lingering degradation.
	for _, label := range []string{"transient-errors", "latency-storm"} {
		if s := v(t, rep, label+"/max_stranded_bytes"); s != 0 {
			t.Errorf("%s: %.0f bytes still stranded after the fault cleared", label, s)
		}
		if d := v(t, rep, label+"/degraded_trials"); d != 0 {
			t.Errorf("%s: %.0f trials still degraded after the fault cleared", label, d)
		}
	}
	// A defect that never clears must degrade every trial.
	if d := v(t, rep, "permanent-defect/degraded_trials"); d == 0 {
		t.Error("permanent-defect: no trial degraded (fault never bit?)")
	}
}

func TestShapeA9Replication(t *testing.T) {
	rep := runExp(t, "a9")
	// Every campaign must have real load behind it.
	for _, label := range []string{
		"local/power-cut", "quorum1/power-cut", "remote1/power-cut+dump-broken",
		"local/partition+cut+dump-broken", "quorum1/partition+cut+dump-broken",
		"quorum1/replica-crash+cut",
	} {
		if v(t, rep, label+"/acked") == 0 {
			t.Errorf("%s: no commits acked, campaign proves nothing", label)
		}
	}
	// Wherever the policy's invariant holds, zero acked commits are lost.
	for _, label := range []string{
		"local/power-cut", "quorum1/power-cut", "remote1/power-cut+dump-broken",
		"quorum1/partition+cut+dump-broken", "quorum1/replica-crash+cut",
	} {
		if lost := v(t, rep, label+"/lost"); lost != 0 {
			t.Errorf("%s: %.0f acked commits lost", label, lost)
		}
	}
	// The ablation: AckLocal under the double fault demonstrably loses —
	// without this, the quorum rows prove nothing.
	if v(t, rep, "local/partition+cut+dump-broken/lost") == 0 {
		t.Error("local acks lost nothing under partition+cut+dump-broken")
	}
	// The cost: a quorum ack pays a fabric round trip over a local ack.
	local := v(t, rep, "latency/local/p50_us")
	quorum := v(t, rep, "latency/quorum1/p50_us")
	if local == 0 || quorum == 0 {
		t.Fatal("latency stage missing")
	}
	if quorum <= local {
		t.Errorf("quorum p50 %.0fµs not above local p50 %.0fµs — no replication cost visible", quorum, local)
	}
}

func TestShapeA11Failover(t *testing.T) {
	rep := runExp(t, "a11")
	for _, label := range []string{"power-cut", "isolation", "coordinator+power-cut"} {
		if v(t, rep, label+"/acked") == 0 {
			t.Errorf("%s: no commits acked, campaign proves nothing", label)
		}
		// The headline claims: zero acked-quorum loss, zero split-brain,
		// every trial a single complete takeover.
		if lost := v(t, rep, label+"/lost"); lost != 0 {
			t.Errorf("%s: %.0f acked commits lost across takeover", label, lost)
		}
		if sb := v(t, rep, label+"/split_brain"); sb != 0 {
			t.Errorf("%s: single-writer invariant fired in %.0f trials", label, sb)
		}
		if inc := v(t, rep, label+"/incomplete"); inc != 0 {
			t.Errorf("%s: %.0f trials without a single clean takeover", label, inc)
		}
		// A takeover that cost no downtime would mean the fault never bit.
		if v(t, rep, label+"/unavail_p50_ms") == 0 {
			t.Errorf("%s: zero unavailability window", label)
		}
		// Clients must have followed the promotion, not reconnected by luck.
		if v(t, rep, label+"/redirects") == 0 {
			t.Errorf("%s: no session ever redirected", label)
		}
	}
	// Only the healed partition replays a deposed epoch into fenced stores.
	if v(t, rep, "isolation/fence_rejections") == 0 {
		t.Error("isolation: healed deposed leader produced no fence rejections")
	}
}
