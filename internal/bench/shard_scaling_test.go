package bench

import (
	"testing"
	"time"
)

// TestShapeShardScaling locks in the tentpole scale-out claim: with
// per-shard provisioning held constant, a 4-shard fleet commits at least
// 2.5x the single-shard throughput while the commit-ack p50 stays within
// 20%. Virtual-time figures are deterministic for a fixed seed, so this is
// a regression lock, not a flaky perf assertion.
func TestShapeShardScaling(t *testing.T) {
	const dur, warmup = 500 * time.Millisecond, 50 * time.Millisecond
	one, err := perfShardScaling(1, 4, dur, warmup, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := perfShardScaling(4, 4, dur, warmup, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.VirtualTPS <= 0 || four.VirtualTPS <= 0 {
		t.Fatalf("no throughput: 1-shard %.0f tps, 4-shard %.0f tps", one.VirtualTPS, four.VirtualTPS)
	}
	if four.VirtualTPS < 2.5*one.VirtualTPS {
		t.Fatalf("4-shard fleet at %.0f tps is under 2.5x the 1-shard %.0f tps", four.VirtualTPS, one.VirtualTPS)
	}
	lo, hi := 0.8*one.CommitP50Ns, 1.2*one.CommitP50Ns
	if four.CommitP50Ns < lo || four.CommitP50Ns > hi {
		t.Fatalf("4-shard commit p50 %.0fns drifted >20%% from 1-shard %.0fns", four.CommitP50Ns, one.CommitP50Ns)
	}
}
