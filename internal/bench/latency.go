package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/rig"
	"repro/internal/sim"
	"repro/internal/workload"
)

// stressRun drives the commit-stress microbenchmark on a deployment and
// returns the run result plus the engine's commit-latency histogram.
func stressRun(cfg rig.Config, clients int, warmup, dur time.Duration, valueSize int) (workload.RunResult, *metrics.Histogram, *rig.Rig, error) {
	r, err := rig.New(cfg)
	if err != nil {
		return workload.RunResult{}, nil, nil, err
	}
	var res workload.RunResult
	var hist *metrics.Histogram
	var benchErr error
	done := r.S.NewEvent("bench.done")
	r.S.Spawn(r.Plat.Domain(), "bench", func(p *sim.Proc) {
		defer done.Fire()
		e, err := r.Boot(p)
		if err != nil {
			benchErr = err
			return
		}
		w := &workload.Stress{ValueSize: valueSize}
		res = workload.RunClients(p, r.Plat.Domain(), e, w, workload.RunnerConfig{
			Clients: clients, Duration: dur, Warmup: warmup,
		})
		hist = e.Stats().CommitLatency
	})
	if err := drive(r.S, done); err != nil {
		return workload.RunResult{}, nil, nil, err
	}
	return res, hist, r, benchErr
}

// runE7: commit latency distribution under commit-stress. Shows the paper's
// core latency effect: a sync commit costs a disk rotation, a RapiLog
// commit costs a memory copy.
func runE7(opts Options) (*Report, error) {
	opts.applyDefaults()
	clients := 8
	warmup, dur := time.Second, 10*time.Second
	if opts.Quick {
		warmup, dur = 200*time.Millisecond, 2*time.Second
	}
	table := metrics.NewTable("configuration", "tps", "p50", "p95", "p99", "max")
	rep := newReport("e7", "commit latency distribution",
		"commit-latency figure", table)

	for _, mode := range []rig.Mode{rig.NativeSync, rig.VirtSync, rig.RapiLog, rig.NativeAsync} {
		cfg := rig.Config{Seed: opts.Seed, Mode: mode, CheckpointEvery: 30 * time.Second}
		res, hist, _, err := stressRun(cfg, clients, warmup, dur, 120)
		if err != nil {
			return nil, fmt.Errorf("e7 %s: %w", mode, err)
		}
		table.AddRow(string(mode),
			fmt.Sprintf("%.0f", res.TPS()),
			fmt.Sprint(hist.Quantile(0.50).Round(time.Microsecond)),
			fmt.Sprint(hist.Quantile(0.95).Round(time.Microsecond)),
			fmt.Sprint(hist.Quantile(0.99).Round(time.Microsecond)),
			fmt.Sprint(hist.Max().Round(time.Microsecond)))
		rep.Values[string(mode)+"/tps"] = res.TPS()
		rep.Values[string(mode)+"/p50_us"] = float64(hist.Quantile(0.50).Microseconds())
		rep.Values[string(mode)+"/p99_us"] = float64(hist.Quantile(0.99).Microseconds())
		opts.progressf("e7: %-12s p50=%v", mode, hist.Quantile(0.50).Round(time.Microsecond))
	}
	rep.Notes = append(rep.Notes,
		"expected shape: sync p50 is rotational (milliseconds); rapilog p50 is the buffer",
		"copy (microseconds), within noise of async; rapilog tail bounded by throttling.")
	return rep, nil
}

// runE8: throughput and throttling across buffer bounds, in a regime where
// commit production outruns the drain (a slow drive), so the bound is live:
// tiny bounds force small drain batches whose positioning overhead eats
// bandwidth, larger bounds amortise it, and past the knee the drive — not
// the buffer — is the limit.
func runE8(opts Options) (*Report, error) {
	opts.applyDefaults()
	clients := 8
	warmup, dur := time.Second, 10*time.Second
	if opts.Quick {
		warmup, dur = 200*time.Millisecond, 2*time.Second
	}
	caps := []int64{64 << 10, 256 << 10, 0 /* safe bound */, 4 << 20, 16 << 20}
	table := metrics.NewTable("buffer bound", "tps", "throttled writes", "ack p99", "peak occupancy")
	rep := newReport("e8", "buffer bound sweep and throttling",
		"buffer-sizing discussion", table)

	for _, c := range caps {
		unsafe := false
		if c > 0 {
			unsafe = true // caps above the slow disk's safe bound need the override
		}
		cfg := rig.Config{
			Seed: opts.Seed, Mode: rig.RapiLog,
			HDD:             disk.HDDConfig{RPM: 3600, SectorsPerTrack: 250},
			RapiLog:         core.Config{MaxBuffer: c, Unsafe: unsafe},
			CheckpointEvery: 30 * time.Second,
		}
		res, _, r, err := stressRun(cfg, clients, warmup, dur, 6000)
		if err != nil {
			return nil, fmt.Errorf("e8 cap=%d: %w", c, err)
		}
		label := fmtBytes(c)
		if c == 0 {
			label = "safe(" + fmtBytes(r.Logger.MaxBuffer()) + ")"
		}
		st := r.Logger.RapiStats()
		table.AddRow(label,
			fmt.Sprintf("%.0f", res.TPS()),
			fmt.Sprintf("%d", st.Throttled.Value()),
			fmt.Sprint(st.AckLatency.Quantile(0.99).Round(time.Microsecond)),
			fmtBytes(st.Occupancy.Peak()))
		rep.Values[label+"/tps"] = res.TPS()
		rep.Values[label+"/throttled"] = float64(st.Throttled.Value())
		rep.Values[label+"/ack_p99_us"] = float64(st.AckLatency.Quantile(0.99).Microseconds())
		opts.progressf("e8: cap=%-18s %8.0f tps, %d throttled", label, res.TPS(), st.Throttled.Value())
	}
	rep.Notes = append(rep.Notes,
		"measured shape: under sustained overload every bound converges to drain bandwidth,",
		"because the log is sequential and small drain batches lose almost nothing to",
		"positioning; the bound instead governs throttling frequency and ack tail latency",
		"(burst absorption). The safe bound already sits in the flat region.")
	return rep, nil
}

// runA1: group commit interaction. A wide commit_delay is the classic
// software mitigation for sync-commit cost; RapiLog makes it unnecessary —
// and at one client, commit_delay actively hurts while RapiLog does not.
func runA1(opts Options) (*Report, error) {
	opts.applyDefaults()
	warmup, dur := time.Second, 10*time.Second
	if opts.Quick {
		warmup, dur = 200*time.Millisecond, 2*time.Second
	}
	persPlain := engine.PGLike
	persDelay := engine.PGLike
	persDelay.Name = "pg+delay"
	persDelay.CommitDelay = 2 * time.Millisecond

	table := metrics.NewTable("configuration", "clients=1", "clients=16")
	rep := newReport("a1", "ablation: group commit (commit_delay) vs RapiLog",
		"this reproduction's ablation of the complexity-reduction claim", table)

	type cfgRow struct {
		label string
		mode  rig.Mode
		pers  engine.Personality
	}
	rows := []cfgRow{
		{"native-sync", rig.NativeSync, persPlain},
		{"native-sync+delay", rig.NativeSync, persDelay},
		{"rapilog", rig.RapiLog, persPlain},
	}
	for _, row := range rows {
		cells := []string{row.label}
		for _, clients := range []int{1, 16} {
			cfg := rig.Config{
				Seed: opts.Seed + int64(clients), Mode: row.mode, Personality: row.pers,
				CheckpointEvery: 30 * time.Second,
			}
			res, _, _, err := stressRun(cfg, clients, warmup, dur, 120)
			if err != nil {
				return nil, fmt.Errorf("a1 %s c=%d: %w", row.label, clients, err)
			}
			cells = append(cells, fmt.Sprintf("%.0f", res.TPS()))
			rep.Values[fmt.Sprintf("%s/c=%d", row.label, clients)] = res.TPS()
			opts.progressf("a1: %-18s c=%-2d %8.0f tps", row.label, clients, res.TPS())
		}
		table.AddRow(cells...)
	}
	rep.Notes = append(rep.Notes,
		"measured shape: commit_delay roughly doubles 16-client sync throughput (wider",
		"batches) and costs little at 1 client on rotational media (the delay hides in the",
		"rotational wait); rapilog beats both by orders of magnitude with no tuning knob —",
		"the complexity-reduction claim.")
	return rep, nil
}
