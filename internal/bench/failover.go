package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/rig"
)

// runA11: high availability. Three leader-loss campaigns against a 3-node
// epoch-fenced cluster under AckQuorum(1) — plug-pull, partition, and a
// composed coordinator-crash+plug-pull — each trial driving redirect-aware
// sessions through the takeover and auditing every acknowledged op on the
// promoted leader afterwards.
//
// The claims on trial: zero acked-quorum commits lost across a takeover
// (the census quorum N−K+1 intersects every ack quorum, and the winner's
// prefix is replayed before the new epoch opens), zero split-brain (the
// fence makes the deposed epoch unackable, so the single-writer-per-epoch
// invariant never fires), and a client-visible unavailability window
// dominated by WAL redo on the promoted node.
func runA11(opts Options) (*Report, error) {
	opts.applyDefaults()
	trials := 50
	sessionFor := 20 * time.Second
	if opts.Quick {
		trials = 2
	}

	cases := []struct {
		label string
		fault faultinject.FailoverFault
	}{
		{"power-cut", faultinject.LeaderPowerCut},
		{"isolation", faultinject.LeaderIsolation},
		{"coordinator+power-cut", faultinject.CoordAndLeader},
	}

	table := metrics.NewTable("campaign", "trials", "acked commits", "lost",
		"split-brain", "unavail p50", "unavail p99")
	rep := newReport("a11", "high availability: epoch-fenced standby promotion",
		"this reproduction's HA extension (leader takeover over the replicated durability domain)", table)

	for _, c := range cases {
		sum := faultinject.RunFailoverCampaign(faultinject.FailoverConfig{
			Cluster: rig.ClusterConfig{
				Nodes: 3,
				Rig:   rig.Config{Seed: opts.Seed, AckPolicy: core.AckQuorum(1)},
			},
			Fault:      c.fault,
			Trials:     trials,
			Clients:    4,
			SessionFor: sessionFor,
		})
		if sum.Errors > 0 {
			return nil, fmt.Errorf("a11 %s: %d trial errors (first: %v)", c.label, sum.Errors, firstFailoverErr(sum))
		}
		p50, p99 := sum.UnavailPercentile(0.50), sum.UnavailPercentile(0.99)
		table.AddRow(c.label,
			fmt.Sprintf("%d", len(sum.Trials)),
			fmt.Sprintf("%d", sum.TotalAcked),
			fmt.Sprintf("%d", sum.TotalLost),
			fmt.Sprintf("%d", sum.SplitBrains),
			p50.Round(time.Millisecond).String(),
			p99.Round(time.Millisecond).String())
		rep.Values[c.label+"/acked"] = float64(sum.TotalAcked)
		rep.Values[c.label+"/lost"] = float64(sum.TotalLost)
		rep.Values[c.label+"/violations"] = float64(sum.Violations)
		rep.Values[c.label+"/split_brain"] = float64(sum.SplitBrains)
		rep.Values[c.label+"/incomplete"] = float64(sum.Incomplete)
		rep.Values[c.label+"/unavail_p50_ms"] = float64(p50.Milliseconds())
		rep.Values[c.label+"/unavail_p99_ms"] = float64(p99.Milliseconds())
		var redirects, fenceRej, replayB int64
		for _, tr := range sum.Trials {
			redirects += tr.Redirects
			fenceRej += tr.FenceRejections
			replayB += tr.ReplayBytes
		}
		rep.Values[c.label+"/redirects"] = float64(redirects)
		rep.Values[c.label+"/fence_rejections"] = float64(fenceRej)
		if n := len(sum.Trials); n > 0 {
			rep.Values[c.label+"/replay_bytes_mean"] = float64(replayB) / float64(n)
		}
		opts.progressf("a11: %-22s %d trials, %d acked, %d lost, %d split-brain, unavail p50 %v",
			c.label, trials, sum.TotalAcked, sum.TotalLost, sum.SplitBrains,
			p50.Round(time.Millisecond))
	}

	rep.Notes = append(rep.Notes,
		"expected shape: every campaign loses nothing and never double-writes an epoch — the",
		"census quorum (N−K+1) provably intersects every ack quorum, and the fence makes the",
		"deposed epoch unackable before the new one opens; the unavailability window is",
		"dominated by full-WAL redo on the promoted node (snapshot catch-up is future work);",
		"an isolated-then-healed leader surfaces as fence rejections, not lost data.")
	return rep, nil
}

// firstFailoverErr returns the first trial error in a failover campaign.
func firstFailoverErr(sum faultinject.FailoverSummary) error {
	for _, tr := range sum.Trials {
		if tr.Err != nil {
			return tr.Err
		}
	}
	return nil
}
