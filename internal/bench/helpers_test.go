package bench

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestFmtBytes(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{
		{0, "0"},
		{-5, "0"},
		{512, "0 KiB"},
		{64 << 10, "64 KiB"},
		{1 << 20, "1.0 MiB"},
		{(8 << 20) + (1 << 19), "8.5 MiB"},
	} {
		if got := fmtBytes(tc.n); got != tc.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestBoolTo01(t *testing.T) {
	if boolTo01(true) != 1 || boolTo01(false) != 0 {
		t.Fatal("boolTo01")
	}
}

func TestBytesEqual(t *testing.T) {
	if !bytesEqual([]byte{1, 2}, []byte{1, 2}) {
		t.Fatal("equal slices")
	}
	if bytesEqual([]byte{1}, []byte{1, 2}) || bytesEqual([]byte{1}, []byte{2}) {
		t.Fatal("unequal slices")
	}
}

func TestReportRender(t *testing.T) {
	tb := metrics.NewTable("k", "v")
	tb.AddRow("a", "1")
	rep := newReport("x1", "a title", "a figure", tb)
	rep.Notes = append(rep.Notes, "a note")
	var sb strings.Builder
	rep.Render(&sb)
	out := sb.String()
	for _, want := range []string{"## x1", "a title", "a figure", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	keys := sortedKeys(map[string]float64{"b": 1, "a": 2, "c": 3})
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("sortedKeys = %v", keys)
	}
}
