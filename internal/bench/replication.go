package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/power"
	"repro/internal/rig"
	"repro/internal/workload"
)

// runA9: the replicated durability domain. Two stages.
//
// Safety: power-fail (and partition/replica-crash double-fault) campaigns
// across the three ack policies. The double fault — a partition that
// outlasts the PSU hold-up, the plug pulled at its midpoint, and a dump
// zone that fails every write — removes the local durability domain
// entirely; only commits a standby already holds survive. AckLocal keeps
// acking through the partition and demonstrably loses; AckQuorum stalls
// acks instead and loses nothing.
//
// Cost: the guest-visible commit latency of each policy — local acks at
// buffer-copy speed, quorum/remote acks paying one fabric round trip.
func runA9(opts Options) (*Report, error) {
	opts.applyDefaults()
	trials := 12
	warmup, dur := time.Second, 10*time.Second
	if opts.Quick {
		trials = 2
		warmup, dur = 200*time.Millisecond, 2*time.Second
	}

	// The A3 regime: slow spindle + measured PSU + commit-heavy load, so
	// the buffer genuinely carries acked-but-undrained commits when the
	// fault lands.
	baseRig := func(policy core.AckPolicy) rig.Config {
		return rig.Config{
			Seed:      opts.Seed,
			Mode:      rig.RapiLogReplica,
			Replicas:  2,
			AckPolicy: policy,
			PSU:       power.PSUMeasured,
			HDD:       disk.HDDConfig{RPM: 3600, SectorsPerTrack: 250},
		}
	}
	cases := []struct {
		label     string
		policy    core.AckPolicy
		fault     faultinject.Fault
		compose   faultinject.Fault
		breakDump bool
		crash     int
		wantLoss  bool
	}{
		{"local/power-cut", core.AckLocal(), faultinject.PowerCut, "", false, 0, false},
		{"quorum1/power-cut", core.AckQuorum(1), faultinject.PowerCut, "", false, 0, false},
		{"remote1/power-cut+dump-broken", core.AckRemoteOnly(1), faultinject.PowerCut, "", true, 0, false},
		{"local/partition+cut+dump-broken", core.AckLocal(), faultinject.Partition, faultinject.PowerCut, true, 0, true},
		{"quorum1/partition+cut+dump-broken", core.AckQuorum(1), faultinject.Partition, faultinject.PowerCut, true, 0, false},
		{"quorum1/replica-crash+cut", core.AckQuorum(1), faultinject.ReplicaCrash, faultinject.PowerCut, false, 1, false},
	}
	var rows []campaignRow
	extras := map[string]float64{}
	for _, c := range cases {
		cfg := faultinject.CampaignConfig{
			Rig:             baseRig(c.policy),
			Fault:           c.fault,
			Compose:         c.compose,
			PartitionWindow: 2 * time.Second,
			BreakDump:       c.breakDump,
			CrashReplicas:   c.crash,
			Trials:          trials,
			Clients:         16,
			InjectAfterMin:  1500 * time.Millisecond,
			InjectAfterMax:  2500 * time.Millisecond,
			NewWorkload:     func() workload.Workload { return &workload.Stress{ValueSize: 6000} },
		}
		sum := faultinject.RunCampaign(cfg)
		if sum.Errors > 0 {
			return nil, fmt.Errorf("a9 %s: %d trial errors (first: %v)", c.label, sum.Errors, firstErr(sum))
		}
		rows = append(rows, campaignRow{label: c.label, sum: sum})
		extras[c.label+"/repl_lag_max"] = float64(sum.MaxReplLag)
		extras[c.label+"/dump_failures"] = float64(sum.DumpFailures)
		opts.progressf("a9: %-33s %d trials, %d acked, %d lost", c.label, trials, sum.TotalAcked, sum.TotalLost)
	}

	rep := campaignReport("a9", "replicated durability: quorum acks under partition + power-fail",
		"this reproduction's replication extension (remote standbys as the alternative durability domain)", rows)
	for k, v := range extras {
		rep.Values[k] = v
	}

	// Latency stage: what each policy charges the commit path in a healthy
	// cluster.
	for _, pc := range []struct {
		label  string
		policy core.AckPolicy
	}{
		{"local", core.AckLocal()},
		{"quorum1", core.AckQuorum(1)},
		{"remote1", core.AckRemoteOnly(1)},
	} {
		cfg := baseRig(pc.policy)
		cfg.HDD = disk.HDDConfig{} // stock disk: measure the policy, not the spindle
		cfg.PSU = power.PSUConfig{}
		cfg.CheckpointEvery = 30 * time.Second
		res, hist, _, err := stressRun(cfg, 8, warmup, dur, 120)
		if err != nil {
			return nil, fmt.Errorf("a9 latency %s: %w", pc.label, err)
		}
		rep.Values["latency/"+pc.label+"/tps"] = res.TPS()
		rep.Values["latency/"+pc.label+"/p50_us"] = float64(hist.Quantile(0.50).Microseconds())
		rep.Values["latency/"+pc.label+"/p99_us"] = float64(hist.Quantile(0.99).Microseconds())
		rep.Notes = append(rep.Notes, fmt.Sprintf("latency %-8s p50=%v p99=%v (%.0f tps)",
			pc.label, hist.Quantile(0.50).Round(time.Microsecond),
			hist.Quantile(0.99).Round(time.Microsecond), res.TPS()))
		opts.progressf("a9: latency %-8s p50=%v", pc.label, hist.Quantile(0.50).Round(time.Microsecond))
	}
	rep.Notes = append(rep.Notes,
		"expected shape: every policy survives a plain power cut; under partition+cut with a",
		"broken dump zone only quorum/remote survive — local acks made during the partition",
		"have no surviving copy; quorum acks cost one fabric round trip (~2×200µs) over local.")
	return rep, nil
}
