package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/rig"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runE4 measures the virtualisation overhead on a CPU-bound workload: TPC-C
// over memory-backed storage, so disk latency cannot hide the exit costs
// and the CPU inflation. Stands in for the paper's overhead table.
func runE4(opts Options) (*Report, error) {
	opts.applyDefaults()
	clients := 8
	warmup, dur := 2*time.Second, 10*time.Second
	wl := func() *workload.TPCC { return &workload.TPCC{Warehouses: 2, Districts: 8, Customers: 30, Items: 400} }
	if opts.Quick {
		warmup, dur = 500*time.Millisecond, 2*time.Second
		wl = func() *workload.TPCC { return &workload.TPCC{Warehouses: 1, Districts: 4, Customers: 10, Items: 100} }
	}

	table := metrics.NewTable("configuration", "tps", "overhead")
	rep := newReport("e4", "virtualisation overhead, CPU-bound TPC-C",
		"virtualisation-overhead table", table)

	var nativeTPS float64
	for _, mode := range []rig.Mode{rig.NativeSync, rig.VirtSync} {
		cfg := rig.Config{
			Seed:            opts.Seed,
			Mode:            mode,
			Personality:     engine.PGLike,
			Disk:            rig.DiskMem, // storage fast enough to be CPU-bound
			CheckpointEvery: 20 * time.Second,
		}
		res, err := measureTPCC(cfg, wl(), clients, warmup, dur)
		if err != nil {
			return nil, fmt.Errorf("e4 %s: %w", mode, err)
		}
		tps := res.TPS()
		rep.Values[string(mode)] = tps
		overhead := "—"
		if mode == rig.NativeSync {
			nativeTPS = tps
		} else if nativeTPS > 0 {
			ov := (nativeTPS - tps) / nativeTPS * 100
			overhead = fmt.Sprintf("%.1f%%", ov)
			rep.Values["overhead_pct"] = ov
		}
		table.AddRow(string(mode), fmt.Sprintf("%.0f", tps), overhead)
		opts.progressf("e4: %-12s %8.0f tps", mode, tps)
	}
	rep.Notes = append(rep.Notes, "expected shape: modest (≈5–20%) overhead from exit costs and CPU inflation —",
		"the price the paper says RapiLog's gains must be measured against.")
	return rep, nil
}

// runE5 builds the PSU hold-up table: for each PSU profile and device, the
// safe buffer bound, the time to dump it, and a live plug-pull validating
// that a full buffer actually lands. Stands in for the paper's PSU
// measurement table.
func runE5(opts Options) (*Report, error) {
	opts.applyDefaults()
	table := metrics.NewTable("psu", "device", "hold-up min", "safe buffer", "est. dump time", "live dump")
	rep := newReport("e5", "PSU hold-up vs emergency-flush requirement",
		"PSU hold-up measurement table", table)

	psus := []power.PSUConfig{power.PSUATXSpec, power.PSUTypical, power.PSUMeasured}
	devices := []rig.DiskKind{rig.DiskHDD, rig.DiskSSD}
	for _, psu := range psus {
		for _, dk := range devices {
			// Computed side of the row.
			s := sim.New(opts.Seed)
			m := power.NewMachine(s, "m", 4, psu)
			var dev disk.Device
			switch dk {
			case rig.DiskHDD:
				dev = disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
			case rig.DiskSSD:
				dev = disk.NewSSD(s, m.HardwareDomain(), disk.SSDConfig{})
			}
			zone, err := disk.NewPartition(dev, "dump", 0, 131072)
			if err != nil {
				return nil, err
			}
			safe := core.SafeBufferSize(m, zone)
			est := "n/a"
			live := "n/a"
			if safe > 0 {
				estT := zone.WorstCaseAccess() + time.Duration(float64(safe)/zone.SeqWriteBandwidth()*float64(time.Second))
				est = fmt.Sprint(estT.Round(time.Millisecond))
				ok, err := liveDumpCheck(opts.Seed, psu, dk)
				if err != nil {
					return nil, fmt.Errorf("e5 live check %s/%s: %w", psu.Name, dk, err)
				}
				live = "ok"
				if !ok {
					live = "LOST DATA"
				}
				rep.Values[fmt.Sprintf("%s/%s/live_ok", psu.Name, dk)] = boolTo01(ok)
			}
			table.AddRow(psu.Name, string(dk), fmt.Sprint(psu.HoldupMin),
				fmtBytes(safe), est, live)
			rep.Values[fmt.Sprintf("%s/%s/safe_bytes", psu.Name, dk)] = float64(safe)
			opts.progressf("e5: %-9s %-4s safe=%s", psu.Name, dk, fmtBytes(safe))
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: safe buffer scales with hold-up × bandwidth; the ATX spec minimum",
		"supports no useful buffer on a rotating disk — measured hold-ups make RapiLog viable.")
	return rep, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func fmtBytes(n int64) string {
	switch {
	case n <= 0:
		return "0"
	case n < 1<<20:
		return fmt.Sprintf("%.0f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	}
}

// liveDumpCheck fills a RapiLog buffer to its bound with raw writes to
// unique blocks (so write absorption cannot shrink it), pulls the plug, and
// verifies every acknowledged byte is on the log partition after dump
// recovery. This validates the sizing rule end to end, worst case.
func liveDumpCheck(seed int64, psu power.PSUConfig, dk rig.DiskKind) (bool, error) {
	r, err := rig.New(rig.Config{Seed: seed, Mode: rig.RapiLog, Disk: dk, PSU: psu, NoDaemons: true})
	if err != nil {
		return false, err
	}
	s := r.S
	type ackRec struct {
		lba  int64
		data []byte
	}
	var acked []ackRec
	const chunk = 64 << 10
	s.Spawn(r.Plat.Domain(), "filler", func(p *sim.Proc) {
		target := r.Logger.MaxBuffer() * 8 / 10
		lba := int64(0)
		for i := 0; r.Logger.BufferedBytes() < target; i++ {
			data := make([]byte, chunk)
			for k := range data {
				data[k] = byte(i + k)
			}
			if err := r.Logger.Write(p, lba, data, false); err != nil {
				break
			}
			acked = append(acked, ackRec{lba, data})
			lba += chunk / int64(r.Logger.SectorSize())
		}
		r.CutPower()
		p.Sleep(time.Hour)
	})
	var ok bool
	audit := s.NewEvent("audit")
	s.Spawn(nil, "op", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		if _, err := r.RecoverAfterPower(p); err != nil {
			audit.Fire()
			return
		}
		boot := s.NewDomain("boot")
		s.Spawn(boot, "auditor", func(p *sim.Proc) {
			defer audit.Fire()
			for _, a := range acked {
				got, err := r.LogPart.Read(p, a.lba, len(a.data)/r.LogPart.SectorSize())
				if err != nil || !bytesEqual(got, a.data) {
					return
				}
			}
			ok = len(acked) > 0
		})
	})
	if err := drive(s, audit); err != nil {
		return false, err
	}
	return ok, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// campaignReport renders a fault campaign as a table row set.
func campaignReport(id, title, stands string, rows []campaignRow) *Report {
	table := metrics.NewTable("configuration", "trials", "acked commits", "lost", "violating trials")
	rep := newReport(id, title, stands, table)
	for _, row := range rows {
		table.AddRow(row.label,
			fmt.Sprintf("%d", len(row.sum.Trials)),
			fmt.Sprintf("%d", row.sum.TotalAcked),
			fmt.Sprintf("%d", row.sum.TotalLost),
			fmt.Sprintf("%d", row.sum.Violations))
		rep.Values[row.label+"/acked"] = float64(row.sum.TotalAcked)
		rep.Values[row.label+"/lost"] = float64(row.sum.TotalLost)
		rep.Values[row.label+"/violations"] = float64(row.sum.Violations)
	}
	return rep
}

type campaignRow struct {
	label string
	sum   faultinject.Summary
}

// runE6: repeated plug-pulls under TPC-C load, one campaign per engine
// personality, all in rapilog mode. The paper's headline safety result:
// zero committed transactions lost.
func runE6(opts Options) (*Report, error) {
	opts.applyDefaults()
	trials := 50
	if opts.Quick {
		trials = 4
	}
	var rows []campaignRow
	for _, pers := range []engine.Personality{engine.PGLike, engine.MYLike, engine.CXLike} {
		cfg := faultinject.CampaignConfig{
			Rig:    rig.Config{Seed: opts.Seed, Mode: rig.RapiLog, Personality: pers},
			Fault:  faultinject.PowerCut,
			Trials: trials,
		}
		sum := faultinject.RunCampaign(cfg)
		if sum.Errors > 0 {
			return nil, fmt.Errorf("e6 %s: %d trial errors (first: %v)", pers.Name, sum.Errors, firstErr(sum))
		}
		rows = append(rows, campaignRow{label: "rapilog/" + pers.Name, sum: sum})
		opts.progressf("e6: %-10s %d trials, %d acked, %d lost", pers.Name, trials, sum.TotalAcked, sum.TotalLost)
	}
	rep := campaignReport("e6", "power-failure trials under load (plug pulls)",
		"power-failure experiment table", rows)
	rep.Notes = append(rep.Notes, "expected shape: zero acked commits lost in every trial, every engine.")
	return rep, nil
}

// runE9: guest-OS crash campaign, rapilog (survives: the verified
// hypervisor keeps draining) vs native-async (loses recent acks).
func runE9(opts Options) (*Report, error) {
	opts.applyDefaults()
	trials := 50
	if opts.Quick {
		trials = 4
	}
	var rows []campaignRow
	for _, mode := range []rig.Mode{rig.RapiLog, rig.NativeAsync} {
		cfg := faultinject.CampaignConfig{
			Rig:    rig.Config{Seed: opts.Seed, Mode: mode},
			Fault:  faultinject.GuestCrash,
			Trials: trials,
			NewWorkload: func() workload.Workload {
				return &workload.Stress{} // maximise the unsafe window
			},
		}
		sum := faultinject.RunCampaign(cfg)
		if sum.Errors > 0 {
			return nil, fmt.Errorf("e9 %s: %d trial errors (first: %v)", mode, sum.Errors, firstErr(sum))
		}
		rows = append(rows, campaignRow{label: string(mode), sum: sum})
		opts.progressf("e9: %-12s %d trials, %d acked, %d lost", mode, trials, sum.TotalAcked, sum.TotalLost)
	}
	rep := campaignReport("e9", "guest-OS crash trials under load",
		"software-crash experiment table", rows)
	rep.Notes = append(rep.Notes,
		"expected shape: rapilog loses nothing (hypervisor survives and drains);",
		"native-async loses the commits acked since the last background force.")
	return rep, nil
}

// runA3: the sizing rule ablation — safe bound vs deliberately oversized
// buffers on a typical PSU.
func runA3(opts Options) (*Report, error) {
	opts.applyDefaults()
	trials := 20
	if opts.Quick {
		trials = 3
	}
	type cap struct {
		label string
		cfg   core.Config
	}
	caps := []cap{
		{"safe-bound", core.Config{}},
		{"8MiB-unsafe", core.Config{MaxBuffer: 8 << 20, Unsafe: true}},
		{"32MiB-unsafe", core.Config{MaxBuffer: 32 << 20, Unsafe: true}},
	}
	var rows []campaignRow
	for _, c := range caps {
		// A slow drive makes the drain lose the race against a
		// commit-heavy workload, so the buffer genuinely fills — the
		// regime the sizing rule exists for.
		cfg := faultinject.CampaignConfig{
			Rig: rig.Config{
				Seed: opts.Seed, Mode: rig.RapiLog,
				PSU:     power.PSUMeasured,
				HDD:     disk.HDDConfig{RPM: 3600, SectorsPerTrack: 250},
				RapiLog: c.cfg,
			},
			Fault:          faultinject.PowerCut,
			Trials:         trials,
			Clients:        16,
			InjectAfterMin: 1500 * time.Millisecond,
			InjectAfterMax: 2500 * time.Millisecond,
			NewWorkload:    func() workload.Workload { return &workload.Stress{ValueSize: 6000} },
		}
		sum := faultinject.RunCampaign(cfg)
		if sum.Errors > 0 {
			return nil, fmt.Errorf("a3 %s: %d trial errors (first: %v)", c.label, sum.Errors, firstErr(sum))
		}
		rows = append(rows, campaignRow{label: c.label, sum: sum})
		opts.progressf("a3: %-12s %d trials, %d acked, %d lost", c.label, trials, sum.TotalAcked, sum.TotalLost)
	}
	rep := campaignReport("a3", "ablation: violating the buffer sizing rule",
		"this reproduction's ablation of the safety argument", rows)
	rep.Notes = append(rep.Notes,
		"expected shape: the safe bound never loses; oversized buffers lose exactly when",
		"the emergency dump cannot finish inside the hold-up window.")
	return rep, nil
}

func firstErr(sum faultinject.Summary) error {
	for _, tr := range sum.Trials {
		if tr.Err != nil {
			return tr.Err
		}
	}
	return nil
}

// runA8: media-fault campaigns in rapilog mode. Transient write-error
// windows and latency storms must lose nothing and leave no backlog once
// the fault clears; a permanent grown-defect range must push the logger
// into degraded pass-through — slower, but still zero loss.
func runA8(opts Options) (*Report, error) {
	opts.applyDefaults()
	transientTrials, stormTrials, permTrials := 200, 50, 5
	if opts.Quick {
		transientTrials, stormTrials, permTrials = 3, 2, 1
	}
	cases := []struct {
		label     string
		fault     faultinject.Fault
		trials    int
		permanent bool
	}{
		{"transient-errors", faultinject.DiskError, transientTrials, false},
		{"latency-storm", faultinject.LatencyStorm, stormTrials, false},
		{"permanent-defect", faultinject.DiskError, permTrials, true},
	}
	var rows []campaignRow
	extras := map[string]float64{}
	for _, c := range cases {
		cfg := faultinject.CampaignConfig{
			Rig:            rig.Config{Seed: opts.Seed, Mode: rig.RapiLog},
			Fault:          c.fault,
			Trials:         c.trials,
			PermanentFault: c.permanent,
		}
		sum := faultinject.RunCampaign(cfg)
		if sum.Errors > 0 {
			return nil, fmt.Errorf("a8 %s: %d trial errors (first: %v)", c.label, sum.Errors, firstErr(sum))
		}
		var stranded int64
		for _, tr := range sum.Trials {
			if tr.BufferedAfter > stranded {
				stranded = tr.BufferedAfter
			}
		}
		rows = append(rows, campaignRow{label: c.label, sum: sum})
		extras[c.label+"/degraded_trials"] = float64(sum.DegradedTrials)
		extras[c.label+"/max_stranded_bytes"] = float64(stranded)
		opts.progressf("a8: %-17s %d trials, %d acked, %d lost, %d degraded",
			c.label, c.trials, sum.TotalAcked, sum.TotalLost, sum.DegradedTrials)
	}
	rep := campaignReport("a8", "media faults under load: retry, degrade, lose nothing",
		"this reproduction's media-fault extension of the safety argument", rows)
	for k, v := range extras {
		rep.Values[k] = v
	}
	rep.Notes = append(rep.Notes,
		"expected shape: transient windows and storms ride out on drain retries — zero loss,",
		"zero stranded bytes, no lingering degradation; a permanent defect degrades every",
		"trial to synchronous pass-through yet still loses nothing (acks wait for media).")
	return rep, nil
}
