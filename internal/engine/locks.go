package engine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// ErrLockTimeout aborts a transaction whose lock wait exceeded the
// configured bound — the backstop behind exact deadlock detection.
var ErrLockTimeout = errors.New("engine: lock wait timeout")

// ErrDeadlock aborts the transaction whose lock request closed a cycle in
// the waits-for graph. The victim should retry.
var ErrDeadlock = errors.New("engine: deadlock detected")

// LockMode is a row lock strength.
type LockMode int

// Lock modes.
const (
	LockS LockMode = iota // shared (readers)
	LockX                 // exclusive (writers)
)

func (m LockMode) String() string {
	if m == LockS {
		return "S"
	}
	return "X"
}

// lockTable is a strict two-phase-locking row lock manager with FIFO grant
// order and timeout-based deadlock resolution. It lives and dies with the
// engine instance: a crash abandons the whole table, which is correct
// because the crash also abandons every in-flight transaction.
type lockTable struct {
	s       *sim.Sim
	timeout time.Duration
	locks   map[string]*lock
	// waiting maps a blocked transaction to the lock it waits on, forming
	// the waits-for graph used for exact deadlock detection.
	waiting map[uint64]*lock
}

type lock struct {
	granted map[uint64]LockMode // txid → strongest held mode
	queue   []*lockReq
}

type lockReq struct {
	txid    uint64
	mode    LockMode
	granted *sim.Event
}

func newLockTable(s *sim.Sim, timeout time.Duration) *lockTable {
	if timeout == 0 {
		timeout = 200 * time.Millisecond
	}
	return &lockTable{s: s, timeout: timeout, locks: make(map[string]*lock), waiting: make(map[uint64]*lock)}
}

// acquire blocks until txid holds key in at least mode, or times out.
func (lt *lockTable) acquire(p *sim.Proc, txid uint64, key string, mode LockMode) error {
	lk := lt.locks[key]
	if lk == nil {
		lk = &lock{granted: make(map[uint64]LockMode)}
		lt.locks[key] = lk
	}
	if held, ok := lk.granted[txid]; ok && held >= mode {
		return nil // already strong enough
	}
	if lk.compatible(txid, mode) && (len(lk.queue) == 0 || lk.upgradeOf(txid, mode)) {
		// Grant immediately. Upgrades may jump the queue: the holder
		// blocking behind its own lock would deadlock instead.
		lk.granted[txid] = mode
		return nil
	}
	// Exact deadlock detection: refuse to wait if doing so closes a cycle
	// in the waits-for graph. The requester is the victim and retries.
	if lt.wouldDeadlock(txid, lk) {
		return fmt.Errorf("%w: key %q mode %v tx %d", ErrDeadlock, key, mode, txid)
	}
	req := &lockReq{txid: txid, mode: mode, granted: lt.s.NewEvent(fmt.Sprintf("lock:%s:%d", key, txid))}
	if lk.upgradeOf(txid, mode) {
		lk.queue = append([]*lockReq{req}, lk.queue...) // upgrades go first
	} else {
		lk.queue = append(lk.queue, req)
	}
	lt.waiting[txid] = lk
	granted := req.granted.WaitTimeout(p, lt.timeout)
	delete(lt.waiting, txid)
	if !granted {
		lk.removeReq(req)
		return fmt.Errorf("%w: key %q mode %v tx %d", ErrLockTimeout, key, mode, txid)
	}
	return nil
}

// blockerIDs returns the transactions a new waiter on lk would wait
// behind: current holders plus already-queued requests.
func (lk *lock) blockerIDs(txid uint64) []uint64 {
	var ids []uint64
	for other := range lk.granted {
		if other != txid {
			ids = append(ids, other)
		}
	}
	for _, r := range lk.queue {
		if r.txid != txid {
			ids = append(ids, r.txid)
		}
	}
	return ids
}

// wouldDeadlock reports whether txid waiting on lk closes a waits-for
// cycle. Exact and cheap: the simulation kernel is single-threaded, so the
// graph cannot change mid-walk.
func (lt *lockTable) wouldDeadlock(txid uint64, lk *lock) bool {
	seen := make(map[uint64]bool)
	var reaches func(from uint64) bool
	reaches = func(from uint64) bool {
		if from == txid {
			return true
		}
		if seen[from] {
			return false
		}
		seen[from] = true
		next := lt.waiting[from]
		if next == nil {
			return false
		}
		for _, b := range next.blockerIDs(from) {
			if reaches(b) {
				return true
			}
		}
		return false
	}
	for _, b := range lk.blockerIDs(txid) {
		if reaches(b) {
			return true
		}
	}
	return false
}

// upgradeOf reports whether (txid, mode) is an S→X upgrade by a current
// holder.
func (lk *lock) upgradeOf(txid uint64, mode LockMode) bool {
	held, ok := lk.granted[txid]
	return ok && mode == LockX && held == LockS
}

// compatible reports whether txid may be granted mode alongside the current
// holders (ignoring txid's own existing grant).
func (lk *lock) compatible(txid uint64, mode LockMode) bool {
	for other, held := range lk.granted {
		if other == txid {
			continue
		}
		if mode == LockX || held == LockX {
			return false
		}
	}
	return true
}

func (lk *lock) removeReq(req *lockReq) {
	for i, r := range lk.queue {
		if r == req {
			lk.queue = append(lk.queue[:i], lk.queue[i+1:]...)
			return
		}
	}
}

// releaseAll frees every lock txid holds and cancels its queued requests,
// then grants whatever became possible.
func (lt *lockTable) releaseAll(txid uint64, keys map[string]LockMode) {
	for key := range keys {
		lk := lt.locks[key]
		if lk == nil {
			continue
		}
		delete(lk.granted, txid)
		// Drop any still-queued request from this transaction.
		for i := 0; i < len(lk.queue); {
			if lk.queue[i].txid == txid {
				lk.queue = append(lk.queue[:i], lk.queue[i+1:]...)
				continue
			}
			i++
		}
		lk.grantWaiters()
		if len(lk.granted) == 0 && len(lk.queue) == 0 {
			delete(lt.locks, key)
		}
	}
}

// grantWaiters grants queued requests in FIFO order until the head is
// incompatible, batching consecutive compatible readers.
func (lk *lock) grantWaiters() {
	for len(lk.queue) > 0 {
		head := lk.queue[0]
		if head.granted.Fired() { // timed out but not yet removed
			lk.queue = lk.queue[1:]
			continue
		}
		if !lk.compatible(head.txid, head.mode) {
			return
		}
		lk.granted[head.txid] = head.mode
		lk.queue = lk.queue[1:]
		head.granted.Fire()
	}
}
