// Package engine implements the transactional key-value storage engine the
// RapiLog evaluation drives: write-ahead logging with group commit, strict
// two-phase locking, a no-steal buffer pool with double-write-protected
// fuzzy checkpoints, and full crash recovery.
//
// Architecture (deferred update / no-steal / redo-only):
//
//   - A transaction buffers its writes privately. Pages never contain
//     uncommitted data, so recovery needs no undo pass.
//   - Commit appends logical redo records plus a commit record to the WAL,
//     forces the log according to the commit mode (the knob the whole
//     paper turns), then applies the writes to the heap pages while still
//     holding its locks.
//   - A checkpoint flushes dirty pages (torn-write-safe) and advances the
//     WAL horizon to the oldest LSN a crash would still need: the minimum
//     first-LSN across transactions whose page application is incomplete.
//   - Recovery restores interrupted page writes, rebuilds the in-memory
//     index from the heap, then replays committed transactions found in
//     the WAL after the checkpoint horizon. Updates are whole-row puts, so
//     replay is idempotent.
//
// Engine personalities (PG-, MY-, CX-like) vary the commit batching window
// and CPU cost per operation — the parameters that shape the paper's
// per-engine throughput curves.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/hv"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pagestore"
	"repro/internal/sim"
	"repro/internal/wal"
)

// CommitMode selects the durability policy at commit.
type CommitMode int

// Commit modes.
const (
	// CommitSync forces the WAL before acknowledging: the safe default and
	// the expensive path RapiLog attacks.
	CommitSync CommitMode = iota
	// CommitAsync acknowledges without forcing; a background WAL writer
	// forces periodically. Fast and unsafe: the paper's "throw away
	// durability" baseline.
	CommitAsync
)

func (m CommitMode) String() string {
	if m == CommitSync {
		return "sync"
	}
	return "async"
}

// Personality bundles the parameters that make the simulated engine behave
// like a particular DBMS family.
type Personality struct {
	Name string
	// CommitDelay widens the group-commit window (wal.Config.CommitDelay).
	CommitDelay time.Duration
	// CPUPerOp is charged for each Get/Put/Delete.
	CPUPerOp time.Duration
	// CPUPerTxn is charged once per transaction (parse/plan/etc.).
	CPUPerTxn time.Duration
	// PageSize for the data partition.
	PageSize int
	// WalBlockSize for the log.
	WalBlockSize int
}

// The three personalities used in the evaluation. The parameters are not
// calibrated to any vendor; they span the design space the paper's engines
// covered: a lean engine with no commit delay (PG-like), one with a wider
// explicit batching window (MY-like), and a heavier, CPU-richer commercial
// style engine (CX-like).
var (
	PGLike = Personality{Name: "pg", CommitDelay: 0, CPUPerOp: 3 * time.Microsecond, CPUPerTxn: 60 * time.Microsecond, PageSize: 8192, WalBlockSize: 8192}
	MYLike = Personality{Name: "my", CommitDelay: 300 * time.Microsecond, CPUPerOp: 4 * time.Microsecond, CPUPerTxn: 80 * time.Microsecond, PageSize: 16384, WalBlockSize: 4096}
	CXLike = Personality{Name: "cx", CommitDelay: 100 * time.Microsecond, CPUPerOp: 9 * time.Microsecond, CPUPerTxn: 150 * time.Microsecond, PageSize: 8192, WalBlockSize: 4096}
)

// Personalities maps names to presets for CLI tools.
var Personalities = map[string]Personality{
	"pg": PGLike,
	"my": MYLike,
	"cx": CXLike,
}

// Config parameterises an Engine.
type Config struct {
	Personality
	CommitMode      CommitMode
	WalWriterEvery  time.Duration // async-mode background force period; default 10ms
	CheckpointEvery time.Duration // background checkpoint period; default 10s
	LockTimeout     time.Duration // deadlock bound; default 200ms
	// NoDaemons disables the background WAL writer and checkpointer;
	// tests drive those paths explicitly.
	NoDaemons bool
	// Obs, when set, registers the engine's instruments centrally and
	// traces the commit lifecycle (tx_begin through tx_durable).
	Obs *obs.Obs
}

func (c *Config) applyDefaults() {
	if c.Name == "" {
		c.Personality = PGLike
	}
	if c.WalWriterEvery == 0 {
		c.WalWriterEvery = 10 * time.Millisecond
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10 * time.Second
	}
}

// Stats aggregates engine activity.
type Stats struct {
	Commits *metrics.Counter
	Aborts  *metrics.Counter
	Reads   *metrics.Counter
	Writes  *metrics.Counter
	// CommitLatency is commit start → acknowledgement to the client — the
	// guest-visible figure. Under RapiLog the ack may precede platter
	// durability; DurableLatency is commit start → the commit record
	// passing the WAL durability horizon.
	CommitLatency  *metrics.Histogram
	DurableLatency *metrics.Histogram
	TxnLatency     *metrics.Histogram
	Checkpoints    *metrics.Counter
	RedoneTxns     *metrics.Counter // transactions replayed during recovery
	ForceErrors    *metrics.Counter // commits aborted by a failed log force
}

func newStats(reg *obs.Registry) *Stats {
	return &Stats{
		Commits:        reg.Counter("engine.commits"),
		Aborts:         reg.Counter("engine.aborts"),
		Reads:          reg.Counter("engine.reads"),
		Writes:         reg.Counter("engine.writes"),
		CommitLatency:  reg.Histogram("engine.commit.ack_latency"),
		DurableLatency: reg.Histogram("engine.commit.durable_latency"),
		TxnLatency:     reg.Histogram("engine.txn_latency"),
		Checkpoints:    reg.Counter("engine.checkpoints"),
		RedoneTxns:     reg.Counter("engine.redone_txns"),
		ForceErrors:    reg.Counter("engine.commit.force_errors"),
	}
}

// Engine is one database instance bound to a Platform. It lives in the
// platform's crash domain: killing the domain abandons the instance, and
// Open on a fresh Engine performs recovery from the devices.
type Engine struct {
	cfg   Config
	plat  hv.Platform
	s     *sim.Sim
	log   *wal.Log
	store *pagestore.Store
	heap  *heap
	locks *lockTable
	stats *Stats

	nextTxID uint64
	ckptLSN  uint64
	// pendingDurable holds commits whose ack has (or will) come back before
	// their commit record is on the log device. Entries are appended in
	// commit-LSN order, so the WAL's durability callback retires a prefix.
	pendingDurable []pendingCommit
	// applying tracks transactions between their first WAL append and the
	// completion of their page application; the checkpoint horizon must
	// not pass their first LSN.
	applying map[uint64]uint64 // txid → first LSN
	ckptBusy bool
	ckptDone *sim.Signal
	// payloadBufs is a freelist of redo-record encode buffers. A commit
	// owns one buffer for its whole append loop — the checkpoint-retry path
	// re-appends the same encoding after a yield, during which another
	// transaction may commit and must take a buffer of its own.
	payloadBufs [][]byte
}

// getPayloadBuf takes an encode buffer from the freelist (nil when empty —
// updatePayload grows it to fit).
func (e *Engine) getPayloadBuf() []byte {
	if n := len(e.payloadBufs); n > 0 {
		b := e.payloadBufs[n-1]
		e.payloadBufs = e.payloadBufs[:n-1]
		return b
	}
	return nil
}

func (e *Engine) putPayloadBuf(b []byte) {
	if cap(b) > 0 {
		e.payloadBufs = append(e.payloadBufs, b[:0])
	}
}

// pendingCommit tracks one commit from WAL append to durable-on-device.
type pendingCommit struct {
	needLSN uint64 // durable once FlushedLSN reaches this
	txid    uint64
	start   sim.Time   // commit start, for the durable-latency histogram
	span    obs.SpanID // the transaction's trace span
}

// onWalDurable is the wal.Log durability callback: retire every pending
// commit whose record is now below the flushed horizon.
func (e *Engine) onWalDurable(lsn uint64) {
	now := e.s.Now()
	n := 0
	for ; n < len(e.pendingDurable) && e.pendingDurable[n].needLSN <= lsn; n++ {
		pc := e.pendingDurable[n]
		e.stats.DurableLatency.Observe(now.Sub(pc.start))
		e.tracer().Emit(now.Duration(), obs.EvTxDurable, 0, pc.span, int64(pc.txid), 0)
	}
	e.pendingDurable = e.pendingDurable[n:]
}

// tracer returns the engine's tracer (nil — a no-op — when unconfigured).
func (e *Engine) tracer() *obs.Tracer { return e.cfg.Obs.Tracer() }

// updatePayload frames a logical redo record — delete flag, key, value —
// into buf's backing array, growing it only when capacity falls short. The
// commit path passes a pooled buffer (wal.Append copies synchronously, so
// the same buffer re-encodes every write of the transaction).
func updatePayload(buf []byte, key string, val []byte, del bool) []byte {
	n := 3 + len(key) + len(val)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	flag := byte(0)
	if del {
		flag = 1
	}
	buf[0] = flag
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(key)))
	copy(buf[3:], key)
	copy(buf[3+len(key):], val)
	return buf
}

func parseUpdatePayload(payload []byte) (key string, val []byte, del bool, err error) {
	if len(payload) < 3 {
		return "", nil, false, errors.New("engine: short update payload")
	}
	del = payload[0] == 1
	kl := int(binary.LittleEndian.Uint16(payload[1:3]))
	if 3+kl > len(payload) {
		return "", nil, false, errors.New("engine: update payload key overrun")
	}
	return string(payload[3 : 3+kl]), payload[3+kl:], del, nil
}

// Open boots an engine on plat: double-write restore, index rebuild, WAL
// redo, then normal service. It must run in the platform's domain.
func Open(p *sim.Proc, plat hv.Platform, cfg Config) (*Engine, error) {
	cfg.applyDefaults()
	s := plat.Sim()
	store, err := pagestore.Open(s, plat.DataDisk(), pagestore.Config{PageSize: cfg.PageSize})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		plat:     plat,
		s:        s,
		store:    store,
		heap:     newHeap(store),
		locks:    newLockTable(s, cfg.LockTimeout),
		stats:    newStats(cfg.Obs.Registry()),
		applying: make(map[uint64]uint64),
		ckptDone: s.NewSignal("engine.ckpt_done"),
	}

	// 1. Torn checkpoint repair.
	if _, err := store.RecoverDoubleWrite(p); err != nil {
		return nil, err
	}

	// 2. Recovery metadata. A missing control block proves no checkpoint
	// ever started, hence no page was ever flushed (phase 1 writes the
	// control before any page), so every page is known fresh.
	walCfg := wal.Config{BlockSize: cfg.WalBlockSize, CommitDelay: cfg.CommitDelay, Obs: cfg.Obs}
	startLSN := wal.FirstLSN(walCfg)
	nextPage := int64(1)
	if blob, err := store.ReadControl(p); err != nil {
		return nil, err
	} else if blob == nil {
		store.SetWrittenThrough(-1)
	} else {
		if len(blob) < 24 {
			return nil, errors.New("engine: short control block")
		}
		e.ckptLSN = binary.LittleEndian.Uint64(blob[0:8])
		nextPage = int64(binary.LittleEndian.Uint64(blob[8:16]))
		e.nextTxID = binary.LittleEndian.Uint64(blob[16:24])
		startLSN = e.ckptLSN
		store.SetWrittenThrough(nextPage - 1)
	}

	// 3. Rebuild the in-memory index from the heap pages.
	if err := e.heap.rebuild(p, nextPage); err != nil {
		return nil, err
	}

	// 4. Redo committed transactions from the WAL.
	scan, err := wal.Scan(p, plat.LogDisk(), walCfg, startLSN)
	if err != nil {
		return nil, err
	}
	updates := make(map[uint64][]wal.Record)
	for _, rec := range scan.Records {
		switch rec.Type {
		case wal.RecUpdate:
			updates[rec.TxID] = append(updates[rec.TxID], rec)
		case wal.RecCommit:
			for _, u := range updates[rec.TxID] {
				key, val, del, err := parseUpdatePayload(u.Payload)
				if err != nil {
					return nil, err
				}
				if del {
					if err := e.heap.del(p, key); err != nil {
						return nil, err
					}
				} else if err := e.heap.put(p, key, val); err != nil {
					return nil, err
				}
			}
			delete(updates, rec.TxID)
			e.stats.RedoneTxns.Inc()
		case wal.RecAbort:
			delete(updates, rec.TxID)
		}
		if rec.TxID >= e.nextTxID {
			e.nextTxID = rec.TxID + 1
		}
	}

	// 5. Resume the log at its tail and fold recovered state into a fresh
	// checkpoint so the next crash recovers from here.
	e.log, err = wal.OpenAt(p, s, plat.LogDisk(), walCfg, scan.EndLSN)
	if err != nil {
		return nil, err
	}
	e.log.SetOnDurable(e.onWalDurable)
	if err := e.Checkpoint(p); err != nil {
		return nil, err
	}

	if !cfg.NoDaemons {
		e.spawnDaemons()
	}
	return e, nil
}

// Stats returns the engine's counters.
func (e *Engine) Stats() *Stats { return e.stats }

// Log exposes the WAL (for experiment harnesses).
func (e *Engine) Log() *wal.Log { return e.log }

// Store exposes the page store (for experiment harnesses).
func (e *Engine) Store() *pagestore.Store { return e.store }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// checkRowSize rejects rows that could not be stored in a heap page or
// framed in a single WAL record, before any lock is taken.
func (e *Engine) checkRowSize(key string, val []byte) error {
	if recSize(len(key), valCapFor(len(val))) > e.store.UsableSize()-pageUsedHdr {
		return fmt.Errorf("%w: key %d + val %d bytes vs page", ErrValueTooLarge, len(key), len(val))
	}
	walCfg := wal.Config{BlockSize: e.cfg.WalBlockSize}
	if 3+len(key)+len(val) > walCfg.MaxPayload() {
		return fmt.Errorf("%w: key %d + val %d bytes vs WAL block", ErrValueTooLarge, len(key), len(val))
	}
	return nil
}

// burn models CPU consumption: hold a core for the scaled burst.
func (e *Engine) burn(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	cpu := e.plat.CPU()
	cpu.Acquire(p, 1)
	defer cpu.Release(1)
	p.Sleep(e.plat.CPUTime(d))
}

// Checkpoint flushes dirty pages and advances the WAL horizon. Concurrent
// callers coalesce onto the in-flight checkpoint.
func (e *Engine) Checkpoint(p *sim.Proc) error {
	if e.ckptBusy {
		e.ckptDone.Wait(p)
		return nil
	}
	e.ckptBusy = true
	defer func() {
		e.ckptBusy = false
		e.ckptDone.Broadcast()
	}()

	// The horizon: nothing below it will be rescanned, so every commit
	// below it must be fully in the pages we are about to flush.
	horizon := e.log.AppendedLSN()
	for _, first := range e.applying {
		if first < horizon {
			horizon = first
		}
	}
	// Phase 1: extend the control block's page-scan range to cover every
	// page this checkpoint might flush, keeping the old LSN horizon. A
	// crash mid-flush then still rebuilds over all flushed pages, and redo
	// from the old horizon makes their contents consistent. The loop
	// absorbs pages allocated while the control write itself was in
	// flight.
	for {
		n := e.heap.nextPage
		if err := e.store.WriteControl(p, e.controlBlob(e.ckptLSN, n)); err != nil {
			return err
		}
		if e.heap.nextPage == n {
			break
		}
	}
	if err := e.store.Checkpoint(p); err != nil {
		return err
	}
	// Phase 2: publish the new horizon now that the pages are durable.
	if err := e.store.WriteControl(p, e.controlBlob(horizon, e.heap.nextPage)); err != nil {
		return err
	}
	e.ckptLSN = horizon
	e.log.SetOldestNeeded(horizon)
	e.stats.Checkpoints.Inc()
	return nil
}

// spawnDaemons starts the background WAL writer (async mode) and the
// periodic checkpointer in the platform's domain.
func (e *Engine) spawnDaemons() {
	dom := e.plat.Domain()
	if e.cfg.CommitMode == CommitAsync {
		e.s.Spawn(dom, e.cfg.Name+".walwriter", func(p *sim.Proc) {
			p.SetDaemon(true)
			for {
				p.Sleep(e.cfg.WalWriterEvery)
				_ = e.log.Force(p, e.log.AppendedLSN())
			}
		})
	}
	e.s.Spawn(dom, e.cfg.Name+".checkpointer", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			p.Sleep(e.cfg.CheckpointEvery)
			_ = e.Checkpoint(p)
		}
	})
}

func (e *Engine) controlBlob(horizon uint64, nextPage int64) []byte {
	blob := make([]byte, 24)
	binary.LittleEndian.PutUint64(blob[0:8], horizon)
	binary.LittleEndian.PutUint64(blob[8:16], uint64(nextPage))
	binary.LittleEndian.PutUint64(blob[16:24], e.nextTxID)
	return blob
}

// maybeCheckpointForSpace handles ErrLogFull by forcing a checkpoint.
func (e *Engine) maybeCheckpointForSpace(p *sim.Proc, err error) error {
	if !errors.Is(err, wal.ErrLogFull) {
		return err
	}
	if cerr := e.Checkpoint(p); cerr != nil {
		return fmt.Errorf("engine: checkpoint for log space: %v (after %v)", cerr, err)
	}
	return nil
}
