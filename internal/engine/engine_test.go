package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/hv"
	"repro/internal/power"
	"repro/internal/sim"
)

// testRig wires a native platform over fast persistent memory devices.
type testRig struct {
	s    *sim.Sim
	m    *power.Machine
	plat *hv.Native
}

func newTestRig(seed int64) *testRig {
	s := sim.New(seed)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	logd := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 1 << 17})
	datad := disk.NewMem(s, disk.MemConfig{Name: "data", Persistent: true, Capacity: 1 << 18})
	m.AttachDevice(logd)
	m.AttachDevice(datad)
	return &testRig{s: s, m: m, plat: hv.NewNative(m, logd, datad)}
}

func (r *testRig) run(t *testing.T, name string, fn func(p *sim.Proc, e *Engine)) {
	t.Helper()
	r.runCfg(t, name, Config{NoDaemons: true}, fn)
}

func (r *testRig) runCfg(t *testing.T, name string, cfg Config, fn func(p *sim.Proc, e *Engine)) {
	t.Helper()
	r.s.Spawn(r.plat.Domain(), name, func(p *sim.Proc) {
		e, err := Open(p, r.plat, cfg)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		fn(p, e)
	})
	if err := r.s.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestBasicPutGetCommit(t *testing.T) {
	r := newTestRig(1)
	r.run(t, "t", func(p *sim.Proc, e *Engine) {
		tx := e.Begin(p)
		if err := tx.Put("alpha", []byte("one")); err != nil {
			t.Errorf("put: %v", err)
		}
		if v, ok, _ := tx.Get("alpha"); !ok || string(v) != "one" {
			t.Error("read-your-own-write failed")
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
		tx2 := e.Begin(p)
		v, ok, err := tx2.Get("alpha")
		if err != nil || !ok || string(v) != "one" {
			t.Errorf("post-commit read: %q %v %v", v, ok, err)
		}
		_ = tx2.Commit()
	})
}

func TestAbortDiscardsWrites(t *testing.T) {
	r := newTestRig(1)
	r.run(t, "t", func(p *sim.Proc, e *Engine) {
		tx := e.Begin(p)
		_ = tx.Put("k", []byte("committed"))
		_ = tx.Commit()

		tx2 := e.Begin(p)
		_ = tx2.Put("k", []byte("doomed"))
		_ = tx2.Delete("k2")
		tx2.Abort()

		tx3 := e.Begin(p)
		v, ok, _ := tx3.Get("k")
		if !ok || string(v) != "committed" {
			t.Errorf("aborted write leaked: %q %v", v, ok)
		}
		_ = tx3.Commit()
	})
}

func TestDeleteCommit(t *testing.T) {
	r := newTestRig(1)
	r.run(t, "t", func(p *sim.Proc, e *Engine) {
		tx := e.Begin(p)
		_ = tx.Put("gone", []byte("x"))
		_ = tx.Commit()
		tx2 := e.Begin(p)
		_ = tx2.Delete("gone")
		_ = tx2.Commit()
		tx3 := e.Begin(p)
		if _, ok, _ := tx3.Get("gone"); ok {
			t.Error("deleted key still visible")
		}
		_ = tx3.Commit()
	})
}

func TestTxDoneGuards(t *testing.T) {
	r := newTestRig(1)
	r.run(t, "t", func(p *sim.Proc, e *Engine) {
		tx := e.Begin(p)
		_ = tx.Commit()
		if err := tx.Put("k", nil); !errors.Is(err, ErrTxDone) {
			t.Errorf("put after commit: %v", err)
		}
		if _, _, err := tx.Get("k"); !errors.Is(err, ErrTxDone) {
			t.Errorf("get after commit: %v", err)
		}
		if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
			t.Errorf("double commit: %v", err)
		}
	})
}

func TestLargeValueRelocation(t *testing.T) {
	r := newTestRig(1)
	r.run(t, "t", func(p *sim.Proc, e *Engine) {
		small := bytes.Repeat([]byte{1}, 10)
		big := bytes.Repeat([]byte{2}, 500)
		tx := e.Begin(p)
		_ = tx.Put("grow", small)
		_ = tx.Commit()
		tx2 := e.Begin(p)
		_ = tx2.Put("grow", big)
		_ = tx2.Commit()
		tx3 := e.Begin(p)
		v, ok, _ := tx3.Get("grow")
		if !ok || !bytes.Equal(v, big) {
			t.Error("relocated row wrong")
		}
		_ = tx3.Commit()
		tx4 := e.Begin(p)
		if err := tx4.Put("huge", bytes.Repeat([]byte{3}, 20000)); !errors.Is(err, ErrValueTooLarge) {
			t.Errorf("oversized row: %v", err)
		}
		tx4.Abort()
	})
}

func TestIsolationWriteBlocksReader(t *testing.T) {
	r := newTestRig(1)
	var readerSawUncommitted bool
	var order []string
	r.s.Spawn(r.plat.Domain(), "main", func(p *sim.Proc) {
		e, err := Open(p, r.plat, Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		seed := e.Begin(p)
		_ = seed.Put("acct", []byte("100"))
		_ = seed.Commit()

		r.s.Spawn(r.plat.Domain(), "writer", func(p *sim.Proc) {
			tx := e.Begin(p)
			_ = tx.Put("acct", []byte("200"))
			order = append(order, "writer-staged")
			p.Sleep(5 * time.Millisecond) // hold the X lock
			_ = tx.Commit()
			order = append(order, "writer-committed")
		})
		r.s.Spawn(r.plat.Domain(), "reader", func(p *sim.Proc) {
			p.Sleep(time.Millisecond) // let the writer stage first
			tx := e.Begin(p)
			v, _, err := tx.Get("acct")
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			order = append(order, "reader-read")
			if string(v) == "200" {
				// Fine: blocked until commit. But it must never be a dirty
				// read of the staged value before the commit completed.
				for _, o := range order {
					if o == "writer-committed" {
						_ = tx.Commit()
						return
					}
				}
				readerSawUncommitted = true
			}
			_ = tx.Commit()
		})
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if readerSawUncommitted {
		t.Fatal("dirty read: reader saw uncommitted value")
	}
}

func TestLockTimeoutResolvesDeadlock(t *testing.T) {
	r := newTestRig(1)
	var timeouts int
	r.s.Spawn(r.plat.Domain(), "main", func(p *sim.Proc) {
		e, err := Open(p, r.plat, Config{NoDaemons: true, LockTimeout: 10 * time.Millisecond})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		seed := e.Begin(p)
		_ = seed.Put("a", []byte("1"))
		_ = seed.Put("b", []byte("2"))
		_ = seed.Commit()

		// Classic AB/BA deadlock.
		for i := 0; i < 2; i++ {
			first, second := "a", "b"
			if i == 1 {
				first, second = "b", "a"
			}
			r.s.Spawn(r.plat.Domain(), fmt.Sprintf("tx%d", i), func(p *sim.Proc) {
				tx := e.Begin(p)
				if err := tx.Put(first, []byte("x")); err != nil {
					tx.Abort()
					return
				}
				p.Sleep(time.Millisecond)
				if err := tx.Put(second, []byte("y")); err != nil {
					if errors.Is(err, ErrLockTimeout) || errors.Is(err, ErrDeadlock) {
						timeouts++
					}
					tx.Abort()
					return
				}
				_ = tx.Commit()
			})
		}
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if timeouts == 0 {
		t.Fatal("AB/BA deadlock never resolved by timeout")
	}
}

func TestSharedReadersRunConcurrently(t *testing.T) {
	r := newTestRig(1)
	var concurrent, peak int
	r.s.Spawn(r.plat.Domain(), "main", func(p *sim.Proc) {
		e, err := Open(p, r.plat, Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		seed := e.Begin(p)
		_ = seed.Put("hot", []byte("v"))
		_ = seed.Commit()
		for i := 0; i < 4; i++ {
			r.s.Spawn(r.plat.Domain(), fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				tx := e.Begin(p)
				if _, _, err := tx.Get("hot"); err != nil {
					t.Errorf("get: %v", err)
				}
				concurrent++
				if concurrent > peak {
					peak = concurrent
				}
				p.Sleep(2 * time.Millisecond) // hold S lock
				concurrent--
				_ = tx.Commit()
			})
		}
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Fatalf("peak concurrent S holders = %d, shared locks not shared", peak)
	}
}

// crashRecoverRig puts the engine on HDDs under a real machine so we can
// crash and power-cycle it.
type crashRig struct {
	s        *sim.Sim
	m        *power.Machine
	hdd      *disk.HDD
	logPart  *disk.Partition
	dataPart *disk.Partition
	plat     *hv.Native
}

func newCrashRig(seed int64) *crashRig {
	s := sim.New(seed)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
	m.AttachDevice(hdd)
	logPart, _ := disk.NewPartition(hdd, "log", 0, 1<<17)
	dataPart, _ := disk.NewPartition(hdd, "data", 1<<17, 1<<19)
	return &crashRig{s: s, m: m, hdd: hdd, logPart: logPart, dataPart: dataPart,
		plat: hv.NewNative(m, logPart, dataPart)}
}

func TestRecoveryAfterCleanRun(t *testing.T) {
	r := newCrashRig(1)
	r.s.Spawn(r.plat.Domain(), "life1", func(p *sim.Proc) {
		e, err := Open(p, r.plat, Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for i := 0; i < 20; i++ {
			tx := e.Begin(p)
			_ = tx.Put(fmt.Sprintf("key-%02d", i), []byte(fmt.Sprintf("val-%02d", i)))
			if err := tx.Commit(); err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
		}
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Crash (kill the domain), reboot, verify everything.
	r.plat.Crash()
	r.plat.Reboot()
	r.s.Spawn(r.plat.Domain(), "life2", func(p *sim.Proc) {
		e, err := Open(p, r.plat, Config{NoDaemons: true})
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		for i := 0; i < 20; i++ {
			tx := e.Begin(p)
			v, ok, err := tx.Get(fmt.Sprintf("key-%02d", i))
			if err != nil || !ok || string(v) != fmt.Sprintf("val-%02d", i) {
				t.Errorf("key-%02d lost after crash: %q %v %v", i, v, ok, err)
				return
			}
			_ = tx.Commit()
		}
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryLosesUncommittedKeepsCommitted(t *testing.T) {
	r := newCrashRig(2)
	crashed := r.s.NewEvent("crashed")
	r.s.Spawn(r.plat.Domain(), "life1", func(p *sim.Proc) {
		e, err := Open(p, r.plat, Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		tx := e.Begin(p)
		_ = tx.Put("committed", []byte("yes"))
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
		tx2 := e.Begin(p)
		_ = tx2.Put("uncommitted", []byte("no"))
		// Crash with tx2 staged but not committed.
		crashed.Fire()
		r.plat.Crash()
	})
	r.s.Spawn(nil, "op", func(p *sim.Proc) {
		crashed.Wait(p)
		p.Sleep(time.Millisecond)
		r.plat.Reboot()
		r.s.Spawn(r.plat.Domain(), "life2", func(p *sim.Proc) {
			e, err := Open(p, r.plat, Config{NoDaemons: true})
			if err != nil {
				t.Errorf("reopen: %v", err)
				return
			}
			tx := e.Begin(p)
			if v, ok, _ := tx.Get("committed"); !ok || string(v) != "yes" {
				t.Error("committed transaction lost")
			}
			if _, ok, _ := tx.Get("uncommitted"); ok {
				t.Error("uncommitted write survived crash")
			}
			_ = tx.Commit()
		})
	})
	if err := r.s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncCommitLosesRecentAcks(t *testing.T) {
	// The unsafe baseline: commits acked without forcing can vanish on a
	// crash. This asymmetry versus CommitSync is the paper's entire
	// motivation.
	r := newCrashRig(3)
	var ackedKeys []string
	crashed := r.s.NewEvent("crashed")
	r.s.Spawn(r.plat.Domain(), "life1", func(p *sim.Proc) {
		e, err := Open(p, r.plat, Config{NoDaemons: true, CommitMode: CommitAsync})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for i := 0; i < 10; i++ {
			tx := e.Begin(p)
			k := fmt.Sprintf("k%d", i)
			_ = tx.Put(k, []byte("v"))
			if err := tx.Commit(); err == nil {
				ackedKeys = append(ackedKeys, k)
			}
		}
		crashed.Fire()
		r.plat.Crash()
	})
	lost := 0
	r.s.Spawn(nil, "op", func(p *sim.Proc) {
		crashed.Wait(p)
		p.Sleep(time.Millisecond)
		r.plat.Reboot()
		r.s.Spawn(r.plat.Domain(), "life2", func(p *sim.Proc) {
			e, err := Open(p, r.plat, Config{NoDaemons: true})
			if err != nil {
				t.Errorf("reopen: %v", err)
				return
			}
			tx := e.Begin(p)
			for _, k := range ackedKeys {
				if _, ok, _ := tx.Get(k); !ok {
					lost++
				}
			}
			_ = tx.Commit()
		})
	})
	if err := r.s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(ackedKeys) != 10 {
		t.Fatalf("only %d acks", len(ackedKeys))
	}
	if lost == 0 {
		t.Fatal("async commit lost nothing across a crash — unsafe baseline not unsafe")
	}
}

func TestCheckpointTruncatesRedoWork(t *testing.T) {
	r := newCrashRig(4)
	r.s.Spawn(r.plat.Domain(), "life1", func(p *sim.Proc) {
		e, err := Open(p, r.plat, Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			tx := e.Begin(p)
			_ = tx.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 100))
			_ = tx.Commit()
		}
		if err := e.Checkpoint(p); err != nil {
			t.Errorf("checkpoint: %v", err)
		}
		// A few more commits after the checkpoint.
		for i := 30; i < 35; i++ {
			tx := e.Begin(p)
			_ = tx.Put(fmt.Sprintf("k%d", i), []byte("post"))
			_ = tx.Commit()
		}
	})
	if err := r.s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	r.plat.Crash()
	r.plat.Reboot()
	r.s.Spawn(r.plat.Domain(), "life2", func(p *sim.Proc) {
		e, err := Open(p, r.plat, Config{NoDaemons: true})
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		// Only the 5 post-checkpoint transactions need replay.
		if n := e.Stats().RedoneTxns.Value(); n > 6 {
			t.Errorf("redone %d txns; checkpoint did not truncate redo", n)
		}
		tx := e.Begin(p)
		for i := 0; i < 35; i++ {
			if _, ok, _ := tx.Get(fmt.Sprintf("k%d", i)); !ok {
				t.Errorf("k%d missing after recovery", i)
			}
		}
		_ = tx.Commit()
	})
	if err := r.s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestPowerFailureDuringLoadSyncEngine(t *testing.T) {
	// Full-machine power cut during a synchronous-commit workload: every
	// acked commit must survive.
	r := newCrashRig(5)
	var acked []string
	r.s.Spawn(r.plat.Domain(), "life1", func(p *sim.Proc) {
		e, err := Open(p, r.plat, Config{NoDaemons: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for i := 0; ; i++ {
			tx := e.Begin(p)
			k := fmt.Sprintf("k%04d", i)
			if err := tx.Put(k, bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
				return
			}
			if err := tx.Commit(); err != nil {
				return
			}
			acked = append(acked, k)
			if i == 25 {
				r.m.CutPower()
			}
		}
	})
	verified := false
	r.s.Spawn(nil, "op", func(p *sim.Proc) {
		p.Sleep(30 * time.Second)
		r.m.RestorePower()
		r.plat.Reboot()
		r.s.Spawn(r.plat.Domain(), "life2", func(p *sim.Proc) {
			e, err := Open(p, r.plat, Config{NoDaemons: true})
			if err != nil {
				t.Errorf("reopen: %v", err)
				return
			}
			tx := e.Begin(p)
			for _, k := range acked {
				if _, ok, _ := tx.Get(k); !ok {
					t.Errorf("acked key %s lost after power failure", k)
				}
			}
			_ = tx.Commit()
			verified = true
		})
	})
	if err := r.s.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(acked) < 26 {
		t.Fatalf("only %d acks before cut", len(acked))
	}
	if !verified {
		t.Fatal("verification never ran")
	}
}

func TestPersonalityPresets(t *testing.T) {
	for name, p := range Personalities {
		if p.Name != name {
			t.Errorf("personality %q has Name %q", name, p.Name)
		}
		if p.CPUPerOp <= 0 || p.CPUPerTxn <= 0 || p.PageSize <= 0 {
			t.Errorf("personality %q has zero costs", name)
		}
	}
	if CXLike.CPUPerOp <= PGLike.CPUPerOp {
		t.Error("CX should be more CPU-hungry than PG")
	}
}

func TestCommitModeString(t *testing.T) {
	if CommitSync.String() != "sync" || CommitAsync.String() != "async" {
		t.Fatal("commit mode strings wrong")
	}
}
