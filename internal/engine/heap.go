package engine

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pagestore"
	"repro/internal/sim"
)

// ErrValueTooLarge rejects rows that cannot fit in a page.
var ErrValueTooLarge = errors.New("engine: row too large for a page")

// Heap record layout, inside a page's usable area:
//
//	page[0:4]   used — bytes consumed, starting at 4
//	records     keyLen(2) valCap(2) valLen(2) flags(1) key... val[valCap]...
//
// valCap reserves slack so same-key updates of similar size happen in
// place; a larger value tombstones the old record and inserts a new one.
// Deleted records are tombstoned and their space is not reused (no
// compactor; see DESIGN.md non-goals).
const (
	recFixedHdr   = 7
	flagTombstone = 1
	pageUsedHdr   = 4
)

// rowLoc addresses a live record.
type rowLoc struct {
	pageID int64
	off    int32
}

// heap manages record placement over a pagestore and the in-memory index.
type heap struct {
	store      *pagestore.Store
	index      map[string]rowLoc
	insertPage int64 // current append target
	nextPage   int64 // first never-used page
}

func newHeap(store *pagestore.Store) *heap {
	return &heap{store: store, index: make(map[string]rowLoc), insertPage: 0, nextPage: 1}
}

func valCapFor(n int) int { return n + n/4 }

func recSize(keyLen, valCap int) int { return recFixedHdr + keyLen + valCap }

// usable returns the record area capacity of a page.
func (h *heap) usable() int { return h.store.UsableSize() }

func used(data []byte) int       { return int(binary.LittleEndian.Uint32(data[0:4])) }
func setUsed(data []byte, n int) { binary.LittleEndian.PutUint32(data[0:4], uint32(n)) }

// put inserts or updates a row. It may block p on page I/O. The caller must
// hold the X lock on key.
func (h *heap) put(p *sim.Proc, key string, val []byte) error {
	if recSize(len(key), valCapFor(len(val))) > h.usable()-pageUsedHdr {
		return fmt.Errorf("%w: key %d + val %d bytes", ErrValueTooLarge, len(key), len(val))
	}
	if loc, ok := h.index[key]; ok {
		pg, err := h.store.Get(p, loc.pageID)
		if err != nil {
			return err
		}
		data := pg.Data()
		valCap := int(binary.LittleEndian.Uint16(data[loc.off+2 : loc.off+4]))
		if valCap >= len(val) {
			// In-place update.
			binary.LittleEndian.PutUint16(data[loc.off+4:], uint16(len(val)))
			keyLen := int(binary.LittleEndian.Uint16(data[loc.off : loc.off+2]))
			copy(data[int(loc.off)+recFixedHdr+keyLen:], val)
			h.store.MarkDirty(loc.pageID)
			return nil
		}
		// Relocate: tombstone the old record first.
		data[loc.off+6] |= flagTombstone
		h.store.MarkDirty(loc.pageID)
		delete(h.index, key)
	}
	return h.insert(p, key, val)
}

// insert appends a fresh record; the key must not be live in the index.
func (h *heap) insert(p *sim.Proc, key string, val []byte) error {
	valCap := valCapFor(len(val))
	need := recSize(len(key), valCap)
	for {
		pg, err := h.store.Get(p, h.insertPage)
		if err != nil {
			return err
		}
		data := pg.Data()
		u := used(data)
		if u == 0 {
			u = pageUsedHdr
		}
		if u+need <= len(data) {
			off := int32(u)
			binary.LittleEndian.PutUint16(data[off:], uint16(len(key)))
			binary.LittleEndian.PutUint16(data[off+2:], uint16(valCap))
			binary.LittleEndian.PutUint16(data[off+4:], uint16(len(val)))
			data[off+6] = 0
			copy(data[int(off)+recFixedHdr:], key)
			copy(data[int(off)+recFixedHdr+len(key):], val)
			setUsed(data, u+need)
			h.store.MarkDirty(h.insertPage)
			h.index[key] = rowLoc{pageID: h.insertPage, off: off}
			return nil
		}
		// Page full: move the insert cursor to a fresh page.
		if h.nextPage >= h.store.NumPages() {
			return fmt.Errorf("engine: data partition full (%d pages)", h.store.NumPages())
		}
		h.insertPage = h.nextPage
		h.nextPage++
	}
}

// get returns the value for key, or ok=false. The caller must hold at least
// the S lock.
func (h *heap) get(p *sim.Proc, key string) ([]byte, bool, error) {
	loc, ok := h.index[key]
	if !ok {
		return nil, false, nil
	}
	pg, err := h.store.Get(p, loc.pageID)
	if err != nil {
		return nil, false, err
	}
	data := pg.Data()
	keyLen := int(binary.LittleEndian.Uint16(data[loc.off : loc.off+2]))
	valLen := int(binary.LittleEndian.Uint16(data[loc.off+4 : loc.off+6]))
	if data[loc.off+6]&flagTombstone != 0 {
		return nil, false, nil
	}
	start := int(loc.off) + recFixedHdr + keyLen
	return append([]byte(nil), data[start:start+valLen]...), true, nil
}

// del tombstones key's record. The caller must hold the X lock.
func (h *heap) del(p *sim.Proc, key string) error {
	loc, ok := h.index[key]
	if !ok {
		return nil
	}
	pg, err := h.store.Get(p, loc.pageID)
	if err != nil {
		return err
	}
	pg.Data()[loc.off+6] |= flagTombstone
	h.store.MarkDirty(loc.pageID)
	delete(h.index, key)
	return nil
}

// rebuild scans pages [0, nextPage) and reconstructs the index and insert
// cursor. Used at recovery, before WAL redo.
func (h *heap) rebuild(p *sim.Proc, nextPage int64) error {
	h.index = make(map[string]rowLoc)
	h.nextPage = nextPage
	h.insertPage = 0
	lastNonEmpty := int64(0)
	for id := int64(0); id < nextPage; id++ {
		pg, err := h.store.Get(p, id)
		if err != nil {
			return fmt.Errorf("engine: rebuilding index at page %d: %v", id, err)
		}
		data := pg.Data()
		u := used(data)
		if u > len(data) {
			return fmt.Errorf("engine: page %d used=%d exceeds capacity", id, u)
		}
		off := pageUsedHdr
		for off+recFixedHdr <= u {
			keyLen := int(binary.LittleEndian.Uint16(data[off : off+2]))
			valCap := int(binary.LittleEndian.Uint16(data[off+2 : off+4]))
			size := recSize(keyLen, valCap)
			if off+size > u {
				return fmt.Errorf("engine: page %d record at %d overruns used area", id, off)
			}
			if data[off+6]&flagTombstone == 0 {
				key := string(data[off+recFixedHdr : off+recFixedHdr+keyLen])
				h.index[key] = rowLoc{pageID: id, off: int32(off)}
			}
			off += size
		}
		if u > pageUsedHdr {
			lastNonEmpty = id
		}
	}
	if nextPage > 0 {
		h.insertPage = lastNonEmpty
	}
	return nil
}
