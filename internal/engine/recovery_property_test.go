package engine

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// The linearisable-durability property, randomised: run a random schedule
// of put/delete/commit/abort against the engine, maintain a model map
// updated only when Commit returns, crash at a random instant, recover,
// and require the recovered database to equal the model exactly — every
// committed value present and correct, nothing uncommitted visible.
//
// (The in-flight transaction at crash time may or may not have committed;
// the schedule is arranged so the crash never races a Commit call, keeping
// the model exact rather than two-valued.)
func TestRecoveryMatchesModelProperty(t *testing.T) {
	prop := func(seed int64, nOps uint8) bool {
		r := newCrashRig(seed)
		model := make(map[string][]byte)
		ops := int(nOps)%80 + 20
		ready := r.s.NewEvent("ready")

		r.s.Spawn(r.plat.Domain(), "life1", func(p *sim.Proc) {
			e, err := Open(p, r.plat, Config{NoDaemons: true})
			if err != nil {
				t.Logf("seed %d: open: %v", seed, err)
				return
			}
			for i := 0; i < ops; i++ {
				tx := e.Begin(p)
				staged := make(map[string][]byte)
				deleted := make(map[string]bool)
				nWrites := 1 + r.s.Rand().Intn(4)
				for wi := 0; wi < nWrites; wi++ {
					key := fmt.Sprintf("k%d", r.s.Rand().Intn(15))
					if r.s.Rand().Intn(4) == 0 {
						if err := tx.Delete(key); err != nil {
							break
						}
						delete(staged, key)
						deleted[key] = true
					} else {
						val := bytes.Repeat([]byte{byte(r.s.Rand().Intn(255) + 1)}, 1+r.s.Rand().Intn(300))
						if err := tx.Put(key, val); err != nil {
							break
						}
						staged[key] = val
						delete(deleted, key)
					}
				}
				if r.s.Rand().Intn(5) == 0 {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					continue
				}
				for k, v := range staged {
					model[k] = v
				}
				for k := range deleted {
					delete(model, k)
				}
				// Occasionally checkpoint mid-run.
				if r.s.Rand().Intn(20) == 0 {
					_ = e.Checkpoint(p)
				}
			}
			ready.Fire()
			p.Sleep(time.Hour) // crash arrives while idle
		})

		ok := true
		r.s.Spawn(nil, "op", func(p *sim.Proc) {
			ready.Wait(p)
			// Crash at a random instant after the schedule finished (the
			// WAL tail may still be undrained in async setups; here sync).
			p.Sleep(time.Duration(r.s.Rand().Intn(1000)) * time.Microsecond)
			r.plat.Crash()
			p.Sleep(time.Millisecond)
			r.plat.Reboot()
			r.s.Spawn(r.plat.Domain(), "life2", func(p *sim.Proc) {
				e, err := Open(p, r.plat, Config{NoDaemons: true})
				if err != nil {
					t.Logf("seed %d: recovery open: %v", seed, err)
					ok = false
					return
				}
				tx := e.Begin(p)
				defer tx.Abort()
				for k, want := range model {
					got, found, err := tx.Get(k)
					if err != nil || !found || !bytes.Equal(got, want) {
						t.Logf("seed %d: key %s: found=%v err=%v", seed, k, found, err)
						ok = false
						return
					}
				}
				for i := 0; i < 15; i++ {
					k := fmt.Sprintf("k%d", i)
					if _, inModel := model[k]; inModel {
						continue
					}
					if _, found, _ := tx.Get(k); found {
						t.Logf("seed %d: ghost key %s after recovery", seed, k)
						ok = false
						return
					}
				}
			})
		})
		if err := r.s.RunFor(5 * time.Minute); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The same property under a mid-operation crash: the schedule keeps
// running when the domain is killed at a random virtual time, so the crash
// can land inside a transaction or a checkpoint. Keys acked before the
// crash (per the journal discipline) must survive; the model here records
// only commits whose Commit call returned before the kill.
func TestRecoveryUnderMidRunCrashProperty(t *testing.T) {
	totalAcked := 0
	prop := func(seed int64, crashMicros uint16) bool {
		r := newCrashRig(seed + 1000)
		type committed struct {
			key string
			val []byte
		}
		var acked []committed

		r.s.Spawn(r.plat.Domain(), "life1", func(p *sim.Proc) {
			e, err := Open(p, r.plat, Config{NoDaemons: true})
			if err != nil {
				return
			}
			for i := 0; ; i++ {
				tx := e.Begin(p)
				key := fmt.Sprintf("u%d", i) // unique keys: exact audit
				val := bytes.Repeat([]byte{byte(i%250 + 1)}, 50+i%200)
				if err := tx.Put(key, val); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					continue
				}
				acked = append(acked, committed{key, val})
				if i%25 == 24 {
					_ = e.Checkpoint(p)
				}
			}
		})
		crashAt := time.Duration(crashMicros%50000+1000) * time.Microsecond
		r.s.After(crashAt, r.plat.Crash)

		ok := true
		r.s.Spawn(nil, "op", func(p *sim.Proc) {
			p.Sleep(crashAt + time.Millisecond)
			ackedAtCrash := len(acked)
			totalAcked += ackedAtCrash
			r.plat.Reboot()
			r.s.Spawn(r.plat.Domain(), "life2", func(p *sim.Proc) {
				e, err := Open(p, r.plat, Config{NoDaemons: true})
				if err != nil {
					ok = false
					return
				}
				tx := e.Begin(p)
				defer tx.Abort()
				for _, c := range acked[:ackedAtCrash] {
					got, found, err := tx.Get(c.key)
					if err != nil || !found || !bytes.Equal(got, c.val) {
						t.Logf("seed %d crash@%v: %s lost or wrong", seed, crashAt, c.key)
						ok = false
						return
					}
				}
			})
		})
		if err := r.s.RunFor(5 * time.Minute); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
	if totalAcked == 0 {
		t.Fatal("no trial acknowledged anything before its crash: property vacuous")
	}
}
