package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// Direct lock-table tests: the engine tests exercise locking through
// transactions; these pin down the manager's own semantics.

func ltRig(seed int64, timeout time.Duration) (*sim.Sim, *lockTable) {
	s := sim.New(seed)
	return s, newLockTable(s, timeout)
}

func TestLockSharedCompatible(t *testing.T) {
	s, lt := ltRig(1, 0)
	var holders int
	for i := 0; i < 3; i++ {
		id := uint64(i + 1)
		s.Spawn(nil, fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			if err := lt.acquire(p, id, "k", LockS); err != nil {
				t.Errorf("S acquire: %v", err)
				return
			}
			holders++
			p.Sleep(time.Millisecond)
			lt.releaseAll(id, map[string]LockMode{"k": LockS})
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if holders != 3 {
		t.Fatalf("holders = %d", holders)
	}
}

func TestLockExclusiveBlocksShared(t *testing.T) {
	s, lt := ltRig(1, 0)
	var order []string
	s.Spawn(nil, "writer", func(p *sim.Proc) {
		_ = lt.acquire(p, 1, "k", LockX)
		order = append(order, "X-acquired")
		p.Sleep(5 * time.Millisecond)
		order = append(order, "X-released")
		lt.releaseAll(1, map[string]LockMode{"k": LockX})
	})
	s.Spawn(nil, "reader", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		_ = lt.acquire(p, 2, "k", LockS)
		order = append(order, "S-acquired")
		lt.releaseAll(2, map[string]LockMode{"k": LockS})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"X-acquired", "X-released", "S-acquired"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestLockReacquireStrongerIsUpgrade(t *testing.T) {
	s, lt := ltRig(1, 0)
	s.Spawn(nil, "p", func(p *sim.Proc) {
		if err := lt.acquire(p, 1, "k", LockS); err != nil {
			t.Errorf("S: %v", err)
		}
		// Sole holder: upgrade granted immediately.
		if err := lt.acquire(p, 1, "k", LockX); err != nil {
			t.Errorf("upgrade: %v", err)
		}
		// X implies S: re-acquiring weaker is a no-op.
		if err := lt.acquire(p, 1, "k", LockS); err != nil {
			t.Errorf("weaker re-acquire: %v", err)
		}
		lt.releaseAll(1, map[string]LockMode{"k": LockX})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLockUpgradeWaitsForOtherReaders(t *testing.T) {
	s, lt := ltRig(1, 0)
	var upgraded sim.Time
	s.Spawn(nil, "upgrader", func(p *sim.Proc) {
		_ = lt.acquire(p, 1, "k", LockS)
		p.Sleep(time.Millisecond)
		if err := lt.acquire(p, 1, "k", LockX); err != nil {
			t.Errorf("upgrade: %v", err)
			return
		}
		upgraded = p.Now()
		lt.releaseAll(1, map[string]LockMode{"k": LockX})
	})
	s.Spawn(nil, "reader", func(p *sim.Proc) {
		_ = lt.acquire(p, 2, "k", LockS)
		p.Sleep(5 * time.Millisecond)
		lt.releaseAll(2, map[string]LockMode{"k": LockS})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if upgraded.Duration() < 5*time.Millisecond {
		t.Fatalf("upgrade completed at %v, before the other reader released", upgraded)
	}
}

func TestLockDeadlockDetectedImmediately(t *testing.T) {
	s, lt := ltRig(1, time.Hour) // huge timeout: detection must not rely on it
	var deadlocks int
	start := sim.Time(0)
	var resolvedAt sim.Time
	for i := 0; i < 2; i++ {
		id := uint64(i + 1)
		first, second := "a", "b"
		if i == 1 {
			first, second = "b", "a"
		}
		s.Spawn(nil, fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			_ = lt.acquire(p, id, first, LockX)
			p.Sleep(time.Millisecond)
			if err := lt.acquire(p, id, second, LockX); err != nil {
				if errors.Is(err, ErrDeadlock) {
					deadlocks++
					resolvedAt = p.Now()
				}
				lt.releaseAll(id, map[string]LockMode{first: LockX})
				return
			}
			lt.releaseAll(id, map[string]LockMode{first: LockX, second: LockX})
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if deadlocks == 0 {
		t.Fatal("AB/BA cycle not detected")
	}
	if resolvedAt.Sub(start) > 10*time.Millisecond {
		t.Fatalf("deadlock resolved at %v — timed out instead of detected", resolvedAt)
	}
}

func TestLockThreeWayCycleDetected(t *testing.T) {
	s, lt := ltRig(1, time.Hour)
	keys := []string{"a", "b", "c"}
	var deadlocks int
	for i := 0; i < 3; i++ {
		id := uint64(i + 1)
		first, second := keys[i], keys[(i+1)%3]
		s.Spawn(nil, fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			_ = lt.acquire(p, id, first, LockX)
			p.Sleep(time.Millisecond)
			if err := lt.acquire(p, id, second, LockX); err != nil {
				if errors.Is(err, ErrDeadlock) {
					deadlocks++
				}
				lt.releaseAll(id, map[string]LockMode{first: LockX})
				return
			}
			p.Sleep(time.Millisecond)
			lt.releaseAll(id, map[string]LockMode{first: LockX, second: LockX})
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if deadlocks == 0 {
		t.Fatal("three-way cycle not detected")
	}
	if deadlocks == 3 {
		t.Fatal("every participant aborted; only cycle-closers should")
	}
}

func TestLockSharedUpgradeDeadlock(t *testing.T) {
	// Two S holders both upgrading is an unavoidable cycle: one must die.
	s, lt := ltRig(1, time.Hour)
	var deadlocks, upgrades int
	for i := 0; i < 2; i++ {
		id := uint64(i + 1)
		s.Spawn(nil, fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			_ = lt.acquire(p, id, "k", LockS)
			p.Sleep(time.Millisecond)
			if err := lt.acquire(p, id, "k", LockX); err != nil {
				if errors.Is(err, ErrDeadlock) {
					deadlocks++
				}
				lt.releaseAll(id, map[string]LockMode{"k": LockS})
				return
			}
			upgrades++
			lt.releaseAll(id, map[string]LockMode{"k": LockX})
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if deadlocks != 1 || upgrades != 1 {
		t.Fatalf("deadlocks=%d upgrades=%d, want exactly one victim and one winner", deadlocks, upgrades)
	}
}

func TestLockTimeoutBackstop(t *testing.T) {
	// A waiter blocked by a holder that never releases (no cycle) falls
	// back to the timeout.
	s, lt := ltRig(1, 5*time.Millisecond)
	var timedOut bool
	s.Spawn(nil, "holder", func(p *sim.Proc) {
		_ = lt.acquire(p, 1, "k", LockX)
		p.Sleep(time.Hour)
		lt.releaseAll(1, map[string]LockMode{"k": LockX})
	})
	s.Spawn(nil, "waiter", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		err := lt.acquire(p, 2, "k", LockX)
		timedOut = errors.Is(err, ErrLockTimeout)
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("waiter did not time out")
	}
}

func TestLockReleaseCleansEmptyEntries(t *testing.T) {
	s, lt := ltRig(1, 0)
	s.Spawn(nil, "p", func(p *sim.Proc) {
		_ = lt.acquire(p, 1, "k1", LockX)
		_ = lt.acquire(p, 1, "k2", LockS)
		lt.releaseAll(1, map[string]LockMode{"k1": LockX, "k2": LockS})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(lt.locks) != 0 {
		t.Fatalf("lock table retains %d empty entries", len(lt.locks))
	}
}

func TestLockWriterNotStarvedByReaders(t *testing.T) {
	// Readers keep arriving; a queued writer must still get the lock
	// (FIFO grant: readers behind the writer wait).
	s, lt := ltRig(1, 0)
	var writerAt sim.Time
	s.Spawn(nil, "r0", func(p *sim.Proc) {
		_ = lt.acquire(p, 100, "k", LockS)
		p.Sleep(2 * time.Millisecond)
		lt.releaseAll(100, map[string]LockMode{"k": LockS})
	})
	s.Spawn(nil, "writer", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		_ = lt.acquire(p, 1, "k", LockX)
		writerAt = p.Now()
		lt.releaseAll(1, map[string]LockMode{"k": LockX})
	})
	for i := 0; i < 5; i++ {
		id := uint64(i + 10)
		s.Spawn(nil, fmt.Sprintf("r%d", i+1), func(p *sim.Proc) {
			p.Sleep(time.Duration(i)*500*time.Microsecond + 1500*time.Microsecond)
			_ = lt.acquire(p, id, "k", LockS)
			p.Sleep(2 * time.Millisecond)
			lt.releaseAll(id, map[string]LockMode{"k": LockS})
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if writerAt.Duration() > 3*time.Millisecond {
		t.Fatalf("writer waited until %v: starved by later readers", writerAt)
	}
}

func TestLockModeString(t *testing.T) {
	if LockS.String() != "S" || LockX.String() != "X" {
		t.Fatal("mode strings")
	}
}
