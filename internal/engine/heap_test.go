package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/pagestore"
	"repro/internal/sim"
)

// Direct heap tests: record placement, relocation, tombstones and index
// rebuild, independent of transactions and the WAL.

func heapRig(t *testing.T, seed int64) (*sim.Sim, *pagestore.Store, *heap) {
	t.Helper()
	s := sim.New(seed)
	dev := disk.NewMem(s, disk.MemConfig{Persistent: true, Capacity: 1 << 17})
	st, err := pagestore.Open(s, dev, pagestore.Config{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	st.SetWrittenThrough(-1)
	return s, st, newHeap(st)
}

func TestHeapPutGetDelete(t *testing.T) {
	s, _, h := heapRig(t, 1)
	s.Spawn(nil, "t", func(p *sim.Proc) {
		if err := h.put(p, "k", []byte("v1")); err != nil {
			t.Errorf("put: %v", err)
		}
		v, ok, _ := h.get(p, "k")
		if !ok || string(v) != "v1" {
			t.Errorf("get: %q %v", v, ok)
		}
		if err := h.del(p, "k"); err != nil {
			t.Errorf("del: %v", err)
		}
		if _, ok, _ := h.get(p, "k"); ok {
			t.Error("deleted key visible")
		}
		// Deleting a missing key is a no-op.
		if err := h.del(p, "nope"); err != nil {
			t.Errorf("del missing: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapInPlaceUpdateKeepsLocation(t *testing.T) {
	s, _, h := heapRig(t, 1)
	s.Spawn(nil, "t", func(p *sim.Proc) {
		_ = h.put(p, "k", bytes.Repeat([]byte{1}, 100))
		loc1 := h.index["k"]
		_ = h.put(p, "k", bytes.Repeat([]byte{2}, 100)) // fits valCap
		loc2 := h.index["k"]
		if loc1 != loc2 {
			t.Errorf("same-size update relocated: %+v → %+v", loc1, loc2)
		}
		v, _, _ := h.get(p, "k")
		if !bytes.Equal(v, bytes.Repeat([]byte{2}, 100)) {
			t.Error("in-place update content wrong")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapGrowingUpdateRelocates(t *testing.T) {
	s, _, h := heapRig(t, 1)
	s.Spawn(nil, "t", func(p *sim.Proc) {
		_ = h.put(p, "k", bytes.Repeat([]byte{1}, 10))
		loc1 := h.index["k"]
		_ = h.put(p, "k", bytes.Repeat([]byte{2}, 1000)) // exceeds valCap
		loc2 := h.index["k"]
		if loc1 == loc2 {
			t.Error("growing update did not relocate")
		}
		v, ok, _ := h.get(p, "k")
		if !ok || len(v) != 1000 || v[0] != 2 {
			t.Error("relocated content wrong")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapFillsMultiplePages(t *testing.T) {
	s, _, h := heapRig(t, 1)
	s.Spawn(nil, "t", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			if err := h.put(p, fmt.Sprintf("key-%03d", i), bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
		if h.nextPage < 5 {
			t.Errorf("nextPage = %d; 100×250B rows should span several 4KiB pages", h.nextPage)
		}
		for i := 0; i < 100; i++ {
			v, ok, _ := h.get(p, fmt.Sprintf("key-%03d", i))
			if !ok || v[0] != byte(i) {
				t.Errorf("key-%03d wrong after spill", i)
				return
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapRowTooLarge(t *testing.T) {
	s, st, h := heapRig(t, 1)
	s.Spawn(nil, "t", func(p *sim.Proc) {
		if err := h.put(p, "big", make([]byte, st.UsableSize())); !errors.Is(err, ErrValueTooLarge) {
			t.Errorf("oversized row: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapRebuildRestoresIndex(t *testing.T) {
	s, st, h := heapRig(t, 1)
	s.Spawn(nil, "t", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			_ = h.put(p, fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i + 1)}, 150))
		}
		_ = h.del(p, "k10")
		_ = h.put(p, "k20", bytes.Repeat([]byte{0xFF}, 600)) // relocate
		if err := st.Checkpoint(p); err != nil {
			t.Errorf("checkpoint: %v", err)
		}

		// Fresh heap over the same store (index lost, pages remain).
		h2 := newHeap(st)
		if err := h2.rebuild(p, h.nextPage); err != nil {
			t.Errorf("rebuild: %v", err)
			return
		}
		if _, ok, _ := h2.get(p, "k10"); ok {
			t.Error("tombstoned key resurrected by rebuild")
		}
		v, ok, _ := h2.get(p, "k20")
		if !ok || len(v) != 600 || v[0] != 0xFF {
			t.Error("relocated key wrong after rebuild")
		}
		for i := 0; i < 50; i++ {
			if i == 10 || i == 20 {
				continue
			}
			v, ok, _ := h2.get(p, fmt.Sprintf("k%02d", i))
			if !ok || v[0] != byte(i+1) {
				t.Errorf("k%02d wrong after rebuild", i)
				return
			}
		}
		// Inserts must continue cleanly after rebuild.
		if err := h2.insert(p, "fresh", []byte("x")); err != nil {
			t.Errorf("insert after rebuild: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: the heap behaves like a map under random put/delete sequences,
// across an index rebuild.
func TestHeapMatchesMapProperty(t *testing.T) {
	prop := func(seed int64, ops uint8) bool {
		s, st, h := heapRig(t, seed)
		model := make(map[string]byte)
		good := true
		s.Spawn(nil, "t", func(p *sim.Proc) {
			n := int(ops)%120 + 10
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("k%d", s.Rand().Intn(20))
				switch s.Rand().Intn(3) {
				case 0, 1:
					val := byte(s.Rand().Intn(255) + 1)
					size := 1 + s.Rand().Intn(500)
					if err := h.put(p, key, bytes.Repeat([]byte{val}, size)); err != nil {
						good = false
						return
					}
					model[key] = val
				case 2:
					if err := h.del(p, key); err != nil {
						good = false
						return
					}
					delete(model, key)
				}
			}
			// Rebuild and compare against the model.
			_ = st.Checkpoint(p)
			h2 := newHeap(st)
			if err := h2.rebuild(p, h.nextPage); err != nil {
				good = false
				return
			}
			for key, val := range model {
				v, ok, _ := h2.get(p, key)
				if !ok || v[0] != val {
					good = false
					return
				}
			}
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("k%d", i)
				if _, inModel := model[key]; !inModel {
					if _, ok, _ := h2.get(p, key); ok {
						good = false
						return
					}
				}
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return good
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
