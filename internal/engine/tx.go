package engine

import (
	"errors"
	"fmt"

	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wal"
)

// ErrTxDone guards against use of a finished transaction.
var ErrTxDone = errors.New("engine: transaction already committed or aborted")

// Tx is a transaction: strict two-phase locking, deferred updates (writes
// stay private until commit), read-your-own-writes.
type Tx struct {
	e    *Engine
	p    *sim.Proc
	id   uint64
	done bool

	locks    map[string]LockMode
	writes   []txWrite
	writeIdx map[string]int // key → index in writes (latest wins)
	began    sim.Time
	span     obs.SpanID
}

type txWrite struct {
	key string
	val []byte
	del bool
}

// Begin starts a transaction on behalf of process p.
func (e *Engine) Begin(p *sim.Proc) *Tx {
	e.nextTxID++
	t := &Tx{
		e:        e,
		p:        p,
		id:       e.nextTxID,
		locks:    make(map[string]LockMode),
		writeIdx: make(map[string]int),
		began:    p.Now(),
	}
	if tr := e.tracer(); tr.Enabled() {
		t.span = tr.NewSpan()
		tr.Emit(p.Now().Duration(), obs.EvTxBegin, t.span, 0, int64(t.id), 0)
	}
	e.burn(p, e.cfg.CPUPerTxn)
	return t
}

// ID returns the transaction id.
func (t *Tx) ID() uint64 { return t.id }

func (t *Tx) lock(key string, mode LockMode) error {
	if held, ok := t.locks[key]; ok && held >= mode {
		return nil
	}
	if err := t.e.locks.acquire(t.p, t.id, key, mode); err != nil {
		return err
	}
	if held, ok := t.locks[key]; !ok || mode > held {
		t.locks[key] = mode
	}
	return nil
}

// Get returns the value for key under a shared lock (or the transaction's
// own pending write).
func (t *Tx) Get(key string) ([]byte, bool, error) {
	if t.done {
		return nil, false, ErrTxDone
	}
	t.e.burn(t.p, t.e.cfg.CPUPerOp)
	if err := t.lock(key, LockS); err != nil {
		return nil, false, err
	}
	if i, ok := t.writeIdx[key]; ok {
		w := t.writes[i]
		if w.del {
			return nil, false, nil
		}
		return append([]byte(nil), w.val...), true, nil
	}
	t.e.stats.Reads.Inc()
	return t.e.heap.get(t.p, key)
}

// Put stages a write under an exclusive lock.
func (t *Tx) Put(key string, val []byte) error {
	if t.done {
		return ErrTxDone
	}
	if err := t.e.checkRowSize(key, val); err != nil {
		return err
	}
	t.e.burn(t.p, t.e.cfg.CPUPerOp)
	if err := t.lock(key, LockX); err != nil {
		return err
	}
	t.stage(txWrite{key: key, val: append([]byte(nil), val...)})
	return nil
}

// Delete stages a deletion under an exclusive lock.
func (t *Tx) Delete(key string) error {
	if t.done {
		return ErrTxDone
	}
	t.e.burn(t.p, t.e.cfg.CPUPerOp)
	if err := t.lock(key, LockX); err != nil {
		return err
	}
	t.stage(txWrite{key: key, del: true})
	return nil
}

func (t *Tx) stage(w txWrite) {
	if i, ok := t.writeIdx[w.key]; ok {
		t.writes[i] = w
		return
	}
	t.writeIdx[w.key] = len(t.writes)
	t.writes = append(t.writes, w)
}

// Commit makes the transaction durable per the engine's commit mode and
// applies its writes. On error the transaction is aborted.
func (t *Tx) Commit() error {
	if t.done {
		return ErrTxDone
	}
	e := t.e
	commitStart := t.p.Now()

	if len(t.writes) == 0 {
		t.finish()
		e.stats.Commits.Inc()
		e.stats.TxnLatency.Observe(t.p.Now().Sub(t.began))
		e.tracer().Emit(t.p.Now().Duration(), obs.EvTxAck, 0, t.span, int64(t.id), 0)
		return nil
	}

	// 1. Redo records. The encode buffer is pooled and owned by this commit
	// until the loop ends: wal.Append copies synchronously, so one buffer
	// re-encodes every write, and it stays valid across the checkpoint
	// retry's yield.
	var firstLSN uint64
	pbuf := e.getPayloadBuf()
	for i, w := range t.writes {
		payload := updatePayload(pbuf, w.key, w.val, w.del)
		pbuf = payload
		lsn, err := e.log.Append(t.p, wal.RecUpdate, t.id, payload)
		if err != nil {
			if err = e.maybeCheckpointForSpace(t.p, err); err != nil {
				e.putPayloadBuf(pbuf)
				t.Abort()
				return err
			}
			if lsn, err = e.log.Append(t.p, wal.RecUpdate, t.id, payload); err != nil {
				e.putPayloadBuf(pbuf)
				t.Abort()
				return fmt.Errorf("engine: log append after checkpoint: %v", err)
			}
		}
		if i == 0 {
			firstLSN = lsn
			e.applying[t.id] = firstLSN
		}
		e.tracer().Emit(t.p.Now().Duration(), obs.EvWalAppend, 0, t.span, int64(lsn), int64(len(payload)))
	}
	e.putPayloadBuf(pbuf)
	commitLSN, err := e.log.Append(t.p, wal.RecCommit, t.id, nil)
	if err != nil {
		delete(e.applying, t.id)
		t.Abort()
		return err
	}
	e.tracer().Emit(t.p.Now().Duration(), obs.EvWalAppend, 0, t.span, int64(commitLSN), 0)

	// Track the commit until its record is on the log device. Appends are
	// not preempted between the commit-record append and here, so entries
	// stay in commit-LSN order (the callback pops a prefix).
	e.pendingDurable = append(e.pendingDurable, pendingCommit{
		needLSN: commitLSN + 1, txid: t.id, start: commitStart, span: t.span,
	})

	// 2. Durability: the line the whole evaluation measures.
	if e.cfg.CommitMode == CommitSync {
		if err := e.log.Force(t.p, commitLSN+1); err != nil {
			e.stats.ForceErrors.Inc()
			e.dropPendingDurable(t.id)
			delete(e.applying, t.id)
			t.Abort()
			// Classify for the client: a transient media error means the
			// commit was aborted cleanly and a retry may well succeed —
			// nothing about the engine is broken. The %w chain keeps the
			// disk sentinel visible to errors.Is all the way up.
			if disk.IsTransient(err) {
				return fmt.Errorf("engine: commit force failed (transient media error, retryable): %w", err)
			}
			return fmt.Errorf("engine: commit force failed: %w", err)
		}
	}

	// 3. Apply to the heap while still holding every lock.
	for _, w := range t.writes {
		var err error
		if w.del {
			err = e.heap.del(t.p, w.key)
		} else {
			err = e.heap.put(t.p, w.key, w.val)
		}
		if err != nil {
			// The commit record is durable; the in-memory state is now
			// behind it. This is unrecoverable without a restart — the
			// same stance real engines take on apply-phase I/O errors.
			delete(e.applying, t.id)
			t.finish()
			return fmt.Errorf("engine: apply after commit: %v", err)
		}
	}
	delete(e.applying, t.id)
	e.stats.Writes.Add(int64(len(t.writes)))
	t.finish()
	e.stats.Commits.Inc()
	e.stats.CommitLatency.Observe(t.p.Now().Sub(commitStart))
	e.stats.TxnLatency.Observe(t.p.Now().Sub(t.began))
	e.tracer().Emit(t.p.Now().Duration(), obs.EvTxAck, 0, t.span, int64(t.id), 0)
	return nil
}

// dropPendingDurable removes txid's entry after a failed force (the commit
// is aborting; its record may never reach the device).
func (e *Engine) dropPendingDurable(txid uint64) {
	for i := len(e.pendingDurable) - 1; i >= 0; i-- {
		if e.pendingDurable[i].txid == txid {
			e.pendingDurable = append(e.pendingDurable[:i], e.pendingDurable[i+1:]...)
			return
		}
	}
}

// Abort discards the transaction's staged writes and releases its locks.
func (t *Tx) Abort() {
	if t.done {
		return
	}
	// A compensating record is unnecessary (no-steal: nothing of ours can
	// be on disk), but an abort record lets recovery drop our updates
	// without waiting for generation end — append best-effort.
	if len(t.writes) > 0 {
		_, _ = t.e.log.Append(t.p, wal.RecAbort, t.id, nil)
	}
	t.e.stats.Aborts.Inc()
	t.finish()
}

func (t *Tx) finish() {
	t.done = true
	t.e.locks.releaseAll(t.id, t.locks)
}
