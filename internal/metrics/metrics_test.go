package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("empty")
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 {
		t.Fatal("empty histogram returned nonzero stats")
	}
	if !strings.Contains(h.String(), "empty") {
		t.Fatalf("String() = %q", h.String())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram("lat")
	for _, d := range []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != time.Millisecond {
		t.Fatalf("Min = %v", h.Min())
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}
	if got, want := h.Mean(), 22*time.Millisecond; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram("q")
	// 1..1000 microseconds uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.90, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		relErr := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if relErr > 0.05 {
			t.Errorf("Quantile(%v) = %v, want ~%v (rel err %.3f)", tc.q, got, tc.want, relErr)
		}
	}
}

func TestHistogramQuantileBoundsClamped(t *testing.T) {
	h := NewHistogram("q")
	h.Observe(5 * time.Millisecond)
	if h.Quantile(-1) == 0 && h.Quantile(2) == 0 {
		t.Fatal("clamped quantiles returned zero for non-empty histogram")
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := NewHistogram("neg")
	h.Observe(-time.Second)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative observation recorded as min=%v max=%v", h.Min(), h.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram("r")
	h.Observe(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear")
	}
}

// Property: the quantile of a single-valued histogram is within bucket
// quantisation (~3%) of that value, for any magnitude.
func TestHistogramBucketRoundTripProperty(t *testing.T) {
	prop := func(v uint32) bool {
		d := time.Duration(v)
		h := NewHistogram("p")
		h.Observe(d)
		got := h.Quantile(0.5)
		if d < 64 {
			return got == d || got <= d // tiny values map to exact linear buckets
		}
		relErr := math.Abs(float64(got-d)) / float64(d)
		return relErr <= 1.0/subBuckets+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: bucketLow(bucketIndex(d)) <= d for all d (lower bound really is
// a lower bound) and index is monotone in d.
func TestBucketMonotoneProperty(t *testing.T) {
	prop := func(a, b uint32) bool {
		da, db := time.Duration(a), time.Duration(b)
		ia, ib := bucketIndex(da), bucketIndex(db)
		if bucketLow(ia) > da || bucketLow(ib) > db {
			return false
		}
		if da <= db {
			return ia <= ib
		}
		return ib <= ia
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: bucketLow(bucketIndex(d)) is a lower bound within the ~3%
// (1/subBuckets) relative error the log-linear layout promises, across the
// full magnitude range the histogram covers.
func TestBucketRoundTripRelativeError(t *testing.T) {
	prop := func(raw uint64) bool {
		// Spread raw across all octaves: shift by a pseudo-random amount
		// derived from the value itself.
		d := time.Duration(raw >> (raw % 40))
		if d < 0 {
			d = -d
		}
		low := bucketLow(bucketIndex(d))
		if low > d {
			return false
		}
		if d < subBuckets {
			return low == d // exact in the linear range
		}
		if d >= 1<<(numOctaves+subBucketBits-1) {
			return true // beyond the covered range the index saturates
		}
		relErr := float64(d-low) / float64(d)
		return relErr <= 1.0/subBuckets+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Pin the boundary cases quick.Check may miss.
	for _, d := range []time.Duration{0, 1, subBuckets - 1, subBuckets, subBuckets + 1, math.MaxInt64} {
		low := bucketLow(bucketIndex(d))
		if low > d {
			t.Fatalf("bucketLow(bucketIndex(%d)) = %d > input", d, low)
		}
	}
}

func TestSeriesAppendOutOfOrderPanics(t *testing.T) {
	s := NewSeries("oo")
	s.Append(5*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-order Append")
		}
	}()
	s.Append(4*time.Second, 2)
}

func TestCounter(t *testing.T) {
	c := NewCounter("txns")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("Value = %d", c.Value())
	}
	if got := c.Rate(2 * time.Second); got != 5 {
		t.Fatalf("Rate = %v", got)
	}
	if got := c.Rate(0); got != 0 {
		t.Fatalf("Rate(0) = %v", got)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative Add")
		}
	}()
	NewCounter("c").Add(-1)
}

func TestGaugePeak(t *testing.T) {
	g := NewGauge("buf")
	g.Add(5)
	g.Add(10)
	g.Add(-12)
	if g.Value() != 3 {
		t.Fatalf("Value = %d", g.Value())
	}
	if g.Peak() != 15 {
		t.Fatalf("Peak = %d", g.Peak())
	}
	g.Set(100)
	if g.Peak() != 100 {
		t.Fatalf("Peak after Set = %d", g.Peak())
	}
}

func TestSeriesOrderEnforced(t *testing.T) {
	s := NewSeries("tps")
	s.Append(time.Second, 100)
	s.Append(2*time.Second, 200)
	if got := s.Mean(); got != 150 {
		t.Fatalf("Mean = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-order Append")
		}
	}()
	s.Append(time.Second, 50)
}

func TestSeriesEmptyMean(t *testing.T) {
	if NewSeries("e").Mean() != 0 {
		t.Fatal("empty series mean nonzero")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("mode", "tps", "p99")
	tb.AddRow("rapilog", "1234.5", "0.9ms")
	tb.AddRow("sync", "400.0", "8.7ms")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "mode") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "rapilog") || !strings.Contains(lines[2], "1234.5") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestTableSort(t *testing.T) {
	tb := NewTable("k", "v")
	tb.AddRow("b", "2")
	tb.AddRow("a", "1")
	tb.SortRowsByFirstColumn()
	out := tb.String()
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Fatalf("rows not sorted:\n%s", out)
	}
}

func TestTableOverwideRowPanics(t *testing.T) {
	tb := NewTable("k", "v")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on row wider than header")
		}
	}()
	tb.AddRow("b", "2", "extra")
}
