// Package metrics provides the measurement plumbing shared by the RapiLog
// simulation: latency histograms with percentile queries, counters, and
// windowed throughput series. All values are plain numbers over virtual
// time; nothing here is concurrency-safe because the simulation kernel runs
// one process at a time.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"time"
)

// Histogram records durations in log-linear buckets: each power-of-two
// range is split into subBuckets linear buckets, giving bounded relative
// error (~1/subBuckets) from nanoseconds to hours in a fixed-size table.
type Histogram struct {
	name   string
	counts []uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

const (
	subBucketBits = 5 // 32 sub-buckets per octave: <= ~3% relative error
	subBuckets    = 1 << subBucketBits
	numOctaves    = 44 // covers up to ~2^43 ns ≈ 2.4h
	numBuckets    = numOctaves * subBuckets
)

// NewHistogram creates an empty histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{
		name:   name,
		counts: make([]uint64, numBuckets),
		min:    math.MaxInt64,
	}
}

// Name returns the histogram's name.
func (h *Histogram) Name() string { return h.name }

func bucketIndex(d time.Duration) int {
	v := uint64(d)
	if v < subBuckets {
		return int(v)
	}
	// Highest set bit determines the octave; the next subBucketBits bits
	// select the linear sub-bucket within it.
	octave := 63 - bits.LeadingZeros64(v)
	shift := octave - subBucketBits
	sub := (v >> uint(shift)) & (subBuckets - 1)
	idx := int(octave-subBucketBits+1)*subBuckets + int(sub)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketLow returns the lower bound of bucket idx, the inverse of
// bucketIndex up to quantisation.
func bucketLow(idx int) time.Duration {
	if idx < subBuckets {
		return time.Duration(idx)
	}
	octave := idx/subBuckets + subBucketBits - 1
	sub := idx % subBuckets
	shift := octave - subBucketBits
	return time.Duration((uint64(1) << uint(octave)) | (uint64(sub) << uint(shift)))
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)]++
	h.total++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean observation, or zero if empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min returns the smallest observation, or zero if empty.
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Quantile returns the q-quantile (0 <= q <= 1) as the lower bound of the
// bucket containing it, or zero if the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.max
}

// Merge folds other's observations into h. Every histogram shares the same
// bucket layout, so counts, total, sum and min/max combine exactly:
// quantiles of the merged histogram equal quantiles of the concatenated
// observation streams up to the usual bucket quantisation. This is how
// per-shard latency distributions roll up into one fleet-wide view.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears all observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
}

// String summarises the distribution.
func (h *Histogram) String() string {
	if h.total == 0 {
		return fmt.Sprintf("%s: empty", h.name)
	}
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.name, h.total, h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.max.Round(time.Microsecond))
}

// Counter is a monotonically increasing count with a helper for rates.
type Counter struct {
	name  string
	value int64
}

// NewCounter creates a zeroed counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

// Add increments by n (n may be any non-negative value).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: Counter.Add negative")
	}
	c.value += n
}

// Inc increments by one.
func (c *Counter) Inc() { c.value++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.value }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.value = 0 }

// Rate returns value/elapsed in events per second.
func (c *Counter) Rate(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.value) / elapsed.Seconds()
}

// Gauge is an instantaneous level that tracks its own high-water mark.
type Gauge struct {
	name  string
	value int64
	peak  int64
}

// NewGauge creates a zeroed gauge.
func NewGauge(name string) *Gauge { return &Gauge{name: name} }

// Name returns the gauge's name.
func (g *Gauge) Name() string { return g.name }

// Add moves the level by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	g.value += delta
	if g.value > g.peak {
		g.peak = g.value
	}
}

// Set forces the level.
func (g *Gauge) Set(v int64) {
	g.value = v
	if v > g.peak {
		g.peak = v
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.value }

// Peak returns the high-water mark.
func (g *Gauge) Peak() int64 { return g.peak }

// Series accumulates (time, value) points, e.g. throughput per window.
type Series struct {
	name   string
	points []Point
}

// Point is one sample in a Series.
type Point struct {
	At    time.Duration // virtual time since simulation start
	Value float64
}

// NewSeries creates an empty series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series' name.
func (s *Series) Name() string { return s.name }

// Append adds a point. Points must be appended in time order.
func (s *Series) Append(at time.Duration, v float64) {
	if n := len(s.points); n > 0 && at < s.points[n-1].At {
		panic("metrics: Series.Append out of order")
	}
	s.points = append(s.points, Point{At: at, Value: v})
}

// Points returns the accumulated points (not a copy).
func (s *Series) Points() []Point { return s.points }

// Mean returns the mean of the point values, or zero if empty.
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.points {
		sum += p.Value
	}
	return sum / float64(len(s.points))
}

// Table formats aligned columnar output for experiment reports. Columns are
// right-aligned except the first.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row. A row wider than the header is a bug in the report
// code, not data to silently drop — it panics.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		panic(fmt.Sprintf("metrics: Table.AddRow got %d cells for %d columns", len(cells), len(t.header)))
	}
	t.rows = append(t.rows, cells)
}

// Rows returns the number of data rows added so far.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsByFirstColumn orders rows lexicographically by their first cell;
// useful when rows are produced out of experiment order.
func (t *Table) SortRowsByFirstColumn() {
	sort.Slice(t.rows, func(i, j int) bool { return t.rows[i][0] < t.rows[j][0] })
}
