//go:build !netsimcheck

package netsim

// defaultCheckOwnership is off in normal builds; build with -tags
// netsimcheck (or set Config.CheckOwnership per fabric) to verify the
// delivery-by-reference contract on every delivery.
const defaultCheckOwnership = false
