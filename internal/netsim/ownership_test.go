package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// rcMsg is a refcounted, checksummable payload standing in for a pooled
// frame: the test tracks when the last reference dies and hashes the
// payload bytes so the ownership check can see mutation.
type rcMsg struct {
	data     []byte
	refs     int
	released int
}

func (m *rcMsg) Retain() { m.refs++ }

func (m *rcMsg) Release() {
	m.refs--
	if m.refs == 0 {
		m.released++
	}
	if m.refs < 0 {
		panic("rcMsg over-released")
	}
}

func (m *rcMsg) OwnershipSum() uint32 {
	h := uint32(2166136261)
	for _, b := range m.data {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// TestOwnershipCheckPanicsOnMutation: a sender that rewrites a payload
// after Send has broken the delivery-by-reference contract; with the check
// on, delivery must panic rather than hand the receiver corrupt bytes.
func TestOwnershipCheckPanicsOnMutation(t *testing.T) {
	s := sim.New(1)
	f := New(s, Config{Seed: 2, CheckOwnership: true})
	a := f.Endpoint("a")
	f.Endpoint("b")
	msg := &rcMsg{data: []byte{1, 2, 3, 4}, refs: 1}
	a.Send("b", 64, msg)
	msg.data[0] = 99 // contract violation: payload mutated while in flight

	defer func() {
		if recover() == nil {
			t.Fatal("mutated in-flight payload delivered without panic")
		}
	}()
	_ = s.RunFor(time.Second)
}

// TestOwnershipCheckCleanDelivery: an unmutated payload passes the check,
// and the receiver owns (and can release) exactly one reference.
func TestOwnershipCheckCleanDelivery(t *testing.T) {
	s := sim.New(3)
	f := New(s, Config{Seed: 4, CheckOwnership: true})
	a := f.Endpoint("a")
	b := f.Endpoint("b")
	msg := &rcMsg{data: []byte{5, 6, 7}, refs: 1}
	a.Send("b", 64, msg)
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := b.TryRecv()
	if !ok {
		t.Fatal("message not delivered")
	}
	rc := got.Payload.(*rcMsg)
	if rc.refs != 1 {
		t.Fatalf("delivered payload holds %d refs, want 1", rc.refs)
	}
	rc.Release()
	if rc.released != 1 {
		t.Fatalf("released %d times, want 1", rc.released)
	}
}

// TestRefcountOnDropAndDup: the fabric releases the copies it eats (drops)
// and retains the extra copies it invents (dups), so the sender's
// one-reference-per-Send accounting balances in every fault regime.
func TestRefcountOnDropAndDup(t *testing.T) {
	s := sim.New(5)
	f := New(s, Config{Seed: 6, Link: LinkConfig{DropProb: 1}})
	a := f.Endpoint("a")
	msg := &rcMsg{data: []byte{1}, refs: 1}
	a.Send("b", 8, msg)
	if msg.released != 1 {
		t.Fatalf("dropped payload not released synchronously (released=%d)", msg.released)
	}

	s2 := sim.New(7)
	f2 := New(s2, Config{Seed: 8, Link: LinkConfig{DupProb: 1}})
	a2 := f2.Endpoint("a")
	b2 := f2.Endpoint("b")
	dup := &rcMsg{data: []byte{2}, refs: 1}
	a2.Send("b", 8, dup)
	if err := s2.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		m, ok := b2.TryRecv()
		if !ok {
			break
		}
		n++
		m.Payload.(*rcMsg).Release()
	}
	if n != 2 {
		t.Fatalf("DupProb=1 delivered %d copies, want 2", n)
	}
	if dup.released != 1 || dup.refs != 0 {
		t.Fatalf("dup accounting off: refs=%d released=%d", dup.refs, dup.released)
	}

	// Isolation at delivery time: the port going down mid-flight releases
	// the in-flight copy.
	s3 := sim.New(9)
	f3 := New(s3, Config{Seed: 10})
	a3 := f3.Endpoint("a")
	f3.Endpoint("b")
	iso := &rcMsg{data: []byte{3}, refs: 1}
	a3.Send("b", 8, iso)
	f3.Isolate("b")
	if err := s3.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if iso.released != 1 {
		t.Fatalf("isolated-at-delivery payload not released (released=%d)", iso.released)
	}
}
