//go:build netsimcheck

package netsim

// defaultCheckOwnership is forced on by the `netsimcheck` build tag: every
// fabric verifies the delivery-by-reference contract for Checksummer
// payloads, panicking the moment a sender mutates or recycles a message
// that is still in flight. The checksum walk is O(payload) per delivery,
// which is why it is a debug build, not the default.
const defaultCheckOwnership = true
