// Package netsim is a deterministic network fabric on the simulation's
// virtual clock: named endpoints exchange messages over point-to-point
// links with modelled latency, jitter and bandwidth, plus seeded loss,
// duplication and reordering, and explicit partition/heal controls.
//
// The fabric exists so the replication subsystem can be exercised under
// exactly the faults that make replication protocols hard — lost acks,
// duplicated records, records arriving out of order, a standby unreachable
// for a window — while every run stays bit-for-bit reproducible: all
// randomness comes from the fabric's own seeded generator and all delivery
// is scheduled on sim timers, so the same seed and the same send schedule
// produce the same delivery order, drops included.
//
// The fabric itself spawns no processes: Send schedules delivery callbacks
// on the simulation and returns immediately, so it is safe to call from
// any process (including interrupt-style contexts). Receivers block on
// their endpoint's signal, which keeps an idle fabric event-free — a
// simulation with nothing else to do still terminates.
package netsim

import (
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// LinkConfig models one direction of a point-to-point link.
type LinkConfig struct {
	// Latency is the propagation delay; default 200µs (same-datacenter).
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) extra delay per message; default
	// Latency/4.
	Jitter time.Duration
	// Bandwidth serialises messages on the link, bytes/s; default 125 MB/s
	// (a 1 Gbit NIC).
	Bandwidth float64
	// DropProb is the probability a message is lost in flight.
	DropProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// ReorderProb is the probability a message is held back by an extra
	// ReorderDelay, letting later sends overtake it.
	ReorderProb float64
	// ReorderDelay is the hold-back applied to reordered messages; default
	// 4 × Latency.
	ReorderDelay time.Duration
}

func (c *LinkConfig) applyDefaults() {
	if c.Latency == 0 {
		c.Latency = 200 * time.Microsecond
	}
	if c.Jitter == 0 {
		c.Jitter = c.Latency / 4
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 125e6
	}
	if c.ReorderDelay == 0 {
		c.ReorderDelay = 4 * c.Latency
	}
}

// Refcounted is implemented by payloads whose backing memory is pooled by
// the sender. Delivery is by reference, so the fabric participates in the
// payload's lifetime: every Send consumes one reference (the sender must
// hold one per Send call), a duplicated delivery retains one more, any
// dropped copy is released by the fabric, and the receiver owns — and must
// Release — one reference per delivered message. A payload that does not
// implement Refcounted is delivered exactly as before.
type Refcounted interface {
	Retain()
	Release()
}

// Checksummer is implemented by payloads that can hash their own contents,
// letting the fabric's ownership check verify at delivery time that the
// payload still hashes to what it hashed at send time — catching a sender
// that mutated or recycled a message after Send, which the
// delivery-by-reference contract forbids.
type Checksummer interface {
	OwnershipSum() uint32
}

// Config parameterises a Fabric.
type Config struct {
	// Seed drives the fabric's private generator (drops, jitter, dup,
	// reorder). A fabric never touches the simulation's generator, so
	// enabling network faults does not perturb any other component.
	Seed int64
	// Link is the default config applied to every directed link; per-link
	// overrides via SetLink.
	Link LinkConfig
	// Reg, when set, registers the fabric's instruments centrally.
	Reg *obs.Registry
	// Trace, when set, records per-message net events (send, deliver,
	// drop, dup) carrying the sender's causal span, so a commit's path
	// across the wire is reconstructible.
	Trace *obs.Tracer
	// CheckOwnership verifies, at delivery time, that every Checksummer
	// payload still hashes to its send-time sum, panicking on a mismatch —
	// the cheap debug enforcement of Send's delivery-by-reference contract.
	// Forced on for every fabric by the `netsimcheck` build tag.
	CheckOwnership bool
}

// Message is one delivered datagram.
type Message struct {
	From, To string
	// Size in bytes; what the bandwidth model charged.
	Size    int
	Payload any
	// SentAt/DeliveredAt stamp the virtual-time flight.
	SentAt      sim.Time
	DeliveredAt sim.Time
}

type linkKey struct{ from, to string }

// link carries per-directed-link state: the config and the time the link's
// transmitter frees up (bandwidth serialisation).
type link struct {
	cfg       LinkConfig
	busyUntil sim.Time
}

// Stats exposes the fabric's counters.
type Stats struct {
	Sent           *metrics.Counter
	Delivered      *metrics.Counter
	Dropped        *metrics.Counter // lost to DropProb
	Duplicated     *metrics.Counter
	Reordered      *metrics.Counter
	PartitionDrops *metrics.Counter // lost to an active partition
	InFlightBytes  *metrics.Gauge
}

// Fabric is the message switch. All state is owned by the single-threaded
// simulation; no locking.
type Fabric struct {
	s     *sim.Sim
	cfg   Config
	rng   *rand.Rand
	eps   map[string]*Endpoint
	links map[linkKey]*link
	// isolated nodes cannot send or receive; the map is the partition.
	isolated map[string]bool
	stats    *Stats
	tr       *obs.Tracer
	nodeIDs  map[string]int64 // endpoint name → interned trace label
}

// New creates a fabric. The default link config applies to every pair of
// endpoints until overridden with SetLink.
func New(s *sim.Sim, cfg Config) *Fabric {
	cfg.Link.applyDefaults()
	cfg.CheckOwnership = cfg.CheckOwnership || defaultCheckOwnership
	reg := cfg.Reg
	return &Fabric{
		s:        s,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		eps:      make(map[string]*Endpoint),
		links:    make(map[linkKey]*link),
		isolated: make(map[string]bool),
		tr:       cfg.Trace,
		nodeIDs:  make(map[string]int64),
		stats: &Stats{
			Sent:           reg.Counter("net.sent"),
			Delivered:      reg.Counter("net.delivered"),
			Dropped:        reg.Counter("net.dropped"),
			Duplicated:     reg.Counter("net.duplicated"),
			Reordered:      reg.Counter("net.reordered"),
			PartitionDrops: reg.Counter("net.partition_drops"),
			InFlightBytes:  reg.Gauge("net.inflight_bytes"),
		},
	}
}

// Stats returns the fabric's counters (live; not a copy).
func (f *Fabric) Stats() *Stats { return f.stats }

// Endpoint returns the named endpoint, creating it on first use.
func (f *Fabric) Endpoint(name string) *Endpoint {
	if ep, ok := f.eps[name]; ok {
		return ep
	}
	ep := &Endpoint{f: f, name: name, sig: f.s.NewSignal("net." + name + ".inbox")}
	f.eps[name] = ep
	return ep
}

// SetLink overrides the link config for both directions between a and b.
func (f *Fabric) SetLink(a, b string, cfg LinkConfig) {
	cfg.applyDefaults()
	f.link(a, b).cfg = cfg
	f.link(b, a).cfg = cfg
}

func (f *Fabric) link(from, to string) *link {
	k := linkKey{from, to}
	if l, ok := f.links[k]; ok {
		return l
	}
	l := &link{cfg: f.cfg.Link}
	f.links[k] = l
	return l
}

// Isolate cuts the named nodes off from the fabric: anything they send,
// and anything sent to them, is dropped at transmission time. Messages
// already in flight still arrive — the wire does not eat a packet because
// a switch port went down after it left.
func (f *Fabric) Isolate(names ...string) {
	for _, n := range names {
		f.isolated[n] = true
	}
}

// Heal lifts every isolation. Retransmission is the sender's problem, as
// on a real network.
func (f *Fabric) Heal() {
	for n := range f.isolated {
		delete(f.isolated, n)
	}
}

// Restore lifts the isolation of specific nodes, leaving any others cut
// off — a crashed standby rejoining a fabric that is still partitioned
// elsewhere.
func (f *Fabric) Restore(names ...string) {
	for _, n := range names {
		delete(f.isolated, n)
	}
}

// Isolated reports whether a node is currently cut off.
func (f *Fabric) Isolated(name string) bool { return f.isolated[name] }

// nodeID interns an endpoint name in the tracer's label table, caching the
// id so the send path does no map-of-strings work after first use.
func (f *Fabric) nodeID(name string) int64 {
	if f.tr == nil {
		return 0
	}
	if id, ok := f.nodeIDs[name]; ok {
		return id
	}
	id := f.tr.Label(name)
	f.nodeIDs[name] = id
	return id
}

func (f *Fabric) trace(kind obs.Kind, cause obs.SpanID, size int, to string) {
	if f.tr != nil {
		f.tr.Emit(f.s.Now().Duration(), kind, 0, cause, int64(size), f.nodeID(to))
	}
}

// release drops one payload reference when the fabric eats a copy.
func release(payload any) {
	if rc, ok := payload.(Refcounted); ok {
		rc.Release()
	}
}

// Send transmits size bytes of payload from one endpoint to another. It
// never blocks: delivery (or loss) is decided now, scheduled on the
// simulation, and Send returns. The payload is delivered by reference —
// senders must not reuse the backing memory after Send. Pooled payloads
// implement Refcounted (see its contract); the ownership check catches
// anyone who breaks the rule.
func (f *Fabric) Send(from, to string, size int, payload any) {
	f.SendCtx(from, to, size, payload, 0)
}

// SendCtx is Send with an explicit causal span carried through the trace:
// the resulting net events (and the drop, if the fabric eats the message)
// are parented under cause.
func (f *Fabric) SendCtx(from, to string, size int, payload any, cause obs.SpanID) {
	f.stats.Sent.Inc()
	if f.isolated[from] || f.isolated[to] {
		f.stats.PartitionDrops.Inc()
		f.trace(obs.EvNetDrop, cause, size, to)
		release(payload)
		return
	}
	lk := f.link(from, to)
	if lk.cfg.DropProb > 0 && f.rng.Float64() < lk.cfg.DropProb {
		f.stats.Dropped.Inc()
		f.trace(obs.EvNetDrop, cause, size, to)
		release(payload)
		return
	}
	f.trace(obs.EvNetSend, cause, size, to)
	f.deliver(lk, from, to, size, payload, false, cause)
	if lk.cfg.DupProb > 0 && f.rng.Float64() < lk.cfg.DupProb {
		f.stats.Duplicated.Inc()
		f.trace(obs.EvNetDup, cause, size, to)
		if rc, ok := payload.(Refcounted); ok {
			rc.Retain() // the second in-flight copy owns its own reference
		}
		f.deliver(lk, from, to, size, payload, true, cause)
	}
}

// deliver schedules one copy of a message: serialise on the link's
// transmitter, add propagation latency and jitter, optionally hold the
// message back so later sends overtake it.
func (f *Fabric) deliver(lk *link, from, to string, size int, payload any, dup bool, cause obs.SpanID) {
	xfer := time.Duration(float64(size) / lk.cfg.Bandwidth * float64(time.Second))
	start := f.s.Now()
	if lk.busyUntil > start {
		start = lk.busyUntil
	}
	lk.busyUntil = start.Add(xfer)
	delay := start.Sub(f.s.Now()) + xfer + lk.cfg.Latency
	if lk.cfg.Jitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(lk.cfg.Jitter)))
	}
	if !dup && lk.cfg.ReorderProb > 0 && f.rng.Float64() < lk.cfg.ReorderProb {
		f.stats.Reordered.Inc()
		delay += lk.cfg.ReorderDelay
	}
	m := Message{From: from, To: to, Size: size, Payload: payload, SentAt: f.s.Now()}
	var sentSum uint32
	var sums Checksummer
	if f.cfg.CheckOwnership {
		if cs, ok := payload.(Checksummer); ok {
			sums, sentSum = cs, cs.OwnershipSum()
		}
	}
	f.stats.InFlightBytes.Add(int64(size))
	f.s.After(delay, func() {
		f.stats.InFlightBytes.Add(-int64(size))
		if f.isolated[to] {
			// The port came down while the packet was in flight.
			f.stats.PartitionDrops.Inc()
			f.trace(obs.EvNetDrop, cause, size, to)
			release(payload)
			return
		}
		if sums != nil && sums.OwnershipSum() != sentSum {
			panic("netsim: payload mutated in flight from " + from + " to " + to +
				" — the sender reused or rewrote a delivery-by-reference message after Send")
		}
		f.stats.Delivered.Inc()
		f.trace(obs.EvNetDeliver, cause, size, to)
		m.DeliveredAt = f.s.Now()
		ep := f.Endpoint(to)
		ep.inbox = append(ep.inbox, m)
		ep.sig.Broadcast()
	})
}

// Endpoint is one named attachment point: an inbox plus a wakeup signal.
type Endpoint struct {
	f     *Fabric
	name  string
	inbox []Message
	head  int // consumed prefix of inbox
	sig   *sim.Signal
}

// Name returns the endpoint's fabric-wide name.
func (e *Endpoint) Name() string { return e.name }

// Pending returns the number of undelivered messages in the inbox.
func (e *Endpoint) Pending() int { return len(e.inbox) - e.head }

// inboxCompactAt is the consumed-prefix length past which TryRecv slides
// the unconsumed tail back to the front of the backing array. Without this
// an endpoint whose inbox never fully drains (a steady producer one message
// ahead of the consumer) appends forever: the consumed prefix is zeroed but
// its slots are never reclaimed, so the backing array grows for the life of
// the run.
const inboxCompactAt = 64

// TryRecv pops the oldest queued message without blocking.
func (e *Endpoint) TryRecv() (Message, bool) {
	if e.head == len(e.inbox) {
		return Message{}, false
	}
	m := e.inbox[e.head]
	e.inbox[e.head] = Message{}
	e.head++
	if e.head == len(e.inbox) {
		e.inbox = e.inbox[:0]
		e.head = 0
	} else if e.head >= inboxCompactAt && e.head >= len(e.inbox)/2 {
		n := copy(e.inbox, e.inbox[e.head:])
		clear(e.inbox[n:])
		e.inbox = e.inbox[:n]
		e.head = 0
	}
	return m, true
}

// Recv blocks p until a message is available and returns it.
func (e *Endpoint) Recv(p *sim.Proc) Message {
	for {
		if m, ok := e.TryRecv(); ok {
			return m
		}
		e.sig.Wait(p)
	}
}

// Send transmits from this endpoint.
func (e *Endpoint) Send(to string, size int, payload any) {
	e.f.Send(e.name, to, size, payload)
}

// SendCtx transmits from this endpoint with an explicit causal span.
func (e *Endpoint) SendCtx(to string, size int, payload any, cause obs.SpanID) {
	e.f.SendCtx(e.name, to, size, payload, cause)
}
