package netsim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// runSchedule drives one fabric through a fixed, hostile schedule — bursts
// of sends from two nodes, a partition/heal cycle in the middle — and
// returns the full delivery transcript (receiver, sender, payload id,
// delivery time) in arrival order.
func runSchedule(t *testing.T, seed int64, link LinkConfig) []string {
	t.Helper()
	s := sim.New(7) // kernel seed fixed; the fabric's own seed varies
	f := New(s, Config{Seed: seed, Link: link})
	var transcript []string
	recv := func(name string) {
		ep := f.Endpoint(name)
		s.Spawn(nil, name+".recv", func(p *sim.Proc) {
			p.SetDaemon(true)
			for {
				m := ep.Recv(p)
				transcript = append(transcript,
					fmt.Sprintf("%s<-%s:%v@%d", name, m.From, m.Payload, m.DeliveredAt))
			}
		})
	}
	recv("a")
	recv("b")
	recv("c")
	s.Spawn(nil, "sched", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			f.Send("a", "b", 512+i*17, fmt.Sprintf("ab%d", i))
			f.Send("a", "c", 256, fmt.Sprintf("ac%d", i))
			if i%3 == 0 {
				f.Send("b", "a", 1024, fmt.Sprintf("ba%d", i))
			}
			p.Sleep(200 * time.Microsecond)
		}
		f.Isolate("c")
		for i := 0; i < 20; i++ {
			f.Send("a", "c", 512, fmt.Sprintf("part%d", i))
			f.Send("a", "b", 512, fmt.Sprintf("ab2-%d", i))
			p.Sleep(150 * time.Microsecond)
		}
		f.Heal()
		for i := 0; i < 20; i++ {
			f.Send("a", "c", 512, fmt.Sprintf("heal%d", i))
			p.Sleep(100 * time.Microsecond)
		}
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	return transcript
}

// TestDeterminismProperty: two fabrics built from the same seed and driven
// through the same schedule — including drops, duplication, reordering, and
// a partition/heal cycle — must deliver byte-identical message orders.
func TestDeterminismProperty(t *testing.T) {
	link := LinkConfig{DropProb: 0.2, DupProb: 0.1, ReorderProb: 0.25}
	for _, seed := range []int64{1, 2, 42, 9999} {
		a := runSchedule(t, seed, link)
		b := runSchedule(t, seed, link)
		if len(a) != len(b) {
			t.Fatalf("seed %d: transcripts differ in length: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: transcripts diverge at %d: %q vs %q", seed, i, a[i], b[i])
			}
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: nothing delivered", seed)
		}
	}
}

func TestCleanLinkDeliversInOrder(t *testing.T) {
	s := sim.New(1)
	// Jitter can legitimately swap closely spaced datagrams; a jitter-free
	// link must be strictly FIFO (serialisation + fixed latency).
	f := New(s, Config{Seed: 3, Link: LinkConfig{Jitter: time.Nanosecond}})
	ep := f.Endpoint("dst")
	var got []int
	s.Spawn(nil, "recv", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			m := ep.Recv(p)
			got = append(got, m.Payload.(int))
		}
	})
	const n = 100
	s.Spawn(nil, "send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			f.Send("src", "dst", 4096, i)
			p.Sleep(10 * time.Microsecond)
		}
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("clean link delivered %d/%d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: got %d", i, v)
		}
	}
	if f.Stats().Dropped.Value() != 0 || f.Stats().Duplicated.Value() != 0 {
		t.Fatal("clean link reported faults")
	}
}

// TestBandwidthSerialises: two large back-to-back messages must be spaced
// by at least the transfer time of one — the link transmitter is a shared
// resource, not an infinite pipe.
func TestBandwidthSerialises(t *testing.T) {
	s := sim.New(1)
	f := New(s, Config{Seed: 1, Link: LinkConfig{Bandwidth: 1e6, Jitter: time.Nanosecond}})
	ep := f.Endpoint("dst")
	var at []sim.Time
	s.Spawn(nil, "recv", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			m := ep.Recv(p)
			at = append(at, m.DeliveredAt)
		}
	})
	// 100 KB at 1 MB/s = 100 ms of serialisation each.
	f.Send("src", "dst", 100_000, "x")
	f.Send("src", "dst", 100_000, "y")
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 {
		t.Fatalf("delivered %d/2", len(at))
	}
	if gap := at[1].Sub(at[0]); gap < 90*time.Millisecond {
		t.Fatalf("no serialisation: gap %v", gap)
	}
}

func TestPartitionDropsAndHeal(t *testing.T) {
	s := sim.New(1)
	f := New(s, Config{Seed: 1})
	ep := f.Endpoint("dst")
	var got []string
	s.Spawn(nil, "recv", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			m := ep.Recv(p)
			got = append(got, m.Payload.(string))
		}
	})
	s.Spawn(nil, "send", func(p *sim.Proc) {
		f.Isolate("dst")
		if !f.Isolated("dst") {
			t.Error("Isolated not reported")
		}
		f.Send("src", "dst", 512, "lost")
		p.Sleep(10 * time.Millisecond)
		f.Restore("dst")
		f.Send("src", "dst", 512, "after")
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "after" {
		t.Fatalf("got %v, want only the post-heal message", got)
	}
	if f.Stats().PartitionDrops.Value() != 1 {
		t.Fatalf("partition drops = %d, want 1", f.Stats().PartitionDrops.Value())
	}
}

// TestInboxSteadyStateMemory: an endpoint whose inbox never fully drains —
// a producer running one message ahead of its consumer for the whole run —
// must not pin every consumed message for the life of the run. Before the
// compaction fix, TryRecv only reclaimed the backing array on a full drain,
// so the slice here grew with the total message count (~n slots); with
// compaction it stays within a small constant of the pending count.
func TestInboxSteadyStateMemory(t *testing.T) {
	s := sim.New(1)
	f := New(s, Config{Seed: 1, Link: LinkConfig{Jitter: time.Nanosecond}})
	ep := f.Endpoint("dst")
	const n = 2000
	received := 0
	s.Spawn(nil, "drive", func(p *sim.Proc) {
		// Two messages of headroom so the consumer below never empties the
		// inbox (the full-drain reset path would mask the leak).
		f.Send("src", "dst", 64, -1)
		f.Send("src", "dst", 64, -2)
		p.Sleep(time.Millisecond)
		for i := 0; i < n; i++ {
			f.Send("src", "dst", 64, i)
			p.Sleep(time.Millisecond) // let delivery land before consuming
			if _, ok := ep.TryRecv(); !ok {
				t.Fatalf("iteration %d: nothing to receive", i)
			}
			received++
			if pend := ep.Pending(); pend == 0 {
				t.Fatalf("iteration %d: inbox fully drained; test no longer exercises the steady-state path", i)
			}
		}
	})
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if received != n {
		t.Fatalf("received %d/%d", received, n)
	}
	if len(ep.inbox) > 4*inboxCompactAt {
		t.Fatalf("inbox backing holds %d slots for %d pending messages; consumed prefix never reclaimed",
			len(ep.inbox), ep.Pending())
	}
	if c := cap(ep.inbox); c > 16*inboxCompactAt {
		t.Fatalf("inbox backing array grew to %d slots over the run", c)
	}
}

// TestInFlightDroppedWhenPortGoesDown: a message already on the wire to a
// node that is isolated before delivery is dropped at the port.
func TestInFlightDroppedWhenPortGoesDown(t *testing.T) {
	s := sim.New(1)
	f := New(s, Config{Seed: 1, Link: LinkConfig{Latency: time.Millisecond, Jitter: time.Nanosecond}})
	ep := f.Endpoint("dst")
	delivered := false
	s.Spawn(nil, "recv", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			ep.Recv(p)
			delivered = true
		}
	})
	s.Spawn(nil, "send", func(p *sim.Proc) {
		f.Send("src", "dst", 512, "in-flight")
		// Isolate while the message is still in flight.
		f.Isolate("dst")
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("message delivered through a down port")
	}
	if f.Stats().PartitionDrops.Value() != 1 {
		t.Fatalf("partition drops = %d, want 1", f.Stats().PartitionDrops.Value())
	}
}
