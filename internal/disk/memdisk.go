package disk

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// MemConfig parameterises the memory-backed device.
type MemConfig struct {
	Name string
	// Reg, when set, registers the device's instruments centrally.
	Reg        *obs.Registry
	SectorSize int   // default 512
	Capacity   int64 // sectors; default 2^20
	// Latency is the fixed per-request service time; default 5µs.
	Latency time.Duration
	// Bandwidth in bytes/s; default 2 GB/s.
	Bandwidth float64
	// Persistent selects NVRAM semantics (contents survive power failure);
	// false models a plain RAM disk that loses everything.
	Persistent bool
}

func (c *MemConfig) applyDefaults() {
	if c.Name == "" {
		c.Name = "mem"
	}
	if c.SectorSize == 0 {
		c.SectorSize = 512
	}
	if c.Capacity == 0 {
		c.Capacity = 1 << 20
	}
	if c.Latency == 0 {
		c.Latency = 5 * time.Microsecond
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 2e9
	}
}

// Mem is a memory-backed block device: a RAM disk (volatile) or NVRAM
// (persistent). It is the "specialised hardware" alternative the paper
// positions RapiLog against, and a convenient fast substrate in tests.
type Mem struct {
	cfg     MemConfig
	s       *sim.Sim
	med     *media
	stats   *Stats
	powered bool
}

// NewMem creates a powered-on memory device.
func NewMem(s *sim.Sim, cfg MemConfig) *Mem {
	cfg.applyDefaults()
	return &Mem{cfg: cfg, s: s, med: newMedia(cfg.SectorSize), stats: newStats(cfg.Reg, cfg.Name), powered: true}
}

// Name implements Device.
func (d *Mem) Name() string { return d.cfg.Name }

// SectorSize implements Device.
func (d *Mem) SectorSize() int { return d.cfg.SectorSize }

// Sectors implements Device.
func (d *Mem) Sectors() int64 { return d.cfg.Capacity }

// Stats implements Device.
func (d *Mem) Stats() *Stats { return d.stats }

// SeqWriteBandwidth implements Device.
func (d *Mem) SeqWriteBandwidth() float64 { return d.cfg.Bandwidth }

// WorstCaseAccess implements Device.
func (d *Mem) WorstCaseAccess() time.Duration { return d.cfg.Latency }

func (d *Mem) xferTime(nsec int) time.Duration {
	bytes := float64(nsec * d.cfg.SectorSize)
	return d.cfg.Latency + time.Duration(bytes/d.cfg.Bandwidth*float64(time.Second))
}

// Read implements Device.
func (d *Mem) Read(p *sim.Proc, lba int64, nsec int) ([]byte, error) {
	if !d.powered {
		return nil, ErrNoPower
	}
	if err := checkRange(lba, nsec, d.Sectors(), d.cfg.SectorSize, -1); err != nil {
		return nil, err
	}
	start := p.Now()
	d.stats.Reads.Inc()
	p.Sleep(d.xferTime(nsec))
	d.stats.SectorsRead.Add(int64(nsec))
	d.stats.ReadLatency.Observe(p.Now().Sub(start))
	return d.med.readSectors(lba, nsec), nil
}

// Write implements Device. Memory writes are atomic per request (no
// tearing): the transfer completes before the contents become visible.
func (d *Mem) Write(p *sim.Proc, lba int64, data []byte, fua bool) error {
	if !d.powered {
		return ErrNoPower
	}
	nsec := len(data) / d.cfg.SectorSize
	if err := checkRange(lba, nsec, d.Sectors(), d.cfg.SectorSize, len(data)); err != nil {
		return err
	}
	start := p.Now()
	d.stats.Writes.Inc()
	p.Sleep(d.xferTime(nsec))
	d.med.writeSectors(lba, data)
	d.stats.SectorsWritten.Add(int64(nsec))
	d.stats.WriteLatency.Observe(p.Now().Sub(start))
	return nil
}

// Flush implements Device (no volatile cache; a no-op).
func (d *Mem) Flush(p *sim.Proc) error {
	if !d.powered {
		return ErrNoPower
	}
	d.stats.Flushes.Inc()
	return nil
}

// PowerFail implements PowerAware: a volatile RAM disk loses its contents.
func (d *Mem) PowerFail() {
	d.powered = false
	if !d.cfg.Persistent {
		d.med = newMedia(d.cfg.SectorSize)
	}
}

// PowerOn implements PowerAware.
func (d *Mem) PowerOn(_ *sim.Domain) { d.powered = true }
