package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func newTestHDD(t *testing.T, cfg HDDConfig) (*sim.Sim, *HDD) {
	t.Helper()
	s := sim.New(1)
	hw := s.NewDomain("hw")
	return s, NewHDD(s, hw, cfg)
}

func fill(n int, b byte) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestHDDWriteReadRoundTrip(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{})
	var got []byte
	s.Spawn(nil, "io", func(p *sim.Proc) {
		if err := d.Write(p, 100, fill(2048, 0xAB), false); err != nil {
			t.Errorf("write: %v", err)
		}
		var err error
		got, err = d.Read(p, 100, 4)
		if err != nil {
			t.Errorf("read: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(2048, 0xAB)) {
		t.Fatal("read data mismatch")
	}
}

func TestHDDUnwrittenSectorsReadZero(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{})
	var got []byte
	s.Spawn(nil, "io", func(p *sim.Proc) {
		got, _ = d.Read(p, 5000, 2)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 1024)) {
		t.Fatal("unwritten sectors not zero")
	}
}

func TestHDDSyncWriteCostsMilliseconds(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{})
	var elapsed time.Duration
	s.Spawn(nil, "io", func(p *sim.Proc) {
		start := p.Now()
		// A small random-position synchronous write: seek + rotation.
		if err := d.Write(p, d.Sectors()/2, fill(512, 1), true); err != nil {
			t.Errorf("write: %v", err)
		}
		elapsed = p.Now().Sub(start)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < time.Millisecond || elapsed > 20*time.Millisecond {
		t.Fatalf("sync write took %v, want single-digit ms", elapsed)
	}
}

func TestHDDSequentialStreamingApproachesTrackBandwidth(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{})
	const totalBytes = 4 << 20
	var elapsed time.Duration
	s.Spawn(nil, "io", func(p *sim.Proc) {
		start := p.Now()
		chunk := fill(64*1024, 7)
		var lba int64
		for written := 0; written < totalBytes; written += len(chunk) {
			if err := d.Write(p, lba, chunk, true); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			lba += int64(len(chunk) / d.SectorSize())
		}
		elapsed = p.Now().Sub(start)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	gotBW := float64(totalBytes) / elapsed.Seconds()
	wantBW := d.SeqWriteBandwidth()
	if gotBW < 0.5*wantBW || gotBW > 1.1*wantBW {
		t.Fatalf("sequential bandwidth %.1f MB/s, model says %.1f MB/s", gotBW/1e6, wantBW/1e6)
	}
}

func TestHDDCachedWriteIsFast(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{WriteCache: true})
	var cached, direct time.Duration
	s.Spawn(nil, "io", func(p *sim.Proc) {
		start := p.Now()
		_ = d.Write(p, 1000, fill(4096, 1), false)
		cached = p.Now().Sub(start)
		start = p.Now()
		_ = d.Write(p, d.Sectors()/2, fill(4096, 2), true)
		direct = p.Now().Sub(start)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if cached >= direct/10 {
		t.Fatalf("cached write %v not ≪ direct write %v", cached, direct)
	}
	if d.Stats().CacheHits.Value() != 1 {
		t.Fatalf("cache hits = %d", d.Stats().CacheHits.Value())
	}
}

func TestHDDReadSeesCachedWrite(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{WriteCache: true})
	var got []byte
	s.Spawn(nil, "io", func(p *sim.Proc) {
		_ = d.Write(p, 42, fill(512, 0x55), false)
		got, _ = d.Read(p, 42, 1) // before any drain completes
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(512, 0x55)) {
		t.Fatal("read did not observe cached write")
	}
}

func TestHDDFlushDrainsCache(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{WriteCache: true})
	s.Spawn(nil, "io", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			_ = d.Write(p, int64(i*100), fill(1024, byte(i)), false)
		}
		if err := d.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
		}
		if d.CacheDirtySectors() != 0 {
			t.Errorf("cache dirty after flush: %d", d.CacheDirtySectors())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHDDPowerFailLosesCacheButNotMedia(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{WriteCache: true})
	hw2 := s.NewDomain("hw2")
	var afterMedia, afterCache []byte
	s.Spawn(nil, "io", func(p *sim.Proc) {
		_ = d.Write(p, 10, fill(512, 0x11), true) // on media
		_ = d.Flush(p)
		_ = d.Write(p, 20, fill(512, 0x22), false) // cached only
		d.PowerFail()
		d.PowerOn(hw2)
		afterMedia, _ = d.Read(p, 10, 1)
		afterCache, _ = d.Read(p, 20, 1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(afterMedia, fill(512, 0x11)) {
		t.Fatal("media contents lost across power failure")
	}
	if !bytes.Equal(afterCache, make([]byte, 512)) {
		t.Fatal("cached write survived power failure (should be lost)")
	}
}

func TestHDDTornWriteOnKill(t *testing.T) {
	s := sim.New(1)
	hw := s.NewDomain("hw")
	guest := s.NewDomain("guest")
	d := NewHDD(s, hw, HDDConfig{ChunkSectors: 1})
	const nsec = 64
	s.Spawn(guest, "io", func(p *sim.Proc) {
		_ = d.Write(p, 0, fill(nsec*512, 0xEE), true)
	})
	// The write starts streaming immediately (LBA 0 is under the head at
	// t=0) and takes ~1.07ms for 64 sectors; kill mid-transfer.
	s.After(500*time.Microsecond, guest.Kill)
	var prefix, total int
	s.Spawn(nil, "check", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		data, _ := d.Read(p, 0, nsec)
		for i := 0; i < nsec; i++ {
			sector := data[i*512 : (i+1)*512]
			if bytes.Equal(sector, fill(512, 0xEE)) {
				total++
				if total == i+1 {
					prefix++
				}
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if total == 0 || total == nsec {
		t.Fatalf("expected a torn write, got %d/%d sectors", total, nsec)
	}
	if prefix != total {
		t.Fatalf("torn write is not a prefix: %d written, %d prefix", total, prefix)
	}
	if d.Stats().TornWrites.Value() != 1 {
		t.Fatalf("torn writes counter = %d", d.Stats().TornWrites.Value())
	}
}

func TestHDDRangeAndAlignmentErrors(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{})
	s.Spawn(nil, "io", func(p *sim.Proc) {
		if err := d.Write(p, d.Sectors(), fill(512, 1), false); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("out-of-range write: %v", err)
		}
		if err := d.Write(p, 0, fill(100, 1), false); !errors.Is(err, ErrMisaligned) {
			t.Errorf("misaligned write: %v", err)
		}
		if _, err := d.Read(p, -1, 1); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("negative lba read: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHDDPoweredOffErrors(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{})
	s.Spawn(nil, "io", func(p *sim.Proc) {
		d.PowerFail()
		if _, err := d.Read(p, 0, 1); !errors.Is(err, ErrNoPower) {
			t.Errorf("read while off: %v", err)
		}
		if err := d.Write(p, 0, fill(512, 1), false); !errors.Is(err, ErrNoPower) {
			t.Errorf("write while off: %v", err)
		}
		if err := d.Flush(p); !errors.Is(err, ErrNoPower) {
			t.Errorf("flush while off: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: seek time is monotone in distance and bounded by [SeekMin, SeekMax].
func TestHDDSeekMonotoneProperty(t *testing.T) {
	s := sim.New(1)
	d := NewHDD(s, s.NewDomain("hw"), HDDConfig{})
	prop := func(a, b uint16) bool {
		ca := int(a) % d.cfg.Cylinders
		cb := int(b) % d.cfg.Cylinders
		st := d.seekTime(0, ca)
		su := d.seekTime(0, cb)
		if ca == 0 && st != 0 {
			return false
		}
		if ca > 0 && (st < d.cfg.SeekMin || st > d.cfg.SeekMax) {
			return false
		}
		if ca <= cb {
			return st <= su
		}
		return su <= st
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the write cache never exceeds its configured capacity, under
// random write sizes and positions.
func TestHDDCacheBoundProperty(t *testing.T) {
	prop := func(seed int64) bool {
		s := sim.New(seed)
		hw := s.NewDomain("hw")
		d := NewHDD(s, hw, HDDConfig{WriteCache: true, CacheSectors: 64})
		ok := true
		s.Spawn(nil, "io", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				n := 1 + s.Rand().Intn(32)
				lba := int64(s.Rand().Intn(100000))
				_ = d.Write(p, lba, fill(n*512, byte(i)), false)
				if d.CacheDirtySectors() > 64 {
					ok = false
					return
				}
			}
			_ = d.Flush(p)
		})
		if err := s.Run(); err != nil {
			return false
		}
		return ok && d.CacheDirtySectors() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	// The seed that exposed the count-vs-claim admission race.
	if !prop(-2713285665034007440) {
		t.Fatal("regression: admission race seed fails again")
	}
}

func TestSSDRoundTripAndLatency(t *testing.T) {
	s := sim.New(1)
	d := NewSSD(s, s.NewDomain("hw"), SSDConfig{})
	var got []byte
	var wLat time.Duration
	s.Spawn(nil, "io", func(p *sim.Proc) {
		start := p.Now()
		if err := d.Write(p, 64, fill(4096, 0x3C), true); err != nil {
			t.Errorf("write: %v", err)
		}
		wLat = p.Now().Sub(start)
		got, _ = d.Read(p, 64, 8)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(4096, 0x3C)) {
		t.Fatal("ssd round trip mismatch")
	}
	if wLat < d.cfg.ProgramLatency || wLat > 5*d.cfg.ProgramLatency {
		t.Fatalf("page write latency %v, want ~%v", wLat, d.cfg.ProgramLatency)
	}
}

func TestSSDVolatileBufferLostOnPowerFail(t *testing.T) {
	s := sim.New(1)
	hw := s.NewDomain("hw")
	hw2 := s.NewDomain("hw2")
	d := NewSSD(s, hw, SSDConfig{VolatileBuffer: true})
	var got []byte
	s.Spawn(nil, "io", func(p *sim.Proc) {
		_ = d.Write(p, 0, fill(4096, 0x77), false)
		d.PowerFail()
		d.PowerOn(hw2)
		got, _ = d.Read(p, 0, 8)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 4096)) {
		t.Fatal("volatile SSD buffer survived power failure")
	}
}

func TestSSDBufferedReadCoherence(t *testing.T) {
	s := sim.New(1)
	d := NewSSD(s, s.NewDomain("hw"), SSDConfig{VolatileBuffer: true})
	var got []byte
	s.Spawn(nil, "io", func(p *sim.Proc) {
		_ = d.Write(p, 3, fill(512, 0x99), false) // partial page, buffered
		got, _ = d.Read(p, 3, 1)
		_ = d.Flush(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(512, 0x99)) {
		t.Fatal("read did not observe buffered write")
	}
}

func TestMemPersistence(t *testing.T) {
	s := sim.New(1)
	ram := NewMem(s, MemConfig{Name: "ram", Persistent: false})
	nv := NewMem(s, MemConfig{Name: "nvram", Persistent: true})
	var ramGot, nvGot []byte
	s.Spawn(nil, "io", func(p *sim.Proc) {
		_ = ram.Write(p, 0, fill(512, 1), false)
		_ = nv.Write(p, 0, fill(512, 2), false)
		ram.PowerFail()
		nv.PowerFail()
		ram.PowerOn(nil)
		nv.PowerOn(nil)
		ramGot, _ = ram.Read(p, 0, 1)
		nvGot, _ = nv.Read(p, 0, 1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ramGot, make([]byte, 512)) {
		t.Fatal("RAM disk survived power failure")
	}
	if !bytes.Equal(nvGot, fill(512, 2)) {
		t.Fatal("NVRAM lost data on power failure")
	}
}

func TestPartitionMappingAndBounds(t *testing.T) {
	s := sim.New(1)
	d := NewMem(s, MemConfig{})
	pt, err := NewPartition(d, "log", 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartition(d, "bad", d.Sectors()-10, 20); err == nil {
		t.Fatal("oversized partition accepted")
	}
	var direct []byte
	s.Spawn(nil, "io", func(p *sim.Proc) {
		if err := pt.Write(p, 0, fill(512, 0xAA), false); err != nil {
			t.Errorf("partition write: %v", err)
		}
		direct, _ = d.Read(p, 1000, 1)
		if err := pt.Write(p, 100, fill(512, 1), false); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("beyond-partition write: %v", err)
		}
		if _, err := pt.Read(p, 99, 2); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("straddling read: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, fill(512, 0xAA)) {
		t.Fatal("partition write not visible at parent offset")
	}
	if pt.Start() != 1000 || pt.Sectors() != 100 || pt.Parent() != Device(d) {
		t.Fatal("partition geometry accessors wrong")
	}
}

func TestHDDConcurrentWritersSerializeOnArm(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{})
	var finished [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn(nil, "io", func(p *sim.Proc) {
			_ = d.Write(p, int64(i)*d.Sectors()/2, fill(512, byte(i)), true)
			finished[i] = p.Now().Duration()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if finished[0] == finished[1] {
		t.Fatal("two mechanical writes completed simultaneously (arm not serialised)")
	}
}

func TestHDDStatsAccounting(t *testing.T) {
	s, d := newTestHDD(t, HDDConfig{})
	s.Spawn(nil, "io", func(p *sim.Proc) {
		_ = d.Write(p, 0, fill(1024, 1), true)
		_, _ = d.Read(p, 0, 2)
		_ = d.Flush(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes.Value() != 1 || st.Reads.Value() != 1 || st.Flushes.Value() != 1 {
		t.Fatalf("op counts: w=%d r=%d f=%d", st.Writes.Value(), st.Reads.Value(), st.Flushes.Value())
	}
	if st.SectorsWritten.Value() != 2 || st.SectorsRead.Value() != 2 {
		t.Fatalf("sector counts: w=%d r=%d", st.SectorsWritten.Value(), st.SectorsRead.Value())
	}
	if st.WriteLatency.Count() != 1 || st.ReadLatency.Count() != 1 {
		t.Fatal("latency histograms not recorded")
	}
}
