// Faulty wraps any Device with a deterministic media-fault model: seeded
// transient read/write errors, per-LBA-range "grown bad sector" permanent
// errors, and latency spikes. It is how the fault-injection campaigns turn
// "the drive hiccuped" into a first-class, reproducible event.
//
// Faults are decided by the wrapper's own RNG (seeded independently of the
// simulation's), so enabling injection does not perturb the random choices
// every other component makes — two runs of the same seed differ only in
// the faults themselves.

package disk

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// FaultConfig parameterises a Faulty wrapper. The probabilities are the
// steady state; campaigns usually start at zero and open a fault window at
// runtime via the Set* methods.
type FaultConfig struct {
	// Enabled gates wrapping at the rig level: a zero FaultConfig means
	// "no fault layer at all", not "a fault layer that never fires".
	Enabled bool
	// Name labels the wrapper's counters; default "<inner>.flt".
	Name string
	// Seed drives the fault decisions. Independent of the simulation seed.
	Seed int64
	// ReadErrProb/WriteErrProb are per-request transient error probabilities.
	ReadErrProb  float64
	WriteErrProb float64
	// TimeoutFrac is the fraction of injected errors reported as ErrTimeout
	// (after sleeping SpikeDelay — a timeout costs the caller its wait).
	TimeoutFrac float64
	// SpikeProb adds a latency spike of SpikeDelay to that fraction of
	// requests; default delay 10ms.
	SpikeProb  float64
	SpikeDelay time.Duration
	// Reg registers the inject_* counters; nil leaves them unregistered.
	Reg *obs.Registry
}

// badRange is a grown defect: writes into it always fail; reads too when
// reads is set.
type badRange struct {
	lo, hi int64
	reads  bool
}

// Faulty is a Device that forwards to an inner device after consulting the
// fault model. Injected errors fail the request before it reaches the inner
// device — a failed write leaves no bytes on media, as on real hardware
// when the controller rejects the transfer.
type Faulty struct {
	inner Device
	cfg   FaultConfig
	rng   *rand.Rand
	bad   []badRange
	storm bool

	injReads  *metrics.Counter
	injWrites *metrics.Counter
	injSpikes *metrics.Counter
	injBad    *metrics.Counter
}

// NewFaulty wraps inner with the fault model described by cfg.
func NewFaulty(inner Device, cfg FaultConfig) *Faulty {
	if cfg.Name == "" {
		cfg.Name = inner.Name() + ".flt"
	}
	if cfg.SpikeDelay == 0 {
		cfg.SpikeDelay = 10 * time.Millisecond
	}
	return &Faulty{
		inner:     inner,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		injReads:  cfg.Reg.Counter(cfg.Name + ".inject_read_errors"),
		injWrites: cfg.Reg.Counter(cfg.Name + ".inject_write_errors"),
		injSpikes: cfg.Reg.Counter(cfg.Name + ".inject_latency_spikes"),
		injBad:    cfg.Reg.Counter(cfg.Name + ".inject_bad_range_errors"),
	}
}

// SetErrorProbs changes the transient error probabilities at runtime —
// the campaign's fault window open/close switch.
func (f *Faulty) SetErrorProbs(readP, writeP float64) {
	f.cfg.ReadErrProb, f.cfg.WriteErrProb = readP, writeP
}

// SetSpike changes the latency-spike probability and delay at runtime.
func (f *Faulty) SetSpike(prob float64, delay time.Duration) {
	f.cfg.SpikeProb = prob
	if delay > 0 {
		f.cfg.SpikeDelay = delay
	}
}

// SetStorm turns the latency storm on or off: while on, every request pays
// the spike delay (congestion, firmware GC, a resetting expander — pick
// your favourite), though none fail.
func (f *Faulty) SetStorm(on bool) { f.storm = on }

// AddBadRange grows a permanent defect over [lba, lba+nsec): writes into it
// fail forever; reads too when failReads is set. Leaving reads intact
// models the common case where previously written sectors remain readable
// while the drive refuses to accept new data.
func (f *Faulty) AddBadRange(lba, nsec int64, failReads bool) {
	f.bad = append(f.bad, badRange{lo: lba, hi: lba + nsec, reads: failReads})
}

// ClearBadRanges forgets all grown defects (the drive was swapped).
func (f *Faulty) ClearBadRanges() { f.bad = nil }

// inBadRange reports whether [lba, lba+nsec) intersects a grown defect
// that applies to the access direction.
func (f *Faulty) inBadRange(lba int64, nsec int, write bool) bool {
	hi := lba + int64(nsec)
	for _, b := range f.bad {
		if lba < b.hi && hi > b.lo && (write || b.reads) {
			return true
		}
	}
	return false
}

// maybeFault runs the fault model for one request: a possible latency
// spike, then a possible injected error. A nil return means the request
// proceeds to the inner device.
func (f *Faulty) maybeFault(p *sim.Proc, op string, lba int64, nsec int, write bool) error {
	if f.storm || (f.cfg.SpikeProb > 0 && f.rng.Float64() < f.cfg.SpikeProb) {
		f.injSpikes.Inc()
		p.Sleep(f.cfg.SpikeDelay)
	}
	if f.inBadRange(lba, nsec, write) {
		f.injBad.Inc()
		return fmt.Errorf("%w: grown defect at lba %d+%d on %s", ErrIO, lba, nsec, f.inner.Name())
	}
	prob := f.cfg.ReadErrProb
	if write {
		prob = f.cfg.WriteErrProb
	}
	if prob > 0 && f.rng.Float64() < prob {
		if write {
			f.injWrites.Inc()
		} else {
			f.injReads.Inc()
		}
		if f.cfg.TimeoutFrac > 0 && f.rng.Float64() < f.cfg.TimeoutFrac {
			p.Sleep(f.cfg.SpikeDelay)
			return fmt.Errorf("%w: %s lba %d on %s", ErrTimeout, op, lba, f.inner.Name())
		}
		return fmt.Errorf("%w: %s lba %d on %s", ErrIO, op, lba, f.inner.Name())
	}
	return nil
}

// Name implements Device.
func (f *Faulty) Name() string { return f.cfg.Name }

// SectorSize implements Device.
func (f *Faulty) SectorSize() int { return f.inner.SectorSize() }

// Sectors implements Device.
func (f *Faulty) Sectors() int64 { return f.inner.Sectors() }

// Read implements Device.
func (f *Faulty) Read(p *sim.Proc, lba int64, nsec int) ([]byte, error) {
	if err := f.maybeFault(p, "read", lba, nsec, false); err != nil {
		return nil, err
	}
	return f.inner.Read(p, lba, nsec)
}

// Write implements Device.
func (f *Faulty) Write(p *sim.Proc, lba int64, data []byte, fua bool) error {
	if err := f.maybeFault(p, "write", lba, len(data)/f.SectorSize(), true); err != nil {
		return err
	}
	return f.inner.Write(p, lba, data, fua)
}

// Flush implements Device. Barriers are never failed: the model's unit of
// failure is the transfer, and a flush carries no data of its own.
func (f *Faulty) Flush(p *sim.Proc) error { return f.inner.Flush(p) }

// SeqWriteBandwidth implements Device.
func (f *Faulty) SeqWriteBandwidth() float64 { return f.inner.SeqWriteBandwidth() }

// WorstCaseAccess implements Device.
func (f *Faulty) WorstCaseAccess() time.Duration { return f.inner.WorstCaseAccess() }

// Stats implements Device (the inner device's counters; injected faults
// have their own inject_* set).
func (f *Faulty) Stats() *Stats { return f.inner.Stats() }

// PowerFail implements PowerAware when the inner device does.
func (f *Faulty) PowerFail() {
	if pa, ok := f.inner.(PowerAware); ok {
		pa.PowerFail()
	}
}

// PowerOn implements PowerAware when the inner device does.
func (f *Faulty) PowerOn(dom *sim.Domain) {
	if pa, ok := f.inner.(PowerAware); ok {
		pa.PowerOn(dom)
	}
}
