package disk

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// SSDConfig parameterises the flash-device model.
type SSDConfig struct {
	Name string
	// Reg, when set, registers the device's instruments centrally.
	Reg        *obs.Registry
	SectorSize int   // default 512
	Capacity   int64 // sectors; default 2^22 (2 GiB at 512 B)
	// PageSectors is the program/read unit; default 8 (4 KiB pages).
	PageSectors int
	// ReadLatency / ProgramLatency are per-page; defaults 60µs / 250µs
	// (2013-era MLC SATA flash).
	ReadLatency    time.Duration
	ProgramLatency time.Duration
	// Channels bounds internal parallelism; default 4.
	Channels int
	// Bandwidth caps the bus in bytes/s; default 250 MB/s.
	Bandwidth float64
	// VolatileBuffer, if set, makes non-FUA writes complete after only the
	// bus transfer, with the page program happening in the background —
	// contents are lost on power failure. Off by default ("enterprise"
	// flash with power-loss capacitors).
	VolatileBuffer bool
	BufferPages    int // default 256
}

func (c *SSDConfig) applyDefaults() {
	if c.Name == "" {
		c.Name = "ssd"
	}
	if c.SectorSize == 0 {
		c.SectorSize = 512
	}
	if c.Capacity == 0 {
		c.Capacity = 1 << 22
	}
	if c.PageSectors == 0 {
		c.PageSectors = 8
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = 60 * time.Microsecond
	}
	if c.ProgramLatency == 0 {
		c.ProgramLatency = 250 * time.Microsecond
	}
	if c.Channels == 0 {
		c.Channels = 4
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 250e6
	}
	if c.BufferPages == 0 {
		c.BufferPages = 256
	}
}

// SSD models a flash device: per-page program/read latency, channel
// parallelism, and an optional volatile write buffer. There is no seek or
// rotation; the RapiLog gains shrink on flash but the buffer-ack path is
// still faster than a page program, so the effect survives (ablation A2).
type SSD struct {
	cfg      SSDConfig
	s        *sim.Sim
	med      *media
	stats    *Stats
	powered  bool
	channels *sim.Resource

	buf      map[int64]*cacheEntry // volatile buffer, by page index
	bufGen   uint64
	epoch    int // bumped on power failure; stale drainers retire
	bufSpace *sim.Resource
	dirtySig *sim.Signal
	drainSig *sim.Signal
}

// NewSSD creates a powered-on SSD; background buffer drain (if enabled)
// runs in dom.
func NewSSD(s *sim.Sim, dom *sim.Domain, cfg SSDConfig) *SSD {
	cfg.applyDefaults()
	d := &SSD{
		cfg:      cfg,
		s:        s,
		med:      newMedia(cfg.SectorSize),
		stats:    newStats(cfg.Reg, cfg.Name),
		powered:  true,
		channels: s.NewResource(cfg.Name+".chan", int64(cfg.Channels)),
	}
	d.resetBuffer()
	if cfg.VolatileBuffer {
		d.spawnDrainer(dom)
	}
	return d
}

func (d *SSD) resetBuffer() {
	d.buf = make(map[int64]*cacheEntry)
	d.bufSpace = d.s.NewResource(d.cfg.Name+".buf", int64(d.cfg.BufferPages))
	d.dirtySig = d.s.NewSignal(d.cfg.Name + ".dirty")
	d.drainSig = d.s.NewSignal(d.cfg.Name + ".drained")
}

// Name implements Device.
func (d *SSD) Name() string { return d.cfg.Name }

// SectorSize implements Device.
func (d *SSD) SectorSize() int { return d.cfg.SectorSize }

// Sectors implements Device.
func (d *SSD) Sectors() int64 { return d.cfg.Capacity }

// Stats implements Device.
func (d *SSD) Stats() *Stats { return d.stats }

// SeqWriteBandwidth implements Device: channel-parallel page programs,
// capped by the bus.
func (d *SSD) SeqWriteBandwidth() float64 {
	pageBytes := float64(d.cfg.PageSectors * d.cfg.SectorSize)
	perChannel := pageBytes / d.cfg.ProgramLatency.Seconds()
	bw := perChannel * float64(d.cfg.Channels)
	if bw > d.cfg.Bandwidth {
		return d.cfg.Bandwidth
	}
	return bw
}

// WorstCaseAccess implements Device.
func (d *SSD) WorstCaseAccess() time.Duration { return d.cfg.ProgramLatency }

func (d *SSD) pageOf(lba int64) int64 { return lba / int64(d.cfg.PageSectors) }

func (d *SSD) pages(lba int64, nsec int) int {
	if nsec == 0 {
		return 0
	}
	first := d.pageOf(lba)
	last := d.pageOf(lba + int64(nsec) - 1)
	return int(last - first + 1)
}

func (d *SSD) busTime(nsec int) time.Duration {
	bytes := float64(nsec * d.cfg.SectorSize)
	return 8*time.Microsecond + time.Duration(bytes/d.cfg.Bandwidth*float64(time.Second))
}

// Read implements Device.
func (d *SSD) Read(p *sim.Proc, lba int64, nsec int) ([]byte, error) {
	if !d.powered {
		return nil, ErrNoPower
	}
	if err := checkRange(lba, nsec, d.Sectors(), d.cfg.SectorSize, -1); err != nil {
		return nil, err
	}
	start := p.Now()
	d.stats.Reads.Inc()
	d.channels.Acquire(p, 1)
	func() {
		defer d.channels.Release(1)
		p.Sleep(time.Duration(d.pages(lba, nsec))*d.cfg.ReadLatency + d.busTime(nsec))
	}()
	out := d.med.readSectors(lba, nsec)
	// Overlay buffered pages.
	for i := 0; i < nsec; i++ {
		page := d.pageOf(lba + int64(i))
		if e, ok := d.buf[page]; ok {
			off := (lba + int64(i)) - page*int64(d.cfg.PageSectors)
			copy(out[i*d.cfg.SectorSize:(i+1)*d.cfg.SectorSize], e.data[off*int64(d.cfg.SectorSize):])
		}
	}
	d.stats.SectorsRead.Add(int64(nsec))
	d.stats.ReadLatency.Observe(p.Now().Sub(start))
	return out, nil
}

// Write implements Device. Writes are torn at page granularity on kill.
func (d *SSD) Write(p *sim.Proc, lba int64, data []byte, fua bool) error {
	if !d.powered {
		return ErrNoPower
	}
	nsec := len(data) / d.cfg.SectorSize
	if err := checkRange(lba, nsec, d.Sectors(), d.cfg.SectorSize, len(data)); err != nil {
		return err
	}
	start := p.Now()
	d.stats.Writes.Inc()

	if d.cfg.VolatileBuffer && !fua && d.pages(lba, nsec) <= d.cfg.BufferPages {
		d.writeToBuffer(p, lba, data, nsec)
		d.stats.CacheHits.Inc()
		d.stats.WriteLatency.Observe(p.Now().Sub(start))
		return nil
	}

	d.programPages(p, lba, data, nsec)
	d.stats.WriteLatency.Observe(p.Now().Sub(start))
	return nil
}

// writeToBuffer absorbs a write into the volatile buffer at bus speed,
// read-modify-writing partial pages from media.
func (d *SSD) writeToBuffer(p *sim.Proc, lba int64, data []byte, nsec int) {
	firstPage := d.pageOf(lba)
	lastPage := d.pageOf(lba + int64(nsec) - 1)
	// Atomic count-and-claim: blocking between the count and the claim
	// would let the drainer retire overlapping pages and skew the
	// accounting (see the HDD cache for the same pattern).
	for {
		newPages := int64(0)
		for pg := firstPage; pg <= lastPage; pg++ {
			if _, ok := d.buf[pg]; !ok {
				newPages++
			}
		}
		if d.bufSpace.TryAcquire(p, newPages) {
			break
		}
		d.dirtySig.Broadcast()
		d.drainSig.Wait(p)
	}
	d.bufGen++
	ps := int64(d.cfg.PageSectors)
	ss := int64(d.cfg.SectorSize)
	for pg := firstPage; pg <= lastPage; pg++ {
		e, ok := d.buf[pg]
		if !ok {
			e = &cacheEntry{data: d.med.readSectors(pg*ps, int(ps))}
			d.buf[pg] = e
		}
		e.gen = d.bufGen
		// Copy the overlapping sectors of this write into the page image.
		pageStart := pg * ps
		for i := 0; i < nsec; i++ {
			sec := lba + int64(i)
			if sec >= pageStart && sec < pageStart+ps {
				copy(e.data[(sec-pageStart)*ss:], data[int64(i)*ss:(int64(i)+1)*ss])
			}
		}
	}
	p.Sleep(d.busTime(nsec))
	d.dirtySig.Broadcast()
}

// programPages streams data to flash. Large requests stripe across the
// device's channels: up to Channels pages program concurrently per
// ProgramLatency, which is what lets a single sequential stream (like the
// RapiLog emergency dump) reach the advertised bandwidth. Each page commit
// is atomic, so a kill tears the request at a page-group boundary.
func (d *SSD) programPages(p *sim.Proc, lba int64, data []byte, nsec int) {
	epoch := d.epoch
	done := false
	defer func() {
		if !done {
			d.stats.TornWrites.Inc()
		}
	}()
	d.channels.Acquire(p, 1)
	defer d.channels.Release(1)
	p.Sleep(d.busTime(nsec))
	ss := d.cfg.SectorSize
	for off := 0; off < nsec; {
		if !d.powered || d.epoch != epoch {
			return // power died mid-program: the prefix is all there is
		}
		// One program round: up to Channels pages in parallel. The first
		// chunk may be a partial page (unaligned start).
		group := 0
		start := off
		for ch := 0; ch < d.cfg.Channels && off < nsec; ch++ {
			chunk := d.cfg.PageSectors - int((lba+int64(off))%int64(d.cfg.PageSectors))
			if off+chunk > nsec {
				chunk = nsec - off
			}
			off += chunk
			group += chunk
		}
		p.Sleep(d.cfg.ProgramLatency)
		if !d.powered || d.epoch != epoch {
			return
		}
		d.med.writeSectors(lba+int64(start), data[start*ss:(start+group)*ss])
		d.stats.SectorsWritten.Add(int64(group))
	}
	done = true
}

// Flush implements Device.
func (d *SSD) Flush(p *sim.Proc) error {
	if !d.powered {
		return ErrNoPower
	}
	d.stats.Flushes.Inc()
	if !d.cfg.VolatileBuffer {
		return nil
	}
	d.dirtySig.Broadcast()
	for len(d.buf) > 0 {
		d.drainSig.Wait(p)
	}
	return nil
}

func (d *SSD) spawnDrainer(dom *sim.Domain) {
	epoch := d.epoch
	d.s.Spawn(dom, d.cfg.Name+".drain", func(p *sim.Proc) {
		p.SetDaemon(true)
		ps := int64(d.cfg.PageSectors)
		for {
			if d.epoch != epoch {
				return
			}
			if len(d.buf) == 0 {
				d.dirtySig.Wait(p)
				continue
			}
			// Drain the lowest-indexed buffered page.
			var page int64 = -1
			for pg := range d.buf {
				if page < 0 || pg < page {
					page = pg
				}
			}
			e := d.buf[page]
			snapGen := e.gen
			snap := make([]byte, len(e.data))
			copy(snap, e.data)
			d.programPages(p, page*ps, snap, int(ps))
			if cur, ok := d.buf[page]; ok && cur.gen == snapGen {
				delete(d.buf, page)
				d.bufSpace.Release(1)
			}
			d.drainSig.Broadcast()
		}
	})
}

// PowerFail implements PowerAware.
func (d *SSD) PowerFail() {
	d.powered = false
	if n := len(d.buf); n > 0 {
		d.s.Tracef("%s: power fail: %d buffered pages lost", d.cfg.Name, n)
	}
	d.buf = nil
	d.epoch++
}

// PowerOn implements PowerAware.
func (d *SSD) PowerOn(dom *sim.Domain) {
	if d.powered {
		return
	}
	d.powered = true
	d.channels = d.s.NewResource(d.cfg.Name+".chan", int64(d.cfg.Channels))
	d.resetBuffer()
	if d.cfg.VolatileBuffer {
		d.spawnDrainer(dom)
	}
}

// String describes the device.
func (d *SSD) String() string {
	return fmt.Sprintf("%s: %.0f MB/s seq, %s program, %d channels, volatile-buffer=%v",
		d.cfg.Name, d.SeqWriteBandwidth()/1e6, d.cfg.ProgramLatency, d.cfg.Channels, d.cfg.VolatileBuffer)
}
