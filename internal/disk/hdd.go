package disk

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// HDDConfig parameterises the rotating-disk model.
type HDDConfig struct {
	Name string
	// Reg, when set, registers the device's instruments centrally.
	Reg             *obs.Registry
	SectorSize      int           // bytes; default 512
	Cylinders       int           // default 8192
	Heads           int           // tracks per cylinder; default 4
	SectorsPerTrack int           // default 500
	RPM             int           // default 7200
	SeekMin         time.Duration // track-to-track; default 500µs
	SeekMax         time.Duration // full stroke; default 8ms
	// WriteCache enables the volatile on-drive cache: non-FUA writes are
	// absorbed at bus speed and drained to media in the background. The
	// cache is lost on power failure — this is the unsafe fast path real
	// drives ship with and databases must defeat with FUA/flush.
	WriteCache   bool
	CacheSectors int     // cache capacity; default 16384 (8 MiB at 512 B)
	ChunkSectors int     // media commit granularity; default 8 (4 KiB)
	BusBandwidth float64 // bytes/s host<->drive; default 300 MB/s
}

func (c *HDDConfig) applyDefaults() {
	if c.Name == "" {
		c.Name = "hdd"
	}
	if c.SectorSize == 0 {
		c.SectorSize = 512
	}
	if c.Cylinders == 0 {
		c.Cylinders = 8192
	}
	if c.Heads == 0 {
		c.Heads = 4
	}
	if c.SectorsPerTrack == 0 {
		c.SectorsPerTrack = 500
	}
	if c.RPM == 0 {
		c.RPM = 7200
	}
	if c.SeekMin == 0 {
		c.SeekMin = 500 * time.Microsecond
	}
	if c.SeekMax == 0 {
		c.SeekMax = 8 * time.Millisecond
	}
	if c.CacheSectors == 0 {
		c.CacheSectors = 16384
	}
	if c.ChunkSectors == 0 {
		c.ChunkSectors = 8
	}
	if c.BusBandwidth == 0 {
		c.BusBandwidth = 300e6
	}
}

// HDD is a mechanically modelled rotating disk: seek time scales with the
// square root of cylinder distance, rotational delay follows a continuously
// spinning platter, and transfers stream at track bandwidth. Media commits
// happen in ChunkSectors units, so a process killed mid-write (guest crash,
// power loss) leaves a torn request: the committed prefix survives.
type HDD struct {
	cfg     HDDConfig
	s       *sim.Sim
	med     *media
	stats   *Stats
	powered bool

	arm       *sim.Mutex // serialises head usage
	curCyl    int
	rotPeriod time.Duration
	perSector time.Duration

	// Volatile write cache.
	cache      map[int64]*cacheEntry
	cacheGen   uint64
	epoch      int // bumped on power failure; stale drainers retire
	cacheSpace *sim.Resource
	dirtySig   *sim.Signal // new dirty data for the drainer
	drainedSig *sim.Signal // batch reached media, for Flush waiters
	drainPos   int64       // elevator sweep position
}

type cacheEntry struct {
	data []byte
	gen  uint64
}

// NewHDD creates a powered-on HDD and spawns its cache drainer (if the
// write cache is enabled) into dom.
func NewHDD(s *sim.Sim, dom *sim.Domain, cfg HDDConfig) *HDD {
	cfg.applyDefaults()
	d := &HDD{
		cfg:       cfg,
		s:         s,
		med:       newMedia(cfg.SectorSize),
		stats:     newStats(cfg.Reg, cfg.Name),
		powered:   true,
		arm:       s.NewMutex(cfg.Name + ".arm"),
		rotPeriod: time.Duration(float64(time.Minute) / float64(cfg.RPM)),
	}
	d.perSector = d.rotPeriod / time.Duration(cfg.SectorsPerTrack)
	d.resetCache()
	if cfg.WriteCache {
		d.spawnDrainer(dom)
	}
	return d
}

func (d *HDD) resetCache() {
	d.cache = make(map[int64]*cacheEntry)
	d.cacheSpace = d.s.NewResource(d.cfg.Name+".cache", int64(d.cfg.CacheSectors))
	d.dirtySig = d.s.NewSignal(d.cfg.Name + ".dirty")
	d.drainedSig = d.s.NewSignal(d.cfg.Name + ".drained")
}

// Name implements Device.
func (d *HDD) Name() string { return d.cfg.Name }

// SectorSize implements Device.
func (d *HDD) SectorSize() int { return d.cfg.SectorSize }

// Sectors implements Device.
func (d *HDD) Sectors() int64 {
	return int64(d.cfg.Cylinders) * int64(d.cfg.Heads) * int64(d.cfg.SectorsPerTrack)
}

// Stats implements Device.
func (d *HDD) Stats() *Stats { return d.stats }

// SeqWriteBandwidth implements Device: one track per rotation.
func (d *HDD) SeqWriteBandwidth() float64 {
	trackBytes := float64(d.cfg.SectorsPerTrack * d.cfg.SectorSize)
	return trackBytes / d.rotPeriod.Seconds()
}

// WorstCaseAccess implements Device: full-stroke seek plus one rotation.
func (d *HDD) WorstCaseAccess() time.Duration { return d.cfg.SeekMax + d.rotPeriod }

// RotationPeriod returns the platter's rotation period.
func (d *HDD) RotationPeriod() time.Duration { return d.rotPeriod }

// CacheDirtySectors returns the number of sectors waiting in the volatile
// cache.
func (d *HDD) CacheDirtySectors() int { return len(d.cache) }

func (d *HDD) sectorsPerCyl() int64 { return int64(d.cfg.Heads) * int64(d.cfg.SectorsPerTrack) }

func (d *HDD) cylOf(lba int64) int { return int(lba / d.sectorsPerCyl()) }

// seekTime models seek latency as min + (max-min)·sqrt(distance/full).
func (d *HDD) seekTime(from, to int) time.Duration {
	if from == to {
		return 0
	}
	dist := math.Abs(float64(to - from))
	frac := math.Sqrt(dist / float64(d.cfg.Cylinders-1))
	return d.cfg.SeekMin + time.Duration(frac*float64(d.cfg.SeekMax-d.cfg.SeekMin))
}

// rotationalDelay returns the wait for the target in-track sector to pass
// under the head, given the continuously spinning platter.
func (d *HDD) rotationalDelay(lba int64) time.Duration {
	target := float64(lba%int64(d.cfg.SectorsPerTrack)) / float64(d.cfg.SectorsPerTrack)
	phase := float64(d.s.Now()%sim.Time(d.rotPeriod)) / float64(d.rotPeriod)
	frac := target - phase
	if frac < 0 {
		frac++
	}
	return time.Duration(frac * float64(d.rotPeriod))
}

// mechanicalIO performs a media access with the arm held: position, then
// stream chunk by chunk, committing each chunk (for writes) as it passes
// under the head. A kill mid-stream leaves the committed prefix: a torn
// write.
func (d *HDD) mechanicalIO(p *sim.Proc, lba int64, nsec int, data []byte) []byte {
	epoch := d.epoch
	done := false
	if data != nil {
		defer func() {
			if !done {
				d.stats.TornWrites.Inc()
			}
		}()
	}

	if cyl := d.cylOf(lba); cyl != d.curCyl {
		p.Sleep(d.seekTime(d.curCyl, cyl))
		d.curCyl = cyl
	}
	p.Sleep(d.rotationalDelay(lba))

	var out []byte
	if data == nil {
		out = make([]byte, 0, nsec*d.cfg.SectorSize)
	}
	for off := 0; off < nsec; {
		if !d.powered || d.epoch != epoch {
			return out // power died mid-transfer: the prefix is all there is
		}
		chunk := d.cfg.ChunkSectors
		if off+chunk > nsec {
			chunk = nsec - off
		}
		start := lba + int64(off)
		// Crossing into a new cylinder costs a track-to-track seek.
		if cyl := d.cylOf(start); cyl != d.curCyl {
			p.Sleep(d.cfg.SeekMin)
			d.curCyl = cyl
		}
		p.Sleep(time.Duration(chunk) * d.perSector)
		if data != nil {
			d.med.writeSectors(start, data[off*d.cfg.SectorSize:(off+chunk)*d.cfg.SectorSize])
			d.stats.SectorsWritten.Add(int64(chunk))
		} else {
			out = append(out, d.med.readSectors(start, chunk)...)
			d.stats.SectorsRead.Add(int64(chunk))
		}
		off += chunk
	}
	done = true
	return out
}

// Read implements Device: cached sectors overlay media contents.
func (d *HDD) Read(p *sim.Proc, lba int64, nsec int) ([]byte, error) {
	if !d.powered {
		return nil, ErrNoPower
	}
	if err := checkRange(lba, nsec, d.Sectors(), d.cfg.SectorSize, -1); err != nil {
		return nil, err
	}
	start := p.Now()
	d.stats.Reads.Inc()

	// Fast path: every sector is in the cache — bus transfer only.
	allCached := d.cfg.WriteCache
	if allCached {
		for i := 0; i < nsec; i++ {
			if _, ok := d.cache[lba+int64(i)]; !ok {
				allCached = false
				break
			}
		}
	}
	var out []byte
	if allCached && nsec > 0 {
		p.Sleep(d.busTime(nsec))
		out = make([]byte, 0, nsec*d.cfg.SectorSize)
		for i := 0; i < nsec; i++ {
			out = append(out, d.cache[lba+int64(i)].data...)
		}
	} else {
		d.arm.Lock(p)
		func() {
			defer d.arm.Unlock(p)
			out = d.mechanicalIO(p, lba, nsec, nil)
		}()
		// Overlay any sectors that are newer in the cache.
		for i := 0; i < nsec; i++ {
			if e, ok := d.cache[lba+int64(i)]; ok {
				copy(out[i*d.cfg.SectorSize:], e.data)
			}
		}
	}
	d.stats.ReadLatency.Observe(p.Now().Sub(start))
	return out, nil
}

func (d *HDD) busTime(nsec int) time.Duration {
	bytes := float64(nsec * d.cfg.SectorSize)
	return 10*time.Microsecond + time.Duration(bytes/d.cfg.BusBandwidth*float64(time.Second))
}

// Write implements Device.
func (d *HDD) Write(p *sim.Proc, lba int64, data []byte, fua bool) error {
	if !d.powered {
		return ErrNoPower
	}
	nsec := len(data) / d.cfg.SectorSize
	if err := checkRange(lba, nsec, d.Sectors(), d.cfg.SectorSize, len(data)); err != nil {
		return err
	}
	start := p.Now()
	d.stats.Writes.Inc()

	// Requests larger than the whole cache bypass it (no admission could
	// ever succeed); they take the direct media path below.
	if d.cfg.WriteCache && !fua && nsec <= d.cfg.CacheSectors {
		// Absorb into the volatile cache at bus speed. Admission must be
		// atomic with the occupancy count: counting, then blocking in
		// Acquire, would let the drainer retire overlapping sectors in
		// between and corrupt the accounting — so recount after every
		// wait until the claim succeeds in one step.
		for {
			newSectors := int64(0)
			for i := 0; i < nsec; i++ {
				if _, ok := d.cache[lba+int64(i)]; !ok {
					newSectors++
				}
			}
			if d.cacheSpace.TryAcquire(p, newSectors) {
				break
			}
			d.dirtySig.Broadcast() // nudge the drainer
			d.drainedSig.Wait(p)
		}
		d.cacheGen++
		for i := 0; i < nsec; i++ {
			sec := make([]byte, d.cfg.SectorSize)
			copy(sec, data[i*d.cfg.SectorSize:(i+1)*d.cfg.SectorSize])
			d.cache[lba+int64(i)] = &cacheEntry{data: sec, gen: d.cacheGen}
		}
		p.Sleep(d.busTime(nsec))
		d.stats.CacheHits.Inc()
		d.dirtySig.Broadcast()
		d.stats.WriteLatency.Observe(p.Now().Sub(start))
		return nil
	}

	// Direct media path. Supersede any cached copies of these sectors so a
	// later drain cannot overwrite this (newer) data.
	if d.cfg.WriteCache {
		released := int64(0)
		for i := 0; i < nsec; i++ {
			if _, ok := d.cache[lba+int64(i)]; ok {
				delete(d.cache, lba+int64(i))
				released++
			}
		}
		d.cacheSpace.Release(released)
	}
	d.arm.Lock(p)
	func() {
		defer d.arm.Unlock(p)
		d.mechanicalIO(p, lba, nsec, data)
	}()
	d.stats.WriteLatency.Observe(p.Now().Sub(start))
	return nil
}

// Flush implements Device: block until the volatile cache is empty.
func (d *HDD) Flush(p *sim.Proc) error {
	if !d.powered {
		return ErrNoPower
	}
	d.stats.Flushes.Inc()
	if !d.cfg.WriteCache {
		return nil
	}
	d.dirtySig.Broadcast() // nudge the drainer
	for len(d.cache) > 0 {
		d.drainedSig.Wait(p)
	}
	return nil
}

// spawnDrainer starts the background cache writeback process: an elevator
// sweep that coalesces contiguous dirty runs into streaming media writes.
func (d *HDD) spawnDrainer(dom *sim.Domain) {
	epoch := d.epoch
	d.s.Spawn(dom, d.cfg.Name+".drain", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			if d.epoch != epoch {
				return // a power cycle happened; a fresh drainer owns the cache
			}
			if len(d.cache) == 0 {
				d.dirtySig.Wait(p)
				continue
			}
			lbas, snap := d.nextDrainRun()
			if len(lbas) == 0 {
				continue
			}
			data := make([]byte, 0, len(lbas)*d.cfg.SectorSize)
			for _, lba := range lbas {
				data = append(data, snap[lba].data...)
			}
			d.arm.Lock(p)
			func() {
				defer d.arm.Unlock(p)
				d.mechanicalIO(p, lbas[0], len(lbas), data)
			}()
			// Retire sectors not rewritten while we were draining.
			released := int64(0)
			for _, lba := range lbas {
				if cur, ok := d.cache[lba]; ok && cur.gen == snap[lba].gen {
					delete(d.cache, lba)
					released++
				}
			}
			d.cacheSpace.Release(released)
			d.drainedSig.Broadcast()
		}
	})
}

// nextDrainRun picks the next contiguous run of dirty sectors in elevator
// order (ascending LBA, wrapping) and snapshots their entries.
func (d *HDD) nextDrainRun() ([]int64, map[int64]*cacheEntry) {
	if len(d.cache) == 0 {
		return nil, nil
	}
	all := make([]int64, 0, len(d.cache))
	for lba := range d.cache {
		all = append(all, lba)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	// First dirty LBA at or after the sweep position, else wrap to lowest.
	idx := sort.Search(len(all), func(i int) bool { return all[i] >= d.drainPos })
	if idx == len(all) {
		idx = 0
	}
	run := []int64{all[idx]}
	const maxRun = 256 // bound a single arm hold
	for i := idx + 1; i < len(all) && len(run) < maxRun; i++ {
		if all[i] != run[len(run)-1]+1 {
			break
		}
		run = append(run, all[i])
	}
	snap := make(map[int64]*cacheEntry, len(run))
	for _, lba := range run {
		snap[lba] = d.cache[lba]
	}
	d.drainPos = run[len(run)-1] + 1
	return run, snap
}

// PowerFail implements PowerAware: the volatile cache vanishes.
func (d *HDD) PowerFail() {
	d.powered = false
	if n := len(d.cache); n > 0 {
		d.s.Tracef("%s: power fail: %d cached sectors lost", d.cfg.Name, n)
	}
	d.cache = nil
	d.epoch++
}

// PowerOn implements PowerAware: restore service with an empty cache and a
// fresh drainer in dom.
func (d *HDD) PowerOn(dom *sim.Domain) {
	if d.powered {
		return
	}
	d.powered = true
	d.curCyl = 0
	d.resetCache()
	if d.cfg.WriteCache {
		d.spawnDrainer(dom)
	}
}

// String describes the drive.
func (d *HDD) String() string {
	return fmt.Sprintf("%s: %d RPM, %.1f MB/s seq, %s..%s seek, cache=%v",
		d.cfg.Name, d.cfg.RPM, d.SeqWriteBandwidth()/1e6, d.cfg.SeekMin, d.cfg.SeekMax, d.cfg.WriteCache)
}
