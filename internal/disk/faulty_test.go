package disk

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

// run executes fn in a fresh process and drives the simulation to idle.
func run(t *testing.T, s *sim.Sim, fn func(p *sim.Proc)) {
	t.Helper()
	s.Spawn(nil, "t", fn)
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestIsTransientClassification(t *testing.T) {
	for _, err := range []error{ErrIO, ErrTimeout} {
		if !IsTransient(err) {
			t.Errorf("IsTransient(%v) = false, want true", err)
		}
	}
	for _, err := range []error{ErrNoPower, ErrOutOfRange, ErrMisaligned, errors.New("other")} {
		if IsTransient(err) {
			t.Errorf("IsTransient(%v) = true, want false", err)
		}
	}
}

func TestFaultyDeterministicInjection(t *testing.T) {
	sequence := func() []bool {
		s := sim.New(1)
		mem := NewMem(s, MemConfig{Name: "m", Persistent: true})
		f := NewFaulty(mem, FaultConfig{Seed: 7, WriteErrProb: 0.5})
		var errs []bool
		run(t, s, func(p *sim.Proc) {
			for i := 0; i < 64; i++ {
				errs = append(errs, f.Write(p, int64(i*8), make([]byte, 512), true) != nil)
			}
		})
		return errs
	}
	a, b := sequence(), sequence()
	sawErr, sawOk := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
		sawErr = sawErr || a[i]
		sawOk = sawOk || !a[i]
	}
	if !sawErr || !sawOk {
		t.Fatalf("p=0.5 over 64 requests should mix errors and successes (err=%v ok=%v)", sawErr, sawOk)
	}
}

func TestFaultyInjectedErrorsAreTransientAndLeaveNoData(t *testing.T) {
	s := sim.New(1)
	mem := NewMem(s, MemConfig{Name: "m", Persistent: true})
	f := NewFaulty(mem, FaultConfig{Seed: 1, WriteErrProb: 1})
	run(t, s, func(p *sim.Proc) {
		data := []byte{1, 2, 3, 4}
		err := f.Write(p, 0, append(data, make([]byte, 508)...), true)
		if !errors.Is(err, ErrIO) {
			t.Errorf("injected write error = %v, want wrapped ErrIO", err)
		}
		if !IsTransient(err) {
			t.Error("injected error not classified transient")
		}
		// The request was rejected before reaching media.
		got, rerr := mem.Read(p, 0, 1)
		if rerr != nil {
			t.Fatalf("read-back: %v", rerr)
		}
		for _, b := range got[:4] {
			if b != 0 {
				t.Fatal("failed write left bytes on media")
			}
		}
	})
	if v := f.injWrites.Value(); v != 1 {
		t.Fatalf("inject_write_errors = %d, want 1", v)
	}
}

func TestFaultyBadRange(t *testing.T) {
	s := sim.New(1)
	mem := NewMem(s, MemConfig{Name: "m", Persistent: true})
	f := NewFaulty(mem, FaultConfig{Seed: 1})
	f.AddBadRange(100, 10, false) // writes fail, reads survive
	run(t, s, func(p *sim.Proc) {
		buf := make([]byte, 512)
		if err := f.Write(p, 105, buf, true); !errors.Is(err, ErrIO) {
			t.Errorf("write into bad range: %v, want ErrIO", err)
		}
		if err := f.Write(p, 110, buf, true); err != nil {
			t.Errorf("write just past bad range: %v", err)
		}
		if _, err := f.Read(p, 105, 1); err != nil {
			t.Errorf("read of write-only bad range: %v", err)
		}
		f.ClearBadRanges()
		if err := f.Write(p, 105, buf, true); err != nil {
			t.Errorf("write after ClearBadRanges: %v", err)
		}
		f.AddBadRange(100, 10, true) // now reads fail too
		if _, err := f.Read(p, 109, 4); !errors.Is(err, ErrIO) {
			t.Errorf("read overlapping read-bad range: %v, want ErrIO", err)
		}
	})
	if v := f.injBad.Value(); v != 2 {
		t.Fatalf("inject_bad_range_errors = %d, want 2", v)
	}
}

func TestFaultyLatencyStorm(t *testing.T) {
	s := sim.New(1)
	mem := NewMem(s, MemConfig{Name: "m", Persistent: true})
	f := NewFaulty(mem, FaultConfig{Seed: 1, SpikeDelay: 10 * time.Millisecond})
	var calm, stormy time.Duration
	run(t, s, func(p *sim.Proc) {
		buf := make([]byte, 512)
		start := p.Now()
		if err := f.Write(p, 0, buf, true); err != nil {
			t.Fatal(err)
		}
		calm = p.Now().Sub(start)
		f.SetStorm(true)
		start = p.Now()
		if err := f.Write(p, 8, buf, true); err != nil {
			t.Fatal(err)
		}
		stormy = p.Now().Sub(start)
		f.SetStorm(false)
	})
	if stormy < calm+10*time.Millisecond {
		t.Fatalf("storm write took %v vs calm %v, want +10ms spike", stormy, calm)
	}
	if v := f.injSpikes.Value(); v != 1 {
		t.Fatalf("inject_latency_spikes = %d, want 1", v)
	}
}
