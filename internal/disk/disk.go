// Package disk models block storage devices on the simulation's virtual
// clock: a mechanically modelled rotating disk (HDD), a flash device (SSD),
// and a RAM-backed device, plus Partition views over sub-ranges.
//
// The models capture exactly the properties the RapiLog argument depends on:
//
//   - a synchronous small write to a rotating disk costs a seek plus about
//     half a rotation — milliseconds;
//   - sequential streaming achieves track bandwidth — tens of MB/s;
//   - volatile write caches make writes fast and unsafe: their contents are
//     lost on power failure;
//   - a write in flight when power dies is torn at sector granularity — the
//     prefix is on the platter, the rest is gone.
//
// All methods that perform I/O take a *sim.Proc and block the calling
// process for the modelled service time. Media contents survive power
// failure; caches and in-flight requests do not.
package disk

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Common device errors.
var (
	ErrOutOfRange = errors.New("disk: access beyond device extent")
	ErrMisaligned = errors.New("disk: length not a multiple of the sector size")
	ErrNoPower    = errors.New("disk: device is powered off")
	// ErrIO is a media-level I/O error: the request failed but the device
	// is still there and a retry may succeed (or keep failing, for a grown
	// defect — real controllers cannot tell the caller which).
	ErrIO = errors.New("disk: I/O error")
	// ErrTimeout is a request that the device gave up on. Like ErrIO it is
	// retryable; unlike ErrIO the caller has also already paid a long wait.
	ErrTimeout = errors.New("disk: request timed out")
)

// IsTransient reports whether err is a media fault worth retrying (ErrIO,
// ErrTimeout). Power loss, range and alignment errors are not: retrying a
// dead machine or a bad request can never succeed.
func IsTransient(err error) bool {
	return errors.Is(err, ErrIO) || errors.Is(err, ErrTimeout)
}

// Device is a block device on virtual time. Offsets and lengths are in
// sectors; data lengths must be multiples of the sector size.
type Device interface {
	// Name identifies the device in traces and stats.
	Name() string
	// SectorSize returns the sector size in bytes.
	SectorSize() int
	// Sectors returns the device capacity in sectors.
	Sectors() int64
	// Read fills and returns a buffer of nsec sectors starting at lba,
	// blocking p for the modelled service time.
	Read(p *sim.Proc, lba int64, nsec int) ([]byte, error)
	// Write stores data at lba, blocking p for the modelled service time.
	// With fua set, the write bypasses any volatile cache and is on media
	// when Write returns; otherwise it may be cached.
	Write(p *sim.Proc, lba int64, data []byte, fua bool) error
	// Flush blocks p until all cached writes are on media.
	Flush(p *sim.Proc) error
	// SeqWriteBandwidth returns the sustained sequential write bandwidth in
	// bytes per second — the figure RapiLog's buffer-sizing rule uses.
	SeqWriteBandwidth() float64
	// WorstCaseAccess returns the worst-case positioning delay before a
	// sequential stream starts (full seek plus a rotation for an HDD).
	WorstCaseAccess() time.Duration
	// Stats returns the device's counters (live; not a copy).
	Stats() *Stats
}

// PowerAware devices react to machine power transitions. PowerFail drops
// volatile state immediately; PowerOn restores service, spawning any
// background machinery into dom.
type PowerAware interface {
	PowerFail()
	PowerOn(dom *sim.Domain)
}

// Stats aggregates device activity.
type Stats struct {
	Reads          *metrics.Counter
	Writes         *metrics.Counter
	SectorsRead    *metrics.Counter
	SectorsWritten *metrics.Counter
	Flushes        *metrics.Counter
	CacheHits      *metrics.Counter // writes absorbed by the volatile cache
	ReadLatency    *metrics.Histogram
	WriteLatency   *metrics.Histogram
	TornWrites     *metrics.Counter // requests only partially on media at power fail
}

// newStats creates the device's instruments through reg (nil reg creates
// them unregistered), named hierarchically under the device name.
func newStats(reg *obs.Registry, name string) *Stats {
	return &Stats{
		Reads:          reg.Counter(name + ".reads"),
		Writes:         reg.Counter(name + ".writes"),
		SectorsRead:    reg.Counter(name + ".sectors_read"),
		SectorsWritten: reg.Counter(name + ".sectors_written"),
		Flushes:        reg.Counter(name + ".flushes"),
		CacheHits:      reg.Counter(name + ".cache_hits"),
		ReadLatency:    reg.Histogram(name + ".read_latency"),
		WriteLatency:   reg.Histogram(name + ".write_latency"),
		TornWrites:     reg.Counter(name + ".torn_writes"),
	}
}

// checkRange validates an access against a device extent.
func checkRange(lba int64, nsec int, sectors int64, sectorSize, dataLen int) error {
	if dataLen >= 0 && dataLen%sectorSize != 0 {
		return ErrMisaligned
	}
	if lba < 0 || nsec < 0 || lba+int64(nsec) > sectors {
		return fmt.Errorf("%w: lba=%d nsec=%d cap=%d", ErrOutOfRange, lba, nsec, sectors)
	}
	return nil
}

// media is sparse sector storage representing the platter/flash array.
// Contents survive power failure.
type media struct {
	sectorSize int
	sectors    map[int64][]byte
}

func newMedia(sectorSize int) *media {
	return &media{sectorSize: sectorSize, sectors: make(map[int64][]byte)}
}

// writeSectors persists data (len multiple of sectorSize) starting at lba.
// Rewrites copy into the existing sector buffer in place — readSectors
// copies out, so no returned read aliases the stored buffers.
func (m *media) writeSectors(lba int64, data []byte) {
	for off := 0; off < len(data); off += m.sectorSize {
		sec, ok := m.sectors[lba+int64(off/m.sectorSize)]
		if !ok {
			sec = make([]byte, m.sectorSize)
			m.sectors[lba+int64(off/m.sectorSize)] = sec
		}
		copy(sec, data[off:off+m.sectorSize])
	}
}

// readSectors returns nsec sectors from lba; unwritten sectors read as zero.
func (m *media) readSectors(lba int64, nsec int) []byte {
	out := make([]byte, nsec*m.sectorSize)
	for i := 0; i < nsec; i++ {
		if sec, ok := m.sectors[lba+int64(i)]; ok {
			copy(out[i*m.sectorSize:], sec)
		}
	}
	return out
}

// Partition exposes a contiguous sector range of a parent device as a
// Device. Flushes pass through to the whole parent.
type Partition struct {
	parent Device
	name   string
	start  int64
	count  int64
}

// NewPartition creates a view of count sectors starting at start.
func NewPartition(parent Device, name string, start, count int64) (*Partition, error) {
	if start < 0 || count < 0 || start+count > parent.Sectors() {
		return nil, fmt.Errorf("%w: partition %q [%d,+%d) on %d-sector device",
			ErrOutOfRange, name, start, count, parent.Sectors())
	}
	return &Partition{parent: parent, name: name, start: start, count: count}, nil
}

// Name returns the partition name.
func (pt *Partition) Name() string { return pt.name }

// SectorSize returns the parent's sector size.
func (pt *Partition) SectorSize() int { return pt.parent.SectorSize() }

// Sectors returns the partition length in sectors.
func (pt *Partition) Sectors() int64 { return pt.count }

// Start returns the partition's first sector on the parent device.
func (pt *Partition) Start() int64 { return pt.start }

// Parent returns the underlying device.
func (pt *Partition) Parent() Device { return pt.parent }

// Read implements Device.
func (pt *Partition) Read(p *sim.Proc, lba int64, nsec int) ([]byte, error) {
	if err := checkRange(lba, nsec, pt.count, pt.SectorSize(), -1); err != nil {
		return nil, err
	}
	return pt.parent.Read(p, pt.start+lba, nsec)
}

// Write implements Device.
func (pt *Partition) Write(p *sim.Proc, lba int64, data []byte, fua bool) error {
	if err := checkRange(lba, len(data)/pt.SectorSize(), pt.count, pt.SectorSize(), len(data)); err != nil {
		return err
	}
	return pt.parent.Write(p, pt.start+lba, data, fua)
}

// Flush implements Device.
func (pt *Partition) Flush(p *sim.Proc) error { return pt.parent.Flush(p) }

// SeqWriteBandwidth implements Device.
func (pt *Partition) SeqWriteBandwidth() float64 { return pt.parent.SeqWriteBandwidth() }

// WorstCaseAccess implements Device.
func (pt *Partition) WorstCaseAccess() time.Duration { return pt.parent.WorstCaseAccess() }

// Stats implements Device (shared with the parent).
func (pt *Partition) Stats() *Stats { return pt.parent.Stats() }
