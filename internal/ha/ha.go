// Package ha is the high-availability control plane: a deterministic,
// seeded failure detector and promotion coordinator that runs over the
// same simulated fabric the log stream uses. The coordinator heartbeats
// the current leader's agent endpoint; on sustained silence — power loss,
// isolation, a crashed agent — it runs an epoch-fenced takeover:
//
//  1. Census.  StateReq every reachable standby store; wait for at least
//     N−K+1 responses, the quorum that provably intersects every ack
//     quorum the deposed leader could have used. Without it a standby
//     holding the only copy of an acked commit could be missing from the
//     electorate and the acked prefix silently lost.
//  2. Election. The winner is the store with the highest (epoch, seq)
//     applied prefix — cumulative acks make every applied prefix dense,
//     so lexicographic comparison is exact, not heuristic.
//  3. Fencing.  Bump the epoch past everything any store has seen and
//     broadcast the fence. Every store rejects records and acks from
//     older epochs from the moment it fence-acks; the deposed primary's
//     shipper (if still alive — an isolation, not a crash) is fenced
//     too, so it can never again assemble an ack quorum. Promotion waits
//     for fence-acks from the winner plus a quorum.
//  4. Promotion. Hand the cluster callback the winner and the fenced
//     epoch: it replays the winner's prefix into a fresh engine/WAL
//     stack and starts a new shipper at the fenced epoch.
//
// The coordinator lives in its own failure domain: it can crash and
// restart independently of every node (the composed campaign does
// exactly that) and resumes its detector from durable-enough state —
// the cluster interface — not from anything on a node.
package ha

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/sim"
)

// Cluster is the coordinator's view of the deployment it guards. The rig
// layer implements it; ha stays free of any dependency on machines,
// disks or engines.
type Cluster interface {
	// LeaderAgent is the current leader's heartbeat endpoint.
	LeaderAgent() string
	// LeaderPrimary is the current leader's shipper endpoint — the fence
	// target that deposes a still-running primary.
	LeaderPrimary() string
	// PeerStores lists the standby store endpoints of every non-leader
	// node: the electorate.
	PeerStores() []string
	// AllStores lists every node's store endpoint: the fence targets.
	AllStores() []string
	// MaxEpoch is the highest shipper epoch the cluster has started.
	MaxEpoch() int
	// Quorum is how many census responses and fence acks a takeover
	// needs: N−K+1 over the peer stores.
	Quorum() int
	// Promote makes the winner the leader at the fenced epoch and
	// returns how many bytes of prefix the promotion replayed.
	Promote(p *sim.Proc, winnerStore string, epoch int) (int64, error)
}

// Config parameterises the coordinator.
type Config struct {
	// Name is the coordinator's fabric endpoint; default "ha.coord".
	Name string
	// HeartbeatEvery is the ping cadence; default 20ms.
	HeartbeatEvery time.Duration
	// FailAfter is how long the leader may stay silent before a takeover
	// begins; default 120ms (six missed heartbeats).
	FailAfter time.Duration
	// RoundTimeout bounds one census/fence round before unanswered
	// requests are resent; default 30ms.
	RoundTimeout time.Duration
	Reg          *obs.Registry
	Trace        *obs.Tracer
}

func (c *Config) applyDefaults() {
	if c.Name == "" {
		c.Name = "ha.coord"
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 20 * time.Millisecond
	}
	if c.FailAfter == 0 {
		c.FailAfter = 120 * time.Millisecond
	}
	if c.RoundTimeout == 0 {
		c.RoundTimeout = 30 * time.Millisecond
	}
}

// Ping is a coordinator→leader liveness probe; Pong is the agent's reply.
type (
	Ping struct {
		Seq  uint64
		From string
	}
	Pong struct {
		Seq  uint64
		From string
	}
)

// MsgBytes is the wire size charged for control-plane messages.
const MsgBytes = 24

// Coordinator is the failure detector + takeover driver.
type Coordinator struct {
	s   *sim.Sim
	fab *netsim.Fabric
	cl  Cluster
	cfg Config
	tr  *obs.Tracer

	dom *sim.Domain
	ep  *netsim.Endpoint

	elections *metrics.Counter
	promoteB  *metrics.Counter

	failovers int
	lastErr   error
}

// New builds a coordinator on its own sim-level domain (it is not part of
// any machine) and starts the detector loop.
func New(s *sim.Sim, fab *netsim.Fabric, cl Cluster, cfg Config) *Coordinator {
	cfg.applyDefaults()
	co := &Coordinator{
		s: s, fab: fab, cl: cl, cfg: cfg, tr: cfg.Trace,
		ep:        fab.Endpoint(cfg.Name),
		elections: cfg.Reg.Counter("ha.elections"),
		promoteB:  cfg.Reg.Counter("ha.promote_replay_bytes"),
	}
	co.start()
	return co
}

// Failovers returns how many takeovers completed.
func (co *Coordinator) Failovers() int { return co.failovers }

// LastErr returns the most recent promotion error (nil when clean).
func (co *Coordinator) LastErr() error { return co.lastErr }

// Crash kills the coordinator — detector and any in-flight takeover die.
// Node failures during the outage go unhandled until Restart.
func (co *Coordinator) Crash() {
	if co.dom != nil {
		co.dom.Kill()
	}
	co.fab.Isolate(co.cfg.Name)
	co.s.Tracef("ha: coordinator crashed")
}

// Restart revives a crashed coordinator with a fresh detector. Replies to
// pre-crash requests may still arrive; the census and fence loops tolerate
// duplicates, and stale pongs are filtered by the current leader's name.
func (co *Coordinator) Restart() {
	for {
		if _, ok := co.ep.TryRecv(); !ok {
			break
		}
	}
	co.fab.Restore(co.cfg.Name)
	co.start()
	co.s.Tracef("ha: coordinator restarted")
}

func (co *Coordinator) start() {
	co.dom = co.s.NewDomain(co.cfg.Name)
	co.s.Spawn(co.dom, co.cfg.Name, co.run)
}

func (co *Coordinator) run(p *sim.Proc) {
	p.SetDaemon(true)
	lastPong := p.Now()
	var seq uint64
	for {
		p.Sleep(co.cfg.HeartbeatEvery)
		leader := co.cl.LeaderAgent()
		for {
			m, ok := co.ep.TryRecv()
			if !ok {
				break
			}
			// Only the current leader's pongs reset the clock: a deposed
			// leader answering late must not mask the new one going dark.
			if pg, ok := m.Payload.(Pong); ok && pg.From == leader {
				lastPong = p.Now()
			}
		}
		seq++
		co.ep.Send(leader, MsgBytes, Ping{Seq: seq, From: co.cfg.Name})
		if p.Now().Sub(lastPong) > co.cfg.FailAfter {
			co.failover(p)
			lastPong = p.Now()
		}
	}
}

// failover runs one census→elect→fence→promote takeover. Census and fence
// rounds resend until satisfied: the quorum requirement is a safety bar,
// not a liveness bet, and the detector cannot proceed without it.
func (co *Coordinator) failover(p *sim.Proc) {
	co.elections.Inc()
	span := co.tr.NewSpan()
	need := co.cl.Quorum()
	peers := co.cl.PeerStores()

	// Census: at least `need` applied-prefix reports.
	states := make(map[string]replica.StateResp)
	for len(states) < need {
		for _, pn := range peers {
			if _, ok := states[pn]; !ok {
				co.ep.Send(pn, MsgBytes, replica.StateReq{From: co.cfg.Name})
			}
		}
		co.collect(p, func(payload any) {
			if sr, ok := payload.(replica.StateResp); ok {
				states[sr.From] = sr
			}
		}, func() bool { return len(states) >= need })
	}

	// Election: highest (epoch, seq) wins; ties break on name so every
	// replay of the same trial elects the same node.
	var winner string
	var wEpoch int
	var wSeq uint64
	maxEpoch := co.cl.MaxEpoch()
	for _, pn := range peers {
		sr, ok := states[pn]
		if !ok {
			continue
		}
		if sr.Fenced-1 > maxEpoch {
			maxEpoch = sr.Fenced - 1
		}
		e, q := bestPrefix(sr)
		if e > maxEpoch {
			maxEpoch = e
		}
		if winner == "" || e > wEpoch || (e == wEpoch && (q > wSeq || (q == wSeq && pn < winner))) {
			winner, wEpoch, wSeq = pn, e, q
		}
	}
	epoch := maxEpoch + 1
	co.tr.Emit(p.Now().Duration(), obs.EvElect, span, 0, co.tr.Label(winner), int64(wSeq))
	co.s.Tracef("ha: elected %s (epoch %d seq %d), fencing at %d", winner, wEpoch, wSeq, epoch)

	// Fence: the winner must be fenced (it is about to be promoted over
	// the deposed stream) plus a full quorum of the electorate — only peer
	// acks count, since the intersection argument is over the stores the
	// deposed leader could have assembled an ack quorum from. Every store
	// and the deposed primary get the fence regardless, best-effort — the
	// primary may be dead, and if it is merely isolated its acks are
	// unassemblable once a quorum of stores is fenced.
	peerSet := make(map[string]bool, len(peers))
	for _, pn := range peers {
		peerSet[pn] = true
	}
	acks := make(map[string]bool)
	for !acks[winner] || len(acks) < need {
		for _, pn := range co.cl.AllStores() {
			if !acks[pn] {
				co.ep.Send(pn, MsgBytes, replica.FenceMsg{Epoch: epoch, From: co.cfg.Name})
			}
		}
		co.ep.Send(co.cl.LeaderPrimary(), MsgBytes, replica.FenceMsg{Epoch: epoch, From: co.cfg.Name})
		co.collect(p, func(payload any) {
			if fa, ok := payload.(replica.FenceAck); ok && fa.Epoch >= epoch && peerSet[fa.From] {
				acks[fa.From] = true
			}
		}, func() bool { return acks[winner] && len(acks) >= need })
	}
	co.tr.Emit(p.Now().Duration(), obs.EvFence, 0, span, int64(epoch), int64(len(acks)))

	bytes, err := co.cl.Promote(p, winner, epoch)
	if err != nil {
		co.lastErr = fmt.Errorf("ha: promote %s at epoch %d: %w", winner, epoch, err)
		co.s.Tracef("%v", co.lastErr)
		return
	}
	co.promoteB.Add(bytes)
	co.failovers++
	co.tr.Emit(p.Now().Duration(), obs.EvPromote, 0, span, co.tr.Label(winner), bytes)
	co.s.Tracef("ha: promoted %s at epoch %d (%d bytes replayed)", winner, epoch, bytes)
}

// collect polls the coordinator inbox for up to one RoundTimeout, feeding
// every payload to sink, returning early once done() is satisfied.
func (co *Coordinator) collect(p *sim.Proc, sink func(any), done func() bool) {
	deadline := p.Now().Add(co.cfg.RoundTimeout)
	for p.Now() < deadline && !done() {
		if m, ok := co.ep.TryRecv(); ok {
			sink(m.Payload)
			continue
		}
		p.Sleep(time.Millisecond)
	}
}

// FenceNode fences one store at the cluster's current epoch and waits for
// its ack: the rejoin path for a node that was down when the takeover's
// fence broadcast went out, closing the window where a deposed shipper's
// retransmits could still find an unfenced store. It runs on the caller's
// process with its own reply endpoint, so it never races the detector
// loop for the coordinator's inbox.
func (co *Coordinator) FenceNode(p *sim.Proc, store string) {
	epoch := co.cl.MaxEpoch()
	name := co.cfg.Name + ".rejoin"
	ep := co.fab.Endpoint(name)
	for {
		ep.Send(store, MsgBytes, replica.FenceMsg{Epoch: epoch, From: name})
		acked := false
		deadline := p.Now().Add(co.cfg.RoundTimeout)
		for p.Now() < deadline && !acked {
			if m, ok := ep.TryRecv(); ok {
				if fa, ok := m.Payload.(replica.FenceAck); ok && fa.From == store && fa.Epoch >= epoch {
					acked = true
				}
				continue
			}
			p.Sleep(time.Millisecond)
		}
		if acked {
			return
		}
	}
}

// bestPrefix reduces a census response to its best (epoch, applied) pair.
func bestPrefix(sr replica.StateResp) (int, uint64) {
	bestE := 0
	for e := range sr.Applied {
		if e > bestE {
			bestE = e
		}
	}
	return bestE, sr.Applied[bestE]
}
