// Package sim implements a deterministic discrete-event simulation kernel.
//
// Everything in this repository — disk latency, PSU hold-up windows, CPU
// contention, crash injection — runs on virtual time provided by this
// package. Simulated activities are written as ordinary sequential Go code
// inside processes (Proc). Processes are goroutines, but the kernel runs
// exactly one at a time and hands control between them explicitly, so the
// simulation is single-threaded in effect: no locks are needed around
// simulation state, and identical seeds produce identical executions.
//
// The design follows the classic process-interaction style (SimPy, CSIM):
//
//	s := sim.New(42)
//	s.Spawn(dom, "writer", func(p *sim.Proc) {
//	    p.Sleep(5 * time.Millisecond) // virtual time
//	    ev.Fire()
//	})
//	err := s.Run()
//
// Crash injection is first-class: processes belong to a Domain, and killing
// a domain unwinds every process in it at its current blocking point. This
// models "the guest OS crashed" (guest domain dies, hypervisor domain keeps
// running) and "DC power was lost" (all domains die at once).
package sim

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"time"
)

// Time is an instant on the virtual clock, in nanoseconds since the start of
// the simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between two instants.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to a duration since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// resumeKind tells a parked process why it is being resumed.
type resumeKind int

const (
	resumeRun  resumeKind = iota // normal wake-up
	resumeKill                   // the process's domain was killed
)

// killPanic is thrown inside a process goroutine to unwind it when its
// domain is killed. It is recovered by the process wrapper and never escapes.
type killPanic struct{ p *Proc }

// Sim is a discrete-event simulation instance.
//
// A Sim and everything spawned on it must be driven from a single goroutine
// (the one calling Run, RunUntil or Step). Processes themselves may freely
// touch shared simulation state: the kernel guarantees only one process runs
// at a time.
type Sim struct {
	now        Time
	seq        uint64
	dispatched uint64
	events     eventHeap
	timerPool  []*timer // recycled timers; the steady state allocates none
	yield      chan struct{}
	rng        *rand.Rand

	procs   map[int]*Proc
	nextPID int
	running *Proc
	inRun   bool
	fatal   error
	traceFn func(t Time, format string, args ...any)
	nextDom int
	root    *Domain
}

// New creates a simulation with the given random seed. The seed fully
// determines the behaviour of s.Rand(); the kernel itself introduces no
// nondeterminism.
func New(seed int64) *Sim {
	return &Sim{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[int]*Proc),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Dispatched returns the total number of events the kernel has executed.
// The benchmark harness divides it by wall-clock time to report how much
// simulated activity a real second buys.
func (s *Sim) Dispatched() uint64 { return s.dispatched }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// SetTrace installs a trace hook invoked by Tracef and by kernel events
// (spawn, kill). Pass nil to disable.
func (s *Sim) SetTrace(fn func(t Time, format string, args ...any)) { s.traceFn = fn }

// Tracef emits a trace line at the current virtual time if tracing is on.
func (s *Sim) Tracef(format string, args ...any) {
	if s.traceFn != nil {
		s.traceFn(s.now, format, args...)
	}
}

// newTimer takes a timer from the pool (or allocates one) with its time and
// sequence number set and every payload field cleared.
func (s *Sim) newTimer(t Time) *timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	if n := len(s.timerPool); n > 0 {
		tm := s.timerPool[n-1]
		s.timerPool = s.timerPool[:n-1]
		tm.t, tm.seq = t, s.seq
		return tm
	}
	return &timer{t: t, seq: s.seq}
}

// recycle clears a popped timer's payload and returns it to the pool.
func (s *Sim) recycle(tm *timer) {
	tm.fn, tm.p, tm.gen, tm.kind = nil, nil, 0, tkFn
	s.timerPool = append(s.timerPool, tm)
}

// At schedules fn to run at absolute virtual time t (clamped to now).
// fn runs in scheduler context: it must not block, but it may fire events,
// wake processes, and schedule further callbacks.
func (s *Sim) At(t Time, fn func()) {
	tm := s.newTimer(t)
	tm.fn = fn
	s.events.push(tm)
}

// atWake schedules an allocation-free resume of p at t, honoured only if p
// is still parked in wait generation gen when the timer fires. This is the
// kernel's hottest scheduling path: every sleep, event fire, signal
// broadcast and resource grant goes through it.
func (s *Sim) atWake(t Time, p *Proc, gen uint64) {
	tm := s.newTimer(t)
	tm.p, tm.gen, tm.kind = p, gen, tkWake
	s.events.push(tm)
}

// atStart schedules the first handoff to a freshly spawned process.
func (s *Sim) atStart(p *Proc) {
	tm := s.newTimer(s.now)
	tm.p, tm.kind = p, tkStart
	s.events.push(tm)
}

// atKill schedules a parked process's resume with the kill signal.
func (s *Sim) atKill(p *Proc) {
	tm := s.newTimer(s.now)
	tm.p, tm.kind = p, tkKill
	s.events.push(tm)
}

// After schedules fn to run d from now. See At for constraints on fn.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Spawn creates a process in domain dom and schedules it to start at the
// current virtual time. Spawn order determines start order. The returned
// Proc is also the handle other code can use to inspect the process.
//
// If dom is nil the process belongs to a root domain that is never killed.
func (s *Sim) Spawn(dom *Domain, name string, fn func(p *Proc)) *Proc {
	if dom == nil {
		dom = s.rootDomain()
	}
	s.nextPID++
	p := &Proc{
		sim:    s,
		id:     s.nextPID,
		name:   name,
		domain: dom,
		resume: make(chan resumeKind),
		killed: dom.dead, // spawning into a dead domain yields a stillborn proc
	}
	s.procs[p.id] = p
	dom.procs[p.id] = p

	go func() {
		k := <-p.resume
		if k == resumeRun && !p.killed {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(killPanic); !ok {
							s.fatal = fmt.Errorf("sim: proc %q panicked: %v\n%s", p.name, r, debug.Stack())
						}
					}
				}()
				fn(p)
			}()
		}
		p.done = true
		p.parked = false
		delete(s.procs, p.id)
		delete(p.domain.procs, p.id)
		s.yield <- struct{}{}
	}()

	// Start event: hand control to the new process unless it was killed
	// before it ever ran.
	s.atStart(p)
	return p
}

func (s *Sim) rootDomain() *Domain {
	if s.root == nil {
		s.root = &Domain{sim: s, name: "root", procs: make(map[int]*Proc)}
	}
	return s.root
}

// handoff transfers control from the scheduler to process p and waits for it
// to park or finish.
func (s *Sim) handoff(p *Proc, k resumeKind) {
	s.running = p
	p.resume <- k
	<-s.yield
	s.running = nil
}

// Step executes the next pending event. It reports false when no events
// remain.
func (s *Sim) Step() (bool, error) {
	if s.fatal != nil {
		return false, s.fatal
	}
	tm := s.events.pop()
	if tm == nil {
		return false, nil
	}
	if tm.t > s.now {
		s.now = tm.t
	}
	s.dispatched++
	// Dispatch by kind, recycling the timer before the payload runs so the
	// pool is hot for anything the payload schedules.
	switch tm.kind {
	case tkFn:
		fn := tm.fn
		s.recycle(tm)
		fn()
	case tkWake:
		p, gen := tm.p, tm.gen
		s.recycle(tm)
		if p.done || !p.parked || p.waitGen != gen {
			break // stale wake: the wait already completed another way
		}
		if p.killed {
			s.handoff(p, resumeKill)
			break
		}
		s.handoff(p, resumeRun)
	case tkStart:
		p := tm.p
		s.recycle(tm)
		if p.done {
			break
		}
		if p.killed {
			s.handoff(p, resumeKill)
			break
		}
		s.handoff(p, resumeRun)
	case tkKill:
		p := tm.p
		s.recycle(tm)
		if p.done || !p.parked {
			break
		}
		s.handoff(p, resumeKill)
	}
	if s.fatal != nil {
		return false, s.fatal
	}
	return true, nil
}

// Run executes events until none remain. It returns an error if a process
// panicked or if live processes remain blocked with no pending events
// (a simulation deadlock).
func (s *Sim) Run() error {
	return s.run(func() bool { return true })
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Processes blocked at the cutoff remain blocked; call RunUntil again (or
// Run) to continue.
func (s *Sim) RunUntil(t Time) error {
	err := s.run(func() bool {
		next := s.events.peek()
		return next != nil && next.t <= t
	})
	if err == nil && s.now < t {
		s.now = t
	}
	return err
}

// RunFor advances the clock by d. See RunUntil.
func (s *Sim) RunFor(d time.Duration) error { return s.RunUntil(s.now.Add(d)) }

// RunUntilEvent executes events until ev fires. It returns an error if the
// event queue drains first (the event can never fire) or a process fails.
// Unlike RunFor, it does not execute idle ticks past the completion point.
func (s *Sim) RunUntilEvent(ev *Event) error {
	for !ev.Fired() {
		ok, err := s.Step()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("sim: event queue drained before %q fired", ev.name)
		}
	}
	return nil
}

func (s *Sim) run(cont func() bool) error {
	if s.inRun {
		panic("sim: Run called re-entrantly (from inside a process)")
	}
	s.inRun = true
	defer func() { s.inRun = false }()
	for {
		if s.fatal != nil {
			return s.fatal
		}
		if s.events.peek() == nil {
			break
		}
		if !cont() {
			return nil
		}
		if _, err := s.Step(); err != nil {
			return err
		}
	}
	if s.nonDaemonProcs() > 0 {
		return s.deadlockError()
	}
	return nil
}

func (s *Sim) nonDaemonProcs() int {
	n := 0
	for _, p := range s.procs {
		if !p.daemon {
			n++
		}
	}
	return n
}

// deadlockError reports live-but-stuck processes in a stable order.
func (s *Sim) deadlockError() error {
	var stuck []string
	for _, p := range s.procs {
		if p.daemon {
			continue
		}
		stuck = append(stuck, fmt.Sprintf("%s(%d) waiting on %s", p.name, p.id, p.waiting))
	}
	sort.Strings(stuck)
	return &DeadlockError{At: s.now, Procs: stuck}
}

// DeadlockError reports that the event queue drained while processes were
// still blocked.
type DeadlockError struct {
	At    Time
	Procs []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %s: %d blocked procs: %v", e.At, len(e.Procs), e.Procs)
}

// LiveProcs returns the number of processes that have started but not
// finished.
func (s *Sim) LiveProcs() int { return len(s.procs) }

// Running returns the currently executing process, or nil when the
// scheduler itself is running.
func (s *Sim) Running() *Proc { return s.running }

// ---------------------------------------------------------------------------
// Proc
// ---------------------------------------------------------------------------

// Proc is a simulation process: a goroutine interleaved cooperatively with
// all other processes on the virtual clock. All methods must be called from
// the process's own code, except the read-only accessors.
type Proc struct {
	sim     *Sim
	id      int
	name    string
	domain  *Domain
	resume  chan resumeKind
	done    bool
	parked  bool
	killed  bool
	waitGen uint64
	waiting string
	abort   func() // cleanup when killed while parked on a primitive
	daemon  bool
}

// SetDaemon marks the process as background machinery: Run treats a
// simulation whose only remaining blocked processes are daemons as complete
// rather than deadlocked. Daemons should block on signals when idle, not
// poll, or Run will never terminate.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// Name returns the process name given to Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the kernel-assigned process id.
func (p *Proc) ID() int { return p.id }

// Domain returns the domain the process belongs to.
func (p *Proc) Domain() *Domain { return p.domain }

// Sim returns the owning simulation.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Done reports whether the process has finished.
func (p *Proc) Done() bool { return p.done }

// Killed reports whether the process's domain has been killed.
func (p *Proc) Killed() bool { return p.killed }

// checkKilled unwinds the process if its domain has died while it was
// running (e.g. it killed its own domain, or Kill was called from scheduler
// context while the process was the running one).
func (p *Proc) checkKilled() {
	if p.killed {
		panic(killPanic{p})
	}
}

// waiter represents one parked wait of a process. It is a plain value —
// primitives embed or copy it into their queues rather than allocating.
// Stale waiters (from a wait that already completed) are ignored, so a
// single wait may safely be woken by several sources (event fire, timeout,
// kill).
type waiter struct {
	p   *Proc
	gen uint64
}

// newWaiter begins a wait with a human-readable description (shown in
// deadlock reports). Callers should pass precomputed strings, not Sprintf
// results — this is on every blocking path.
func (p *Proc) newWaiter(desc string) waiter {
	p.waitGen++
	p.waiting = desc
	return waiter{p: p, gen: p.waitGen}
}

// wake schedules the process to resume at the current virtual time if the
// waiter is still current. Safe to call multiple times and from scheduler
// context. Allocation-free: the resume is an inlined tkWake timer, not a
// closure.
func (w waiter) wake() {
	s := w.p.sim
	s.atWake(s.now, w.p, w.gen)
}

// park blocks the process until a waiter wakes it. It must only be called by
// the process itself, after registering the wait with a wake source. If the
// process is killed while parked, the registered abort hook runs (so
// primitives can clean their queues) and the process unwinds.
func (p *Proc) park() {
	if p.killed {
		p.runAbort()
		panic(killPanic{p})
	}
	p.parked = true
	p.sim.yield <- struct{}{}
	k := <-p.resume
	p.parked = false
	p.waiting = ""
	if k == resumeKill || p.killed {
		p.runAbort()
		panic(killPanic{p})
	}
	p.abort = nil
}

func (p *Proc) runAbort() {
	if h := p.abort; h != nil {
		p.abort = nil
		h()
	}
}

// Sleep suspends the process for d of virtual time. A non-positive d yields
// the processor, allowing same-time events to run, and returns at the same
// virtual instant.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	// Inlined wait: no waiter value, no closure, no formatted description —
	// sleep is the kernel's hottest blocking call.
	p.waitGen++
	p.waiting = "sleep"
	p.sim.atWake(p.sim.now.Add(d), p, p.waitGen)
	p.park()
}

// Yield lets every other runnable process and same-time event run before
// resuming.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill unwinds this one process at its current blocking point — deferred
// functions run — without touching its domain, which stays live. This models
// stopping a single service (a daemon being shut down) rather than a crash.
// It may be called from scheduler context or from another process; a process
// killing itself unwinds immediately. Killing a finished or already-killed
// process is a no-op.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	s := p.sim
	s.Tracef("proc %s(%d) killed", p.name, p.id)
	if p == s.running {
		panic(killPanic{p})
	}
	// Parked procs resume with the kill signal; spawned-but-unstarted procs
	// are handled by their start event, which observes killed.
	if p.parked {
		s.atKill(p)
	}
}

// ---------------------------------------------------------------------------
// Domain
// ---------------------------------------------------------------------------

// Domain is a crash boundary: a named group of processes that can be killed
// together. Killing a domain unwinds each member process at its current
// blocking point (its deferred functions run), models a machine or VM
// dying. A dead domain rejects new processes.
type Domain struct {
	sim   *Sim
	name  string
	procs map[int]*Proc
	dead  bool
	gen   int
}

// NewDomain creates a live domain.
func (s *Sim) NewDomain(name string) *Domain {
	s.nextDom++
	return &Domain{sim: s, name: name, procs: make(map[int]*Proc), gen: s.nextDom}
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Dead reports whether the domain has been killed.
func (d *Domain) Dead() bool { return d.dead }

// Procs returns the number of live processes in the domain.
func (d *Domain) Procs() int { return len(d.procs) }

// Revive marks a dead domain live again so new processes can be spawned in
// it. Used to model a reboot: the old processes are gone; fresh ones start.
func (d *Domain) Revive() { d.dead = false }

// Kill marks the domain dead and unwinds every process in it. Parked
// processes are resumed with a kill signal in deterministic (id) order; if
// the caller is itself a process in the domain, it is unwound last, when
// Kill panics with the internal kill sentinel (its deferred functions run).
//
// Kill may be called from scheduler context (an At callback) or from a
// process in another domain.
func (d *Domain) Kill() {
	if d.dead {
		return
	}
	d.dead = true
	s := d.sim
	s.Tracef("domain %s killed (%d procs)", d.name, len(d.procs))

	ids := make([]int, 0, len(d.procs))
	for id := range d.procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	self := s.running
	suicide := false
	for _, id := range ids {
		p := d.procs[id]
		if p == nil || p.done {
			continue
		}
		p.killed = true
		if p == self {
			suicide = true
			continue
		}
		// Resume parked procs with the kill signal. Procs that have been
		// spawned but not yet started are handled by their start event.
		if p.parked {
			s.atKill(p)
		}
	}
	if suicide {
		panic(killPanic{self})
	}
}
