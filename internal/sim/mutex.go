package sim

import "fmt"

// Mutex is a FIFO, hand-off mutual-exclusion lock on virtual time. Unlock
// passes ownership directly to the longest-waiting process (no barging), so
// waiters cannot starve. If a waiting process is killed it is removed from
// the queue; if ownership had already been handed to it, ownership passes on.
type Mutex struct {
	s      *Sim
	name   string
	desc   string
	locked bool
	owner  *Proc
	queue  []waiter
}

// NewMutex creates an unlocked mutex.
func (s *Sim) NewMutex(name string) *Mutex {
	return &Mutex{s: s, name: name, desc: "mutex:" + name}
}

// Locked reports whether the mutex is held.
func (m *Mutex) Locked() bool { return m.locked }

// Lock acquires the mutex, blocking p in FIFO order.
func (m *Mutex) Lock(p *Proc) {
	p.checkKilled()
	if !m.locked {
		m.locked = true
		m.owner = p
		return
	}
	if m.owner == p {
		panic(fmt.Sprintf("sim: mutex %q: recursive lock by %s", m.name, p.name))
	}
	w := p.newWaiter(m.desc)
	m.queue = append(m.queue, w)
	p.abort = func() {
		// Killed while waiting: either still queued, or ownership was
		// handed to us while parked — pass it on in that case.
		if m.owner == p {
			m.passOn()
			return
		}
		m.removeWaiter(w)
	}
	p.park()
	// Ownership was assigned by the unlocker before waking us.
}

// TryLock acquires the mutex if it is free, reporting success.
func (m *Mutex) TryLock(p *Proc) bool {
	p.checkKilled()
	if m.locked {
		return false
	}
	m.locked = true
	m.owner = p
	return true
}

// Unlock releases the mutex, handing it to the next waiter if any. It
// panics if p is not the owner.
func (m *Mutex) Unlock(p *Proc) {
	if !m.locked || m.owner != p {
		panic(fmt.Sprintf("sim: mutex %q: unlock by non-owner %s", m.name, p.name))
	}
	m.passOn()
}

// ForceUnlock releases the mutex regardless of owner. It exists for crash
// cleanup paths that reclaim primitives owned by killed processes.
func (m *Mutex) ForceUnlock() {
	if m.locked {
		m.passOn()
	}
}

func (m *Mutex) passOn() {
	for len(m.queue) > 0 {
		next := m.queue[0]
		m.queue = popFront(m.queue)
		if next.p.done || next.p.killed {
			continue
		}
		m.owner = next.p
		next.wake()
		return
	}
	m.locked = false
	m.owner = nil
}

func (m *Mutex) removeWaiter(w waiter) {
	for i, other := range m.queue {
		if other == w {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return
		}
	}
}

// Resource is a FIFO counting semaphore: a pool of capacity units that
// processes acquire and release. Grants are strictly in arrival order (a
// large request at the head blocks smaller ones behind it), which makes
// waiting starvation-free. It models CPUs, disk queue slots, and the
// RapiLog buffer budget.
type Resource struct {
	s        *Sim
	name     string
	desc     string
	capacity int64
	avail    int64
	queue    []resWaiter
}

type resWaiter struct {
	w waiter
	n int64
}

// NewResource creates a resource with the given capacity, all available.
func (s *Sim) NewResource(name string, capacity int64) *Resource {
	if capacity < 0 {
		panic("sim: NewResource: negative capacity")
	}
	return &Resource{s: s, name: name, desc: "resource:" + name, capacity: capacity, avail: capacity}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// Available returns the units currently free.
func (r *Resource) Available() int64 { return r.avail }

// InUse returns the units currently held.
func (r *Resource) InUse() int64 { return r.capacity - r.avail }

// Waiters returns the number of queued acquirers.
func (r *Resource) Waiters() int { return len(r.queue) }

// Acquire takes n units, blocking p in FIFO order until they are available.
// It panics if n exceeds the capacity (the wait could never complete).
func (r *Resource) Acquire(p *Proc, n int64) {
	p.checkKilled()
	if n <= 0 {
		return
	}
	if n > r.capacity {
		panic(fmt.Sprintf("sim: resource %q: acquire %d exceeds capacity %d", r.name, n, r.capacity))
	}
	if len(r.queue) == 0 && r.avail >= n {
		r.avail -= n
		return
	}
	w := p.newWaiter(r.desc)
	r.queue = append(r.queue, resWaiter{w: w, n: n})
	p.abort = func() { r.removeWaiter(w) }
	p.park()
	// Units were debited by the releaser before waking us.
}

// TryAcquire takes n units if immediately available (and no earlier waiter
// is queued), reporting success.
func (r *Resource) TryAcquire(p *Proc, n int64) bool {
	p.checkKilled()
	if n <= 0 {
		return true
	}
	if len(r.queue) == 0 && r.avail >= n {
		r.avail -= n
		return true
	}
	return false
}

// Release returns n units and grants queued acquirers in FIFO order.
// Release may be called from scheduler context or any process.
func (r *Resource) Release(n int64) {
	if n <= 0 {
		return
	}
	r.avail += n
	if r.avail > r.capacity {
		panic(fmt.Sprintf("sim: resource %q: release overflows capacity (%d > %d)", r.name, r.avail, r.capacity))
	}
	r.grant()
}

func (r *Resource) grant() {
	for len(r.queue) > 0 {
		head := r.queue[0]
		if head.w.p.done || head.w.p.killed {
			r.queue = popFront(r.queue)
			continue
		}
		if r.avail < head.n {
			return
		}
		r.avail -= head.n
		r.queue = popFront(r.queue)
		head.w.wake()
	}
}

func (r *Resource) removeWaiter(w waiter) {
	for i, other := range r.queue {
		if other.w == w {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			// Removing a large head request may unblock smaller ones.
			r.grant()
			return
		}
	}
}
