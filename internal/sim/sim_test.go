package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestClockStartsAtZero(t *testing.T) {
	s := New(1)
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New(1)
	var woke Time
	s.Spawn(nil, "sleeper", func(p *Proc) {
		p.Sleep(ms(7))
		woke = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(ms(7)) {
		t.Fatalf("woke at %v, want 7ms", woke)
	}
}

func TestSleepZeroYields(t *testing.T) {
	s := New(1)
	var order []string
	s.Spawn(nil, "a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	s.Spawn(nil, "b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnOrderIsStartOrder(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Spawn(nil, fmt.Sprintf("p%d", i), func(p *Proc) {
			order = append(order, i)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("start order %v not FIFO", order)
		}
	}
}

func TestSameTimeEventsRunFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(Time(ms(3)), func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("event order %v not FIFO", order)
		}
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	s := New(1)
	var ran Time = -1
	s.After(ms(5), func() {
		s.At(Time(ms(1)), func() { ran = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != Time(ms(5)) {
		t.Fatalf("past event ran at %v, want clamp to 5ms", ran)
	}
}

func TestRunUntilStopsAtCutoff(t *testing.T) {
	s := New(1)
	var hits []Time
	for _, d := range []int{1, 2, 3, 4, 5} {
		d := d
		s.After(ms(d), func() { hits = append(hits, s.Now()) })
	}
	if err := s.RunUntil(Time(ms(3))); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("got %d events before cutoff, want 3", len(hits))
	}
	if s.Now() != Time(ms(3)) {
		t.Fatalf("clock = %v, want 3ms", s.Now())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("got %d events after Run, want 5", len(hits))
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	s := New(1)
	if err := s.RunFor(ms(42)); err != nil {
		t.Fatal(err)
	}
	if s.Now() != Time(ms(42)) {
		t.Fatalf("clock = %v, want 42ms", s.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(1)
	ev := s.NewEvent("never")
	s.Spawn(nil, "stuck", func(p *Proc) { ev.Wait(p) })
	err := s.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Procs) != 1 {
		t.Fatalf("stuck procs = %v, want 1", dl.Procs)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	s := New(1)
	s.Spawn(nil, "boom", func(p *Proc) { panic("kaboom") })
	err := s.Run()
	if err == nil {
		t.Fatal("want error from panicking proc")
	}
}

func TestReentrantRunPanics(t *testing.T) {
	s := New(1)
	var recovered any
	s.Spawn(nil, "nested", func(p *Proc) {
		defer func() { recovered = recover() }()
		_ = s.Run()
	})
	// The inner panic is recovered by the proc itself, so outer Run succeeds.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recovered == nil {
		t.Fatal("nested Run did not panic")
	}
}

func TestInterleavingTwoProcs(t *testing.T) {
	s := New(1)
	var trace []string
	s.Spawn(nil, "a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(ms(2))
			trace = append(trace, fmt.Sprintf("a@%v", p.Now().Duration().Milliseconds()))
		}
	})
	s.Spawn(nil, "b", func(p *Proc) {
		for i := 0; i < 2; i++ {
			p.Sleep(ms(3))
			trace = append(trace, fmt.Sprintf("b@%v", p.Now().Duration().Milliseconds()))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// At t=6 both wake; b's wake event was scheduled earlier (at t=3 vs
	// t=4), so FIFO tie-breaking runs b first.
	want := []string{"a@2", "b@3", "a@4", "b@6", "a@6"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	base := Time(ms(10))
	if got := base.Add(ms(5)); got != Time(ms(15)) {
		t.Fatalf("Add = %v", got)
	}
	if got := base.Sub(Time(ms(4))); got != ms(6) {
		t.Fatalf("Sub = %v", got)
	}
	if base.Duration() != ms(10) {
		t.Fatalf("Duration = %v", base.Duration())
	}
}

func TestNegativeSleepIsYield(t *testing.T) {
	s := New(1)
	var at Time
	s.Spawn(nil, "p", func(p *Proc) {
		p.Sleep(-ms(5))
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("negative sleep advanced clock to %v", at)
	}
}

func TestLiveProcsCount(t *testing.T) {
	s := New(1)
	s.Spawn(nil, "p", func(p *Proc) { p.Sleep(ms(1)) })
	if s.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d before run", s.LiveProcs())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after run", s.LiveProcs())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []string {
		s := New(seed)
		var trace []string
		q := NewQueue[int](s, "q", 2)
		for i := 0; i < 4; i++ {
			i := i
			s.Spawn(nil, fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					d := time.Duration(s.Rand().Intn(5)) * time.Millisecond
					p.Sleep(d)
					if err := q.Put(p, i*10+j); err != nil {
						return
					}
				}
			})
		}
		s.Spawn(nil, "cons", func(p *Proc) {
			for k := 0; k < 12; k++ {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				trace = append(trace, fmt.Sprintf("%d@%v", v, p.Now()))
				p.Sleep(ms(1))
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) || len(a) != 12 {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical random traces (suspicious)")
	}
}

func TestTraceHook(t *testing.T) {
	s := New(1)
	var lines []string
	s.SetTrace(func(at Time, format string, args ...any) {
		lines = append(lines, fmt.Sprintf("%v: ", at)+fmt.Sprintf(format, args...))
	})
	s.Spawn(nil, "p", func(p *Proc) {
		p.Sleep(ms(1))
		s.Tracef("hello %d", 42)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Fatalf("trace lines = %v", lines)
	}
}

func TestRunUntilEvent(t *testing.T) {
	s := New(1)
	ev := s.NewEvent("goal")
	var after bool
	s.Spawn(nil, "p", func(p *Proc) {
		p.Sleep(ms(5))
		ev.Fire()
		p.Sleep(ms(100))
		after = true
	})
	if err := s.RunUntilEvent(ev); err != nil {
		t.Fatal(err)
	}
	if s.Now() != Time(ms(5)) {
		t.Fatalf("stopped at %v, want 5ms", s.Now())
	}
	if after {
		t.Fatal("ran past the event")
	}
	// An event that can never fire is an error, not a hang.
	s2 := New(2)
	never := s2.NewEvent("never")
	if err := s2.RunUntilEvent(never); err == nil {
		t.Fatal("no error for unfireable event")
	}
}
