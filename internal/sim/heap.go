package sim

// timer is one scheduled occurrence on the virtual clock: either a
// scheduler callback (fn) or an inlined process resume (p + gen + kind).
// The split exists for allocation discipline: process wake-ups are by far
// the most common event, and representing them as plain fields lets the
// kernel dispatch them without allocating a closure per wake. seq breaks
// ties so that same-time events run in scheduling order (FIFO), which keeps
// the simulation deterministic.
//
// Timers are pooled: Step returns each popped timer to the Sim's freelist,
// so a steady-state simulation schedules millions of events with zero
// allocations.
type timer struct {
	t    Time
	seq  uint64
	fn   func() // tkFn only
	p    *Proc  // tkWake, tkStart, tkKill
	gen  uint64 // tkWake: the wait generation this wake targets
	kind uint8
}

// timer kinds.
const (
	tkFn    uint8 = iota // run fn in scheduler context
	tkWake               // resume p if still parked in wait generation gen
	tkStart              // first handoff to a freshly spawned process
	tkKill               // resume a parked p with the kill signal
)

// eventHeap is a binary min-heap of timers ordered by (t, seq). It is
// hand-rolled rather than wrapping container/heap to avoid interface
// boxing on the hottest path in the kernel.
type eventHeap struct {
	items []*timer
}

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(tm *timer) {
	h.items = append(h.items, tm)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) peek() *timer {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *eventHeap) pop() *timer {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

func (h *eventHeap) len() int { return len(h.items) }
