package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestEventBroadcastWakesAll(t *testing.T) {
	s := New(1)
	ev := s.NewEvent("go")
	var woke []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		s.Spawn(nil, name, func(p *Proc) {
			ev.Wait(p)
			woke = append(woke, p.Name())
		})
	}
	s.After(ms(5), ev.Fire)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke = %v", woke)
	}
}

func TestEventWaitAfterFireReturnsImmediately(t *testing.T) {
	s := New(1)
	ev := s.NewEvent("done")
	ev.Fire()
	var at Time = -1
	s.Spawn(nil, "late", func(p *Proc) {
		ev.Wait(p)
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("late waiter blocked until %v", at)
	}
}

func TestEventDoubleFireIsNoop(t *testing.T) {
	s := New(1)
	ev := s.NewEvent("once")
	ev.Fire()
	ev.Fire()
	if !ev.Fired() {
		t.Fatal("event not fired")
	}
}

func TestEventWaitTimeoutFires(t *testing.T) {
	s := New(1)
	ev := s.NewEvent("soon")
	var got bool
	var at Time
	s.Spawn(nil, "w", func(p *Proc) {
		got = ev.WaitTimeout(p, ms(10))
		at = p.Now()
	})
	s.After(ms(3), ev.Fire)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !got || at != Time(ms(3)) {
		t.Fatalf("got=%v at=%v, want fire at 3ms", got, at)
	}
}

func TestEventWaitTimeoutExpires(t *testing.T) {
	s := New(1)
	ev := s.NewEvent("never")
	var got bool
	var at Time
	s.Spawn(nil, "w", func(p *Proc) {
		got = ev.WaitTimeout(p, ms(10))
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got || at != Time(ms(10)) {
		t.Fatalf("got=%v at=%v, want timeout at 10ms", got, at)
	}
}

func TestEventWaitTimeoutZeroPolls(t *testing.T) {
	s := New(1)
	ev := s.NewEvent("e")
	var got bool
	s.Spawn(nil, "w", func(p *Proc) { got = ev.WaitTimeout(p, 0) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("zero timeout on unfired event reported fired")
	}
}

func TestSignalRepeats(t *testing.T) {
	s := New(1)
	sig := s.NewSignal("tick")
	var count int
	s.Spawn(nil, "w", func(p *Proc) {
		for i := 0; i < 3; i++ {
			sig.Wait(p)
			count++
		}
	})
	s.Spawn(nil, "t", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(ms(1))
			sig.Broadcast()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	s := New(1)
	sig := s.NewSignal("maybe")
	var first, second bool
	s.Spawn(nil, "w", func(p *Proc) {
		first = sig.WaitTimeout(p, ms(5))  // broadcast at 2ms → true
		second = sig.WaitTimeout(p, ms(5)) // nothing → false at 7ms
	})
	s.After(ms(2), sig.Broadcast)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !first || second {
		t.Fatalf("first=%v second=%v, want true,false", first, second)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	s := New(1)
	m := s.NewMutex("m")
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		s.Spawn(nil, fmt.Sprintf("p%d", i), func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(ms(2))
			inside--
			m.Unlock(p)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d", maxInside)
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	s := New(1)
	m := s.NewMutex("m")
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		s.Spawn(nil, fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // stagger arrivals
			m.Lock(p)
			order = append(order, i)
			p.Sleep(ms(1))
			m.Unlock(p)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("acquisition order %v not FIFO", order)
		}
	}
}

func TestMutexTryLock(t *testing.T) {
	s := New(1)
	m := s.NewMutex("m")
	var got1, got2 bool
	s.Spawn(nil, "a", func(p *Proc) {
		got1 = m.TryLock(p)
		p.Sleep(ms(2))
		m.Unlock(p)
	})
	s.Spawn(nil, "b", func(p *Proc) {
		p.Sleep(ms(1))
		got2 = m.TryLock(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !got1 || got2 {
		t.Fatalf("got1=%v got2=%v, want true,false", got1, got2)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	s := New(1)
	m := s.NewMutex("m")
	s.Spawn(nil, "a", func(p *Proc) {
		m.Lock(p)
		p.Sleep(ms(5))
		m.Unlock(p)
	})
	s.Spawn(nil, "b", func(p *Proc) {
		p.Sleep(ms(1))
		m.Unlock(p) // not the owner → proc panic → Run error
	})
	if err := s.Run(); err == nil {
		t.Fatal("want error from non-owner unlock")
	}
}

func TestResourceBlocksAtCapacity(t *testing.T) {
	s := New(1)
	r := s.NewResource("cpu", 2)
	var concurrent, peak int64
	for i := 0; i < 6; i++ {
		s.Spawn(nil, fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Acquire(p, 1)
			concurrent++
			if concurrent > peak {
				peak = concurrent
			}
			p.Sleep(ms(3))
			concurrent--
			r.Release(1)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
}

func TestResourceFIFONoStarvation(t *testing.T) {
	s := New(1)
	r := s.NewResource("r", 4)
	var order []string
	// A large request arrives first and must not be starved by small ones.
	s.Spawn(nil, "hog", func(p *Proc) {
		p.Sleep(ms(1))
		r.Acquire(p, 4)
		order = append(order, "hog")
		r.Release(4)
	})
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(nil, fmt.Sprintf("small%d", i), func(p *Proc) {
			r.Acquire(p, 1) // grabbed at t=0
			p.Sleep(ms(2))
			r.Release(1)
			p.Sleep(ms(1))
			r.Acquire(p, 1) // queued behind hog
			order = append(order, fmt.Sprintf("small%d", i))
			r.Release(1)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) == 0 || order[0] != "hog" {
		t.Fatalf("order = %v: large waiter starved", order)
	}
}

func TestResourceAcquireOverCapacityPanics(t *testing.T) {
	s := New(1)
	r := s.NewResource("r", 1)
	s.Spawn(nil, "p", func(p *Proc) { r.Acquire(p, 2) })
	if err := s.Run(); err == nil {
		t.Fatal("want error for over-capacity acquire")
	}
}

func TestResourceTryAcquire(t *testing.T) {
	s := New(1)
	r := s.NewResource("r", 1)
	var a, b bool
	s.Spawn(nil, "p", func(p *Proc) {
		a = r.TryAcquire(p, 1)
		b = r.TryAcquire(p, 1)
		r.Release(1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !a || b {
		t.Fatalf("a=%v b=%v, want true,false", a, b)
	}
}

func TestResourceAccounting(t *testing.T) {
	s := New(1)
	r := s.NewResource("r", 10)
	s.Spawn(nil, "p", func(p *Proc) {
		r.Acquire(p, 7)
		if r.Available() != 3 || r.InUse() != 7 {
			t.Errorf("avail=%d inuse=%d", r.Available(), r.InUse())
		}
		r.Release(7)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Available() != 10 {
		t.Fatalf("avail=%d after release", r.Available())
	}
}

func TestQueueFIFO(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, "q", 4)
	var got []int
	s.Spawn(nil, "prod", func(p *Proc) {
		for i := 0; i < 8; i++ {
			if err := q.Put(p, i); err != nil {
				t.Errorf("put: %v", err)
			}
		}
	})
	s.Spawn(nil, "cons", func(p *Proc) {
		for i := 0; i < 8; i++ {
			v, ok := q.Get(p)
			if !ok {
				t.Error("queue closed early")
			}
			got = append(got, v)
			p.Sleep(ms(1))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..7 in order", got)
		}
	}
}

func TestQueueBlocksWhenFull(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, "q", 1)
	var putDone Time
	s.Spawn(nil, "prod", func(p *Proc) {
		_ = q.Put(p, 1)
		_ = q.Put(p, 2) // blocks until consumer takes item 1 at 5ms
		putDone = p.Now()
	})
	s.Spawn(nil, "cons", func(p *Proc) {
		p.Sleep(ms(5))
		q.Get(p)
		p.Sleep(ms(5))
		q.Get(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if putDone != Time(ms(5)) {
		t.Fatalf("second put completed at %v, want 5ms", putDone)
	}
}

func TestQueueRendezvous(t *testing.T) {
	s := New(1)
	q := NewQueue[string](s, "q", 0)
	var at Time
	var got string
	s.Spawn(nil, "prod", func(p *Proc) {
		_ = q.Put(p, "hello") // blocks until getter arrives
		at = p.Now()
	})
	s.Spawn(nil, "cons", func(p *Proc) {
		p.Sleep(ms(3))
		got, _ = q.Get(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
	if at != Time(ms(3)) {
		t.Fatalf("put completed at %v, want rendezvous at 3ms", at)
	}
}

func TestQueueClose(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, "q", 2)
	var drained []int
	var lastOK bool
	var putErr error
	s.Spawn(nil, "prod", func(p *Proc) {
		_ = q.Put(p, 1)
		_ = q.Put(p, 2)
		q.Close()
		putErr = q.Put(p, 3)
	})
	s.Spawn(nil, "cons", func(p *Proc) {
		p.Sleep(ms(1))
		for {
			v, ok := q.Get(p)
			if !ok {
				lastOK = ok
				return
			}
			drained = append(drained, v)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(drained) != 2 || lastOK {
		t.Fatalf("drained=%v lastOK=%v", drained, lastOK)
	}
	if !errors.Is(putErr, ErrClosed) {
		t.Fatalf("put after close: %v", putErr)
	}
}

func TestQueueCloseWakesBlockedPutter(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, "q", 0)
	var putErr error
	s.Spawn(nil, "prod", func(p *Proc) { putErr = q.Put(p, 1) })
	s.After(ms(2), q.Close)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(putErr, ErrClosed) {
		t.Fatalf("blocked put after close: %v", putErr)
	}
}

func TestQueueTryOps(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, "q", 1)
	s.Spawn(nil, "p", func(p *Proc) {
		if _, ok := q.TryGet(); ok {
			t.Error("TryGet on empty succeeded")
		}
		ok, err := q.TryPut(1)
		if !ok || err != nil {
			t.Errorf("TryPut: ok=%v err=%v", ok, err)
		}
		ok, _ = q.TryPut(2)
		if ok {
			t.Error("TryPut on full succeeded")
		}
		v, ok := q.TryGet()
		if !ok || v != 1 {
			t.Errorf("TryGet: %v %v", v, ok)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
