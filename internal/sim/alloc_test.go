//go:build !race

// Allocation-regression pins for the kernel's hot paths. AllocsPerRun
// counts every malloc in the process, and the race detector changes
// allocation behaviour, so these only run without -race.

package sim

import (
	"testing"
	"time"
)

// TestSleepWakeZeroAlloc pins the kernel's hottest cycle — schedule a
// timer, park, wake, dispatch — at zero allocations per event in steady
// state (pooled timers, value waiters, no closures, no formatted wait
// descriptions).
func TestSleepWakeZeroAlloc(t *testing.T) {
	s := New(1)
	p := s.Spawn(nil, "sleeper", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	p.SetDaemon(true)
	// Warm the timer pool and the heap's backing array.
	if err := s.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.RunFor(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("sleep/wake steady state allocates %.1f per RunFor(1ms) (~1000 events), want 0", allocs)
	}
}

// TestSignalBroadcastZeroAlloc pins the signal wait/broadcast round trip:
// a waiter is a value appended into a reused backing array, and the wake
// is an inlined pooled timer.
func TestSignalBroadcastZeroAlloc(t *testing.T) {
	s := New(1)
	sig := s.NewSignal("tick")
	w := s.Spawn(nil, "waiter", func(p *Proc) {
		for {
			sig.Wait(p)
		}
	})
	w.SetDaemon(true)
	kick := func() {
		s.After(time.Microsecond, sig.Broadcast)
		if err := s.RunFor(10 * time.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	kick() // warm pools and slice capacities
	// s.After allocates its fn closure context once per kick; the wait,
	// broadcast, park and wake themselves must add nothing.
	allocs := testing.AllocsPerRun(100, kick)
	if allocs > 1 {
		t.Fatalf("signal wait/broadcast allocates %.1f per cycle, want <= 1 (the After closure)", allocs)
	}
}

// TestQueueHandoffAllocBound pins the queue's blocking rendezvous: getter
// and putter bookkeeping is pooled per queue with prebuilt abort hooks.
func TestQueueHandoffAllocBound(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, "ring", 0)
	c := s.Spawn(nil, "consumer", func(p *Proc) {
		for {
			q.Get(p)
		}
	})
	c.SetDaemon(true)
	prod := s.Spawn(nil, "producer", func(p *Proc) {
		for i := 0; ; i++ {
			if err := q.Put(p, i); err != nil {
				return
			}
			p.Sleep(time.Microsecond)
		}
	})
	prod.SetDaemon(true)
	if err := s.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.RunFor(100 * time.Microsecond); err != nil {
			t.Fatal(err)
		}
	})
	// ~100 handoffs per run; anything beyond stray slice growth is a
	// regression against the pooled steady state.
	if allocs > 5 {
		t.Fatalf("queue handoff steady state allocates %.1f per 100 handoffs, want <= 5", allocs)
	}
}
