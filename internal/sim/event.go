package sim

import "time"

// Event is a one-shot broadcast condition: processes wait until someone
// fires it. Waiting on an already-fired event returns immediately. Events
// are the basic completion signal used throughout the simulation (I/O done,
// power restored, drain finished).
type Event struct {
	s           *Sim
	name        string
	descWait    string
	descTimeout string
	fired       bool
	waiters     []waiter
}

// NewEvent creates an unfired event.
func (s *Sim) NewEvent(name string) *Event {
	return &Event{
		s:           s,
		name:        name,
		descWait:    "event:" + name,
		descTimeout: "event:" + name + "(timeout)",
	}
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Fire fires the event, waking all waiters. Firing twice is a no-op.
// Fire may be called from scheduler context or from any process.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	ws := e.waiters
	e.waiters = nil
	for _, w := range ws {
		w.wake()
	}
}

// Wait blocks p until the event fires.
func (e *Event) Wait(p *Proc) {
	if e.fired {
		p.checkKilled()
		return
	}
	w := p.newWaiter(e.descWait)
	e.waiters = append(e.waiters, w)
	// No abort hook needed: stale waiters are skipped at wake time.
	p.park()
}

// WaitTimeout blocks p until the event fires or d elapses. It reports
// whether the event had fired by the time p resumed. If the event fires at
// the same instant the timeout expires, whichever was scheduled first wins
// the wake-up, but the return value still reflects the fired state — so a
// same-instant fire reports true.
func (e *Event) WaitTimeout(p *Proc, d time.Duration) bool {
	if e.fired {
		p.checkKilled()
		return true
	}
	if d <= 0 {
		p.checkKilled()
		return false
	}
	w := p.newWaiter(e.descTimeout)
	e.waiters = append(e.waiters, w)
	p.sim.atWake(p.sim.now.Add(d), p, w.gen)
	p.park()
	return e.fired
}

// Signal is a repeating broadcast condition (a monitor condition variable
// with broadcast-only semantics): each Broadcast wakes every process
// currently waiting; future waiters block until the next Broadcast.
type Signal struct {
	s           *Sim
	name        string
	descWait    string
	descTimeout string
	waiters     []waiter
}

// NewSignal creates a signal.
func (s *Sim) NewSignal(name string) *Signal {
	return &Signal{
		s:           s,
		name:        name,
		descWait:    "signal:" + name,
		descTimeout: "signal:" + name + "(timeout)",
	}
}

// Broadcast wakes all current waiters.
func (g *Signal) Broadcast() {
	ws := g.waiters
	// Reuse the backing array: wake only schedules timers, so no waiter can
	// be appended while we iterate.
	g.waiters = g.waiters[:0]
	for _, w := range ws {
		w.wake()
	}
}

// Wait blocks p until the next Broadcast.
func (g *Signal) Wait(p *Proc) {
	w := p.newWaiter(g.descWait)
	g.waiters = append(g.waiters, w)
	p.park()
}

// WaitTimeout blocks p until the next Broadcast or until d elapses,
// reporting whether a Broadcast woke it.
func (g *Signal) WaitTimeout(p *Proc, d time.Duration) bool {
	if d <= 0 {
		p.checkKilled()
		return false
	}
	w := p.newWaiter(g.descTimeout)
	g.waiters = append(g.waiters, w)
	// The broadcast and the timer wake the same waiter; distinguish by
	// draining: if we are still registered at resume time the broadcast did
	// not happen.
	p.sim.atWake(p.sim.now.Add(d), p, w.gen)
	p.park()
	for _, other := range g.waiters {
		if other == w {
			g.remove(w)
			return false
		}
	}
	return true
}

func (g *Signal) remove(w waiter) {
	for i, other := range g.waiters {
		if other == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}
