package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestKillUnwindsParkedProcAndRunsDefers(t *testing.T) {
	s := New(1)
	guest := s.NewDomain("guest")
	var cleaned bool
	var after bool
	s.Spawn(guest, "victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(time.Hour)
		after = true
	})
	s.After(ms(5), guest.Kill)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
	if after {
		t.Fatal("proc continued past kill point")
	}
	if !guest.Dead() {
		t.Fatal("domain not dead")
	}
}

func TestKillSparesOtherDomains(t *testing.T) {
	s := New(1)
	guest := s.NewDomain("guest")
	hv := s.NewDomain("hv")
	var hvDone bool
	s.Spawn(guest, "g", func(p *Proc) { p.Sleep(time.Hour) })
	s.Spawn(hv, "h", func(p *Proc) {
		p.Sleep(ms(20))
		hvDone = true
	})
	s.After(ms(5), guest.Kill)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !hvDone {
		t.Fatal("hypervisor proc did not survive guest kill")
	}
}

func TestKillSelfDomainUnwindsCaller(t *testing.T) {
	s := New(1)
	guest := s.NewDomain("guest")
	var reached bool
	var cleaned bool
	s.Spawn(guest, "suicidal", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(ms(1))
		guest.Kill()
		reached = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("caller survived killing its own domain")
	}
	if !cleaned {
		t.Fatal("caller defers did not run")
	}
}

func TestKillBeforeStartPreventsRun(t *testing.T) {
	s := New(1)
	guest := s.NewDomain("guest")
	var ran bool
	s.Spawn(guest, "p", func(p *Proc) { ran = true })
	guest.Kill() // before the start event executes
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("killed-before-start proc still ran")
	}
}

func TestKillIsIdempotent(t *testing.T) {
	s := New(1)
	guest := s.NewDomain("guest")
	s.Spawn(guest, "p", func(p *Proc) { p.Sleep(time.Hour) })
	s.After(ms(1), func() {
		guest.Kill()
		guest.Kill()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReviveAllowsRespawn(t *testing.T) {
	s := New(1)
	guest := s.NewDomain("guest")
	s.Spawn(guest, "old", func(p *Proc) { p.Sleep(time.Hour) })
	var rebooted bool
	s.After(ms(1), guest.Kill)
	s.After(ms(2), func() {
		guest.Revive()
		s.Spawn(guest, "new", func(p *Proc) { rebooted = true })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !rebooted {
		t.Fatal("respawned proc did not run")
	}
}

func TestKillReleasesMutexViaAbortHook(t *testing.T) {
	s := New(1)
	guest := s.NewDomain("guest")
	m := s.NewMutex("shared")
	var survivorGotLock bool
	// Guest proc queues for the mutex, then is killed while waiting.
	s.Spawn(nil, "holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(ms(10))
		m.Unlock(p)
	})
	s.Spawn(guest, "doomed", func(p *Proc) {
		p.Sleep(ms(1))
		m.Lock(p) // queued behind holder; killed at 5ms
		m.Unlock(p)
	})
	s.Spawn(nil, "survivor", func(p *Proc) {
		p.Sleep(ms(2))
		m.Lock(p) // queued behind doomed
		survivorGotLock = true
		m.Unlock(p)
	})
	s.After(ms(5), guest.Kill)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !survivorGotLock {
		t.Fatal("survivor never acquired mutex after queued waiter was killed")
	}
}

func TestKillOwnerWithHandedOffMutexPassesOn(t *testing.T) {
	s := New(1)
	guest := s.NewDomain("guest")
	m := s.NewMutex("shared")
	var survivorGotLock bool
	s.Spawn(nil, "holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(ms(5))
		m.Unlock(p) // hands ownership to doomed, which is killed at same instant
	})
	s.Spawn(guest, "doomed", func(p *Proc) {
		p.Sleep(ms(1))
		m.Lock(p)
		m.Unlock(p)
	})
	s.Spawn(nil, "survivor", func(p *Proc) {
		p.Sleep(ms(2))
		m.Lock(p)
		survivorGotLock = true
		m.Unlock(p)
	})
	// The watcher's wake event is scheduled after the holder's (both at t=0,
	// FIFO by seq), so at t=5ms the unlock's hand-off to doomed happens
	// first, then the kill — exercising the "ownership already handed to a
	// killed, not-yet-resumed waiter" path.
	s.Spawn(nil, "watcher", func(p *Proc) {
		p.Sleep(ms(5))
		guest.Kill()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !survivorGotLock {
		t.Fatal("mutex lost when its handed-off owner was killed")
	}
}

func TestKillRemovesResourceWaiter(t *testing.T) {
	s := New(1)
	guest := s.NewDomain("guest")
	r := s.NewResource("r", 2)
	var survivorRan bool
	s.Spawn(nil, "holder", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(ms(10))
		r.Release(2)
	})
	s.Spawn(guest, "doomed", func(p *Proc) {
		p.Sleep(ms(1))
		r.Acquire(p, 2)
		r.Release(2)
	})
	s.Spawn(nil, "survivor", func(p *Proc) {
		p.Sleep(ms(2))
		r.Acquire(p, 1)
		survivorRan = true
		r.Release(1)
	})
	s.After(ms(5), guest.Kill)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !survivorRan {
		t.Fatal("survivor starved after queued resource waiter was killed")
	}
}

func TestKillQueueWaiters(t *testing.T) {
	s := New(1)
	guest := s.NewDomain("guest")
	q := NewQueue[int](s, "q", 0)
	var got int
	s.Spawn(guest, "doomedGetter", func(p *Proc) {
		q.Get(p) // killed while waiting
	})
	s.Spawn(nil, "putter", func(p *Proc) {
		p.Sleep(ms(10))
		_ = q.Put(p, 42)
	})
	s.Spawn(nil, "getter", func(p *Proc) {
		p.Sleep(ms(6))
		got, _ = q.Get(p)
	})
	s.After(ms(5), guest.Kill)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("surviving getter got %d, want 42 (killed getter stole delivery?)", got)
	}
}

func TestSpawnIntoDeadDomainDoesNotRun(t *testing.T) {
	s := New(1)
	guest := s.NewDomain("guest")
	guest.Kill()
	var ran bool
	s.Spawn(guest, "zombie", func(p *Proc) { ran = true })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("proc spawned into dead domain ran")
	}
}

// quick-check: random kill times never corrupt the kernel — the simulation
// always terminates cleanly and hypervisor-domain work always completes.
func TestKillAtRandomTimesProperty(t *testing.T) {
	prop := func(seed int64, killAtMicros uint16) bool {
		s := New(seed)
		guest := s.NewDomain("guest")
		hv := s.NewDomain("hv")
		q := NewQueue[int](s, "work", 4)
		hvDone := false

		for i := 0; i < 3; i++ {
			s.Spawn(guest, fmt.Sprintf("g%d", i), func(p *Proc) {
				for {
					d := time.Duration(s.Rand().Intn(100)) * time.Microsecond
					p.Sleep(d)
					if err := q.Put(p, 1); err != nil {
						return
					}
				}
			})
		}
		s.Spawn(hv, "drain", func(p *Proc) {
			deadline := Time(10 * time.Millisecond)
			for p.Now() < deadline {
				if _, ok := q.TryGet(); !ok {
					p.Sleep(50 * time.Microsecond)
				}
			}
			hvDone = true
		})
		s.After(time.Duration(killAtMicros)*time.Microsecond, guest.Kill)
		if err := s.Run(); err != nil {
			t.Logf("seed=%d killAt=%dus: %v", seed, killAtMicros, err)
			return false
		}
		return hvDone
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestProcKillUnwindsOneProc: Proc.Kill stops a single process — deferred
// functions run, the domain stays live, siblings keep running.
func TestProcKillUnwindsOneProc(t *testing.T) {
	s := New(1)
	dom := s.NewDomain("hv")
	var cleaned, after, siblingDone bool
	victim := s.Spawn(dom, "victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(time.Hour)
		after = true
	})
	s.Spawn(dom, "sibling", func(p *Proc) {
		p.Sleep(ms(20))
		siblingDone = true
	})
	s.After(ms(5), victim.Kill)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run on Proc.Kill")
	}
	if after {
		t.Fatal("proc continued past kill point")
	}
	if !siblingDone {
		t.Fatal("sibling in the same domain did not survive")
	}
	if dom.Dead() {
		t.Fatal("Proc.Kill killed the domain")
	}
}

// TestProcKillSelf: a process killing itself unwinds at the call.
func TestProcKillSelf(t *testing.T) {
	s := New(1)
	var cleaned, after bool
	s.Spawn(nil, "suicidal", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Kill()
		after = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !cleaned || after {
		t.Fatalf("cleaned=%v after=%v, want unwound at the Kill call", cleaned, after)
	}
}

// TestProcKillIdempotentAndAfterDone: killing a finished or already-killed
// proc is a no-op.
func TestProcKillIdempotentAndAfterDone(t *testing.T) {
	s := New(1)
	quick := s.Spawn(nil, "quick", func(p *Proc) {})
	slow := s.Spawn(nil, "slow", func(p *Proc) { p.Sleep(time.Hour) })
	s.After(ms(5), func() {
		quick.Kill() // already done
		slow.Kill()
		slow.Kill() // already killed
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !slow.Done() {
		t.Fatal("killed proc not done")
	}
}
