package sim

import (
	"testing"
	"time"
)

// Kernel micro-benchmarks: the cost of the primitives everything else is
// built on. These bound how much simulated activity a wall-clock second
// buys.

func BenchmarkTimerDispatch(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkProcSleepWake(b *testing.B) {
	s := New(1)
	n := 0
	s.Spawn(nil, "sleeper", func(p *Proc) {
		for ; n < b.N; n++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("%d/%d", n, b.N)
	}
}

func BenchmarkQueueHandoff(b *testing.B) {
	s := New(1)
	q := NewQueue[int](s, "q", 1)
	s.Spawn(nil, "prod", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if err := q.Put(p, i); err != nil {
				return
			}
		}
		q.Close()
	})
	got := 0
	s.Spawn(nil, "cons", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
			got++
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	if got != b.N {
		b.Fatalf("%d/%d", got, b.N)
	}
}

func BenchmarkMutexHandoff(b *testing.B) {
	s := New(1)
	m := s.NewMutex("m")
	for w := 0; w < 2; w++ {
		iters := b.N / 2
		s.Spawn(nil, "w", func(p *Proc) {
			for i := 0; i < iters; i++ {
				m.Lock(p)
				p.Yield()
				m.Unlock(p)
			}
		})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSpawnRun(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Spawn(nil, "p", func(p *Proc) {})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
