package sim

import "errors"

// ErrClosed is returned by Queue.Put after Close.
var ErrClosed = errors.New("sim: queue closed")

// popFront removes the first element by shifting the rest down one slot.
// Reslicing with s[1:] instead would abandon the backing array's front and
// degenerate into one reallocation per cycle once capacity runs out; the
// shift keeps the array stable, and these queues are short.
func popFront[T any](s []T) []T {
	copy(s, s[1:])
	return s[:len(s)-1]
}

// Queue is a bounded FIFO channel on virtual time: Put blocks while the
// queue is full, Get blocks while it is empty. Hand-off is direct (a Put
// into a queue with waiting getters delivers to the longest-waiting getter),
// so ordering is strict FIFO on both sides. A capacity of zero gives
// rendezvous semantics. Queues model I/O request rings, drain work lists,
// and client/server request channels.
//
// Blocked-side bookkeeping (qGetter/qPutter) is pooled per queue, and each
// pooled object carries a prebuilt abort hook, so the steady-state blocking
// paths allocate nothing.
type Queue[T any] struct {
	s       *Sim
	name    string
	descGet string
	descPut string
	cap     int
	items   []T
	getters []*qGetter[T]
	putters []*qPutter[T]
	closed  bool

	getterPool []*qGetter[T]
	putterPool []*qPutter[T]
}

type qGetter[T any] struct {
	w         waiter
	v         T
	ok        bool
	delivered bool
	abort     func() // prebuilt: dequeue + free this getter on kill
}

type qPutter[T any] struct {
	w        waiter
	v        T
	accepted bool
	closed   bool
	abort    func() // prebuilt: dequeue + free this putter on kill
}

// NewQueue creates a queue with the given capacity (>= 0).
func NewQueue[T any](s *Sim, name string, capacity int) *Queue[T] {
	if capacity < 0 {
		panic("sim: NewQueue: negative capacity")
	}
	return &Queue[T]{
		s:       s,
		name:    name,
		descGet: "queue:" + name + "(get)",
		descPut: "queue:" + name + "(put)",
		cap:     capacity,
	}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// newGetter takes a getter from the pool with its waiter registered.
func (q *Queue[T]) newGetter(p *Proc) *qGetter[T] {
	var g *qGetter[T]
	if n := len(q.getterPool); n > 0 {
		g = q.getterPool[n-1]
		q.getterPool = q.getterPool[:n-1]
	} else {
		g = &qGetter[T]{}
		g.abort = func() {
			q.removeGetter(g)
			q.freeGetter(g)
		}
	}
	g.w = p.newWaiter(q.descGet)
	return g
}

// freeGetter clears a getter (including its payload, so the queue does not
// retain references) and returns it to the pool.
func (q *Queue[T]) freeGetter(g *qGetter[T]) {
	var zero T
	g.w, g.v, g.ok, g.delivered = waiter{}, zero, false, false
	q.getterPool = append(q.getterPool, g)
}

func (q *Queue[T]) newPutter(p *Proc, v T) *qPutter[T] {
	var pu *qPutter[T]
	if n := len(q.putterPool); n > 0 {
		pu = q.putterPool[n-1]
		q.putterPool = q.putterPool[:n-1]
	} else {
		pu = &qPutter[T]{}
		pu.abort = func() {
			q.removePutter(pu)
			q.freePutter(pu)
		}
	}
	pu.w = p.newWaiter(q.descPut)
	pu.v = v
	return pu
}

func (q *Queue[T]) freePutter(pu *qPutter[T]) {
	var zero T
	pu.w, pu.v, pu.accepted, pu.closed = waiter{}, zero, false, false
	q.putterPool = append(q.putterPool, pu)
}

// Put appends v, blocking p while the queue is full. It returns ErrClosed if
// the queue is (or becomes, while blocked) closed.
func (q *Queue[T]) Put(p *Proc, v T) error {
	p.checkKilled()
	if q.closed {
		return ErrClosed
	}
	if g := q.nextGetter(); g != nil {
		g.v, g.ok, g.delivered = v, true, true
		g.w.wake()
		return nil
	}
	if len(q.items) < q.cap {
		q.items = append(q.items, v)
		return nil
	}
	pu := q.newPutter(p, v)
	q.putters = append(q.putters, pu)
	p.abort = pu.abort
	p.park()
	closed := pu.closed
	q.freePutter(pu)
	if closed {
		return ErrClosed
	}
	return nil
}

// TryPut appends v without blocking, reporting success. It returns false
// when the queue is full (or has no waiting getter, for capacity zero) and
// ErrClosed after Close.
func (q *Queue[T]) TryPut(v T) (bool, error) {
	if q.closed {
		return false, ErrClosed
	}
	if g := q.nextGetter(); g != nil {
		g.v, g.ok, g.delivered = v, true, true
		g.w.wake()
		return true, nil
	}
	if len(q.items) < q.cap {
		q.items = append(q.items, v)
		return true, nil
	}
	return false, nil
}

// Get removes and returns the head item, blocking p while the queue is
// empty. ok is false if the queue was closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	p.checkKilled()
	if len(q.items) > 0 {
		v = q.items[0]
		q.items = popFront(q.items)
		q.refillFromPutter()
		return v, true
	}
	if pu := q.nextPutter(); pu != nil { // rendezvous (cap == 0)
		v = pu.v
		pu.accepted = true
		pu.w.wake()
		return v, true
	}
	if q.closed {
		return v, false
	}
	g := q.newGetter(p)
	q.getters = append(q.getters, g)
	p.abort = g.abort
	p.park()
	v, ok = g.v, g.ok
	q.freeGetter(g)
	return v, ok
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) > 0 {
		v = q.items[0]
		q.items = popFront(q.items)
		q.refillFromPutter()
		return v, true
	}
	if pu := q.nextPutter(); pu != nil {
		v = pu.v
		pu.accepted = true
		pu.w.wake()
		return v, true
	}
	return v, false
}

// Close marks the queue closed: blocked and future Puts fail with ErrClosed;
// Gets drain remaining items and then report ok=false.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, g := range q.getters {
		if !g.delivered {
			g.ok = false
			g.delivered = true
			g.w.wake()
		}
	}
	q.getters = nil
	for _, pu := range q.putters {
		pu.closed = true
		pu.w.wake()
	}
	q.putters = nil
}

// refillFromPutter moves the longest-waiting putter's item into the space
// just freed in the buffer.
func (q *Queue[T]) refillFromPutter() {
	if pu := q.nextPutter(); pu != nil {
		q.items = append(q.items, pu.v)
		pu.accepted = true
		pu.w.wake()
	}
}

func (q *Queue[T]) nextGetter() *qGetter[T] {
	for len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = popFront(q.getters)
		if g.w.p.done || g.w.p.killed || g.delivered {
			// Killed-while-queued getters are freed by their abort hook.
			continue
		}
		return g
	}
	return nil
}

func (q *Queue[T]) nextPutter() *qPutter[T] {
	for len(q.putters) > 0 {
		pu := q.putters[0]
		if pu.w.p.done || pu.w.p.killed || pu.accepted {
			q.putters = popFront(q.putters)
			continue
		}
		q.putters = popFront(q.putters)
		return pu
	}
	return nil
}

func (q *Queue[T]) removeGetter(g *qGetter[T]) {
	for i, other := range q.getters {
		if other == g {
			q.getters = append(q.getters[:i], q.getters[i+1:]...)
			return
		}
	}
}

func (q *Queue[T]) removePutter(pu *qPutter[T]) {
	for i, other := range q.putters {
		if other == pu {
			q.putters = append(q.putters[:i], q.putters[i+1:]...)
			return
		}
	}
}
