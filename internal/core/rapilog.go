// Package core implements RapiLog itself: a log device, interposed by the
// dependable hypervisor, that makes synchronous log writes asynchronous
// without giving up durability.
//
// The contract, exactly as in the paper:
//
//  1. A write to the log device is acknowledged as soon as the data is
//     copied into hypervisor memory — microseconds, not a disk rotation.
//  2. Barriers (flushes) on the log device are no-ops: acknowledged data is
//     already "as good as durable".
//  3. A background drain streams buffered writes to the physical log
//     partition, in order, with the volatile disk cache bypassed.
//  4. If the guest OS or the DBMS crashes, the hypervisor — which is
//     formally verified and therefore does not crash with it — keeps
//     draining. Nothing acknowledged is lost.
//  5. If mains power fails, the power-fail interrupt triggers an emergency
//     dump: everything still buffered is written in one sequential burst to
//     a reserved dump zone, inside the PSU's hold-up window. On the next
//     boot, Recover replays the dump into the log partition before the
//     DBMS runs its own recovery.
//
// The safety argument is quantitative: the buffer is bounded by
// SafeBufferSize — what can provably be dumped within the guaranteed
// hold-up budget — and writers are throttled when the bound is reached.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/disk"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
)

// Errors returned by the RapiLog device.
var (
	ErrTooLarge  = errors.New("rapilog: write exceeds the buffer bound")
	ErrBadDump   = errors.New("rapilog: dump zone contents invalid")
	ErrZoneSmall = errors.New("rapilog: dump zone smaller than the buffer bound")
)

// errHalted distinguishes "the machine is dying" from media faults inside
// the drain machinery: it is never retried and never degrades the device —
// the emergency dump owns whatever remains.
var errHalted = errors.New("rapilog: halted by power failure")

// State is the Logger's service mode.
type State int

// Logger states.
const (
	// StateNormal: writes are buffered and acknowledged at copy speed.
	StateNormal State = iota
	// StateDegraded: the drain's retry budget ran out. Writes pass through
	// to the backing device synchronously (FUA) — durability is preserved
	// at the old latency instead of silently lost. Already-acknowledged
	// entries stay buffered; a probe keeps re-trying them and the device
	// returns to StateNormal once they land.
	StateDegraded
	// StateHalted: the power-fail interrupt fired; the device has stopped
	// acknowledging and the dump zone owns the buffer.
	StateHalted
)

func (s State) String() string {
	switch s {
	case StateNormal:
		return "normal"
	case StateDegraded:
		return "degraded"
	case StateHalted:
		return "halted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config parameterises a Logger.
type Config struct {
	Name string
	// MaxBuffer bounds buffered-but-not-yet-on-disk bytes. Zero selects
	// SafeBufferSize for the machine's PSU and the dump device.
	MaxBuffer int64
	// Unsafe skips the MaxBuffer ≤ SafeBufferSize check. Used by ablation
	// A3 to demonstrate exactly why the bound matters.
	Unsafe bool
	// DrainBatch is the max entries coalesced per drain round; default 64.
	DrainBatch int
	// CopyBandwidth models the hypervisor's buffer copy, bytes/s; default
	// 5 GB/s.
	CopyBandwidth float64
	// AckOverhead is the fixed cost of the buffered-write path (request
	// validation, bookkeeping); default 2µs.
	AckOverhead time.Duration
	// DrainRetryLimit bounds how many times one backing write is attempted
	// before the Logger gives up on the drain and degrades; default 6.
	DrainRetryLimit int
	// DrainRetryBase/DrainRetryCap shape the exponential backoff between
	// attempts (base, base·2, base·4, … capped); defaults 2ms / 256ms.
	DrainRetryBase time.Duration
	DrainRetryCap  time.Duration
	// DrainProbeEvery is how often a degraded Logger re-tries its stranded
	// batch, hoping the fault cleared; default 1s.
	DrainProbeEvery time.Duration
	// Obs, when set, registers the Logger's instruments centrally and
	// traces the buffer lifecycle (hv_ack through durable/dump_done) —
	// the events the durability-exposure audit replays.
	Obs *obs.Obs
	// Policy selects the durability domain that must hold a commit before
	// it is acknowledged; zero value is AckLocal, the paper's contract.
	Policy AckPolicy
	// Replicator, when set, receives every write the Logger makes durable.
	// Required for any non-local Policy.
	Replicator Replicator
}

func (c *Config) applyDefaults() {
	if c.Name == "" {
		c.Name = "rapilog"
	}
	if c.DrainBatch == 0 {
		c.DrainBatch = 64
	}
	if c.CopyBandwidth == 0 {
		c.CopyBandwidth = 5e9
	}
	if c.AckOverhead == 0 {
		c.AckOverhead = 2 * time.Microsecond
	}
	if c.DrainRetryLimit == 0 {
		c.DrainRetryLimit = 6
	}
	if c.DrainRetryBase == 0 {
		c.DrainRetryBase = 2 * time.Millisecond
	}
	if c.DrainRetryCap == 0 {
		c.DrainRetryCap = 256 * time.Millisecond
	}
	if c.DrainProbeEvery == 0 {
		c.DrainProbeEvery = time.Second
	}
	if c.Policy.Remote() && c.Policy.K == 0 {
		c.Policy.K = 1
	}
}

// Stats exposes the Logger's own counters (distinct from the backing
// device's disk.Stats).
type Stats struct {
	Writes        *metrics.Counter // buffered writes acknowledged
	Absorbed      *metrics.Counter // writes absorbed into a pending entry
	Flushes       *metrics.Counter // no-op barriers absorbed
	Throttled     *metrics.Counter // writes that had to wait for space
	DrainRounds   *metrics.Counter
	DrainedBytes  *metrics.Counter
	Occupancy     *metrics.Gauge     // buffered bytes (peak = high-water)
	AckLatency    *metrics.Histogram // guest-visible write latency
	QuorumWait    *metrics.Histogram // ack-path stall inside WaitQuorum
	EmergencyRuns *metrics.Counter
	DumpedBytes   *metrics.Counter

	// Media-fault path.
	BackingRetries *metrics.Counter   // backing writes retried after a transient error
	Degradations   *metrics.Counter   // times the drain gave up and went pass-through
	Restores       *metrics.Counter   // times a degraded logger drained clean and recovered
	PassThrough    *metrics.Counter   // synchronous writes served while degraded
	PassLatency    *metrics.Histogram // guest-visible latency of those writes
	Degraded       *metrics.Gauge     // 1 while in pass-through
	DumpRetries    *metrics.Counter   // emergency-dump writes retried inside the hold-up window
	DumpFailures   *metrics.Counter   // emergency dumps that never made it to the zone
}

func newStats(reg *obs.Registry, name string) *Stats {
	return &Stats{
		Writes:        reg.Counter(name + ".writes"),
		Absorbed:      reg.Counter(name + ".absorbed"),
		Flushes:       reg.Counter(name + ".flushes"),
		Throttled:     reg.Counter(name + ".throttled"),
		DrainRounds:   reg.Counter(name + ".drain_rounds"),
		DrainedBytes:  reg.Counter(name + ".drained_bytes"),
		Occupancy:     reg.Gauge(name + ".occupancy"),
		AckLatency:    reg.Histogram(name + ".ack_latency"),
		QuorumWait:    reg.Histogram(name + ".quorum_wait"),
		EmergencyRuns: reg.Counter(name + ".emergency_runs"),
		DumpedBytes:   reg.Counter(name + ".dumped_bytes"),

		BackingRetries: reg.Counter(name + ".backing_retries"),
		Degradations:   reg.Counter(name + ".degradations"),
		Restores:       reg.Counter(name + ".restores"),
		PassThrough:    reg.Counter(name + ".pass_through_writes"),
		PassLatency:    reg.Histogram(name + ".pass_through_latency"),
		Degraded:       reg.Gauge(name + ".degraded"),
		DumpRetries:    reg.Counter(name + ".dump_retries"),
		DumpFailures:   reg.Counter(name + ".dump_failures"),
	}
}

// entry is one buffered write. Its lba plus len(data) is also the range
// index the Read path consults: pending entries, scanned oldest to newest,
// are exactly the sectors that differ from the backing device.
type entry struct {
	lba  int64
	data []byte
	span obs.SpanID // the hv_ack span; parents this entry's durable event
}

// Logger is the RapiLog device. It implements disk.Device so a guest can be
// given one in place of its raw log partition; reads are coherent with
// buffered writes.
//
// The simulation is single-threaded (the kernel runs one process at a
// time), so the entry and payload pools below need no locking.
type Logger struct {
	cfg     Config
	s       *sim.Sim
	backing disk.Device // physical log partition
	dump    disk.Device // reserved emergency dump zone
	stats   *Stats

	buffered  int64            // bytes buffered; bounded by cfg.MaxBuffer
	spaceSig  *sim.Signal      // broadcast when buffered shrinks or the mode changes
	pending   []*entry         // FIFO, including the batch being drained
	draining  int              // entries at the head currently being drained
	absorb    map[int64]*entry // pending (not draining) entries by lba, for write absorption
	dirtySig  *sim.Signal
	degraded  bool
	emergency bool
	never     *sim.Event  // parked on by writers after emergency starts
	ioBusy    bool        // a logger-initiated backing write is in flight
	ioSig     *sim.Signal // broadcast when ioBusy clears

	entryPool []*entry         // retired entry headers, reused by Write
	bufPool   map[int][][]byte // retired payload buffers by size class (exact length)
	scratch   []byte           // drain-run coalescing buffer, reused across rounds
}

// SafeBufferSize computes the paper's sizing rule: the bytes that can
// provably reach the dump zone within the guaranteed interrupt budget,
//
//	(hold-up_min − interrupt latency − 2 × worst-case positioning) × seq bandwidth,
//
// with a 10% engineering margin, additionally capped by the dump zone's
// payload capacity. The positioning term is doubled because the emergency
// write may have to wait out one in-flight disk operation before it can
// even start seeking.
func SafeBufferSize(m *power.Machine, dumpZone disk.Device) int64 {
	return SafeBufferSizeShared(m, dumpZone, 1)
}

// SafeBufferSizeShared is the consolidated-deployment variant of the
// sizing rule: sharers RapiLog instances on one machine, each dumping to
// its own zone on its own spindle, race the same hold-up window. The
// spindles stream independently, so sequential bandwidth is not divided —
// but the positioning term is charged once per sharer: the power-fail
// interrupt fans out to every instance on the same finite cores, and the
// conservative budget assumes an emergency write may have to wait out one
// in-flight operation per sharer before its own seek completes. With one
// sharer this is exactly SafeBufferSize.
func SafeBufferSizeShared(m *power.Machine, dumpZone disk.Device, sharers int) int64 {
	if sharers < 1 {
		sharers = 1
	}
	budget := m.InterruptBudget() - 2*time.Duration(sharers)*dumpZone.WorstCaseAccess()
	if budget <= 0 {
		return 0
	}
	byBudget := int64(0.9 * budget.Seconds() * dumpZone.SeqWriteBandwidth())
	byZone := zonePayloadCapacity(dumpZone)
	if byZone < byBudget {
		return byZone
	}
	return byBudget
}

// zonePayloadCapacity is the dump zone's usable bytes after the header
// sector and per-entry framing (estimated at 10%).
func zonePayloadCapacity(zone disk.Device) int64 {
	raw := (zone.Sectors() - 1) * int64(zone.SectorSize())
	return raw * 9 / 10
}

// NewLogger creates a RapiLog device in front of backing, with emergency
// dumps going to dumpZone, and starts its drain process in hvDom — the
// domain that survives guest crashes. The machine's power-fail interrupt is
// wired to the emergency dump.
func NewLogger(m *power.Machine, hvDom *sim.Domain, backing, dumpZone disk.Device, cfg Config) (*Logger, error) {
	cfg.applyDefaults()
	if cfg.Policy.Remote() {
		if cfg.Replicator == nil {
			return nil, fmt.Errorf("rapilog: ack policy %v requires a replicator", cfg.Policy)
		}
		// A quorum the replica set can never form would park every writer
		// forever in WaitQuorum; reject it here where direct API users hit
		// it, not just in rig config validation.
		if rc, ok := cfg.Replicator.(interface{ ReplicaCount() int }); ok && cfg.Policy.K > rc.ReplicaCount() {
			return nil, fmt.Errorf("rapilog: ack policy %v needs %d replicas, replicator has %d", cfg.Policy, cfg.Policy.K, rc.ReplicaCount())
		}
	}
	safe := SafeBufferSize(m, dumpZone)
	remoteOnly := cfg.Policy.Kind == AckKindRemoteOnly
	if cfg.MaxBuffer == 0 {
		cfg.MaxBuffer = safe
		if remoteOnly && cfg.MaxBuffer <= 0 {
			// The replicas are the durability domain: the buffer no longer
			// needs to fit the hold-up window, so a machine with no safe
			// local bound at all still gets a working (generous) buffer.
			cfg.MaxBuffer = 8 << 20
		}
	}
	if cfg.MaxBuffer <= 0 {
		return nil, fmt.Errorf("rapilog: no safe buffer possible (hold-up budget %v)", m.InterruptBudget())
	}
	// With AckRemoteOnly the dump zone is out of the durability argument
	// entirely — the SafeBufferSize bound and the zone-capacity check are
	// local-dump constraints and do not apply.
	if !cfg.Unsafe && !remoteOnly {
		if cfg.MaxBuffer > safe {
			return nil, fmt.Errorf("rapilog: MaxBuffer %d exceeds safe bound %d", cfg.MaxBuffer, safe)
		}
	}
	if !remoteOnly && cfg.MaxBuffer > zonePayloadCapacity(dumpZone) {
		return nil, fmt.Errorf("%w: bound %d, zone payload %d", ErrZoneSmall, cfg.MaxBuffer, zonePayloadCapacity(dumpZone))
	}
	s := m.Sim()
	l := &Logger{
		cfg:      cfg,
		s:        s,
		backing:  backing,
		dump:     dumpZone,
		stats:    newStats(cfg.Obs.Registry(), cfg.Name),
		absorb:   make(map[int64]*entry),
		bufPool:  make(map[int][][]byte),
		dirtySig: s.NewSignal(cfg.Name + ".dirty"),
		spaceSig: s.NewSignal(cfg.Name + ".space"),
		ioSig:    s.NewSignal(cfg.Name + ".io"),
		never:    s.NewEvent(cfg.Name + ".halted"),
	}
	// The registry hands back the same instruments across logger rebuilds
	// (a new power epoch reuses the names); the point-in-time gauges must
	// restart with this logger's actual — empty — buffer.
	l.stats.Occupancy.Set(0)
	l.stats.Degraded.Set(0)
	l.spawnDrainer(hvDom)
	m.AddPowerFailHandler(func(p *sim.Proc) { l.EmergencyFlush(p) })
	return l, nil
}

// getBuf returns a payload buffer of exactly n bytes, reusing a retired one
// when the size class has stock. Contents are undefined; callers overwrite.
func (l *Logger) getBuf(n int) []byte {
	if bufs := l.bufPool[n]; len(bufs) > 0 {
		b := bufs[len(bufs)-1]
		l.bufPool[n] = bufs[:len(bufs)-1]
		return b
	}
	return make([]byte, n)
}

// putBuf retires a payload buffer into its size class.
func (l *Logger) putBuf(b []byte) {
	l.bufPool[len(b)] = append(l.bufPool[len(b)], b)
}

// getEntry returns a blank entry header, reusing a retired one if possible.
func (l *Logger) getEntry() *entry {
	if n := len(l.entryPool); n > 0 {
		e := l.entryPool[n-1]
		l.entryPool = l.entryPool[:n-1]
		return e
	}
	return &entry{}
}

// putEntry retires a drained entry: its payload buffer goes back to the
// size-classed pool and the header to the entry pool. Only the drainer may
// call this, and only for entries no longer reachable from pending, absorb,
// or an emergency snapshot.
func (l *Logger) putEntry(e *entry) {
	l.putBuf(e.data)
	*e = entry{}
	l.entryPool = append(l.entryPool, e)
}

// Stats returns RapiLog's own counters.
func (l *Logger) RapiStats() *Stats { return l.stats }

// tracer returns the Logger's tracer (nil — a no-op — when unconfigured).
func (l *Logger) tracer() *obs.Tracer { return l.cfg.Obs.Tracer() }

// MaxBuffer returns the configured buffer bound in bytes.
func (l *Logger) MaxBuffer() int64 { return l.cfg.MaxBuffer }

// BufferedBytes returns the bytes currently buffered.
func (l *Logger) BufferedBytes() int64 { return l.buffered }

// State returns the Logger's current service mode.
func (l *Logger) State() State {
	switch {
	case l.emergency:
		return StateHalted
	case l.degraded:
		return StateDegraded
	default:
		return StateNormal
	}
}

// IsDegraded reports whether the Logger is in synchronous pass-through.
func (l *Logger) IsDegraded() bool { return l.degraded }

// Name implements disk.Device.
func (l *Logger) Name() string { return l.cfg.Name }

// SectorSize implements disk.Device.
func (l *Logger) SectorSize() int { return l.backing.SectorSize() }

// Sectors implements disk.Device.
func (l *Logger) Sectors() int64 { return l.backing.Sectors() }

// SeqWriteBandwidth implements disk.Device: the guest-visible write
// bandwidth is the copy bandwidth, not the disk's.
func (l *Logger) SeqWriteBandwidth() float64 { return l.cfg.CopyBandwidth }

// WorstCaseAccess implements disk.Device.
func (l *Logger) WorstCaseAccess() time.Duration { return l.cfg.AckOverhead }

// Stats implements disk.Device (the backing device's counters).
func (l *Logger) Stats() *disk.Stats { return l.backing.Stats() }

// Write implements disk.Device: copy into the buffer, acknowledge. Blocks
// only when the buffer bound is reached (throttling) — and, after a
// power-fail interrupt, forever: the device has stopped acknowledging, so
// nothing the guest does in its last milliseconds can be half-promised.
// While degraded, writes instead pass through to the backing device
// synchronously — slow, but never acknowledged before they are durable.
func (l *Logger) Write(p *sim.Proc, lba int64, data []byte, fua bool) error {
	// The caller one layer up (the WAL's physical force) may have parked a
	// span in the tracer's cause slot; adopt it as this write's causal
	// parent so a commit's trace links tx → force → hv_ack → ship.
	cause := l.tracer().TakeCause()
	if l.emergency {
		l.never.Wait(p) // parks until the machine dies
	}
	nsec := len(data) / l.SectorSize()
	if len(data)%l.SectorSize() != 0 {
		return disk.ErrMisaligned
	}
	if lba < 0 || lba+int64(nsec) > l.Sectors() {
		return fmt.Errorf("%w: lba=%d nsec=%d cap=%d", disk.ErrOutOfRange, lba, nsec, l.Sectors())
	}
	if l.degraded {
		return l.passthroughWrite(p, lba, data)
	}
	if int64(len(data)) > l.cfg.MaxBuffer {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), l.cfg.MaxBuffer)
	}
	start := p.Now()

	// Write absorption: a buffered-but-not-draining write to the same
	// block is superseded in place — the disk only ever needs the newest
	// version. This is what keeps repeated log-tail rewrites from eating
	// a disk rotation each in the drain.
	if e, ok := l.absorb[lba]; ok && len(e.data) == len(data) {
		copy(e.data, data)
		l.stats.Absorbed.Inc()
		l.tracer().Emit(p.Now().Duration(), obs.EvHvAbsorb, 0, e.span, lba, int64(len(data)))
		// An absorbed rewrite mutates the buffered entry in place, so the
		// replicas must see the new bytes too — their copy of the old
		// version is now a stale shadow of what will reach the disk.
		seq := l.ship(lba, data, e.span)
		p.Sleep(l.cfg.AckOverhead + time.Duration(float64(len(data))/l.cfg.CopyBandwidth*float64(time.Second)))
		l.waitPolicy(p, seq)
		l.stats.Writes.Inc()
		l.stats.AckLatency.Observe(p.Now().Sub(start))
		return nil
	}

	need := int64(len(data))
	if l.buffered+need > l.cfg.MaxBuffer {
		l.stats.Throttled.Inc()
		l.tracer().Emit(p.Now().Duration(), obs.EvHvThrottle, 0, 0, lba, need)
		for l.buffered+need > l.cfg.MaxBuffer {
			l.spaceSig.Wait(p)
			if l.emergency {
				// The power-fail interrupt arrived while we were
				// throttled: the device has stopped acknowledging.
				l.never.Wait(p)
			}
			if l.degraded {
				// The drain gave up while we were parked; no space will
				// free at buffered speed. Take the synchronous path.
				return l.passthroughWrite(p, lba, data)
			}
		}
	}
	e := l.getEntry()
	e.lba = lba
	e.data = l.getBuf(len(data))
	copy(e.data, data)
	e.span = l.tracer().NewSpan()
	// hv_ack is stamped at buffer-insertion time — before the ack sleep — so
	// it always precedes the durable event the drainer emits for this entry.
	l.tracer().Emit(p.Now().Duration(), obs.EvHvAck, e.span, cause, lba, int64(len(data)))
	l.pending = append(l.pending, e)
	l.absorb[lba] = e
	l.buffered += need
	l.stats.Occupancy.Add(need)
	seq := l.ship(lba, data, e.span)
	l.dirtySig.Broadcast()

	// The guest-visible cost: fixed overhead plus the memory copy — plus,
	// under a quorum policy, the replication round trip.
	p.Sleep(l.cfg.AckOverhead + time.Duration(float64(len(data))/l.cfg.CopyBandwidth*float64(time.Second)))
	l.waitPolicy(p, seq)
	l.stats.Writes.Inc()
	l.stats.AckLatency.Observe(p.Now().Sub(start))
	return nil
}

// passthroughWrite is the degraded-mode write path: durability before
// acknowledgement, at the backing device's own speed. Overlapping buffered
// entries are patched in place first, so the newest bytes win everywhere
// the buffer is still consulted — the read overlay, the probe drain, and
// the emergency dump image.
func (l *Logger) passthroughWrite(p *sim.Proc, lba int64, data []byte) error {
	start := p.Now()
	// Pass-through writes must ship too: replica replay rewrites every lba
	// the replicas hold, so any write they never saw would be rolled back
	// to its previous contents at recovery. No quorum wait is needed — the
	// write below is synchronously durable on local media before the ack.
	l.ship(lba, data, 0)
	l.patchPending(lba, data)
	l.acquireIO(p)
	err := l.writeBackingRetry(p, lba, data)
	l.releaseIO()
	if errors.Is(err, errHalted) {
		l.never.Wait(p)
	}
	if err != nil {
		return fmt.Errorf("rapilog: degraded pass-through write at lba %d: %w", lba, err)
	}
	l.stats.PassThrough.Inc()
	l.stats.PassLatency.Observe(p.Now().Sub(start))
	return nil
}

// patchPending copies data over every overlapping buffered entry. Called
// before a degraded pass-through write lands, it keeps the invariant that
// buffered copies are never older than the media they shadow.
func (l *Logger) patchPending(lba int64, data []byte) {
	ss := int64(l.SectorSize())
	lo, hi := lba, lba+int64(len(data))/ss
	for _, e := range l.pending {
		elo := e.lba
		ehi := e.lba + int64(len(e.data))/ss
		s0, s1 := lo, hi
		if elo > s0 {
			s0 = elo
		}
		if ehi < s1 {
			s1 = ehi
		}
		if s0 >= s1 {
			continue
		}
		copy(e.data[(s0-elo)*ss:(s1-elo)*ss], data[(s0-lo)*ss:(s1-lo)*ss])
	}
}

// acquireIO serialises logger-initiated backing writes: the degraded
// pass-through path and the probe drain must not interleave, or a stale
// coalesced batch could land after (and over) a newer synchronous write.
func (l *Logger) acquireIO(p *sim.Proc) {
	for l.ioBusy {
		l.ioSig.Wait(p)
	}
	l.ioBusy = true
}

func (l *Logger) releaseIO() {
	l.ioBusy = false
	l.ioSig.Broadcast()
}

// writeBackingRetry writes one FUA request to the backing device, riding
// out transient media errors with bounded exponential backoff on virtual
// time. It returns nil on success, errHalted when the machine is dying
// (power loss or the emergency already declared), or the final classified
// error once the retry budget is spent.
func (l *Logger) writeBackingRetry(p *sim.Proc, lba int64, data []byte) error {
	delay := l.cfg.DrainRetryBase
	for attempt := 1; ; attempt++ {
		err := l.backing.Write(p, lba, data, true)
		if err == nil {
			return nil
		}
		if l.emergency || errors.Is(err, disk.ErrNoPower) {
			return errHalted
		}
		if attempt >= l.cfg.DrainRetryLimit || !disk.IsTransient(err) {
			return err
		}
		l.stats.BackingRetries.Inc()
		l.tracer().Emit(p.Now().Duration(), obs.EvDrainError, 0, 0, lba, int64(attempt))
		p.Sleep(delay)
		if l.emergency {
			return errHalted
		}
		if delay *= 2; delay > l.cfg.DrainRetryCap {
			delay = l.cfg.DrainRetryCap
		}
	}
}

// Flush implements disk.Device: a no-op. Acknowledged log data is already
// as good as durable — this is where the paper's performance win lives.
func (l *Logger) Flush(p *sim.Proc) error {
	if l.emergency {
		l.never.Wait(p)
	}
	l.stats.Flushes.Inc()
	return nil
}

// Read implements disk.Device: backing contents with buffered sectors
// overlaid, so the guest always reads what it last wrote. Reads are rare
// (recovery, log scans at boot), so rather than maintaining a per-sector
// map on the hot Write path, the pending list itself serves as the range
// index: scanned oldest to newest, later overlaps win — the same ordering
// the drain writes to disk.
func (l *Logger) Read(p *sim.Proc, lba int64, nsec int) ([]byte, error) {
	out, err := l.backing.Read(p, lba, nsec)
	if err != nil {
		return nil, err
	}
	ss := int64(l.SectorSize())
	lo, hi := lba, lba+int64(nsec)
	for _, e := range l.pending {
		elo := e.lba
		ehi := e.lba + int64(len(e.data))/ss
		s0, s1 := lo, hi
		if elo > s0 {
			s0 = elo
		}
		if ehi < s1 {
			s1 = ehi
		}
		if s0 >= s1 {
			continue
		}
		copy(out[(s0-lo)*ss:(s1-lo)*ss], e.data[(s0-elo)*ss:(s1-elo)*ss])
	}
	return out, nil
}

// spawnDrainer starts the asynchronous writeback in the dependable domain.
// Entries are drained strictly in arrival order; contiguous runs coalesce
// into streaming writes. FUA bypasses the physical disk's volatile cache —
// RapiLog's durability promise must not silently rest on another volatile
// buffer.
//
// A failed backing write is retried with bounded exponential backoff
// (writeBackingRetry). Power loss ends the daemon — the emergency dump
// owns the buffer. A media fault that outlives the retry budget degrades
// the device instead: the daemon stays armed, probing the stranded batch
// at a gentle cadence, and restores buffered service the moment the
// backlog finally lands.
func (l *Logger) spawnDrainer(hvDom *sim.Domain) {
	l.s.Spawn(hvDom, l.cfg.Name+".drain", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			if l.emergency {
				return // the emergency dump owns the buffer now
			}
			if len(l.pending) == 0 {
				if l.degraded {
					l.restore(p)
				}
				l.dirtySig.Wait(p)
				continue
			}
			err := l.drainRound(p)
			switch {
			case err == nil:
			case errors.Is(err, errHalted):
				return
			default:
				// Retry budget spent (or a permanent media error). Degrade
				// rather than strand acknowledged bytes silently, then keep
				// probing: a cleared fault lets the backlog drain and the
				// device return to normal service.
				if !l.degraded {
					l.degrade(p, err)
				}
				l.dirtySig.WaitTimeout(p, l.cfg.DrainProbeEvery)
			}
		}
	})
}

// drainRound drains one batch from the head of the FIFO. On success the
// batch is retired and space released; on failure everything stays pending
// (writes are idempotent — a later round simply re-lands the same sectors).
func (l *Logger) drainRound(p *sim.Proc) error {
	batch := len(l.pending)
	if batch > l.cfg.DrainBatch {
		batch = l.cfg.DrainBatch
	}
	l.draining = batch
	// Entries entering the drain can no longer be absorbed into.
	batchBytes := int64(0)
	for _, e := range l.pending[:batch] {
		if l.absorb[e.lba] == e {
			delete(l.absorb, e.lba)
		}
		batchBytes += int64(len(e.data))
	}
	l.tracer().Emit(p.Now().Duration(), obs.EvDrainStart, l.tracer().NewSpan(), 0, int64(batch), batchBytes)
	drained := int64(0)
	i := 0
	for i < batch {
		// Coalesce the contiguous run starting at i into the persistent
		// scratch buffer (devices copy the data during the Write call, so
		// the buffer is free again on return).
		data := l.scratch[:0]
		next := l.pending[i].lba
		j := i
		for j < batch && l.pending[j].lba == next {
			data = append(data, l.pending[j].data...)
			next += int64(len(l.pending[j].data)) / int64(l.SectorSize())
			j++
		}
		l.scratch = data[:0]
		l.acquireIO(p)
		err := l.writeBackingRetry(p, l.pending[i].lba, data)
		l.releaseIO()
		if err != nil {
			l.draining = 0
			return err
		}
		if l.emergency {
			// The power-fail interrupt fired during the write and
			// snapshotted pending — the dump owns those buffers now;
			// retiring them here would recycle live memory.
			l.draining = 0
			return errHalted
		}
		for _, e := range l.pending[i:j] {
			drained += int64(len(e.data))
			l.tracer().Emit(p.Now().Duration(), obs.EvDurable, 0, e.span, e.lba, int64(len(e.data)))
		}
		i = j
	}
	// Retire the batch: entries and their payload buffers return to the
	// pools for the next writes, space is released, stats move. The
	// survivors shift down so the backing array is reused rather than
	// abandoned one batch at a time.
	for _, e := range l.pending[:batch] {
		l.putEntry(e)
	}
	rest := copy(l.pending, l.pending[batch:])
	for k := rest; k < len(l.pending); k++ {
		l.pending[k] = nil
	}
	l.pending = l.pending[:rest]
	l.draining = 0
	l.buffered -= drained
	l.stats.Occupancy.Add(-drained)
	l.stats.DrainRounds.Inc()
	l.stats.DrainedBytes.Add(drained)
	l.spaceSig.Broadcast()
	return nil
}

// degrade switches the device to synchronous pass-through after the drain
// retry budget is exhausted. Acknowledged entries stay buffered — visible
// to reads, re-tried by the probe, covered by the emergency dump — so no
// promise is abandoned; only future writes get slower.
func (l *Logger) degrade(p *sim.Proc, cause error) {
	l.degraded = true
	l.stats.Degradations.Inc()
	l.stats.Degraded.Set(1)
	l.tracer().Emit(p.Now().Duration(), obs.EvDegraded, 0, 0, int64(len(l.pending)), l.buffered)
	l.s.Tracef("%s: degraded to pass-through after retries exhausted (%d entries, %d bytes stranded): %v",
		l.cfg.Name, len(l.pending), l.buffered, cause)
	// Throttled writers must not wait for space that will never free at
	// buffered speed; wake them into the pass-through path.
	l.spaceSig.Broadcast()
}

// restore returns a degraded device to buffered service once the stranded
// backlog has fully drained.
func (l *Logger) restore(p *sim.Proc) {
	l.degraded = false
	l.stats.Restores.Inc()
	l.stats.Degraded.Set(0)
	l.tracer().Emit(p.Now().Duration(), obs.EvRestored, 0, 0, 0, 0)
	l.s.Tracef("%s: backlog drained, restored to buffered operation", l.cfg.Name)
	l.spaceSig.Broadcast()
}

// Dump-zone on-disk format. Everything is written as one sequential burst:
//
//	sector 0:  header  = magic(8) version(4) count(4) payloadLen(8) crc(4)
//	sectors 1+: entries packed back to back, each
//	           entMagic(4) lba(8) len(4) dataCRC(4) data...
//
// and the whole image padded to a sector boundary. Per-entry CRCs make a
// torn dump recover cleanly to a prefix.
const (
	dumpMagic   = "RAPILOG\x00"
	entMagic    = 0x52504c45 // "RPLE"
	dumpVersion = 1
	entHeadLen  = 20
)

// EmergencyFlush is the power-fail interrupt handler: snapshot everything
// still buffered (including any batch mid-drain — its backing write may be
// torn) and stream it to the dump zone in a single sequential FUA write.
// It races the hold-up deadline; SafeBufferSize is what makes it win.
func (l *Logger) EmergencyFlush(p *sim.Proc) {
	if l.emergency {
		return
	}
	l.emergency = true
	l.stats.EmergencyRuns.Inc()
	snapshot := l.pending // includes the draining head: replay is idempotent
	dumpSpan := l.tracer().NewSpan()
	l.tracer().Emit(p.Now().Duration(), obs.EvDumpStart, dumpSpan, 0, int64(len(snapshot)), l.stats.Occupancy.Value())
	if l.cfg.Policy.Kind == AckKindRemoteOnly {
		// The replicas are the durability domain: every acked byte is
		// already held by K standbys, and boot-time recovery replays from
		// them. Writing a dump here would just burn hold-up budget.
		l.s.Tracef("%s: emergency flush: remote-only policy, dump skipped (%d entries held by replicas)",
			l.cfg.Name, len(snapshot))
		l.tracer().Emit(p.Now().Duration(), obs.EvDumpDone, 0, dumpSpan, 0, 0)
		return
	}
	if len(snapshot) == 0 {
		l.s.Tracef("%s: emergency flush: buffer empty", l.cfg.Name)
		l.tracer().Emit(p.Now().Duration(), obs.EvDumpDone, 0, dumpSpan, 0, 0)
		return
	}

	// Build the image in a single sized allocation. The header must not be
	// assembled with append(header, payload...): if header had spare
	// capacity the two would alias and the payload would overwrite it.
	ss := l.dump.SectorSize()
	payloadLen := 0
	for _, e := range snapshot {
		payloadLen += entHeadLen + len(e.data)
	}
	imageLen := ss + payloadLen
	if pad := imageLen % ss; pad != 0 {
		imageLen += ss - pad
	}
	image := make([]byte, imageLen)
	header := image[:ss]
	copy(header, dumpMagic)
	binary.LittleEndian.PutUint32(header[8:], dumpVersion)
	binary.LittleEndian.PutUint32(header[12:], uint32(len(snapshot)))
	binary.LittleEndian.PutUint64(header[16:], uint64(payloadLen))
	binary.LittleEndian.PutUint32(header[24:], crc32.ChecksumIEEE(header[:24]))
	off := ss
	for _, e := range snapshot {
		h := image[off : off+entHeadLen]
		binary.LittleEndian.PutUint32(h[0:], entMagic)
		binary.LittleEndian.PutUint64(h[4:], uint64(e.lba))
		binary.LittleEndian.PutUint32(h[12:], uint32(len(e.data)))
		binary.LittleEndian.PutUint32(h[16:], crc32.ChecksumIEEE(e.data))
		off += entHeadLen
		off += copy(image[off:], e.data)
	}
	l.s.Tracef("%s: emergency flush: dumping %d entries (%d bytes)", l.cfg.Name, len(snapshot), payloadLen)
	// Retry transient dump-zone errors within the remaining hold-up budget:
	// the retry delay is tiny against the milliseconds the budget holds,
	// and the race is physical anyway — DC loss kills this process
	// mid-write if the deadline passes. Permanent errors and power death
	// are surrendered immediately and counted, so recovery reports can
	// tell "dump lost the race" (torn image) from "dump write failed".
	const maxDumpAttempts = 64
	const dumpRetryDelay = 100 * time.Microsecond
	var err error
	for attempt := 1; ; attempt++ {
		if err = l.dump.Write(p, 0, image, true); err == nil {
			break
		}
		if !disk.IsTransient(err) || attempt >= maxDumpAttempts {
			l.stats.DumpFailures.Inc()
			l.s.Tracef("%s: emergency dump failed after %d attempts: %v", l.cfg.Name, attempt, err)
			return
		}
		l.stats.DumpRetries.Inc()
		p.Sleep(dumpRetryDelay)
	}
	l.stats.DumpedBytes.Add(int64(payloadLen))
	l.tracer().Emit(p.Now().Duration(), obs.EvDumpDone, 0, dumpSpan, int64(len(snapshot)), int64(payloadLen))
	l.s.Tracef("%s: emergency flush complete at %v", l.cfg.Name, p.Now())
}

// RecoveryReport summarises what Recover replayed. DumpRetries and
// DumpFailures come from the previous power epoch's logger (the rig fills
// them in): HadDump=false with DumpFailures>0 means the dump write itself
// failed, distinct from Torn — the dump losing the hold-up race.
type RecoveryReport struct {
	Entries      int
	Bytes        int64
	Torn         bool // the dump ended mid-entry (deadline hit mid-dump)
	HadDump      bool
	DumpRetries  int
	DumpFailures int
	// Flight is the flight record frozen at the power loss, when the rig was
	// running a flight recorder; nil otherwise.
	Flight *obs.FlightRecord
}

// Dump is a parsed dump-zone image: every entry that survived intact, plus
// the validity flags a recovery policy needs. ReadDump produces it without
// writing anything, so a caller coordinating several durability domains
// (rig.RecoverAfterPower with standby replicas) can decide what to replay —
// and in which order — before the first sector changes.
type Dump struct {
	HadDump bool
	Torn    bool // the image ended mid-entry (hold-up deadline hit mid-dump)
	Entries []DumpEntry
}

// DumpEntry is one intact buffered write recovered from the dump zone.
type DumpEntry struct {
	Lba  int64
	Data []byte
}

// Complete reports whether the image fully accounts for what was buffered
// at the power-fail interrupt: a valid header with no tear. A machine that
// had nothing buffered writes no dump at all — that case is HadDump=false
// and the buffer was trivially covered, but only the dying logger's
// DumpFailures counter can tell it apart from "the dump write itself
// failed"; callers deciding whether local recovery is complete must consult
// both.
func (d Dump) Complete() bool { return d.HadDump && !d.Torn }

// ReadDump parses the dump zone without modifying anything. A zone with no
// dump header returns HadDump=false and no error; a corrupt header returns
// ErrBadDump; a torn payload returns the intact prefix with Torn set.
func ReadDump(p *sim.Proc, dumpZone disk.Device) (Dump, error) {
	var d Dump
	ss := dumpZone.SectorSize()
	header, err := dumpZone.Read(p, 0, 1)
	if err != nil {
		return d, err
	}
	if string(header[:8]) != dumpMagic {
		return d, nil // no dump: clean shutdown or nothing buffered
	}
	if crc32.ChecksumIEEE(header[:24]) != binary.LittleEndian.Uint32(header[24:28]) {
		return d, fmt.Errorf("%w: header CRC mismatch", ErrBadDump)
	}
	if v := binary.LittleEndian.Uint32(header[8:12]); v != dumpVersion {
		return d, fmt.Errorf("%w: version %d", ErrBadDump, v)
	}
	d.HadDump = true
	count := int(binary.LittleEndian.Uint32(header[12:16]))
	payloadLen := int64(binary.LittleEndian.Uint64(header[16:24]))
	payloadSectors := int((payloadLen + int64(ss) - 1) / int64(ss))
	if int64(payloadSectors) > dumpZone.Sectors()-1 {
		return d, fmt.Errorf("%w: payload length %d exceeds zone", ErrBadDump, payloadLen)
	}
	payload := []byte{}
	if payloadSectors > 0 {
		payload, err = dumpZone.Read(p, 1, payloadSectors)
		if err != nil {
			return d, err
		}
		payload = payload[:min64(payloadLen, int64(len(payload)))]
	}

	off := 0
	for i := 0; i < count; i++ {
		if off+entHeadLen > len(payload) {
			d.Torn = true
			break
		}
		h := payload[off : off+entHeadLen]
		if binary.LittleEndian.Uint32(h[0:4]) != entMagic {
			d.Torn = true
			break
		}
		lba := int64(binary.LittleEndian.Uint64(h[4:12]))
		dlen := int(binary.LittleEndian.Uint32(h[12:16]))
		wantCRC := binary.LittleEndian.Uint32(h[16:20])
		off += entHeadLen
		if off+dlen > len(payload) {
			d.Torn = true
			break
		}
		data := payload[off : off+dlen]
		off += dlen
		if crc32.ChecksumIEEE(data) != wantCRC {
			d.Torn = true
			break
		}
		d.Entries = append(d.Entries, DumpEntry{Lba: lba, Data: data})
	}
	return d, nil
}

// Replay writes every intact entry into the log partition (FUA), in dump
// order. Replaying is idempotent — entries rewrite the same sectors the
// drain would have — and, because the dump snapshotted the newest buffered
// version of each sector, its entries must land AFTER any other recovery
// source (a standby replica replay) that covers the same sectors.
func (d Dump) Replay(p *sim.Proc, logPartition disk.Device) (entries int, bytes int64, err error) {
	for i, e := range d.Entries {
		if err := logPartition.Write(p, e.Lba, e.Data, true); err != nil {
			return entries, bytes, fmt.Errorf("rapilog: replaying dump entry %d: %v", i, err)
		}
		entries++
		bytes += int64(len(e.Data))
	}
	return entries, bytes, nil
}

// InvalidateDump zeroes the dump-zone header so a second boot does not
// replay a stale image over a log that has moved on.
func InvalidateDump(p *sim.Proc, dumpZone disk.Device) error {
	return dumpZone.Write(p, 0, make([]byte, dumpZone.SectorSize()), true)
}

// Recover runs at boot, before the DBMS's own log recovery: if the dump
// zone holds a valid dump, replay every intact entry into the log
// partition (FUA), then invalidate the zone.
func Recover(p *sim.Proc, logPartition, dumpZone disk.Device) (RecoveryReport, error) {
	d, err := ReadDump(p, dumpZone)
	rep := RecoveryReport{HadDump: d.HadDump, Torn: d.Torn}
	if err != nil || !d.HadDump {
		return rep, err
	}
	rep.Entries, rep.Bytes, err = d.Replay(p, logPartition)
	if err != nil {
		return rep, err
	}
	if err := InvalidateDump(p, dumpZone); err != nil {
		return rep, err
	}
	return rep, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
