package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/sim"
)

// TestDrainCoalescesMixedRuns drains a batch holding a contiguous run of
// mixed-size entries next to isolated entries, and checks the run goes to
// the backing disk as one streaming write while the stragglers go alone.
func TestDrainCoalescesMixedRuns(t *testing.T) {
	r := newRig(t, 1, power.PSUMeasured, Config{})
	// One blocker first: the drainer picks it up immediately (batch of 1)
	// and spends a disk-arm-visible amount of time on it, so the writes
	// issued behind it accumulate into a single second batch.
	writes := []struct {
		lba  int64
		data []byte
	}{
		{4000, pattern(4096, 1)}, // blocker
		{0, pattern(4096, 2)},    // run: sectors 0..8
		{8, pattern(8192, 3)},    // run: sectors 8..24 (different size, still contiguous)
		{24, pattern(4096, 4)},   // run: sectors 24..32
		{100, pattern(4096, 5)},  // isolated
		{200, pattern(4096, 6)},  // isolated
	}
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		for _, w := range writes {
			if err := r.l.Write(p, w.lba, w.data, false); err != nil {
				t.Errorf("write lba %d: %v", w.lba, err)
				return
			}
		}
	})
	if err := r.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if occ := r.l.BufferedBytes(); occ != 0 {
		t.Fatalf("buffer not fully drained: %d bytes left", occ)
	}
	if rounds := r.l.RapiStats().DrainRounds.Value(); rounds != 2 {
		t.Fatalf("drain rounds = %d, want 2 (blocker, then the rest)", rounds)
	}
	// 6 entries but only 4 device writes: blocker, coalesced run 0..32,
	// and one each for the two isolated entries.
	if w := r.hdd.Stats().Writes.Value(); w != 4 {
		t.Fatalf("backing device saw %d writes for 6 entries, want 4 (run not coalesced?)", w)
	}
	// The buffer is empty, so reads now come straight off the disk: every
	// entry — coalesced or not — must have landed intact.
	r.s.Spawn(r.guest, "check", func(p *sim.Proc) {
		for _, w := range writes {
			got, err := r.l.Read(p, w.lba, len(w.data)/r.l.SectorSize())
			if err != nil {
				t.Errorf("read lba %d: %v", w.lba, err)
				return
			}
			if !bytes.Equal(got, w.data) {
				t.Errorf("disk contents at lba %d do not match the write", w.lba)
			}
		}
	})
	if err := r.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestAbsorptionMismatchedSizes rewrites a buffered block with a different
// payload size. Absorption only applies to same-size rewrites (the entry's
// buffer is updated in place); a mismatched rewrite must take the fresh-entry
// path, and the newest data must win both in buffered reads and on disk.
func TestAbsorptionMismatchedSizes(t *testing.T) {
	r := newRig(t, 1, power.PSUMeasured, Config{})
	small := pattern(4096, 7)
	bigOld := pattern(8192, 8)
	bigNew := pattern(8192, 9)
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		// Blocker: keeps the drainer busy so the lba-512 entries stay
		// buffered (and absorbable) for the rest of the sequence.
		for _, w := range [][2]any{
			{int64(4000), pattern(4096, 1)},
			{int64(512), small},  // fresh 4 KiB entry
			{int64(512), bigOld}, // 8 KiB: size mismatch, must NOT absorb
			{int64(512), bigNew}, // 8 KiB again: absorbs into bigOld's entry
		} {
			if err := r.l.Write(p, w[0].(int64), w[1].([]byte), false); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		// Still buffered: the overlay must resolve overlaps newest-last.
		got, err := r.l.Read(p, 512, 16)
		if err != nil {
			t.Errorf("buffered read: %v", err)
			return
		}
		if !bytes.Equal(got, bigNew) {
			t.Error("buffered read did not return the newest rewrite")
		}
	})
	if err := r.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if a := r.l.RapiStats().Absorbed.Value(); a != 1 {
		t.Fatalf("absorbed = %d, want 1 (same-size rewrite only)", a)
	}
	if occ := r.l.BufferedBytes(); occ != 0 {
		t.Fatalf("buffer not fully drained: %d bytes left", occ)
	}
	// FIFO drain order: the 4 KiB entry lands first, the 8 KiB entry
	// overwrites it. Disk must hold the newest data.
	r.s.Spawn(r.guest, "check", func(p *sim.Proc) {
		got, err := r.l.Read(p, 512, 16)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.Equal(got, bigNew) {
			t.Error("disk contents at lba 512 are not the newest rewrite")
		}
	})
	if err := r.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestThrottledWriterParksOnEmergency pins the interleaving where a
// throttled writer is woken by a space broadcast and the power-fail
// interrupt fires in the same instant, before the writer runs: the writer
// must park forever without inserting its entry — the accounting stays at
// exactly the bytes the emergency dump snapshotted.
func TestThrottledWriterParksOnEmergency(t *testing.T) {
	r := newRig(t, 1, power.PSUMeasured, Config{MaxBuffer: 16384})
	// No drainer: nothing leaves the buffer, so occupancy is exact.
	r.hvDom.Kill()
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		p.SetDaemon(true)               // parks forever once the emergency is declared
		for i := int64(0); i < 5; i++ { // fifth write throttles on a full buffer
			_ = r.l.Write(p, i*8, pattern(4096, byte(i)), false)
		}
	})
	if err := r.s.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if th := r.l.RapiStats().Throttled.Value(); th != 1 {
		t.Fatalf("throttled = %d, want 1", th)
	}
	if occ := r.l.BufferedBytes(); occ != 16384 {
		t.Fatalf("buffered = %d, want 16384 (buffer full)", occ)
	}
	// Scheduler callback: wake the throttled writer and declare the
	// emergency in the same instant, before the writer can run.
	r.s.After(0, func() {
		r.l.emergency = true
		r.l.spaceSig.Broadcast()
	})
	if err := r.s.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The writer woke into the emergency and parked; its entry must not
	// have been inserted nor the accounting disturbed.
	if occ := r.l.BufferedBytes(); occ != 16384 {
		t.Fatalf("buffered = %d after emergency, want 16384", occ)
	}
	if w := r.l.RapiStats().Writes.Value(); w != 4 {
		t.Fatalf("acknowledged writes = %d, want 4 (throttled write must never ack)", w)
	}
}
