package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/power"
	"repro/internal/sim"
)

// faultRig is a rig whose log partition sits behind a disk.Faulty wrapper,
// mirroring how internal/rig wires LogFault.
type faultRig struct {
	*rig
	flt *disk.Faulty
}

func newFaultRig(t *testing.T, seed int64, cfg Config) *faultRig {
	t.Helper()
	s := sim.New(seed)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
	m.AttachDevice(hdd)
	logPart, err := disk.NewPartition(hdd, "log", 0, 262144)
	if err != nil {
		t.Fatal(err)
	}
	dump, err := disk.NewPartition(hdd, "dump", 262144, 262144)
	if err != nil {
		t.Fatal(err)
	}
	flt := disk.NewFaulty(logPart, disk.FaultConfig{Seed: seed + 1})
	hvDom := m.NewDomain("hv")
	guest := m.NewDomain("guest")
	l, err := NewLogger(m, hvDom, flt, dump, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &faultRig{
		rig: &rig{s: s, m: m, hdd: hdd, logPart: logPart, dump: dump, hvDom: hvDom, guest: guest, l: l},
		flt: flt,
	}
}

// TestTransientDrainErrorRetriesWithoutDegrading opens a short window of
// certain write failure. The drainer's backoff must outlive the window, land
// every entry, release throttled writers, and never enter degraded mode.
func TestTransientDrainErrorRetriesWithoutDegrading(t *testing.T) {
	// Retry budget: attempts at 0, 2, 6, 14, 30, 62 ms — the fault clears at
	// 10ms, inside the budget.
	r := newFaultRig(t, 1, Config{MaxBuffer: 16384})
	r.flt.SetErrorProbs(0, 1)
	r.s.After(10*time.Millisecond, func() { r.flt.SetErrorProbs(0, 0) })
	writes := 8 // twice the buffer bound: the later writers must throttle
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			if err := r.l.Write(p, int64(i*8), pattern(4096, byte(i+1)), false); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	})
	if err := r.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := r.l.RapiStats()
	if st.BackingRetries.Value() == 0 {
		t.Fatal("fault window open but no backing retries counted")
	}
	if st.Degradations.Value() != 0 {
		t.Fatalf("degradations = %d, want 0 (fault cleared inside retry budget)", st.Degradations.Value())
	}
	if w := st.Writes.Value(); w != int64(writes) {
		t.Fatalf("writes acked = %d, want %d (throttled writer stranded by the fault?)", w, writes)
	}
	if occ := r.l.BufferedBytes(); occ != 0 {
		t.Fatalf("buffer not drained after fault cleared: %d bytes", occ)
	}
	r.s.Spawn(r.guest, "check", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			got, err := r.logPart.Read(p, int64(i*8), 8)
			if err != nil || !bytes.Equal(got, pattern(4096, byte(i+1))) {
				t.Errorf("entry %d not intact on media after retried drain", i)
				return
			}
		}
	})
	if err := r.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestPermanentFaultDegradesAndRestores grows a bad-sector range under one
// buffered entry. The drain budget exhausts, the device degrades to
// synchronous pass-through (which must still be durable and must patch the
// stranded buffered copies), and when the range is repaired the probe drains
// the backlog and restores buffered service.
func TestPermanentFaultDegradesAndRestores(t *testing.T) {
	r := newFaultRig(t, 2, Config{
		DrainRetryLimit: 3,
		DrainRetryBase:  time.Millisecond,
		DrainProbeEvery: 50 * time.Millisecond,
	})
	r.flt.AddBadRange(0, 64, false) // writes into LBAs 0..64 fail forever
	oldB := pattern(4096, 2)
	newB := pattern(4096, 3)
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		// Entry A sits in the bad range; entry B on good sectors. One failed
		// run fails the whole round, so both stay stranded together.
		if err := r.l.Write(p, 0, pattern(4096, 1), false); err != nil {
			t.Errorf("write A: %v", err)
		}
		if err := r.l.Write(p, 1000, oldB, false); err != nil {
			t.Errorf("write B: %v", err)
		}
		p.Sleep(100 * time.Millisecond) // budget is ~3ms; plenty to degrade
		if !r.l.IsDegraded() {
			t.Error("retry budget exhausted but logger not degraded")
			return
		}
		if r.l.State() != StateDegraded {
			t.Errorf("state = %v, want degraded", r.l.State())
		}
		// Degraded write to a good LBA overlapping stranded B: must go
		// through synchronously AND patch B's buffered copy so neither the
		// probe rewrite nor the emergency dump can resurrect stale bytes.
		if err := r.l.Write(p, 1000, newB, false); err != nil {
			t.Errorf("pass-through write: %v", err)
			return
		}
		onDisk, err := r.logPart.Read(p, 1000, 8)
		if err != nil || !bytes.Equal(onDisk, newB) {
			t.Error("pass-through write not on media before ack")
		}
		// Reads while degraded still see the stranded entries, newest wins.
		got, err := r.l.Read(p, 0, 8)
		if err != nil || !bytes.Equal(got, pattern(4096, 1)) {
			t.Error("stranded entry A not visible through the overlay")
		}
		got, err = r.l.Read(p, 1000, 8)
		if err != nil || !bytes.Equal(got, newB) {
			t.Error("read of patched entry B did not return the newest data")
		}
		// Repair the media; the probe must drain the backlog and restore.
		r.flt.ClearBadRanges()
	})
	if err := r.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := r.l.RapiStats()
	if st.Degradations.Value() != 1 {
		t.Fatalf("degradations = %d, want 1", st.Degradations.Value())
	}
	if st.PassThrough.Value() != 1 {
		t.Fatalf("pass-through writes = %d, want 1", st.PassThrough.Value())
	}
	if st.Restores.Value() != 1 {
		t.Fatalf("restores = %d, want 1 (probe never drained the backlog?)", st.Restores.Value())
	}
	if r.l.IsDegraded() || r.l.State() != StateNormal {
		t.Fatal("logger still degraded after backlog drained")
	}
	if occ := r.l.BufferedBytes(); occ != 0 {
		t.Fatalf("stranded bytes remain after restore: %d", occ)
	}
	r.s.Spawn(r.guest, "check", func(p *sim.Proc) {
		got, err := r.logPart.Read(p, 0, 8)
		if err != nil || !bytes.Equal(got, pattern(4096, 1)) {
			t.Error("entry A not on media after repair")
		}
		got, err = r.logPart.Read(p, 1000, 8)
		if err != nil || !bytes.Equal(got, newB) {
			t.Error("media at B holds stale data (patchPending missed the probe rewrite)")
		}
	})
	if err := r.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
}

// flakyDev fails the first failN writes with a wrapped transient (or
// permanent) error, then behaves normally. Deterministic by construction.
type flakyDev struct {
	disk.Device
	failN   int
	failErr error
	fails   int
}

func (f *flakyDev) Write(p *sim.Proc, lba int64, data []byte, fua bool) error {
	if f.failN > 0 {
		f.failN--
		f.fails++
		return fmt.Errorf("flaky: %w", f.failErr)
	}
	return f.Device.Write(p, lba, data, fua)
}

// emergencyRig builds a rig whose dump zone is wrapped in a flakyDev.
func emergencyRig(t *testing.T, seed int64, fd *flakyDev) *rig {
	t.Helper()
	s := sim.New(seed)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
	m.AttachDevice(hdd)
	logPart, err := disk.NewPartition(hdd, "log", 0, 262144)
	if err != nil {
		t.Fatal(err)
	}
	dump, err := disk.NewPartition(hdd, "dump", 262144, 262144)
	if err != nil {
		t.Fatal(err)
	}
	fd.Device = dump
	hvDom := m.NewDomain("hv")
	guest := m.NewDomain("guest")
	l, err := NewLogger(m, hvDom, logPart, fd, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{s: s, m: m, hdd: hdd, logPart: logPart, dump: dump, hvDom: hvDom, guest: guest, l: l}
}

// TestEmergencyDumpRetriesTransientError: the dump write fails transiently a
// few times inside the hold-up budget; the dump must still land and recovery
// must replay it in full.
func TestEmergencyDumpRetriesTransientError(t *testing.T) {
	fd := &flakyDev{failN: 3, failErr: disk.ErrIO}
	r := emergencyRig(t, 8, fd)
	payload := pattern(8192, 0x5a)
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		if err := r.l.Write(p, 64, payload, false); err != nil {
			t.Errorf("write: %v", err)
		}
		r.m.CutPower()
		p.Sleep(time.Hour)
	})
	var rep RecoveryReport
	var got []byte
	r.s.Spawn(nil, "operator", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		r.m.RestorePower()
		boot := r.s.NewDomain("boot")
		r.s.Spawn(boot, "recover", func(p *sim.Proc) {
			var err error
			rep, err = Recover(p, r.logPart, r.dump)
			if err != nil {
				t.Errorf("recover: %v", err)
				return
			}
			got, _ = r.logPart.Read(p, 64, 16)
		})
	})
	if err := r.s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := r.l.RapiStats()
	if st.DumpRetries.Value() != 3 {
		t.Fatalf("dump retries = %d, want 3", st.DumpRetries.Value())
	}
	if st.DumpFailures.Value() != 0 {
		t.Fatalf("dump failures = %d, want 0", st.DumpFailures.Value())
	}
	if !rep.HadDump || rep.Torn {
		t.Fatalf("dump not recovered intact (HadDump=%v Torn=%v)", rep.HadDump, rep.Torn)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("acked write lost despite retried dump")
	}
}

// TestEmergencyDumpPermanentFailureIsCounted: a permanent dump-zone error is
// surrendered immediately and shows up as DumpFailures, with no dump header
// on media — distinct from a torn dump.
func TestEmergencyDumpPermanentFailureIsCounted(t *testing.T) {
	fd := &flakyDev{failN: 1 << 30, failErr: disk.ErrOutOfRange} // permanent
	r := emergencyRig(t, 9, fd)
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		_ = r.l.Write(p, 0, pattern(4096, 1), false)
		r.m.CutPower()
		p.Sleep(time.Hour)
	})
	var rep RecoveryReport
	r.s.Spawn(nil, "operator", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		r.m.RestorePower()
		boot := r.s.NewDomain("boot")
		r.s.Spawn(boot, "recover", func(p *sim.Proc) {
			rep, _ = Recover(p, r.logPart, r.dump)
		})
	})
	if err := r.s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := r.l.RapiStats()
	if st.DumpFailures.Value() != 1 {
		t.Fatalf("dump failures = %d, want 1", st.DumpFailures.Value())
	}
	if fd.fails != 1 {
		t.Fatalf("dump write attempted %d times, want 1 (permanent errors must not burn the budget)", fd.fails)
	}
	if rep.HadDump {
		t.Fatal("recovery found a dump the failed write should never have produced")
	}
}
