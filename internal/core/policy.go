package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// AckKind selects which durability domain must hold a commit before the
// guest sees the acknowledgement.
type AckKind int

const (
	// AckKindLocal is the paper's original contract: the hypervisor buffer
	// plus the emergency-dump guarantee are the durability domain. A commit
	// is acked the moment it is copied into hypervisor memory.
	AckKindLocal AckKind = iota
	// AckKindQuorum acks a commit only when the local buffer AND k standby
	// replicas hold it. Survives everything AckKindLocal survives, plus
	// faults the local dump cannot: a dump-zone media failure, a defective
	// PSU whose real hold-up undershoots its rating, whole-machine loss.
	AckKindQuorum
	// AckKindRemoteOnly makes the replicas the durability domain outright:
	// acks wait for k replicas, the emergency dump is disabled, and the
	// buffer bound is no longer tied to the PSU hold-up window.
	AckKindRemoteOnly
)

// AckPolicy is the durability policy a Logger enforces on the ack path.
type AckPolicy struct {
	Kind AckKind
	// K is the number of standby replicas that must hold a commit before it
	// is acknowledged. Ignored for AckKindLocal; defaults to 1 otherwise.
	K int
}

// AckLocal returns the default local-durability policy.
func AckLocal() AckPolicy { return AckPolicy{Kind: AckKindLocal} }

// AckQuorum returns a policy that acks once local memory plus k replicas
// hold the commit.
func AckQuorum(k int) AckPolicy { return AckPolicy{Kind: AckKindQuorum, K: k} }

// AckRemoteOnly returns a policy where k replicas replace the emergency
// dump as the durability domain.
func AckRemoteOnly(k int) AckPolicy { return AckPolicy{Kind: AckKindRemoteOnly, K: k} }

// ParseAckPolicy maps a CLI-style policy name ("local", "quorum",
// "remote-only") and replica count to a policy.
func ParseAckPolicy(kind string, k int) (AckPolicy, error) {
	switch kind {
	case "", "local":
		return AckLocal(), nil
	case "quorum":
		return AckQuorum(k), nil
	case "remote-only", "remote":
		return AckRemoteOnly(k), nil
	default:
		return AckPolicy{}, fmt.Errorf("rapilog: unknown ack policy %q (local|quorum|remote-only)", kind)
	}
}

func (a AckPolicy) String() string {
	switch a.Kind {
	case AckKindLocal:
		return "local"
	case AckKindQuorum:
		return fmt.Sprintf("quorum(%d)", a.K)
	case AckKindRemoteOnly:
		return fmt.Sprintf("remote-only(%d)", a.K)
	default:
		return fmt.Sprintf("ackpolicy(%d)", int(a.Kind))
	}
}

// Remote reports whether the policy involves replicas at all.
func (a AckPolicy) Remote() bool { return a.Kind != AckKindLocal }

// DefaultReplicas is the standby count a replicated deployment gets when
// none is configured.
const DefaultReplicas = 2

// ValidateQuorumFlags vets raw -quorum/-replicas CLI values before any
// deployment is constructed, so an unsatisfiable configuration fails with a
// usage error instead of a deep rig-construction failure. replicas == 0
// means the deployment default (DefaultReplicas).
func ValidateQuorumFlags(quorum, replicas int) error {
	if quorum < 0 {
		return fmt.Errorf("rapilog: -quorum %d: a commit cannot wait for a negative number of replicas", quorum)
	}
	if replicas < 0 {
		return fmt.Errorf("rapilog: -replicas %d: the standby count cannot be negative", replicas)
	}
	n := replicas
	if n == 0 {
		n = DefaultReplicas
	}
	if quorum > n {
		return fmt.Errorf("rapilog: -quorum %d exceeds the %d configured standbys: such a commit could never be acknowledged (lower -quorum or raise -replicas)", quorum, n)
	}
	return nil
}

// Replicator is the Logger's hook into log shipping. The Logger calls Ship
// for every byte it intends to make durable — buffered inserts, absorbed
// rewrites, and degraded pass-through writes alike — and WaitQuorum on the
// ack path when the policy demands remote copies. internal/replica provides
// the real implementation; tests substitute fakes.
type Replicator interface {
	// Ship hands one write to the replication stream and returns its
	// sequence number. The data is copied before Ship returns.
	Ship(lba int64, data []byte) uint64
	// WaitQuorum blocks p until k replicas have acknowledged seq.
	WaitQuorum(p *sim.Proc, seq uint64, k int)
}

// ship forwards one write to the replicator, if any. Every path that makes
// bytes durable must pass through here — a write the replicas never saw is
// a write replica-based recovery would silently roll back. span is the
// causal parent (the buffer-entry span, or 0 when untracked); it rides the
// tracer's cause slot because the Replicator interface predates tracing and
// its fakes must keep compiling.
func (l *Logger) ship(lba int64, data []byte, span obs.SpanID) uint64 {
	if l.cfg.Replicator == nil {
		return 0
	}
	tr := l.tracer()
	tr.SetCause(span)
	seq := l.cfg.Replicator.Ship(lba, data)
	tr.ClearCause()
	return seq
}

// waitPolicy blocks the acking writer until the configured durability
// domain holds the write.
func (l *Logger) waitPolicy(p *sim.Proc, seq uint64) {
	if l.cfg.Replicator == nil || !l.cfg.Policy.Remote() || seq == 0 {
		return
	}
	start := p.Now()
	l.cfg.Replicator.WaitQuorum(p, seq, l.cfg.Policy.K)
	l.stats.QuorumWait.Observe(p.Now().Sub(start))
}
