//go:build !race

// Allocation-regression pins for the RapiLog buffered-write path. These
// depend on exact malloc counts, which the race detector changes, so they
// only run without -race.

package core

import (
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/sim"
)

// TestWriteSteadyStateAllocBound pins the buffered Write fast path. With
// the drainer cycling entries and payload buffers back through the pools,
// a steady-state 4 KiB write must not allocate a fresh payload copy, entry
// header, or per-sector overlay record per call.
func TestWriteSteadyStateAllocBound(t *testing.T) {
	r := newRig(t, 1, power.PSUMeasured, Config{})
	kick := r.s.NewSignal("kick")
	data := pattern(4096, 7)
	lba, n := int64(0), 0
	r.s.Spawn(r.guest, "w", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			kick.Wait(p)
			// Cycle a small window of distinct blocks: fresh-entry path,
			// absorption never hits, maps stay at their warmed size.
			if err := r.l.Write(p, lba, data, false); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			lba = (lba + 8) % 64
			n++
		}
	})
	step := func() {
		kick.Broadcast()
		// Long enough for the HDD drain to retire the entry back to the
		// pools before the next write lands.
		if err := r.s.RunFor(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ { // warm pools, maps, slice capacities
		step()
	}
	start := n
	allocs := testing.AllocsPerRun(50, step)
	if n-start != 51 { // warmup call + 50 measured
		t.Fatalf("expected 51 writes during measurement, got %d", n-start)
	}
	// Steady state leaves only incidental allocations (occasional map or
	// slice rehash inside the device model); the payload copy alone used
	// to cost one 4 KiB allocation plus ~10 bookkeeping allocations.
	if allocs > 2 {
		t.Fatalf("steady-state fresh write allocates %.1f per op, want <= 2", allocs)
	}
}

// TestAbsorbedWriteAllocFree pins the absorption path: rewriting a block
// already buffered (and not yet draining) updates it in place and must not
// allocate at all.
func TestAbsorbedWriteAllocFree(t *testing.T) {
	r := newRig(t, 1, power.PSUMeasured, Config{})
	kick := r.s.NewSignal("kick")
	data := pattern(4096, 9)
	r.s.Spawn(r.guest, "w", func(p *sim.Proc) {
		p.SetDaemon(true)
		// Park a long-lived entry at lba 512 behind a drain in progress:
		// write a blocker, then the target twice so the drainer is busy
		// with the blocker while the target stays absorbable.
		for {
			kick.Wait(p)
			if err := r.l.Write(p, 512, data, false); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	})
	step := func() {
		kick.Broadcast()
		if err := r.s.RunFor(100 * time.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		step()
	}
	if r.l.RapiStats().Absorbed.Value() == 0 {
		t.Fatal("test writes are not hitting the absorption path")
	}
	allocs := testing.AllocsPerRun(50, step)
	if allocs > 0 {
		t.Fatalf("absorbed write allocates %.1f per op, want 0", allocs)
	}
}
