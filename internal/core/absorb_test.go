package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/sim"
)

// Write-absorption behaviour: repeated writes to the same block supersede
// the buffered copy instead of queueing — the optimisation that keeps WAL
// tail rewrites from drain-limiting throughput.

func TestAbsorptionSupersedesPendingWrite(t *testing.T) {
	r := newRig(t, 20, power.PSUMeasured, Config{})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		_ = r.l.Write(p, 64, pattern(4096, 1), false)
		_ = r.l.Write(p, 64, pattern(4096, 2), false) // absorbed
		_ = r.l.Write(p, 64, pattern(4096, 3), false) // absorbed
	})
	var onMedia []byte
	r.s.Spawn(nil, "check", func(p *sim.Proc) {
		p.Sleep(time.Second)
		onMedia, _ = r.logPart.Read(p, 64, 8)
	})
	if err := r.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := r.l.RapiStats()
	// The first rewrite may race the drain (its target entry can already
	// be in a drain batch), but at least one of the two must absorb.
	if st.Absorbed.Value() < 1 {
		t.Fatalf("absorbed = %d, want ≥ 1", st.Absorbed.Value())
	}
	if !bytes.Equal(onMedia, pattern(4096, 3)) {
		t.Fatal("media does not hold the newest version")
	}
	// Never three separate copies in the buffer.
	if st.Occupancy.Peak() > 2*4096 {
		t.Fatalf("peak occupancy %d, want ≤ 8192", st.Occupancy.Peak())
	}
}

func TestAbsorptionReadCoherence(t *testing.T) {
	r := newRig(t, 21, power.PSUMeasured, Config{})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		_ = r.l.Write(p, 8, pattern(4096, 1), false)
		_ = r.l.Write(p, 8, pattern(4096, 9), false) // absorbed
		got, err := r.l.Read(p, 8, 8)
		if err != nil || !bytes.Equal(got, pattern(4096, 9)) {
			t.Errorf("read after absorption: %v", err)
		}
	})
	if err := r.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestAbsorptionSurvivesPowerCut(t *testing.T) {
	// The absorbed (newest) version must be what the dump carries.
	r := newRig(t, 22, power.PSUMeasured, Config{})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		_ = r.l.Write(p, 16, pattern(4096, 1), false)
		_ = r.l.Write(p, 16, pattern(4096, 7), false) // absorbed
		r.m.CutPower()
		p.Sleep(time.Hour)
	})
	var got []byte
	r.s.Spawn(nil, "op", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		r.m.RestorePower()
		boot := r.s.NewDomain("boot")
		r.s.Spawn(boot, "recover", func(p *sim.Proc) {
			if _, err := Recover(p, r.logPart, r.dump); err != nil {
				t.Errorf("recover: %v", err)
				return
			}
			got, _ = r.logPart.Read(p, 16, 8)
		})
	})
	if err := r.s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(4096, 7)) {
		t.Fatal("dump recovery did not restore the absorbed (newest) version")
	}
}

func TestDifferentLengthWriteNotAbsorbedInPlace(t *testing.T) {
	r := newRig(t, 23, power.PSUMeasured, Config{})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		_ = r.l.Write(p, 32, pattern(4096, 1), false)
		_ = r.l.Write(p, 32, pattern(8192, 2), false) // longer: new entry
		got, _ := r.l.Read(p, 32, 16)
		if !bytes.Equal(got, pattern(8192, 2)) {
			t.Error("longer rewrite not visible")
		}
	})
	if err := r.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if r.l.RapiStats().Absorbed.Value() != 0 {
		t.Fatal("length-mismatched write was absorbed in place")
	}
}

func TestDeviceAccessorsComplete(t *testing.T) {
	r := newRig(t, 24, power.PSUMeasured, Config{})
	if r.l.WorstCaseAccess() <= 0 {
		t.Fatal("WorstCaseAccess")
	}
	if r.l.Stats() != r.logPart.Stats() {
		t.Fatal("Stats should expose the backing device's counters")
	}
}

func TestReadBeyondRangeFails(t *testing.T) {
	r := newRig(t, 25, power.PSUMeasured, Config{})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		if _, err := r.l.Read(p, r.l.Sectors(), 1); err == nil {
			t.Error("out-of-range read accepted")
		}
	})
	if err := r.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverOnCleanZoneIsNoop(t *testing.T) {
	r := newRig(t, 26, power.PSUMeasured, Config{})
	r.s.Spawn(nil, "recover", func(p *sim.Proc) {
		rep, err := Recover(p, r.logPart, r.dump)
		if err != nil || rep.HadDump || rep.Entries != 0 {
			t.Errorf("clean-zone recover: %+v %v", rep, err)
		}
	})
	if err := r.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
}
