package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/power"
	"repro/internal/sim"
)

// rig builds machine + HDD with a log partition and dump zone + logger.
type rig struct {
	s       *sim.Sim
	m       *power.Machine
	hdd     *disk.HDD
	logPart *disk.Partition
	dump    *disk.Partition
	hvDom   *sim.Domain
	guest   *sim.Domain
	l       *Logger
}

func newRig(t *testing.T, seed int64, psu power.PSUConfig, cfg Config) *rig {
	t.Helper()
	s := sim.New(seed)
	m := power.NewMachine(s, "m0", 4, psu)
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
	m.AttachDevice(hdd)
	logPart, err := disk.NewPartition(hdd, "log", 0, 262144) // 128 MiB
	if err != nil {
		t.Fatal(err)
	}
	dump, err := disk.NewPartition(hdd, "dump", 262144, 262144)
	if err != nil {
		t.Fatal(err)
	}
	hvDom := m.NewDomain("hv")
	guest := m.NewDomain("guest")
	l, err := NewLogger(m, hvDom, logPart, dump, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{s: s, m: m, hdd: hdd, logPart: logPart, dump: dump, hvDom: hvDom, guest: guest, l: l}
}

func pattern(n int, seed byte) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = seed + byte(i%13)
	}
	return d
}

func TestAckLatencyIsMicroseconds(t *testing.T) {
	r := newRig(t, 1, power.PSUMeasured, Config{})
	var ack time.Duration
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		start := p.Now()
		if err := r.l.Write(p, 0, pattern(4096, 1), false); err != nil {
			t.Errorf("write: %v", err)
		}
		ack = p.Now().Sub(start)
	})
	if err := r.s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ack > 50*time.Microsecond {
		t.Fatalf("buffered write acked in %v, want microseconds", ack)
	}
	if r.l.RapiStats().Writes.Value() != 1 {
		t.Fatal("write not counted")
	}
}

func TestFlushIsNoop(t *testing.T) {
	r := newRig(t, 1, power.PSUMeasured, Config{})
	var flushTime time.Duration
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		_ = r.l.Write(p, 0, pattern(4096, 1), false)
		start := p.Now()
		if err := r.l.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
		}
		flushTime = p.Now().Sub(start)
	})
	if err := r.s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if flushTime != 0 {
		t.Fatalf("flush took %v, want 0 (no-op barrier)", flushTime)
	}
	if r.l.RapiStats().Flushes.Value() != 1 {
		t.Fatal("flush not counted")
	}
}

func TestReadSeesBufferedWrite(t *testing.T) {
	r := newRig(t, 1, power.PSUMeasured, Config{})
	var got []byte
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		_ = r.l.Write(p, 10, pattern(512, 9), false)
		got, _ = r.l.Read(p, 10, 1) // immediately, before any drain
	})
	if err := r.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(512, 9)) {
		t.Fatal("read did not observe buffered write")
	}
}

func TestDrainReachesBackingInOrder(t *testing.T) {
	r := newRig(t, 1, power.PSUMeasured, Config{})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			_ = r.l.Write(p, int64(i*8), pattern(4096, byte(i)), false)
		}
	})
	var onMedia [][]byte
	r.s.Spawn(nil, "check", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond) // plenty for the drain
		for i := 0; i < 8; i++ {
			d, err := r.logPart.Read(p, int64(i*8), 8)
			if err != nil {
				t.Errorf("read: %v", err)
			}
			onMedia = append(onMedia, d)
		}
	})
	if err := r.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	for i, d := range onMedia {
		if !bytes.Equal(d, pattern(4096, byte(i))) {
			t.Fatalf("drained data %d mismatch", i)
		}
	}
	if r.l.BufferedBytes() != 0 {
		t.Fatalf("buffer not empty after drain: %d bytes", r.l.BufferedBytes())
	}
}

func TestBufferBoundNeverExceeded(t *testing.T) {
	r := newRig(t, 2, power.PSUMeasured, Config{MaxBuffer: 64 * 1024})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			_ = r.l.Write(p, int64(i*8), pattern(4096, byte(i)), false)
		}
	})
	if err := r.s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if peak := r.l.RapiStats().Occupancy.Peak(); peak > 64*1024 {
		t.Fatalf("buffer peaked at %d, bound 65536", peak)
	}
	if r.l.RapiStats().Throttled.Value() == 0 {
		t.Fatal("200×4KiB against a 64KiB bound never throttled")
	}
	if r.l.RapiStats().Writes.Value() != 200 {
		t.Fatalf("only %d/200 writes completed (throttled writer starved?)", r.l.RapiStats().Writes.Value())
	}
}

func TestGuestCrashDoesNotLoseBufferedData(t *testing.T) {
	r := newRig(t, 3, power.PSUMeasured, Config{})
	payload := pattern(8192, 0x42)
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		if err := r.l.Write(p, 100, payload, false); err != nil {
			t.Errorf("write: %v", err)
		}
		r.guest.Kill() // the guest OS dies right after the ack
	})
	var got []byte
	r.s.Spawn(nil, "check", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		got, _ = r.logPart.Read(p, 100, 16)
	})
	if err := r.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("acknowledged write lost after guest crash (hypervisor drain failed)")
	}
}

func TestPowerFailureDumpAndRecover(t *testing.T) {
	r := newRig(t, 4, power.PSUMeasured, Config{})
	var acked [][2]interface{} // lba, data
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			lba := int64(i * 16)
			data := pattern(8192, byte(i+1))
			if err := r.l.Write(p, lba, data, false); err != nil {
				return
			}
			acked = append(acked, [2]interface{}{lba, data})
		}
		r.m.CutPower() // plug pulled right after the 20th ack
		p.Sleep(time.Hour)
	})
	var rep RecoveryReport
	var verified bool
	r.s.Spawn(nil, "operator", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		r.m.RestorePower()
		boot := r.s.NewDomain("boot")
		r.s.Spawn(boot, "recover", func(p *sim.Proc) {
			var err error
			rep, err = Recover(p, r.logPart, r.dump)
			if err != nil {
				t.Errorf("recover: %v", err)
				return
			}
			for _, a := range acked {
				lba, data := a[0].(int64), a[1].([]byte)
				got, err := r.logPart.Read(p, lba, len(data)/512)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("acked write at lba %d not durable after recovery", lba)
					return
				}
			}
			verified = true
		})
	})
	if err := r.s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(acked) != 20 {
		t.Fatalf("only %d writes acked before power cut", len(acked))
	}
	if !verified {
		t.Fatal("verification did not complete")
	}
	if !rep.HadDump {
		t.Fatal("no dump found (everything drained already? timing too generous)")
	}
	if rep.Torn {
		t.Fatal("dump was torn despite safe buffer bound")
	}
	if r.l.RapiStats().EmergencyRuns.Value() != 1 {
		t.Fatal("emergency flush did not run")
	}
}

func TestRecoverIsIdempotent(t *testing.T) {
	r := newRig(t, 5, power.PSUMeasured, Config{})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		_ = r.l.Write(p, 0, pattern(4096, 7), false)
		r.m.CutPower()
		p.Sleep(time.Hour)
	})
	r.s.Spawn(nil, "operator", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		r.m.RestorePower()
		boot := r.s.NewDomain("boot")
		r.s.Spawn(boot, "recover", func(p *sim.Proc) {
			rep1, err := Recover(p, r.logPart, r.dump)
			if err != nil {
				t.Errorf("first recover: %v", err)
			}
			rep2, err := Recover(p, r.logPart, r.dump)
			if err != nil {
				t.Errorf("second recover: %v", err)
			}
			if rep1.HadDump && rep2.HadDump {
				t.Error("second Recover replayed an already-consumed dump")
			}
		})
	})
	if err := r.s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestEmergencyWithEmptyBufferLeavesNoDump(t *testing.T) {
	r := newRig(t, 6, power.PSUMeasured, Config{})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		_ = r.l.Write(p, 0, pattern(4096, 1), false)
		p.Sleep(time.Second) // drain completes
		r.m.CutPower()
		p.Sleep(time.Hour)
	})
	r.s.Spawn(nil, "operator", func(p *sim.Proc) {
		p.Sleep(3 * time.Second)
		r.m.RestorePower()
		boot := r.s.NewDomain("boot")
		r.s.Spawn(boot, "recover", func(p *sim.Proc) {
			rep, err := Recover(p, r.logPart, r.dump)
			if err != nil {
				t.Errorf("recover: %v", err)
			}
			if rep.HadDump {
				t.Error("dump written despite empty buffer")
			}
		})
	})
	if err := r.s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestUnsafeOversizedBufferTearsOnTightPSU(t *testing.T) {
	// ATX-spec hold-up is too short to dump megabytes: the deadline lands
	// mid-dump and recovery sees a torn prefix. This is ablation A3's
	// mechanism and exactly why SafeBufferSize exists.
	s := sim.New(7)
	m := power.NewMachine(s, "m0", 4, power.PSUATXSpec)
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
	m.AttachDevice(hdd)
	logPart, _ := disk.NewPartition(hdd, "log", 0, 262144)
	dump, _ := disk.NewPartition(hdd, "dump", 262144, 262144)
	hvDom := m.NewDomain("hv")
	guest := m.NewDomain("guest")
	l, err := NewLogger(m, hvDom, logPart, dump, Config{MaxBuffer: 8 << 20, Unsafe: true})
	if err != nil {
		t.Fatal(err)
	}
	var acked int
	s.Spawn(guest, "db", func(p *sim.Proc) {
		for i := 0; i < 1500; i++ {
			if err := l.Write(p, int64(i*8), pattern(4096, byte(i)), false); err != nil {
				return
			}
			acked++
		}
		m.CutPower()
		p.Sleep(time.Hour)
	})
	var rep RecoveryReport
	s.Spawn(nil, "operator", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		m.RestorePower()
		boot := s.NewDomain("boot")
		s.Spawn(boot, "recover", func(p *sim.Proc) {
			rep, _ = Recover(p, logPart, dump)
		})
	})
	if err := s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !rep.HadDump {
		t.Fatal("no dump header on media at all")
	}
	if !rep.Torn {
		t.Fatalf("dump not torn (%d entries recovered) — expected the ATX deadline to cut it off", rep.Entries)
	}
	if rep.Entries >= acked {
		t.Fatalf("recovered %d >= acked %d, expected losses", rep.Entries, acked)
	}
}

func TestNewLoggerRejectsUnsafeBound(t *testing.T) {
	s := sim.New(8)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
	m.AttachDevice(hdd)
	logPart, _ := disk.NewPartition(hdd, "log", 0, 262144)
	dump, _ := disk.NewPartition(hdd, "dump", 262144, 262144)
	safe := SafeBufferSize(m, dump)
	if safe <= 0 {
		t.Fatal("no safe buffer for the measured PSU (model broken)")
	}
	if _, err := NewLogger(m, m.NewDomain("hv"), logPart, dump, Config{MaxBuffer: safe * 2}); err == nil {
		t.Fatal("oversized MaxBuffer accepted without Unsafe")
	}
	if _, err := NewLogger(m, m.NewDomain("hv2"), logPart, dump, Config{MaxBuffer: safe * 2, Unsafe: true}); err != nil {
		// Still subject to the zone capacity check, which 2×safe passes here.
		t.Fatalf("Unsafe oversize rejected: %v", err)
	}
}

func TestNewLoggerRejectsHopelessPSU(t *testing.T) {
	s := sim.New(9)
	// Hold-up shorter than the interrupt latency: no budget at all.
	m := power.NewMachine(s, "m0", 4, power.PSUConfig{
		Name: "hopeless", HoldupMin: time.Millisecond, HoldupMax: time.Millisecond,
		InterruptLatency: 2 * time.Millisecond,
	})
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
	m.AttachDevice(hdd)
	logPart, _ := disk.NewPartition(hdd, "log", 0, 262144)
	dump, _ := disk.NewPartition(hdd, "dump", 262144, 262144)
	if _, err := NewLogger(m, m.NewDomain("hv"), logPart, dump, Config{}); err == nil {
		t.Fatal("logger created with zero flush budget")
	}
}

func TestOversizedSingleWriteRejected(t *testing.T) {
	r := newRig(t, 10, power.PSUMeasured, Config{MaxBuffer: 4096})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		err := r.l.Write(p, 0, pattern(8192, 1), false)
		if !errors.Is(err, ErrTooLarge) {
			t.Errorf("oversized write: %v", err)
		}
	})
	if err := r.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSafeBufferSizeScalesWithHoldup(t *testing.T) {
	s := sim.New(11)
	mk := func(psu power.PSUConfig) int64 {
		m := power.NewMachine(s, "m-"+psu.Name, 4, psu)
		hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
		dump, _ := disk.NewPartition(hdd, "dump", 0, 1<<20)
		return SafeBufferSize(m, dump)
	}
	spec := mk(power.PSUATXSpec)
	typ := mk(power.PSUTypical)
	meas := mk(power.PSUMeasured)
	if !(spec < typ && typ < meas) {
		t.Fatalf("SafeBufferSize not monotone in hold-up: %d, %d, %d", spec, typ, meas)
	}
	if meas <= 0 {
		t.Fatal("measured PSU gives no budget")
	}
}

func TestWriteValidation(t *testing.T) {
	r := newRig(t, 12, power.PSUMeasured, Config{})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		if err := r.l.Write(p, 0, pattern(100, 1), false); !errors.Is(err, disk.ErrMisaligned) {
			t.Errorf("misaligned: %v", err)
		}
		if err := r.l.Write(p, r.l.Sectors(), pattern(512, 1), false); !errors.Is(err, disk.ErrOutOfRange) {
			t.Errorf("out of range: %v", err)
		}
	})
	if err := r.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
}

// The central durability property, randomised: under random write sequences
// and a power cut at a random moment, every write acknowledged before the
// cut is present in the log partition after dump recovery.
func TestDurabilityUnderRandomPowerCutProperty(t *testing.T) {
	prop := func(seed int64, cutAfterWrites uint8) bool {
		r := newRig(t, seed, power.PSUMeasured, Config{})
		cut := int(cutAfterWrites%40) + 1
		type ackRec struct {
			lba  int64
			data []byte
		}
		var acked []ackRec
		r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
			lba := int64(0)
			for i := 0; ; i++ {
				n := (1 + r.s.Rand().Intn(16)) * 512
				data := pattern(n, byte(i+1))
				if err := r.l.Write(p, lba, data, false); err != nil {
					return
				}
				acked = append(acked, ackRec{lba, data})
				lba += int64(n / 512)
				if len(acked) >= cut {
					r.m.CutPower()
					p.Sleep(time.Hour)
				}
				if r.s.Rand().Intn(3) == 0 {
					p.Sleep(time.Duration(r.s.Rand().Intn(2000)) * time.Microsecond)
				}
			}
		})
		ok := true
		r.s.Spawn(nil, "operator", func(p *sim.Proc) {
			p.Sleep(3 * time.Second)
			r.m.RestorePower()
			boot := r.s.NewDomain("boot")
			r.s.Spawn(boot, "recover", func(p *sim.Proc) {
				if _, err := Recover(p, r.logPart, r.dump); err != nil {
					ok = false
					return
				}
				for _, a := range acked {
					got, err := r.logPart.Read(p, a.lba, len(a.data)/512)
					if err != nil || !bytes.Equal(got, a.data) {
						ok = false
						return
					}
				}
			})
		})
		if err := r.s.RunFor(10 * time.Second); err != nil {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		if !ok {
			t.Logf("seed=%d cut=%d: acked write lost", seed, cut)
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDrainCoalescesContiguousWrites(t *testing.T) {
	r := newRig(t, 13, power.PSUMeasured, Config{})
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		// 16 back-to-back 4KiB appends: classic log tail behaviour.
		for i := 0; i < 16; i++ {
			_ = r.l.Write(p, int64(i*8), pattern(4096, byte(i)), false)
		}
	})
	if err := r.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// All 16 appends should drain in very few physical writes.
	w := r.hdd.Stats().Writes.Value()
	if w > 4 {
		t.Fatalf("drain used %d physical writes for 16 contiguous appends, want coalescing", w)
	}
	if r.l.RapiStats().DrainedBytes.Value() != 16*4096 {
		t.Fatalf("drained bytes = %d", r.l.RapiStats().DrainedBytes.Value())
	}
}

func TestLoggerDeviceAccessors(t *testing.T) {
	r := newRig(t, 14, power.PSUMeasured, Config{})
	if r.l.SectorSize() != r.logPart.SectorSize() || r.l.Sectors() != r.logPart.Sectors() {
		t.Fatal("geometry not delegated")
	}
	if r.l.Name() == "" || r.l.MaxBuffer() <= 0 {
		t.Fatal("accessor defaults wrong")
	}
	if fmt.Sprint(r.l.SeqWriteBandwidth()) == "0" {
		t.Fatal("zero copy bandwidth")
	}
}

func TestUPSHoldupIsZoneCapped(t *testing.T) {
	// With a UPS-class hold-up, the budget term is enormous and the dump
	// zone's payload capacity becomes the binding constraint.
	s := sim.New(15)
	m := power.NewMachine(s, "m0", 4, power.PSUWithUPS)
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
	dump, _ := disk.NewPartition(hdd, "dump", 0, 131072) // 64 MiB
	safe := SafeBufferSize(m, dump)
	if want := zonePayloadCapacity(dump); safe != want {
		t.Fatalf("UPS safe bound %d, want zone cap %d", safe, want)
	}
}
