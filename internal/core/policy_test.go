package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/power"
	"repro/internal/sim"
)

// fakeReplicator records shipped writes and releases quorum waiters when
// told to. It stands in for internal/replica so the policy mechanics can
// be tested without a network.
type fakeReplicator struct {
	s       *sim.Sim
	next    uint64
	acked   uint64
	sig     *sim.Signal
	shipped []struct {
		lba  int64
		data []byte
	}
}

func newFakeReplicator(s *sim.Sim) *fakeReplicator {
	return &fakeReplicator{s: s, sig: s.NewSignal("fake.repl")}
}

func (f *fakeReplicator) Ship(lba int64, data []byte) uint64 {
	f.next++
	cp := append([]byte(nil), data...)
	f.shipped = append(f.shipped, struct {
		lba  int64
		data []byte
	}{lba, cp})
	return f.next
}

func (f *fakeReplicator) WaitQuorum(p *sim.Proc, seq uint64, k int) {
	for f.acked < seq {
		f.sig.Wait(p)
	}
}

func (f *fakeReplicator) ackUpTo(seq uint64) {
	f.acked = seq
	f.sig.Broadcast()
}

func TestQuorumPolicyBlocksAckUntilReplicasHold(t *testing.T) {
	s := sim.New(1)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	r := buildRigOn(t, s, m, func(fr *fakeReplicator) Config {
		return Config{Policy: AckQuorum(1), Replicator: fr}
	})
	var ackedAt sim.Time
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		if err := r.l.Write(p, 0, pattern(4096, 1), false); err != nil {
			t.Errorf("write: %v", err)
		}
		ackedAt = p.Now()
	})
	// Release the quorum only at t=5ms: the ack must not happen earlier.
	fr := r.l.cfg.Replicator.(*fakeReplicator)
	s.After(5*time.Millisecond, func() { fr.ackUpTo(1) })
	if err := s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ackedAt == 0 {
		t.Fatal("write never acked")
	}
	if ackedAt < sim.Time(5*time.Millisecond) {
		t.Fatalf("quorum write acked at %v, before the replica ack", ackedAt)
	}
	if len(fr.shipped) != 1 || fr.shipped[0].lba != 0 {
		t.Fatalf("shipped %v, want the one write", fr.shipped)
	}
}

// buildRigOn mirrors newRig but lets the caller construct the Config
// against the live sim (the fake replicator needs the sim's signal).
func buildRigOn(t *testing.T, s *sim.Sim, m *power.Machine, mk func(*fakeReplicator) Config) *rig {
	t.Helper()
	fr := newFakeReplicator(s)
	r := &rig{s: s, m: m}
	var err error
	r.hdd = disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
	m.AttachDevice(r.hdd)
	r.logPart, err = disk.NewPartition(r.hdd, "log", 0, 262144)
	if err != nil {
		t.Fatal(err)
	}
	r.dump, err = disk.NewPartition(r.hdd, "dump", 262144, 262144)
	if err != nil {
		t.Fatal(err)
	}
	r.hvDom = m.NewDomain("hv")
	r.guest = m.NewDomain("guest")
	r.l, err = NewLogger(m, r.hvDom, r.logPart, r.dump, mk(fr))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEveryDurablePathShips(t *testing.T) {
	s := sim.New(3)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	r := buildRigOn(t, s, m, func(fr *fakeReplicator) Config {
		return Config{Policy: AckLocal(), Replicator: fr}
	})
	fr := r.l.cfg.Replicator.(*fakeReplicator)
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		_ = r.l.Write(p, 0, pattern(512, 1), false) // fresh insert
		_ = r.l.Write(p, 0, pattern(512, 2), false) // absorbed rewrite
	})
	if err := s.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fr.shipped) != 2 {
		t.Fatalf("shipped %d writes, want 2 (insert + absorbed rewrite)", len(fr.shipped))
	}
	if fr.shipped[1].data[0] != pattern(512, 2)[0] {
		t.Fatal("absorbed rewrite shipped stale bytes")
	}
}

func TestRemoteOnlyRelaxesSafeBound(t *testing.T) {
	s := sim.New(5)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	// 64 MiB is far beyond the local safe bound for a stock HDD +
	// PSUMeasured; remote-only accepts it without Unsafe.
	r := buildRigOn(t, s, m, func(fr *fakeReplicator) Config {
		return Config{Policy: AckRemoteOnly(1), Replicator: fr, MaxBuffer: 64 << 20}
	})
	if r.l.MaxBuffer() != 64<<20 {
		t.Fatalf("MaxBuffer = %d", r.l.MaxBuffer())
	}
}

func TestRemoteOnlySkipsEmergencyDump(t *testing.T) {
	s := sim.New(7)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	r := buildRigOn(t, s, m, func(fr *fakeReplicator) Config {
		return Config{Policy: AckRemoteOnly(1), Replicator: fr}
	})
	fr := r.l.cfg.Replicator.(*fakeReplicator)
	r.s.Spawn(r.guest, "db", func(p *sim.Proc) {
		// Pre-ack so the remote-only quorum wait resolves instantly.
		fr.ackUpTo(1 << 30)
		_ = r.l.Write(p, 0, pattern(4096, 1), false)
	})
	s.After(2*time.Millisecond, func() { m.CutPower() })
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := r.l.RapiStats().DumpedBytes.Value(); got != 0 {
		t.Fatalf("remote-only policy dumped %d bytes to the local zone", got)
	}
	if r.l.RapiStats().EmergencyRuns.Value() != 1 {
		t.Fatal("emergency handler did not run")
	}
}

func TestQuorumPolicyRequiresReplicator(t *testing.T) {
	s := sim.New(9)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
	m.AttachDevice(hdd)
	logPart, _ := disk.NewPartition(hdd, "log", 0, 262144)
	dump, _ := disk.NewPartition(hdd, "dump", 262144, 262144)
	_, err := NewLogger(m, m.NewDomain("hv"), logPart, dump, Config{Policy: AckQuorum(1)})
	if err == nil || !strings.Contains(err.Error(), "requires a replicator") {
		t.Fatalf("err = %v, want replicator requirement", err)
	}
}

func TestParseAckPolicy(t *testing.T) {
	cases := []struct {
		kind string
		k    int
		want string
	}{
		{"local", 0, "local"},
		{"", 3, "local"},
		{"quorum", 2, "quorum(2)"},
		{"remote-only", 1, "remote-only(1)"},
		{"remote", 2, "remote-only(2)"},
	}
	for _, c := range cases {
		pol, err := ParseAckPolicy(c.kind, c.k)
		if err != nil {
			t.Fatalf("ParseAckPolicy(%q): %v", c.kind, err)
		}
		if pol.String() != c.want {
			t.Fatalf("ParseAckPolicy(%q, %d) = %v, want %s", c.kind, c.k, pol, c.want)
		}
	}
	if _, err := ParseAckPolicy("bogus", 1); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// countedReplicator exposes how many replicas back the fake, the way the
// real Shipper does via ReplicaCount.
type countedReplicator struct {
	*fakeReplicator
	n int
}

func (c countedReplicator) ReplicaCount() int { return c.n }

// TestQuorumPolicyRejectsOverlargeK: a quorum the replica set can never
// form would park every writer forever; NewLogger must reject it up front.
func TestQuorumPolicyRejectsOverlargeK(t *testing.T) {
	s := sim.New(29)
	m := power.NewMachine(s, "m0", 4, power.PSUMeasured)
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{})
	m.AttachDevice(hdd)
	logPart, err := disk.NewPartition(hdd, "log", 0, 262144)
	if err != nil {
		t.Fatal(err)
	}
	dump, err := disk.NewPartition(hdd, "dump", 262144, 262144)
	if err != nil {
		t.Fatal(err)
	}
	fr := countedReplicator{newFakeReplicator(s), 1}
	hv := m.NewDomain("hv")
	if _, err := NewLogger(m, hv, logPart, dump, Config{Policy: AckQuorum(2), Replicator: fr}); err == nil {
		t.Fatal("quorum k=2 accepted with a 1-replica replicator")
	}
	if _, err := NewLogger(m, hv, logPart, dump, Config{Policy: AckQuorum(1), Replicator: fr}); err != nil {
		t.Fatalf("k within the replica set rejected: %v", err)
	}
}

// TestValidateQuorumFlags: CLI quorum/replica combinations are vetted
// before any deployment is constructed — an unsatisfiable quorum or a
// negative count must fail as a usage error, not a deep rig failure.
func TestValidateQuorumFlags(t *testing.T) {
	cases := []struct {
		quorum, replicas int
		wantErr          string // substring; "" means accepted
	}{
		{0, 0, ""},
		{1, 0, ""}, // default replica pool of 2
		{2, 0, ""},
		{2, 2, ""},
		{3, 3, ""},
		{-1, 0, "negative"},
		{0, -2, "negative"},
		{3, 0, "exceeds"}, // over the default pool
		{3, 2, "exceeds"},
	}
	for _, c := range cases {
		err := ValidateQuorumFlags(c.quorum, c.replicas)
		if c.wantErr == "" {
			if err != nil {
				t.Fatalf("ValidateQuorumFlags(%d, %d): %v", c.quorum, c.replicas, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("ValidateQuorumFlags(%d, %d) = %v, want error containing %q",
				c.quorum, c.replicas, err, c.wantErr)
		}
	}
}
