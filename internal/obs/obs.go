// Package obs is the observability substrate of the RapiLog simulation:
// a virtual-time tracer for the commit lifecycle, a central metrics
// registry every layer registers its instruments with, a durability-
// exposure audit derived from trace events, and structured (JSON) export
// of both.
//
// The package exists because RapiLog's safety argument is quantitative:
// acknowledged-but-not-yet-durable bytes must stay under the provably
// dumpable bound. The tracer records every transition a write makes —
//
//	tx begin → WAL append → log-write submit → hypervisor ack →
//	drain start → durable-on-disk (or power-fail dump)
//
// — and the audit replays those events into the exposure time-series the
// paper reasons about, checking its peak against the configured bound.
//
// Everything here runs on the single-threaded simulation kernel, so no
// locking is needed. All entry points are nil-safe: a nil *Obs, *Tracer or
// *Registry behaves as "disabled" (tracer) or "unregistered instruments"
// (registry), which is what keeps the hot paths at near-zero cost when
// observability is off.
package obs

// Config parameterises an Obs bundle.
type Config struct {
	// TraceEnabled turns the commit-lifecycle tracer on. Off by default:
	// the tracer is a nil pointer and every Emit is a single branch.
	TraceEnabled bool
	// TraceCapacity bounds the trace ring buffer in events; default 1<<16.
	// When the ring wraps, the oldest events are overwritten and the audit
	// reports the trace as truncated.
	TraceCapacity int
}

// Obs bundles the tracer and the registry for one deployment.
type Obs struct {
	trace *Tracer
	reg   *Registry
}

// New creates an Obs bundle. The registry is always live; the tracer only
// when cfg.TraceEnabled is set.
func New(cfg Config) *Obs {
	o := &Obs{reg: NewRegistry()}
	if cfg.TraceEnabled {
		cap := cfg.TraceCapacity
		if cap <= 0 {
			cap = 1 << 16
		}
		o.trace = NewTracer(cap)
	}
	return o
}

// Tracer returns the bundle's tracer, or nil when tracing is disabled or o
// itself is nil. A nil *Tracer is valid: all its methods are no-ops.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.trace
}

// Registry returns the bundle's registry, or nil when o is nil. A nil
// *Registry is valid: instruments are created unregistered.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Sub returns a bundle whose registry prefixes every instrument name with
// prefix (see Registry.Sub) while sharing the tracer. Sharded deployments
// hand each shard Sub("shard.<i>") so one snapshot of the root registry
// carries every shard's instruments under distinct names.
func (o *Obs) Sub(prefix string) *Obs {
	if o == nil {
		return nil
	}
	return &Obs{trace: o.trace, reg: o.reg.Sub(prefix)}
}
