package obs

import "time"

// Kind is the type of a trace event. The vocabulary covers the full commit
// lifecycle, from the transaction's first instruction to the moment its
// bytes are on a platter (or in the power-fail dump zone).
type Kind uint8

// The event vocabulary. Arg1/Arg2 meanings are per kind.
const (
	// EvTxBegin: a transaction started. Span = tx span, Arg1 = txid.
	EvTxBegin Kind = iota + 1
	// EvWalAppend: a redo/commit record was framed into the WAL.
	// Parent = tx span, Arg1 = LSN, Arg2 = payload bytes.
	EvWalAppend
	// EvLogSubmit: the WAL submitted a physical write of sealed blocks to
	// the log device. Span = force span, Arg1 = target LSN, Arg2 = bytes.
	EvLogSubmit
	// EvLogComplete: the physical force finished; everything below Arg1 is
	// on the log device. Parent = force span, Arg1 = flushed LSN.
	EvLogComplete
	// EvTxAck: the commit returned to the client — the guest-visible
	// acknowledgement. Parent = tx span, Arg1 = txid.
	EvTxAck
	// EvTxDurable: the commit record passed the WAL durability horizon
	// (on the log device; under RapiLog that device is the dependable
	// buffer). Parent = tx span, Arg1 = txid.
	EvTxDurable
	// EvHvAck: the RapiLog device copied a write into hypervisor memory
	// and acknowledged it — exposure begins. Span = buffer-entry span,
	// Arg1 = lba, Arg2 = bytes.
	EvHvAck
	// EvHvAbsorb: a write was absorbed into an existing buffered entry.
	// Parent = that entry's span, Arg1 = lba, Arg2 = bytes.
	EvHvAbsorb
	// EvHvThrottle: a writer had to wait for buffer space (the bound at
	// work). Arg2 = bytes requested.
	EvHvThrottle
	// EvDrainStart: the background drain picked up a batch.
	// Span = drain-round span, Arg1 = entries, Arg2 = bytes.
	EvDrainStart
	// EvDurable: a buffered entry reached the physical log partition with
	// the volatile cache bypassed — exposure ends. Parent = the entry's
	// EvHvAck span, Arg1 = lba, Arg2 = bytes.
	EvDurable
	// EvDumpStart: the power-fail interrupt fired and the emergency dump
	// began. Span = dump span, Arg1 = entries, Arg2 = buffered bytes.
	EvDumpStart
	// EvDumpDone: the dump image is in the dump zone; everything still
	// buffered is safe. Parent = dump span, Arg2 = payload bytes.
	EvDumpDone
	// EvPowerFail: AC was lost; the hold-up race began. Arg1 = hold-up ns.
	EvPowerFail
	// EvPowerDC: the hold-up window closed; DC rails collapsed.
	EvPowerDC
	// EvPowerRestore: power returned.
	EvPowerRestore
	// EvDrainError: a drain-path backing write failed and will be retried.
	// Arg1 = lba, Arg2 = attempt number.
	EvDrainError
	// EvDegraded: the drain retry budget ran out; the RapiLog device fell
	// back to synchronous pass-through. Arg1 = stranded entries,
	// Arg2 = stranded bytes.
	EvDegraded
	// EvRestored: the stranded buffer finally drained; the device returned
	// to buffered operation.
	EvRestored
	// EvShip: the shipper framed a buffered log write into a replication
	// record and sent it to every standby. Span = ship span, Parent = the
	// buffer-entry span (EvHvAck/EvHvAbsorb) the record carries,
	// Arg1 = stream sequence number, Arg2 = payload bytes.
	EvShip
	// EvFrame: the shipper coalesced pending records into one wire frame
	// and transmitted it (one fabric message per replica instead of one
	// per record). Span = frame span (the causal span net events carry),
	// Arg1 = records in the frame, Arg2 = wire bytes. Per-record causality
	// is unaffected: each record still gets its own EvShip, and standby
	// applies/acks still parent under the record's ship span.
	EvFrame
	// EvNetSend: the fabric accepted a message for delivery.
	// Parent = causal span (ship span for records, zero for control
	// traffic), Arg1 = wire bytes, Arg2 = destination label id.
	EvNetSend
	// EvNetDeliver: a message reached its destination endpoint.
	// Parent = causal span, Arg1 = wire bytes, Arg2 = destination label id.
	EvNetDeliver
	// EvNetDrop: the fabric dropped a message (loss or partition).
	// Parent = causal span, Arg1 = wire bytes, Arg2 = destination label id.
	EvNetDrop
	// EvNetDup: the fabric duplicated a message; a second copy is in
	// flight. Parent = causal span, Arg1 = wire bytes, Arg2 = destination
	// label id.
	EvNetDup
	// EvReplicaApply: a standby applied a record to its local stream in
	// order. Parent = ship span, Arg1 = sequence, Arg2 = replica label id.
	EvReplicaApply
	// EvReplicaAck: the primary learned (via a cumulative ack) that a
	// standby holds this record. Parent = ship span, Arg1 = sequence,
	// Arg2 = replica label id.
	EvReplicaAck
	// EvQuorumMet: the k-th distinct standby acked this sequence — the
	// quorum barrier for the record is down. Parent = ship span,
	// Arg1 = sequence, Arg2 = k.
	EvQuorumMet
	// EvRepair: the shipper resent a window of unacked records to a lagging
	// or hole-reporting standby. Arg1 = replica label id, Arg2 = records
	// resent.
	EvRepair
	// EvEvict: a dead standby was evicted from the retention set; records
	// it never acked may now be truncated. Arg1 = replica label id,
	// Arg2 = retained bytes at eviction.
	EvEvict
	// EvEpoch: a new shipper epoch began (assembly or post-power-cycle
	// reassembly); stream sequence numbers restart. Arg1 = epoch,
	// Arg2 = standby count.
	EvEpoch
	// EvViolation: the online invariant monitor detected a violation.
	// Arg1 = invariant ordinal (see monitor.go), Arg2 = violation count so
	// far for that invariant.
	EvViolation
	// EvElect: the HA coordinator elected a takeover candidate — the node
	// with the highest quorum-covered (epoch, seq) prefix among reachable
	// standbys. Span = failover span, Arg1 = winner label id, Arg2 = the
	// winner's applied seq in its newest epoch.
	EvElect
	// EvFence: the coordinator fenced the cluster at a new epoch; stale-
	// epoch records and acks are rejected everywhere from this point.
	// Parent = failover span, Arg1 = fenced epoch, Arg2 = fence acks
	// collected.
	EvFence
	// EvPromote: the elected standby finished promotion — its applied prefix
	// is replayed into a fresh engine/WAL stack and a new shipper serves the
	// fenced epoch. Parent = failover span, Arg1 = new leader label id,
	// Arg2 = replayed bytes.
	EvPromote
	// EvRedirect: a client session chased the leadership change — its op hit
	// a dead or deposed leader and was retried against the directory's new
	// one. Arg1 = new leader label id, Arg2 = session retry count.
	EvRedirect
)

var kindNames = map[Kind]string{
	EvTxBegin:      "tx_begin",
	EvWalAppend:    "wal_append",
	EvLogSubmit:    "log_submit",
	EvLogComplete:  "log_complete",
	EvTxAck:        "tx_ack",
	EvTxDurable:    "tx_durable",
	EvHvAck:        "hv_ack",
	EvHvAbsorb:     "hv_absorb",
	EvHvThrottle:   "hv_throttle",
	EvDrainStart:   "drain_start",
	EvDurable:      "durable",
	EvDumpStart:    "dump_start",
	EvDumpDone:     "dump_done",
	EvPowerFail:    "power_fail",
	EvPowerDC:      "power_dc_loss",
	EvPowerRestore: "power_restore",
	EvDrainError:   "drain_error",
	EvDegraded:     "degraded",
	EvRestored:     "restored",
	EvShip:         "ship",
	EvFrame:        "frame",
	EvNetSend:      "net_send",
	EvNetDeliver:   "net_deliver",
	EvNetDrop:      "net_drop",
	EvNetDup:       "net_dup",
	EvReplicaApply: "replica_apply",
	EvReplicaAck:   "replica_ack",
	EvQuorumMet:    "quorum_met",
	EvRepair:       "repair",
	EvEvict:        "evict",
	EvEpoch:        "epoch",
	EvViolation:    "violation",
	EvElect:        "elect",
	EvFence:        "fence",
	EvPromote:      "promote",
	EvRedirect:     "redirect",
}

// kindByName is the inverse of kindNames, for decoding trace JSON.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// KindByName resolves a stable wire name back to its Kind; ok is false for
// unknown names.
func KindByName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// String returns the stable wire name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// SpanID identifies one traced activity. Zero means "no span". Events link
// into trees via Parent: a tx span parents its WAL appends; a buffer-entry
// span parents the durable event that retires it.
type SpanID uint64

// Event is one typed trace record. Events are plain values in a
// preallocated ring: emitting one allocates nothing.
type Event struct {
	At     time.Duration // virtual time since simulation start
	Kind   Kind
	Span   SpanID
	Parent SpanID
	Arg1   int64
	Arg2   int64
}

// Tracer records Events into a fixed-capacity ring buffer. A nil Tracer is
// the disabled state: Emit and NewSpan are single-branch no-ops, which is
// what keeps the instrumented hot paths free when tracing is off.
type Tracer struct {
	buf      []Event
	n        uint64 // total events emitted (ring head = n % len(buf))
	nextSpan uint64

	// cause is the implicit causal context: a span id set by a caller just
	// before crossing a layer boundary whose interface carries no trace
	// context (disk.Device.Write, Replicator.Ship), and consumed by the
	// callee as its parent. The simulation is single-threaded and the
	// instrumented calls are synchronous, so a plain slot suffices.
	cause SpanID

	labels   map[string]int64
	labelSeq int64

	observer  func(Event)
	notifying bool
}

// NewTracer creates an enabled tracer with the given ring capacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// SetCause plants the implicit causal context consumed by the next
// TakeCause. Callers set it immediately before a synchronous call into a
// layer whose interface has no trace-context parameter.
func (t *Tracer) SetCause(s SpanID) {
	if t != nil {
		t.cause = s
	}
}

// TakeCause consumes and clears the implicit causal context (zero when
// unset or disabled).
func (t *Tracer) TakeCause() SpanID {
	if t == nil {
		return 0
	}
	c := t.cause
	t.cause = 0
	return c
}

// ClearCause drops any planted causal context; callers use it after the
// callee returns so a cause never leaks across unrelated calls.
func (t *Tracer) ClearCause() {
	if t != nil {
		t.cause = 0
	}
}

// Label interns a name (an endpoint, a replica) and returns its stable
// small integer id for use in event args. Ids start at 1; zero means
// "no label" (and is all a nil tracer returns).
func (t *Tracer) Label(name string) int64 {
	if t == nil {
		return 0
	}
	if id, ok := t.labels[name]; ok {
		return id
	}
	if t.labels == nil {
		t.labels = make(map[string]int64)
	}
	t.labelSeq++
	t.labels[name] = t.labelSeq
	return t.labelSeq
}

// Labels returns a copy of the interned label table (name → id).
func (t *Tracer) Labels() map[string]int64 {
	if t == nil || len(t.labels) == 0 {
		return nil
	}
	out := make(map[string]int64, len(t.labels))
	for n, id := range t.labels {
		out[n] = id
	}
	return out
}

// SetObserver installs the single online subscriber invoked on every Emit
// (the invariant monitor / flight-recorder hook). Events emitted from
// inside the observer are recorded in the ring but do not re-enter the
// observer, so a subscriber may safely emit trace marks.
func (t *Tracer) SetObserver(fn func(Event)) {
	if t != nil {
		t.observer = fn
	}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// NewSpan allocates a span id (zero when disabled).
func (t *Tracer) NewSpan() SpanID {
	if t == nil {
		return 0
	}
	t.nextSpan++
	return SpanID(t.nextSpan)
}

// Emit records one event at virtual time `at`.
func (t *Tracer) Emit(at time.Duration, kind Kind, span, parent SpanID, arg1, arg2 int64) {
	if t == nil {
		return
	}
	e := Event{At: at, Kind: kind, Span: span, Parent: parent, Arg1: arg1, Arg2: arg2}
	t.buf[t.n%uint64(len(t.buf))] = e
	t.n++
	if t.observer != nil && !t.notifying {
		t.notifying = true
		t.observer(e)
		t.notifying = false
	}
}

// Emitted returns the total number of events emitted, including any the
// ring has since overwritten.
func (t *Tracer) Emitted() int {
	if t == nil {
		return 0
	}
	return int(t.n)
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	if t.n <= uint64(len(t.buf)) {
		return 0
	}
	return int(t.n - uint64(len(t.buf)))
}

// Events returns the retained events in emission order (a copy).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	cap64 := uint64(len(t.buf))
	if t.n <= cap64 {
		out := make([]Event, t.n)
		copy(out, t.buf[:t.n])
		return out
	}
	out := make([]Event, cap64)
	head := t.n % cap64
	copy(out, t.buf[head:])
	copy(out[cap64-head:], t.buf[:head])
	return out
}
