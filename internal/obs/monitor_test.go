package obs

import (
	"bytes"
	"testing"
	"time"
)

// ev is shorthand for building synthetic monitor input.
func ev(at time.Duration, k Kind, span, parent SpanID, a1, a2 int64) Event {
	return Event{At: at, Kind: k, Span: span, Parent: parent, Arg1: a1, Arg2: a2}
}

// cleanQuorumStream is a minimal fully-evidenced quorum commit: begin,
// append, buffer insert under a force, ship, replica ack, quorum, flush,
// ack, drain.
func cleanQuorumStream() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Event{
		ev(ms(1), EvTxBegin, 1, 0, 0, 0),
		ev(ms(2), EvWalAppend, 0, 1, 100, 64),
		ev(ms(3), EvHvAck, 2, 10, 7, 512), // entry span 2, force span 10
		ev(ms(3), EvShip, 3, 2, 1, 512),   // ship span 3, seq 1
		ev(ms(4), EvReplicaAck, 0, 3, 1, 1),
		ev(ms(4), EvQuorumMet, 0, 3, 1, 1),
		ev(ms(5), EvLogComplete, 0, 10, 100, 0),
		ev(ms(6), EvTxAck, 0, 1, 0, 0),
		ev(ms(9), EvDurable, 0, 2, 7, 512),
	}
}

func TestMonitorCleanQuorumStream(t *testing.T) {
	rep := RunMonitor(cleanQuorumStream(), MonitorConfig{
		Bound: 4096, Policy: PolicyQuorum, QuorumK: 1,
	})
	if rep.Total != 0 {
		t.Fatalf("clean stream flagged: %+v", rep)
	}
	if rep.TxAcked != 1 {
		t.Fatalf("TxAcked = %d, want 1", rep.TxAcked)
	}
}

func TestMonitorDetectsExposureOverBound(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	m := NewMonitor(MonitorConfig{Bound: 1000})
	m.Consume(ev(ms(1), EvHvAck, 2, 0, 0, 800))
	if m.Total() != 0 {
		t.Fatalf("under-bound exposure flagged")
	}
	m.Consume(ev(ms(2), EvHvAck, 3, 0, 1, 800)) // 1600 > 1000
	if m.Total() != 1 {
		t.Fatalf("Total = %d after crossing bound, want 1", m.Total())
	}
	// Same episode: no re-fire while still above the bound.
	m.Consume(ev(ms(3), EvHvAck, 4, 0, 2, 100))
	if m.Total() != 1 {
		t.Fatalf("Total = %d, episode re-fired", m.Total())
	}
	// Drain below the bound, then cross again: a new episode fires.
	m.Consume(ev(ms(4), EvDurable, 0, 2, 0, 0))
	m.Consume(ev(ms(5), EvDurable, 0, 3, 1, 0))
	m.Consume(ev(ms(6), EvHvAck, 5, 0, 3, 2000))
	if m.Total() != 2 {
		t.Fatalf("Total = %d after second episode, want 2", m.Total())
	}
	rep := m.Report()
	if rep.ByKind[InvExposure.String()] != 2 {
		t.Fatalf("ByKind = %v", rep.ByKind)
	}
}

func TestMonitorDetectsAckBeforeLocalFlush(t *testing.T) {
	var events []Event
	for _, e := range cleanQuorumStream() {
		if e.Kind == EvLogComplete {
			continue // the commit's covering force never completes
		}
		events = append(events, e)
	}
	rep := RunMonitor(events, MonitorConfig{Policy: PolicyLocal})
	if rep.ByKind[InvAckEvidence.String()] != 1 {
		t.Fatalf("missing-flush ack not flagged: %+v", rep)
	}
}

func TestMonitorDetectsAckWithoutQuorumEvidence(t *testing.T) {
	var events []Event
	for _, e := range cleanQuorumStream() {
		if e.Kind == EvQuorumMet {
			continue // quorum never met, yet the tx acks
		}
		events = append(events, e)
	}
	// Under the local policy this stream is fine...
	if rep := RunMonitor(events, MonitorConfig{Policy: PolicyLocal}); rep.Total != 0 {
		t.Fatalf("local policy flagged quorum-free stream: %+v", rep)
	}
	// ...under a quorum policy it is an ack without evidence.
	rep := RunMonitor(events, MonitorConfig{Policy: PolicyQuorum, QuorumK: 1})
	if rep.ByKind[InvAckEvidence.String()] != 1 {
		t.Fatalf("quorum-free ack not flagged: %+v", rep)
	}
}

func TestMonitorDetectsAckRegression(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	events := []Event{
		ev(ms(1), EvReplicaAck, 0, 3, 5, 1),
		ev(ms(2), EvReplicaAck, 0, 3, 3, 1), // replica 1 regresses
		ev(ms(3), EvReplicaAck, 0, 3, 3, 2), // replica 2 is just behind, fine
	}
	rep := RunMonitor(events, MonitorConfig{})
	if rep.ByKind[InvAckMonotone.String()] != 1 {
		t.Fatalf("ack regression not flagged: %+v", rep)
	}
}

func TestMonitorDetectsRetentionOverGrace(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("repl.retained_bytes")
	m := NewMonitor(MonitorConfig{RetainLimit: 100, RetainGrace: 10 * time.Millisecond, Reg: reg})

	g.Set(500)
	m.Tick(1 * time.Millisecond) // episode starts
	m.Tick(5 * time.Millisecond) // within grace
	if m.Total() != 0 {
		t.Fatalf("retention flagged inside the grace window")
	}
	m.Tick(20 * time.Millisecond)
	if m.Total() != 1 {
		t.Fatalf("Total = %d after grace expiry, want 1", m.Total())
	}
	m.Tick(30 * time.Millisecond) // fire-once per episode
	if m.Total() != 1 {
		t.Fatalf("retention episode re-fired")
	}
	g.Set(50)
	m.Tick(40 * time.Millisecond) // recovered
	g.Set(500)
	m.Tick(41 * time.Millisecond)
	m.Tick(60 * time.Millisecond) // new episode, new violation
	if m.Total() != 2 {
		t.Fatalf("Total = %d after second episode, want 2", m.Total())
	}
}

func TestMonitorEpochResetsSequenceState(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	events := []Event{
		ev(ms(1), EvReplicaAck, 0, 3, 5, 1),
		ev(ms(2), EvEpoch, 0, 0, 2, 2), // new stream: seq restarts
		ev(ms(3), EvReplicaAck, 0, 4, 1, 1),
	}
	if rep := RunMonitor(events, MonitorConfig{}); rep.Total != 0 {
		t.Fatalf("post-epoch seq restart flagged: %+v", rep)
	}
}

func TestMonitorObserverEmitsViolationMark(t *testing.T) {
	tr := NewTracer(64)
	m := NewMonitor(MonitorConfig{Bound: 100, Trace: tr})
	var got []Violation
	m.OnViolation = func(v Violation) { got = append(got, v) }
	tr.SetObserver(m.Consume)
	tr.Emit(time.Millisecond, EvHvAck, 2, 0, 0, 500)
	if len(got) != 1 || got[0].Invariant != InvExposure.String() {
		t.Fatalf("OnViolation = %+v", got)
	}
	found := false
	for _, e := range tr.Events() {
		if e.Kind == EvViolation && e.Arg1 == int64(InvExposure) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no EvViolation mark in the trace ring")
	}
}

func TestFlightRecorderFreezeRoundTrip(t *testing.T) {
	o := New(Config{TraceEnabled: true, TraceCapacity: 128})
	o.Registry().Counter("c").Add(7)
	tr := o.Tracer()
	tr.Label("standby0")
	mon := NewMonitor(MonitorConfig{Bound: 100, Trace: tr})
	tr.SetObserver(mon.Consume)

	fr := NewFlightRecorder(o, mon, FlightConfig{EventWindow: 8, SnapWindow: 4})
	for i := 0; i < 20; i++ {
		tr.Emit(time.Duration(i)*time.Millisecond, EvHvAck, SpanID(i+1), 0, int64(i), 10)
		fr.Snap(time.Duration(i) * time.Millisecond)
	}
	if fr.Frozen() {
		t.Fatalf("recorder froze with no trigger")
	}
	emitted := len(tr.Events()) // 20 hv_acks + the monitor's violation mark
	fr.Freeze(25*time.Millisecond, "power-dc-loss")
	fr.Freeze(30*time.Millisecond, "degraded") // first freeze wins
	rec := fr.Record()
	if rec == nil || rec.Reason != "power-dc-loss" {
		t.Fatalf("Record = %+v", rec)
	}
	if len(rec.Events) != 8 {
		t.Fatalf("kept %d events, want the 8-event window", len(rec.Events))
	}
	if rec.TruncatedEvents != emitted-8 {
		t.Fatalf("TruncatedEvents = %d, want %d", rec.TruncatedEvents, emitted-8)
	}
	if len(rec.Snapshots) != 4 {
		t.Fatalf("kept %d snapshots, want the 4-snap ring", len(rec.Snapshots))
	}
	if rec.Monitor == nil {
		t.Fatalf("no monitor verdict attached")
	}
	if rec.Monitor.Total == 0 {
		t.Fatalf("exposure violations not in verdict") // 10 B entries × 20 > bound? no: 10×20=200>100
	}

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadFlightRecord(&buf)
	if err != nil {
		t.Fatalf("ReadFlightRecord: %v", err)
	}
	if back.Reason != rec.Reason || back.AtNs != rec.AtNs ||
		len(back.Events) != len(rec.Events) || back.TruncatedEvents != rec.TruncatedEvents {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", back, rec)
	}
	if back.Labels["standby0"] != rec.Labels["standby0"] {
		t.Fatalf("labels lost in roundtrip")
	}
	// Frozen means frozen: later snaps are no-ops.
	fr.Snap(40 * time.Millisecond)
	if len(fr.Record().Snapshots) != 4 {
		t.Fatalf("snap after freeze mutated the record")
	}
}

func TestTraceDumpRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	lbl := tr.Label("standby0")
	span := tr.NewSpan()
	tr.Emit(time.Millisecond, EvShip, span, 0, 1, 512)
	tr.Emit(2*time.Millisecond, EvReplicaAck, 0, span, 1, lbl)

	var buf bytes.Buffer
	d := tr.Dump()
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadTraceDump(&buf)
	if err != nil {
		t.Fatalf("ReadTraceDump: %v", err)
	}
	events, err := back.DecodedEvents()
	if err != nil {
		t.Fatalf("DecodedEvents: %v", err)
	}
	want := tr.Events()
	if len(events) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(events), len(want))
	}
	for i := range events {
		if events[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, events[i], want[i])
		}
	}
	if back.LabelName(lbl) != "standby0" {
		t.Fatalf("LabelName(%d) = %q", lbl, back.LabelName(lbl))
	}
}

func TestSnapshotMarshalIsByteStable(t *testing.T) {
	reg := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid.point", "a.b.c"} {
		reg.Counter(n).Add(3)
		reg.Gauge("g." + n).Set(5)
		reg.Histogram("h." + n).Observe(time.Millisecond)
	}
	snap := reg.Snapshot()
	a, err := snap.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	b, err := snap.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("successive marshals differ:\n%s\n%s", a, b)
	}
	// A semantically identical registry must produce identical bytes, or
	// artifact diffing across runs is noise.
	reg2 := NewRegistry()
	for _, n := range []string{"a.b.c", "mid.point", "alpha", "zeta"} { // other order
		reg2.Counter(n).Add(3)
		reg2.Gauge("g." + n).Set(5)
		reg2.Histogram("h." + n).Observe(time.Millisecond)
	}
	c, err := reg2.Snapshot().MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("registration order changed the bytes:\n%s\n%s", a, c)
	}
}

func TestMonitorDetectsSplitBrainEpoch(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	// Epochs must be strictly increasing: a second writer starting at an
	// old (or equal) epoch is a split brain.
	events := []Event{
		ev(ms(1), EvEpoch, 0, 0, 1, 2),
		ev(ms(2), EvEpoch, 0, 0, 3, 2), // fenced takeover skipping 2: fine
		ev(ms(3), EvEpoch, 0, 0, 3, 2), // duplicate epoch: split brain
		ev(ms(4), EvEpoch, 0, 0, 2, 2), // regression: split brain
	}
	rep := RunMonitor(events, MonitorConfig{})
	if rep.ByKind[InvSingleWriter.String()] != 2 {
		t.Fatalf("split-brain epochs not flagged: %+v", rep)
	}
	// Monotone epochs are clean.
	clean := []Event{
		ev(ms(1), EvEpoch, 0, 0, 1, 2),
		ev(ms(2), EvEpoch, 0, 0, 2, 2),
	}
	if rep := RunMonitor(clean, MonitorConfig{}); rep.Total != 0 {
		t.Fatalf("monotone epochs flagged: %+v", rep)
	}
}
