package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/metrics"
)

// Snapshot is a point-in-time, JSON-serialisable copy of every instrument
// in a Registry. All durations are nanoseconds of virtual time.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]GaugeSnap     `json:"gauges"`
	Histograms map[string]HistogramSnap `json:"histograms"`
	Series     map[string][]SeriesPoint `json:"series,omitempty"`
}

// GaugeSnap is a gauge's level and high-water mark.
type GaugeSnap struct {
	Value int64 `json:"value"`
	Peak  int64 `json:"peak"`
}

// HistogramSnap is a histogram's summary statistics.
type HistogramSnap struct {
	Count  uint64 `json:"count"`
	SumNs  int64  `json:"sum_ns"`
	MinNs  int64  `json:"min_ns"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P90Ns  int64  `json:"p90_ns"`
	P95Ns  int64  `json:"p95_ns"`
	P99Ns  int64  `json:"p99_ns"`
	MaxNs  int64  `json:"max_ns"`
}

// SeriesPoint is one sample of a series.
type SeriesPoint struct {
	AtNs  int64   `json:"at_ns"`
	Value float64 `json:"value"`
}

func snapHistogram(h *metrics.Histogram) HistogramSnap {
	return HistogramSnap{
		Count:  h.Count(),
		SumNs:  int64(h.Sum()),
		MinNs:  int64(h.Min()),
		MeanNs: int64(h.Mean()),
		P50Ns:  int64(h.Quantile(0.50)),
		P90Ns:  int64(h.Quantile(0.90)),
		P95Ns:  int64(h.Quantile(0.95)),
		P99Ns:  int64(h.Quantile(0.99)),
		MaxNs:  int64(h.Max()),
	}
}

// Snapshot captures every registered instrument.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnap),
		Histograms: make(map[string]HistogramSnap),
		Series:     make(map[string][]SeriesPoint),
	}
	if r == nil {
		return snap
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = GaugeSnap{Value: g.Value(), Peak: g.Peak()}
	}
	for name, h := range r.hists {
		snap.Histograms[name] = snapHistogram(h)
	}
	for name, s := range r.series {
		pts := s.Points()
		out := make([]SeriesPoint, len(pts))
		for i, p := range pts {
			out[i] = SeriesPoint{AtNs: int64(p.At), Value: p.Value}
		}
		snap.Series[name] = out
	}
	return snap
}

// Diff returns the per-instrument change from prev to s, so a long
// campaign can report per-interval rates instead of lifetime totals
// (replication lag per phase, drained bytes per window, …).
//
// Counters subtract. Gauges report the level change, with Peak carrying
// s's absolute high-water mark — a peak is not a rate and cannot be
// meaningfully subtracted. Histograms report the interval's Count/Sum and
// the Mean recomputed from those deltas; the order statistics (min,
// quantiles, max) are whole-run properties with no subtractive form and
// are zeroed. Series are omitted — they are already time-indexed.
// Instruments absent from prev (registered mid-interval) diff against
// zero.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnap),
		Histograms: make(map[string]HistogramSnap),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, g := range s.Gauges {
		d.Gauges[name] = GaugeSnap{Value: g.Value - prev.Gauges[name].Value, Peak: g.Peak}
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		dh := HistogramSnap{Count: h.Count - p.Count, SumNs: h.SumNs - p.SumNs}
		if dh.Count > 0 {
			dh.MeanNs = dh.SumNs / int64(dh.Count)
		}
		d.Histograms[name] = dh
	}
	return d
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LatencyTable renders every histogram in the snapshot as an aligned
// stage-latency table, sorted by name — the human-readable counterpart of
// the JSON export, used in run reports.
func (s Snapshot) LatencyTable() *metrics.Table {
	table := metrics.NewTable("stage", "n", "mean", "p50", "p95", "p99", "max")
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	rd := func(ns int64) string {
		return time.Duration(ns).Round(time.Microsecond).String()
	}
	for _, n := range names {
		h := s.Histograms[n]
		if h.Count == 0 {
			continue
		}
		table.AddRow(n, fmt.Sprintf("%d", h.Count),
			rd(h.MeanNs), rd(h.P50Ns), rd(h.P95Ns), rd(h.P99Ns), rd(h.MaxNs))
	}
	return table
}

// eventJSON is the wire form of a trace event.
type eventJSON struct {
	AtNs   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Arg1   int64  `json:"arg1,omitempty"`
	Arg2   int64  `json:"arg2,omitempty"`
}

// traceJSON is the wire form of a trace dump.
type traceJSON struct {
	Emitted int         `json:"emitted"`
	Dropped int         `json:"dropped"`
	Events  []eventJSON `json:"events"`
}

// WriteJSON dumps the retained trace as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	out := traceJSON{Emitted: t.Emitted(), Dropped: t.Dropped(), Events: make([]eventJSON, len(events))}
	for i, e := range events {
		out.Events[i] = eventJSON{
			AtNs: int64(e.At), Kind: e.Kind.String(),
			Span: uint64(e.Span), Parent: uint64(e.Parent),
			Arg1: e.Arg1, Arg2: e.Arg2,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
