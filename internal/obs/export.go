package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/metrics"
)

// Snapshot is a point-in-time, JSON-serialisable copy of every instrument
// in a Registry. All durations are nanoseconds of virtual time.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]GaugeSnap     `json:"gauges"`
	Histograms map[string]HistogramSnap `json:"histograms"`
	Series     map[string][]SeriesPoint `json:"series,omitempty"`
}

// GaugeSnap is a gauge's level and high-water mark. PeakDelta is only
// populated by Diff: how much the high-water mark rose during the
// interval (zero when the old peak still stands).
type GaugeSnap struct {
	Value     int64 `json:"value"`
	Peak      int64 `json:"peak"`
	PeakDelta int64 `json:"peak_delta,omitempty"`
}

// HistogramSnap is a histogram's summary statistics.
type HistogramSnap struct {
	Count  uint64 `json:"count"`
	SumNs  int64  `json:"sum_ns"`
	MinNs  int64  `json:"min_ns"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P90Ns  int64  `json:"p90_ns"`
	P95Ns  int64  `json:"p95_ns"`
	P99Ns  int64  `json:"p99_ns"`
	MaxNs  int64  `json:"max_ns"`
}

// SeriesPoint is one sample of a series.
type SeriesPoint struct {
	AtNs  int64   `json:"at_ns"`
	Value float64 `json:"value"`
}

func snapHistogram(h *metrics.Histogram) HistogramSnap {
	return HistogramSnap{
		Count:  h.Count(),
		SumNs:  int64(h.Sum()),
		MinNs:  int64(h.Min()),
		MeanNs: int64(h.Mean()),
		P50Ns:  int64(h.Quantile(0.50)),
		P90Ns:  int64(h.Quantile(0.90)),
		P95Ns:  int64(h.Quantile(0.95)),
		P99Ns:  int64(h.Quantile(0.99)),
		MaxNs:  int64(h.Max()),
	}
}

// Snapshot captures every registered instrument.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnap),
		Histograms: make(map[string]HistogramSnap),
		Series:     make(map[string][]SeriesPoint),
	}
	if r == nil {
		return snap
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = GaugeSnap{Value: g.Value(), Peak: g.Peak()}
	}
	for name, h := range r.hists {
		snap.Histograms[name] = snapHistogram(h)
	}
	for name, s := range r.series {
		pts := s.Points()
		out := make([]SeriesPoint, len(pts))
		for i, p := range pts {
			out[i] = SeriesPoint{AtNs: int64(p.At), Value: p.Value}
		}
		snap.Series[name] = out
	}
	return snap
}

// Diff returns the per-instrument change from prev to s, so a long
// campaign can report per-interval rates instead of lifetime totals
// (replication lag per phase, drained bytes per window, …).
//
// Counters subtract. Gauges report the level change, with Peak carrying
// s's absolute high-water mark — a peak is not a rate and cannot be
// meaningfully subtracted — and PeakDelta carrying how much the mark rose
// during the interval. Histograms report the interval's Count/Sum and
// the Mean recomputed from those deltas; the order statistics (min,
// quantiles, max) are whole-run properties with no subtractive form and
// are zeroed. Series are omitted — they are already time-indexed.
// Instruments absent from prev (registered mid-interval) diff against
// zero.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnap),
		Histograms: make(map[string]HistogramSnap),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, g := range s.Gauges {
		p := prev.Gauges[name]
		gd := GaugeSnap{Value: g.Value - p.Value, Peak: g.Peak}
		if g.Peak > p.Peak {
			gd.PeakDelta = g.Peak - p.Peak
		}
		d.Gauges[name] = gd
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		dh := HistogramSnap{Count: h.Count - p.Count, SumNs: h.SumNs - p.SumNs}
		if dh.Count > 0 {
			dh.MeanNs = dh.SumNs / int64(dh.Count)
		}
		d.Histograms[name] = dh
	}
	return d
}

// MarshalJSON emits every section with its keys in sorted order, written
// explicitly rather than left to the encoder, so snapshot artifacts are
// byte-stable across runs with the same seed regardless of map iteration
// or encoder internals.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	writeSection := func(name string, keys []string, value func(string) any) error {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:{", name)
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			v, err := json.Marshal(value(k))
			if err != nil {
				return err
			}
			fmt.Fprintf(&b, "%q:%s", k, v)
		}
		b.WriteByte('}')
		return nil
	}
	if err := writeSection("counters", mapKeys(s.Counters), func(k string) any { return s.Counters[k] }); err != nil {
		return nil, err
	}
	if err := writeSection("gauges", mapKeys(s.Gauges), func(k string) any { return s.Gauges[k] }); err != nil {
		return nil, err
	}
	if err := writeSection("histograms", mapKeys(s.Histograms), func(k string) any { return s.Histograms[k] }); err != nil {
		return nil, err
	}
	if len(s.Series) > 0 {
		if err := writeSection("series", mapKeys(s.Series), func(k string) any { return s.Series[k] }); err != nil {
			return nil, err
		}
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

func mapKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LatencyTable renders every histogram in the snapshot as an aligned
// stage-latency table, sorted by name — the human-readable counterpart of
// the JSON export, used in run reports.
func (s Snapshot) LatencyTable() *metrics.Table {
	table := metrics.NewTable("stage", "n", "mean", "p50", "p95", "p99", "max")
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	rd := func(ns int64) string {
		return time.Duration(ns).Round(time.Microsecond).String()
	}
	for _, n := range names {
		h := s.Histograms[n]
		if h.Count == 0 {
			continue
		}
		table.AddRow(n, fmt.Sprintf("%d", h.Count),
			rd(h.MeanNs), rd(h.P50Ns), rd(h.P95Ns), rd(h.P99Ns), rd(h.MaxNs))
	}
	return table
}

// WireEvent is the wire form of a trace event.
type WireEvent struct {
	AtNs   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Arg1   int64  `json:"arg1,omitempty"`
	Arg2   int64  `json:"arg2,omitempty"`
}

// ToWire converts an in-memory event to its wire form.
func (e Event) ToWire() WireEvent {
	return WireEvent{
		AtNs: int64(e.At), Kind: e.Kind.String(),
		Span: uint64(e.Span), Parent: uint64(e.Parent),
		Arg1: e.Arg1, Arg2: e.Arg2,
	}
}

// Decode converts a wire event back to its in-memory form; it fails on an
// unknown kind name so malformed traces are caught rather than silently
// analysed as empty.
func (w WireEvent) Decode() (Event, error) {
	k, ok := KindByName(w.Kind)
	if !ok {
		return Event{}, fmt.Errorf("obs: unknown event kind %q", w.Kind)
	}
	return Event{
		At: time.Duration(w.AtNs), Kind: k,
		Span: SpanID(w.Span), Parent: SpanID(w.Parent),
		Arg1: w.Arg1, Arg2: w.Arg2,
	}, nil
}

// TraceDump is a self-contained, JSON-serialisable copy of a tracer's
// retained events plus the label table needed to resolve endpoint and
// replica ids in event args.
type TraceDump struct {
	Emitted int              `json:"emitted"`
	Dropped int              `json:"dropped"`
	Labels  map[string]int64 `json:"labels,omitempty"`
	Events  []WireEvent      `json:"events"`
}

// Dump captures the tracer's retained events and label table.
func (t *Tracer) Dump() TraceDump {
	events := t.Events()
	d := TraceDump{
		Emitted: t.Emitted(), Dropped: t.Dropped(),
		Labels: t.Labels(),
		Events: make([]WireEvent, len(events)),
	}
	for i, e := range events {
		d.Events[i] = e.ToWire()
	}
	return d
}

// WriteJSON writes the dump as indented JSON.
func (d TraceDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DecodedEvents converts the wire events back to in-memory form, failing
// on the first malformed event.
func (d TraceDump) DecodedEvents() ([]Event, error) {
	out := make([]Event, len(d.Events))
	for i, w := range d.Events {
		e, err := w.Decode()
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		out[i] = e
	}
	return out, nil
}

// LabelName resolves a label id back to its name ("?" when absent or the
// id is zero).
func (d TraceDump) LabelName(id int64) string {
	for n, v := range d.Labels {
		if v == id {
			return n
		}
	}
	return "?"
}

// ReadTraceDump parses a trace dump previously written by WriteJSON.
func ReadTraceDump(r io.Reader) (TraceDump, error) {
	var d TraceDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return TraceDump{}, fmt.Errorf("obs: parsing trace dump: %w", err)
	}
	return d, nil
}

// WriteJSON dumps the retained trace as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	return t.Dump().WriteJSON(w)
}
