package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
)

// Invariant identifies one of the runtime-checked safety properties. The
// monitor is the paper's verification theme applied at runtime: the same
// exposure and acknowledgement invariants the design argues statically are
// re-checked continuously against the live event stream.
type Invariant int

const (
	// InvExposure: acknowledged-but-undrained bytes must stay within
	// min(MaxBuffer, SafeBufferSize) — the provably dumpable bound.
	InvExposure Invariant = iota
	// InvAckEvidence: no EvTxAck may precede its policy's durability
	// evidence — local flush covering the commit LSN, plus (for quorum /
	// remote policies) EvQuorumMet for every record the covering force
	// shipped.
	InvAckEvidence
	// InvRetention: the shipper's retained (unacked) bytes must return
	// under RetainLimit within the eviction grace window.
	InvRetention
	// InvAckMonotone: each replica's cumulative ack sequence must never
	// regress.
	InvAckMonotone
	// InvSingleWriter: shipper epochs must be strictly increasing — at most
	// one epoch is ever live, so a second writer starting at an old or equal
	// epoch (a split brain: a deposed primary still committing) is a
	// violation.
	InvSingleWriter

	invCount
)

var invariantNames = [invCount]string{
	InvExposure:     "exposure_bound",
	InvAckEvidence:  "ack_without_evidence",
	InvRetention:    "retention_bound",
	InvAckMonotone:  "ack_monotonicity",
	InvSingleWriter: "single_writer_epoch",
}

// String returns the invariant's stable wire name.
func (i Invariant) String() string {
	if i >= 0 && i < invCount {
		return invariantNames[i]
	}
	return "unknown"
}

// PolicyKind mirrors the core ack-policy kinds without importing core (obs
// sits below every other layer).
type PolicyKind int

const (
	// PolicyLocal acks on local buffer/flush evidence alone.
	PolicyLocal PolicyKind = iota
	// PolicyQuorum additionally requires EvQuorumMet for shipped records.
	PolicyQuorum
	// PolicyRemoteOnly requires quorum evidence but no local-exposure
	// claim beyond the flush the device reports anyway.
	PolicyRemoteOnly
)

// MonitorConfig parameterises a Monitor.
type MonitorConfig struct {
	// Bound is the exposure limit in bytes; zero disables the exposure
	// check (e.g. offline analysis of a trace with unknown sizing).
	Bound int64
	// Policy is the ack policy whose evidence InvAckEvidence demands.
	Policy PolicyKind
	// QuorumK is the quorum size for PolicyQuorum/PolicyRemoteOnly.
	QuorumK int
	// RetainLimit is the shipper's retention bound in bytes; zero disables
	// the retention check.
	RetainLimit int64
	// RetainGrace is how long retention may sit above RetainLimit before
	// the monitor calls it a violation — eviction of a dead replica
	// legitimately takes a probe round-trip plus DeadAfter.
	RetainGrace time.Duration
	// Reg, when set, receives violation counters and provides the
	// retention gauge ("repl.retained_bytes") the retention check reads.
	Reg *Registry
	// Trace, when set, receives an EvViolation trace mark per violation.
	Trace *Tracer
	// MaxSamples bounds the retained violation details (default 32).
	MaxSamples int
}

// Violation is one detected invariant breach.
type Violation struct {
	Invariant string `json:"invariant"`
	AtNs      int64  `json:"at_ns"`
	Detail    string `json:"detail"`
}

// At returns the violation's virtual time.
func (v Violation) At() time.Duration { return time.Duration(v.AtNs) }

// MonitorReport summarises what a Monitor checked and found.
type MonitorReport struct {
	EventsSeen int            `json:"events_seen"`
	TxAcked    int            `json:"tx_acked"`
	Total      int            `json:"total_violations"`
	ByKind     map[string]int `json:"by_invariant,omitempty"`
	Samples    []Violation    `json:"samples,omitempty"`
}

// WriteJSON writes the report as indented JSON.
func (r MonitorReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// flushPoint pairs a flushed LSN with the highest replication sequence the
// covering force shipped; used to translate "commit LSN covered" into
// "quorum sequence required".
type flushPoint struct {
	lsn int64
	seq uint64
}

// Monitor re-checks the system's safety invariants online, consuming the
// trace event stream (install it as the tracer's observer, or replay a
// recorded trace through Consume). It never mutates the system: violations
// become counters, trace marks, samples, and an OnViolation callback — the
// flight recorder's freeze trigger.
type Monitor struct {
	cfg MonitorConfig

	// OnViolation, when set, is invoked on every detected violation.
	OnViolation func(Violation)

	events int

	// Exposure tracking (InvExposure).
	exposure     int64
	outstanding  map[SpanID]int64 // entry span → buffered bytes
	exposureOver bool             // above bound; fire once per episode

	// Ack-evidence tracking (InvAckEvidence).
	txLSN       map[SpanID]int64  // tx span → max appended commit LSN
	entryForce  map[SpanID]SpanID // entry span → force span
	forceMaxSeq map[SpanID]uint64 // force span → highest shipped seq
	flushes     []flushPoint      // monotone (lsn, seq) flush history
	flushedLSN  int64
	quorumHi    uint64
	acked       int

	// Ack-monotonicity tracking (InvAckMonotone).
	repAck map[int64]uint64 // replica label id → highest acked seq

	// Single-writer tracking (InvSingleWriter).
	lastEpoch int64

	// Retention tracking (InvRetention).
	retainGauge *metrics.Gauge
	retainOver  bool
	retainSince time.Duration
	retainFired bool

	counts  [invCount]int
	samples []Violation
	total   *metrics.Counter
	perInv  [invCount]*metrics.Counter
}

// NewMonitor creates a monitor. Wire it to a live tracer with
// tracer.SetObserver(monitor.Consume) or feed it a recorded stream.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 32
	}
	m := &Monitor{
		cfg:         cfg,
		outstanding: make(map[SpanID]int64),
		txLSN:       make(map[SpanID]int64),
		entryForce:  make(map[SpanID]SpanID),
		forceMaxSeq: make(map[SpanID]uint64),
		repAck:      make(map[int64]uint64),
	}
	if cfg.Reg != nil {
		m.total = cfg.Reg.Counter("monitor.violations")
		for i := Invariant(0); i < invCount; i++ {
			m.perInv[i] = cfg.Reg.Counter("monitor.violations." + i.String())
		}
		if cfg.RetainLimit > 0 {
			m.retainGauge = cfg.Reg.Gauge("repl.retained_bytes")
		}
	}
	return m
}

func (m *Monitor) violate(inv Invariant, at time.Duration, detail string) {
	m.counts[inv]++
	if m.total != nil {
		m.total.Inc()
		m.perInv[inv].Inc()
	}
	v := Violation{Invariant: inv.String(), AtNs: int64(at), Detail: detail}
	if len(m.samples) < m.cfg.MaxSamples {
		m.samples = append(m.samples, v)
	}
	// Safe from inside an observer callback: nested Emits are recorded but
	// not re-notified, so this cannot recurse.
	m.cfg.Trace.Emit(at, EvViolation, 0, 0, int64(inv), int64(m.counts[inv]))
	if m.OnViolation != nil {
		m.OnViolation(v)
	}
}

// Consume feeds one event through every invariant check.
func (m *Monitor) Consume(e Event) {
	if m == nil {
		return
	}
	m.events++
	switch e.Kind {
	case EvTxBegin:
		m.txLSN[e.Span] = 0

	case EvWalAppend:
		if lsn, ok := m.txLSN[e.Parent]; ok && e.Arg1 > lsn {
			m.txLSN[e.Parent] = e.Arg1
		}

	case EvHvAck:
		m.outstanding[e.Span] = e.Arg2
		m.exposure += e.Arg2
		if e.Parent != 0 {
			m.entryForce[e.Span] = e.Parent
		}
		m.checkExposure(e.At)

	case EvHvAbsorb:
		// Absorption supersedes an equal-length buffered entry in place:
		// the device acks another guest write without growing the buffer,
		// so exposure is unchanged.

	case EvDurable:
		if b, ok := m.outstanding[e.Parent]; ok {
			m.exposure -= b
			delete(m.outstanding, e.Parent)
		}
		if m.exposure <= m.cfg.Bound {
			m.exposureOver = false
		}

	case EvDumpDone:
		// The dump image holds everything still buffered: exposure ends.
		m.exposure = 0
		m.outstanding = make(map[SpanID]int64)
		m.exposureOver = false

	case EvLogComplete:
		if e.Arg1 > m.flushedLSN {
			m.flushedLSN = e.Arg1
		}
		seq := m.forceMaxSeq[e.Parent]
		if n := len(m.flushes); n > 0 && m.flushes[n-1].seq > seq {
			seq = m.flushes[n-1].seq // keep (lsn, seq) jointly monotone
		}
		m.flushes = append(m.flushes, flushPoint{lsn: e.Arg1, seq: seq})
		delete(m.forceMaxSeq, e.Parent)

	case EvShip:
		if e.Parent != 0 {
			if f, ok := m.entryForce[e.Parent]; ok {
				if uint64(e.Arg1) > m.forceMaxSeq[f] {
					m.forceMaxSeq[f] = uint64(e.Arg1)
				}
			}
		}

	case EvQuorumMet:
		if uint64(e.Arg1) > m.quorumHi {
			m.quorumHi = uint64(e.Arg1)
		}

	case EvTxAck:
		m.checkAckEvidence(e)

	case EvReplicaAck:
		prev := m.repAck[e.Arg2]
		if uint64(e.Arg1) < prev {
			m.violate(InvAckMonotone, e.At,
				fmt.Sprintf("replica %d acked seq %d after seq %d", e.Arg2, e.Arg1, prev))
		} else {
			m.repAck[e.Arg2] = uint64(e.Arg1)
		}

	case EvEpoch:
		// Single-writer-per-epoch: a shipper starting at an epoch at or
		// below one already seen means two streams could gather quorum
		// evidence concurrently — the split-brain the fencing protocol
		// exists to prevent.
		if e.Arg1 <= m.lastEpoch {
			m.violate(InvSingleWriter, e.At,
				fmt.Sprintf("shipper epoch %d began after epoch %d", e.Arg1, m.lastEpoch))
		} else {
			m.lastEpoch = e.Arg1
		}
		// A new shipper stream: sequence numbers restart, so every
		// seq-indexed fact is stale.
		m.repAck = make(map[int64]uint64)
		m.quorumHi = 0
		m.flushes = nil
		m.forceMaxSeq = make(map[SpanID]uint64)

	case EvPowerRestore:
		// The machine rebooted: volatile state (buffer, in-flight txs,
		// WAL force pipeline) did not survive.
		m.exposure = 0
		m.outstanding = make(map[SpanID]int64)
		m.exposureOver = false
		m.txLSN = make(map[SpanID]int64)
		m.entryForce = make(map[SpanID]SpanID)
		m.forceMaxSeq = make(map[SpanID]uint64)
		m.retainOver = false
		m.retainFired = false
	}
	m.Tick(e.At)
}

func (m *Monitor) checkExposure(at time.Duration) {
	if m.cfg.Bound <= 0 || m.exposure <= m.cfg.Bound {
		return
	}
	if !m.exposureOver {
		m.exposureOver = true
		m.violate(InvExposure, at,
			fmt.Sprintf("buffered %d bytes exceeds bound %d", m.exposure, m.cfg.Bound))
	}
}

func (m *Monitor) checkAckEvidence(e Event) {
	lsn, ok := m.txLSN[e.Parent]
	delete(m.txLSN, e.Parent)
	m.acked++
	if !ok || lsn == 0 {
		return // read-only or untracked commit: nothing to evidence
	}
	if m.flushedLSN < lsn {
		m.violate(InvAckEvidence, e.At,
			fmt.Sprintf("tx acked at lsn %d but flushed lsn is %d", lsn, m.flushedLSN))
		return
	}
	if m.cfg.Policy == PolicyLocal {
		return
	}
	// Quorum evidence: the first flush covering the commit LSN fixes which
	// replication sequence must have met quorum.
	var need uint64
	found := false
	for _, fp := range m.flushes {
		if fp.lsn >= lsn {
			need, found = fp.seq, true
			break
		}
	}
	if !found {
		m.violate(InvAckEvidence, e.At,
			fmt.Sprintf("tx acked at lsn %d with no covering flush record", lsn))
		return
	}
	if m.quorumHi < need {
		m.violate(InvAckEvidence, e.At,
			fmt.Sprintf("tx acked at lsn %d needing quorum through seq %d, quorum high is %d", lsn, need, m.quorumHi))
	}
}

// Tick re-checks the time-dependent retention invariant; Consume calls it
// on every event, and callers may call it directly on idle streams.
func (m *Monitor) Tick(at time.Duration) {
	if m == nil || m.cfg.RetainLimit <= 0 || m.retainGauge == nil {
		return
	}
	v := m.retainGauge.Value()
	if v <= m.cfg.RetainLimit {
		m.retainOver = false
		m.retainFired = false
		return
	}
	if !m.retainOver {
		m.retainOver = true
		m.retainSince = at
		return
	}
	if !m.retainFired && at-m.retainSince > m.cfg.RetainGrace {
		m.retainFired = true
		m.violate(InvRetention, at,
			fmt.Sprintf("retained %d bytes above limit %d for %v", v, m.cfg.RetainLimit, at-m.retainSince))
	}
}

// Total returns the number of violations detected so far.
func (m *Monitor) Total() int {
	if m == nil {
		return 0
	}
	n := 0
	for _, c := range m.counts {
		n += c
	}
	return n
}

// Report summarises the monitor's findings.
func (m *Monitor) Report() MonitorReport {
	if m == nil {
		return MonitorReport{}
	}
	rep := MonitorReport{EventsSeen: m.events, TxAcked: m.acked, Total: m.Total()}
	if rep.Total > 0 {
		rep.ByKind = make(map[string]int)
		for i := Invariant(0); i < invCount; i++ {
			if m.counts[i] > 0 {
				rep.ByKind[i.String()] = m.counts[i]
			}
		}
		rep.Samples = m.samples
	}
	return rep
}

// RunMonitor replays a recorded event stream through a fresh monitor —
// the offline form used by rapilog-trace to re-verify a trace after the
// fact. The retention check is skipped unless cfg.Reg carries the gauge.
func RunMonitor(events []Event, cfg MonitorConfig) MonitorReport {
	m := NewMonitor(cfg)
	for _, e := range events {
		m.Consume(e)
	}
	return m.Report()
}
