package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// FlightConfig parameterises a FlightRecorder.
type FlightConfig struct {
	// EventWindow is how many recent trace events a frozen record keeps
	// (default 4096).
	EventWindow int
	// SnapEvery is the metric-snapshot cadence in virtual time
	// (default 250ms).
	SnapEvery time.Duration
	// SnapWindow is how many periodic snapshots the ring keeps
	// (default 16).
	SnapWindow int
}

// FlightSnap is one periodic metrics snapshot in the recorder's ring.
type FlightSnap struct {
	AtNs int64    `json:"at_ns"`
	Snap Snapshot `json:"snap"`
}

// FlightRecord is a frozen, self-contained post-mortem: the reason and
// time of the freeze, the most recent trace events, the trailing metric
// snapshots, the registry state at the instant of the freeze, and (when a
// monitor is attached) its verdict. It is what a flight-data recorder's
// recovered box would hold.
type FlightRecord struct {
	Reason          string           `json:"reason"`
	AtNs            int64            `json:"at_ns"`
	Labels          map[string]int64 `json:"labels,omitempty"`
	Events          []WireEvent      `json:"events"`
	TruncatedEvents int              `json:"truncated_events"`
	Snapshots       []FlightSnap     `json:"snapshots,omitempty"`
	Final           Snapshot         `json:"final"`
	Monitor         *MonitorReport   `json:"monitor,omitempty"`
}

// WriteJSON writes the record as indented JSON.
func (r *FlightRecord) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadFlightRecord parses a record previously written by WriteJSON.
func ReadFlightRecord(r io.Reader) (*FlightRecord, error) {
	var rec FlightRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("obs: parsing flight record: %w", err)
	}
	return &rec, nil
}

// FlightRecorder continuously buffers recent history — the obs bundle's
// trace ring plus its own ring of periodic metric snapshots — and freezes
// it into a FlightRecord at the first catastrophic trigger (power loss,
// degrade entry, invariant violation). Only the first freeze wins: the
// record must describe the state leading INTO the incident, not the
// recovery thrash after it.
type FlightRecorder struct {
	o      *Obs
	mon    *Monitor
	cfg    FlightConfig
	snaps  []FlightSnap
	nsnaps int
	frozen *FlightRecord
}

// NewFlightRecorder creates a recorder over an obs bundle; mon may be nil.
func NewFlightRecorder(o *Obs, mon *Monitor, cfg FlightConfig) *FlightRecorder {
	if cfg.EventWindow <= 0 {
		cfg.EventWindow = 4096
	}
	if cfg.SnapEvery <= 0 {
		cfg.SnapEvery = 250 * time.Millisecond
	}
	if cfg.SnapWindow <= 0 {
		cfg.SnapWindow = 16
	}
	return &FlightRecorder{o: o, mon: mon, cfg: cfg, snaps: make([]FlightSnap, cfg.SnapWindow)}
}

// SnapEvery returns the configured snapshot cadence.
func (f *FlightRecorder) SnapEvery() time.Duration { return f.cfg.SnapEvery }

// Frozen reports whether the recorder already holds a record.
func (f *FlightRecorder) Frozen() bool { return f != nil && f.frozen != nil }

// Snap captures one periodic metrics snapshot into the ring.
func (f *FlightRecorder) Snap(at time.Duration) {
	if f == nil || f.frozen != nil {
		return
	}
	f.snaps[f.nsnaps%len(f.snaps)] = FlightSnap{AtNs: int64(at), Snap: f.o.Registry().Snapshot()}
	f.nsnaps++
}

// Freeze seals the recorder into a FlightRecord; subsequent freezes and
// snaps are no-ops.
func (f *FlightRecorder) Freeze(at time.Duration, reason string) {
	if f == nil || f.frozen != nil {
		return
	}
	tr := f.o.Tracer()
	events := tr.Events()
	truncated := tr.Dropped()
	if len(events) > f.cfg.EventWindow {
		truncated += len(events) - f.cfg.EventWindow
		events = events[len(events)-f.cfg.EventWindow:]
	}
	rec := &FlightRecord{
		Reason:          reason,
		AtNs:            int64(at),
		Labels:          tr.Labels(),
		Events:          make([]WireEvent, len(events)),
		TruncatedEvents: truncated,
		Final:           f.o.Registry().Snapshot(),
	}
	for i, e := range events {
		rec.Events[i] = e.ToWire()
	}
	// Oldest-first snapshot ring.
	n := f.nsnaps
	if n > len(f.snaps) {
		n = len(f.snaps)
	}
	for i := 0; i < n; i++ {
		rec.Snapshots = append(rec.Snapshots, f.snaps[(f.nsnaps-n+i)%len(f.snaps)])
	}
	if f.mon != nil {
		mr := f.mon.Report()
		rec.Monitor = &mr
	}
	f.frozen = rec
}

// Record returns the frozen record, or nil if nothing froze.
func (f *FlightRecorder) Record() *FlightRecord {
	if f == nil {
		return nil
	}
	return f.frozen
}
