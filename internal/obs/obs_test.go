package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestNilObsAccessorsAreSafe(t *testing.T) {
	var o *Obs
	if o.Tracer().Enabled() {
		t.Fatal("nil Obs must yield a disabled tracer")
	}
	o.Tracer().Emit(0, EvTxBegin, 0, 0, 0, 0) // must not panic
	if o.Tracer().NewSpan() != 0 {
		t.Fatal("disabled tracer must hand out span 0")
	}
	c := o.Registry().Counter("x")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter must still count")
	}
}

func TestNewGatesTracerOnConfig(t *testing.T) {
	off := New(Config{})
	if off.Tracer().Enabled() {
		t.Fatal("tracer must be disabled by default")
	}
	if off.Registry() == nil {
		t.Fatal("registry must always be live")
	}
	on := New(Config{TraceEnabled: true, TraceCapacity: 8})
	if !on.Tracer().Enabled() {
		t.Fatal("tracer must be enabled when configured")
	}
}

func TestTracerRingWrapsAndKeepsOrder(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Emit(time.Duration(i), EvTxBegin, SpanID(i), 0, int64(i), 0)
	}
	if tr.Emitted() != 7 {
		t.Fatalf("emitted = %d", tr.Emitted())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events", len(events))
	}
	for i, e := range events {
		if e.Arg1 != int64(3+i) {
			t.Fatalf("event %d has Arg1 %d; want %d (oldest-first order)", i, e.Arg1, 3+i)
		}
	}
}

func TestTracerSpansAreUniqueAndNonZero(t *testing.T) {
	tr := NewTracer(8)
	a, b := tr.NewSpan(), tr.NewSpan()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("spans a=%d b=%d", a, b)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name must return the same histogram")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name must return the same gauge")
	}
	if r.Series("s") != r.Series("s") {
		t.Fatal("same name must return the same series")
	}
	names := r.Names()
	want := []string{"a", "g", "h", "s"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestSnapshotRoundTripsThroughJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.commits").Add(3)
	r.Gauge("buf.occupancy").Add(42)
	h := r.Histogram("engine.commit.ack_latency")
	h.Observe(50 * time.Microsecond)
	h.Observe(70 * time.Microsecond)
	r.Series("exposure").Append(time.Millisecond, 128)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Counters["engine.commits"] != 3 {
		t.Fatalf("counters = %v", decoded.Counters)
	}
	if decoded.Gauges["buf.occupancy"].Value != 42 {
		t.Fatalf("gauges = %v", decoded.Gauges)
	}
	hs := decoded.Histograms["engine.commit.ack_latency"]
	if hs.Count != 2 || hs.MaxNs < hs.P50Ns {
		t.Fatalf("histogram snap = %+v", hs)
	}
	if len(decoded.Series["exposure"]) != 1 || decoded.Series["exposure"][0].Value != 128 {
		t.Fatalf("series = %v", decoded.Series)
	}
}

func TestTraceWriteJSON(t *testing.T) {
	tr := NewTracer(8)
	span := tr.NewSpan()
	tr.Emit(time.Millisecond, EvHvAck, span, 0, 100, 4096)
	tr.Emit(2*time.Millisecond, EvDurable, 0, span, 100, 4096)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Emitted int `json:"emitted"`
		Dropped int `json:"dropped"`
		Events  []struct {
			AtNs int64  `json:"at_ns"`
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Emitted != 2 || out.Dropped != 0 || len(out.Events) != 2 {
		t.Fatalf("trace json = %+v", out)
	}
	if out.Events[0].Kind != "hv_ack" || out.Events[1].Kind != "durable" {
		t.Fatalf("kinds = %v %v", out.Events[0].Kind, out.Events[1].Kind)
	}
}

// synthetic exposure lifecycle: two acks, one drained, then a dump that
// absorbs the second.
func TestAuditExposureLifecycle(t *testing.T) {
	events := []Event{
		{At: 10, Kind: EvHvAck, Span: 1, Arg1: 0, Arg2: 4096},
		{At: 20, Kind: EvHvAck, Span: 2, Arg1: 8, Arg2: 8192},
		{At: 25, Kind: EvDrainStart, Span: 3, Arg1: 1, Arg2: 4096},
		{At: 30, Kind: EvDurable, Parent: 1, Arg1: 0, Arg2: 4096},
		{At: 40, Kind: EvDumpStart, Span: 4, Arg1: 1, Arg2: 8192},
		{At: 50, Kind: EvDumpDone, Parent: 4, Arg2: 8192},
	}
	rep := AuditExposure(events, 16384, false)
	if rep.Violated() {
		t.Fatalf("peak %d vs bound %d should pass", rep.PeakBytes, rep.Bound)
	}
	if rep.PeakBytes != 12288 || rep.PeakAt != 20 {
		t.Fatalf("peak = %d at %v", rep.PeakBytes, rep.PeakAt)
	}
	if rep.AckedBytes != 12288 || rep.DurableBytes != 4096 || rep.DumpedBytes != 8192 {
		t.Fatalf("flows: acked %d durable %d dumped %d", rep.AckedBytes, rep.DurableBytes, rep.DumpedBytes)
	}
	if rep.OutstandingBytes != 0 {
		t.Fatalf("outstanding = %d", rep.OutstandingBytes)
	}
	if rep.Writes != 2 || rep.DrainRounds != 1 || rep.Dumps != 1 {
		t.Fatalf("counts: writes %d drains %d dumps %d", rep.Writes, rep.DrainRounds, rep.Dumps)
	}
	if got := rep.AckToDurable.Count(); got != 2 {
		t.Fatalf("ack→durable observations = %d", got)
	}
	// Exposure must end at zero after the dump.
	pts := rep.Points
	if len(pts) == 0 || pts[len(pts)-1].Bytes != 0 {
		t.Fatalf("points = %v", pts)
	}
}

func TestAuditExposureViolationAndOutstanding(t *testing.T) {
	events := []Event{
		{At: 1, Kind: EvHvAck, Span: 1, Arg2: 1000},
		{At: 2, Kind: EvHvAck, Span: 2, Arg2: 1000},
	}
	rep := AuditExposure(events, 1500, true)
	if !rep.Violated() {
		t.Fatalf("peak %d vs bound %d must violate", rep.PeakBytes, rep.Bound)
	}
	if rep.OutstandingBytes != 2000 {
		t.Fatalf("outstanding = %d", rep.OutstandingBytes)
	}
	if !rep.TruncatedTrace {
		t.Fatal("truncation flag must carry through")
	}
	if rep.Verdict() == "" {
		t.Fatal("verdict must render")
	}
}

func TestExposureSeries(t *testing.T) {
	rep := ExposureReport{Points: []ExposurePoint{{At: 1, Bytes: 10}, {At: 2, Bytes: 0}}}
	s := rep.ExposureSeries()
	pts := s.Points()
	if len(pts) != 2 || pts[0].Value != 10 || pts[1].Value != 0 {
		t.Fatalf("series points = %v", pts)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("drained")
	g := r.Gauge("occupancy")
	h := r.Histogram("ack")
	c.Add(10)
	g.Set(100) // peak 100
	h.Observe(10 * time.Microsecond)
	h.Observe(30 * time.Microsecond)
	prev := r.Snapshot()

	c.Add(5)
	g.Set(40) // level drops; peak stays 100
	h.Observe(50 * time.Microsecond)
	h.Observe(70 * time.Microsecond)
	r.Counter("late") // registered mid-interval
	r.Counter("late").Add(2)
	d := r.Snapshot().Diff(prev)

	if d.Counters["drained"] != 5 {
		t.Fatalf("counter delta = %d, want 5", d.Counters["drained"])
	}
	if d.Counters["late"] != 2 {
		t.Fatalf("mid-interval counter delta = %d, want 2", d.Counters["late"])
	}
	if got := d.Gauges["occupancy"]; got.Value != -60 || got.Peak != 100 {
		t.Fatalf("gauge delta = %+v, want {-60 100}", got)
	}
	dh := d.Histograms["ack"]
	if dh.Count != 2 {
		t.Fatalf("histogram delta count = %d, want 2", dh.Count)
	}
	if want := int64(60 * time.Microsecond); dh.MeanNs != want {
		t.Fatalf("interval mean = %d, want %d (mean of 50µs and 70µs)", dh.MeanNs, want)
	}
	if dh.MinNs != 0 || dh.P99Ns != 0 || dh.MaxNs != 0 {
		t.Fatal("order statistics must be zeroed in a diff — they have no subtractive form")
	}
	if d.Series != nil {
		t.Fatal("diff must omit series")
	}
}
