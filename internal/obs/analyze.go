package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/metrics"
)

// ChainStats summarises causal-chain completeness: of the acked commits
// the trace window fully observed, how many can be walked end to end —
// tx_begin → covering force → (ship → apply → ack)×k → quorum_met.
type ChainStats struct {
	// Commits is the number of assessable acked commits (tx_begin and
	// tx_ack both retained, at least one WAL append).
	Commits int
	// Complete is how many of those have a complete causal chain.
	Complete int
	// Incomplete counts the failing commits by first missing link.
	Incomplete map[string]int
}

// Ratio returns Complete/Commits (1.0 when no commits were assessable).
func (c ChainStats) Ratio() float64 {
	if c.Commits == 0 {
		return 1
	}
	return float64(c.Complete) / float64(c.Commits)
}

// CriticalPath decomposes acked commits' latency into the phases the
// paper's argument turns on: time spent before the covering force, inside
// it — split into local force work vs the replication quorum barrier —
// and after it.
type CriticalPath struct {
	Commits       int
	Total         *metrics.Histogram // tx_begin → tx_ack
	PreForce      *metrics.Histogram // tx_begin → covering log_submit
	Force         *metrics.Histogram // log_submit → log_complete (covering)
	LocalForce    *metrics.Histogram // force minus quorum barrier
	QuorumBarrier *metrics.Histogram // Σ max(0, quorum_met − hv_ack) per record
	PostForce     *metrics.Histogram // log_complete → tx_ack
}

// TimelineBucket aggregates fault/repair activity over one time slice.
type TimelineBucket struct {
	Start, End time.Duration
	Ships      int
	Acks       int
	Drops      int
	Dups       int
	Repairs    int
	Resent     int
	Evictions  int
	Epochs     int
	Power      int
	Degraded   int
	Violations int
	Failovers  int // elect/fence/promote/redirect activity
}

func (b TimelineBucket) empty() bool {
	return b.Ships == 0 && b.Acks == 0 && b.Drops == 0 && b.Dups == 0 &&
		b.Repairs == 0 && b.Evictions == 0 && b.Epochs == 0 &&
		b.Power == 0 && b.Degraded == 0 && b.Violations == 0 && b.Failovers == 0
}

type shipInfo struct {
	span     SpanID
	seq      int64
	epoch    int64
	at       time.Duration
	applies  map[int64]time.Duration // replica label → first apply
	acks     map[int64]time.Duration // replica label → first learned ack
	quorumAt time.Duration
	hasQ     bool
	quorumK  int
}

type entryInfo struct {
	span    SpanID
	hvAck   time.Duration
	durable time.Duration
	hasDur  bool
	ship    *shipInfo
}

type forceInfo struct {
	span     SpanID
	submit   time.Duration
	complete time.Duration
	flushed  int64
	done     bool
	entries  []*entryInfo
}

type txInfo struct {
	span  SpanID
	begin time.Duration
	ack   time.Duration
	lsn   int64
	acked bool
}

type epochSeq struct {
	epoch int64
	seq   int64
}

// Analysis is the offline reconstruction of a trace dump: per-commit
// causal chains, stage latencies, the critical-path decomposition, and a
// fault/repair timeline.
type Analysis struct {
	Events  int
	Dropped int
	Labels  map[string]int64
	// QuorumK is the largest quorum size seen in EvQuorumMet events (zero
	// for unreplicated traces).
	QuorumK  int
	Chains   ChainStats
	Critical CriticalPath
	// Stages are the per-stage latency histograms, in pipeline order.
	Stages   []*metrics.Histogram
	Timeline []TimelineBucket

	events  []Event
	txs     []*txInfo
	forces  []*forceInfo
	ships   map[SpanID]*shipInfo
	entries map[SpanID]*entryInfo
}

// Analyze reconstructs causal chains and latency structure from a trace
// dump. buckets sets the timeline resolution (default 24).
func Analyze(d TraceDump, buckets int) (*Analysis, error) {
	events, err := d.DecodedEvents()
	if err != nil {
		return nil, err
	}
	if buckets <= 0 {
		buckets = 24
	}
	a := &Analysis{
		Events:  d.Emitted,
		Dropped: d.Dropped,
		Labels:  d.Labels,
		Chains:  ChainStats{Incomplete: make(map[string]int)},
		Critical: CriticalPath{
			Total:         metrics.NewHistogram("commit total"),
			PreForce:      metrics.NewHistogram("pre-force"),
			Force:         metrics.NewHistogram("covering force"),
			LocalForce:    metrics.NewHistogram("local force"),
			QuorumBarrier: metrics.NewHistogram("quorum barrier"),
			PostForce:     metrics.NewHistogram("post-force"),
		},
		events:  events,
		ships:   make(map[SpanID]*shipInfo),
		entries: make(map[SpanID]*entryInfo),
	}

	stCommit := metrics.NewHistogram("commit (tx_begin→tx_ack)")
	stForce := metrics.NewHistogram("wal force (log_submit→log_complete)")
	stBuffer := metrics.NewHistogram("buffer residency (hv_ack→durable)")
	stNet := metrics.NewHistogram("net delivery (net_send→net_deliver)")
	stFirstAck := metrics.NewHistogram("replication (ship→first replica_ack)")
	stQuorum := metrics.NewHistogram("quorum barrier (ship→quorum_met)")

	txBySpan := make(map[SpanID]*txInfo)
	forceBySpan := make(map[SpanID]*forceInfo)
	shipByES := make(map[epochSeq]*shipInfo)
	netSent := make(map[[2]int64]time.Duration) // (cause span, dst label) → send time
	epoch := int64(1)

	for i := range events {
		e := &events[i]
		switch e.Kind {
		case EvTxBegin:
			tx := &txInfo{span: e.Span, begin: e.At}
			txBySpan[e.Span] = tx
			a.txs = append(a.txs, tx)
		case EvWalAppend:
			if tx, ok := txBySpan[e.Parent]; ok && e.Arg1 > tx.lsn {
				tx.lsn = e.Arg1
			}
		case EvTxAck:
			if tx, ok := txBySpan[e.Parent]; ok && !tx.acked {
				tx.acked, tx.ack = true, e.At
				stCommit.Observe(e.At - tx.begin)
			}
		case EvLogSubmit:
			f := &forceInfo{span: e.Span, submit: e.At}
			forceBySpan[e.Span] = f
		case EvLogComplete:
			if f, ok := forceBySpan[e.Parent]; ok && !f.done {
				f.done, f.complete, f.flushed = true, e.At, e.Arg1
				a.forces = append(a.forces, f)
				stForce.Observe(f.complete - f.submit)
			}
		case EvHvAck:
			en := &entryInfo{span: e.Span, hvAck: e.At}
			a.entries[e.Span] = en
			if f, ok := forceBySpan[e.Parent]; ok {
				f.entries = append(f.entries, en)
			}
		case EvDurable:
			if en, ok := a.entries[e.Parent]; ok && !en.hasDur {
				en.hasDur, en.durable = true, e.At
				stBuffer.Observe(e.At - en.hvAck)
			}
		case EvShip:
			sh := &shipInfo{
				span: e.Span, seq: e.Arg1, epoch: epoch, at: e.At,
				applies: make(map[int64]time.Duration),
				acks:    make(map[int64]time.Duration),
			}
			a.ships[e.Span] = sh
			shipByES[epochSeq{epoch, e.Arg1}] = sh
			if en, ok := a.entries[e.Parent]; ok {
				en.ship = sh
			}
		case EvNetSend:
			if e.Parent != 0 {
				k := [2]int64{int64(e.Parent), e.Arg2}
				if _, ok := netSent[k]; !ok {
					netSent[k] = e.At
				}
			}
		case EvNetDeliver:
			if e.Parent != 0 {
				k := [2]int64{int64(e.Parent), e.Arg2}
				if at, ok := netSent[k]; ok {
					stNet.Observe(e.At - at)
					delete(netSent, k)
				}
			}
		case EvReplicaApply:
			if sh, ok := a.ships[e.Parent]; ok {
				if _, dup := sh.applies[e.Arg2]; !dup {
					sh.applies[e.Arg2] = e.At
				}
			}
		case EvReplicaAck:
			if sh, ok := a.ships[e.Parent]; ok {
				if _, dup := sh.acks[e.Arg2]; !dup {
					sh.acks[e.Arg2] = e.At
					if len(sh.acks) == 1 {
						stFirstAck.Observe(e.At - sh.at)
					}
				}
			}
		case EvQuorumMet:
			sh, ok := a.ships[e.Parent]
			if !ok {
				sh, ok = shipByES[epochSeq{epoch, e.Arg1}]
			}
			if ok && !sh.hasQ {
				sh.hasQ, sh.quorumAt, sh.quorumK = true, e.At, int(e.Arg2)
				stQuorum.Observe(e.At - sh.at)
			}
			if int(e.Arg2) > a.QuorumK {
				a.QuorumK = int(e.Arg2)
			}
		case EvEpoch:
			epoch = e.Arg1
		}
	}

	a.assessChains()
	a.Stages = []*metrics.Histogram{stCommit, stForce, stBuffer, stNet, stFirstAck, stQuorum}
	a.buildTimeline(buckets)
	return a, nil
}

// coveringForce returns the earliest completed force whose flushed LSN
// covers lsn. Individual flush values can dip across a power cycle, so the
// search runs over the running-maximum envelope.
func (a *Analysis) coveringForce(lsn int64) *forceInfo {
	env := make([]int64, len(a.forces))
	hi := int64(0)
	for i, f := range a.forces {
		if f.flushed > hi {
			hi = f.flushed
		}
		env[i] = hi
	}
	i := sort.Search(len(env), func(i int) bool { return env[i] >= lsn })
	if i == len(a.forces) {
		return nil
	}
	return a.forces[i]
}

func (a *Analysis) assessChains() {
	for _, tx := range a.txs {
		if !tx.acked || tx.lsn == 0 {
			continue // read-only, or the window clipped the chain
		}
		a.Chains.Commits++
		f := a.coveringForce(tx.lsn)
		if f == nil {
			a.Chains.Incomplete["no covering force"]++
			continue
		}
		if f.complete > tx.ack {
			a.Chains.Incomplete["async (acked before local flush)"]++
			continue
		}

		total := tx.ack - tx.begin
		force := f.complete - f.submit
		pre := f.submit - tx.begin
		if pre < 0 {
			pre = 0
		}
		var quorum time.Duration
		ok := true
		reason := ""
		for _, en := range f.entries {
			if en.ship == nil {
				if a.QuorumK > 0 {
					ok, reason = false, "record never shipped"
				}
				continue
			}
			sh := en.ship
			if sh.hasQ {
				if d := sh.quorumAt - en.hvAck; d > 0 {
					quorum += d
				}
			} else if a.QuorumK > 0 {
				ok, reason = false, "no quorum_met for shipped record"
			}
			if a.QuorumK > 0 && ok {
				n := 0
				for rep := range sh.acks {
					if _, applied := sh.applies[rep]; applied {
						n++
					}
				}
				if n < a.QuorumK {
					ok, reason = false, fmt.Sprintf("fewer than %d replicas with apply+ack", a.QuorumK)
				}
			}
		}
		if quorum > force {
			quorum = force
		}

		a.Critical.Commits++
		a.Critical.Total.Observe(total)
		a.Critical.PreForce.Observe(pre)
		a.Critical.Force.Observe(force)
		a.Critical.LocalForce.Observe(force - quorum)
		a.Critical.QuorumBarrier.Observe(quorum)
		a.Critical.PostForce.Observe(tx.ack - f.complete)

		if ok {
			a.Chains.Complete++
		} else {
			a.Chains.Incomplete[reason]++
		}
	}
}

func (a *Analysis) buildTimeline(buckets int) {
	if len(a.events) == 0 {
		return
	}
	lo, hi := a.events[0].At, a.events[len(a.events)-1].At
	if hi <= lo {
		hi = lo + 1
	}
	width := (hi - lo + time.Duration(buckets)) / time.Duration(buckets)
	bs := make([]TimelineBucket, buckets)
	for i := range bs {
		bs[i].Start = lo + time.Duration(i)*width
		bs[i].End = bs[i].Start + width
	}
	at := func(t time.Duration) *TimelineBucket {
		i := int((t - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		return &bs[i]
	}
	for _, e := range a.events {
		b := at(e.At)
		switch e.Kind {
		case EvShip:
			b.Ships++
		case EvReplicaAck:
			b.Acks++
		case EvNetDrop:
			b.Drops++
		case EvNetDup:
			b.Dups++
		case EvRepair:
			b.Repairs++
			b.Resent += int(e.Arg2)
		case EvEvict:
			b.Evictions++
		case EvEpoch:
			b.Epochs++
		case EvPowerFail, EvPowerDC, EvPowerRestore:
			b.Power++
		case EvDegraded, EvRestored:
			b.Degraded++
		case EvViolation:
			b.Violations++
		case EvElect, EvFence, EvPromote, EvRedirect:
			b.Failovers++
		}
	}
	a.Timeline = bs
}

func rdns(ns int64) string { return time.Duration(ns).Round(time.Microsecond).String() }

func histRow(t *metrics.Table, name string, h *metrics.Histogram) {
	if h.Count() == 0 {
		return
	}
	t.AddRow(name, fmt.Sprintf("%d", h.Count()),
		rdns(int64(h.Mean())), rdns(int64(h.Quantile(0.50))),
		rdns(int64(h.Quantile(0.95))), rdns(int64(h.Quantile(0.99))),
		rdns(int64(h.Max())))
}

// StageTable renders the per-stage latency percentiles.
func (a *Analysis) StageTable() *metrics.Table {
	t := metrics.NewTable("stage", "n", "mean", "p50", "p95", "p99", "max")
	for _, h := range a.Stages {
		histRow(t, h.Name(), h)
	}
	return t
}

// CriticalTable renders the per-commit critical-path decomposition,
// separating local-force time from the replication quorum barrier.
func (a *Analysis) CriticalTable() *metrics.Table {
	t := metrics.NewTable("phase", "n", "mean", "p50", "p95", "p99", "max")
	c := a.Critical
	for _, h := range []*metrics.Histogram{c.Total, c.PreForce, c.Force, c.LocalForce, c.QuorumBarrier, c.PostForce} {
		histRow(t, h.Name(), h)
	}
	return t
}

// TimelineTable renders the drop/resend/repair timeline, skipping slices
// where nothing notable happened.
func (a *Analysis) TimelineTable() *metrics.Table {
	t := metrics.NewTable("window", "ships", "acks", "drops", "dups", "repairs", "resent", "evict", "epoch", "power", "degr", "viol", "ha")
	n := func(v int) string {
		if v == 0 {
			return "."
		}
		return fmt.Sprintf("%d", v)
	}
	for _, b := range a.Timeline {
		if b.empty() {
			continue
		}
		t.AddRow(fmt.Sprintf("%v–%v", b.Start.Round(time.Millisecond), b.End.Round(time.Millisecond)),
			n(b.Ships), n(b.Acks), n(b.Drops), n(b.Dups), n(b.Repairs), n(b.Resent),
			n(b.Evictions), n(b.Epochs), n(b.Power), n(b.Degraded), n(b.Violations), n(b.Failovers))
	}
	return t
}

// chromeEvent is one Chrome trace-event (the Perfetto-loadable JSON form).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	chromePidPrimary = 1
	chromeTidTx      = 1
	chromeTidWal     = 2
	chromeTidBuf     = 3
	chromeTidShip    = 4
	chromeTidFaults  = 5
)

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeTrace emits the analysis as Chrome trace-event JSON, loadable
// in Perfetto / chrome://tracing: spans for transactions, forces, buffered
// entries and ship→quorum windows; instants for faults, repairs and
// violations; one process row per replica.
func (a *Analysis) WriteChromeTrace(w io.Writer) error {
	var evs []chromeEvent
	meta := func(pid int64, name string) {
		evs = append(evs, chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": name}})
	}
	tmeta := func(pid, tid int64, name string) {
		evs = append(evs, chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}})
	}
	meta(chromePidPrimary, "primary")
	for _, tn := range []struct {
		tid  int64
		name string
	}{{chromeTidTx, "transactions"}, {chromeTidWal, "wal"}, {chromeTidBuf, "rapilog buffer"},
		{chromeTidShip, "replication"}, {chromeTidFaults, "faults"}} {
		tmeta(chromePidPrimary, tn.tid, tn.name)
	}
	replicaPid := func(label int64) int64 { return 100 + label }
	for n, id := range a.Labels {
		meta(replicaPid(id), n)
	}

	for _, tx := range a.txs {
		if !tx.acked {
			continue
		}
		evs = append(evs, chromeEvent{Name: "tx", Ph: "X", Ts: us(tx.begin),
			Dur: us(tx.ack - tx.begin), Pid: chromePidPrimary, Tid: chromeTidTx,
			Args: map[string]any{"lsn": tx.lsn}})
	}
	for _, f := range a.forces {
		evs = append(evs, chromeEvent{Name: fmt.Sprintf("force→%d", f.flushed), Ph: "X",
			Ts: us(f.submit), Dur: us(f.complete - f.submit),
			Pid: chromePidPrimary, Tid: chromeTidWal})
	}
	for _, en := range a.entries {
		if !en.hasDur {
			continue
		}
		evs = append(evs, chromeEvent{Name: "buffered", Ph: "X", Ts: us(en.hvAck),
			Dur: us(en.durable - en.hvAck), Pid: chromePidPrimary, Tid: chromeTidBuf})
	}
	for _, sh := range a.ships {
		end, name := sh.at, fmt.Sprintf("ship#%d", sh.seq)
		if sh.hasQ {
			end = sh.quorumAt
			name = fmt.Sprintf("ship#%d→quorum", sh.seq)
		} else {
			for _, at := range sh.acks {
				if at > end {
					end = at
				}
			}
		}
		evs = append(evs, chromeEvent{Name: name, Ph: "X", Ts: us(sh.at),
			Dur: us(end - sh.at), Pid: chromePidPrimary, Tid: chromeTidShip})
		for rep, at := range sh.applies {
			evs = append(evs, chromeEvent{Name: fmt.Sprintf("apply#%d", sh.seq), Ph: "i",
				Ts: us(at), Pid: replicaPid(rep), Tid: 1, S: "t"})
		}
	}
	for _, e := range a.events {
		var name string
		pid, tid := int64(chromePidPrimary), int64(chromeTidFaults)
		switch e.Kind {
		case EvNetDrop, EvNetDup, EvRepair, EvEvict, EvEpoch:
			name, tid = e.Kind.String(), chromeTidShip
		case EvPowerFail, EvPowerDC, EvPowerRestore, EvDegraded, EvRestored,
			EvDumpStart, EvDumpDone, EvViolation,
			EvElect, EvFence, EvPromote, EvRedirect:
			name = e.Kind.String()
		default:
			continue
		}
		evs = append(evs, chromeEvent{Name: name, Ph: "i", Ts: us(e.At), Pid: pid, Tid: tid, S: "g"})
	}

	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ms"}
	return json.NewEncoder(w).Encode(out)
}
