package obs

import (
	"sort"

	"repro/internal/metrics"
)

// Registry is the central owner of a deployment's instruments. Every layer
// registers its histograms, counters, gauges and series here by
// hierarchical name — `<instance>.<metric>`, e.g. "engine.commits",
// "wal.force_latency", "rapilog.ack_latency", "disk0.writes" — instead of
// holding ad-hoc locals, so one Snapshot call captures the whole stack.
//
// Methods are get-or-create: asking twice for the same name returns the
// same instrument, which is how a rebooted engine keeps accumulating into
// the same series. A nil *Registry creates unregistered instruments, so
// code paths built without an Obs bundle keep working unchanged.
type Registry struct {
	counters map[string]*metrics.Counter
	hists    map[string]*metrics.Histogram
	gauges   map[string]*metrics.Gauge
	series   map[string]*metrics.Series
	// prefix is prepended to every name registered through this view; the
	// root registry's prefix is empty. See Sub.
	prefix string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*metrics.Counter),
		hists:    make(map[string]*metrics.Histogram),
		gauges:   make(map[string]*metrics.Gauge),
		series:   make(map[string]*metrics.Series),
	}
}

// Sub returns a view of the registry that prepends prefix plus "." to
// every instrument name: "engine.commits" registered through Sub("shard.0")
// lands as "shard.0.engine.commits". Views share the underlying instrument
// tables — a snapshot of the root sees every shard's instruments — and a
// nil registry stays nil (unregistered instruments keep working).
func (r *Registry) Sub(prefix string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{
		counters: r.counters,
		hists:    r.hists,
		gauges:   r.gauges,
		series:   r.series,
		prefix:   r.prefix + prefix + ".",
	}
}

// Counter returns the registered counter with the given name, creating it
// if needed.
func (r *Registry) Counter(name string) *metrics.Counter {
	if r == nil {
		return metrics.NewCounter(name)
	}
	name = r.prefix + name
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := metrics.NewCounter(name)
	r.counters[name] = c
	return c
}

// Histogram returns the registered histogram with the given name, creating
// it if needed.
func (r *Registry) Histogram(name string) *metrics.Histogram {
	if r == nil {
		return metrics.NewHistogram(name)
	}
	name = r.prefix + name
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := metrics.NewHistogram(name)
	r.hists[name] = h
	return h
}

// Gauge returns the registered gauge with the given name, creating it if
// needed.
func (r *Registry) Gauge(name string) *metrics.Gauge {
	if r == nil {
		return metrics.NewGauge(name)
	}
	name = r.prefix + name
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := metrics.NewGauge(name)
	r.gauges[name] = g
	return g
}

// Series returns the registered series with the given name, creating it if
// needed.
func (r *Registry) Series(name string) *metrics.Series {
	if r == nil {
		return metrics.NewSeries(name)
	}
	name = r.prefix + name
	if s, ok := r.series[name]; ok {
		return s
	}
	s := metrics.NewSeries(name)
	r.series[name] = s
	return s
}

// Names returns every registered instrument name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
