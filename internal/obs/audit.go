package obs

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// ExposurePoint is one step of the exposure time-series: from At onward,
// Bytes of acknowledged-but-not-yet-durable data were at risk.
type ExposurePoint struct {
	At    time.Duration
	Bytes int64
}

// ExposureReport is the durability-exposure audit: the quantitative side
// of RapiLog's safety argument, derived entirely from trace events.
type ExposureReport struct {
	// Bound is the limit exposure was audited against (the lesser of the
	// configured MaxBuffer and the provable SafeBufferSize).
	Bound int64
	// PeakBytes is the maximum acknowledged-but-undrained bytes observed,
	// and PeakAt when it occurred.
	PeakBytes int64
	PeakAt    time.Duration
	// AckedBytes / DurableBytes / DumpedBytes total the lifecycle flows.
	AckedBytes   int64
	DurableBytes int64
	DumpedBytes  int64
	// OutstandingBytes were acknowledged but neither drained nor dumped by
	// the end of the trace — lost if the trace ends at a power cut, merely
	// in flight otherwise.
	OutstandingBytes int64
	// AckToDurable is the per-write latency from hypervisor ack to
	// durable-on-disk (drain) or safe-in-dump-zone (emergency dump) —
	// the exposure window of each individual write.
	AckToDurable *metrics.Histogram
	// Writes, Absorbed, DrainRounds and Dumps count lifecycle events.
	Writes      int
	Absorbed    int
	DrainRounds int
	Dumps       int
	// Points is the full exposure time-series.
	Points []ExposurePoint
	// TruncatedTrace records that the ring buffer overwrote events; the
	// audit may then under- or over-state exposure.
	TruncatedTrace bool
}

// Violated reports whether peak exposure exceeded the bound.
func (r ExposureReport) Violated() bool { return r.PeakBytes > r.Bound }

// Verdict is a one-line human-readable summary.
func (r ExposureReport) Verdict() string {
	status := "OK"
	if r.Violated() {
		status = "VIOLATED"
	}
	note := ""
	if r.TruncatedTrace {
		note = " [trace truncated; audit approximate — raise the trace capacity]"
	}
	return fmt.Sprintf("exposure %s: peak %d B at %v vs bound %d B (acked %d B, durable %d B, dumped %d B, outstanding %d B)%s",
		status, r.PeakBytes, r.PeakAt, r.Bound, r.AckedBytes, r.DurableBytes, r.DumpedBytes, r.OutstandingBytes, note)
}

type ackInfo struct {
	at    time.Duration
	bytes int64
}

// AuditExposure replays trace events into the acknowledged-but-undrained
// byte count over time and checks its peak against bound. Exposure begins
// at EvHvAck, ends at EvDurable for the same span, and collapses to zero
// at EvDumpDone (everything still buffered is then safe in the dump zone).
func AuditExposure(events []Event, bound int64, truncated bool) ExposureReport {
	rep := ExposureReport{
		Bound:          bound,
		AckToDurable:   metrics.NewHistogram("rapilog.ack_to_durable"),
		TruncatedTrace: truncated,
	}
	outstanding := make(map[SpanID]ackInfo)
	var exposure int64
	record := func(at time.Duration) {
		if n := len(rep.Points); n > 0 && rep.Points[n-1].Bytes == exposure {
			return
		}
		rep.Points = append(rep.Points, ExposurePoint{At: at, Bytes: exposure})
		if exposure > rep.PeakBytes {
			rep.PeakBytes = exposure
			rep.PeakAt = at
		}
	}
	for _, e := range events {
		switch e.Kind {
		case EvHvAck:
			outstanding[e.Span] = ackInfo{at: e.At, bytes: e.Arg2}
			exposure += e.Arg2
			rep.AckedBytes += e.Arg2
			rep.Writes++
			record(e.At)
		case EvHvAbsorb:
			rep.Absorbed++
		case EvDrainStart:
			rep.DrainRounds++
		case EvDurable:
			if info, ok := outstanding[e.Parent]; ok {
				delete(outstanding, e.Parent)
				exposure -= info.bytes
				rep.DurableBytes += info.bytes
				rep.AckToDurable.Observe(e.At - info.at)
				record(e.At)
			}
		case EvDumpDone:
			// Everything still buffered reached the dump zone in one burst:
			// its exposure window closes here.
			rep.Dumps++
			for span, info := range outstanding {
				delete(outstanding, span)
				exposure -= info.bytes
				rep.DumpedBytes += info.bytes
				rep.AckToDurable.Observe(e.At - info.at)
			}
			record(e.At)
		}
	}
	for _, info := range outstanding {
		rep.OutstandingBytes += info.bytes
	}
	return rep
}

// ExposureSeries converts the report's points into a registry-style series
// named "rapilog.exposure_bytes" (useful for export alongside metrics).
func (r ExposureReport) ExposureSeries() *metrics.Series {
	s := metrics.NewSeries("rapilog.exposure_bytes")
	for _, p := range r.Points {
		s.Append(p.At, float64(p.Bytes))
	}
	return s
}
