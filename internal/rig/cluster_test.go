package rig

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Nodes: 1}); err == nil {
		t.Fatal("1-node cluster accepted")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 3, Rig: Config{AckPolicy: core.AckQuorum(3)}}); err == nil {
		t.Fatal("quorum larger than peer set accepted")
	}
	c, err := NewCluster(ClusterConfig{Nodes: 3, Rig: Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// AckLocal is indistinguishable from unset and must be forced up: a
	// local-ack cluster has no census that intersects its (empty) ack
	// quorums, so takeover could lose acked commits.
	if !c.Cfg.Rig.AckPolicy.Remote() {
		t.Fatalf("cluster kept non-remote ack policy %v", c.Cfg.Rig.AckPolicy)
	}
	if got := c.Quorum(); got != 2 {
		t.Fatalf("census quorum = %d for 3 nodes / AckQuorum(1), want 2", got)
	}
	if c.LeaderName() != "node0" || c.Generation() != 1 {
		t.Fatalf("initial leadership = %s gen %d", c.LeaderName(), c.Generation())
	}
	if c.Store(0).Alive() {
		t.Fatal("leader's own store must be crashed while it leads")
	}
}

// TestClusterFailoverPowerCut is the end-to-end tentpole smoke: boot a
// 3-node cluster, drive redirect-aware sessions through it, pull the
// leader's plug mid-run, and require that the coordinator promotes a
// standby, the sessions commit against the new leader, every op acked
// before or after the takeover is durable on the new leader, the deposed
// node rejoins as a fenced standby, and the single-writer invariant never
// fires.
func TestClusterFailoverPowerCut(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Nodes: 3,
		Rig:   Config{Seed: 42, AckPolicy: core.AckQuorum(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := workload.NewDirectory()
	c.OnPromote = func(gen int, name string, e *engine.Engine, dom *sim.Domain) {
		dir.Update(gen, name, e, dom)
	}
	j := workload.NewJournal()
	w := &workload.Stress{ValueSize: 2000}
	exLeader := c.LeaderName()

	c.S.Spawn(c.LeaderRig().Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := c.LeaderRig().Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		dir.Update(1, c.LeaderName(), e, c.LeaderRig().Plat.Domain())
	})

	var (
		res        workload.RunResult
		audit      workload.VerifyResult
		auditErr   error
		cutAt      time.Duration
		ackedAtCut int
	)
	c.S.Spawn(nil, "sessions", func(p *sim.Proc) {
		res = workload.RunSessions(p, dir, w, workload.SessionConfig{
			Clients:  4,
			Duration: 45 * time.Second,
			Journal:  j,
			Reg:      c.Obs.Registry(),
			Trace:    c.Obs.Tracer(),
		})
		// Sessions are done; audit the full journal against whoever leads
		// now. Every acked op — quorum-acked under gen 1 or committed on
		// the promoted leader — must be present and correct.
		ld := dir.Leader()
		if ld.Gen != 2 {
			t.Errorf("final generation = %d, want 2", ld.Gen)
			return
		}
		vdone := p.Sim().NewEvent("audit.done")
		p.Sim().Spawn(ld.Dom, "audit", func(vp *sim.Proc) {
			audit, auditErr = j.Verify(vp, ld.Eng)
			vdone.Fire()
		})
		vdone.Wait(p)
	})
	c.S.Spawn(nil, "operator", func(p *sim.Proc) {
		p.Sleep(1500 * time.Millisecond)
		ackedAtCut = j.Len()
		cutAt = p.Now().Duration()
		c.CutLeaderPower()
		for c.Coord.Failovers() == 0 {
			p.Sleep(10 * time.Millisecond)
		}
		if err := c.RejoinAsStandby(p, exLeader); err != nil {
			t.Errorf("rejoin: %v", err)
		}
	})

	if err := c.S.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if c.Coord.Failovers() != 1 {
		t.Fatalf("failovers = %d (lastErr %v), want exactly 1", c.Coord.Failovers(), c.Coord.LastErr())
	}
	if c.Coord.LastErr() != nil {
		t.Fatalf("coordinator error: %v", c.Coord.LastErr())
	}
	if c.Generation() != 2 || c.LeaderName() == exLeader {
		t.Fatalf("leadership after takeover: %s gen %d", c.LeaderName(), c.Generation())
	}
	if ackedAtCut == 0 {
		t.Fatal("no ops acked before the cut — test proves nothing")
	}
	if res.Committed == 0 {
		t.Fatal("sessions never committed")
	}
	if auditErr != nil {
		t.Fatalf("audit: %v", auditErr)
	}
	if !audit.Ok() {
		t.Fatalf("acked-op loss across takeover: %v (acked at cut %d, total %d)", audit, ackedAtCut, j.Len())
	}

	// The client-visible outage: first gen-2 commit minus the cut.
	firstOK, ok := dir.FirstSuccess(2)
	if !ok {
		t.Fatal("no session ever committed against the promoted leader")
	}
	if firstOK <= cutAt {
		t.Fatalf("gen-2 first success %v precedes the cut %v", firstOK, cutAt)
	}
	t.Logf("unavailability window: %v; replay %d bytes / %d entries from %s",
		firstOK-cutAt, c.LastReplay.Bytes, c.LastReplay.Entries, c.LastReplay.From)

	// The deposed node must have rejoined fenced at the new epoch and
	// caught up from the live stream.
	ex := c.Store(0)
	if !ex.Alive() {
		t.Fatal("ex-leader store not restarted")
	}
	if ex.Fenced() < c.epoch {
		t.Fatalf("ex-leader store fenced at %d, cluster epoch %d", ex.Fenced(), c.epoch)
	}
	if ex.AppliedSeq(c.epoch) == 0 {
		t.Fatalf("ex-leader store never caught up on epoch %d", c.epoch)
	}

	rep := c.Monitor.Report()
	if rep.ByKind["single_writer_epoch"] != 0 {
		t.Fatalf("split-brain: single_writer_epoch fired %d times", rep.ByKind["single_writer_epoch"])
	}
	if rep.Total != 0 {
		t.Fatalf("monitor violations during clean failover: %+v", rep)
	}
}

// TestClusterFailoverIsolation exercises the partition path: the leader
// stays powered but unreachable, so its in-flight commits stall un-acked
// (AckQuorum needs a remote ack) while the coordinator fences and promotes
// a standby. After healing, the deposed node rejoins; no acked op may be
// lost and both writers must never be acked in one epoch.
func TestClusterFailoverIsolation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Nodes: 3,
		Rig:   Config{Seed: 7, AckPolicy: core.AckQuorum(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := workload.NewDirectory()
	c.OnPromote = func(gen int, name string, e *engine.Engine, dom *sim.Domain) {
		dir.Update(gen, name, e, dom)
	}
	j := workload.NewJournal()
	w := &workload.Stress{ValueSize: 2000}
	exLeader := c.LeaderName()

	c.S.Spawn(c.LeaderRig().Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := c.LeaderRig().Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		dir.Update(1, c.LeaderName(), e, c.LeaderRig().Plat.Domain())
	})

	var audit workload.VerifyResult
	var auditErr error
	c.S.Spawn(nil, "sessions", func(p *sim.Proc) {
		workload.RunSessions(p, dir, w, workload.SessionConfig{
			Clients:  4,
			Duration: 45 * time.Second,
			Journal:  j,
			Reg:      c.Obs.Registry(),
			Trace:    c.Obs.Tracer(),
		})
		ld := dir.Leader()
		if ld.Gen != 2 {
			t.Errorf("final generation = %d, want 2", ld.Gen)
			return
		}
		vdone := p.Sim().NewEvent("audit.done")
		p.Sim().Spawn(ld.Dom, "audit", func(vp *sim.Proc) {
			audit, auditErr = j.Verify(vp, ld.Eng)
			vdone.Fire()
		})
		vdone.Wait(p)
	})
	c.S.Spawn(nil, "operator", func(p *sim.Proc) {
		p.Sleep(1500 * time.Millisecond)
		c.IsolateLeader()
		for c.Coord.Failovers() == 0 {
			p.Sleep(10 * time.Millisecond)
		}
		// Heal the partition only after the takeover: the deposed shipper's
		// retransmits come back to a fenced cluster and must be rejected.
		p.Sleep(100 * time.Millisecond)
		c.HealNode(exLeader)
		if err := c.RejoinAsStandby(p, exLeader); err != nil {
			t.Errorf("rejoin: %v", err)
		}
	})

	if err := c.S.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if c.Coord.Failovers() != 1 || c.Coord.LastErr() != nil {
		t.Fatalf("failovers = %d, lastErr = %v", c.Coord.Failovers(), c.Coord.LastErr())
	}
	if auditErr != nil {
		t.Fatalf("audit: %v", auditErr)
	}
	if !audit.Ok() {
		t.Fatalf("acked-op loss across partition takeover: %v", audit)
	}
	rep := c.Monitor.Report()
	if rep.ByKind["single_writer_epoch"] != 0 {
		t.Fatalf("split-brain under partition: %d", rep.ByKind["single_writer_epoch"])
	}
	// The deposed leader's stale-epoch retransmits after the heal must show
	// up as fencing rejections, not as applied entries.
	if ex := c.Store(0); ex.Fenced() < c.epoch {
		t.Fatalf("ex-leader store fenced at %d, cluster epoch %d", ex.Fenced(), c.epoch)
	}
}
