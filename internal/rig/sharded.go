package rig

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hv"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/shard"
	"repro/internal/sim"
)

// Sharded is a scale-out deployment: N fully independent RapiLog instances
// on one machine, each with its own disk, log partition, drain daemon and
// emergency-dump zone (and fabric + standby fleet when replicated), behind
// a key-hash router. The shards share the simulation kernel, the power
// supply — so each shard's buffer is sized by the N-sharer hold-up budget —
// and the one hypervisor, under which every shard runs its own guest.
type Sharded struct {
	Cfg     Config
	N       int
	S       *sim.Sim
	Machine *power.Machine
	HV      *hv.Hypervisor
	Obs     *obs.Obs // root bundle; shard i's instruments live under "shard.<i>.*"
	Router  *shard.Router
	Shards  []*Rig
}

// NewSharded builds an n-shard deployment. cfg describes one shard (disk
// kind, PSU, RapiLog knobs, replication…) and is cloned per shard with a
// distinct derived seed, name prefix and metrics namespace; Mode may be
// RapiLogSharded (or empty) for plain per-shard RapiLog, or RapiLogReplica
// to give every shard its own standby fleet.
func NewSharded(cfg Config, n int) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("rig: sharded deployment needs at least 1 shard, got %d", n)
	}
	perMode := cfg.Mode
	switch perMode {
	case "", RapiLogSharded, RapiLog:
		perMode = RapiLog
	case RapiLogReplica:
	default:
		return nil, fmt.Errorf("rig: mode %q cannot be sharded (no log device to partition)", cfg.Mode)
	}
	cfg.Mode = RapiLogSharded
	cfg.applyDefaults()

	s := sim.New(cfg.Seed)
	o := obs.New(obs.Config{TraceEnabled: cfg.Trace || cfg.Flight, TraceCapacity: cfg.TraceCapacity})
	m := power.NewMachine(s, "machine", cfg.Cores, cfg.PSU)
	m.SetObs(o)
	hvCfg := cfg.HV
	hvCfg.Obs = o
	hyp := hv.New(m, hvCfg)

	sh := &Sharded{
		Cfg: cfg, N: n, S: s, Machine: m, HV: hyp, Obs: o,
		Router: shard.NewRouter(n),
	}
	for i := 0; i < n; i++ {
		scfg := cfg
		scfg.Mode = perMode
		scfg.namePrefix = fmt.Sprintf("shard%d.", i)
		scfg.sharers = n
		scfg.sharedHV = hyp
		// Decorrelate the derived fault and fabric seeds: two shards with
		// the same media-fault schedule would make "independent domains"
		// fail together.
		scfg.Seed = cfg.Seed + int64(i+1)*7919
		scfg.NetSeed = 0
		scfg.applyDefaults()
		r, err := newOnSubstrate(scfg, s, m, o.Sub(shard.Prefix(i)))
		if err != nil {
			return nil, fmt.Errorf("rig: shard %d: %w", i, err)
		}
		sh.Shards = append(sh.Shards, r)
	}
	return sh, nil
}

// ShardFor returns the shard that owns a transaction key.
func (sh *Sharded) ShardFor(key string) int { return sh.Router.ShardFor(key) }

// SafeBound returns shard i's provable exposure limit — already N-aware,
// since every shard was sized against the shared hold-up budget.
func (sh *Sharded) SafeBound(i int) int64 { return sh.Shards[i].SafeBound() }

// BootAll opens every shard's engine, in shard order. The engines index by
// shard: route a transaction with ShardFor and run it on engines[i].
func (sh *Sharded) BootAll(p *sim.Proc) ([]*engine.Engine, error) {
	engines := make([]*engine.Engine, sh.N)
	for i, r := range sh.Shards {
		e, err := r.Boot(p)
		if err != nil {
			return nil, fmt.Errorf("rig: shard %d boot: %w", i, err)
		}
		engines[i] = e
	}
	return engines, nil
}

// CutPower starts a mains-loss event for the whole machine: every shard's
// power-fail handler fires and dumps to its own spindle inside the one
// shared hold-up window. Returns the sampled hold-up.
func (sh *Sharded) CutPower() time.Duration { return sh.Machine.CutPower() }

// RecoverAfterPower restores power, reboots the shared hypervisor once,
// then recovers every shard in parallel — each replay only touches that
// shard's spindle, so the fleet recovers in roughly the time of its slowest
// shard rather than the sum. Returns the merged per-shard report.
func (sh *Sharded) RecoverAfterPower(p *sim.Proc) (shard.Recovery, error) {
	sh.Machine.RestorePower()
	sh.HV.Reboot()
	rep := shard.Recovery{Shards: make([]core.RecoveryReport, sh.N)}
	errs := make([]error, sh.N)
	remaining := sh.N
	done := sh.S.NewSignal("sharded.recover.done")
	for i, r := range sh.Shards {
		i, r := i, r
		sh.S.Spawn(nil, fmt.Sprintf("shard%d.recover", i), func(pp *sim.Proc) {
			rep.Shards[i], errs[i] = r.recoverLogDomain(pp)
			remaining--
			done.Broadcast()
		})
	}
	for remaining > 0 {
		done.Wait(p)
	}
	for i, err := range errs {
		if err != nil {
			return rep, fmt.Errorf("rig: shard %d recovery: %w", i, err)
		}
	}
	return rep, nil
}
