package rig

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestShardedBootCommitAndMetrics is the scale-out smoke: every shard
// boots, commits independently, and reports its instruments under its own
// "shard.<i>.*" namespace with a working fleet roll-up.
func TestShardedBootCommitAndMetrics(t *testing.T) {
	const n = 2
	sh, err := NewSharded(Config{Seed: 11, NoDaemons: true}, n)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Cfg.Mode != RapiLogSharded || len(sh.Shards) != n {
		t.Fatalf("mode=%q shards=%d", sh.Cfg.Mode, len(sh.Shards))
	}
	for i, r := range sh.Shards {
		if r.Logger == nil {
			t.Fatalf("shard %d has no logger", i)
		}
		if r.HV != sh.HV {
			t.Fatalf("shard %d runs under its own hypervisor, want the shared one", i)
		}
		if r.Logger.MaxBuffer() > sh.SafeBound(i) {
			t.Fatalf("shard %d buffer %d exceeds its N-aware bound %d", i, r.Logger.MaxBuffer(), sh.SafeBound(i))
		}
	}
	journals := [n]*workload.Journal{workload.NewJournal(), workload.NewJournal()}
	sh.S.Spawn(nil, "drive", func(p *sim.Proc) {
		engines, err := sh.BootAll(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		for i, e := range engines {
			w := &workload.Stress{}
			for k := 0; k < 10; k++ {
				if err := w.Do(p, e, journals[i]); err != nil {
					t.Errorf("shard %d commit: %v", i, err)
					return
				}
			}
		}
	})
	if err := sh.S.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, j := range journals {
		if j.Len() != 10 {
			t.Fatalf("shard %d acked %d/10", i, j.Len())
		}
	}
	reg := sh.Obs.Registry()
	for i := 0; i < n; i++ {
		if got := reg.Counter(shard.Prefix(i) + ".engine.commits").Value(); got < 10 {
			t.Fatalf("shard %d engine.commits = %d, want >= 10", i, got)
		}
	}
	if got := shard.RollupCounter(reg, n, "engine.commits"); got < 20 {
		t.Fatalf("fleet commits roll-up = %d, want >= 20", got)
	}
}

// TestShardedPowerCutZeroAckedLoss is the sharded plug-pull property: with
// every shard committing at the moment of a machine-wide mains loss, no
// acknowledged commit may be lost, and each shard's emergency dump must fit
// inside that shard's share of the hold-up budget (its N-aware SafeBound).
func TestShardedPowerCutZeroAckedLoss(t *testing.T) {
	for _, n := range []int{2, 4} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			sh, err := NewSharded(Config{Seed: 70 + int64(n), NoDaemons: true}, n)
			if err != nil {
				t.Fatal(err)
			}
			journals := make([]*workload.Journal, n)
			for i := range journals {
				journals[i] = workload.NewJournal()
			}
			sh.S.Spawn(nil, "drive", func(p *sim.Proc) {
				engines, err := sh.BootAll(p)
				if err != nil {
					t.Errorf("boot: %v", err)
					return
				}
				for i, e := range engines {
					i, e := i, e
					// Writers live in their shard's guest domain: they die
					// with the power, mid-transaction or not.
					sh.S.Spawn(sh.Shards[i].Plat.Domain(), fmt.Sprintf("shard%d.writer", i), func(wp *sim.Proc) {
						w := &workload.Stress{}
						for {
							if err := w.Do(wp, e, journals[i]); err != nil {
								return
							}
						}
					})
				}
			})
			var verified int
			sh.S.Spawn(nil, "op", func(p *sim.Proc) {
				p.Sleep(2 * time.Second)
				sh.CutPower()
				p.Sleep(time.Second) // well past any hold-up window
				rep, err := sh.RecoverAfterPower(p)
				if err != nil {
					t.Errorf("sharded recovery: %v", err)
					return
				}
				if len(rep.Shards) != n {
					t.Errorf("merged report has %d sections, want %d", len(rep.Shards), n)
				}
				for i, sr := range rep.Shards {
					if bound := sh.SafeBound(i); sr.Bytes > bound {
						t.Errorf("shard %d dumped %d bytes, exceeds its hold-up share %d", i, sr.Bytes, bound)
					}
				}
				engines, err := sh.BootAll(p)
				if err != nil {
					t.Errorf("reboot: %v", err)
					return
				}
				for i, e := range engines {
					res, err := journals[i].Verify(p, e)
					if err != nil {
						t.Errorf("shard %d verify: %v", i, err)
						return
					}
					if !res.Ok() {
						t.Errorf("shard %d lost acked commits: %v", i, res)
						return
					}
					verified++
				}
			})
			if err := sh.S.RunFor(10 * time.Minute); err != nil {
				t.Fatal(err)
			}
			for i, j := range journals {
				if j.Len() == 0 {
					t.Fatalf("shard %d acked nothing before the cut", i)
				}
			}
			if verified != n {
				t.Fatalf("verified %d/%d shards", verified, n)
			}
		})
	}
}

// TestShardedPartitionedWorkloadRouting drives hash-partitioned TPC-B
// across shards and checks the partition is total and disjoint.
func TestShardedPartitionedWorkloadRouting(t *testing.T) {
	const n = 2
	sh, err := NewSharded(Config{Seed: 13, NoDaemons: true}, n)
	if err != nil {
		t.Fatal(err)
	}
	base := workload.TPCB{Branches: 8, Tellers: 2, Accounts: 50}
	parts, err := workload.PartitionTPCB(base, sh.Router)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	total := 0
	for i, part := range parts {
		if len(part.Owned) == 0 {
			t.Fatalf("shard %d owns no branches", i)
		}
		for _, b := range part.Owned {
			if prev, dup := seen[b]; dup {
				t.Fatalf("branch %d owned by shards %d and %d", b, prev, i)
			}
			seen[b] = i
			total++
		}
	}
	if total != base.Branches {
		t.Fatalf("partition covers %d/%d branches", total, base.Branches)
	}

	var res workload.ShardedResult
	sh.S.Spawn(nil, "drive", func(p *sim.Proc) {
		engines, err := sh.BootAll(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		doms := make([]*sim.Domain, n)
		ws := make([]workload.Workload, n)
		for i := range engines {
			doms[i] = sh.Shards[i].Plat.Domain()
			ws[i] = parts[i]
			if err := parts[i].Load(p, engines[i]); err != nil {
				t.Errorf("shard %d load: %v", i, err)
				return
			}
		}
		res, err = workload.RunShardedClients(p, doms, engines, ws, nil, workload.RunnerConfig{
			Clients: 2, Duration: 2 * time.Second,
		})
		if err != nil {
			t.Errorf("sharded run: %v", err)
		}
	})
	if err := sh.S.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.Total.Committed == 0 {
		t.Fatal("no transactions committed across the fleet")
	}
	for i, r := range res.Shards {
		if r.Committed == 0 {
			t.Fatalf("shard %d committed nothing: partition starved it", i)
		}
	}
	if res.Total.TxnLatency.Count() != uint64(res.Total.Committed) {
		t.Fatalf("merged latency count %d != committed %d", res.Total.TxnLatency.Count(), res.Total.Committed)
	}
}
