// Package rig assembles complete simulated deployments: machine, disks,
// partitions, platform (native or hypervisor), the RapiLog device when
// configured, and the boot/reboot sequences that tie them together. It is
// the shared substrate of the experiment harness, the fault-injection
// campaigns, and the public API.
//
// A rig realises one of the paper's four evaluation configurations:
//
//	native-sync   DBMS on bare metal, synchronous commits (safe, slow)
//	native-async  DBMS on bare metal, asynchronous commits (fast, unsafe)
//	virt-sync     DBMS in a VM, pass-through disks, synchronous commits
//	              (the virtualisation-overhead baseline)
//	rapilog       DBMS in a VM, log partition interposed by RapiLog
//	              (fast and safe — the paper's contribution)
package rig

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/hv"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/sim"
)

// Mode selects the deployment configuration.
type Mode string

// The four evaluation configurations.
const (
	NativeSync  Mode = "native-sync"
	NativeAsync Mode = "native-async"
	VirtSync    Mode = "virt-sync"
	RapiLog     Mode = "rapilog"
	// RapiLogReplica extends RapiLog with a simulated network fabric and N
	// standby replicas: every buffered write is shipped to the standbys and
	// the ack policy decides which durability domain gates the commit.
	RapiLogReplica Mode = "rapilog-replica"
	// RapiLogSharded partitions commits across several fully independent
	// RapiLog instances on one machine — per-shard disks, loggers, drain
	// daemons and dump zones behind a key-hash router. Built with
	// NewSharded, not New.
	RapiLogSharded Mode = "rapilog-sharded"
)

// Modes lists the paper's four evaluation configurations in evaluation
// order. RapiLogReplica is the replication extension, not part of the
// original comparison sweep.
var Modes = []Mode{NativeSync, NativeAsync, VirtSync, RapiLog}

// Virtualised reports whether the mode runs under the hypervisor.
func (m Mode) Virtualised() bool {
	return m == VirtSync || m == RapiLog || m == RapiLogReplica || m == RapiLogSharded
}

// Replicated reports whether the mode ships the log to standby replicas.
func (m Mode) Replicated() bool { return m == RapiLogReplica }

// PrimaryEndpoint is the primary machine's name on the replication fabric.
const PrimaryEndpoint = "primary"

// CommitMode returns the engine commit policy the mode implies.
func (m Mode) CommitMode() engine.CommitMode {
	if m == NativeAsync {
		return engine.CommitAsync
	}
	return engine.CommitSync
}

// DiskKind selects the storage model.
type DiskKind string

// Storage models.
const (
	DiskHDD DiskKind = "hdd"
	DiskSSD DiskKind = "ssd"
	DiskMem DiskKind = "mem"
)

// Config parameterises a deployment.
type Config struct {
	Seed        int64
	Mode        Mode
	Personality engine.Personality // default engine.PGLike
	Disk        DiskKind           // default DiskHDD
	HDD         disk.HDDConfig     // overrides for DiskHDD
	SSD         disk.SSDConfig     // overrides for DiskSSD
	PSU         power.PSUConfig    // default power.PSUMeasured
	Cores       int                // default 4
	HV          hv.Config
	RapiLog     core.Config
	// Engine knobs.
	CheckpointEvery time.Duration
	LockTimeout     time.Duration
	NoDaemons       bool
	// Partition sizes in sectors (512 B). Defaults: log 128 MiB, dump
	// 64 MiB, data the remainder.
	LogSectors  int64
	DumpSectors int64
	// DedicatedLogDisk puts the log and dump partitions on their own
	// spindle (of the same kind), removing arm contention with data
	// traffic — the classic deployment the paper's testbed used.
	DedicatedLogDisk bool
	// LogDiskKind, if set, gives the (implicitly dedicated) log device a
	// different storage model than the data disk — e.g. DiskMem for the
	// battery-backed NVRAM log the paper positions RapiLog against.
	LogDiskKind DiskKind
	// LogFault, when Enabled, wraps the log partition in a disk.Faulty so
	// campaigns and operators can inject media faults — transient I/O
	// errors, grown bad sectors, latency storms — into the drain/WAL path.
	// The dump zone and the data partition stay clean.
	LogFault disk.FaultConfig
	// DumpFault, when Enabled, wraps the dump zone the same way — the
	// fault the replication campaigns compose with power loss to show what
	// a remote durability domain buys when the local one fails.
	DumpFault disk.FaultConfig
	// Replication (Mode == RapiLogReplica only).
	Replicas  int            // standby count; default 2
	AckPolicy core.AckPolicy // default AckLocal
	Net       netsim.LinkConfig
	// NetSeed drives the fabric's private fault generator; default Seed+2.
	NetSeed int64
	Replica replica.Config
	// Trace enables commit-lifecycle tracing; TraceCapacity sizes the event
	// ring (default 1<<16). Metrics are always registered centrally on the
	// rig's Obs bundle; only the tracer is gated, keeping the default rig
	// free of per-event cost.
	Trace         bool
	TraceCapacity int
	// Flight arms the crash flight recorder: tracing is forced on, an online
	// invariant monitor consumes every event, and the first catastrophic
	// trigger — power loss, degrade entry, or an invariant violation —
	// freezes the recent event window plus trailing metric snapshots into a
	// post-mortem FlightRecord (Rig.Flight, and RecoveryReport.Flight after
	// RecoverAfterPower).
	Flight bool
	// FlightSnapEvery overrides the recorder's metric-snapshot cadence
	// (default 250ms of virtual time).
	FlightSnapEvery time.Duration

	// Sharded-deployment plumbing, set only by NewSharded: namePrefix
	// distinguishes this shard's disks, guests and procs on the shared
	// machine; sharers is the shard count feeding the N-aware sizing rule;
	// sharedHV is the one hypervisor every shard's guest runs under.
	namePrefix string
	sharers    int
	sharedHV   *hv.Hypervisor

	// HA-cluster plumbing, set only by NewCluster and Cluster promotion:
	// primaryName gives this node's shipper its own fabric endpoint (the
	// node name, not the global "primary"); extFabric/extStandbys graft the
	// rig onto the cluster's shared fabric and peer stores instead of
	// building a private fleet; startEpoch makes a promoted rig continue
	// the cluster's monotone epoch sequence; deferPlatform leaves platform
	// assembly (and monitor arming) to the cluster, which must replay the
	// winner's prefix into the log partition before the logger exists.
	primaryName   string
	extFabric     *netsim.Fabric
	extStandbys   []*replica.Standby
	startEpoch    int
	deferPlatform bool
}

// primary returns the fabric endpoint this rig's shipper answers on.
func (c *Config) primary() string {
	if c.primaryName != "" {
		return c.primaryName
	}
	return PrimaryEndpoint
}

func (c *Config) applyDefaults() {
	if c.Mode == "" {
		c.Mode = RapiLog
	}
	if c.Personality.Name == "" {
		c.Personality = engine.PGLike
	}
	if c.Disk == "" {
		c.Disk = DiskHDD
	}
	if c.PSU.Name == "" {
		c.PSU = power.PSUMeasured
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.LogSectors == 0 {
		c.LogSectors = 262144 // 128 MiB
	}
	if c.DumpSectors == 0 {
		c.DumpSectors = 131072 // 64 MiB
	}
	if c.Mode.Replicated() {
		if c.Replicas == 0 {
			c.Replicas = 2
		}
		if c.NetSeed == 0 {
			c.NetSeed = c.Seed + 2
		}
		// Mirror core's default so the rig's monitor and quorum tracing
		// agree with the logger about the effective quorum size.
		if c.AckPolicy.Remote() && c.AckPolicy.K == 0 {
			c.AckPolicy.K = 1
		}
	}
}

// Rig is an assembled deployment.
type Rig struct {
	Cfg      Config
	S        *sim.Sim
	Machine  *power.Machine
	Disk     disk.Device
	LogPart  *disk.Partition
	DumpPart *disk.Partition
	DataPart *disk.Partition
	// LogDev is what the platform's log path actually consumes: LogPart,
	// wrapped by FaultyLog when Config.LogFault is enabled.
	LogDev    disk.Device
	FaultyLog *disk.Faulty // nil unless Config.LogFault.Enabled
	// DumpDev is what the emergency dump actually writes to (and Recover
	// reads from): DumpPart, wrapped by FaultyDump when Config.DumpFault
	// is enabled.
	DumpDev    disk.Device
	FaultyDump *disk.Faulty   // nil unless Config.DumpFault.Enabled
	HV         *hv.Hypervisor // nil in native modes
	Plat       hv.Platform
	Logger     *core.Logger // nil unless Mode is RapiLog or RapiLogReplica
	Obs        *obs.Obs     // shared by every layer of the deployment

	// Replication state (Mode == RapiLogReplica only). The fabric and the
	// standbys model remote machines: they are built once and survive the
	// primary's power cycles; the shipper belongs to the primary's
	// hypervisor and is rebuilt — under a new epoch — with each logger.
	Fabric            *netsim.Fabric
	Standbys          []*replica.Standby
	Shipper           *replica.Shipper
	epoch             int
	LastReplicaReplay replica.RecoverReport

	// Runtime verification (Config.Flight, or Config.Trace for Monitor
	// alone). The monitor re-checks the safety invariants online against the
	// live event stream; the flight recorder freezes a post-mortem at the
	// first catastrophic trigger.
	Monitor *obs.Monitor
	Flight  *obs.FlightRecorder
}

// New builds a deployment. In RapiLog mode the hypervisor and the RapiLog
// device are created as part of "platform firmware" — before any guest
// runs, as on the real system.
func New(cfg Config) (*Rig, error) {
	cfg.applyDefaults()
	s := sim.New(cfg.Seed)
	o := obs.New(obs.Config{TraceEnabled: cfg.Trace || cfg.Flight, TraceCapacity: cfg.TraceCapacity})
	m := power.NewMachine(s, "machine", cfg.Cores, cfg.PSU)
	m.SetObs(o)
	return newOnSubstrate(cfg, s, m, o)
}

// newOnSubstrate builds a deployment's storage and platform stack on an
// existing simulation/machine/observability substrate. New calls it with a
// substrate of its own; NewSharded calls it once per shard with the shared
// machine, a per-shard Obs view (metrics land under "shard.<i>.*"), and a
// per-shard name prefix so every shard gets its own disks, partitions,
// dump zone, guest and (in replicated modes) fabric + standby fleet.
func newOnSubstrate(cfg Config, s *sim.Sim, m *power.Machine, o *obs.Obs) (*Rig, error) {
	mkDisk := func(name string, kind DiskKind) (disk.Device, error) {
		switch kind {
		case DiskHDD:
			hc := cfg.HDD
			if hc.Name == "" {
				hc.Name = name
			}
			hc.Reg = o.Registry()
			return disk.NewHDD(s, m.HardwareDomain(), hc), nil
		case DiskSSD:
			sc := cfg.SSD
			if sc.Name == "" {
				sc.Name = name
			}
			sc.Reg = o.Registry()
			return disk.NewSSD(s, m.HardwareDomain(), sc), nil
		case DiskMem:
			return disk.NewMem(s, disk.MemConfig{Name: name, Persistent: true, Capacity: 1 << 22, Reg: o.Registry()}), nil
		default:
			return nil, fmt.Errorf("rig: unknown disk kind %q", kind)
		}
	}
	dev, err := mkDisk("disk0", cfg.Disk)
	if err != nil {
		return nil, err
	}
	m.AttachDevice(dev)
	logDev := dev
	dataStart := cfg.LogSectors + cfg.DumpSectors
	if cfg.DedicatedLogDisk || (cfg.LogDiskKind != "" && cfg.LogDiskKind != cfg.Disk) {
		logKind := cfg.Disk
		if cfg.LogDiskKind != "" {
			logKind = cfg.LogDiskKind
		}
		logDev, err = mkDisk("disk1-log", logKind)
		if err != nil {
			return nil, err
		}
		m.AttachDevice(logDev)
		dataStart = 0
	}

	logPart, err := disk.NewPartition(logDev, "log", 0, cfg.LogSectors)
	if err != nil {
		return nil, err
	}
	dumpPart, err := disk.NewPartition(logDev, "dump", cfg.LogSectors, cfg.DumpSectors)
	if err != nil {
		return nil, err
	}
	dataPart, err := disk.NewPartition(dev, "data", dataStart, dev.Sectors()-dataStart)
	if err != nil {
		return nil, err
	}

	r := &Rig{
		Cfg: cfg, S: s, Machine: m, Disk: dev,
		LogPart: logPart, DumpPart: dumpPart, DataPart: dataPart,
		Obs: o,
	}
	r.LogDev = logPart
	if cfg.LogFault.Enabled {
		fc := cfg.LogFault
		fc.Reg = o.Registry()
		if fc.Seed == 0 {
			fc.Seed = cfg.Seed + 1
		}
		r.FaultyLog = disk.NewFaulty(logPart, fc)
		r.LogDev = r.FaultyLog
	}
	r.DumpDev = dumpPart
	if cfg.DumpFault.Enabled {
		fc := cfg.DumpFault
		fc.Reg = o.Registry()
		if fc.Seed == 0 {
			fc.Seed = cfg.Seed + 3
		}
		r.FaultyDump = disk.NewFaulty(dumpPart, fc)
		r.DumpDev = r.FaultyDump
	}
	if cfg.Mode.Replicated() {
		if k := cfg.AckPolicy.K; k > cfg.Replicas {
			return nil, fmt.Errorf("rig: ack policy %v needs %d replicas, have %d", cfg.AckPolicy, k, cfg.Replicas)
		}
		if cfg.extFabric != nil {
			// A cluster node rig ships to the cluster's shared peer stores
			// over the shared fabric; it owns neither.
			r.Fabric = cfg.extFabric
			r.Standbys = cfg.extStandbys
		} else {
			r.Fabric = netsim.New(s, netsim.Config{Seed: cfg.NetSeed, Link: cfg.Net, Reg: o.Registry(), Trace: o.Tracer()})
			rc := cfg.Replica
			rc.PrimaryName = cfg.primary()
			rc.Reg = o.Registry()
			rc.SectorSize = r.LogDev.SectorSize()
			rc.Trace = o.Tracer()
			for i := 0; i < cfg.Replicas; i++ {
				// Endpoint names are scoped to this rig's private fabric, so no
				// prefix is needed for uniqueness — just for trace readability.
				r.Standbys = append(r.Standbys, replica.NewStandby(s, r.Fabric, fmt.Sprintf("standby%d", i), rc))
			}
		}
	}
	r.epoch = cfg.startEpoch
	if cfg.deferPlatform {
		return r, nil
	}
	if err := r.assemblePlatform(); err != nil {
		return nil, err
	}
	r.setupVerification()
	return r, nil
}

// setupVerification arms the online invariant monitor (whenever tracing is
// on) and the flight recorder (Config.Flight): the monitor consumes every
// trace event as the tracer's observer, and the recorder freezes at the
// first power loss, degrade entry, or invariant violation.
func (r *Rig) setupVerification() {
	tr := r.Obs.Tracer()
	if !tr.Enabled() {
		return
	}
	// Shards share one tracer, whose single observer slot can't feed N
	// per-shard monitors; sharded deployments check the safety invariant
	// per shard through SafeBound + dump accounting instead.
	if r.Cfg.sharers > 1 {
		return
	}
	mc := obs.MonitorConfig{
		Bound: r.SafeBound(),
		Reg:   r.Obs.Registry(),
		Trace: tr,
	}
	switch r.Cfg.AckPolicy.Kind {
	case core.AckKindQuorum:
		mc.Policy, mc.QuorumK = obs.PolicyQuorum, r.Cfg.AckPolicy.K
	case core.AckKindRemoteOnly:
		mc.Policy, mc.QuorumK = obs.PolicyRemoteOnly, r.Cfg.AckPolicy.K
		// The emergency dump is disabled by design, so exposure is bounded
		// by the configured buffer alone, not the dumpable window.
		if r.Logger != nil {
			mc.Bound = r.Logger.MaxBuffer()
		}
	}
	if r.Cfg.Mode.Replicated() {
		rc := r.Cfg.Replica
		mc.RetainLimit = rc.RetainLimit
		if mc.RetainLimit == 0 {
			mc.RetainLimit = 64 << 20 // replica.Config's own default
		}
		dead, probe := rc.DeadAfter, rc.RetransmitEvery
		if dead == 0 {
			dead = 500 * time.Millisecond
		}
		if probe == 0 {
			probe = 10 * time.Millisecond
		}
		// Eviction legitimately takes an ack-stall window plus a couple of
		// probe rounds; only beyond that is high retention a violation.
		mc.RetainGrace = dead + 2*probe
	}
	r.Monitor = obs.NewMonitor(mc)
	if !r.Cfg.Flight {
		tr.SetObserver(r.Monitor.Consume)
		return
	}
	r.Flight = obs.NewFlightRecorder(r.Obs, r.Monitor, obs.FlightConfig{SnapEvery: r.Cfg.FlightSnapEvery})
	fl := r.Flight
	r.Monitor.OnViolation = func(v obs.Violation) {
		fl.Freeze(v.At(), "invariant:"+v.Invariant)
	}
	mon := r.Monitor
	tr.SetObserver(func(e obs.Event) {
		mon.Consume(e)
		switch e.Kind {
		case obs.EvPowerDC:
			fl.Freeze(e.At, "power-dc-loss")
		case obs.EvDegraded:
			fl.Freeze(e.At, "degraded")
		}
	})
	// Periodic metric snapshots, from a domain-less daemon so the ring keeps
	// filling across guest crashes and power cycles alike.
	r.S.Spawn(nil, "flight.snap", func(p *sim.Proc) {
		p.SetDaemon(true)
		for !fl.Frozen() {
			p.Sleep(fl.SnapEvery())
			fl.Snap(p.Now().Duration())
		}
	})
}

// assemblePlatform builds (or rebuilds, after a power cycle) the platform
// layer: hypervisor + RapiLog device + guest, or the native OS domain.
func (r *Rig) assemblePlatform() error {
	cfg := r.Cfg
	switch cfg.Mode {
	case NativeSync, NativeAsync:
		if r.Plat == nil {
			r.Plat = hv.NewNative(r.Machine, r.LogDev, r.DataPart)
		}
		return nil
	case VirtSync:
		if r.HV == nil {
			hvCfg := cfg.HV
			hvCfg.Obs = r.Obs
			r.HV = hv.New(r.Machine, hvCfg)
		}
		if r.Plat == nil {
			r.Plat = r.HV.NewGuest(cfg.namePrefix+"db", r.LogDev, r.DataPart)
		}
		return nil
	case RapiLog, RapiLogReplica:
		if r.HV == nil {
			// A sharded deployment runs every shard's guest under the one
			// hypervisor the machine actually has; standalone rigs build
			// their own.
			r.HV = cfg.sharedHV
		}
		if r.HV == nil {
			hvCfg := cfg.HV
			hvCfg.Obs = r.Obs
			r.HV = hv.New(r.Machine, hvCfg)
		}
		rlCfg := cfg.RapiLog
		rlCfg.Obs = r.Obs
		if cfg.sharers > 1 && rlCfg.MaxBuffer == 0 {
			// N shards dump concurrently into the same hold-up window: size
			// each buffer by the shared budget, not the whole one. (Metric
			// names stay identical across shards — "rapilog.*" under each
			// shard's Obs view — so fleet roll-ups can match by suffix.)
			shared := core.SafeBufferSizeShared(r.Machine, r.DumpPart, cfg.sharers)
			if shared <= 0 {
				return fmt.Errorf("rig: no safe per-shard buffer for %d sharers on this PSU", cfg.sharers)
			}
			rlCfg.MaxBuffer = shared
		}
		if cfg.Mode.Replicated() {
			// A new power epoch gets a new shipper: the stream restarts at
			// seq 1 under the next epoch number and the standbys keep both
			// (recovery replays epochs in order). The ack/probe daemons run
			// in the hypervisor domain, dying with the machine like the
			// drain does.
			r.epoch++
			names := make([]string, len(r.Standbys))
			for i, st := range r.Standbys {
				names[i] = st.Name()
			}
			rc := cfg.Replica
			rc.PrimaryName = cfg.primary()
			rc.Reg = r.Obs.Registry()
			rc.SectorSize = r.LogDev.SectorSize()
			rc.Trace = r.Obs.Tracer()
			if cfg.AckPolicy.Remote() {
				rc.TraceQuorumK = cfg.AckPolicy.K
			} else {
				// No quorum barrier on the ack path, but the trace still
				// marks first-copy coverage so lag is visible.
				rc.TraceQuorumK = 1
			}
			r.Shipper = replica.NewShipper(r.S, r.Fabric, r.HV.Domain(), r.epoch, names, rc)
			rlCfg.Replicator = r.Shipper
			rlCfg.Policy = cfg.AckPolicy
		}
		logger, err := core.NewLogger(r.Machine, r.HV.Domain(), r.LogDev, r.DumpDev, rlCfg)
		if err != nil {
			return err
		}
		r.Logger = logger
		if r.Plat == nil {
			r.Plat = r.HV.NewGuest(cfg.namePrefix+"db", logger, r.DataPart)
		} else if g, ok := r.Plat.(*hv.Guest); ok {
			g.SetLogBacking(logger)
		}
		return nil
	default:
		return fmt.Errorf("rig: unknown mode %q", cfg.Mode)
	}
}

// EngineConfig returns the engine configuration the rig's mode implies.
func (r *Rig) EngineConfig() engine.Config {
	return engine.Config{
		Personality:     r.Cfg.Personality,
		CommitMode:      r.Cfg.Mode.CommitMode(),
		CheckpointEvery: r.Cfg.CheckpointEvery,
		LockTimeout:     r.Cfg.LockTimeout,
		NoDaemons:       r.Cfg.NoDaemons,
		Obs:             r.Obs,
	}
}

// SafeBound returns the provable exposure limit for this deployment: the
// lesser of the configured buffer bound and SafeBufferSize — the N-sharer
// variant when this rig is one shard of a sharded deployment, since all N
// dumps share the hold-up window. Zero outside RapiLog mode (nothing is
// ever exposed).
func (r *Rig) SafeBound() int64 {
	if r.Logger == nil {
		return 0
	}
	sharers := r.Cfg.sharers
	if sharers < 1 {
		sharers = 1
	}
	bound := r.Logger.MaxBuffer()
	if safe := core.SafeBufferSizeShared(r.Machine, r.DumpPart, sharers); safe < bound {
		bound = safe
	}
	return bound
}

// AuditExposure replays the rig's trace into the durability-exposure report:
// the time-series of acknowledged-but-undrained bytes, per-write ack→durable
// latency, and the peak-vs-bound verdict. Requires Config.Trace.
func (r *Rig) AuditExposure() (obs.ExposureReport, error) {
	tr := r.Obs.Tracer()
	if !tr.Enabled() {
		return obs.ExposureReport{}, fmt.Errorf("rig: exposure audit needs tracing (set Config.Trace)")
	}
	return obs.AuditExposure(tr.Events(), r.SafeBound(), tr.Dropped() > 0), nil
}

// Boot opens the engine (running recovery if the devices hold prior state).
// In RapiLog mode the dump-zone replay — hypervisor firmware work — has
// already happened if RecoverAfterPower was used; first boots find nothing
// to replay.
func (r *Rig) Boot(p *sim.Proc) (*engine.Engine, error) {
	return engine.Open(p, r.Plat, r.EngineConfig())
}

// CrashOS kills the software stack the DBMS runs on: the guest VM in
// virtualised modes (the hypervisor survives), or the whole OS natively.
func (r *Rig) CrashOS() { r.Plat.Crash() }

// RebootAfterCrash revives the platform domain so Boot can run recovery.
// In RapiLog mode the hypervisor — and the logger's buffered data — were
// never lost; the same logger keeps serving the rebooted guest.
func (r *Rig) RebootAfterCrash() { r.Plat.Reboot() }

// CutPower starts a mains-loss event (the plug-pull). Returns the sampled
// hold-up. Everything on the machine dies when the window closes.
func (r *Rig) CutPower() time.Duration { return r.Machine.CutPower() }

// RecoverAfterPower restores power and rebuilds the platform stack,
// replaying the RapiLog dump zone into the log partition before the guest
// boots — exactly the order the real system recovers in. Call Boot next.
func (r *Rig) RecoverAfterPower(p *sim.Proc) (core.RecoveryReport, error) {
	r.Machine.RestorePower()
	if r.HV != nil {
		r.HV.Reboot()
	}
	return r.recoverLogDomain(p)
}

// recoverLogDomain is the per-log-domain half of RecoverAfterPower: with
// power already restored and the hypervisor rebooted, it replays this rig's
// dump zone (and replica stream, when the policy calls for it) and rebuilds
// its platform. A sharded deployment runs it once per shard, in parallel —
// each shard's replay touches only that shard's spindle.
func (r *Rig) recoverLogDomain(p *sim.Proc) (core.RecoveryReport, error) {
	var rep core.RecoveryReport
	r.Plat.Reboot()
	if r.Cfg.Mode == RapiLog || r.Cfg.Mode.Replicated() {
		var err error
		if r.Cfg.Mode.Replicated() {
			rep, err = r.replicatedRecover(p)
		} else {
			rep, err = core.Recover(p, r.LogDev, r.DumpDev)
		}
		if err != nil {
			return rep, err
		}
		// Carry the dying epoch's dump-path counters into the report before
		// the logger is rebuilt: HadDump=false plus DumpFailures>0 is how an
		// audit tells "the dump write failed" from "nothing was buffered".
		if r.Logger != nil {
			st := r.Logger.RapiStats()
			rep.DumpRetries = int(st.DumpRetries.Value())
			rep.DumpFailures = int(st.DumpFailures.Value())
		}
		// A fresh logger for the new power epoch.
		if err := r.assemblePlatform(); err != nil {
			return rep, err
		}
	}
	// The flight recorder froze when DC died; hand the black box to the
	// caller alongside the replay summary.
	rep.Flight = r.Flight.Record()
	return rep, nil
}

// replicatedRecover merges the two durability domains at boot. The local
// domain — drained sectors on the log partition plus the dump zone's
// snapshot of what was still buffered — is authoritative wherever it is
// complete: it holds the newest version of every sector, while a standby
// that lagged (a partition, a crash) holds stale images of sectors the
// drain has since rewritten, and folding those over the log would roll
// acked, locally durable commits back to pre-partition contents. Replica
// records are therefore replayed only when the ack policy actually makes
// the standbys the durability domain for bytes the local domain lost:
//
//   - AckRemoteOnly: always. The dump is disabled by design, so the
//     standbys are the only copy of everything still buffered at the cut.
//   - AckQuorum: only when the dump cannot account for the buffer — a torn
//     image, a failed dump write, an unreadable zone. Any rollback this
//     replay inflicts is bounded to unacknowledged writes: a commit was
//     acked only after k standbys held its bytes, so the surviving
//     standbys' prefixes cover every acked sector state.
//   - AckLocal: never. Acks are not gated on the standbys, so a lagging
//     standby can sit arbitrarily far behind the ack frontier and there is
//     no per-sector version metadata to merge against; replaying could
//     only trade acked local durability for stale remote bytes. (The
//     stream still feeds lag reporting and warm standbys under AckLocal —
//     it just is not a recovery source.)
//
// When both sources replay, replica records land first and the dump's
// intact entries second: the dump snapshotted the newest buffered version
// of everything it covers, so it must win on overlap.
func (r *Rig) replicatedRecover(p *sim.Proc) (core.RecoveryReport, error) {
	r.LastReplicaReplay = replica.RecoverReport{}
	d, derr := core.ReadDump(p, r.DumpDev)
	rep := core.RecoveryReport{HadDump: d.HadDump, Torn: d.Torn}

	dumpFailed := false
	if r.Logger != nil {
		dumpFailed = r.Logger.RapiStats().DumpFailures.Value() > 0
	}
	// The local domain is complete when the dump image accounts for the
	// whole buffer — or when there was provably nothing buffered to dump.
	localComplete := derr == nil && (d.Complete() || (!d.HadDump && !dumpFailed))
	needReplica := false
	switch r.Cfg.AckPolicy.Kind {
	case core.AckKindRemoteOnly:
		needReplica = true
	case core.AckKindQuorum:
		needReplica = !localComplete
	}
	if derr != nil && !needReplica {
		return rep, derr
	}
	if needReplica {
		rr, err := replica.Recover(p, r.Standbys, r.LogDev)
		if err != nil {
			return rep, err
		}
		r.LastReplicaReplay = rr
	}
	if derr == nil && d.HadDump {
		var err error
		rep.Entries, rep.Bytes, err = d.Replay(p, r.LogDev)
		if err != nil {
			return rep, err
		}
		if err := core.InvalidateDump(p, r.DumpDev); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
