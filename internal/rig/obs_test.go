package rig

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
)

// A safe (default-bounded) rapilog rig must keep peak acknowledged-but-
// undrained bytes within the provable bound: the throttle admits no write
// the hold-up window could not dump.
func TestExposureAuditSafeConfig(t *testing.T) {
	r, err := New(Config{Seed: 3, Mode: RapiLog, NoDaemons: true, Trace: true, TraceCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := r.Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		for i := 0; i < 200; i++ {
			tx := e.Begin(p)
			_ = tx.Put(key(i), make([]byte, 512))
			if err := tx.Commit(); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
		}
		// Let the drainer retire the tail so ack→durable gets samples.
		p.Sleep(200 * time.Millisecond)
	})
	if err := r.S.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	rep, err := r.AuditExposure()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TruncatedTrace {
		t.Fatal("trace ring too small for this workload; audit would be approximate")
	}
	if rep.PeakBytes <= 0 {
		t.Fatal("no exposure observed; the workload never reached the log device")
	}
	if rep.Violated() {
		t.Fatalf("safe config violated its bound: %s", rep.Verdict())
	}
	if rep.AckToDurable.Count() == 0 {
		t.Fatal("no ack→durable latency samples")
	}
	if rep.Bound != r.SafeBound() {
		t.Fatalf("audit bound %d != rig SafeBound %d", rep.Bound, r.SafeBound())
	}
}

// An Unsafe config whose buffer exceeds SafeBufferSize must be caught by
// the audit: the hypervisor acks faster than the disk drains, so exposure
// climbs past what the hold-up window can dump.
func TestExposureAuditFlagsUnsafeConfig(t *testing.T) {
	r, err := New(Config{
		Seed:      4,
		Mode:      RapiLog,
		PSU:       power.PSUTypical, // short hold-up => small safe bound
		NoDaemons: true,
		Trace:     true, TraceCapacity: 1 << 20,
		RapiLog: core.Config{MaxBuffer: 8 << 20, Unsafe: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.SafeBound() >= 8<<20 {
		t.Fatalf("test premise broken: safe bound %d not below the 8 MiB buffer", r.SafeBound())
	}
	r.S.Spawn(r.Plat.Domain(), "writer", func(p *sim.Proc) {
		// Burst 2 MiB of distinct-LBA log writes: acks land at copy speed
		// while the disk drains orders of magnitude slower.
		const chunk = 64 << 10
		for i := 0; i < 32; i++ {
			if err := r.Logger.Write(p, int64(i)*2*(chunk/512), make([]byte, chunk), false); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
		p.Sleep(500 * time.Millisecond)
	})
	if err := r.S.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	rep, err := r.AuditExposure()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Violated() {
		t.Fatalf("unsafe config escaped the audit: %s", rep.Verdict())
	}
	if rep.PeakBytes <= rep.Bound {
		t.Fatalf("violation without peak>bound: %s", rep.Verdict())
	}
}

// The audit refuses to run without a trace rather than reporting a vacuous
// zero-exposure pass.
func TestExposureAuditRequiresTracing(t *testing.T) {
	r, err := New(Config{Seed: 1, Mode: RapiLog, NoDaemons: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AuditExposure(); err == nil {
		t.Fatal("audit must fail when tracing is disabled")
	}
}

// Every mode must populate both per-stage commit histograms in the central
// registry: ack latency (commit call -> return) and durable latency
// (commit call -> WAL durability horizon).
func TestCommitStageHistogramsAllModes(t *testing.T) {
	for _, mode := range Modes {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			r, err := New(Config{Seed: 2, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
				e, err := r.Boot(p)
				if err != nil {
					t.Errorf("boot: %v", err)
					return
				}
				for i := 0; i < 50; i++ {
					tx := e.Begin(p)
					_ = tx.Put(key(i), []byte("v"))
					if err := tx.Commit(); err != nil {
						t.Errorf("commit %d: %v", i, err)
						return
					}
				}
				// Async mode acks before durability; sleep past the wal
				// writer interval so the background force lands.
				p.Sleep(100 * time.Millisecond)
			})
			if err := r.S.RunFor(time.Minute); err != nil {
				t.Fatal(err)
			}
			snap := r.Obs.Registry().Snapshot()
			ack, ok := snap.Histograms["engine.commit.ack_latency"]
			if !ok || ack.Count == 0 {
				t.Fatalf("ack_latency missing or empty: %+v", ack)
			}
			durable, ok := snap.Histograms["engine.commit.durable_latency"]
			if !ok || durable.Count == 0 {
				t.Fatalf("durable_latency missing or empty: %+v", durable)
			}
		})
	}
}

func key(i int) string { return "k" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) }
