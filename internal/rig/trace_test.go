package rig

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// runReplicatedTraced drives commits through a traced rapilog-replica rig
// and returns it after the shipper has settled.
func runReplicatedTraced(t *testing.T, cfg Config, commits int) *Rig {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := r.Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		for i := 0; i < commits; i++ {
			tx := e.Begin(p)
			_ = tx.Put(key(i), make([]byte, 256))
			if err := tx.Commit(); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
		}
		// Let the drain retire the tail and the standbys finish acking.
		p.Sleep(500 * time.Millisecond)
	})
	if err := r.S.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	return r
}

// The tentpole property: in a quorum deployment every replica ack links
// back (via its parent span) to a ship event, every quorum_met has at least
// k replicas that both applied and acked the record, and ≥99% of acked
// commits have a complete tx_begin→…→quorum_met causal chain. The online
// monitor must agree that nothing was violated.
func TestReplicatedCausalChainProperty(t *testing.T) {
	r := runReplicatedTraced(t, Config{
		Seed: 11, Mode: RapiLogReplica, Replicas: 2, AckPolicy: core.AckQuorum(2),
		NoDaemons: true, Trace: true, Flight: true, TraceCapacity: 1 << 20,
	}, 200)

	events := r.Obs.Tracer().Events()
	shipSpans := make(map[obs.SpanID]bool)
	applies := make(map[obs.SpanID]map[int64]bool)
	acks := make(map[obs.SpanID]map[int64]bool)
	var nShip, nAck, nQuorum int
	for _, e := range events {
		switch e.Kind {
		case obs.EvShip:
			nShip++
			shipSpans[e.Span] = true
		case obs.EvReplicaApply:
			if applies[e.Parent] == nil {
				applies[e.Parent] = make(map[int64]bool)
			}
			applies[e.Parent][e.Arg2] = true
		case obs.EvReplicaAck:
			nAck++
			if !shipSpans[e.Parent] {
				t.Fatalf("replica_ack seq %d (replica %d) has no ship ancestor (parent span %d)", e.Arg1, e.Arg2, e.Parent)
			}
			if acks[e.Parent] == nil {
				acks[e.Parent] = make(map[int64]bool)
			}
			acks[e.Parent][e.Arg2] = true
		}
	}
	if nShip == 0 || nAck == 0 {
		t.Fatalf("no replication traffic traced (ships=%d acks=%d)", nShip, nAck)
	}
	for _, e := range events {
		if e.Kind != obs.EvQuorumMet {
			continue
		}
		nQuorum++
		if e.Parent == 0 {
			continue // record already truncated when quorum was learned
		}
		covered := 0
		for rep := range acks[e.Parent] {
			if applies[e.Parent][rep] {
				covered++
			}
		}
		if covered < int(e.Arg2) {
			t.Fatalf("quorum_met seq %d claims k=%d but only %d replicas applied+acked", e.Arg1, e.Arg2, covered)
		}
	}
	if nQuorum == 0 {
		t.Fatalf("no quorum_met events under AckQuorum(2)")
	}

	a, err := obs.Analyze(r.Obs.Tracer().Dump(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Chains.Commits < 150 {
		t.Fatalf("only %d assessable commits; workload too small for the property", a.Chains.Commits)
	}
	if ratio := a.Chains.Ratio(); ratio < 0.99 {
		t.Fatalf("causal-chain completeness %.3f < 0.99 (incomplete: %v)", ratio, a.Chains.Incomplete)
	}
	if a.Critical.QuorumBarrier.Count() == 0 {
		t.Fatalf("critical path has no quorum-barrier samples")
	}
	if r.Monitor == nil {
		t.Fatalf("traced rig has no monitor")
	}
	if n := r.Monitor.Total(); n != 0 {
		t.Fatalf("monitor found %d violations on a clean run: %+v", n, r.Monitor.Report())
	}
}

// Replaying a local-ack run's trace under a quorum policy must trip the
// ack-without-evidence invariant: AckLocal acks commits that never waited
// for quorum, which is exactly the broken-policy shape the monitor exists
// to catch.
func TestMonitorFlagsLocalAcksUnderQuorumPolicy(t *testing.T) {
	r := runReplicatedTraced(t, Config{
		Seed: 12, Mode: RapiLogReplica, Replicas: 2, AckPolicy: core.AckLocal(),
		NoDaemons: true, Trace: true, TraceCapacity: 1 << 20,
	}, 100)

	if n := r.Monitor.Total(); n != 0 {
		t.Fatalf("local-policy run violated its own policy: %+v", r.Monitor.Report())
	}
	rep := obs.RunMonitor(r.Obs.Tracer().Events(), obs.MonitorConfig{
		Policy: obs.PolicyQuorum, QuorumK: 2,
	})
	if rep.ByKind[obs.InvAckEvidence.String()] == 0 {
		t.Fatalf("no ack_without_evidence findings replaying local acks under a quorum policy: %+v", rep)
	}
}

// A power cut must freeze the flight recorder at DC loss — not at recovery
// — and RecoverAfterPower must hand the frozen record back in its report.
func TestFlightRecorderFreezesAtPowerLoss(t *testing.T) {
	r, err := New(Config{Seed: 13, Mode: RapiLog, NoDaemons: true, Flight: true})
	if err != nil {
		t.Fatal(err)
	}
	done := r.S.NewEvent("done")
	r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := r.Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		for i := 0; i < 50; i++ {
			tx := e.Begin(p)
			_ = tx.Put(key(i), make([]byte, 256))
			if err := tx.Commit(); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
		}
	})
	r.S.Spawn(nil, "operator", func(p *sim.Proc) {
		defer done.Fire()
		p.Sleep(300 * time.Millisecond)
		r.CutPower()
		p.Sleep(2 * time.Second)
		rep, err := r.RecoverAfterPower(p)
		if err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		if rep.Flight == nil {
			t.Errorf("RecoveryReport.Flight is nil with Config.Flight set")
			return
		}
		if rep.Flight.Reason != "power-dc-loss" {
			t.Errorf("flight froze for %q, want power-dc-loss", rep.Flight.Reason)
		}
		if len(rep.Flight.Events) == 0 {
			t.Errorf("frozen flight record holds no events")
		}
		if rep.Flight.Monitor == nil || rep.Flight.Monitor.Total != 0 {
			t.Errorf("monitor verdict missing or dirty: %+v", rep.Flight.Monitor)
		}
	})
	if err := r.S.RunUntilEvent(done); err != nil {
		t.Fatal(err)
	}
	if !r.Flight.Frozen() {
		t.Fatal("recorder not frozen after power cut")
	}
}

// Config.Flight alone (without Config.Trace) must still enable the tracer:
// the recorder is useless without events.
func TestFlightImpliesTracing(t *testing.T) {
	r, err := New(Config{Seed: 14, Mode: RapiLog, NoDaemons: true, Flight: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Obs.Tracer().Enabled() {
		t.Fatal("Flight did not enable the tracer")
	}
	if r.Flight == nil || r.Monitor == nil {
		t.Fatal("Flight rig missing recorder or monitor")
	}
}
