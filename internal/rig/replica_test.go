package rig

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"

	"repro/internal/sim"
)

func TestReplicaModeProperties(t *testing.T) {
	if !RapiLogReplica.Virtualised() {
		t.Fatal("rapilog-replica must be virtualised")
	}
	if !RapiLogReplica.Replicated() || RapiLog.Replicated() {
		t.Fatal("Replicated() wrong")
	}
	for _, m := range Modes {
		if m == RapiLogReplica {
			t.Fatal("RapiLogReplica must not join the paper's four-mode sweep")
		}
	}
	if _, err := New(Config{Seed: 1, Mode: RapiLogReplica, Replicas: 1, AckPolicy: core.AckQuorum(2), NoDaemons: true}); err == nil {
		t.Fatal("quorum larger than replica set accepted")
	}
}

func TestReplicaModeBootCommitPowerCycle(t *testing.T) {
	r, err := New(Config{Seed: 5, Mode: RapiLogReplica, AckPolicy: core.AckQuorum(1), NoDaemons: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fabric == nil || r.Shipper == nil || len(r.Standbys) != 2 {
		t.Fatalf("replication stack not assembled: fabric=%v shipper=%v standbys=%d",
			r.Fabric != nil, r.Shipper != nil, len(r.Standbys))
	}
	j := workload.NewJournal()
	w := &workload.Stress{}
	r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := r.Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			if err := w.Do(p, e, j); err != nil {
				return
			}
		}
		r.CutPower()
		p.Sleep(time.Hour)
	})
	var res workload.VerifyResult
	r.S.Spawn(nil, "op", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		if _, err := r.RecoverAfterPower(p); err != nil {
			t.Errorf("power recovery: %v", err)
			return
		}
		r.S.Spawn(r.Plat.Domain(), "db2", func(p *sim.Proc) {
			e, err := r.Boot(p)
			if err != nil {
				t.Errorf("reboot: %v", err)
				return
			}
			res, err = j.Verify(p, e)
			if err != nil {
				t.Errorf("verify: %v", err)
			}
		})
	})
	if err := r.S.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 30 {
		t.Fatalf("acked %d/30 before power cut", j.Len())
	}
	if !res.Ok() {
		t.Fatalf("durability violated: %v", res)
	}
	// Every committed byte went through the shipper, and the rebuild after
	// the power cycle must have advanced the stream epoch.
	if r.Shipper.Epoch() != 2 {
		t.Fatalf("shipper epoch = %d after one power cycle, want 2", r.Shipper.Epoch())
	}
	for _, st := range r.Standbys {
		if st.AppliedSeq(1) == 0 {
			t.Fatalf("%s never applied anything from epoch 1", st.Name())
		}
	}
}
