package rig

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestAllModesBootAndCommit(t *testing.T) {
	for _, mode := range Modes {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			r, err := New(Config{Seed: 1, Mode: mode, NoDaemons: true})
			if err != nil {
				t.Fatal(err)
			}
			var ok bool
			r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
				e, err := r.Boot(p)
				if err != nil {
					t.Errorf("boot: %v", err)
					return
				}
				tx := e.Begin(p)
				_ = tx.Put("k", []byte("v"))
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				tx2 := e.Begin(p)
				v, found, _ := tx2.Get("k")
				ok = found && string(v) == "v"
				_ = tx2.Commit()
			})
			if err := r.S.RunFor(time.Minute); err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("commit/read round trip failed")
			}
		})
	}
}

func TestModeProperties(t *testing.T) {
	if NativeSync.Virtualised() || NativeAsync.Virtualised() {
		t.Fatal("native modes report virtualised")
	}
	if !VirtSync.Virtualised() || !RapiLog.Virtualised() {
		t.Fatal("virt modes report native")
	}
	if NativeAsync.CommitMode() != engine.CommitAsync {
		t.Fatal("native-async commit mode")
	}
	if RapiLog.CommitMode() != engine.CommitSync {
		t.Fatal("rapilog must use sync commits (that is the whole point)")
	}
}

func TestRapiLogModeHasLoggerAndHV(t *testing.T) {
	r, err := New(Config{Seed: 1, Mode: RapiLog})
	if err != nil {
		t.Fatal(err)
	}
	if r.Logger == nil || r.HV == nil {
		t.Fatal("rapilog rig missing logger or hypervisor")
	}
	if r.Logger.MaxBuffer() <= 0 {
		t.Fatal("logger has no buffer budget")
	}
	r2, err := New(Config{Seed: 1, Mode: NativeSync})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Logger != nil || r2.HV != nil {
		t.Fatal("native rig has virtualisation objects")
	}
}

func TestGuestCrashRecoveryRapiLog(t *testing.T) {
	r, err := New(Config{Seed: 2, Mode: RapiLog, NoDaemons: true})
	if err != nil {
		t.Fatal(err)
	}
	var acked []string
	crashed := r.S.NewEvent("crashed")
	r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := r.Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		for i := 0; i < 15; i++ {
			tx := e.Begin(p)
			k := fmt.Sprintf("k%d", i)
			_ = tx.Put(k, []byte("v"))
			if err := tx.Commit(); err != nil {
				return
			}
			acked = append(acked, k)
		}
		crashed.Fire()
		r.CrashOS()
	})
	verified := false
	r.S.Spawn(nil, "op", func(p *sim.Proc) {
		crashed.Wait(p)
		p.Sleep(time.Millisecond)
		r.RebootAfterCrash()
		r.S.Spawn(r.Plat.Domain(), "db2", func(p *sim.Proc) {
			e, err := r.Boot(p)
			if err != nil {
				t.Errorf("reboot: %v", err)
				return
			}
			tx := e.Begin(p)
			for _, k := range acked {
				if _, ok, _ := tx.Get(k); !ok {
					t.Errorf("acked %s lost after guest crash", k)
				}
			}
			_ = tx.Commit()
			verified = true
		})
	})
	if err := r.S.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(acked) != 15 || !verified {
		t.Fatalf("acked=%d verified=%v", len(acked), verified)
	}
}

func TestPowerCycleRecoveryRapiLog(t *testing.T) {
	r, err := New(Config{Seed: 3, Mode: RapiLog, NoDaemons: true})
	if err != nil {
		t.Fatal(err)
	}
	j := workload.NewJournal()
	w := &workload.Stress{}
	r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := r.Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			if err := w.Do(p, e, j); err != nil {
				return
			}
		}
		r.CutPower()
		p.Sleep(time.Hour)
	})
	var res workload.VerifyResult
	r.S.Spawn(nil, "op", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		if _, err := r.RecoverAfterPower(p); err != nil {
			t.Errorf("power recovery: %v", err)
			return
		}
		r.S.Spawn(r.Plat.Domain(), "db2", func(p *sim.Proc) {
			e, err := r.Boot(p)
			if err != nil {
				t.Errorf("reboot: %v", err)
				return
			}
			res, err = j.Verify(p, e)
			if err != nil {
				t.Errorf("verify: %v", err)
			}
		})
	})
	if err := r.S.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 30 {
		t.Fatalf("acked %d/30 before power cut", j.Len())
	}
	if !res.Ok() {
		t.Fatalf("durability violated: %v", res)
	}
}

func TestNativeAsyncIsUnsafeUnderCrash(t *testing.T) {
	r, err := New(Config{Seed: 4, Mode: NativeAsync, NoDaemons: true})
	if err != nil {
		t.Fatal(err)
	}
	j := workload.NewJournal()
	w := &workload.Stress{}
	crashed := r.S.NewEvent("crashed")
	r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := r.Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			_ = w.Do(p, e, j)
		}
		crashed.Fire()
		r.CrashOS()
	})
	var res workload.VerifyResult
	r.S.Spawn(nil, "op", func(p *sim.Proc) {
		crashed.Wait(p)
		p.Sleep(time.Millisecond)
		r.RebootAfterCrash()
		r.S.Spawn(r.Plat.Domain(), "db2", func(p *sim.Proc) {
			e, err := r.Boot(p)
			if err != nil {
				t.Errorf("reboot: %v", err)
				return
			}
			res, err = j.Verify(p, e)
			if err != nil {
				t.Errorf("verify: %v", err)
			}
		})
	})
	if err := r.S.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.Missing == 0 {
		t.Fatal("native-async lost nothing across a crash; the unsafe baseline should lose acks")
	}
}

func TestUnknownConfigsRejected(t *testing.T) {
	if _, err := New(Config{Mode: "bogus"}); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if _, err := New(Config{Disk: "tape"}); err == nil {
		t.Fatal("bogus disk accepted")
	}
}

func TestDedicatedLogDiskSeparatesDevices(t *testing.T) {
	r, err := New(Config{Seed: 5, Mode: RapiLog, DedicatedLogDisk: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.LogPart.Parent() == r.DataPart.Parent() {
		t.Fatal("log and data share a spindle despite DedicatedLogDisk")
	}
	if r.LogPart.Parent() != r.DumpPart.Parent() {
		t.Fatal("log and dump zone must share the dedicated spindle")
	}
	// The stack must still work end to end, including power recovery.
	j := workload.NewJournal()
	w := &workload.Stress{}
	r.S.Spawn(r.Plat.Domain(), "db", func(p *sim.Proc) {
		e, err := r.Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		for i := 0; i < 20; i++ {
			if err := w.Do(p, e, j); err != nil {
				return
			}
		}
		r.CutPower()
		p.Sleep(time.Hour)
	})
	var res workload.VerifyResult
	r.S.Spawn(nil, "op", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		if _, err := r.RecoverAfterPower(p); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		r.S.Spawn(r.Plat.Domain(), "db2", func(p *sim.Proc) {
			e, err := r.Boot(p)
			if err != nil {
				t.Errorf("reboot: %v", err)
				return
			}
			res, err = j.Verify(p, e)
			if err != nil {
				t.Errorf("verify: %v", err)
			}
		})
	})
	if err := r.S.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 20 || !res.Ok() {
		t.Fatalf("durability on dedicated spindle: acked=%d %v", j.Len(), res)
	}
}
