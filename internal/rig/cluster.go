package rig

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ha"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/sim"
)

// ClusterConfig parameterises a highly-available deployment: N full
// machines on one fabric, one of them leading, the rest holding standby
// stores, with an ha.Coordinator watching the leader.
type ClusterConfig struct {
	// Nodes is the machine count; default 3 (leader + 2 standby stores).
	Nodes int
	// Rig is the per-node deployment template. Mode is forced to
	// RapiLogReplica, Replicas to Nodes-1, and tracing on (the online
	// monitor is the split-brain detector). An AckLocal policy is forced
	// up to AckQuorum(1): a local-ack cluster has no safe takeover, since
	// no census quorum intersects an empty ack quorum.
	Rig Config
	// HA parameterises the coordinator (heartbeat cadence, failure
	// detection window, round timeouts).
	HA ha.Config
}

func (c *ClusterConfig) applyDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	c.Rig.Mode = RapiLogReplica
	c.Rig.Replicas = c.Nodes - 1
	c.Rig.Trace = true
	c.Rig.Flight = true
	if !c.Rig.AckPolicy.Remote() {
		c.Rig.AckPolicy = core.AckQuorum(1)
	}
	if c.Rig.CheckpointEvery == 0 {
		// Promotion rebuilds the leader's state from the replicated WAL
		// alone; a checkpoint that let the WAL recycle would leave the
		// stream unable to reproduce pre-checkpoint history on a fresh
		// machine. Until snapshot-based catch-up ships (see ROADMAP),
		// cluster mode pins checkpoints far past any trial horizon.
		c.Rig.CheckpointEvery = 24 * time.Hour
	}
}

// clusterNode is one machine's slot in the cluster: its store is the
// always-on replica service, its rig exists only while (or after) the node
// leads.
type clusterNode struct {
	name  string
	store *replica.Standby
	rig   *Rig // nil until first promoted (or initial leader)
}

// Cluster is an assembled HA deployment. Exactly one node leads at a
// time; its Rig carries the full machine/logger/shipper stack. The other
// nodes run standby stores on the shared fabric. The coordinator fails
// the leader over on silence; sessions follow via OnPromote.
type Cluster struct {
	Cfg    ClusterConfig
	S      *sim.Sim
	Obs    *obs.Obs
	Fabric *netsim.Fabric
	Coord  *ha.Coordinator

	// Monitor/Flight are the cluster-wide runtime verification stack; the
	// monitor's single-writer-per-epoch invariant is the split-brain
	// detector the failover campaigns audit.
	Monitor *obs.Monitor
	Flight  *obs.FlightRecorder

	// OnPromote, when set, is called after every successful promotion with
	// the new generation number, the new leader's name, the freshly booted
	// engine, and its guest domain — the hook the session directory
	// redirects through.
	OnPromote func(gen int, name string, e *engine.Engine, dom *sim.Domain)

	// LastReplay summarises the most recent promotion's prefix replay.
	LastReplay replica.RecoverReport

	nodes      []*clusterNode
	leader     int
	epoch      int
	generation int
}

// NewCluster builds the fabric, the per-node standby stores, the initial
// leader's full rig on node 0, and the coordinator.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg.applyDefaults()
	cfg.Rig.applyDefaults()
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("rig: cluster needs at least 2 nodes, got %d", cfg.Nodes)
	}
	if k := cfg.Rig.AckPolicy.K; k > cfg.Nodes-1 {
		return nil, fmt.Errorf("rig: ack policy %v needs %d standby stores, have %d", cfg.Rig.AckPolicy, k, cfg.Nodes-1)
	}

	s := sim.New(cfg.Rig.Seed)
	o := obs.New(obs.Config{TraceEnabled: true, TraceCapacity: cfg.Rig.TraceCapacity})
	c := &Cluster{Cfg: cfg, S: s, Obs: o, generation: 1}
	c.Fabric = netsim.New(s, netsim.Config{Seed: cfg.Rig.NetSeed, Link: cfg.Rig.Net, Reg: o.Registry(), Trace: o.Tracer()})

	rc := cfg.Rig.Replica
	rc.Reg = o.Registry()
	rc.Trace = o.Tracer()
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node%d", i)
		c.nodes = append(c.nodes, &clusterNode{
			name:  name,
			store: replica.NewStandby(s, c.Fabric, name+".log", rc),
		})
	}

	// Node 0 leads first. Its own store is crashed while it leads: a
	// leader does not replicate to itself, and a store that kept acking
	// its own stream would let a one-node "quorum" survive the machine.
	r, err := c.buildNodeRig(0, 0)
	if err != nil {
		return nil, err
	}
	if err := r.assemblePlatform(); err != nil {
		return nil, err
	}
	c.nodes[0].rig = r
	c.leader = 0
	c.epoch = r.epoch
	c.nodes[0].store.Crash()
	c.spawnAgent(r, c.nodes[0].name)

	// One monitor for the whole cluster, armed off the initial leader's
	// rig (node rigs are built with deferPlatform, so none of them arms
	// its own observer): every node's events flow through the shared
	// tracer into the same invariant state.
	r.setupVerification()
	c.Monitor, c.Flight = r.Monitor, r.Flight

	hc := cfg.HA
	hc.Reg = o.Registry()
	hc.Trace = o.Tracer()
	c.Coord = ha.New(s, c.Fabric, c, hc)
	return c, nil
}

// buildNodeRig assembles the storage half of a node's deployment (machine,
// disks, partitions) on the shared substrate, deferring the platform so
// promotion can replay the replicated prefix into the log partition first.
func (c *Cluster) buildNodeRig(idx, startEpoch int) (*Rig, error) {
	name := c.nodes[idx].name
	ncfg := c.Cfg.Rig
	ncfg.namePrefix = name + "."
	ncfg.primaryName = name
	ncfg.extFabric = c.Fabric
	ncfg.extStandbys = c.peerStoresOf(idx)
	ncfg.Replicas = len(ncfg.extStandbys)
	ncfg.startEpoch = startEpoch
	ncfg.deferPlatform = true
	m := power.NewMachine(c.S, name+".machine", ncfg.Cores, ncfg.PSU)
	no := c.Obs.Sub(name)
	m.SetObs(no)
	return newOnSubstrate(ncfg, c.S, m, no)
}

// spawnAgent starts the leader's heartbeat responder in its hypervisor
// domain: it dies with the machine (power cut) and goes unreachable with
// it (isolation) — exactly the signals the failure detector keys on.
func (c *Cluster) spawnAgent(r *Rig, name string) {
	ep := c.Fabric.Endpoint(name + ".ha")
	c.S.Spawn(r.HV.Domain(), name+".ha-agent", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			m := ep.Recv(p)
			if pg, ok := m.Payload.(ha.Ping); ok {
				ep.Send(m.From, ha.MsgBytes, ha.Pong{Seq: pg.Seq, From: name + ".ha"})
			}
		}
	})
}

// peerStoresOf returns every node's store except idx's own.
func (c *Cluster) peerStoresOf(idx int) []*replica.Standby {
	var out []*replica.Standby
	for i, n := range c.nodes {
		if i != idx {
			out = append(out, n.store)
		}
	}
	return out
}

func (c *Cluster) nodeByName(name string) int {
	for i, n := range c.nodes {
		if n.name == name {
			return i
		}
	}
	return -1
}

// LeaderName returns the current leader node's name.
func (c *Cluster) LeaderName() string { return c.nodes[c.leader].name }

// LeaderRig returns the current leader's rig.
func (c *Cluster) LeaderRig() *Rig { return c.nodes[c.leader].rig }

// Generation returns the leadership generation (1 = the initial leader).
func (c *Cluster) Generation() int { return c.generation }

// Store returns node idx's standby store (testing and campaigns).
func (c *Cluster) Store(idx int) *replica.Standby { return c.nodes[idx].store }

// --- ha.Cluster ---

// LeaderAgent implements ha.Cluster.
func (c *Cluster) LeaderAgent() string { return c.LeaderName() + ".ha" }

// LeaderPrimary implements ha.Cluster.
func (c *Cluster) LeaderPrimary() string { return c.LeaderName() }

// PeerStores implements ha.Cluster: the electorate.
func (c *Cluster) PeerStores() []string {
	var out []string
	for i, n := range c.nodes {
		if i != c.leader {
			out = append(out, n.store.Name())
		}
	}
	return out
}

// AllStores implements ha.Cluster: the fence targets.
func (c *Cluster) AllStores() []string {
	var out []string
	for _, n := range c.nodes {
		out = append(out, n.store.Name())
	}
	return out
}

// MaxEpoch implements ha.Cluster.
func (c *Cluster) MaxEpoch() int { return c.epoch }

// Quorum implements ha.Cluster: N−K+1 over the peer stores, the smallest
// census that provably intersects every ack quorum the deposed leader
// could have assembled.
func (c *Cluster) Quorum() int { return len(c.nodes) - 1 - c.Cfg.Rig.AckPolicy.K + 1 }

// Promote implements ha.Cluster: build a fresh machine stack on the
// winner, replay the replicated prefix into its log partition, start the
// logger + shipper at the fenced epoch, boot the engine (full-WAL
// recovery against an empty data partition), and publish the new
// generation.
func (c *Cluster) Promote(p *sim.Proc, winnerStore string, epoch int) (int64, error) {
	idx := -1
	for i, n := range c.nodes {
		if n.store.Name() == winnerStore {
			idx = i
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("rig: promote: unknown store %q", winnerStore)
	}
	node := c.nodes[idx]
	r, err := c.buildNodeRig(idx, epoch-1)
	if err != nil {
		return 0, err
	}

	// Replay from every reachable store — the per-epoch best prefix is a
	// superset of the winner's own (the election already proved the winner
	// maximal among a quorum; extra unacked suffix from any store is the
	// same single writer's stream, so replaying more is strictly safe).
	var srcs []*replica.Standby
	for _, n := range c.nodes {
		if n.store.Alive() && !c.Fabric.Isolated(n.store.Name()) {
			srcs = append(srcs, n.store)
		}
	}
	rr, err := replica.Recover(p, srcs, r.LogDev)
	if err != nil {
		return 0, err
	}
	c.LastReplay = rr

	if err := r.assemblePlatform(); err != nil {
		return rr.Bytes, err
	}
	node.rig = r
	c.leader = idx
	c.epoch = r.epoch
	c.spawnAgent(r, node.name)

	// Boot in the guest domain, like any other first boot; the
	// coordinator waits so a takeover is not "done" until the engine
	// serves.
	booted := c.S.NewEvent(node.name + ".booted")
	var bootErr error
	c.S.Spawn(r.Plat.Domain(), node.name+".db", func(bp *sim.Proc) {
		defer booted.Fire()
		e, err := r.Boot(bp)
		if err != nil {
			bootErr = err
			return
		}
		c.generation++
		if c.OnPromote != nil {
			c.OnPromote(c.generation, node.name, e, r.Plat.Domain())
		}
	})
	booted.Wait(p)
	if bootErr != nil {
		return rr.Bytes, fmt.Errorf("promotion boot: %w", bootErr)
	}
	return rr.Bytes, nil
}

// --- campaign fault surface ---

// CutLeaderPower pulls the leader machine's plug; returns the sampled
// hold-up. The heartbeat agent dies with the hypervisor domain.
func (c *Cluster) CutLeaderPower() time.Duration {
	return c.LeaderRig().Machine.CutPower()
}

// IsolateLeader partitions the leader from the fabric: its shipper and
// heartbeat endpoints go dark (its own store is already crashed/isolated
// while it leads).
func (c *Cluster) IsolateLeader() {
	name := c.LeaderName()
	c.Fabric.Isolate(name, name+".ha")
}

// HealNode restores a node's shipper and agent endpoints after an
// isolation.
func (c *Cluster) HealNode(name string) {
	c.Fabric.Restore(name, name+".ha")
}

// RejoinAsStandby demotes a deposed ex-leader into a standby: its shipper
// is stopped (releasing every retained buffer and killing its daemons —
// the epoch is fenced, so the stream could never ack again anyway), its
// guest is crashed, and its store restarts empty and fenced at the
// current epoch. The acked-local-but-not-quorum suffix in its machine's
// buffer and log partition is structurally truncated: nothing ever reads
// it again, and the store catches up from the live epoch's stream.
func (c *Cluster) RejoinAsStandby(p *sim.Proc, name string) error {
	idx := c.nodeByName(name)
	if idx < 0 {
		return fmt.Errorf("rig: rejoin: unknown node %q", name)
	}
	if idx == c.leader {
		return fmt.Errorf("rig: rejoin: %s is the current leader", name)
	}
	node := c.nodes[idx]
	if node.rig != nil {
		if node.rig.Shipper != nil {
			node.rig.Shipper.Stop()
		}
		node.rig.Plat.Crash()
	}
	node.store.Restart()
	// Fence before the store can ack anything: a crashed store missed the
	// takeover's fence broadcast, and the deposed epoch's retransmits must
	// not find an unfenced inbox.
	c.Coord.FenceNode(p, node.store.Name())
	return nil
}
