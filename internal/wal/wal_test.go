package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/power"
	"repro/internal/sim"
)

func memLog(t *testing.T, seed int64, cfg Config) (*sim.Sim, disk.Device, *Log) {
	t.Helper()
	s := sim.New(seed)
	dev := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 1 << 16})
	l, err := New(s, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev, l
}

func TestAppendForceScanRoundTrip(t *testing.T) {
	s, dev, l := memLog(t, 1, Config{})
	var want []Record
	s.Spawn(nil, "w", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			payload := []byte(fmt.Sprintf("update-%03d", i))
			lsn, err := l.Append(p, RecUpdate, uint64(i/5), payload)
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			want = append(want, Record{LSN: lsn, TxID: uint64(i / 5), Type: RecUpdate, Payload: payload})
		}
		if err := l.Force(p, l.AppendedLSN()); err != nil {
			t.Errorf("force: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s2 := sim.New(2)
	var res ScanResult
	s2.Spawn(nil, "r", func(p *sim.Proc) {
		var err error
		res, err = Scan(p, dev, Config{}, FirstLSN(Config{}))
		if err != nil {
			t.Errorf("scan: %v", err)
		}
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(res.Records), len(want))
	}
	for i, r := range res.Records {
		w := want[i]
		if r.LSN != w.LSN || r.TxID != w.TxID || r.Type != w.Type || !bytes.Equal(r.Payload, w.Payload) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, w)
		}
	}
	if res.Torn {
		t.Fatal("clean log reported torn")
	}
	if res.EndLSN != l.AppendedLSN() {
		t.Fatalf("EndLSN = %d, want %d", res.EndLSN, l.AppendedLSN())
	}
}

func TestUnforcedRecordsNotOnDisk(t *testing.T) {
	s, dev, l := memLog(t, 1, Config{})
	s.Spawn(nil, "w", func(p *sim.Proc) {
		_, _ = l.Append(p, RecUpdate, 1, []byte("volatile"))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s2 := sim.New(2)
	var n int
	s2.Spawn(nil, "r", func(p *sim.Proc) {
		res, _ := Scan(p, dev, Config{}, FirstLSN(Config{}))
		n = len(res.Records)
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("unforced record visible on disk (%d records)", n)
	}
}

func TestForceIdempotentAndMonotone(t *testing.T) {
	s, _, l := memLog(t, 1, Config{})
	s.Spawn(nil, "w", func(p *sim.Proc) {
		lsn, _ := l.Append(p, RecCommit, 1, nil)
		_ = l.Force(p, lsn+1)
		forces := l.Stats().Forces.Value()
		_ = l.Force(p, lsn) // already durable
		if l.Stats().Forces.Value() != forces {
			t.Error("redundant force hit the disk")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitPiggyback(t *testing.T) {
	// Slow device: concurrent committers should share physical forces.
	s := sim.New(1)
	hw := s.NewDomain("hw")
	hdd := disk.NewHDD(s, hw, disk.HDDConfig{})
	part, _ := disk.NewPartition(hdd, "log", 0, 65536)
	l, err := New(s, part, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 16
	done := 0
	for i := 0; i < clients; i++ {
		i := i
		s.Spawn(nil, fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * 50 * time.Microsecond)
			lsn, _ := l.Append(p, RecCommit, uint64(i), []byte("commit"))
			if err := l.Force(p, lsn+1); err != nil {
				t.Errorf("force: %v", err)
			}
			done++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != clients {
		t.Fatalf("%d/%d commits completed", done, clients)
	}
	forces := l.Stats().Forces.Value()
	if forces >= clients {
		t.Fatalf("%d physical forces for %d clients: no group commit", forces, clients)
	}
	if l.Stats().ForceWaits.Value() == 0 {
		t.Fatal("no piggybacked committers recorded")
	}
}

func TestCommitDelayWidensBatch(t *testing.T) {
	run := func(delay time.Duration) int64 {
		s := sim.New(1)
		hw := s.NewDomain("hw")
		hdd := disk.NewHDD(s, hw, disk.HDDConfig{})
		part, _ := disk.NewPartition(hdd, "log", 0, 65536)
		l, _ := New(s, part, Config{CommitDelay: delay})
		for i := 0; i < 32; i++ {
			i := i
			s.Spawn(nil, fmt.Sprintf("c%d", i), func(p *sim.Proc) {
				p.Sleep(time.Duration(i) * 100 * time.Microsecond)
				lsn, _ := l.Append(p, RecCommit, uint64(i), []byte("x"))
				_ = l.Force(p, lsn+1)
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return l.Stats().Forces.Value()
	}
	noDelay := run(0)
	withDelay := run(2 * time.Millisecond)
	if withDelay >= noDelay {
		t.Fatalf("commit_delay did not reduce forces: %d vs %d", withDelay, noDelay)
	}
}

func TestRecordTooBig(t *testing.T) {
	s, _, l := memLog(t, 1, Config{})
	s.Spawn(nil, "w", func(p *sim.Proc) {
		if _, err := l.Append(p, RecUpdate, 1, make([]byte, Config{}.MaxPayload()+1)); !errors.Is(err, ErrTooBig) {
			t.Errorf("oversized append: %v", err)
		}
		if _, err := l.Append(p, RecUpdate, 1, make([]byte, Config{}.MaxPayload())); err != nil {
			t.Errorf("max-size append rejected: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncatesCleanly(t *testing.T) {
	// Force to an HDD, cutting power mid-force: scan recovers a prefix and
	// flags the tear.
	s := sim.New(3)
	m := power.NewMachine(s, "m0", 2, power.PSUConfig{
		Name: "instant", HoldupMin: time.Microsecond, HoldupMax: time.Microsecond,
		InterruptLatency: time.Microsecond,
	})
	hdd := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{ChunkSectors: 1})
	m.AttachDevice(hdd)
	part, _ := disk.NewPartition(hdd, "log", 0, 65536)
	dom := m.NewDomain("db")
	var forcedBefore int
	s.Spawn(dom, "w", func(p *sim.Proc) {
		l, _ := New(s, part, Config{})
		// Round 1: commit a batch and force it fully.
		for i := 0; i < 20; i++ {
			_, _ = l.Append(p, RecUpdate, 1, bytes.Repeat([]byte{1}, 300))
		}
		_ = l.Force(p, l.AppendedLSN())
		forcedBefore = 20
		// Round 2: more appends; power dies mid-force.
		for i := 0; i < 20; i++ {
			_, _ = l.Append(p, RecUpdate, 2, bytes.Repeat([]byte{2}, 300))
		}
		s.After(200*time.Microsecond, func() { m.CutPower() })
		_ = l.Force(p, l.AppendedLSN())
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	// Reboot: scan what survived.
	var res ScanResult
	s2 := sim.New(4)
	s2.Spawn(nil, "r", func(p *sim.Proc) {
		res, _ = Scan(p, s2AttachMedia(s2, hdd, m), Config{}, FirstLSN(Config{}))
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(res.Records) < forcedBefore {
		t.Fatalf("scan lost fully-forced records: %d < %d", len(res.Records), forcedBefore)
	}
	if len(res.Records) >= forcedBefore+20 {
		t.Fatalf("scan returned all %d records despite mid-force power cut", len(res.Records))
	}
	for i, r := range res.Records[:forcedBefore] {
		if r.Payload[0] != 1 {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

// s2AttachMedia re-exposes the HDD media in a fresh simulation after power
// loss: the platter contents survive, the simulation instance does not
// matter to them.
func s2AttachMedia(s2 *sim.Sim, hdd *disk.HDD, m *power.Machine) disk.Device {
	m.RestorePower()
	part, _ := disk.NewPartition(hdd, "log2", 0, 65536)
	return part
}

func TestScanRejectsStaleGenerationAfterWrap(t *testing.T) {
	// Fill a tiny log more than once around; scan must return only the
	// current generation.
	s := sim.New(5)
	dev := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 64}) // 8 blocks
	l, err := New(s, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var appended int
	s.Spawn(nil, "w", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			if _, err := l.Append(p, RecUpdate, uint64(i), bytes.Repeat([]byte{byte(i)}, 900)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			appended++
			// Continuously advance the checkpoint horizon so wrap is legal.
			l.SetOldestNeeded(l.AppendedLSN())
			_ = l.Force(p, l.AppendedLSN())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Scan from the oldest surviving block boundary.
	startSeq := (l.AppendedLSN()/uint64(4096) + 1) - 8 + 1
	var res ScanResult
	s2 := sim.New(6)
	s2.Spawn(nil, "r", func(p *sim.Proc) {
		res, _ = Scan(p, dev, Config{}, startSeq*4096)
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("scan found nothing after wrap")
	}
	for _, r := range res.Records {
		if r.LSN < startSeq*4096 {
			t.Fatalf("scan returned pre-wrap record at LSN %d", r.LSN)
		}
	}
}

func TestLogFullWhenCheckpointStalls(t *testing.T) {
	s := sim.New(7)
	dev := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 32}) // 4 blocks
	l, err := New(s, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sawFull bool
	s.Spawn(nil, "w", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			if _, err := l.Append(p, RecUpdate, 1, bytes.Repeat([]byte{1}, 900)); err != nil {
				sawFull = errors.Is(err, ErrLogFull)
				return
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawFull {
		t.Fatal("log never reported full despite stalled checkpoint horizon")
	}
}

func TestOpenAtResumesTail(t *testing.T) {
	s, dev, l := memLog(t, 8, Config{})
	var endLSN uint64
	s.Spawn(nil, "w", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			_, _ = l.Append(p, RecUpdate, 1, []byte("before-crash"))
		}
		_ = l.Force(p, l.AppendedLSN())
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	// "Reboot": scan, reopen at the end, append more, force, rescan.
	s2 := sim.New(9)
	var total int
	s2.Spawn(nil, "recover", func(p *sim.Proc) {
		res, err := Scan(p, dev, Config{}, FirstLSN(Config{}))
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		endLSN = res.EndLSN
		l2, err := OpenAt(p, s2, dev, Config{}, endLSN)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for i := 0; i < 3; i++ {
			_, _ = l2.Append(p, RecUpdate, 2, []byte("after-crash"))
		}
		_ = l2.Force(p, l2.AppendedLSN())
		res2, err := Scan(p, dev, Config{}, FirstLSN(Config{}))
		if err != nil {
			t.Errorf("rescan: %v", err)
			return
		}
		total = len(res2.Records)
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("after resume, scan found %d records, want 6", total)
	}
}

func TestRecTypeStrings(t *testing.T) {
	for _, tc := range []struct {
		t    RecType
		want string
	}{
		{RecUpdate, "update"}, {RecCommit, "commit"}, {RecAbort, "abort"},
		{RecCheckpoint, "checkpoint"}, {RecType(99), "rectype(99)"},
	} {
		if tc.t.String() != tc.want {
			t.Errorf("%d.String() = %q", tc.t, tc.t.String())
		}
	}
}

// Property: whatever sequence of appends and forces happens, Scan returns
// exactly the records at or below the last force, in order, with intact
// payloads.
func TestScanReturnsForcedPrefixProperty(t *testing.T) {
	prop := func(seed int64, ops uint8) bool {
		s := sim.New(seed)
		dev := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 1 << 16})
		l, err := New(s, dev, Config{})
		if err != nil {
			return false
		}
		type rec struct {
			lsn     uint64
			payload []byte
		}
		var appended []rec
		var forcedCount int
		nOps := int(ops%60) + 5
		s.Spawn(nil, "w", func(p *sim.Proc) {
			for i := 0; i < nOps; i++ {
				if s.Rand().Intn(4) == 0 && len(appended) > 0 {
					_ = l.Force(p, l.AppendedLSN())
					forcedCount = len(appended)
				} else {
					n := 1 + s.Rand().Intn(500)
					payload := bytes.Repeat([]byte{byte(i)}, n)
					lsn, err := l.Append(p, RecUpdate, uint64(i), payload)
					if err != nil {
						return
					}
					appended = append(appended, rec{lsn, payload})
				}
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		var res ScanResult
		s2 := sim.New(seed + 1)
		s2.Spawn(nil, "r", func(p *sim.Proc) {
			res, _ = Scan(p, dev, Config{}, FirstLSN(Config{}))
		})
		if err := s2.Run(); err != nil {
			return false
		}
		if len(res.Records) != forcedCount {
			t.Logf("seed=%d: scanned %d, forced %d", seed, len(res.Records), forcedCount)
			return false
		}
		for i, r := range res.Records {
			if r.LSN != appended[i].lsn || !bytes.Equal(r.Payload, appended[i].payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// flakyDev fails the first failN writes with a wrapped transient error, then
// behaves normally.
type flakyDev struct {
	disk.Device
	failN int
}

func (f *flakyDev) Write(p *sim.Proc, lba int64, data []byte, fua bool) error {
	if f.failN > 0 {
		f.failN--
		return fmt.Errorf("flaky: %w", disk.ErrIO)
	}
	return f.Device.Write(p, lba, data, fua)
}

// TestForceRetriesTransientMediaError: a force whose block write fails
// transiently inside the retry budget must still succeed, count its retries,
// and leave the records recoverable.
func TestForceRetriesTransientMediaError(t *testing.T) {
	s := sim.New(11)
	mem := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 1 << 16})
	fd := &flakyDev{Device: mem, failN: 2}
	l, err := New(s, fd, Config{}) // default budget: 3 attempts
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives-the-flap")
	s.Spawn(nil, "w", func(p *sim.Proc) {
		if _, err := l.Append(p, RecUpdate, 1, payload); err != nil {
			t.Errorf("append: %v", err)
			return
		}
		if err := l.Force(p, l.AppendedLSN()); err != nil {
			t.Errorf("force with transient errors: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v := l.Stats().ForceRetries.Value(); v != 2 {
		t.Fatalf("force retries = %d, want 2", v)
	}
	if v := l.Stats().ForceErrors.Value(); v != 0 {
		t.Fatalf("force errors = %d, want 0", v)
	}
	var res ScanResult
	s2 := sim.New(12)
	s2.Spawn(nil, "r", func(p *sim.Proc) {
		res, _ = Scan(p, mem, Config{}, FirstLSN(Config{}))
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || !bytes.Equal(res.Records[0].Payload, payload) {
		t.Fatal("forced record not recoverable after retried write")
	}
}

// TestForceSurrendersAfterRetryBudget: when the fault outlives the budget the
// force must return an error that still carries the disk sentinel (so the
// engine can classify it), and a later force must land the requeued block.
func TestForceSurrendersAfterRetryBudget(t *testing.T) {
	s := sim.New(13)
	mem := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 1 << 16})
	fd := &flakyDev{Device: mem, failN: 10} // longer than the 3-attempt budget
	l, err := New(s, fd, Config{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("lands-on-the-second-force")
	s.Spawn(nil, "w", func(p *sim.Proc) {
		if _, err := l.Append(p, RecUpdate, 1, payload); err != nil {
			t.Errorf("append: %v", err)
			return
		}
		err := l.Force(p, l.AppendedLSN())
		if err == nil {
			t.Error("force succeeded with the fault still raging")
			return
		}
		if !errors.Is(err, disk.ErrIO) {
			t.Errorf("force error %v does not expose the disk sentinel", err)
		}
		fd.failN = 0 // fault clears
		if err := l.Force(p, l.AppendedLSN()); err != nil {
			t.Errorf("force after fault cleared: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v := l.Stats().ForceErrors.Value(); v != 1 {
		t.Fatalf("force errors = %d, want 1", v)
	}
	var res ScanResult
	s2 := sim.New(14)
	s2.Spawn(nil, "r", func(p *sim.Proc) {
		res, _ = Scan(p, mem, Config{}, FirstLSN(Config{}))
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || !bytes.Equal(res.Records[0].Payload, payload) {
		t.Fatal("record not recoverable after the fault cleared")
	}
}
