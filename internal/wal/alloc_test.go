//go:build !race

// Allocation-regression pins for the WAL commit path. Exact malloc counts
// change under the race detector, so these only run without -race.

package wal

import (
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// TestAppendForceSteadyStateAllocBound pins the per-commit WAL cost:
// Append frames records in place with a chained CRC (no digest object),
// and Force reuses one persistent tail snapshot, delta-copying only the
// bytes appended since the previous round. Sealed blocks cycle through
// the written-out pool.
func TestAppendForceSteadyStateAllocBound(t *testing.T) {
	s := sim.New(1)
	dev := disk.NewMem(s, disk.MemConfig{Name: "log", Persistent: true, Capacity: 1 << 16})
	l, err := New(s, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	kick := s.NewSignal("kick")
	payload := make([]byte, 120)
	n := 0
	s.Spawn(nil, "committer", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			kick.Wait(p)
			lsn, err := l.Append(p, RecCommit, uint64(n), payload)
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if err := l.Force(p, lsn+1); err != nil {
				t.Errorf("force: %v", err)
				return
			}
			n++
		}
	})
	// Retire blocks continuously so the circular log never fills.
	step := func() {
		kick.Broadcast()
		if err := s.RunFor(time.Millisecond); err != nil {
			t.Fatal(err)
		}
		l.SetOldestNeeded(l.FlushedLSN())
	}
	for i := 0; i < 64; i++ { // warm the tail buffer and the block pool
		step()
	}
	start := n
	allocs := testing.AllocsPerRun(100, step)
	if n-start != 101 {
		t.Fatalf("expected 101 commits during measurement, got %d", n-start)
	}
	// Each commit is one Append plus one physical Force. A pre-pool
	// implementation paid a CRC digest, a full-block tail copy, and a
	// fresh block image per seal; steady state now leaves only stray
	// device-side map growth.
	if allocs > 2 {
		t.Fatalf("append+force allocates %.1f per commit, want <= 2", allocs)
	}
}
