// Package wal implements the guest database's write-ahead log: the
// component whose synchronous force-at-commit is the entire subject of the
// RapiLog paper.
//
// Layout. The log partition is treated as a circular sequence of fixed-size
// blocks. Each block starts with a small header carrying a monotonically
// increasing block sequence number; records are packed after it and never
// span blocks. An LSN is a byte address in the infinite log space:
// seq·BlockSize + offset. The tail block is rewritten in place as records
// accumulate — the classic pattern that turns every commit into a
// same-sector rewrite costing a full disk rotation, unless commits batch.
//
// Durability. Force(lsn) writes all blocks up to the tail with FUA and
// piggybacks concurrent callers on the in-flight write (group commit): while
// one force is on the disk, later committers wait and are usually covered by
// the next round. An optional CommitDelay widens the batching window.
//
// Recovery. Scan walks blocks from a start LSN, validating each record's
// length, magic, CRC, and — crucially — that the record's embedded LSN
// matches the scan position, which is what rejects stale bytes left over
// from a previous trip around the circular log. A torn tail (power cut
// mid-force) truncates the log cleanly at the last valid record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/disk"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Errors.
var (
	ErrTooBig  = errors.New("wal: record exceeds block capacity")
	ErrLogFull = errors.New("wal: append would overwrite live log data")
)

// RecType distinguishes log record kinds.
type RecType uint8

// Record kinds. The engine assigns meaning; the WAL only frames them.
const (
	RecUpdate RecType = iota + 1
	RecCommit
	RecAbort
	RecCheckpoint
)

func (t RecType) String() string {
	switch t {
	case RecUpdate:
		return "update"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is one log entry.
type Record struct {
	LSN     uint64
	TxID    uint64
	Type    RecType
	Payload []byte
}

const (
	blockMagic  = 0x57414c42 // "WALB"
	recMagic    = 0x5245
	blockHdrLen = 16 // magic(4) seq(8) crc(4)
	recHdrLen   = 28 // len(4) lsn(8) txid(8) magic(2) type(1) pad(1) crc(4)
)

// Config parameterises a Log.
type Config struct {
	// BlockSize is the log page size; default 4096. Must be a multiple of
	// the device sector size.
	BlockSize int
	// CommitDelay is slept before each physical force to widen the group
	// commit window (PostgreSQL's commit_delay). Default 0.
	CommitDelay time.Duration
	// ForceRetryLimit bounds attempts per block write when the device
	// reports a transient media error (disk.IsTransient); default 3.
	ForceRetryLimit int
	// ForceRetryBase is the backoff before the first retry, doubling per
	// attempt; default 1ms.
	ForceRetryBase time.Duration
	// Obs, when set, registers the log's instruments centrally and traces
	// physical force rounds (log_submit/log_complete events).
	Obs *obs.Obs
}

func (c *Config) applyDefaults() {
	if c.BlockSize == 0 {
		c.BlockSize = 4096
	}
	if c.ForceRetryLimit == 0 {
		c.ForceRetryLimit = 3
	}
	if c.ForceRetryBase == 0 {
		c.ForceRetryBase = time.Millisecond
	}
}

// MaxPayload returns the largest payload a record may carry under cfg.
func (c Config) MaxPayload() int {
	bs := c.BlockSize
	if bs == 0 {
		bs = 4096
	}
	return bs - blockHdrLen - recHdrLen
}

// FirstLSN is the address of the first record slot in an empty log.
func FirstLSN(cfg Config) uint64 {
	cfg.applyDefaults()
	return uint64(blockHdrLen)
}

// Stats exposes WAL activity.
type Stats struct {
	Appends       *metrics.Counter
	Forces        *metrics.Counter // physical force rounds
	ForceWaits    *metrics.Counter // callers satisfied by piggybacking
	BlocksWritten *metrics.Counter
	ForceLatency  *metrics.Histogram
	ForceRetries  *metrics.Counter // block writes retried after a transient error
	ForceErrors   *metrics.Counter // forces surrendered with an error
}

func newStats(reg *obs.Registry) *Stats {
	return &Stats{
		Appends:       reg.Counter("wal.appends"),
		Forces:        reg.Counter("wal.forces"),
		ForceWaits:    reg.Counter("wal.force_waits"),
		BlocksWritten: reg.Counter("wal.blocks_written"),
		ForceLatency:  reg.Histogram("wal.force_latency"),
		ForceRetries:  reg.Counter("wal.force_retries"),
		ForceErrors:   reg.Counter("wal.force_errors"),
	}
}

// Log is the write-ahead log writer.
type Log struct {
	s   *sim.Sim
	dev disk.Device
	cfg Config

	nBlocks       uint64
	sectorsPer    int
	curSeq        uint64 // tail block sequence number
	curData       []byte // tail block image (BlockSize)
	curOff        int    // next free byte in tail block
	sealed        []sealedBlock
	appendedLSN   uint64 // address one past the last appended record
	flushedLSN    uint64 // all records below this are on disk
	oldestNeeded  uint64 // wrap barrier (checkpoint horizon)
	forceInFlight bool
	flushedSig    *sim.Signal
	stats         *Stats
	onDurable     func(lsn uint64) // called after flushedLSN advances

	blockPool   [][]byte // written-out block images, reused by sealBlock
	tailBuf     []byte   // persistent tail snapshot reused across forces
	lastTailSeq uint64   // seq tailBuf holds; ^0 when tailBuf is invalid
	lastTailOff int      // bytes of tailBuf valid for lastTailSeq
}

type sealedBlock struct {
	seq  uint64
	data []byte
}

// New creates an empty log on dev (any previous contents are logically
// discarded; the first scan will stop at the new generation's tail).
func New(s *sim.Sim, dev disk.Device, cfg Config) (*Log, error) {
	cfg.applyDefaults()
	if cfg.BlockSize%dev.SectorSize() != 0 {
		return nil, fmt.Errorf("wal: block size %d not a multiple of sector size %d", cfg.BlockSize, dev.SectorSize())
	}
	nBlocks := uint64(dev.Sectors()) / uint64(cfg.BlockSize/dev.SectorSize())
	if nBlocks < 2 {
		return nil, fmt.Errorf("wal: device too small (%d blocks)", nBlocks)
	}
	l := &Log{
		s:           s,
		dev:         dev,
		cfg:         cfg,
		nBlocks:     nBlocks,
		sectorsPer:  cfg.BlockSize / dev.SectorSize(),
		curData:     make([]byte, cfg.BlockSize),
		curOff:      blockHdrLen,
		flushedSig:  s.NewSignal("wal.flushed"),
		stats:       newStats(cfg.Obs.Registry()),
		lastTailSeq: ^uint64(0),
	}
	l.appendedLSN = l.lsn()
	l.flushedLSN = l.appendedLSN
	l.oldestNeeded = l.appendedLSN
	return l, nil
}

// OpenAt resumes appending at endLSN (the value Scan reported), reloading
// the partial tail block from the device.
func OpenAt(p *sim.Proc, s *sim.Sim, dev disk.Device, cfg Config, endLSN uint64) (*Log, error) {
	l, err := New(s, dev, cfg)
	if err != nil {
		return nil, err
	}
	l.curSeq = endLSN / uint64(l.cfg.BlockSize)
	l.curOff = int(endLSN % uint64(l.cfg.BlockSize))
	if l.curOff < blockHdrLen {
		l.curOff = blockHdrLen
	}
	if l.curOff > blockHdrLen {
		data, err := dev.Read(p, l.blockLBA(l.curSeq), l.sectorsPer)
		if err != nil {
			return nil, err
		}
		l.curData = data
		// Anything past the resume point is dead; zero it so stale bytes
		// cannot resurrect on the next force.
		for i := l.curOff; i < len(l.curData); i++ {
			l.curData[i] = 0
		}
	}
	l.appendedLSN = l.lsn()
	l.flushedLSN = l.appendedLSN
	l.oldestNeeded = l.appendedLSN
	return l, nil
}

// Stats returns the log's counters.
func (l *Log) Stats() *Stats { return l.stats }

// SetOnDurable installs a hook invoked (from the forcing process) each time
// the durability horizon advances, with the new flushedLSN. The engine uses
// it to retire commits waiting on durable-on-disk.
func (l *Log) SetOnDurable(fn func(lsn uint64)) { l.onDurable = fn }

// AppendedLSN returns the address one past the last appended record.
func (l *Log) AppendedLSN() uint64 { return l.appendedLSN }

// FlushedLSN returns the durability horizon.
func (l *Log) FlushedLSN() uint64 { return l.flushedLSN }

// Capacity returns the log's circular capacity in bytes.
func (l *Log) Capacity() uint64 { return l.nBlocks * uint64(l.cfg.BlockSize) }

// SetOldestNeeded moves the wrap barrier forward; blocks below it may be
// overwritten. The engine calls this after each checkpoint.
func (l *Log) SetOldestNeeded(lsn uint64) {
	if lsn > l.oldestNeeded {
		l.oldestNeeded = lsn
	}
}

func (l *Log) lsn() uint64 { return l.curSeq*uint64(l.cfg.BlockSize) + uint64(l.curOff) }

func (l *Log) blockLBA(seq uint64) int64 {
	return int64(seq%l.nBlocks) * int64(l.sectorsPer)
}

// Append frames rec into the log and returns its LSN. Append itself never
// touches the disk; call Force to make it durable. It returns ErrLogFull
// when the circular log would wrap onto blocks still needed for recovery.
func (l *Log) Append(p *sim.Proc, typ RecType, txid uint64, payload []byte) (uint64, error) {
	recLen := recHdrLen + len(payload)
	if recLen > l.cfg.BlockSize-blockHdrLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooBig, len(payload))
	}
	if l.curOff+recLen > l.cfg.BlockSize {
		l.sealBlock()
	}
	// Wrap check: the tail block must not collide with the oldest block
	// still needed.
	if l.curSeq >= l.nBlocks {
		oldestSeq := l.oldestNeeded / uint64(l.cfg.BlockSize)
		if l.curSeq-oldestSeq >= l.nBlocks {
			return 0, fmt.Errorf("%w: tail seq %d, oldest needed seq %d, capacity %d blocks",
				ErrLogFull, l.curSeq, oldestSeq, l.nBlocks)
		}
	}
	lsn := l.lsn()
	h := l.curData[l.curOff : l.curOff+recHdrLen]
	binary.LittleEndian.PutUint32(h[0:], uint32(recLen))
	binary.LittleEndian.PutUint64(h[4:], lsn)
	binary.LittleEndian.PutUint64(h[12:], txid)
	binary.LittleEndian.PutUint16(h[20:], recMagic)
	h[22] = byte(typ)
	h[23] = 0
	crc := crc32.Update(0, crc32.IEEETable, h[:24])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(h[24:], crc)
	copy(l.curData[l.curOff+recHdrLen:], payload)
	l.curOff += recLen
	l.appendedLSN = l.lsn()
	l.stats.Appends.Inc()
	return lsn, nil
}

// sealBlock finalises the tail block and starts the next one. The sealed
// image is kept in memory until a force writes it; the replacement tail
// comes from the pool of already-written block images when one is free.
func (l *Log) sealBlock() {
	l.finishHeader(l.curData, l.curSeq)
	l.sealed = append(l.sealed, sealedBlock{seq: l.curSeq, data: l.curData})
	l.curSeq++
	l.curData = l.newBlock()
	l.curOff = blockHdrLen
}

// newBlock returns a zeroed BlockSize buffer, reusing a written-out one
// when available. Zeroing matters: Scan treats a zero record length as
// never-written space, and stale bytes must not survive into a new block.
func (l *Log) newBlock() []byte {
	if n := len(l.blockPool); n > 0 {
		b := l.blockPool[n-1]
		l.blockPool = l.blockPool[:n-1]
		for i := range b {
			b[i] = 0
		}
		return b
	}
	return make([]byte, l.cfg.BlockSize)
}

func (l *Log) finishHeader(data []byte, seq uint64) {
	binary.LittleEndian.PutUint32(data[0:], blockMagic)
	binary.LittleEndian.PutUint64(data[4:], seq)
	binary.LittleEndian.PutUint32(data[12:], crc32.ChecksumIEEE(data[:12]))
}

// Force blocks until every record below lsn is durable. Concurrent callers
// piggyback on the in-flight physical write — the group commit that lets
// synchronous engines scale with client count.
func (l *Log) Force(p *sim.Proc, lsn uint64) error {
	start := p.Now()
	if lsn > l.appendedLSN {
		lsn = l.appendedLSN
	}
	waited := false
	for l.flushedLSN < lsn {
		if l.forceInFlight {
			waited = true
			l.flushedSig.Wait(p)
			continue
		}
		l.forceInFlight = true
		err := func() error {
			defer func() {
				l.forceInFlight = false
				l.flushedSig.Broadcast()
			}()
			if l.cfg.CommitDelay > 0 {
				p.Sleep(l.cfg.CommitDelay)
			}
			return l.physicalForce(p)
		}()
		if err != nil {
			return err
		}
	}
	if waited {
		l.stats.ForceWaits.Inc()
	}
	l.stats.ForceLatency.Observe(p.Now().Sub(start))
	return nil
}

// physicalForce writes all sealed blocks plus a snapshot of the partial
// tail, in order, with FUA. Every image is captured before the first
// device write: appends that land while the writes are in flight — and in
// particular a tail block that seals mid-force — belong to the NEXT force,
// or flushedLSN would advance past records that never reached the device.
func (l *Log) physicalForce(p *sim.Proc) error {
	target := l.appendedLSN
	sealed := l.sealed
	l.sealed = nil
	var tail []byte
	tailSeq := l.curSeq
	if l.curOff > blockHdrLen && target > l.flushedLSN {
		// Snapshot the partial tail into the persistent buffer. If the last
		// force snapshotted the same block, only the newly appended bytes
		// need copying: records are append-only within a block and the
		// header (magic, seq, CRC over those 12 bytes) is constant per seq.
		if l.tailBuf == nil {
			l.tailBuf = make([]byte, l.cfg.BlockSize)
		}
		if l.lastTailSeq == tailSeq {
			copy(l.tailBuf[l.lastTailOff:l.curOff], l.curData[l.lastTailOff:l.curOff])
		} else {
			copy(l.tailBuf, l.curData)
			l.finishHeader(l.tailBuf, tailSeq)
		}
		l.lastTailSeq, l.lastTailOff = tailSeq, l.curOff
		tail = l.tailBuf
	}
	tr := l.cfg.Obs.Tracer()
	forceSpan := tr.NewSpan()
	if tr.Enabled() {
		nBlocks := len(sealed)
		if tail != nil {
			nBlocks++
		}
		tr.Emit(p.Now().Duration(), obs.EvLogSubmit, forceSpan, 0, int64(target), int64(nBlocks)*int64(l.cfg.BlockSize))
	}
	for i, b := range sealed {
		// Park the force span in the cause slot so the device layer below
		// (which has no trace parameter in its interface) can parent its
		// hv_ack under this force. Re-armed per block: the device consumes it.
		tr.SetCause(forceSpan)
		if err := l.writeBlock(p, b.seq, b.data); err != nil {
			tr.ClearCause()
			// Requeue the unwritten suffix so a later force retries it.
			l.sealed = append(sealed[i:], l.sealed...)
			return fmt.Errorf("wal: force of block seq %d: %w", b.seq, err)
		}
		// The device copied the image during Write; the buffer is free to
		// back a future tail block.
		l.blockPool = append(l.blockPool, b.data)
		l.stats.BlocksWritten.Inc()
	}
	if tail != nil {
		tr.SetCause(forceSpan)
		if err := l.writeBlock(p, tailSeq, tail); err != nil {
			tr.ClearCause()
			return fmt.Errorf("wal: force of tail block seq %d: %w", tailSeq, err)
		}
		l.stats.BlocksWritten.Inc()
	}
	tr.ClearCause()
	if target > l.flushedLSN {
		l.flushedLSN = target
	}
	l.stats.Forces.Inc()
	tr.Emit(p.Now().Duration(), obs.EvLogComplete, 0, forceSpan, int64(l.flushedLSN), 0)
	if l.onDurable != nil {
		l.onDurable(l.flushedLSN)
	}
	return nil
}

// writeBlock writes one block image with FUA, riding out transient media
// errors (disk.IsTransient) with bounded exponential backoff. Anything
// else — power loss, range errors — is surrendered immediately: the error
// reaches the committer, which classifies it for its client. The %w chain
// preserves the disk sentinel the whole way up.
func (l *Log) writeBlock(p *sim.Proc, seq uint64, data []byte) error {
	delay := l.cfg.ForceRetryBase
	for attempt := 1; ; attempt++ {
		err := l.dev.Write(p, l.blockLBA(seq), data, true)
		if err == nil {
			return nil
		}
		if !disk.IsTransient(err) || attempt >= l.cfg.ForceRetryLimit {
			l.stats.ForceErrors.Inc()
			return err
		}
		l.stats.ForceRetries.Inc()
		p.Sleep(delay)
		if delay *= 2; delay > 64*time.Millisecond {
			delay = 64 * time.Millisecond
		}
	}
}

// ScanResult is what recovery finds in the log.
type ScanResult struct {
	Records []Record
	EndLSN  uint64 // resume point for OpenAt
	Torn    bool   // the tail ended mid-record (power cut during a force)
}

// Scan reads records from fromLSN to the log's tail, stopping at the first
// invalid record (torn tail, old generation, or never-written space).
func Scan(p *sim.Proc, dev disk.Device, cfg Config, fromLSN uint64) (ScanResult, error) {
	cfg.applyDefaults()
	var res ScanResult
	sectorsPer := cfg.BlockSize / dev.SectorSize()
	nBlocks := uint64(dev.Sectors()) / uint64(sectorsPer)
	seq := fromLSN / uint64(cfg.BlockSize)
	off := int(fromLSN % uint64(cfg.BlockSize))
	if off < blockHdrLen {
		off = blockHdrLen
	}
	res.EndLSN = seq*uint64(cfg.BlockSize) + uint64(off)

	for {
		lba := int64(seq%nBlocks) * int64(sectorsPer)
		data, err := dev.Read(p, lba, sectorsPer)
		if err != nil {
			return res, err
		}
		if binary.LittleEndian.Uint32(data[0:4]) != blockMagic ||
			crc32.ChecksumIEEE(data[:12]) != binary.LittleEndian.Uint32(data[12:16]) ||
			binary.LittleEndian.Uint64(data[4:12]) != seq {
			return res, nil // end of this generation
		}
		blockTorn := false
		for off+recHdrLen <= cfg.BlockSize {
			lsn := seq*uint64(cfg.BlockSize) + uint64(off)
			h := data[off:]
			recLen := int(binary.LittleEndian.Uint32(h[0:4]))
			if recLen < recHdrLen || off+recLen > cfg.BlockSize ||
				binary.LittleEndian.Uint16(h[20:22]) != recMagic ||
				binary.LittleEndian.Uint64(h[4:12]) != lsn {
				blockTorn = off+recHdrLen <= cfg.BlockSize && recLen != 0
				break
			}
			payload := data[off+recHdrLen : off+recLen]
			crc := crc32.Update(0, crc32.IEEETable, h[:24])
			crc = crc32.Update(crc, crc32.IEEETable, payload)
			if crc != binary.LittleEndian.Uint32(h[24:28]) {
				blockTorn = true
				break
			}
			res.Records = append(res.Records, Record{
				LSN:     lsn,
				TxID:    binary.LittleEndian.Uint64(h[12:20]),
				Type:    RecType(h[22]),
				Payload: append([]byte(nil), payload...),
			})
			off += recLen
			res.EndLSN = seq*uint64(cfg.BlockSize) + uint64(off)
		}
		// Try the next block: if it is valid, the gap was only padding (or
		// a tear that a later complete force superseded — impossible with
		// ordered writes, so a bad next block confirms the tear).
		nextSeq := seq + 1
		nextLBA := int64(nextSeq%nBlocks) * int64(sectorsPer)
		next, err := dev.Read(p, nextLBA, sectorsPer)
		if err != nil {
			return res, err
		}
		if binary.LittleEndian.Uint32(next[0:4]) != blockMagic ||
			crc32.ChecksumIEEE(next[:12]) != binary.LittleEndian.Uint32(next[12:16]) ||
			binary.LittleEndian.Uint64(next[4:12]) != nextSeq {
			res.Torn = blockTorn
			return res, nil
		}
		seq = nextSeq
		off = blockHdrLen
		res.EndLSN = seq*uint64(cfg.BlockSize) + uint64(off)
	}
}
