package shard

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestRouterDeterministicAndInRange(t *testing.T) {
	r := NewRouter(4)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("w:%d", i)
		s := r.ShardFor(key)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardFor(%q) = %d, out of range", key, s)
		}
		if again := r.ShardFor(key); again != s {
			t.Fatalf("ShardFor(%q) flapped: %d then %d", key, s, again)
		}
	}
}

func TestRouterSpreadsKeys(t *testing.T) {
	const n, keys = 8, 4000
	r := NewRouter(n)
	var counts [n]int
	for i := 0; i < keys; i++ {
		counts[r.ShardFor(fmt.Sprintf("acct:%d", i))]++
	}
	// FNV-1a over sequential keys should land every shard within a loose
	// factor of the ideal share; a pathological hash would concentrate.
	ideal := keys / n
	for s, c := range counts {
		if c < ideal/2 || c > ideal*2 {
			t.Fatalf("shard %d got %d of %d keys (ideal %d): skewed partition", s, c, keys, ideal)
		}
	}
}

func TestRouterRejectsZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRouter(0) did not panic")
		}
	}()
	NewRouter(0)
}

func TestRecoveryMerge(t *testing.T) {
	m := Recovery{Shards: []core.RecoveryReport{
		{Entries: 3, Bytes: 1536, HadDump: true},
		{Entries: 0, Bytes: 0},
		{Entries: 5, Bytes: 2560, HadDump: true, Torn: true, DumpFailures: 1},
	}}
	if got := m.Entries(); got != 8 {
		t.Fatalf("Entries() = %d, want 8", got)
	}
	if got := m.Bytes(); got != 4096 {
		t.Fatalf("Bytes() = %d, want 4096", got)
	}
	if !m.HadDump() || !m.Torn() {
		t.Fatalf("HadDump()=%v Torn()=%v, want true/true", m.HadDump(), m.Torn())
	}
	if got := m.DumpFailures(); got != 1 {
		t.Fatalf("DumpFailures() = %d, want 1", got)
	}
	s := m.String()
	if s == "" || !contains(s, "shard 2") {
		t.Fatalf("String() missing per-shard sections: %q", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRollups(t *testing.T) {
	o := obs.New(obs.Config{})
	reg := o.Registry()
	const n = 3
	for i := 0; i < n; i++ {
		sub := o.Sub(Prefix(i)).Registry()
		sub.Counter("engine.commits").Add(int64(10 * (i + 1)))
		sub.Gauge("rapilog.buffered_bytes").Set(int64(512 * i))
		sub.Histogram("engine.commit.ack_latency").Observe(time.Duration(i+1) * time.Millisecond)
	}
	if got := RollupCounter(reg, n, "engine.commits"); got != 60 {
		t.Fatalf("RollupCounter = %d, want 60", got)
	}
	if got := RollupGauge(reg, n, "rapilog.buffered_bytes"); got != 512+1024 {
		t.Fatalf("RollupGauge = %d, want %d", got, 512+1024)
	}
	h := RollupHistogram(reg, n, "engine.commit.ack_latency")
	if h.Count() != 3 {
		t.Fatalf("RollupHistogram count = %d, want 3", h.Count())
	}
	if h.Max() < 3*time.Millisecond || h.Min() > time.Millisecond {
		t.Fatalf("RollupHistogram min/max wrong: min=%v max=%v", h.Min(), h.Max())
	}
	// A shard that never registered the instrument contributes zero, not an
	// error — roll-ups are safe to run before traffic starts.
	if got := RollupCounter(reg, n, "engine.aborts"); got != 0 {
		t.Fatalf("RollupCounter over unregistered = %d, want 0", got)
	}
}
