// Package shard partitions a RapiLog deployment's commit stream across N
// fully independent log domains on one machine. Each shard owns its own
// logger, log partition, drain daemon and emergency-dump zone (and, when
// replicated, its own fabric and standby fleet); the only resources the
// shards share are the machine's PSU hold-up window — which is why each
// shard's buffer is sized by core.SafeBufferSizeShared — and the CPU pool.
//
// The package holds the pieces that are independent of the rig assembly:
// the key-hash Router deciding which shard owns a transaction, the merged
// recovery report a parallel per-shard recovery folds into, and the metric
// roll-up helpers that aggregate per-shard instruments ("shard.<i>.*", see
// obs.Obs.Sub) into fleet-wide totals.
package shard

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Prefix returns the observability prefix shard i's instruments live under
// ("shard.<i>"), the argument a sharded deployment passes to obs.Obs.Sub.
func Prefix(i int) string { return fmt.Sprintf("shard.%d", i) }

// Router deterministically maps transaction keys to shards by FNV-1a hash.
// The mapping is pure data — no state beyond the shard count — so drivers,
// recovery audits and tests all agree on ownership without coordination.
type Router struct {
	n int
}

// NewRouter creates a router over n shards. n must be at least 1.
func NewRouter(n int) *Router {
	if n < 1 {
		panic(fmt.Sprintf("shard: router over %d shards", n))
	}
	return &Router{n: n}
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.n }

// ShardFor returns the shard that owns key.
func (r *Router) ShardFor(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(r.n))
}

// Recovery is the merged report of a parallel per-shard recovery: one
// section per shard, in shard order, plus fleet-wide totals.
type Recovery struct {
	Shards []core.RecoveryReport
}

// Entries returns the total dump entries replayed across all shards.
func (m Recovery) Entries() int {
	n := 0
	for _, s := range m.Shards {
		n += s.Entries
	}
	return n
}

// Bytes returns the total bytes replayed across all shards.
func (m Recovery) Bytes() int64 {
	var n int64
	for _, s := range m.Shards {
		n += s.Bytes
	}
	return n
}

// HadDump reports whether any shard found a dump image.
func (m Recovery) HadDump() bool {
	for _, s := range m.Shards {
		if s.HadDump {
			return true
		}
	}
	return false
}

// Torn reports whether any shard's dump image was torn — its hold-up
// deadline hit mid-dump. One torn shard makes the fleet's recovery torn.
func (m Recovery) Torn() bool {
	for _, s := range m.Shards {
		if s.Torn {
			return true
		}
	}
	return false
}

// DumpFailures returns the total failed dump writes across all shards.
func (m Recovery) DumpFailures() int {
	n := 0
	for _, s := range m.Shards {
		n += s.DumpFailures
	}
	return n
}

// String renders the fleet totals followed by a per-shard section each.
func (m Recovery) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sharded recovery: %d shards, %d entries, %d bytes",
		len(m.Shards), m.Entries(), m.Bytes())
	for i, s := range m.Shards {
		fmt.Fprintf(&b, "\n  shard %d: entries=%d bytes=%d hadDump=%v torn=%v",
			i, s.Entries, s.Bytes, s.HadDump, s.Torn)
		if s.DumpRetries > 0 || s.DumpFailures > 0 {
			fmt.Fprintf(&b, " dumpRetries=%d dumpFailures=%d", s.DumpRetries, s.DumpFailures)
		}
	}
	return b.String()
}

// RollupCounter sums the counter named "shard.<i>.<name>" over n shards.
// Registry access is get-or-create, so shards that never registered the
// instrument contribute zero.
func RollupCounter(reg *obs.Registry, n int, name string) int64 {
	var total int64
	for i := 0; i < n; i++ {
		total += reg.Counter(Prefix(i) + "." + name).Value()
	}
	return total
}

// RollupGauge sums the current levels of the gauge named "shard.<i>.<name>"
// over n shards — e.g. total acked-but-undrained bytes across the fleet.
func RollupGauge(reg *obs.Registry, n int, name string) int64 {
	var total int64
	for i := 0; i < n; i++ {
		total += reg.Gauge(Prefix(i) + "." + name).Value()
	}
	return total
}

// RollupHistogram merges the per-shard histograms named "shard.<i>.<name>"
// into one fleet-wide distribution (see metrics.Histogram.Merge — bucket
// layouts are identical, so quantiles combine exactly up to quantisation).
func RollupHistogram(reg *obs.Registry, n int, name string) *metrics.Histogram {
	out := metrics.NewHistogram(name)
	for i := 0; i < n; i++ {
		out.Merge(reg.Histogram(Prefix(i) + "." + name))
	}
	return out
}
