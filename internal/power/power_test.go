package power

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

func testMachine(seed int64, psu PSUConfig) (*sim.Sim, *Machine, *disk.HDD) {
	s := sim.New(seed)
	m := NewMachine(s, "m0", 4, psu)
	d := disk.NewHDD(s, m.HardwareDomain(), disk.HDDConfig{WriteCache: true})
	m.AttachDevice(d)
	return s, m, d
}

func TestCutPowerKillsDomainsAtDeadline(t *testing.T) {
	s, m, _ := testMachine(1, PSUTypical)
	dom := m.NewDomain("sw")
	var lastAlive sim.Time
	s.Spawn(dom, "app", func(p *sim.Proc) {
		for {
			p.Sleep(time.Millisecond)
			lastAlive = p.Now()
		}
	})
	var holdup time.Duration
	s.After(10*time.Millisecond, func() { holdup = m.CutPower() })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if holdup < PSUTypical.HoldupMin || holdup > PSUTypical.HoldupMax {
		t.Fatalf("sampled holdup %v outside [%v,%v]", holdup, PSUTypical.HoldupMin, PSUTypical.HoldupMax)
	}
	deadline := 10*time.Millisecond + holdup
	if lastAlive.Duration() > deadline {
		t.Fatalf("proc alive at %v, after deadline %v", lastAlive, deadline)
	}
	if lastAlive.Duration() < deadline-2*time.Millisecond {
		t.Fatalf("proc died at %v, long before deadline %v (no ride-through?)", lastAlive, deadline)
	}
	if m.Powered() || !m.ACFailed() {
		t.Fatal("power state wrong after DC loss")
	}
	if m.Failures() != 1 {
		t.Fatalf("failures = %d", m.Failures())
	}
}

func TestInterruptDeliveredWithinLatency(t *testing.T) {
	s, m, _ := testMachine(1, PSUTypical)
	var interruptAt sim.Time = -1
	m.SetPowerFailHandler(func(p *sim.Proc) { interruptAt = p.Now() })
	s.After(5*time.Millisecond, func() { m.CutPower() })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	want := 5*time.Millisecond + PSUTypical.InterruptLatency
	if interruptAt.Duration() != want {
		t.Fatalf("interrupt at %v, want %v", interruptAt, want)
	}
}

func TestHandlerRacesDeadline(t *testing.T) {
	s, m, _ := testMachine(2, PSUConfig{Name: "tight", HoldupMin: 5 * time.Millisecond, HoldupMax: 5 * time.Millisecond, InterruptLatency: 100 * time.Microsecond})
	var progress time.Duration
	m.SetPowerFailHandler(func(p *sim.Proc) {
		for {
			p.Sleep(time.Millisecond)
			progress += time.Millisecond
		}
	})
	s.After(0, func() { m.CutPower() })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	// Handler had 4.9ms: it completes 4 sleeps, then dies.
	if progress != 4*time.Millisecond {
		t.Fatalf("handler progressed %v, want exactly 4ms before the deadline killed it", progress)
	}
}

func TestDeviceLosesCacheAtDeadlineNotBefore(t *testing.T) {
	s, m, d := testMachine(3, PSUTypical)
	var duringHoldup, afterRestore int
	m.SetPowerFailHandler(func(p *sim.Proc) {
		duringHoldup = d.CacheDirtySectors() // rails still up: cache intact
	})
	s.Spawn(m.NewDomain("sw"), "writer", func(p *sim.Proc) {
		_ = d.Write(p, 0, make([]byte, 8192), false)
		m.CutPower()
		p.Sleep(time.Hour) // will be killed
	})
	s.Spawn(nil, "check", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		m.RestorePower()
		afterRestore = d.CacheDirtySectors()
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if duringHoldup == 0 {
		t.Fatal("cache empty during hold-up (drain too fast or handler after deadline)")
	}
	if afterRestore != 0 {
		t.Fatal("cache contents survived power loss")
	}
}

func TestRestorePowerRevivesHardware(t *testing.T) {
	s, m, d := testMachine(4, PSUTypical)
	var ok bool
	s.Spawn(nil, "ctl", func(p *sim.Proc) {
		m.CutPower()
		p.Sleep(time.Second)
		m.RestorePower()
		if err := d.Write(p, 0, make([]byte, 512), true); err != nil {
			t.Errorf("write after restore: %v", err)
		}
		data, err := d.Read(p, 0, 1)
		ok = err == nil && len(data) == 512
	})
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("device unusable after power restore")
	}
	if !m.Powered() || m.ACFailed() {
		t.Fatal("power flags wrong after restore")
	}
}

func TestCutPowerIdempotentDuringHoldup(t *testing.T) {
	s, m, _ := testMachine(5, PSUTypical)
	s.Spawn(nil, "ctl", func(p *sim.Proc) {
		first := m.CutPower()
		if first == 0 {
			t.Error("first CutPower returned 0")
		}
		if again := m.CutPower(); again != 0 {
			t.Error("second CutPower during hold-up acted")
		}
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if m.Failures() != 1 {
		t.Fatalf("failures = %d, want 1", m.Failures())
	}
}

func TestSoftwareCrashSparesDeviceCache(t *testing.T) {
	s, m, d := testMachine(6, PSUTypical)
	dom := m.NewDomain("sw")
	var cacheAfterCrash int
	s.Spawn(dom, "writer", func(p *sim.Proc) {
		_ = d.Write(p, 0, make([]byte, 8192), false)
		m.Crash() // kills this domain too
	})
	s.Spawn(nil, "check", func(p *sim.Proc) {
		p.Sleep(100 * time.Microsecond)
		cacheAfterCrash = d.CacheDirtySectors()
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if !m.Powered() {
		t.Fatal("software crash took power down")
	}
	_ = cacheAfterCrash // cache may have partially drained; device must stay powered
}

func TestInterruptBudget(t *testing.T) {
	m := NewMachine(sim.New(1), "m", 2, PSUATXSpec)
	want := PSUATXSpec.HoldupMin - PSUATXSpec.InterruptLatency
	if got := m.InterruptBudget(); got != want {
		t.Fatalf("InterruptBudget = %v, want %v", got, want)
	}
}

// Property: the sampled hold-up always lies within the PSU profile's range,
// and the machine always ends up unpowered with all domains dead.
func TestHoldupSamplingProperty(t *testing.T) {
	prop := func(seed int64) bool {
		s, m, _ := testMachine(seed, PSUMeasured)
		dom := m.NewDomain("sw")
		s.Spawn(dom, "app", func(p *sim.Proc) { p.Sleep(time.Hour) })
		var h time.Duration
		s.After(time.Millisecond, func() { h = m.CutPower() })
		if err := s.RunFor(2 * time.Second); err != nil {
			return false
		}
		return h >= PSUMeasured.HoldupMin && h <= PSUMeasured.HoldupMax &&
			!m.Powered() && dom.Dead()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleHandlersAllFire(t *testing.T) {
	s, m, _ := testMachine(7, PSUTypical)
	var fired []string
	m.AddPowerFailHandler(func(p *sim.Proc) { fired = append(fired, "a") })
	m.AddPowerFailHandler(func(p *sim.Proc) { fired = append(fired, "b") })
	s.After(time.Millisecond, func() { m.CutPower() })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("handlers fired: %v", fired)
	}
}

func TestSetHandlerReplacesAll(t *testing.T) {
	s, m, _ := testMachine(8, PSUTypical)
	var fired []string
	m.AddPowerFailHandler(func(p *sim.Proc) { fired = append(fired, "old") })
	m.SetPowerFailHandler(func(p *sim.Proc) { fired = append(fired, "new") })
	s.After(time.Millisecond, func() { m.CutPower() })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "new" {
		t.Fatalf("handlers fired: %v", fired)
	}
}

// TestHoldupHistoryBounded: a long campaign cutting power thousands of
// times must not accumulate every sampled hold-up forever. The history is
// a sliding window of the most recent samples; Failures() still counts
// every event. Before the bound, len(Holdups()) here equalled the cycle
// count.
func TestHoldupHistoryBounded(t *testing.T) {
	s, m, _ := testMachine(10, PSUTypical)
	const cycles = 5 * holdupsRetained
	var last time.Duration
	s.Spawn(nil, "op", func(p *sim.Proc) {
		for i := 0; i < cycles; i++ {
			last = m.CutPower()
			p.Sleep(PSUTypical.HoldupMax + time.Millisecond)
			m.RestorePower()
		}
	})
	if err := s.RunFor(cycles * time.Second); err != nil {
		t.Fatal(err)
	}
	if m.Failures() != cycles {
		t.Fatalf("failures = %d, want %d", m.Failures(), cycles)
	}
	h := m.Holdups()
	if len(h) != holdupsRetained {
		t.Fatalf("holdup history holds %d samples after %d cycles, want %d retained",
			len(h), cycles, holdupsRetained)
	}
	if h[len(h)-1] != last {
		t.Fatalf("newest retained sample %v, want the last cycle's %v", h[len(h)-1], last)
	}
	for i, v := range h {
		if v < PSUTypical.HoldupMin || v > PSUTypical.HoldupMax {
			t.Fatalf("retained sample %d = %v outside PSU range", i, v)
		}
	}
}

func TestRestoreClearsStaleHandlers(t *testing.T) {
	s, m, _ := testMachine(9, PSUTypical)
	var fires int
	m.AddPowerFailHandler(func(p *sim.Proc) { fires++ })
	s.Spawn(nil, "op", func(p *sim.Proc) {
		m.CutPower()
		p.Sleep(time.Second)
		m.RestorePower()
		// Second power cut: the stale handler must not fire again.
		m.CutPower()
		p.Sleep(time.Second)
	})
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("stale handler fired %d times, want 1", fires)
	}
}
