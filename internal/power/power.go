// Package power models the electrical side of the RapiLog argument: a
// machine chassis with a power supply whose hold-up window gives software a
// short, guaranteed ride-through between the power-fail interrupt and the
// loss of DC power.
//
// The paper's safety story is a race: on AC loss the PSU keeps rails up for
// the hold-up time (≥16 ms by ATX specification; hundreds of ms as measured
// on real supplies), an interrupt fires almost immediately, and the trusted
// layer must flush its bounded buffer to disk before the deadline. Machine
// reproduces exactly that race on virtual time: CutPower samples a hold-up
// duration, delivers the interrupt to registered handlers, lets them run —
// and then kills every domain and fails every device, mid-write if that is
// where the deadline lands.
package power

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/sim"
)

// PSUConfig describes a power supply's ride-through behaviour. Hold-up is
// sampled uniformly from [HoldupMin, HoldupMax] at each AC-loss event;
// HoldupMin is the figure a RapiLog deployment is allowed to rely on.
type PSUConfig struct {
	Name             string
	HoldupMin        time.Duration
	HoldupMax        time.Duration
	InterruptLatency time.Duration // AC loss → power-fail interrupt delivery
}

// PSU profiles used across the experiments (E5). The ATX specification
// guarantees 16 ms at full load; the paper's measurements found real
// supplies ride through far longer, which is what makes useful buffer
// sizes flushable.
var (
	// PSUATXSpec is the bare specification minimum.
	PSUATXSpec = PSUConfig{Name: "atx-spec", HoldupMin: 16 * time.Millisecond, HoldupMax: 17 * time.Millisecond, InterruptLatency: 50 * time.Microsecond}
	// PSUTypical is a mid-range supply at partial load.
	PSUTypical = PSUConfig{Name: "typical", HoldupMin: 40 * time.Millisecond, HoldupMax: 70 * time.Millisecond, InterruptLatency: 50 * time.Microsecond}
	// PSUMeasured reflects the long decay tails measured on real bench
	// supplies at light load.
	PSUMeasured = PSUConfig{Name: "measured", HoldupMin: 250 * time.Millisecond, HoldupMax: 380 * time.Millisecond, InterruptLatency: 50 * time.Microsecond}
	// PSUWithUPS models the conventional alternative the paper argues
	// RapiLog makes unnecessary for log buffering: an uninterruptible
	// supply holding the machine up for minutes. With this profile the
	// sizing rule admits buffers far larger than any workload needs — at
	// the cost of the battery hardware RapiLog exists to avoid.
	PSUWithUPS = PSUConfig{Name: "ups", HoldupMin: 2 * time.Minute, HoldupMax: 5 * time.Minute, InterruptLatency: 50 * time.Microsecond}
)

// Handler is a power-fail interrupt handler. It is spawned as a fresh
// process when the interrupt fires and races the hold-up deadline: when DC
// power dies, the process is killed wherever it happens to be.
type Handler func(p *sim.Proc)

// Machine is a simulated physical machine: CPU cores, attached block
// devices, software crash domains, and a PSU. All software domains created
// through NewDomain — and the hardware domain running device machinery —
// die together when the hold-up window closes.
type Machine struct {
	s        *sim.Sim
	name     string
	psu      PSUConfig
	cores    int
	cpu      *sim.Resource
	hwDom    *sim.Domain
	domains  []*sim.Domain
	devices  []disk.Device
	handlers []Handler
	powered  bool
	acFail   bool

	failures int
	holdups  []time.Duration

	o *obs.Obs
}

// NewMachine creates a powered-on machine with the given CPU core count and
// PSU profile.
func NewMachine(s *sim.Sim, name string, cores int, psu PSUConfig) *Machine {
	if cores <= 0 {
		cores = 1
	}
	return &Machine{
		s:       s,
		name:    name,
		psu:     psu,
		cores:   cores,
		cpu:     s.NewResource(name+".cpu", int64(cores)),
		hwDom:   s.NewDomain(name + ".hw"),
		powered: true,
	}
}

// SetObs attaches the observability bundle: power transitions then appear
// as trace events and counters ("power.ac_losses" etc).
func (m *Machine) SetObs(o *obs.Obs) { m.o = o }

// emit records a power event on the attached tracer (no-op when unset).
func (m *Machine) emit(kind obs.Kind, arg1 int64) {
	m.o.Tracer().Emit(m.s.Now().Duration(), kind, 0, 0, arg1, 0)
}

// Sim returns the owning simulation.
func (m *Machine) Sim() *sim.Sim { return m.s }

// Name returns the machine name.
func (m *Machine) Name() string { return m.name }

// PSU returns the PSU profile.
func (m *Machine) PSU() PSUConfig { return m.psu }

// Cores returns the CPU core count.
func (m *Machine) Cores() int { return m.cores }

// CPU returns the core pool. Callers model computation by acquiring a core
// and sleeping for the burst length. The pool is recreated on power
// restore; re-fetch it after a reboot.
func (m *Machine) CPU() *sim.Resource { return m.cpu }

// HardwareDomain returns the domain device machinery runs in. It dies on
// power loss and is revived by RestorePower.
func (m *Machine) HardwareDomain() *sim.Domain { return m.hwDom }

// Powered reports whether DC rails are up.
func (m *Machine) Powered() bool { return m.powered }

// ACFailed reports whether mains power is currently lost (possibly still
// inside the hold-up window).
func (m *Machine) ACFailed() bool { return m.acFail }

// Failures returns the number of completed power-loss events.
func (m *Machine) Failures() int { return m.failures }

// holdupsRetained bounds the hold-up sample history. Long campaigns cut
// power thousands of times on one machine; retaining every sample grows
// without limit for data nothing reads in aggregate. Failures() keeps the
// exact event count; Holdups() keeps the most recent window.
const holdupsRetained = 64

// Holdups returns the most recent hold-up durations sampled, oldest first
// (at most holdupsRetained; Failures counts every event).
func (m *Machine) Holdups() []time.Duration { return m.holdups }

// NewDomain creates a software crash domain that dies when machine power
// does.
func (m *Machine) NewDomain(name string) *sim.Domain {
	d := m.s.NewDomain(name)
	m.domains = append(m.domains, d)
	return d
}

// AttachDevice registers a block device with the machine's power rails.
func (m *Machine) AttachDevice(d disk.Device) {
	m.devices = append(m.devices, d)
}

// SetPowerFailHandler installs the power-fail interrupt handler, replacing
// any previous ones. The handler process races the hold-up deadline.
func (m *Machine) SetPowerFailHandler(h Handler) { m.handlers = []Handler{h} }

// AddPowerFailHandler registers an additional power-fail handler; each
// handler runs as its own process when the interrupt fires. Consolidated
// deployments (several RapiLog instances on one machine) register one per
// instance — and must each dump to their own spindle, or their shared
// bandwidth invalidates the individual sizing rules.
func (m *Machine) AddPowerFailHandler(h Handler) { m.handlers = append(m.handlers, h) }

// InterruptBudget returns the guaranteed time a handler has between being
// spawned and losing power: the minimum hold-up minus delivery latency.
// RapiLog's buffer-sizing rule builds on this figure.
func (m *Machine) InterruptBudget() time.Duration {
	return m.psu.HoldupMin - m.psu.InterruptLatency
}

// CutPower simulates mains loss. It samples a hold-up duration, schedules
// the power-fail interrupt after the delivery latency, and schedules the
// death of every device and domain at the hold-up deadline. It returns the
// sampled hold-up. Calling it while AC is already lost is a no-op.
//
// CutPower may be called from scheduler context or from any process,
// including one that is about to die with the machine.
func (m *Machine) CutPower() time.Duration {
	if m.acFail || !m.powered {
		return 0
	}
	m.acFail = true
	span := m.psu.HoldupMax - m.psu.HoldupMin
	holdup := m.psu.HoldupMin
	if span > 0 {
		holdup += time.Duration(m.s.Rand().Int63n(int64(span) + 1))
	}
	if len(m.holdups) == holdupsRetained {
		copy(m.holdups, m.holdups[1:])
		m.holdups = m.holdups[:holdupsRetained-1]
	}
	m.holdups = append(m.holdups, holdup)
	m.s.Tracef("%s: AC lost; hold-up window %v", m.name, holdup)
	m.o.Registry().Counter("power.ac_losses").Inc()
	m.emit(obs.EvPowerFail, int64(holdup))

	if len(m.handlers) > 0 {
		m.s.After(m.psu.InterruptLatency, func() {
			if !m.acFail || !m.powered {
				return
			}
			m.s.Tracef("%s: power-fail interrupt delivered", m.name)
			for i, h := range m.handlers {
				m.s.Spawn(m.hwDom, fmt.Sprintf("%s.pwrfail%d", m.name, i), h)
			}
		})
	}
	m.s.After(holdup, m.dcLoss)
	return holdup
}

// dcLoss is the hold-up deadline: rails collapse, devices lose volatile
// state, every process on the machine dies mid-instruction.
func (m *Machine) dcLoss() {
	if !m.acFail || !m.powered {
		return
	}
	m.powered = false
	m.failures++
	m.s.Tracef("%s: DC power lost", m.name)
	m.o.Registry().Counter("power.dc_losses").Inc()
	m.emit(obs.EvPowerDC, 0)
	for _, d := range m.devices {
		if pa, ok := d.(disk.PowerAware); ok {
			pa.PowerFail()
		}
	}
	for _, dom := range m.domains {
		dom.Kill()
	}
	m.hwDom.Kill()
}

// RestorePower brings AC and DC back: devices power on with empty caches
// and the hardware domain is revived. Software domains stay dead — reviving
// them is the boot sequence's job (see the hv package).
func (m *Machine) RestorePower() {
	if m.powered {
		m.acFail = false
		return
	}
	m.acFail = false
	m.powered = true
	// Handlers are firmware-registered: the boot sequence re-installs
	// them. A stale handler from the previous epoch must never fire (it
	// could dump a dead buffer over the new instance's dump zone).
	m.handlers = nil
	m.hwDom.Revive()
	m.cpu = m.s.NewResource(m.name+".cpu", int64(m.cores))
	for _, d := range m.devices {
		if pa, ok := d.(disk.PowerAware); ok {
			pa.PowerOn(m.hwDom)
		}
	}
	m.s.Tracef("%s: power restored", m.name)
	m.o.Registry().Counter("power.restores").Inc()
	m.emit(obs.EvPowerRestore, 0)
}

// Crash kills every software domain but leaves power and devices untouched
// — a whole-machine software crash (e.g. host OS panic in the unverified
// configuration). Device caches survive; anything buffered in software does
// not.
func (m *Machine) Crash() {
	m.s.Tracef("%s: software crash (all domains)", m.name)
	for _, dom := range m.domains {
		dom.Kill()
	}
}

// String describes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("%s: %d cores, PSU %s (hold-up %v..%v), %d devices",
		m.name, m.cores, m.psu.Name, m.psu.HoldupMin, m.psu.HoldupMax, len(m.devices))
}
