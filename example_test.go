package rapilog_test

import (
	"fmt"
	"time"

	"repro"
)

// Example builds a RapiLog deployment, commits transactions that are
// durable the instant Commit returns, pulls the plug, recovers, and audits
// every acknowledgement. The simulation is deterministic, so this output
// is exact.
func Example() {
	dep, err := rapilog.New(rapilog.Config{Seed: 1, Mode: rapilog.ModeRapiLog})
	if err != nil {
		panic(err)
	}
	journal := rapilog.NewJournal()

	dep.S.Spawn(dep.Plat.Domain(), "db", func(p *rapilog.Proc) {
		e, err := dep.Boot(p)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 25; i++ {
			tx := e.Begin(p)
			key := fmt.Sprintf("order-%02d", i)
			if err := tx.Put(key, []byte("paid")); err != nil {
				panic(err)
			}
			if err := tx.Commit(); err != nil {
				panic(err)
			}
			journal.Add(key, []byte("paid"))
		}
		dep.CutPower()
		p.Sleep(time.Hour) // dies with the machine
	})

	dep.S.Spawn(nil, "operator", func(p *rapilog.Proc) {
		p.Sleep(5 * time.Second)
		if _, err := dep.RecoverAfterPower(p); err != nil {
			panic(err)
		}
		dep.S.Spawn(dep.Plat.Domain(), "db2", func(p *rapilog.Proc) {
			e, err := dep.Boot(p)
			if err != nil {
				panic(err)
			}
			res, err := journal.Verify(p, e)
			if err != nil {
				panic(err)
			}
			fmt.Println(res)
		})
	})

	if err := dep.S.RunFor(time.Minute); err != nil {
		panic(err)
	}
	// Output: journal verify: 25 acked transactions, all durable
}
