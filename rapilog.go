// Package rapilog is the public API of the RapiLog reproduction: a
// simulated full-stack implementation of "RapiLog: reducing system
// complexity through verification" (EuroSys 2013).
//
// The package re-exports the building blocks needed to assemble and drive
// a deployment:
//
//	cfg := rapilog.Config{Seed: 1, Mode: rapilog.ModeRapiLog}
//	dep, err := rapilog.New(cfg)
//	...
//	dep.S.Spawn(dep.Plat.Domain(), "db", func(p *rapilog.Proc) {
//	    e, err := dep.Boot(p)
//	    tx := e.Begin(p)
//	    tx.Put("k", []byte("v"))
//	    tx.Commit() // durable the instant it returns — that is the paper
//	})
//	dep.S.Run()
//
// A Deployment is one simulated machine: PSU, disk (HDD/SSD/RAM), optional
// dependable hypervisor, RapiLog log device, and a transactional storage
// engine. Everything runs on a deterministic virtual clock; power cuts and
// OS crashes are first-class operations, which is how the durability
// experiments audit the system.
//
// See the examples/ directory for complete programs, DESIGN.md for the
// architecture and the paper-to-module map, and EXPERIMENTS.md for the
// reproduced evaluation.
package rapilog

import (
	"io"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/rig"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Deployment assembly.
type (
	// Config parameterises a deployment (mode, disk, PSU, engine
	// personality, RapiLog buffer policy).
	Config = rig.Config
	// Deployment is an assembled simulated machine + platform + engine
	// stack.
	Deployment = rig.Rig
	// Mode selects one of the four evaluation configurations.
	Mode = rig.Mode
	// DiskKind selects the storage model.
	DiskKind = rig.DiskKind
)

// New assembles a deployment.
func New(cfg Config) (*Deployment, error) { return rig.New(cfg) }

// The four evaluation configurations, plus the replicated and sharded
// extensions.
const (
	ModeNativeSync     = rig.NativeSync
	ModeNativeAsync    = rig.NativeAsync
	ModeVirtSync       = rig.VirtSync
	ModeRapiLog        = rig.RapiLog
	ModeRapiLogReplica = rig.RapiLogReplica
	ModeRapiLogSharded = rig.RapiLogSharded
)

// Modes lists the paper's four evaluation configurations in evaluation
// order. ModeRapiLogReplica is deliberately absent: the sweeps that
// iterate Modes reproduce the paper's four-column figures.
var Modes = rig.Modes

// Storage models.
const (
	DiskHDD = rig.DiskHDD
	DiskSSD = rig.DiskSSD
	DiskMem = rig.DiskMem
)

// Simulation kernel.
type (
	// Sim is the deterministic discrete-event simulation a deployment
	// runs on.
	Sim = sim.Sim
	// Proc is a simulated process; all blocking operations take one.
	Proc = sim.Proc
	// Domain is a crash boundary.
	Domain = sim.Domain
	// Event is a one-shot broadcast condition.
	Event = sim.Event
)

// Database engine.
type (
	// Engine is the transactional storage engine.
	Engine = engine.Engine
	// Tx is a transaction handle.
	Tx = engine.Tx
	// Personality is an engine parameter preset (PG/MY/CX-like).
	Personality = engine.Personality
	// EngineConfig is the engine's full configuration.
	EngineConfig = engine.Config
)

// Engine personalities used in the evaluation.
var (
	PGLike = engine.PGLike
	MYLike = engine.MYLike
	CXLike = engine.CXLike
	// Personalities maps personality names to presets.
	Personalities = engine.Personalities
)

// PSU profiles (hold-up windows) used in the evaluation.
type PSUConfig = power.PSUConfig

// PSU profiles.
var (
	PSUATXSpec  = power.PSUATXSpec
	PSUTypical  = power.PSUTypical
	PSUMeasured = power.PSUMeasured
	PSUWithUPS  = power.PSUWithUPS
)

// RapiLog device (the paper's contribution).
type (
	// Logger is the RapiLog buffered log device.
	Logger = core.Logger
	// LoggerConfig tunes the buffer bound and drain.
	LoggerConfig = core.Config
	// RecoveryReport summarises a dump-zone replay.
	RecoveryReport = core.RecoveryReport
)

// Replicated durability domain: acknowledgement policies, the simulated
// network fabric, and the log-shipping replication layer behind
// ModeRapiLogReplica.
type (
	// AckPolicy selects when a commit is acknowledged: local buffer,
	// quorum of standbys, or remote-only.
	AckPolicy = core.AckPolicy
	// LinkConfig parameterises the simulated fabric's links.
	LinkConfig = netsim.LinkConfig
	// Fabric is the deterministic simulated network.
	Fabric = netsim.Fabric
	// Shipper streams log writes from the primary to the standbys.
	Shipper = replica.Shipper
	// Standby is one remote replica of the log stream.
	Standby = replica.Standby
	// ReplicaRecoverReport summarises a standby-stream replay.
	ReplicaRecoverReport = replica.RecoverReport
)

// Acknowledgement policies.
var (
	AckLocal      = core.AckLocal
	AckQuorum     = core.AckQuorum
	AckRemoteOnly = core.AckRemoteOnly
)

// PrimaryEndpoint is the primary's name on the replication fabric (for
// Fabric.Isolate in partition experiments).
const PrimaryEndpoint = rig.PrimaryEndpoint

// ParseAckPolicy parses an ack-policy name ("local", "quorum",
// "remote-only") plus quorum size.
func ParseAckPolicy(kind string, k int) (AckPolicy, error) {
	return core.ParseAckPolicy(kind, k)
}

// SafeBufferSize computes the paper's buffer-sizing rule for a machine's
// PSU and dump device.
func SafeBufferSize(m *power.Machine, dumpZone disk.Device) int64 {
	return core.SafeBufferSize(m, dumpZone)
}

// Device models.
type (
	// Device is the block-device interface all storage models implement.
	Device = disk.Device
	// HDDConfig parameterises the rotating-disk model.
	HDDConfig = disk.HDDConfig
	// SSDConfig parameterises the flash model.
	SSDConfig = disk.SSDConfig
)

// Workloads and the durability journal.
type (
	// Workload is a benchmark driver.
	Workload = workload.Workload
	// TPCC is the TPC-C-derived OLTP mix.
	TPCC = workload.TPCC
	// TPCB is the pgbench-style account-update workload.
	TPCB = workload.TPCB
	// Stress is the commit-latency microbenchmark.
	Stress = workload.Stress
	// Journal records acked-commit obligations for durability audits.
	Journal = workload.Journal
	// RunnerConfig parameterises a client pool.
	RunnerConfig = workload.RunnerConfig
	// RunResult summarises a client pool run.
	RunResult = workload.RunResult
	// VerifyResult summarises a durability audit.
	VerifyResult = workload.VerifyResult
)

// NewJournal creates an empty durability journal.
func NewJournal() *Journal { return workload.NewJournal() }

// RunClients drives a workload with a closed-loop client pool.
func RunClients(p *Proc, dom *Domain, e *Engine, w Workload, cfg RunnerConfig) RunResult {
	return workload.RunClients(p, dom, e, w, cfg)
}

// Sharded scale-out: N fully independent log domains on one machine behind
// a hash router, with per-shard emergency dumps sized against the shared
// PSU hold-up budget and parallel per-shard recovery.
type (
	// ShardedDeployment is a fleet of independent RapiLog shards sharing
	// one machine, PSU and hypervisor.
	ShardedDeployment = rig.Sharded
	// ShardRouter hash-partitions transaction keys across shards.
	ShardRouter = shard.Router
	// ShardedRecovery is a fleet recovery report with per-shard sections.
	ShardedRecovery = shard.Recovery
	// ShardedResult aggregates per-shard client-pool runs.
	ShardedResult = workload.ShardedResult
)

// NewSharded assembles an n-shard fleet from a base configuration.
func NewSharded(cfg Config, n int) (*ShardedDeployment, error) { return rig.NewSharded(cfg, n) }

// NewShardRouter creates a hash router over n shards.
func NewShardRouter(n int) *ShardRouter { return shard.NewRouter(n) }

// ShardPrefix is the metrics-registry prefix for shard i ("shard.<i>");
// every shard-local instrument lands under it with an identical suffix.
func ShardPrefix(i int) string { return shard.Prefix(i) }

// RollupCounter sums a counter ("rapilog.writes", say) across all n shards.
func RollupCounter(reg *MetricsRegistry, n int, name string) int64 {
	return shard.RollupCounter(reg, n, name)
}

// RollupHistogram merges a histogram across all n shards into a fleet view.
func RollupHistogram(reg *MetricsRegistry, n int, name string) *Histogram {
	return shard.RollupHistogram(reg, n, name)
}

// PartitionTPCC splits a TPC-C workload into per-shard clones owning
// disjoint warehouse subsets, assigned by the router.
func PartitionTPCC(base TPCC, r *ShardRouter) ([]*TPCC, error) {
	return workload.PartitionTPCC(base, r)
}

// PartitionTPCB splits a TPC-B workload into per-shard clones owning
// disjoint branch subsets, assigned by the router.
func PartitionTPCB(base TPCB, r *ShardRouter) ([]*TPCB, error) {
	return workload.PartitionTPCB(base, r)
}

// RunShardedClients drives one client pool per shard concurrently and
// merges the results.
func RunShardedClients(p *Proc, doms []*Domain, engines []*Engine, ws []Workload, journals []*Journal, cfg RunnerConfig) (ShardedResult, error) {
	return workload.RunShardedClients(p, doms, engines, ws, journals, cfg)
}

// Observability: commit-lifecycle tracing, the unified metrics registry,
// and the durability-exposure audit. Enable tracing with Config.Trace; a
// deployment's bundle is at Deployment.Obs.
type (
	// Obs bundles a deployment's tracer and metrics registry.
	Obs = obs.Obs
	// Tracer records typed commit-lifecycle events into a ring buffer.
	Tracer = obs.Tracer
	// TraceEvent is one typed trace record.
	TraceEvent = obs.Event
	// MetricsRegistry owns every instrument in a deployment by name.
	MetricsRegistry = obs.Registry
	// Histogram is the fixed-bucket latency/size distribution every
	// instrumented stage records into.
	Histogram = metrics.Histogram
	// MetricsSnapshot is a JSON-serialisable copy of every instrument.
	MetricsSnapshot = obs.Snapshot
	// ExposureReport is the durability-exposure audit's result.
	ExposureReport = obs.ExposureReport
)

// AuditExposure replays trace events into an exposure report against bound.
func AuditExposure(events []TraceEvent, bound int64, truncated bool) ExposureReport {
	return obs.AuditExposure(events, bound, truncated)
}

// Runtime verification: causal trace dumps, the crash flight recorder, the
// online invariant monitor, and the offline trace analyzer behind
// rapilog-trace. Enable with Config.Trace (tracing + monitor) or
// Config.Flight (adds the flight recorder).
type (
	// TraceDump is a serialisable copy of the tracer's event ring plus its
	// label table — what -trace-out writes and rapilog-trace reads.
	TraceDump = obs.TraceDump
	// FlightRecord is a frozen post-mortem: recent events, trailing metric
	// snapshots, final registry state, and the monitor's verdict.
	FlightRecord = obs.FlightRecord
	// Monitor re-checks the safety invariants online against the live
	// event stream (Deployment.Monitor).
	Monitor = obs.Monitor
	// MonitorConfig parameterises a Monitor (bound, policy, quorum size,
	// retention limits).
	MonitorConfig = obs.MonitorConfig
	// MonitorReport summarises a monitor's findings.
	MonitorReport = obs.MonitorReport
	// MonitorViolation is one detected invariant breach.
	MonitorViolation = obs.Violation
	// TraceAnalysis is the offline analyzer's result: per-stage latency
	// histograms, causal-chain completeness, the commit critical path, and
	// the fault/repair timeline.
	TraceAnalysis = obs.Analysis
	// CampaignArtifacts is a fault campaign's retained forensic capture.
	CampaignArtifacts = faultinject.Artifacts
)

// Monitor policy kinds (obs mirrors core's ack-policy kinds so traces can
// be re-verified without the core package).
const (
	PolicyLocal      = obs.PolicyLocal
	PolicyQuorum     = obs.PolicyQuorum
	PolicyRemoteOnly = obs.PolicyRemoteOnly
)

// ReadTraceDump parses a dump written by -trace-out.
func ReadTraceDump(r io.Reader) (TraceDump, error) { return obs.ReadTraceDump(r) }

// ReadFlightRecord parses a record written by -flight-out.
func ReadFlightRecord(r io.Reader) (*FlightRecord, error) { return obs.ReadFlightRecord(r) }

// AnalyzeTrace runs the offline analyzer over a trace dump. buckets sizes
// the fault/repair timeline (0 = default).
func AnalyzeTrace(d TraceDump, buckets int) (*TraceAnalysis, error) { return obs.Analyze(d, buckets) }

// RunMonitor replays a recorded event stream through a fresh monitor — the
// offline re-verification rapilog-trace -check performs.
func RunMonitor(events []TraceEvent, cfg MonitorConfig) MonitorReport {
	return obs.RunMonitor(events, cfg)
}

// Fault injection.
type (
	// Fault is the failure kind a trial injects.
	Fault = faultinject.Fault
	// CampaignConfig parameterises a fault-injection campaign.
	CampaignConfig = faultinject.CampaignConfig
	// CampaignSummary aggregates a campaign's trials.
	CampaignSummary = faultinject.Summary
	// TrialResult is one trial's outcome.
	TrialResult = faultinject.TrialResult
)

// Fault kinds.
const (
	FaultGuestCrash   = faultinject.GuestCrash
	FaultPowerCut     = faultinject.PowerCut
	FaultDiskError    = faultinject.DiskError
	FaultLatencyStorm = faultinject.LatencyStorm
	FaultPartition    = faultinject.Partition
	FaultReplicaCrash = faultinject.ReplicaCrash
)

// Media-fault modelling.
type (
	// FaultConfig parameterises a fault-injecting device wrapper.
	FaultConfig = disk.FaultConfig
	// FaultyDevice injects seeded transient errors, grown bad-sector
	// ranges, and latency spikes in front of any Device.
	FaultyDevice = disk.Faulty
)

// NewFaultyDevice wraps a device in the media-fault injection layer.
func NewFaultyDevice(inner Device, cfg FaultConfig) *FaultyDevice {
	return disk.NewFaulty(inner, cfg)
}

// RunCampaign executes a fault-injection campaign.
func RunCampaign(cfg CampaignConfig) CampaignSummary { return faultinject.RunCampaign(cfg) }

// High availability (epoch-fenced leader takeover over the replicated
// durability domain).
type (
	// ClusterConfig parameterises a symmetric HA cluster: N nodes, one
	// leader, always-on per-node stores, and a failure-detecting promotion
	// coordinator.
	ClusterConfig = rig.ClusterConfig
	// FailoverFault is the leader-loss failure a failover trial injects.
	FailoverFault = faultinject.FailoverFault
	// FailoverConfig parameterises a failover campaign.
	FailoverConfig = faultinject.FailoverConfig
	// FailoverSummary aggregates a failover campaign's trials.
	FailoverSummary = faultinject.FailoverSummary
	// FailoverTrial is one leader-loss trial's outcome.
	FailoverTrial = faultinject.FailoverTrial
)

// Failover fault kinds.
const (
	FaultLeaderPowerCut  = faultinject.LeaderPowerCut
	FaultLeaderIsolation = faultinject.LeaderIsolation
	FaultCoordAndLeader  = faultinject.CoordAndLeader
)

// RunFailoverCampaign executes a leader-loss failover campaign: repeated
// load→takeover→audit trials against a fresh HA cluster each.
func RunFailoverCampaign(cfg FailoverConfig) FailoverSummary {
	return faultinject.RunFailoverCampaign(cfg)
}

// ValidateQuorumFlags vets raw -quorum/-replicas CLI values before any
// deployment is constructed (replicas == 0 means the mode default).
func ValidateQuorumFlags(quorum, replicas int) error {
	return core.ValidateQuorumFlags(quorum, replicas)
}

// Experiments (the paper's tables and figures).
type (
	// Experiment is one reproducible table/figure runner.
	Experiment = bench.Experiment
	// ExperimentOptions tune an experiment run.
	ExperimentOptions = bench.Options
	// ExperimentReport is an experiment's rendered output and values.
	ExperimentReport = bench.Report
)

// Experiments lists every experiment in evaluation order.
var Experiments = bench.All

// ExperimentByID returns the experiment with the given id, or nil.
func ExperimentByID(id string) *Experiment { return bench.ByID(id) }

// Performance trajectory (the hot-path perf suite behind `rapilog-bench
// -bench-json`).
type (
	// PerfSuite is one serialised run of the hot-path benchmark suite.
	PerfSuite = bench.PerfSuite
	// PerfCase is one measured case within a PerfSuite.
	PerfCase = bench.PerfCase
)

// RunPerfSuite executes the fixed hot-path benchmark suite.
func RunPerfSuite(label string, quick bool, seed int64, progress io.Writer) (*PerfSuite, error) {
	return bench.RunPerfSuite(label, quick, seed, progress)
}
